// Benchmarks and checks for the serving runtime's decision cache: a cold
// Tune (execute-and-measure regime) against a cache-hit Tune on a corpus
// representative matrix. cmd/smat-bench -experiment cache prints the same
// comparison as a table.
package smat_test

import (
	"testing"
	"time"

	"smat"
	"smat/internal/corpus"
)

// cacheBenchMatrix builds a corpus representative matrix (pkustk14, the
// heavy irregular class) at reduced scale.
func cacheBenchMatrix(tb testing.TB) *smat.Matrix[float64] {
	tb.Helper()
	reps := corpus.Representatives(0.05)
	m := reps[8].Matrix() // pkustk14: structural, irregular heavy
	a, err := smat.NewCSR(m.Rows, m.Cols, m.RowPtr, m.ColIdx, m.Vals)
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

// cacheBenchTuner builds a tuner whose confidence threshold forces the
// execute-and-measure path on a cold decision — the expensive regime the
// cache amortises.
func cacheBenchTuner(cacheSize int) *smat.Tuner[float64] {
	return smat.NewTuner[float64](smat.HeuristicModel(),
		smat.WithThreads(2),
		smat.WithCacheSize(cacheSize),
		smat.WithConfidenceThreshold(0.999))
}

// BenchmarkTuneCold measures the full tuning pass with caching disabled:
// feature extraction, rule walk, and the execute-and-measure fallback.
func BenchmarkTuneCold(b *testing.B) {
	tuner := cacheBenchTuner(-1)
	a := cacheBenchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuner.Tune(a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTuneCacheHit measures the cache-hit path: feature extraction,
// fingerprint lookup, and format conversion only.
func BenchmarkTuneCacheHit(b *testing.B) {
	tuner := cacheBenchTuner(4096)
	a := cacheBenchMatrix(b)
	if _, err := tuner.Tune(a); err != nil { // prime the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuner.Tune(a); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := tuner.Stats()
	b.ReportMetric(float64(st.Hits), "cache-hits")
	b.ReportMetric(100*st.HitRate(), "hit-rate-%")
}

// TestCacheHitTuningSpeedup asserts the acceptance bar: on a corpus
// representative matrix the cache-hit tuning path is ≥ 10× cheaper than a
// cold Tune, and Tuner.Stats reports the hits. Timing on a loaded machine
// is noisy, so the comparison uses best-of-several on both sides and
// retries before failing.
func TestCacheHitTuningSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("timing ratio is not meaningful under the race detector")
	}
	a := cacheBenchMatrix(t)

	cold := cacheBenchTuner(-1)
	warm := cacheBenchTuner(4096)
	if _, err := warm.Tune(a); err != nil {
		t.Fatal(err)
	}

	minOver := func(n int, tune func() error) float64 {
		best := 0.0
		for i := 0; i < n; i++ {
			start := time.Now()
			if err := tune(); err != nil {
				t.Fatal(err)
			}
			if sec := time.Since(start).Seconds(); i == 0 || sec < best {
				best = sec
			}
		}
		return best
	}

	var coldSec, hitSec float64
	for attempt := 0; attempt < 5; attempt++ {
		coldSec = minOver(3, func() error { _, err := cold.Tune(a); return err })
		hitSec = minOver(20, func() error { _, err := warm.Tune(a); return err })
		if coldSec >= 10*hitSec {
			break
		}
	}
	t.Logf("cold %.3gs vs cache hit %.3gs (%.1fx)", coldSec, hitSec, coldSec/hitSec)
	if coldSec < 10*hitSec {
		t.Errorf("cache-hit Tune %.3gs is not ≥10x cheaper than cold %.3gs", hitSec, coldSec)
	}

	st := warm.Stats()
	if st.Hits < 20 {
		t.Errorf("stats report %d hits, want ≥ 20 (stats %+v)", st.Hits, st)
	}
	d := a.Operator().Decision()
	if !d.CacheHit {
		t.Errorf("last decision not marked as cache hit: %+v", d)
	}
}
