package smat

import "fmt"

// Batch is a set of k vectors of length n stored interleaved, the layout the
// batched SpMV entry points consume: element c of vector j lives at
// data[c*k + j], so the k values of one row or column sit contiguously and
// the tiled SpMM kernels stream them with unit stride.
//
// A Batch packs ordinary []T column vectors into that layout and unpacks
// results out of it:
//
//	xb := smat.PackBatch(rhs)                 // rhs is [][]T, k columns
//	yb := smat.NewBatch[float64](rows, xb.Width())
//	tuner.CSRSpMVBatch(a, xb.Data(), yb.Data(), xb.Width())
//	cols := yb.Unpack()                       // k result vectors
//
// CSRSpMVBatch accepts the same per-call TuneOptions as CSRSpMV; a batch of
// width k counts as k SpMVs against a WithIterations hint.
type Batch[T Float] struct {
	data []T
	n, k int
}

// NewBatch allocates a zeroed batch of k vectors of length n.
func NewBatch[T Float](n, k int) *Batch[T] {
	if n < 0 || k < 0 {
		panic(fmt.Sprintf("smat: NewBatch(%d, %d) with negative size", n, k))
	}
	return &Batch[T]{data: make([]T, n*k), n: n, k: k}
}

// PackBatch interleaves len(vecs) equal-length vectors into a new batch;
// vector j becomes batch column j. It returns an error when the vectors
// disagree on length. An empty vecs yields a width-0 batch, which the
// batched entry points treat as a no-op.
func PackBatch[T Float](vecs [][]T) (*Batch[T], error) {
	k := len(vecs)
	if k == 0 {
		return &Batch[T]{}, nil
	}
	n := len(vecs[0])
	for j, v := range vecs {
		if len(v) != n {
			return nil, fmt.Errorf("smat: PackBatch vector %d has length %d, want %d", j, len(v), n)
		}
	}
	b := NewBatch[T](n, k)
	for j, v := range vecs {
		b.Set(j, v)
	}
	return b, nil
}

// Data exposes the interleaved buffer, sized Len()·Width(), in the exact
// form CSRSpMVBatch and Operator.MulVecBatch consume.
func (b *Batch[T]) Data() []T { return b.data }

// Len returns the length n of each vector in the batch.
func (b *Batch[T]) Len() int { return b.n }

// Width returns the number of vectors k in the batch.
func (b *Batch[T]) Width() int { return b.k }

// Set copies v (length Len()) into batch column j.
func (b *Batch[T]) Set(j int, v []T) {
	if j < 0 || j >= b.k {
		panic(fmt.Sprintf("smat: Batch.Set column %d out of range [0, %d)", j, b.k))
	}
	if len(v) != b.n {
		panic(fmt.Sprintf("smat: Batch.Set vector length %d, want %d", len(v), b.n))
	}
	for c, x := range v {
		b.data[c*b.k+j] = x
	}
}

// Col copies batch column j into dst (allocated when nil, length Len()
// otherwise) and returns it.
func (b *Batch[T]) Col(j int, dst []T) []T {
	if j < 0 || j >= b.k {
		panic(fmt.Sprintf("smat: Batch.Col column %d out of range [0, %d)", j, b.k))
	}
	if dst == nil {
		dst = make([]T, b.n)
	} else if len(dst) != b.n {
		panic(fmt.Sprintf("smat: Batch.Col destination length %d, want %d", len(dst), b.n))
	}
	for c := range dst {
		dst[c] = b.data[c*b.k+j]
	}
	return dst
}

// Unpack de-interleaves the batch into k freshly allocated vectors.
func (b *Batch[T]) Unpack() [][]T {
	out := make([][]T, b.k)
	for j := range out {
		out[j] = b.Col(j, nil)
	}
	return out
}
