module smat

go 1.22
