//go:build race

package smat_test

// raceEnabled reports whether the race detector is instrumenting this
// build; timing assertions are skipped under it.
const raceEnabled = true
