// Quickstart: the unified SMAT interface on a small tridiagonal system.
//
// The user supplies a matrix in CSR form — nothing else — and SMAT decides
// at runtime which storage format and kernel to use (here: a tridiagonal
// matrix, so the tuner should pick DIA).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"smat"
)

func main() {
	// Assemble a 10,000-point 1D Poisson operator in coordinate form.
	const n = 10000
	var entries []smat.Entry[float64]
	for i := 0; i < n; i++ {
		entries = append(entries, smat.Entry[float64]{Row: i, Col: i, Val: 2})
		if i > 0 {
			entries = append(entries, smat.Entry[float64]{Row: i, Col: i - 1, Val: -1})
		}
		if i < n-1 {
			entries = append(entries, smat.Entry[float64]{Row: i, Col: i + 1, Val: -1})
		}
	}
	a, err := smat.FromEntries(n, n, entries)
	if err != nil {
		log.Fatal(err)
	}

	// A tuner needs a model: the built-in heuristic one works out of the
	// box; `smat-train` produces a better, machine-learned one. Options
	// (WithThreads, WithCacheSize, ...) configure the serving runtime; the
	// defaults are fine here.
	tuner := smat.NewTuner[float64](smat.HeuristicModel())

	// The paper's SMAT_dCSR_SpMV: y = A·x with automatic format selection.
	// WithIterations tells the tuner how many SpMVs this matrix is expected
	// to serve, so the cost of converting out of CSR is weighed against the
	// remaining work rather than assumed free (leave it off to tune
	// asymptotically).
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, n)
	if err := tuner.CSRSpMV(a, x, y, smat.WithIterations(500)); err != nil {
		log.Fatal(err)
	}

	// The decision is cached on the handle; inspect it without re-tuning.
	d := a.Operator().Decision()
	fmt.Printf("matrix: %d x %d, %d nonzeros\n", n, n, a.NNZ())
	fmt.Printf("SMAT chose %s (kernel %s)\n", d.Chosen, d.Kernel)
	if d.PredictedOK {
		fmt.Printf("decided by model prediction with confidence %.2f\n", d.Confidence)
	} else {
		fmt.Printf("decided by execute-and-measure fallback\n")
	}
	if d.Asymptotic != d.Chosen {
		fmt.Printf("hint of %d SpMVs kept tuned CSR: %s breaks even at %d\n",
			d.IterationHint, d.Asymptotic, d.BreakEvenIters)
	} else if d.BreakEvenIters > 0 {
		fmt.Printf("conversion to %s breaks even after %d SpMVs\n", d.Chosen, d.BreakEvenIters)
	}
	// For the interior rows of this operator, (A·1)_i = -1 + 2 - 1 = 0.
	fmt.Printf("y[0]=%g y[1]=%g ... y[n-1]=%g\n", y[0], y[1], y[n-1])
}
