// Hybrid-format extension: the paper's extensibility claim in action.
//
// SMAT's framework is "extension-free" (Section 3): a new storage format
// joins the system by adding its storage + kernels to the kernel library —
// nothing in the tuner changes. This example adds HYB (the ELL+COO hybrid
// of Bell & Garland, discussed in the paper's related work) and pits it
// against the four basic formats on its home turf: a matrix that is mostly
// regular with a few heavy rows, where ELL drowns in padding and CSR pays
// for irregularity.
//
// Run: go run ./examples/hybrid
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"smat/internal/kernels"
	"smat/internal/matrix"
)

func main() {
	// 40,000 rows of degree 2 with near-band columns, plus 20 heavy rows of
	// degree 2,000: regular enough for a width-2 ELL part, too skewed for
	// pure ELL.
	rng := rand.New(rand.NewSource(1))
	n := 40000
	var ts []matrix.Triple[float64]
	for r := 0; r < n; r++ {
		if r%2000 == 0 {
			seen := map[int]bool{}
			for len(seen) < 2000 {
				c := rng.Intn(n)
				if !seen[c] {
					seen[c] = true
					ts = append(ts, matrix.Triple[float64]{Row: r, Col: c, Val: 1})
				}
			}
			continue
		}
		c1 := (r + 1 + rng.Intn(64)) % n
		c2 := (r + 128 + rng.Intn(64)) % n
		if c2 == c1 {
			c2 = (c2 + 1) % n
		}
		ts = append(ts, matrix.Triple[float64]{Row: r, Col: c1, Val: 1})
		ts = append(ts, matrix.Triple[float64]{Row: r, Col: c2, Val: 1})
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix: %d rows, %d nonzeros, max row degree %d\n", n, m.NNZ(), m.MaxRowDegree())

	// One registry call is the entire integration.
	lib := kernels.NewLibrary[float64]()
	lib.RegisterHYB()

	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, n)
	measure := func(k *kernels.Kernel[float64], mat *kernels.Mat[float64]) float64 {
		k.Run(mat, x, y, 0) // warm up
		const reps = 5
		start := time.Now()
		for i := 0; i < reps; i++ {
			k.Run(mat, x, y, 0)
		}
		sec := time.Since(start).Seconds() / reps
		return float64(2*m.NNZ()) / sec / 1e9
	}

	fmt.Println("\nbest kernel per format (GFLOPS):")
	formats := append(append([]matrix.Format{}, matrix.Formats[:]...), matrix.FormatHYB)
	for _, f := range formats {
		mat, err := kernels.Convert(m, f, 8)
		if err != nil {
			fmt.Printf("  %-4s: conversion refused (%v)\n", f, err)
			continue
		}
		bestName, best := "", 0.0
		for _, k := range lib.ForFormat(f) {
			if g := measure(k, mat); g > best {
				best, bestName = g, k.Name
			}
		}
		fmt.Printf("  %-4s: %5.2f  (%s)\n", f, best, bestName)
	}
	h := m.ToHYB(-1)
	fmt.Printf("\nHYB split: ELL width %d (%d entries) + COO tail (%d entries)\n",
		h.ELL.Width, h.ELL.NNZ(), h.COO.NNZ())

	// Second extension: BCSR (register blocking à la Sparsity/OSKI) on a
	// matrix of dense 4x4 blocks — a vector-valued FEM discretisation shape.
	lib.RegisterBCSR()
	var bts []matrix.Triple[float64]
	nb := 8000
	for b := 0; b < 6*nb; b++ {
		bi := rng.Intn(nb)
		bj := bi + rng.Intn(9) - 4
		if bj < 0 || bj >= nb {
			bj = bi
		}
		for lr := 0; lr < 4; lr++ {
			for lc := 0; lc < 4; lc++ {
				bts = append(bts, matrix.Triple[float64]{Row: bi*4 + lr, Col: bj*4 + lc, Val: 1})
			}
		}
	}
	bm, err := matrix.FromTriples(4*nb, 4*nb, bts)
	if err != nil {
		log.Fatal(err)
	}
	br, bc := matrix.BestBlockSize(bm)
	fmt.Printf("\nblock-structured matrix: %d rows, %d nonzeros, selected block size %dx%d (fill %.2fx)\n",
		bm.Rows, bm.NNZ(), br, bc, matrix.BlockFill(bm, br, bc))
	for _, f := range []matrix.Format{matrix.FormatCSR, matrix.FormatBCSR} {
		mat, err := kernels.Convert(bm, f, 8)
		if err != nil {
			log.Fatal(err)
		}
		bestName, best := "", 0.0
		for _, k := range lib.ForFormat(f) {
			if g := measure(k, mat); g > best {
				best, bestName = g, k.Name
			}
		}
		fmt.Printf("  %-4s: %5.2f GFLOPS  (%s)\n", f, best, bestName)
	}
}
