// AMG solver example: the paper's motivating application (Section 7.4).
//
// An algebraic multigrid solve of a 2D Poisson problem where every SpMV —
// relaxation, residual, restriction, prolongation, at every grid level —
// goes through SMAT. The grid operators change structure across levels
// (Figure 1 of the paper), so different levels end up in different formats.
//
// Run: go run ./examples/amgsolver
package main

import (
	"fmt"
	"log"
	"time"

	"smat"
	"smat/internal/amg"
	"smat/internal/autotune"
	"smat/internal/gen"
	"smat/internal/matrix"
)

func main() {
	// A 200×200 grid, 9-point Laplacian: 40,000 unknowns.
	a := gen.Laplacian2D9pt[float64](200, 200)
	fmt.Printf("problem: 9-point Laplacian, %d unknowns, %d nonzeros\n", a.Rows, a.NNZ())

	h, err := amg.Setup(a, amg.Options{Coarsening: amg.RugeStueben})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AMG hierarchy: %d levels, operator complexity %.2f\n",
		len(h.Levels), h.OperatorComplexity())

	// Bind every level operator to a SMAT-tuned SpMV. The tuner sees each
	// level's matrix as a fresh input and decides per level.
	tuner := autotune.New[float64](smat.HeuristicModel(), autotune.Config{})
	if err := h.Bind(func(m *matrix.CSR[float64]) (amg.SpMV[float64], error) {
		op, dec, err := tuner.Tune(m)
		if err != nil {
			return nil, err
		}
		fmt.Printf("  %7d-row operator -> %s (%s)\n", m.Rows, dec.Chosen, dec.Kernel)
		return op, nil
	}); err != nil {
		log.Fatal(err)
	}

	// Solve A u = b for a constant source term.
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	u := make([]float64, a.Rows)
	start := time.Now()
	stats := h.Solve(b, u, 1e-8, 100)
	fmt.Printf("solve: %d V-cycles, relative residual %.2e, %s (converged=%v)\n",
		stats.Iterations, stats.RelResidual, time.Since(start).Round(time.Millisecond), stats.Converged)
}
