// PageRank example: the paper's graph-analytics motivation (Section 1).
//
// Power iteration on a synthetic web graph with a power-law degree
// distribution. The link matrix is exactly the structure the paper
// associates with COO affinity; SMAT detects it from the degree-distribution
// exponent R and routes the SpMV accordingly.
//
// Run: go run ./examples/pagerank
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"smat"
	"smat/internal/gen"
	"smat/internal/matrix"
)

func main() {
	const (
		nodes   = 50000
		damping = 0.85
		tol     = 1e-10
	)
	// A preferential-attachment web graph (power-law in/out degrees).
	adj := gen.PreferentialAttachment[float64](nodes, 3, rand.New(rand.NewSource(42)))

	// PageRank iterates r <- d·Mᵀr + (1-d)/n, with M the column-stochastic
	// link matrix: build Aᵀ row-normalised, i.e. normalise adj's rows and
	// transpose.
	norm := adj.Clone()
	for i := 0; i < norm.Rows; i++ {
		deg := float64(norm.RowPtr[i+1] - norm.RowPtr[i])
		for jj := norm.RowPtr[i]; jj < norm.RowPtr[i+1]; jj++ {
			norm.Vals[jj] = 1 / deg
		}
	}
	link := norm.Transpose()
	a := wrap(link)

	// The power iteration below runs at most 200 SpMVs: passing that bound
	// lets SMAT weigh the format-conversion cost against the remaining work
	// instead of assuming the matrix lives forever.
	tuner := smat.NewTuner[float64](smat.HeuristicModel())
	op, err := tuner.Tune(a, smat.WithIterations(200))
	if err != nil {
		log.Fatal(err)
	}
	d := op.Decision()
	fmt.Printf("link matrix: %d nodes, %d edges\n", nodes, a.NNZ())
	fmt.Printf("features: R=%.2f (power-law exponent)\n", a.Features().R)
	fmt.Printf("SMAT chose %s (kernel %s, predicted=%v conf=%.2f)\n",
		d.Chosen, d.Kernel, d.PredictedOK, d.Confidence)

	rank := make([]float64, nodes)
	next := make([]float64, nodes)
	for i := range rank {
		rank[i] = 1.0 / nodes
	}
	iters := 0
	for ; iters < 200; iters++ {
		op.MulVec(rank, next)
		delta := 0.0
		for i := range next {
			next[i] = damping*next[i] + (1-damping)/nodes
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < tol {
			break
		}
	}
	fmt.Printf("converged in %d iterations\n", iters+1)

	// Top five hubs: in a preferential-attachment graph these are the
	// earliest nodes.
	type nr struct {
		node int
		r    float64
	}
	top := make([]nr, nodes)
	for i, r := range rank {
		top[i] = nr{i, r}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].r > top[j].r })
	fmt.Println("top-5 nodes by PageRank:")
	for _, t := range top[:5] {
		fmt.Printf("  node %5d: %.6f\n", t.node, t.r)
	}
}

// wrap adapts an internal CSR matrix to the public handle.
func wrap(m *matrix.CSR[float64]) *smat.Matrix[float64] {
	a, err := smat.NewCSR(m.Rows, m.Cols, m.RowPtr, m.ColIdx, m.Vals)
	if err != nil {
		log.Fatal(err)
	}
	return a
}
