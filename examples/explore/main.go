// Explore: what SMAT sees in a matrix and why it decides what it decides.
//
// Builds one matrix of each structural class (diagonal, regular, power-law,
// irregular), prints the Table 2 features, and traces the runtime decision
// (prediction vs execute-and-measure fallback) for each.
//
// Run: go run ./examples/explore
package main

import (
	"fmt"
	"log"
	"math/rand"

	"smat"
	"smat/internal/gen"
	"smat/internal/matrix"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		m    *matrix.CSR[float64]
	}{
		{"pentadiagonal stencil", gen.MultiDiagonal[float64](20000, []int{-100, -1, 0, 1, 100}, rng)},
		{"constant-degree regular", gen.ConstantDegree[float64](20000, 5, rng)},
		{"preferential-attachment graph", gen.PreferentialAttachment[float64](20000, 3, rng)},
		{"irregular random", gen.RandomUniform[float64](20000, 20000, 12, rng)},
		{"arrowhead (pathological)", arrowhead(20000, rng)},
	}

	model := smat.HeuristicModel()
	fmt.Printf("model: %d rules, confidence threshold %.2f\n\n", len(model.Ruleset.Rules), model.ConfidenceThreshold)
	tuner := smat.NewTuner[float64](model)

	for _, c := range cases {
		a, err := smat.NewCSR(c.m.Rows, c.m.Cols, c.m.RowPtr, c.m.ColIdx, c.m.Vals)
		if err != nil {
			log.Fatal(err)
		}
		f := a.Features()
		fmt.Printf("%s\n", c.name)
		fmt.Printf("  features: %s\n", f.String())
		op, err := tuner.Tune(a)
		if err != nil {
			log.Fatal(err)
		}
		d := op.Decision()
		switch {
		case d.PredictedOK:
			fmt.Printf("  decision: model predicted %s (confidence %.2f)\n", d.Predicted, d.Confidence)
		default:
			fmt.Printf("  decision: no confident rule matched -> execute-and-measure fallback\n")
		}
		fmt.Printf("  chosen:   %s via %s (decision cost %.1fx one CSR-SpMV)\n\n",
			d.Chosen, d.Kernel, d.Overhead)
	}

	// Reordering changes the structure SMAT sees: a banded matrix hidden
	// under a random permutation looks like CSR territory, and reverse
	// Cuthill–McKee reordering reveals the band — after which SMAT picks DIA.
	fmt.Println("reordering demo: tridiagonal matrix under a random permutation")
	hidden := shuffledBand(20000, rng)
	showDecision(tuner, "  before RCM", hidden)
	perm, err := hidden.RCM()
	if err != nil {
		log.Fatal(err)
	}
	revealed, err := hidden.Permute(perm)
	if err != nil {
		log.Fatal(err)
	}
	showDecision(tuner, "  after RCM ", revealed)
}

func showDecision(tuner *smat.Tuner[float64], tag string, m *matrix.CSR[float64]) {
	a, err := smat.NewCSR(m.Rows, m.Cols, m.RowPtr, m.ColIdx, m.Vals)
	if err != nil {
		log.Fatal(err)
	}
	op, err := tuner.Tune(a)
	if err != nil {
		log.Fatal(err)
	}
	d := op.Decision()
	fmt.Printf("%s: bandwidth %6d, Ndiags %6d -> %s (%s)\n",
		tag, m.Bandwidth(), a.Features().Ndiags, d.Chosen, d.Kernel)
}

// shuffledBand hides a tridiagonal system under a random symmetric
// permutation.
func shuffledBand(n int, rng *rand.Rand) *matrix.CSR[float64] {
	perm := rng.Perm(n)
	var ts []matrix.Triple[float64]
	for i := 0; i < n; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: perm[i], Col: perm[i], Val: 2})
		if i > 0 {
			ts = append(ts, matrix.Triple[float64]{Row: perm[i], Col: perm[i-1], Val: -1})
			ts = append(ts, matrix.Triple[float64]{Row: perm[i-1], Col: perm[i], Val: -1})
		}
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

// arrowhead has one dense row and column: maximal row-degree variance, the
// ELL worst case.
func arrowhead(n int, rng *rand.Rand) *matrix.CSR[float64] {
	var ts []matrix.Triple[float64]
	for i := 0; i < n; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: i, Col: i, Val: 2})
		if i > 0 {
			ts = append(ts, matrix.Triple[float64]{Row: 0, Col: i, Val: 1})
			ts = append(ts, matrix.Triple[float64]{Row: i, Col: 0, Val: 1})
		}
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		log.Fatal(err)
	}
	return m
}
