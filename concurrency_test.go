package smat

import (
	"math/rand"
	"sync"
	"testing"

	"smat/internal/gen"
	"smat/internal/matrix"
)

// TestConcurrentCSRSpMVSharedAndDistinct hammers one Tuner from many
// goroutines on a shared matrix handle and on per-goroutine handles,
// checking every result. Run under `go test -race` it is the concurrency
// contract of the public API: 16 goroutines × 80 iterations = 1280
// concurrent CSRSpMV calls.
func TestConcurrentCSRSpMVSharedAndDistinct(t *testing.T) {
	const (
		goroutines = 16
		iters      = 80
		n          = 400
	)
	tuner := NewTuner[float64](HeuristicModel(), WithThreads(2), WithCacheSize(256))

	shared, err := FromEntries(n, n, diagEntries(n))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) + 1
	}
	wantShared := make([]float64, n)
	shared.CSR().ToDense().MulVec(x, wantShared)

	// Per-goroutine matrices: each goroutine owns a random matrix with its
	// own expected result.
	own := make([]*Matrix[float64], goroutines)
	wantOwn := make([][]float64, goroutines)
	for g := 0; g < goroutines; g++ {
		m := gen.RandomUniform[float64](n, n, 5, rand.New(rand.NewSource(int64(g+1))))
		a := &Matrix[float64]{csr: m}
		own[g] = a
		wantOwn[g] = make([]float64, n)
		m.ToDense().MulVec(x, wantOwn[g])
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			y := make([]float64, n)
			for i := 0; i < iters; i++ {
				a, want := shared, wantShared
				if i%2 == 1 {
					a, want = own[g], wantOwn[g]
				}
				if err := tuner.CSRSpMV(a, x, y); err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if !matrix.VecApproxEqual(y, want, 1e-9) {
					t.Errorf("goroutine %d iter %d: wrong result", g, i)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()

	st := tuner.Stats()
	if total := st.Hits + st.Misses + st.Shared; total == 0 {
		t.Error("decision cache saw no traffic")
	}
	if shared.Operator() == nil {
		t.Error("shared handle lost its operator")
	}
}

// TestConcurrentFirstUseTunesOnce checks the per-handle once guard: many
// goroutines issuing the first CSRSpMV on one un-tuned matrix must agree on
// a single operator.
func TestConcurrentFirstUseTunesOnce(t *testing.T) {
	const goroutines = 12
	tuner := NewTuner[float64](HeuristicModel(), WithThreads(1))
	a, err := FromEntries(600, 600, diagEntries(600))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 600)
	for i := range x {
		x[i] = 1
	}
	start := make(chan struct{})
	ops := make([]*Operator[float64], goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			y := make([]float64, 600)
			if err := tuner.CSRSpMV(a, x, y); err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			ops[g] = a.Operator()
		}(g)
	}
	close(start)
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if ops[g] != ops[0] {
			t.Fatalf("goroutine %d saw a different operator: first use was tuned more than once", g)
		}
	}
	if st := tuner.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1 tuning run for one handle", st.Misses)
	}
}

// TestConcurrentTwoTunersOneMatrix drives one handle from two tuners at
// once. The ownership rule makes each call either reuse its own tuner's
// operator or atomically re-tune; results must stay correct throughout and
// the handle must end up owned by one of the two.
func TestConcurrentTwoTunersOneMatrix(t *testing.T) {
	const n = 300
	t1 := NewTuner[float64](HeuristicModel(), WithThreads(1))
	t2 := NewTuner[float64](HeuristicModel(), WithThreads(2))
	a, err := FromEntries(n, n, diagEntries(n))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 3)
	}
	want := make([]float64, n)
	a.CSR().ToDense().MulVec(x, want)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		tuner := t1
		if g%2 == 1 {
			tuner = t2
		}
		wg.Add(1)
		go func(tuner *Tuner[float64], g int) {
			defer wg.Done()
			y := make([]float64, n)
			for i := 0; i < 25; i++ {
				if err := tuner.CSRSpMV(a, x, y); err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !matrix.VecApproxEqual(y, want, 1e-9) {
					t.Errorf("goroutine %d iter %d: wrong result", g, i)
					return
				}
			}
		}(tuner, g)
	}
	wg.Wait()
	if a.Operator() == nil {
		t.Error("handle lost its operator")
	}
}

// TestConcurrentPooledSpMVDistinctMatrices drives one tuner's shared worker
// pool from many goroutines, each multiplying its own large matrix. The
// matrices carry small integer values and distinct columns per row, so
// float64 arithmetic is exact regardless of how the engine partitions or
// schedules the work: results must match the reference computed from the
// entries bit for bit.
func TestConcurrentPooledSpMVDistinctMatrices(t *testing.T) {
	const (
		goroutines = 8
		n          = 2500 // 8 entries/row ⇒ 20k nonzeros, well past the serial cutoff
		perRow     = 8
	)
	tuner := NewTuner[float64](HeuristicModel(), WithThreads(4))
	defer tuner.Close()

	x := make([]float64, n)
	for i := range x {
		x[i] = float64(1 + i%5)
	}
	mats := make([]*Matrix[float64], goroutines)
	wants := make([][]float64, goroutines)
	for g := 0; g < goroutines; g++ {
		entries := make([]Entry[float64], 0, n*perRow)
		want := make([]float64, n)
		for r := 0; r < n; r++ {
			for j := 0; j < perRow; j++ {
				c := (r + j*313 + g) % n // distinct columns within each row
				v := float64(1 + (r+j+g)%9)
				entries = append(entries, Entry[float64]{Row: r, Col: c, Val: v})
				want[r] += v * x[c]
			}
		}
		a, err := FromEntries(n, n, entries)
		if err != nil {
			t.Fatal(err)
		}
		mats[g], wants[g] = a, want
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			y := make([]float64, n)
			for i := 0; i < 30; i++ {
				if err := tuner.CSRSpMV(mats[g], x, y); err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				for j := range y {
					if y[j] != wants[g][j] {
						t.Errorf("goroutine %d iter %d: y[%d] = %g, want %g", g, i, j, y[j], wants[g][j])
						return
					}
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
}

// TestConcurrentTuneAndStats exercises Tune and Stats racing each other —
// Stats must be callable at any time without synchronisation by the caller.
func TestConcurrentTuneAndStats(t *testing.T) {
	tuner := NewTuner[float64](HeuristicModel(), WithThreads(1), WithCacheSize(8))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			m := gen.RandomUniform[float64](200+i*10, 200+i*10, 4, rand.New(rand.NewSource(int64(i))))
			a := &Matrix[float64]{csr: m}
			if _, err := tuner.Tune(a); err != nil {
				t.Errorf("Tune: %v", err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			_ = tuner.Stats()
		}
	}
}
