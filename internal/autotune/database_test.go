package autotune

import (
	"bytes"
	"strings"
	"testing"

	"smat/internal/features"
	"smat/internal/matrix"
)

func sampleDatabase() *Database {
	db := &Database{}
	mk := func(name string, ntd, erell, r float64, best matrix.Format) {
		f := features.Features{
			M: 100, N: 100, NNZ: 500,
			AverRD: 5, MaxRD: 8, VarRD: 1,
			Ndiags: 10, NTdiagsRatio: ntd, ERDIA: 0.5, ERELL: erell, R: r,
		}
		db.Append(name, "test", f, Label{
			Best:   best,
			GFLOPS: map[matrix.Format]float64{best: 2.0, matrix.FormatCSR: 1.0},
		})
	}
	for i := 0; i < 20; i++ {
		mk("dia", 0.95, 0.5, features.RNone, matrix.FormatDIA)
		mk("ell", 0.1, 0.99, features.RNone, matrix.FormatELL)
		mk("coo", 0.1, 0.2, 2.0, matrix.FormatCOO)
		mk("csr", 0.1, 0.2, features.RNone, matrix.FormatCSR)
	}
	return db
}

func TestDatabaseSaveLoadRoundTrip(t *testing.T) {
	db := sampleDatabase()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(db.Records) {
		t.Fatalf("%d records, want %d", len(back.Records), len(db.Records))
	}
	for i := range db.Records {
		a, b := db.Records[i], back.Records[i]
		if a.Name != b.Name || a.Best != b.Best || a.Features != b.Features {
			t.Fatalf("record %d changed: %+v vs %+v", i, a, b)
		}
		if a.GFLOPS["CSR"] != b.GFLOPS["CSR"] {
			t.Fatalf("record %d GFLOPS changed", i)
		}
	}
}

func TestLoadDatabaseRejectsCorrupt(t *testing.T) {
	cases := []string{
		"not json\n",
		`{"name":"x","features":{},"best":"NOPE"}` + "\n",
	}
	for i, c := range cases {
		if _, err := LoadDatabase(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Blank lines are tolerated.
	db, err := LoadDatabase(strings.NewReader("\n\n"))
	if err != nil || len(db.Records) != 0 {
		t.Errorf("blank input: %v, %d records", err, len(db.Records))
	}
}

func TestTrainFromDatabase(t *testing.T) {
	db := sampleDatabase()
	res, err := TrainFromDatabase(db, KernelChoice{matrix.FormatDIA: "dia_blocked"}, TrainConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil || len(res.Model.Ruleset.Rules) == 0 {
		t.Fatal("no model learned")
	}
	// The synthetic database is perfectly separable.
	if res.TrainAccuracy < 0.99 {
		t.Errorf("accuracy %g on separable database", res.TrainAccuracy)
	}
	if res.Model.Kernels["DIA"] != "dia_blocked" {
		t.Error("kernel choice not carried into model")
	}
	// The learned model must route the archetypes correctly.
	rs := res.Model.Ruleset
	diaVec := db.Records[0].Features.Vector()
	if got := rs.Predict(diaVec); got != int(matrix.FormatDIA) {
		t.Errorf("DIA archetype predicted %s", rs.ClassNames[got])
	}
	cooVec := db.Records[2].Features.Vector()
	if got := rs.Predict(cooVec); got != int(matrix.FormatCOO) {
		t.Errorf("COO archetype predicted %s", rs.ClassNames[got])
	}
}

func TestTrainFromDatabaseRejectsEmptyAndBadLabels(t *testing.T) {
	if _, err := TrainFromDatabase(&Database{}, nil, TrainConfig{}); err == nil {
		t.Error("empty database accepted")
	}
	db := &Database{Records: []Record{{Name: "x", Best: "HYB"}}}
	if _, err := TrainFromDatabase(db, nil, TrainConfig{}); err == nil {
		t.Error("extension-format label accepted into the basic 4-class model")
	}
}

func TestTrainPopulatesDatabase(t *testing.T) {
	res, err := Train(tinyTrainingSet(), TrainConfig{
		Threads:          2,
		Measure:          fastMeasure,
		SkipKernelSearch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Database == nil || len(res.Database.Records) != len(res.Labels) {
		t.Fatal("Train did not populate the database")
	}
	// Retraining from the produced database must be measurement-free and
	// reproduce the model's ruleset exactly.
	again, err := TrainFromDatabase(res.Database, nil, TrainConfig{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Model.Ruleset.Rules) != len(res.Model.Ruleset.Rules) {
		t.Errorf("retrained ruleset has %d rules, original %d",
			len(again.Model.Ruleset.Rules), len(res.Model.Ruleset.Rules))
	}
	for _, ex := range res.Dataset.Examples {
		if again.Model.Ruleset.Predict(ex.Attrs) != res.Model.Ruleset.Predict(ex.Attrs) {
			t.Fatal("retrained model predicts differently")
		}
	}
}
