// Amortization-aware tuning: conversion cost as a first-class input to the
// format decision, and background conversion with an atomic operator swap.
//
// The paper's runtime procedure picks the asymptotically best format — the
// right answer for a matrix that lives forever. A matrix that will see only
// k more SpMVs must instead win the payoff inequality
//
//	convertSec + k·chosenSec ≤ k·incumbentSec
//
// against tuned CSR, the incumbent that costs nothing to convert to (the
// input already is CSR). This file implements that comparison (BreakEven),
// the per-call options carrying k, and the background conversion worker that
// lets a long-lived matrix start serving from tuned CSR immediately while
// the amortised winner is built off the critical path.
package autotune

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"smat/internal/kernels"
	"smat/internal/matrix"
)

// TuneOptions carries the per-call tuning intent of Tuner.TuneOpts. The zero
// value reproduces Tune's asymptotic behaviour exactly.
type TuneOptions struct {
	// Iterations is the caller's estimate of how many SpMVs the operator
	// will run (k in the payoff model). 0 means no estimate: tune
	// asymptotically. Negative values are rejected. With an estimate, a
	// non-CSR winner is only converted to when k reaches its break-even
	// point — and on a warm decision cache the conversion happens in the
	// background while first calls serve tuned CSR (see SyncConvert).
	Iterations int

	// FormatHint forces the operator's format when HasFormatHint is set,
	// bypassing both the model and the decision cache (a forced format must
	// not poison cached decisions for structurally identical matrices tuned
	// without the hint). The conversion always runs inline, so the hint
	// doubles as an eager-convert switch. Tuning fails if no kernel is
	// registered for the format or its fill guard rejects the matrix.
	FormatHint    matrix.Format
	HasFormatHint bool

	// SyncConvert forces an amortised non-CSR winner to be converted inline
	// before TuneOpts returns, instead of in the background. It has no
	// effect when nothing would be converted (CSR winner, or k below
	// break-even). A single-CPU process (GOMAXPROCS 1) behaves as if
	// SyncConvert were always set: with no spare core, backgrounding the
	// conversion only delays the swap behind the serving goroutine.
	SyncConvert bool

	// HoldConversion, when non-nil, makes the background conversion worker
	// block until the channel is closed before it starts converting. It
	// exists for tests and the differential oracle, which need to pin the
	// operator in its pre-swap state and release the swap at a chosen
	// moment. Production callers leave it nil.
	HoldConversion <-chan struct{}
}

// validate rejects option combinations with no defined meaning.
func (o *TuneOptions) validate() error {
	if o.Iterations < 0 {
		return fmt.Errorf("autotune: negative iteration hint %d", o.Iterations)
	}
	return nil
}

// NeverAmortize is the BreakEvenIters sentinel recorded when converting can
// never pay off: the converted format's per-SpMV rate does not beat the
// tuned-CSR incumbent's, so no iteration count justifies the conversion.
const NeverAmortize = 1 << 30

// BreakEven returns the smallest iteration count k at which paying
// convertSec up front and running k SpMVs at chosenSec beats running all k
// on the unconverted matrix at incumbentSec:
//
//	convertSec + k·chosenSec ≤ k·incumbentSec
//
// It returns NeverAmortize when the chosen format is not actually faster
// (gain ≤ 0) or when either rate is missing (≤ 0): without measurements the
// safe answer is to keep serving CSR rather than convert on a guess.
func BreakEven(convertSec, incumbentSec, chosenSec float64) int {
	if incumbentSec <= 0 || chosenSec <= 0 {
		return NeverAmortize
	}
	gain := incumbentSec - chosenSec
	if gain <= 0 {
		return NeverAmortize
	}
	be := math.Ceil(convertSec / gain)
	if be < 1 {
		return 1
	}
	if be >= NeverAmortize {
		return NeverAmortize
	}
	return int(be)
}

// ConversionState reports where an operator stands in the background
// conversion lifecycle.
type ConversionState int32

const (
	// ConvertNone: the operator was born in its final format; no background
	// conversion was ever scheduled.
	ConvertNone ConversionState = iota
	// ConvertPending: a worker is building the amortised winner; calls serve
	// the tuned-CSR incumbent until the swap lands.
	ConvertPending
	// ConvertDone: the background conversion finished and the operator now
	// serves the converted format.
	ConvertDone
	// ConvertFailed: the background conversion failed (the fill guard can
	// reject a fingerprint-colliding matrix); the operator serves tuned CSR
	// permanently, which is always correct.
	ConvertFailed
)

// String returns a stable lower-case name for the state.
func (s ConversionState) String() string {
	switch s {
	case ConvertNone:
		return "none"
	case ConvertPending:
		return "pending"
	case ConvertDone:
		return "done"
	case ConvertFailed:
		return "failed"
	default:
		return fmt.Sprintf("ConversionState(%d)", int32(s))
	}
}

// ConversionState reports the operator's background-conversion state.
func (o *Operator[T]) ConversionState() ConversionState {
	return ConversionState(o.convState.Load())
}

// AwaitConversion blocks until a pending background conversion has either
// swapped in the converted engine or failed, then returns the final state.
// It returns immediately (ConvertNone) for operators born in their final
// format.
func (o *Operator[T]) AwaitConversion() ConversionState {
	if o.convDone != nil {
		<-o.convDone
	}
	return o.ConversionState()
}

// validForHint returns the cache-entry validation predicate for a tuning
// request. With an iteration hint, a non-CSR entry must carry the leader's
// amortisation measurements — otherwise the break-even point cannot be
// computed and the entry is treated as stale and re-tuned. This is how
// cached decisions are validated against the iteration hint while staying
// keyed purely by the structural fingerprint.
func validForHint(opts TuneOptions) func(CacheEntry) bool {
	if opts.Iterations <= 0 {
		return nil
	}
	return func(e CacheEntry) bool {
		return e.Format == matrix.FormatCSR ||
			(e.ConvertSec > 0 && e.SpMVSec > 0 && e.IncumbentSec > 0)
	}
}

// accountAmortization fills the payoff-model fields of a freshly decided
// non-CSR decision: the chosen format's per-SpMV rate, the tuned-CSR
// incumbent's rate, and the break-even iteration count they imply together
// with the already-measured conversion time. Rates the fallback already
// measured are reused; otherwise a bounded probe (same budget policy as the
// batch-crossover probe) runs on the steady-state pooled path.
func (t *Tuner[T]) accountAmortization(m *matrix.CSR[T], d *Decision, op *Operator[T]) {
	if d.Chosen == matrix.FormatCSR || m.NNZ() == 0 {
		return
	}
	start := time.Now()
	defer func() { d.AmortProbeSec = time.Since(start).Seconds() }()

	measure := t.probeBudget(d)
	flops := float64(kernels.FLOPs(m.NNZ()))

	if g, ok := d.Measured[d.Chosen]; ok && g > 0 {
		d.ChosenSpMVSec = flops / (g * 1e9)
	} else {
		e := op.eng.Load()
		x := make([]T, m.Cols)
		for i := range x {
			x[i] = 1
		}
		y := make([]T, m.Rows)
		d.ChosenSpMVSec = MeasureSecPerOp(func() { e.kernel.RunPooled(e.mat, x, y, t.pool) }, measure)
	}

	if g, ok := d.Measured[matrix.FormatCSR]; ok && g > 0 {
		d.IncumbentSec = flops / (g * 1e9)
	} else {
		mat := &kernels.Mat[T]{Format: matrix.FormatCSR, CSR: m}
		k := t.kernelFor(matrix.FormatCSR)
		x := make([]T, m.Cols)
		for i := range x {
			x[i] = 1
		}
		y := make([]T, m.Rows)
		d.IncumbentSec = MeasureSecPerOp(func() { k.RunPooled(mat, x, y, t.pool) }, measure)
	}

	d.BreakEvenIters = BreakEven(d.ConvertSec, d.IncumbentSec, d.ChosenSpMVSec)
}

// incumbent builds the tuned-CSR operator the amortised path serves: the
// zero-conversion-cost default of the payoff model. No probes run — the CSR
// input is wrapped as-is with the model's CSR kernel and the default batch
// crossover.
//
//smat:atomic-init
func (t *Tuner[T]) incumbent(m *matrix.CSR[T]) *Operator[T] {
	mat := &kernels.Mat[T]{Format: matrix.FormatCSR, CSR: m}
	op := newOperator(mat, t.kernelFor(matrix.FormatCSR), t.pool, m.NNZ())
	e := op.eng.Load()
	e.batch = t.lib.BatchForParams(matrix.FormatCSR, t.paramsFor(matrix.FormatCSR))
	e.batchCrossover = defaultBatchCrossover
	return op
}

// incumbentDecision rewrites d to serve the tuned-CSR incumbent op and
// records why (the hint overrode the asymptotic winner), including the
// incumbent's own parameters.
func (t *Tuner[T]) incumbentDecision(d *Decision, op *Operator[T]) {
	e := op.eng.Load()
	d.Amortized = true
	d.Converted = true
	d.Chosen = matrix.FormatCSR
	d.Kernel = e.kernel.Name
	d.Params = t.decisionParams(matrix.FormatCSR, e.kernel)
	d.BatchCrossover = 0
	if e.batch != nil {
		d.Params.BatchTile = e.batch.Params.BatchTile
		d.BatchCrossover = defaultBatchCrossover
	}
}

// amortize weighs a freshly decided (leader-path) operator against the
// caller's iteration hint. The asymptotic operator already exists — its
// conversion doubled as the cost probe — so when the hint says conversion
// does not pay, the materialised format is discarded and the tuned-CSR
// incumbent served instead; the conversion cost was bounded probe work,
// already accounted in the decision's overhead.
func (t *Tuner[T]) amortize(m *matrix.CSR[T], d *Decision, op *Operator[T], opts TuneOptions) *Operator[T] {
	if opts.Iterations <= 0 || d.Chosen == matrix.FormatCSR || opts.Iterations >= d.BreakEvenIters {
		d.Converted = true
		return op
	}
	inc := t.incumbent(m)
	t.incumbentDecision(d, inc)
	return inc
}

// applyAmortized materialises a cached decision under the caller's options.
// Without an iteration hint (or with a cached CSR winner) it is the plain
// inline apply. With a hint, the cached cost measurements decide: below
// break-even the tuned-CSR incumbent is served and nothing is converted at
// all; at or above it the conversion runs — inline when opts.SyncConvert is
// set, otherwise in the background while the incumbent serves the first
// calls, swapped in atomically when ready.
func (t *Tuner[T]) applyAmortized(m *matrix.CSR[T], d *Decision, entry CacheEntry, opts TuneOptions) (*Operator[T], error) {
	d.Asymptotic = entry.Format
	if opts.Iterations <= 0 || entry.Format == matrix.FormatCSR {
		return t.apply(m, d, entry)
	}

	d.ChosenSpMVSec = entry.SpMVSec
	d.IncumbentSec = entry.IncumbentSec
	d.BreakEvenIters = BreakEven(entry.ConvertSec, entry.IncumbentSec, entry.SpMVSec)

	if opts.Iterations < d.BreakEvenIters {
		// Too few iterations to pay for the conversion: the whole point of
		// the amortised cache hit is that nothing is converted here.
		op := t.incumbent(m)
		d.CacheHit = true
		d.Predicted = entry.Format
		d.PredictedOK = true
		d.Confidence = entry.Confidence
		t.incumbentDecision(d, op)
		return op, nil
	}

	if opts.SyncConvert || (runtime.GOMAXPROCS(0) == 1 && opts.HoldConversion == nil) {
		// Inline conversion: requested explicitly, or forced because a
		// single-CPU process has no spare core to pay the conversion off the
		// critical path — backgrounding there only delays the swap behind the
		// serving goroutine. A HoldConversion channel overrides the CPU check:
		// it exists precisely to pin the background protocol open for tests
		// and the differential oracle.
		return t.apply(m, d, entry)
	}

	// Amortised winner with enough iterations ahead: serve tuned CSR now,
	// build entry.Format in the background, swap when ready.
	op := t.incumbent(m)
	op.convDone = make(chan struct{})
	op.convState.Store(int32(ConvertPending))
	d.CacheHit = true
	d.Predicted = entry.Format
	d.PredictedOK = true
	d.Confidence = entry.Confidence
	d.Chosen = entry.Format
	d.Kernel = t.cachedKernel(entry).Name
	d.Params = entry.Params
	d.ConvertSec = entry.ConvertSec // the cost being paid in the background
	d.Converted = false
	cross := entry.BatchCrossover
	if cross < 2 {
		cross = defaultBatchCrossover
	}
	if t.lib.BatchForParams(entry.Format, entry.Params) != nil {
		d.BatchCrossover = cross
	}
	go t.convertWorker(op, m, entry, cross, opts.HoldConversion)
	return op, nil
}

// convertWorker is the single background conversion worker of one operator:
// it materialises the amortised winner and publishes it with one atomic
// engine store. The state transition to ConvertDone happens after the store,
// so an observer that sees Done is guaranteed the next call serves the new
// format. Failure (fill guard on a fingerprint-colliding matrix) leaves the
// operator serving tuned CSR permanently — correct, just not faster.
//
//smat:syncsafe
//smat:atomic-publish
func (t *Tuner[T]) convertWorker(op *Operator[T], m *matrix.CSR[T], entry CacheEntry, crossover int, hold <-chan struct{}) {
	defer close(op.convDone)
	if hold != nil {
		<-hold
	}
	mat, _, err := kernels.ConvertTimedParams(m, entry.Format, t.model.MaxFill, entry.Params)
	if err != nil {
		op.convState.Store(int32(ConvertFailed))
		return
	}
	e := &engine[T]{
		mat:            mat,
		kernel:         t.cachedKernel(entry),
		batch:          t.lib.BatchForParams(entry.Format, entry.Params),
		batchCrossover: crossover,
	}
	op.eng.Store(e)
	op.convState.Store(int32(ConvertDone))
}

// tuneHinted materialises the caller's format hint directly, bypassing both
// the model and the decision cache. The conversion is timed (it is the
// eager-convert reference point of the payoff model) but never weighed: the
// hint pins the format regardless of the iteration hint, so BreakEvenIters
// is left unset here.
func (t *Tuner[T]) tuneHinted(m *matrix.CSR[T], d *Decision, opts TuneOptions) (*Operator[T], error) {
	f := opts.FormatHint
	k := t.kernelFor(f)
	if k == nil {
		return nil, fmt.Errorf("autotune: no kernel registered for hinted format %v", f)
	}
	mat, timing, err := kernels.ConvertTimedParams(m, f, t.model.MaxFill, t.paramsFor(f))
	d.ConvertSec = timing.Sec
	if err != nil {
		return nil, err
	}
	d.ConvertStored = timing.Stored
	d.Predicted = f
	d.PredictedOK = true
	d.Confidence = 1
	d.Chosen = f
	d.Asymptotic = f
	d.Kernel = k.Name
	d.Params = t.decisionParams(f, k)
	d.Converted = true
	op := newOperator(mat, k, t.pool, m.NNZ())
	t.accountCSRBaseline(m, d)
	t.bindBatch(op, d)
	return op, nil
}
