package autotune

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smat/internal/features"
	"smat/internal/matrix"
)

// keyN builds a distinct fingerprint for each n.
func keyN(n int) features.Key {
	return features.Key{M: uint8(n), N: uint8(n >> 8), NNZ: uint8(n >> 16)}
}

// sameShardKeys returns count distinct keys that all hash to one shard.
func sameShardKeys(t *testing.T, count int) []features.Key {
	t.Helper()
	want := keyN(0).Hash() % cacheShards
	keys := []features.Key{keyN(0)}
	for n := 1; len(keys) < count && n < 1<<20; n++ {
		if k := keyN(n); k.Hash()%cacheShards == want {
			keys = append(keys, k)
		}
	}
	if len(keys) < count {
		t.Fatalf("could not craft %d same-shard keys", count)
	}
	return keys
}

func TestCacheDoCachesAndHits(t *testing.T) {
	c := NewCache(128)
	calls := 0
	tune := func() (CacheEntry, error) {
		calls++
		return CacheEntry{Format: matrix.FormatDIA, Kernel: "dia_basic", Confidence: 0.9}, nil
	}
	e, fromCache, err := c.Do(keyN(1), 0, tune)
	if err != nil || fromCache || e.Format != matrix.FormatDIA {
		t.Fatalf("first Do: entry=%+v fromCache=%v err=%v", e, fromCache, err)
	}
	e, fromCache, err = c.Do(keyN(1), 0, tune)
	if err != nil || !fromCache || e.Kernel != "dia_basic" {
		t.Fatalf("second Do: entry=%+v fromCache=%v err=%v", e, fromCache, err)
	}
	if calls != 1 {
		t.Errorf("tune ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
}

func TestCacheSingleflightDedup(t *testing.T) {
	c := NewCache(128)
	const waiters = 16
	var calls atomic.Int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			e, _, err := c.Do(keyN(7), 0, func() (CacheEntry, error) {
				calls.Add(1)
				time.Sleep(30 * time.Millisecond) // hold the flight open
				return CacheEntry{Format: matrix.FormatELL, Confidence: 0.8}, nil
			})
			if err != nil || e.Format != matrix.FormatELL {
				t.Errorf("Do: entry=%+v err=%v", e, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("tune ran %d times under singleflight, want exactly 1", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Shared+st.Hits != waiters-1 {
		t.Errorf("stats = %+v, want 1 miss and %d shared+hits", st, waiters-1)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Capacity 128 over 64 shards = 2 entries per shard. Three keys on one
	// shard: after touching the first, inserting the third must evict the
	// second (least recently used), not the first.
	keys := sameShardKeys(t, 3)
	c := NewCache(128)
	put := func(k features.Key) {
		c.Do(k, 0, func() (CacheEntry, error) {
			return CacheEntry{Format: matrix.FormatCSR, Confidence: 1}, nil
		})
	}
	put(keys[0])
	put(keys[1])
	if _, ok := c.Get(keys[0]); !ok { // bump keys[0] to most-recent
		t.Fatal("keys[0] missing before eviction")
	}
	put(keys[2])
	if _, ok := c.Get(keys[0]); !ok {
		t.Error("recently-used entry was evicted")
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Error("least-recently-used entry survived past capacity")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheRefreshLowConfidence(t *testing.T) {
	c := NewCache(64)
	c.Put(keyN(3), CacheEntry{Format: matrix.FormatCSR, Confidence: 0.3})

	// Below the refresh bar: the entry is re-tuned and replaced.
	refreshed := false
	e, fromCache, err := c.Do(keyN(3), 0.85, func() (CacheEntry, error) {
		refreshed = true
		return CacheEntry{Format: matrix.FormatCOO, Confidence: 1, Measured: true}, nil
	})
	if err != nil || fromCache || !refreshed || e.Format != matrix.FormatCOO {
		t.Fatalf("refresh: entry=%+v fromCache=%v refreshed=%v err=%v", e, fromCache, refreshed, err)
	}
	if st := c.Stats(); st.Refreshes != 1 {
		t.Errorf("refreshes = %d, want 1", st.Refreshes)
	}

	// Measured entries are ground truth: never refreshed, whatever the bar.
	e, fromCache, _ = c.Do(keyN(3), 2.0, func() (CacheEntry, error) {
		t.Error("measured entry was re-tuned")
		return CacheEntry{}, nil
	})
	if !fromCache || e.Format != matrix.FormatCOO {
		t.Errorf("measured entry not served: entry=%+v fromCache=%v", e, fromCache)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(64)
	boom := errors.New("boom")
	if _, _, err := c.Do(keyN(9), 0, func() (CacheEntry, error) { return CacheEntry{}, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Error("failed tune was cached")
	}
	// The next caller runs its own tune.
	e, fromCache, err := c.Do(keyN(9), 0, func() (CacheEntry, error) {
		return CacheEntry{Format: matrix.FormatELL, Confidence: 0.9}, nil
	})
	if err != nil || fromCache || e.Format != matrix.FormatELL {
		t.Errorf("retry after error: entry=%+v fromCache=%v err=%v", e, fromCache, err)
	}
}

func TestCacheWaiterRetriesAfterLeaderError(t *testing.T) {
	c := NewCache(64)
	boom := errors.New("boom")
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(keyN(11), 0, func() (CacheEntry, error) {
			close(leaderIn)
			<-release
			return CacheEntry{}, boom
		})
	}()
	<-leaderIn
	done := make(chan struct{})
	go func() {
		defer close(done)
		// This waiter blocks on the leader, sees its error, and retries as
		// its own leader.
		e, _, err := c.Do(keyN(11), 0, func() (CacheEntry, error) {
			return CacheEntry{Format: matrix.FormatDIA, Confidence: 0.9}, nil
		})
		if err != nil || e.Format != matrix.FormatDIA {
			t.Errorf("waiter retry: entry=%+v err=%v", e, err)
		}
	}()
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter deadlocked after leader error")
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	// Hammer the cache from many goroutines over a small key space with a
	// tiny capacity, exercising hits, evictions and singleflight together.
	c := NewCache(1) // 1 entry per shard
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := keyN((g + i) % 40)
				e, _, err := c.Do(k, 0, func() (CacheEntry, error) {
					return CacheEntry{Format: matrix.FormatCSR, Confidence: 1, Kernel: "csr_basic"}, nil
				})
				if err != nil || e.Kernel != "csr_basic" {
					t.Errorf("Do: entry=%+v err=%v", e, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Shared+st.Misses != 8*500 {
		t.Errorf("counter total %d, want %d (stats %+v)", st.Hits+st.Shared+st.Misses, 8*500, st)
	}
	if st.Size > 64 {
		t.Errorf("size %d exceeds per-shard bound", st.Size)
	}
}
