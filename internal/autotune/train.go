package autotune

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"smat/internal/corpus"
	"smat/internal/features"
	"smat/internal/kernels"
	"smat/internal/matrix"
	"smat/internal/mining"
)

// DefaultConfidenceThreshold gates runtime predictions: a format is accepted
// only when its matched rule-group confidence exceeds this value, otherwise
// the execute-and-measure fallback runs (Section 6).
const DefaultConfidenceThreshold = 0.85

// ModelSchemaVersion is the newest model schema this build writes. Version 1
// models (no parameter map) load unchanged: a nil Params map means every
// format runs its fixed-menu kernel with default parameters.
const ModelSchemaVersion = 2

// Model is the serialisable artifact of the off-line stage: the tailored
// ruleset, the per-format kernel choice for the trained architecture
// configuration, and the runtime thresholds. Generated once per architecture
// and reused for every input matrix.
type Model struct {
	Version             int               `json:"version"`
	Threads             int               `json:"threads"`
	ConfidenceThreshold float64           `json:"confidence_threshold"`
	MaxFill             float64           `json:"max_fill"`
	Kernels             map[string]string `json:"kernels"` // format name -> kernel name
	// Params is the schema-v2 addition: the per-format tunable parameters the
	// off-line search settled on (conversion-level knobs like BCSR block shape
	// and the HYB width cut, plus the batch register tile). Absent in v1
	// models, where the zero Params — the fixed menu — applies everywhere.
	Params  map[string]kernels.Params `json:"params,omitempty"`
	Ruleset *mining.Ruleset           `json:"ruleset"`
}

// classNames maps mining class indices to format names; class index is the
// matrix.Format value.
func classNames() []string {
	return []string{
		matrix.FormatCSR.String(),
		matrix.FormatCOO.String(),
		matrix.FormatDIA.String(),
		matrix.FormatELL.String(),
	}
}

// TrainConfig controls the off-line training stage.
type TrainConfig struct {
	// Threads is the architecture configuration being trained (≤0:
	// GOMAXPROCS).
	Threads int
	// Measure controls each labeling measurement.
	Measure MeasureOptions
	// Tree configures the decision-tree inducer.
	Tree mining.TreeConfig
	// TailorLoss is the allowed training-accuracy loss of rule tailoring
	// (default 0.01, the paper's 1%).
	TailorLoss float64
	// ConfidenceThreshold for the runtime (default
	// DefaultConfidenceThreshold).
	ConfidenceThreshold float64
	// SkipKernelSearch labels with basic kernels instead of running the
	// scoreboard search first (used by fast tests).
	SkipKernelSearch bool
	// ProbeScale scales the kernel-search probe matrices.
	ProbeScale float64
	// Seed feeds the kernel-search probes.
	Seed int64
	// Progress, when non-nil, receives labeling progress.
	Progress func(done, total int)
}

// TrainResult is the trained model plus the artifacts of the off-line stage.
type TrainResult struct {
	Model         *Model
	Search        []SearchResult
	ParamSearch   []ParamSearchResult
	Labels        []Label
	Database      *Database
	Dataset       *mining.Dataset
	FullRuleset   *mining.Ruleset
	FullRules     int
	TailoredRules int
	TrainAccuracy float64
}

// Train runs the complete off-line stage on the given corpus entries:
// scoreboard kernel search, exhaustive labeling, feature extraction, tree
// induction, rule extraction and tailoring.
func Train(entries []*corpus.Entry, cfg TrainConfig) (*TrainResult, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("autotune: empty training set")
	}
	if cfg.Threads <= 0 {
		cfg.Threads = runtime.GOMAXPROCS(0)
	}
	if cfg.TailorLoss <= 0 {
		cfg.TailorLoss = 0.01
	}
	if cfg.ConfidenceThreshold <= 0 {
		cfg.ConfidenceThreshold = DefaultConfidenceThreshold
	}

	res := &TrainResult{}
	var choice KernelChoice
	var params ParamChoice
	if cfg.SkipKernelSearch {
		choice = KernelChoice{}
	} else {
		choice, params, res.Search, res.ParamSearch = SearchKernelsParams(SearchConfig{
			Threads:    cfg.Threads,
			ProbeScale: cfg.ProbeScale,
			Measure:    cfg.Measure,
			Seed:       cfg.Seed,
		})
	}

	// Labeling phase: measure every training matrix into the feature
	// database (the paper's Figure 4 "Feature Database"). With the kernel
	// search on, labeling walks each format's parameter space per matrix and
	// the database rows record the winning parameters (schema v2).
	labeler := NewLabeler(choice, cfg.Threads, cfg.Measure)
	db := &Database{}
	for i, e := range entries {
		m := e.Matrix()
		f := features.Extract(m)
		var lbl Label
		if cfg.SkipKernelSearch {
			lbl = labeler.Label(m)
			db.Append(e.Name, e.Domain, f, lbl)
		} else {
			var perMatrix map[matrix.Format]kernels.Params
			lbl, perMatrix = labeler.LabelParams(m, &f)
			db.AppendParams(e.Name, e.Domain, f, lbl, perMatrix)
		}
		res.Labels = append(res.Labels, lbl)
		if cfg.Progress != nil {
			cfg.Progress(i+1, len(entries))
		}
	}

	// Learning phase: everything after labeling is measurement-free and
	// shared with TrainFromDatabase.
	learned, err := TrainFromDatabase(db, choice, cfg)
	if err != nil {
		return nil, err
	}
	learned.Search = res.Search
	learned.ParamSearch = res.ParamSearch
	learned.Labels = res.Labels
	learned.Database = db
	if len(params) > 0 {
		learned.Model.Version = ModelSchemaVersion
		learned.Model.Params = map[string]kernels.Params{}
		for f, p := range params {
			learned.Model.Params[f.String()] = p
		}
	}
	return learned, nil
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// LoadModel reads a model written by Save and validates it. Both schema
// versions load: a v1 model simply has no parameter map, so every format
// runs with the zero (fixed-menu) parameters.
func LoadModel(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("autotune: load model: %w", err)
	}
	if m.Version > ModelSchemaVersion {
		return nil, fmt.Errorf("autotune: model schema version %d is newer than this build supports (%d)",
			m.Version, ModelSchemaVersion)
	}
	if m.Ruleset == nil {
		return nil, fmt.Errorf("autotune: model has no ruleset")
	}
	if len(m.Ruleset.ClassNames) != len(classNames()) {
		return nil, fmt.Errorf("autotune: model has %d classes, want %d",
			len(m.Ruleset.ClassNames), len(classNames()))
	}
	if m.ConfidenceThreshold <= 0 || m.ConfidenceThreshold > 1 {
		return nil, fmt.Errorf("autotune: confidence threshold %g outside (0,1]", m.ConfidenceThreshold)
	}
	if m.MaxFill <= 0 {
		m.MaxFill = DefaultMaxFill
	}
	return &m, nil
}
