package autotune

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"smat/internal/features"
	"smat/internal/gen"
	"smat/internal/matrix"
)

// TestBreakEvenArithmetic pins the payoff inequality
// convertSec + k·chosenSec ≤ k·incumbentSec at the exact boundary.
func TestBreakEvenArithmetic(t *testing.T) {
	// gain = 0.2 - 0.1 = 0.1 per SpMV, convert = 1.0 → break-even at k = 10.
	be := BreakEven(1.0, 0.2, 0.1)
	if be != 10 {
		t.Fatalf("BreakEven(1.0, 0.2, 0.1) = %d, want 10", be)
	}
	cases := []struct {
		k       int
		convert bool // should k iterations justify converting?
	}{
		{1, false},
		{be - 1, false},
		{be, true},
		{1e9, true},
	}
	for _, c := range cases {
		if got := c.k >= be; got != c.convert {
			t.Errorf("k=%d: convert=%v, want %v", c.k, got, c.convert)
		}
	}

	// A conversion that is free still needs one iteration to matter.
	if got := BreakEven(0, 0.2, 0.1); got != 1 {
		t.Errorf("free conversion: break-even %d, want 1", got)
	}
	// No gain, or missing measurements: never convert.
	for _, args := range [][3]float64{
		{1, 0.1, 0.1},  // no gain
		{1, 0.1, 0.2},  // chosen slower
		{1, 0, 0.1},    // incumbent unmeasured
		{1, 0.1, 0},    // chosen unmeasured
		{1e30, 1, 0.5}, // astronomically expensive conversion
	} {
		if got := BreakEven(args[0], args[1], args[2]); got != NeverAmortize {
			t.Errorf("BreakEven(%v) = %d, want NeverAmortize", args, got)
		}
	}
}

func TestTuneOptsRejectsNegativeIterations(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatCSR, 0.99), 1)
	defer tuner.Close()
	m := gen.RandomUniform[float64](50, 50, 3, rand.New(rand.NewSource(21)))
	if _, _, err := tuner.TuneOpts(m, TuneOptions{Iterations: -1}); err == nil {
		t.Fatal("negative iteration hint accepted")
	}
}

// intDiagonal builds a small-integer tri-diagonal matrix: every kernel sums
// the same small integers, so CSR and DIA engines agree bit-for-bit and a
// single dense reference checks results from either side of a swap.
func intDiagonal(n int) *matrix.CSR[float64] {
	var ts []matrix.Triple[float64]
	for i := 0; i < n; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: i, Col: i, Val: float64(1 + i%7)})
		if i+1 < n {
			ts = append(ts, matrix.Triple[float64]{Row: i, Col: i + 1, Val: float64(1 + i%5)})
			ts = append(ts, matrix.Triple[float64]{Row: i + 1, Col: i, Val: float64(1 + i%3)})
		}
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

// seedAmortized plants a measured DIA decision with synthetic costs
// (break-even at k = 10) in the tuner's cache for m's fingerprint, so the
// amortisation paths run deterministically regardless of machine speed.
func seedAmortized[T matrix.Float](tuner *Tuner[T], m *matrix.CSR[T], crossover int) {
	tuner.Cache().Put(m2key(m), CacheEntry{
		Format:         matrix.FormatDIA,
		Confidence:     1,
		Measured:       true,
		BatchCrossover: crossover,
		ConvertSec:     1.0,
		SpMVSec:        0.1,
		IncumbentSec:   0.2,
	})
}

func m2key[T matrix.Float](m *matrix.CSR[T]) features.Key {
	f := features.Extract(m)
	return f.Key()
}

// TestAmortizedCacheHitBelowBreakEven: with too few iterations ahead, a
// cached non-CSR winner must not be converted at all — the operator serves
// tuned CSR and says so.
func TestAmortizedCacheHitBelowBreakEven(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatDIA, 0.99), 2)
	defer tuner.Close()
	m := intDiagonal(300)
	seedAmortized(tuner, m, 2)

	op, d, err := tuner.TuneOpts(m, TuneOptions{Iterations: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !d.CacheHit {
		t.Fatal("seeded decision missed the cache")
	}
	if d.BreakEvenIters != 10 {
		t.Errorf("BreakEvenIters = %d, want 10", d.BreakEvenIters)
	}
	if !d.Amortized || d.Chosen != matrix.FormatCSR || d.Asymptotic != matrix.FormatDIA {
		t.Errorf("decision = %+v, want amortised CSR with DIA asymptotic", d)
	}
	if !d.Converted {
		t.Error("amortised-skip operator is in its final format; Converted should be true")
	}
	if op.Format() != matrix.FormatCSR {
		t.Errorf("operator format = %v, want CSR", op.Format())
	}
	if st := op.ConversionState(); st != ConvertNone {
		t.Errorf("ConversionState = %v, want none", st)
	}
	checkAgainstDense(t, op, m)
}

// TestAmortizedCacheHitSyncConvert: at or past break-even with SyncConvert,
// the conversion runs inline exactly as an eager cache hit.
func TestAmortizedCacheHitSyncConvert(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatDIA, 0.99), 2)
	defer tuner.Close()
	m := intDiagonal(300)
	seedAmortized(tuner, m, 2)

	op, d, err := tuner.TuneOpts(m, TuneOptions{Iterations: 10, SyncConvert: true})
	if err != nil {
		t.Fatal(err)
	}
	if !d.CacheHit || !d.Converted || d.Amortized {
		t.Errorf("decision = %+v, want converted inline cache hit", d)
	}
	if op.Format() != matrix.FormatDIA {
		t.Errorf("operator format = %v, want DIA", op.Format())
	}
	if st := op.AwaitConversion(); st != ConvertNone {
		t.Errorf("ConversionState = %v, want none (no background work)", st)
	}
	checkAgainstDense(t, op, m)
}

// TestAmortizedCacheHitAsyncSwap: past break-even without SyncConvert, the
// operator serves tuned CSR immediately, converts in the background, and
// swaps — correct answers on both sides of the swap.
func TestAmortizedCacheHitAsyncSwap(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatDIA, 0.99), 2)
	defer tuner.Close()
	m := intDiagonal(300)
	seedAmortized(tuner, m, 2)

	hold := make(chan struct{})
	op, d, err := tuner.TuneOpts(m, TuneOptions{Iterations: 100, HoldConversion: hold})
	if err != nil {
		t.Fatal(err)
	}
	if !d.CacheHit || d.Converted || d.Chosen != matrix.FormatDIA {
		t.Errorf("decision = %+v, want pending DIA conversion", d)
	}
	if st := op.ConversionState(); st != ConvertPending {
		t.Fatalf("ConversionState = %v, want pending", st)
	}
	if op.Format() != matrix.FormatCSR {
		t.Fatalf("pre-swap format = %v, want CSR incumbent", op.Format())
	}
	checkAgainstDense(t, op, m) // served from the incumbent

	close(hold)
	if st := op.AwaitConversion(); st != ConvertDone {
		t.Fatalf("AwaitConversion = %v, want done", st)
	}
	if op.Format() != matrix.FormatDIA {
		t.Errorf("post-swap format = %v, want DIA", op.Format())
	}
	checkAgainstDense(t, op, m) // served from the swapped-in engine
}

// TestHintValidationRefreshesCostlessEntry: a cached non-CSR entry without
// amortisation measurements cannot answer an iteration-hinted request — it
// must be refreshed, not blindly applied.
func TestHintValidationRefreshesCostlessEntry(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatDIA, 0.99), 2)
	defer tuner.Close()
	m := intDiagonal(300)
	tuner.Cache().Put(m2key(m), CacheEntry{Format: matrix.FormatDIA, Confidence: 1, Measured: true})

	// Without a hint the costless entry is a perfectly good cache hit.
	_, d0, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if !d0.CacheHit {
		t.Fatal("hint-free lookup should hit the costless entry")
	}

	_, d, err := tuner.TuneOpts(m, TuneOptions{Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if d.CacheHit {
		t.Fatal("costless entry served an iteration-hinted request")
	}
	if d.Asymptotic != matrix.FormatDIA {
		t.Errorf("refreshed asymptotic = %v, want DIA", d.Asymptotic)
	}
	if d.ChosenSpMVSec <= 0 || d.IncumbentSec <= 0 || d.ConvertSec <= 0 {
		t.Errorf("refresh did not measure amortisation rates: %+v", d)
	}
	if entry, ok := tuner.Cache().Get(m2key(m)); !ok || entry.SpMVSec <= 0 || entry.IncumbentSec <= 0 {
		t.Errorf("refreshed entry lacks cost measurements: %+v", entry)
	}
}

// TestLeaderRecordsAmortization: a fresh (cache-miss) non-CSR decision must
// carry the payoff measurements, and an iteration hint of 1 must never leave
// the caller with a conversion that cannot pay off.
func TestLeaderRecordsAmortization(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatDIA, 0.99), 2)
	defer tuner.Close()
	m := intDiagonal(2000)
	op, d, err := tuner.TuneOpts(m, TuneOptions{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Asymptotic != matrix.FormatDIA {
		t.Fatalf("asymptotic = %v, want DIA", d.Asymptotic)
	}
	if d.ChosenSpMVSec <= 0 || d.IncumbentSec <= 0 {
		t.Errorf("leader did not record per-SpMV rates: %+v", d)
	}
	if d.BreakEvenIters < 1 {
		t.Errorf("BreakEvenIters = %d, want ≥ 1", d.BreakEvenIters)
	}
	// Whichever way the measurement went, the decision must be coherent:
	// convert only when one iteration reaches break-even.
	wantConvert := 1 >= d.BreakEvenIters
	if wantConvert && (d.Amortized || op.Format() != matrix.FormatDIA) {
		t.Errorf("k=1 ≥ break-even %d but operator amortised to %v", d.BreakEvenIters, op.Format())
	}
	if !wantConvert && (!d.Amortized || op.Format() != matrix.FormatCSR) {
		t.Errorf("k=1 < break-even %d but operator is %v (amortized=%v)",
			d.BreakEvenIters, op.Format(), d.Amortized)
	}
	if !d.Converted {
		t.Error("leader-path operator is always in its final format")
	}
	checkAgainstDense(t, op, m)
}

// TestSwapWindowRace is the scratch-handoff regression test: 8 goroutines
// hammer MulVecBatch on the loop path (per-engine gather/scatter scratch)
// while the background conversion swaps the engine underneath them. Under
// -race this fails loudly if the swap races the scratch handoff; the value
// checks fail if a torn engine ever serves a wrong product.
func TestSwapWindowRace(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatDIA, 0.99), 2)
	defer tuner.Close()
	m := intDiagonal(200)
	// NeverBatch crossover forces every batched call through loopVectors,
	// the path that detaches and re-parks the scratch pair.
	seedAmortized(tuner, m, NeverBatch)

	hold := make(chan struct{})
	op, _, err := tuner.TuneOpts(m, TuneOptions{Iterations: 1 << 20, HoldConversion: hold})
	if err != nil {
		t.Fatal(err)
	}

	const k = 3
	want := denseBatchRef(m, k)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			xb := batchOnesInput(m.Cols, k)
			yb := make([]float64, m.Rows*k)
			<-start
			for i := 0; i < 200; i++ {
				if g == 0 && i == 50 {
					close(hold) // release the swap mid-hammer
				}
				op.MulVecBatch(xb, yb, k)
				for j := range yb {
					if yb[j] != want[j] {
						errs[g] = errAt(g, i, j, yb[j], want[j])
						return
					}
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := op.AwaitConversion(); st != ConvertDone {
		t.Fatalf("conversion state after hammering = %v, want done", st)
	}
	if op.Format() != matrix.FormatDIA {
		t.Errorf("post-swap format = %v, want DIA", op.Format())
	}
}

// TestSwapSteadyStateZeroAlloc: after the swap lands and one warm-up call
// re-seeds the new engine's scratch, the pooled path allocates nothing —
// the conversion must not add steady-state cost.
func TestSwapSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabledAutotune {
		t.Skip("allocation accounting is not stable under -race")
	}
	tuner := NewTuner[float64](modelAlways(matrix.FormatDIA, 0.99), 2)
	defer tuner.Close()
	m := intDiagonal(500)
	seedAmortized(tuner, m, NeverBatch)

	hold := make(chan struct{})
	op, _, err := tuner.TuneOpts(m, TuneOptions{Iterations: 1 << 20, HoldConversion: hold})
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	xb := batchOnesInput(m.Cols, k)
	yb := make([]float64, m.Rows*k)
	op.MulVecBatch(xb, yb, k) // pre-swap warm-up (incumbent scratch)

	close(hold)
	if st := op.AwaitConversion(); st != ConvertDone {
		t.Fatalf("conversion state = %v, want done", st)
	}
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	op.MulVec(x, y)           // warm the swapped-in engine's plan
	op.MulVecBatch(xb, yb, k) // seed the new engine's scratch
	if allocs := testing.AllocsPerRun(20, func() { op.MulVec(x, y) }); allocs != 0 {
		t.Errorf("MulVec after swap: %.1f allocs per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() { op.MulVecBatch(xb, yb, k) }); allocs != 0 {
		t.Errorf("MulVecBatch after swap: %.1f allocs per call, want 0", allocs)
	}
}

// checkAgainstDense verifies op against the dense reference; intDiagonal's
// small integers make every summation order exact, so equality is exact.
func checkAgainstDense(t *testing.T, op *Operator[float64], m *matrix.CSR[float64]) {
	t.Helper()
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i%4 + 1)
	}
	got := make([]float64, m.Rows)
	want := make([]float64, m.Rows)
	op.MulVec(x, got)
	m.ToDense().MulVec(x, want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %g, want %g", i, got[i], want[i])
		}
	}
}

// batchOnesInput builds an interleaved batch where RHS j is the vector with
// entries (c%4+1)+j, integer-valued for exact comparison.
func batchOnesInput(n, k int) []float64 {
	xb := make([]float64, n*k)
	for c := 0; c < n; c++ {
		for j := 0; j < k; j++ {
			xb[c*k+j] = float64(c%4 + 1 + j)
		}
	}
	return xb
}

// denseBatchRef computes the interleaved dense reference for batchOnesInput.
func denseBatchRef(m *matrix.CSR[float64], k int) []float64 {
	xb := batchOnesInput(m.Cols, k)
	yb := make([]float64, m.Rows*k)
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	dense := m.ToDense()
	for j := 0; j < k; j++ {
		for c := 0; c < m.Cols; c++ {
			x[c] = xb[c*k+j]
		}
		dense.MulVec(x, y)
		for r := 0; r < m.Rows; r++ {
			yb[r*k+j] = y[r]
		}
	}
	return yb
}

func errAt(g, i, j int, got, want float64) error {
	return fmt.Errorf("goroutine %d iter %d index %d: got %g, want %g", g, i, j, got, want)
}
