package autotune

import (
	"smat/internal/features"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// DefaultMaxFill bounds DIA/ELL zero-fill during labeling and fallback
// measurement: conversions that would store more than this multiple of NNZ
// are skipped as infeasible rather than measured.
const DefaultMaxFill = 20.0

// Label is the measured ground truth for one matrix: per-format GFLOPS
// (using each format's chosen kernel) and the winner.
type Label struct {
	Best   matrix.Format
	GFLOPS map[matrix.Format]float64
}

// Labeler measures matrices to produce training labels.
type Labeler struct {
	lib     *kernels.Library[float64]
	choice  KernelChoice
	threads int
	measure MeasureOptions
	maxFill float64
}

// NewLabeler builds a labeler that evaluates each format with the kernel the
// scoreboard search chose (choice may be nil: each format's best is then
// taken as its basic implementation).
func NewLabeler(choice KernelChoice, threads int, measure MeasureOptions) *Labeler {
	return &Labeler{
		lib:     kernels.NewLibrary[float64](),
		choice:  choice,
		threads: threads,
		measure: measure.withDefaults(),
		maxFill: DefaultMaxFill,
	}
}

// kernelFor resolves the kernel to use for a format.
func (l *Labeler) kernelFor(f matrix.Format) *kernels.Kernel[float64] {
	if name, ok := l.choice[f]; ok {
		if k := l.lib.Lookup(name); k != nil {
			return k
		}
	}
	return l.lib.Basic(f)
}

// Label measures the matrix in every feasible format and returns the
// winner. The exhaustive measurement is the paper's off-line ground truth
// (and the cost SMAT's learning model exists to avoid at runtime).
func (l *Labeler) Label(m *matrix.CSR[float64]) Label {
	lbl := Label{Best: matrix.FormatCSR, GFLOPS: map[matrix.Format]float64{}}
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1 + float64(i%5)/5
	}
	y := make([]float64, m.Rows)
	flops := kernels.FLOPs(m.NNZ())
	best := 0.0
	for _, f := range matrix.Formats {
		mat, err := kernels.Convert(m, f, l.maxFill)
		if err != nil {
			continue
		}
		k := l.kernelFor(f)
		sec := MeasureSecPerOp(func() { k.Run(mat, x, y, l.threads) }, l.measure)
		g := GFLOPS(flops, sec)
		lbl.GFLOPS[f] = g
		if g > best {
			best = g
			lbl.Best = f
		}
	}
	return lbl
}

// LabelParams is Label with the per-matrix parameter walk: each format's
// ground truth is the best over its whole tunable space (kernel instances ×
// conversion parameters, feature-pruned), and the winning parameters are
// returned per format so the database can record them. ft is the matrix's
// already-extracted feature row; formats whose walk was fully pruned or
// infeasible are absent from both maps.
func (l *Labeler) LabelParams(m *matrix.CSR[float64], ft *features.Features) (Label, map[matrix.Format]kernels.Params) {
	lbl := Label{Best: matrix.FormatCSR, GFLOPS: map[matrix.Format]float64{}}
	params := map[matrix.Format]kernels.Params{}
	best := 0.0
	for _, f := range matrix.Formats {
		res := SearchMatrixParams(l.lib, m, ft, f, l.threads, l.measure)
		if res.Kernel == "" {
			continue
		}
		lbl.GFLOPS[f] = res.GFLOPS
		if !res.Params.IsZero() {
			params[f] = res.Params
		}
		if res.GFLOPS > best {
			best = res.GFLOPS
			lbl.Best = f
		}
	}
	return lbl, params
}
