//go:build race

package autotune

const raceEnabledAutotune = true
