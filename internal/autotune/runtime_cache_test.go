package autotune

import (
	"math/rand"
	"sync"
	"testing"

	"smat/internal/features"
	"smat/internal/gen"
	"smat/internal/matrix"
)

// cloneScaled copies m's structure with every value multiplied by factor:
// an identical fingerprint with different numerics.
func cloneScaled(m *matrix.CSR[float64], factor float64) *matrix.CSR[float64] {
	vals := make([]float64, len(m.Vals))
	for i, v := range m.Vals {
		vals[i] = v * factor
	}
	return &matrix.CSR[float64]{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr, ColIdx: m.ColIdx, Vals: vals}
}

func TestTuneCacheHitOnIdenticalStructure(t *testing.T) {
	tuner := New[float64](modelAlways(matrix.FormatDIA, 0.99), Config{Threads: 2})
	a := gen.MultiDiagonal[float64](1000, []int{-1, 0, 1}, rand.New(rand.NewSource(1)))
	b := gen.MultiDiagonal[float64](1000, []int{-1, 0, 1}, rand.New(rand.NewSource(2)))

	_, d1, err := tuner.Tune(a)
	if err != nil {
		t.Fatal(err)
	}
	if d1.CacheHit {
		t.Error("first Tune reported a cache hit")
	}
	op, d2, err := tuner.Tune(b)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.CacheHit {
		t.Error("structurally identical matrix missed the cache")
	}
	if d2.Chosen != matrix.FormatDIA || op.Format() != matrix.FormatDIA {
		t.Errorf("cached decision chose %v, want DIA", d2.Chosen)
	}
	// The cached decision must still produce a correct operator for the
	// *new* matrix (its values differ from the leader's).
	x := make([]float64, b.Cols)
	for i := range x {
		x[i] = float64(i%5) + 1
	}
	got := make([]float64, b.Rows)
	want := make([]float64, b.Rows)
	op.MulVec(x, got)
	b.ToDense().MulVec(x, want)
	if !matrix.VecApproxEqual(got, want, 1e-9) {
		t.Error("cache-hit operator produced wrong result")
	}
	st := tuner.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestTuneCacheCachesFallbackWinner(t *testing.T) {
	// Low confidence forces execute-and-measure; the measured winner must
	// be cached so the second matrix skips the measurement entirely.
	tuner := New[float64](modelAlways(matrix.FormatDIA, 0.30), Config{Threads: 2})
	a := gen.RandomUniform[float64](1500, 1500, 6, rand.New(rand.NewSource(3)))
	b := cloneScaled(a, 2.5)

	_, d1, err := tuner.Tune(a)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.UsedFallback {
		t.Fatal("expected fallback on low confidence")
	}
	_, d2, err := tuner.Tune(b)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.CacheHit || d2.UsedFallback {
		t.Errorf("second Tune: CacheHit=%v UsedFallback=%v, want hit without fallback", d2.CacheHit, d2.UsedFallback)
	}
	if d2.Chosen != d1.Chosen {
		t.Errorf("cached decision %v differs from measured winner %v", d2.Chosen, d1.Chosen)
	}
	if d2.Confidence != 1 {
		t.Errorf("measured entry confidence = %g, want 1", d2.Confidence)
	}
}

func TestTuneCacheDisabled(t *testing.T) {
	tuner := New[float64](modelAlways(matrix.FormatDIA, 0.99), Config{Threads: 1, CacheSize: -1})
	a := gen.MultiDiagonal[float64](500, []int{0}, rand.New(rand.NewSource(5)))
	for i := 0; i < 2; i++ {
		_, d, err := tuner.Tune(a)
		if err != nil {
			t.Fatal(err)
		}
		if d.CacheHit {
			t.Fatal("cache hit with caching disabled")
		}
	}
	if st := tuner.Stats(); st != (CacheStats{}) {
		t.Errorf("stats = %+v, want zero value", st)
	}
}

func TestTuneNoFallbackBestEffort(t *testing.T) {
	// Low confidence + DisableFallback: no measurement may run; the
	// highest-confidence matching group (here the only rule, DIA — but the
	// matrix is irregular so DIA is infeasible) degrades to CSR.
	tuner := New[float64](modelAlways(matrix.FormatDIA, 0.30), Config{Threads: 1, DisableFallback: true})
	m := gen.RandomUniform[float64](1200, 1200, 6, rand.New(rand.NewSource(6)))
	op, d, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.UsedFallback {
		t.Error("fallback ran despite DisableFallback")
	}
	if d.Chosen != matrix.FormatCSR {
		t.Errorf("best effort chose %v, want CSR for irregular matrix", d.Chosen)
	}
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1
	}
	got := make([]float64, m.Rows)
	want := make([]float64, m.Rows)
	op.MulVec(x, got)
	m.ToDense().MulVec(x, want)
	if !matrix.VecApproxEqual(got, want, 1e-9) {
		t.Error("best-effort operator wrong result")
	}
}

func TestSharedCacheRefreshAcrossTuners(t *testing.T) {
	// A no-fallback tuner records a low-confidence decision; a measuring
	// tuner sharing the cache refreshes it with ground truth.
	model := modelAlways(matrix.FormatDIA, 0.30)
	noMeasure := New[float64](model, Config{Threads: 1, DisableFallback: true})
	m := gen.RandomUniform[float64](1500, 1500, 6, rand.New(rand.NewSource(7)))
	_, d1, err := noMeasure.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if d1.UsedFallback || d1.CacheHit {
		t.Fatalf("unexpected first decision %+v", d1)
	}

	measuring := New[float64](model, Config{Threads: 1, Cache: noMeasure.Cache()})
	_, d2, err := measuring.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.UsedFallback {
		t.Error("measuring tuner served the stale low-confidence entry instead of refreshing")
	}
	if st := measuring.Stats(); st.Refreshes != 1 {
		t.Errorf("refreshes = %d, want 1", st.Refreshes)
	}
	// After the refresh, even the no-fallback tuner sees the measured entry.
	_, d3, err := noMeasure.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if !d3.CacheHit || d3.Confidence != 1 {
		t.Errorf("post-refresh decision %+v, want measured cache hit", d3)
	}
}

func TestTuneCacheCollisionFallsBackToLocalDecision(t *testing.T) {
	// Force a pathological collision: seed the cache with a DIA decision
	// under the fingerprint of a matrix for which DIA is infeasible. Tune
	// must recover with a local decision and must not disturb the entry.
	n := 2000
	var ts []matrix.Triple[float64]
	for i := 0; i < n; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: i, Col: n - 1 - i, Val: 1})
		ts = append(ts, matrix.Triple[float64]{Row: i, Col: (i*7 + 3) % n, Val: 1})
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	tuner := New[float64](modelAlways(matrix.FormatCSR, 0.99), Config{Threads: 1})
	feat := features.Extract(m)
	key := feat.Key()
	tuner.Cache().Put(key, CacheEntry{Format: matrix.FormatDIA, Kernel: "dia_basic", Confidence: 1, Measured: true})

	op, d, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.CacheHit {
		t.Error("infeasible cached format reported as a hit")
	}
	if d.Chosen == matrix.FormatDIA || op.Format() == matrix.FormatDIA {
		t.Errorf("chose infeasible DIA (decision %+v)", d)
	}
	if e, ok := tuner.Cache().Get(key); !ok || e.Format != matrix.FormatDIA {
		t.Error("collision recovery disturbed the cached entry")
	}
}

func TestConcurrentTuneSingleflightOnTuner(t *testing.T) {
	// 32 goroutines tune structurally identical matrices through one tuner
	// with a slow (fallback) decision path: exactly one tuning run may
	// execute; everyone else blocks on it or hits the cache.
	tuner := New[float64](modelAlways(matrix.FormatDIA, 0.30), Config{Threads: 1})
	const goroutines = 32
	base := gen.RandomUniform[float64](1200, 1200, 6, rand.New(rand.NewSource(100)))
	mats := make([]*matrix.CSR[float64], goroutines)
	for i := range mats {
		mats[i] = cloneScaled(base, float64(i+1))
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			op, _, err := tuner.Tune(mats[i])
			if err != nil || op == nil {
				t.Errorf("Tune: %v", err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	st := tuner.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 tuning run (stats %+v)", st.Misses, st)
	}
	if st.Hits+st.Shared != goroutines-1 {
		t.Errorf("hits+shared = %d, want %d (stats %+v)", st.Hits+st.Shared, goroutines-1, st)
	}
}
