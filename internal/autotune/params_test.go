package autotune

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"smat/internal/features"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// fullParams exercises every Params field at once.
var fullParams = kernels.Params{
	Unroll: 8, BlockR: 2, BlockC: 4, BatchTile: 2,
	HybCut: 0.5, DIAMinDensity: 0.05,
}

func TestDecisionJSONRoundTripParams(t *testing.T) {
	d := Decision{
		Predicted:   matrix.FormatELL,
		PredictedOK: true,
		Confidence:  0.9,
		Chosen:      matrix.FormatELL,
		Kernel:      "ell_parallel_u8",
		Params:      fullParams,
	}
	data, err := json.Marshal(&d)
	if err != nil {
		t.Fatal(err)
	}
	var back Decision
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Params != d.Params {
		t.Errorf("Params changed in round trip: %+v vs %+v", back.Params, d.Params)
	}
	if back.Kernel != d.Kernel || back.Chosen != d.Chosen {
		t.Errorf("decision identity changed: %+v", back)
	}

	// A zero Params must serialise to nothing (fixed-menu decisions stay
	// byte-compatible with pre-parameter consumers).
	d.Params = kernels.Params{}
	data, err = json.Marshal(&d)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "unroll") || strings.Contains(string(data), "block_r") {
		t.Errorf("zero Params leaked fields into JSON: %s", data)
	}
}

func TestModelParamsRoundTrip(t *testing.T) {
	m := modelAlways(matrix.FormatELL, 0.95)
	m.Version = ModelSchemaVersion
	m.Params = map[string]kernels.Params{
		matrix.FormatELL.String():  {Unroll: 8},
		matrix.FormatDIA.String():  {Unroll: 2, DIAMinDensity: 0.05},
		matrix.FormatBCSR.String(): {BlockR: 8, BlockC: 2},
		matrix.FormatHYB.String():  {HybCut: 0.1, BatchTile: 2},
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != ModelSchemaVersion {
		t.Errorf("version %d, want %d", back.Version, ModelSchemaVersion)
	}
	if len(back.Params) != len(m.Params) {
		t.Fatalf("%d param entries, want %d", len(back.Params), len(m.Params))
	}
	for f, p := range m.Params {
		if back.Params[f] != p {
			t.Errorf("params[%s] = %+v, want %+v", f, back.Params[f], p)
		}
	}
}

func TestLoadModelV1BackCompat(t *testing.T) {
	// A v1 model (no params key) must load with a nil parameter map, and the
	// tuner built from it must resolve every format to the zero (fixed-menu)
	// parameters.
	m := modelAlways(matrix.FormatCSR, 0.95)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"params"`) {
		t.Fatalf("v1 model serialised a params key: %s", buf.String())
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Params != nil {
		t.Errorf("v1 model loaded with non-nil Params: %+v", back.Params)
	}
	tn := NewTuner[float64](back, 2)
	defer tn.Close()
	for _, f := range matrix.Formats {
		if p := tn.paramsFor(f); !p.IsZero() {
			t.Errorf("v1 model: paramsFor(%s) = %+v, want zero", f, p)
		}
	}
}

func TestLoadModelRejectsNewerVersion(t *testing.T) {
	m := modelAlways(matrix.FormatCSR, 0.95)
	m.Version = ModelSchemaVersion + 1
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(&buf); err == nil {
		t.Fatal("model from a newer schema accepted")
	}
}

func TestDatabaseParamsRoundTrip(t *testing.T) {
	db := sampleDatabase() // schema-v1 rows
	f := db.Records[0].Features
	db.AppendParams("blocked", "test", f,
		Label{Best: matrix.FormatDIA, GFLOPS: map[matrix.Format]float64{matrix.FormatDIA: 3}},
		map[matrix.Format]kernels.Params{
			matrix.FormatDIA: {Unroll: 8, DIAMinDensity: 0.05},
			matrix.FormatELL: {Unroll: 2},
		})
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(db.Records) {
		t.Fatalf("%d records, want %d", len(back.Records), len(db.Records))
	}
	last := back.Records[len(back.Records)-1]
	if last.Schema != DatabaseSchemaVersion {
		t.Errorf("schema %d, want %d", last.Schema, DatabaseSchemaVersion)
	}
	if got := last.Params["DIA"]; got != (kernels.Params{Unroll: 8, DIAMinDensity: 0.05}) {
		t.Errorf("DIA params = %+v", got)
	}
	if got := last.Params["ELL"]; got != (kernels.Params{Unroll: 2}) {
		t.Errorf("ELL params = %+v", got)
	}
	// The v1 rows in front must stay schema-free and param-free.
	if back.Records[0].Schema != 0 || back.Records[0].Params != nil {
		t.Errorf("v1 row gained schema/params: %+v", back.Records[0])
	}
	// Mixed-schema databases must still retrain (params are advisory).
	if _, err := TrainFromDatabase(back, nil, TrainConfig{Threads: 2}); err != nil {
		t.Fatalf("mixed-schema database does not retrain: %v", err)
	}
}

func TestLoadDatabaseRejectsNewerSchema(t *testing.T) {
	row := `{"schema":3,"name":"x","features":{},"best":"CSR"}` + "\n"
	if _, err := LoadDatabase(strings.NewReader(row)); err == nil {
		t.Fatal("record from a newer schema accepted")
	}
}

// TestSearchMatrixParamsPrunes pins the feature-guided pruning rules: a
// hypersparse diagonal tally skips the whole DIA walk, and an over-padding
// BCSR block shape is dropped before conversion.
func TestSearchMatrixParamsPrunes(t *testing.T) {
	lib := kernels.NewLibrary[float64]()
	lib.RegisterBCSR()

	// 1000×1000 identity plus one far corner entry: two occupied diagonals,
	// each stored full-length, so ER_DIA ≈ 0.5 — but with a scattered band the
	// tally collapses. Use a matrix with a genuinely hypersparse tally: a
	// single dense row produces Ndiags = Cols with one element each.
	tr := make([]matrix.Triple[float64], 0, 64)
	for c := 0; c < 64; c++ {
		tr = append(tr, matrix.Triple[float64]{Row: 0, Col: c, Val: 1})
	}
	m, err := matrix.FromTriples(64, 64, tr)
	if err != nil {
		t.Fatal(err)
	}
	ft := features.Extract(m)
	if ft.ERDIA >= kernels.DefaultDIAMinDensity {
		t.Skipf("spec not hypersparse enough: ERDIA=%g", ft.ERDIA)
	}
	res := SearchMatrixParams(lib, m, &ft, matrix.FormatDIA, 1, fastMeasure)
	if res.Kernel != "" || len(res.Pruned) == 0 {
		t.Errorf("hypersparse DIA walk not pruned: %+v", res)
	}

	// The same single-row matrix makes every large block shape pure padding:
	// at least the 8×2 shape must be pruned by the fill bound.
	res = SearchMatrixParams(lib, m, &ft, matrix.FormatBCSR, 1, fastMeasure)
	pruned := strings.Join(res.Pruned, ";")
	if !strings.Contains(pruned, "_8x2") {
		t.Errorf("8x2 block shape not pruned on a single-row matrix: %+v", res.Pruned)
	}
}
