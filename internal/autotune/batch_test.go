package autotune

import (
	"math/rand"
	"testing"

	"smat/internal/gen"
	"smat/internal/matrix"
)

// batchInput packs k distinct integer-valued columns into the interleaved
// layout and returns both forms.
func batchInput(n, k int) (xs [][]float64, xb []float64) {
	xs = make([][]float64, k)
	xb = make([]float64, n*k)
	for j := 0; j < k; j++ {
		xs[j] = make([]float64, n)
		for c := 0; c < n; c++ {
			v := float64(1 + (c+5*j)%9)
			xs[j][c] = v
			xb[c*k+j] = v
		}
	}
	return xs, xb
}

// TestMulVecBatchMatchesColumnwise drives both MulVecBatch paths — the tiled
// SpMM kernel and the loop-over-vectors fallback — by pinning the crossover
// to each extreme, and checks column j of the batched product against a
// single-vector MulVec of input column j. Integer values make the comparison
// exact regardless of summation order.
func TestMulVecBatchMatchesColumnwise(t *testing.T) {
	for _, f := range matrix.Formats {
		tuner := NewTuner[float64](modelAlways(f, 0.99), 2)
		defer tuner.Close()
		m := gen.MultiDiagonal[float64](400, []int{-2, 0, 3}, rand.New(rand.NewSource(11)))
		op, d, err := tuner.Tune(m)
		if err != nil {
			t.Fatal(err)
		}
		if op.eng.Load().batch == nil {
			t.Fatalf("%v: no batch kernel bound", f)
		}
		if d.BatchCrossover == 0 {
			t.Fatalf("%v: crossover not recorded in decision", f)
		}
		for _, k := range []int{1, 2, 3, 4, 5, 8} {
			xs, xb := batchInput(m.Cols, k)
			want := make([][]float64, k)
			for j := 0; j < k; j++ {
				want[j] = make([]float64, m.Rows)
				op.MulVec(xs[j], want[j])
			}
			for _, crossover := range []int{2, NeverBatch} { // tiled path, loop path
				op.eng.Load().batchCrossover = crossover
				yb := make([]float64, m.Rows*k)
				op.MulVecBatch(xb, yb, k)
				for j := 0; j < k; j++ {
					for i := 0; i < m.Rows; i++ {
						if yb[i*k+j] != want[j][i] {
							t.Fatalf("%v k=%d crossover=%d: y[%d][col %d] = %g, want %g",
								f, k, crossover, i, j, yb[i*k+j], want[j][i])
						}
					}
				}
			}
		}
	}
}

// TestMulVecBatchCrossoverRecorded pins the Decision contract: a fresh
// tuning run records a probed crossover (a probe width or NeverBatch) and a
// non-zero probe time for non-empty matrices.
func TestMulVecBatchCrossoverRecorded(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatCSR, 0.99), 2)
	defer tuner.Close()
	m := gen.RandomUniform[float64](1000, 1000, 8, rand.New(rand.NewSource(12)))
	op, d, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	valid := d.BatchCrossover == NeverBatch
	for _, w := range batchProbeWidths {
		if d.BatchCrossover == w {
			valid = true
		}
	}
	if !valid {
		t.Errorf("BatchCrossover = %d, want a probe width or NeverBatch", d.BatchCrossover)
	}
	if op.eng.Load().batchCrossover != d.BatchCrossover {
		t.Errorf("operator crossover %d differs from decision %d", op.eng.Load().batchCrossover, d.BatchCrossover)
	}
	if d.BatchProbeSec <= 0 {
		t.Errorf("BatchProbeSec = %g, want > 0", d.BatchProbeSec)
	}
	if d.Overhead() <= 0 {
		t.Errorf("Overhead = %g, want > 0 (probe cost must be accounted)", d.Overhead())
	}
}

// TestCacheHitReusesCrossover: the second tuner call for an identical
// fingerprint must bind the leader's measured crossover without re-probing.
func TestCacheHitReusesCrossover(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatELL, 0.99), 2)
	defer tuner.Close()
	m := gen.ConstantDegree[float64](600, 5, rand.New(rand.NewSource(13)))
	op1, d1, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	op2, d2, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.CacheHit {
		t.Fatal("second tune missed the cache")
	}
	if d2.BatchProbeSec != 0 {
		t.Errorf("cache hit re-ran the crossover probe (%gs)", d2.BatchProbeSec)
	}
	want := d1.BatchCrossover
	if want < 2 {
		want = defaultBatchCrossover
	}
	if op2.eng.Load().batchCrossover != want || d2.BatchCrossover != want {
		t.Errorf("cache hit crossover = %d (decision %d), want %d",
			op2.eng.Load().batchCrossover, d2.BatchCrossover, want)
	}
	_ = op1
}

// TestMulVecBatchEdgeWidths: k = 0 is a no-op and negative k panics.
func TestMulVecBatchEdgeWidths(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatCSR, 0.99), 1)
	defer tuner.Close()
	m := gen.RandomUniform[float64](50, 50, 3, rand.New(rand.NewSource(14)))
	op, _, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	op.MulVecBatch(nil, nil, 0) // must not touch anything

	defer func() {
		if recover() == nil {
			t.Error("negative batch width did not panic")
		}
	}()
	op.MulVecBatch(nil, nil, -1)
}

// TestMulVecBatchShapePanics: mis-sized interleaved buffers must panic with
// the shape message, not read out of range.
func TestMulVecBatchShapePanics(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatCSR, 0.99), 1)
	defer tuner.Close()
	m := gen.RandomUniform[float64](20, 30, 2, rand.New(rand.NewSource(15)))
	op, _, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct{ lx, ly int }{
		{30 * 4, 20 * 3}, // yb sized for wrong k
		{30 * 3, 20 * 4}, // xb sized for wrong k
		{30, 20},         // single-vector buffers at k=4
	}
	for _, b := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("|xb|=%d |yb|=%d k=4 did not panic", b.lx, b.ly)
				}
			}()
			op.MulVecBatch(make([]float64, b.lx), make([]float64, b.ly), 4)
		}()
	}
}

// TestMulVecBatchZeroAlloc is the serving contract: after one warm-up call,
// MulVecBatch allocates nothing on either path (the loop path's gather and
// scatter scratch is cached on the operator).
func TestMulVecBatchZeroAlloc(t *testing.T) {
	if raceEnabledAutotune {
		t.Skip("allocation accounting is not stable under -race")
	}
	tuner := NewTuner[float64](modelAlways(matrix.FormatCSR, 0.99), 4)
	defer tuner.Close()
	m := gen.RandomUniform[float64](5000, 5000, 6, rand.New(rand.NewSource(16)))
	op, _, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 5, 8} {
		_, xb := batchInput(m.Cols, k)
		yb := make([]float64, m.Rows*k)
		for _, crossover := range []int{2, NeverBatch} { // tiled path, loop path
			op.eng.Load().batchCrossover = crossover
			op.MulVecBatch(xb, yb, k) // warm: plan, workers, loop scratch
			if allocs := testing.AllocsPerRun(20, func() { op.MulVecBatch(xb, yb, k) }); allocs != 0 {
				t.Errorf("k=%d crossover=%d: %.1f allocs per steady-state call, want 0", k, crossover, allocs)
			}
		}
	}
}
