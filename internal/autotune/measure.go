// Package autotune implements SMAT's auto-tuning pipeline. Off-line it
// labels matrices with their measured best format, searches the kernel
// library with the paper's performance-table + scoreboard algorithm
// (Section 5.2), and trains the ruleset learning model. On-line it runs the
// paper's Figure 7 procedure: extract features, walk the per-format rule
// groups in DIA→ELL→CSR→COO order, accept a prediction whose confidence
// clears the threshold, and otherwise fall back to execute-and-measure.
package autotune

import (
	"time"
)

// MeasureOptions controls how a single kernel measurement is taken.
type MeasureOptions struct {
	// MinTime is the minimum accumulated runtime per trial; repetitions are
	// calibrated to reach it (default 1ms).
	MinTime time.Duration
	// Trials is the number of independent trials; the fastest is reported,
	// suppressing scheduler noise (default 3).
	Trials int
}

func (o MeasureOptions) withDefaults() MeasureOptions {
	if o.MinTime <= 0 {
		o.MinTime = time.Millisecond
	}
	if o.Trials <= 0 {
		o.Trials = 3
	}
	return o
}

// MeasureSecPerOp times op and returns the best-case seconds per invocation.
// One warm-up invocation runs first (it also calibrates the repetition
// count).
func MeasureSecPerOp(op func(), opts MeasureOptions) float64 {
	opts = opts.withDefaults()
	// Warm-up and calibration run.
	start := time.Now()
	op()
	once := time.Since(start)
	reps := 1
	if once > 0 && once < opts.MinTime {
		reps = int(opts.MinTime/once) + 1
	}
	best := 0.0
	for trial := 0; trial < opts.Trials; trial++ {
		start = time.Now()
		for i := 0; i < reps; i++ {
			op()
		}
		sec := time.Since(start).Seconds() / float64(reps)
		if trial == 0 || sec < best {
			best = sec
		}
	}
	return best
}

// GFLOPS converts an operation count and per-op seconds to GFLOPS.
func GFLOPS(flops int64, secPerOp float64) float64 {
	if secPerOp <= 0 {
		return 0
	}
	return float64(flops) / secPerOp / 1e9
}
