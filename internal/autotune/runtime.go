package autotune

import (
	"fmt"
	"runtime"
	"time"

	"smat/internal/features"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// Decision records everything about one runtime tuning decision, feeding the
// paper's Table 3 (prediction, fallback, overhead in CSR-SpMV units).
type Decision struct {
	Features features.Features

	// Predicted is the model's format when PredictedOK; Confidence is the
	// matched rule-group confidence.
	Predicted   matrix.Format
	PredictedOK bool
	Confidence  float64

	// UsedFallback reports that the execute-and-measure path ran; Measured
	// holds its per-format GFLOPS.
	UsedFallback bool
	Measured     map[matrix.Format]float64

	// CacheHit reports that the decision was served from the tuner's
	// feature-keyed cache: no rule evaluation or measurement ran, only
	// feature extraction and format conversion. On a hit, Predicted and
	// Confidence describe the cached entry.
	CacheHit bool

	// Chosen is the final format; Kernel the implementation name.
	Chosen matrix.Format
	Kernel string

	// Timing breakdown (seconds).
	FeatureSec  float64
	ConvertSec  float64
	FallbackSec float64
	CSRSpMVSec  float64
}

// Overhead returns the total decision cost in multiples of one basic
// CSR-SpMV execution, the unit of the paper's Table 3.
func (d *Decision) Overhead() float64 {
	if d.CSRSpMVSec <= 0 {
		return 0
	}
	return (d.FeatureSec + d.ConvertSec + d.FallbackSec) / d.CSRSpMVSec
}

// Operator is a tuned SpMV: the matrix materialised in its chosen format
// bound to its chosen kernel and the tuner's persistent worker pool. It is
// what SMAT_xCSR_SpMV hands back.
type Operator[T matrix.Float] struct {
	mat    *kernels.Mat[T]
	kernel *kernels.Kernel[T]
	pool   *kernels.Pool[T]
	nnz    int
}

// MulVec computes y = A·x on the steady-state execution path: the work
// partition comes from the matrix's cached plan and parallel chunks run on
// the tuner's persistent worker pool, so repeated calls allocate nothing.
//
// x and y must not share memory: every kernel clears y and then accumulates
// reads of x, so an aliased pair would silently corrupt the product. MulVec
// panics when the slices overlap (the error-returning entry point is
// Tuner.CSRSpMV in the root package).
//
//smat:hotpath
func (o *Operator[T]) MulVec(x, y []T) {
	if matrix.SlicesOverlap(x, y) {
		aliasedVectors()
	}
	o.kernel.RunPooled(o.mat, x, y, o.pool)
}

// aliasedVectors reports an overlapping x/y pair. Outlined and kept out of
// line so the MulVec hot path stays free of the panic's interface boxing.
//
//go:noinline
func aliasedVectors() {
	panic("autotune: MulVec called with x and y sharing memory; SpMV reads x while writing y")
}

// Format returns the storage format the tuner chose.
func (o *Operator[T]) Format() matrix.Format { return o.mat.Format }

// KernelName returns the chosen implementation.
func (o *Operator[T]) KernelName() string { return o.kernel.Name }

// NNZ returns the operator's nonzero count.
func (o *Operator[T]) NNZ() int { return o.nnz }

// Dims returns the operator's dimensions.
func (o *Operator[T]) Dims() (rows, cols int) { return o.mat.Dims() }

// Tuner is the runtime component: it holds a trained model and produces
// tuned operators from CSR inputs. All methods are safe for concurrent use:
// the decision cache is sharded and singleflight-deduplicated, and the rest
// of the tuner state is immutable after construction.
type Tuner[T matrix.Float] struct {
	model      *Model
	lib        *kernels.Library[T]
	threads    int
	pool       *kernels.Pool[T]
	measure    MeasureOptions
	cache      *Cache
	threshold  float64
	noFallback bool
}

// Config configures a runtime tuner beyond the model itself.
type Config struct {
	// Threads is the kernel thread fan-out; ≤ 0 uses the model's trained
	// thread count capped to GOMAXPROCS.
	Threads int
	// CacheSize bounds the feature-keyed decision cache: 0 selects
	// DefaultCacheSize, a negative value disables caching entirely.
	CacheSize int
	// Cache, when non-nil, is used instead of building a new cache, so
	// several tuners (e.g. one per element type) can share decisions.
	Cache *Cache
	// DisableFallback turns off the execute-and-measure path: when the
	// model is not confident, the tuner picks the highest-confidence
	// matching rule group (or CSR) instead of measuring. Such decisions are
	// cached with their low confidence so a measuring tuner sharing the
	// cache can refresh them.
	DisableFallback bool
	// ConfidenceThreshold overrides the model's trained threshold when > 0.
	ConfidenceThreshold float64
}

// New builds a runtime tuner from a trained model and a Config.
func New[T matrix.Float](model *Model, cfg Config) *Tuner[T] {
	threads := cfg.Threads
	if threads <= 0 {
		threads = model.Threads
	}
	if max := runtime.GOMAXPROCS(0); threads <= 0 || threads > max {
		threads = max
	}
	cache := cfg.Cache
	if cache == nil && cfg.CacheSize >= 0 {
		cache = NewCache(cfg.CacheSize)
	}
	threshold := cfg.ConfidenceThreshold
	if threshold <= 0 {
		threshold = model.ConfidenceThreshold
	}
	return &Tuner[T]{
		model:   model,
		lib:     kernels.NewLibrary[T](),
		threads: threads,
		// The persistent worker pool resolves the effective thread count
		// once, here; every operator the tuner produces shares it.
		pool: kernels.NewPool[T](threads),
		// Fallback measurements favour speed over precision: the paper keeps
		// the whole fallback within ~16 CSR-SpMV executions.
		measure:    MeasureOptions{MinTime: 200 * time.Microsecond, Trials: 1},
		cache:      cache,
		threshold:  threshold,
		noFallback: cfg.DisableFallback,
	}
}

// NewTuner builds a runtime tuner from a trained model. threads ≤ 0 uses the
// model's trained thread count capped to GOMAXPROCS.
//
// Deprecated: use New, which also configures the decision cache and
// fallback behaviour.
func NewTuner[T matrix.Float](model *Model, threads int) *Tuner[T] {
	return New[T](model, Config{Threads: threads})
}

// Threads returns the tuner's thread configuration.
func (t *Tuner[T]) Threads() int { return t.threads }

// Pool returns the tuner's persistent worker pool (the steady-state
// execution engine shared by every operator the tuner produces).
func (t *Tuner[T]) Pool() *kernels.Pool[T] { return t.pool }

// Close stops the worker pool. Operators the tuner produced remain usable —
// their parallel kernels fall back to per-call goroutine fan-out — and an
// abandoned tuner sheds its workers on garbage collection even without
// Close.
func (t *Tuner[T]) Close() { t.pool.Close() }

// Model returns the underlying trained model.
func (t *Tuner[T]) Model() *Model { return t.model }

// Cache returns the tuner's decision cache (nil when caching is disabled).
// Pass it to another tuner's Config.Cache to share decisions.
func (t *Tuner[T]) Cache() *Cache { return t.cache }

// Stats snapshots the decision cache counters; the zero value is returned
// when caching is disabled.
func (t *Tuner[T]) Stats() CacheStats {
	if t.cache == nil {
		return CacheStats{}
	}
	return t.cache.Stats()
}

// kernelFor resolves the model's kernel choice for a format.
func (t *Tuner[T]) kernelFor(f matrix.Format) *kernels.Kernel[T] {
	if name, ok := t.model.Kernels[f.String()]; ok {
		if k := t.lib.Lookup(name); k != nil {
			return k
		}
	}
	return t.lib.Basic(f)
}

// Tune runs the paper's Figure 7 runtime procedure on a CSR matrix: feature
// extraction, then — unless the feature-keyed decision cache already holds
// the answer — ordered rule-group evaluation against the confidence
// threshold and the execute-and-measure fallback when the model is not
// confident. Concurrent calls for matrices with the same feature
// fingerprint are deduplicated: one call tunes, the rest block on its
// decision. It returns the tuned operator and the full decision record.
func (t *Tuner[T]) Tune(m *matrix.CSR[T]) (*Operator[T], *Decision, error) {
	d := &Decision{}

	start := time.Now()
	d.Features = features.Extract(m)
	d.FeatureSec = time.Since(start).Seconds()

	if t.cache == nil {
		op, err := t.decide(m, d)
		return op, d, err
	}

	key := d.Features.Key()
	var leaderOp *Operator[T]
	entry, fromCache, err := t.cache.Do(key, t.refreshBelow(), func() (CacheEntry, error) {
		op, err := t.decide(m, d)
		if err != nil {
			return CacheEntry{}, err
		}
		leaderOp = op
		conf := d.Confidence
		if d.UsedFallback {
			conf = 1 // measured ground truth
		}
		return CacheEntry{Format: d.Chosen, Kernel: d.Kernel, Confidence: conf, Measured: d.UsedFallback}, nil
	})
	if err != nil {
		return nil, d, err
	}
	if !fromCache {
		return leaderOp, d, nil
	}
	// The decision came from the cache (or from a concurrent leader tuning
	// an identical-fingerprint matrix): apply it to this matrix.
	op, err := t.apply(m, d, entry)
	if err != nil {
		// The cached format does not fit this matrix — a fingerprint
		// collision with a structurally different matrix. Decide locally
		// without disturbing the cached entry.
		op, err = t.decide(m, d)
	}
	return op, d, err
}

// apply materialises a cached decision for one concrete matrix: convert to
// the cached format and bind the cached kernel. It fails only when the
// format's zero-fill guard rejects this particular matrix.
func (t *Tuner[T]) apply(m *matrix.CSR[T], d *Decision, entry CacheEntry) (*Operator[T], error) {
	start := time.Now()
	mat, err := kernels.Convert(m, entry.Format, t.model.MaxFill)
	d.ConvertSec = time.Since(start).Seconds()
	if err != nil {
		return nil, err
	}
	k := t.lib.Lookup(entry.Kernel)
	if k == nil || k.Format != entry.Format {
		k = t.kernelFor(entry.Format)
	}
	d.CacheHit = true
	d.Predicted = entry.Format
	d.PredictedOK = true
	d.Confidence = entry.Confidence
	d.Chosen = entry.Format
	d.Kernel = k.Name
	return &Operator[T]{mat: mat, kernel: k, pool: t.pool, nnz: m.NNZ()}, nil
}

// refreshBelow is the confidence bar under which a cached, un-measured
// entry is re-tuned. A measuring tuner uses its confidence threshold (it
// can replace a weak prediction with ground truth); a no-fallback tuner
// never refreshes, since re-deciding could do no better.
func (t *Tuner[T]) refreshBelow() float64 {
	if t.noFallback {
		return 0
	}
	return t.threshold
}

// decide runs the model + fallback decision procedure on an already
// feature-extracted matrix, filling d and returning the tuned operator.
func (t *Tuner[T]) decide(m *matrix.CSR[T], d *Decision) (*Operator[T], error) {
	fv := d.Features.Vector()

	// Rule groups in DIA → ELL → CSR → COO order (Section 6): the first
	// group with a matching rule above the confidence threshold wins.
	for _, f := range matrix.Formats {
		conf, matched := t.groupConfidence(fv, f)
		if !matched {
			continue
		}
		if conf > t.threshold && feasible(f, &d.Features, t.model.MaxFill) {
			d.Predicted = f
			d.PredictedOK = true
			d.Confidence = conf
			break
		}
	}

	if d.PredictedOK {
		start := time.Now()
		mat, err := kernels.Convert(m, d.Predicted, t.model.MaxFill)
		d.ConvertSec = time.Since(start).Seconds()
		if err == nil {
			d.Chosen = d.Predicted
			k := t.kernelFor(d.Chosen)
			d.Kernel = k.Name
			t.accountCSRBaseline(m, d)
			return &Operator[T]{mat: mat, kernel: k, pool: t.pool, nnz: m.NNZ()}, nil
		}
		// Fill guard rejected the predicted format; fall through to
		// measurement (or the best-effort pick when fallback is off).
		d.PredictedOK = false
	}

	if t.noFallback {
		op, err := t.bestEffort(m, d, fv)
		if err != nil {
			return nil, err
		}
		t.accountCSRBaseline(m, d)
		return op, nil
	}

	op, err := t.fallback(m, d)
	if err != nil {
		return nil, err
	}
	t.accountCSRBaseline(m, d)
	return op, nil
}

// bestEffort is the no-fallback decision: the highest-confidence matching,
// feasible rule group wins regardless of the threshold; with no match the
// ruleset default (CSR) is used. The low confidence is recorded so a cached
// copy of this decision can be refreshed by a measuring tuner.
func (t *Tuner[T]) bestEffort(m *matrix.CSR[T], d *Decision, fv []float64) (*Operator[T], error) {
	best := matrix.FormatCSR
	bestConf := 0.0
	for _, f := range matrix.Formats {
		conf, matched := t.groupConfidence(fv, f)
		if matched && conf > bestConf && feasible(f, &d.Features, t.model.MaxFill) {
			best, bestConf = f, conf
		}
	}
	start := time.Now()
	mat, err := kernels.Convert(m, best, t.model.MaxFill)
	if err != nil {
		// The fill guard can still reject a feature-feasible format on edge
		// cases; CSR always converts.
		best, bestConf = matrix.FormatCSR, 0
		mat, err = kernels.Convert(m, best, t.model.MaxFill)
		if err != nil {
			return nil, err
		}
	}
	d.ConvertSec = time.Since(start).Seconds()
	d.Confidence = bestConf
	d.Chosen = best
	k := t.kernelFor(best)
	d.Kernel = k.Name
	return &Operator[T]{mat: mat, kernel: k, pool: t.pool, nnz: m.NNZ()}, nil
}

// groupConfidence returns the confidence of the first rule of class f (in
// ruleset order) matching the feature vector.
func (t *Tuner[T]) groupConfidence(fv []float64, f matrix.Format) (float64, bool) {
	for i := range t.model.Ruleset.Rules {
		r := &t.model.Ruleset.Rules[i]
		if r.Class == int(f) && r.Matches(fv) {
			return r.Confidence, true
		}
	}
	return 0, false
}

// fallbackMaxFill is the tighter zero-fill bound of the execute-and-measure
// path: a DIA/ELL representation padding more than this multiple of NNZ
// cannot win, and converting it just to measure it would blow the fallback
// budget far past the paper's ~16 CSR-SpMV executions.
const fallbackMaxFill = 3.0

// feasible predicts from the already-extracted features whether converting
// to f stays within the given fill limit, without touching the matrix.
func feasible(f matrix.Format, ft *features.Features, maxFill float64) bool {
	switch f {
	case matrix.FormatDIA:
		return ft.ERDIA > 0 && 1/ft.ERDIA <= maxFill
	case matrix.FormatELL:
		return ft.ERELL > 0 && 1/ft.ERELL <= maxFill
	default:
		return true
	}
}

// fallback is the execute-and-measure path: benchmark every feasible format
// once and keep the fastest, reusing the winner's conversion.
func (t *Tuner[T]) fallback(m *matrix.CSR[T], d *Decision) (*Operator[T], error) {
	d.UsedFallback = true
	d.Measured = map[matrix.Format]float64{}
	start := time.Now()
	defer func() { d.FallbackSec = time.Since(start).Seconds() }()

	x := make([]T, m.Cols)
	for i := range x {
		x[i] = T(1)
	}
	y := make([]T, m.Rows)
	flops := kernels.FLOPs(m.NNZ())

	// Calibrate the per-format measurement budget against this matrix's own
	// basic CSR-SpMV time, so the whole fallback stays near the paper's ~16
	// CSR-SpMV executions regardless of matrix size.
	basicCSR := t.lib.Basic(matrix.FormatCSR)
	csrMat := &kernels.Mat[T]{Format: matrix.FormatCSR, CSR: m}
	st := time.Now()
	basicCSR.Run(csrMat, x, y, 1)
	csrSec := time.Since(st).Seconds()
	d.CSRSpMVSec = csrSec
	measure := t.measure
	if budget := time.Duration(3 * csrSec * float64(time.Second)); budget < measure.MinTime {
		if budget < 10*time.Microsecond {
			budget = 10 * time.Microsecond
		}
		measure.MinTime = budget
	}

	var bestOp *Operator[T]
	best := -1.0
	maxFill := fallbackMaxFill
	if t.model.MaxFill < maxFill {
		maxFill = t.model.MaxFill
	}
	for _, f := range matrix.Formats {
		if !feasible(f, &d.Features, maxFill) {
			continue
		}
		mat, err := kernels.Convert(m, f, maxFill)
		if err != nil {
			continue
		}
		k := t.kernelFor(f)
		// Measure on the pooled steady-state path — the regime the chosen
		// operator will actually run in.
		sec := MeasureSecPerOp(func() { k.RunPooled(mat, x, y, t.pool) }, measure)
		g := GFLOPS(flops, sec)
		d.Measured[f] = g
		if g > best {
			best = g
			bestOp = &Operator[T]{mat: mat, kernel: k, pool: t.pool, nnz: m.NNZ()}
		}
	}
	if bestOp == nil {
		return nil, fmt.Errorf("autotune: no feasible format for %dx%d matrix", m.Rows, m.Cols)
	}
	d.Chosen = bestOp.Format()
	d.Kernel = bestOp.KernelName()
	return bestOp, nil
}

// accountCSRBaseline fills Decision.CSRSpMVSec (the paper's overhead unit)
// with the cost of one basic CSR SpMV, measured with a single run so the
// accounting itself stays cheap.
func (t *Tuner[T]) accountCSRBaseline(m *matrix.CSR[T], d *Decision) {
	if d.CSRSpMVSec > 0 || m.NNZ() == 0 {
		return
	}
	basic := t.lib.Basic(matrix.FormatCSR)
	mat := &kernels.Mat[T]{Format: matrix.FormatCSR, CSR: m}
	x := make([]T, m.Cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]T, m.Rows)
	st := time.Now()
	basic.Run(mat, x, y, 1)
	d.CSRSpMVSec = time.Since(st).Seconds()
}
