package autotune

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"smat/internal/features"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// Decision records everything about one runtime tuning decision, feeding the
// paper's Table 3 (prediction, fallback, overhead in CSR-SpMV units).
type Decision struct {
	Features features.Features

	// Predicted is the model's format when PredictedOK; Confidence is the
	// matched rule-group confidence.
	Predicted   matrix.Format
	PredictedOK bool
	Confidence  float64

	// UsedFallback reports that the execute-and-measure path ran; Measured
	// holds its per-format GFLOPS.
	UsedFallback bool
	Measured     map[matrix.Format]float64

	// CacheHit reports that the decision was served from the tuner's
	// feature-keyed cache: no rule evaluation or measurement ran, only
	// feature extraction and format conversion. On a hit, Predicted and
	// Confidence describe the cached entry.
	CacheHit bool

	// Chosen is the format the returned operator serves (or, for a pending
	// background conversion, will serve once the swap lands); Kernel the
	// implementation name.
	Chosen matrix.Format
	Kernel string

	// Params records the tunable parameters behind the decision: the
	// conversion-level knobs the operator's matrix was materialised with
	// (BCSR block shape, HYB width cut), the chosen kernel instance's unroll
	// depth, and the batch register tile bound by the crossover probe. The
	// zero value means the fixed menu — a v1 model, or a format the search
	// left at its defaults.
	Params kernels.Params

	// IterationHint is the caller's expected number of remaining SpMVs
	// (TuneOptions.Iterations); 0 when the caller gave none, in which case
	// the decision is the paper's asymptotic one and the amortisation fields
	// below are purely informational.
	IterationHint int

	// Asymptotic is the format tuning would choose if the matrix lived
	// forever, i.e. with conversion cost fully amortised. Chosen differs from
	// it only when the iteration hint made converting uneconomical.
	Asymptotic matrix.Format

	// BreakEvenIters is the number of SpMVs at which converting to Asymptotic
	// pays off against serving tuned CSR: conversion is worth it for
	// IterationHint ≥ BreakEvenIters. It is 0 when Asymptotic is CSR (there
	// is nothing to pay off, or the probe did not run) and NeverAmortize when
	// the converted format never beats the CSR incumbent.
	BreakEvenIters int

	// Amortized reports that the iteration hint overrode the asymptotic
	// winner: the operator serves tuned CSR because IterationHint SpMVs
	// cannot pay for the conversion.
	Amortized bool

	// Converted reports that the returned operator was already materialised
	// in its final (Chosen) format when tuning returned. It is false only
	// while a background conversion is pending — see
	// Operator.ConversionState.
	Converted bool

	// ChosenSpMVSec and IncumbentSec are the per-SpMV seconds of the chosen
	// format and of the tuned-CSR incumbent — the two rates of the payoff
	// model behind BreakEvenIters. ConvertStored is the number of element
	// slots the conversion wrote (the work term conversion time scales with).
	ChosenSpMVSec float64
	IncumbentSec  float64
	ConvertStored int

	// BatchCrossover is the measured batch width at or above which the tiled
	// SpMM kernel beats looping the single-vector kernel over the right-hand
	// sides: MulVecBatch takes the tiled path for k ≥ BatchCrossover. It is
	// NeverBatch when the loop won at every probed width, and 0 when the
	// chosen format has no batched kernel registered.
	BatchCrossover int

	// Timing breakdown (seconds). ConvertSec is the measured conversion time
	// on paths that converted inline, and the cached leader's measurement on
	// the background-conversion path (where it is excluded from Overhead —
	// the worker pays it off the caller's critical path). AmortProbeSec is
	// the cost of the per-SpMV rate probes behind BreakEvenIters.
	FeatureSec    float64
	ConvertSec    float64
	FallbackSec   float64
	BatchProbeSec float64
	AmortProbeSec float64
	CSRSpMVSec    float64
}

// Overhead returns the total decision cost in multiples of one basic
// CSR-SpMV execution, the unit of the paper's Table 3.
func (d *Decision) Overhead() float64 {
	if d.CSRSpMVSec <= 0 {
		return 0
	}
	convert := d.ConvertSec
	if !d.Converted && d.CacheHit {
		// Background conversion: the worker pays ConvertSec off the caller's
		// critical path, so it is not part of the caller-visible overhead.
		convert = 0
	}
	return (d.FeatureSec + convert + d.FallbackSec + d.BatchProbeSec + d.AmortProbeSec) / d.CSRSpMVSec
}

// engine is the swappable execution state of an Operator: the matrix
// materialised in one format, bound to that format's kernels and measured
// batch crossover. The background conversion worker builds a new engine off
// to the side and publishes it with a single atomic store; calls already in
// flight keep the engine they loaded, so a swap can never tear a running
// SpMV.
type engine[T matrix.Float] struct {
	mat    *kernels.Mat[T]
	kernel *kernels.Kernel[T]

	// batch is the format's tiled SpMM kernel (nil when none is registered)
	// and batchCrossover the width at which it starts beating the
	// loop-over-vectors path; see MulVecBatch.
	batch          *kernels.BatchKernel[T]
	batchCrossover int

	// scratch is the loop path's reusable gather/scatter buffer pair,
	// detached (Swap) while in use so concurrent calls never share it. It
	// lives on the engine, not the operator: an in-flight MulVecBatch parks
	// its scratch back on the engine it ran on, so an operator swap can
	// neither hand one format's buffers to another nor strand a detached
	// pair on a still-running call.
	scratch atomic.Pointer[batchScratch[T]]
}

// Operator is a tuned SpMV: the matrix materialised in its chosen format
// bound to its chosen kernel and the tuner's persistent worker pool. It is
// what SMAT_xCSR_SpMV hands back.
//
// The execution state lives behind one atomic engine pointer so a background
// conversion (see TuneOptions.Iterations) can swap the serving format
// mid-stream: every call loads the engine once and runs it to completion,
// concurrent with but never torn by a swap.
type Operator[T matrix.Float] struct {
	eng  atomic.Pointer[engine[T]]
	pool *kernels.Pool[T]
	nnz  int

	// convState tracks the background-conversion lifecycle (ConversionState
	// values); convDone is closed by the worker once the swap — or its
	// failure — is final. convDone is nil for operators born in their final
	// format.
	convState atomic.Int32
	convDone  chan struct{}
}

// newOperator wraps a materialised matrix and kernel in an operator whose
// engine pointer is already published.
//
//smat:atomic-publish
func newOperator[T matrix.Float](mat *kernels.Mat[T], k *kernels.Kernel[T], pool *kernels.Pool[T], nnz int) *Operator[T] {
	op := &Operator[T]{pool: pool, nnz: nnz}
	op.eng.Store(&engine[T]{mat: mat, kernel: k})
	return op
}

// MulVec computes y = A·x on the steady-state execution path: the work
// partition comes from the matrix's cached plan and parallel chunks run on
// the tuner's persistent worker pool, so repeated calls allocate nothing.
//
// x and y must not share memory: every kernel clears y and then accumulates
// reads of x, so an aliased pair would silently corrupt the product. MulVec
// panics when the slices overlap (the error-returning entry point is
// Tuner.CSRSpMV in the root package).
//
//smat:hotpath
func (o *Operator[T]) MulVec(x, y []T) {
	checkOverlap(x, y)
	e := o.eng.Load()
	e.kernel.RunPooled(e.mat, x, y, o.pool)
}

// NeverBatch is the BatchCrossover sentinel recorded when the tiled SpMM
// kernel lost to the loop-over-vectors path at every probed width: no
// realistic k reaches it, so MulVecBatch always loops.
const NeverBatch = 1 << 30

// defaultBatchCrossover is assumed when a cached decision predates the
// crossover probe (or was inserted without one): tile from width 4 — the
// register-tile width, past which the tiled kernels pay no remainder cost.
const defaultBatchCrossover = 4

// MulVecBatch computes Y = A·X for k right-hand sides held interleaved:
// column c of X occupies xb[c*k : (c+1)*k] (one value per RHS), row r of Y
// likewise yb[r*k : (r+1)*k], so len(xb) = Cols·k and len(yb) = Rows·k.
// Batches of one run the tuned single-vector kernel directly; larger batches
// take the tiled SpMM kernel when k clears the measured crossover and the
// loop-over-vectors path otherwise. Like MulVec this is the steady-state
// path: repeated calls allocate nothing. k = 0 is a no-op; a negative k,
// mis-sized buffers, or xb/yb sharing memory panic (the error-returning
// entry point is Tuner.CSRSpMVBatch in the root package).
//
//smat:hotpath
func (o *Operator[T]) MulVecBatch(xb, yb []T, k int) {
	if k < 0 {
		negativeBatchWidth(k)
	}
	if k == 0 {
		return
	}
	e := o.eng.Load()
	rows, cols := e.mat.Dims()
	if len(xb) != cols*k || len(yb) != rows*k {
		batchShapeMismatch(rows, cols, len(xb), len(yb), k)
	}
	checkOverlap(xb, yb)
	if k == 1 {
		// A width-1 interleaved batch is a plain vector: the tuned kernel
		// computes it bit-for-bit, with no pack/unpack detour.
		e.kernel.RunPooled(e.mat, xb, yb, o.pool)
		return
	}
	if e.batch != nil && k >= e.batchCrossover {
		e.batch.RunPooled(e.mat, xb, yb, k, o.pool)
		return
	}
	o.loopVectors(e, xb, yb, k)
}

// batchScratch is the loop-over-vectors gather/scatter buffer pair. It is
// cached on the serving engine after the first loop-path call:
// AllocsPerRun-style steady-state accounting sees zero allocations.
type batchScratch[T matrix.Float] struct {
	x, y []T
}

// loopVectors is MulVecBatch's small-k path: gather each RHS column from the
// interleaved buffer, run the tuned single-vector kernel, scatter the result
// back. The scratch pair is detached from the engine while in use, so a
// concurrent call allocates its own instead of corrupting the product — and
// it is parked back on the engine it was taken from, so an operator swap
// mid-call neither races these buffers nor strands them: a superseded
// engine's scratch is garbage-collected with the engine itself.
func (o *Operator[T]) loopVectors(e *engine[T], xb, yb []T, k int) {
	rows, cols := e.mat.Dims()
	s := e.scratch.Swap(nil)
	if s == nil {
		s = &batchScratch[T]{x: make([]T, cols), y: make([]T, rows)}
	}
	x, y := s.x, s.y
	for j := 0; j < k; j++ {
		for c := 0; c < cols; c++ {
			x[c] = xb[c*k+j]
		}
		e.kernel.RunPooled(e.mat, x, y, o.pool)
		for r := 0; r < rows; r++ {
			yb[r*k+j] = y[r]
		}
	}
	e.scratch.Store(s)
}

// checkOverlap rejects an x/y pair sharing memory. The address comparison
// inlines into the caller's hot path; the panic stays out of line in
// aliasedVectors, so the fast path carries one never-taken forward branch
// and no interface boxing.
//
//smat:hotpath
func checkOverlap[T matrix.Float](x, y []T) {
	if matrix.SlicesOverlap(x, y) {
		aliasedVectors()
	}
}

// aliasedVectors reports an overlapping x/y pair. Outlined and kept out of
// line so the MulVec hot path stays free of the panic's interface boxing.
//
//go:noinline
func aliasedVectors() {
	panic("autotune: MulVec called with x and y sharing memory; SpMV reads x while writing y")
}

//go:noinline
func negativeBatchWidth(k int) {
	panic(fmt.Sprintf("autotune: MulVecBatch called with negative batch width %d", k))
}

//go:noinline
func batchShapeMismatch(rows, cols, lx, ly, k int) {
	panic(fmt.Sprintf("autotune: MulVecBatch on %dx%d matrix with k=%d needs |xb|=%d |yb|=%d, got %d and %d",
		rows, cols, k, cols*k, rows*k, lx, ly))
}

// Format returns the storage format the operator currently serves. While a
// background conversion is pending this is the tuned-CSR incumbent's format;
// it becomes Decision.Chosen once the swap lands.
func (o *Operator[T]) Format() matrix.Format { return o.eng.Load().mat.Format }

// KernelName returns the implementation the operator currently serves.
func (o *Operator[T]) KernelName() string { return o.eng.Load().kernel.Name }

// NNZ returns the operator's nonzero count.
func (o *Operator[T]) NNZ() int { return o.nnz }

// Dims returns the operator's dimensions.
func (o *Operator[T]) Dims() (rows, cols int) { return o.eng.Load().mat.Dims() }

// Tuner is the runtime component: it holds a trained model and produces
// tuned operators from CSR inputs. All methods are safe for concurrent use:
// the decision cache is sharded and singleflight-deduplicated, and the rest
// of the tuner state is immutable after construction.
type Tuner[T matrix.Float] struct {
	model      *Model
	lib        *kernels.Library[T]
	threads    int
	pool       *kernels.Pool[T]
	measure    MeasureOptions
	cache      *Cache
	threshold  float64
	noFallback bool
}

// Config configures a runtime tuner beyond the model itself.
type Config struct {
	// Threads is the kernel thread fan-out; ≤ 0 uses the model's trained
	// thread count capped to GOMAXPROCS.
	Threads int
	// CacheSize bounds the feature-keyed decision cache: 0 selects
	// DefaultCacheSize, a negative value disables caching entirely.
	CacheSize int
	// Cache, when non-nil, is used instead of building a new cache, so
	// several tuners (e.g. one per element type) can share decisions.
	Cache *Cache
	// DisableFallback turns off the execute-and-measure path: when the
	// model is not confident, the tuner picks the highest-confidence
	// matching rule group (or CSR) instead of measuring. Such decisions are
	// cached with their low confidence so a measuring tuner sharing the
	// cache can refresh them.
	DisableFallback bool
	// ConfidenceThreshold overrides the model's trained threshold when > 0.
	ConfidenceThreshold float64
}

// New builds a runtime tuner from a trained model and a Config.
func New[T matrix.Float](model *Model, cfg Config) *Tuner[T] {
	threads := cfg.Threads
	if threads <= 0 {
		threads = model.Threads
	}
	if max := runtime.GOMAXPROCS(0); threads <= 0 || threads > max {
		threads = max
	}
	cache := cfg.Cache
	if cache == nil && cfg.CacheSize >= 0 {
		cache = NewCache(cfg.CacheSize)
	}
	threshold := cfg.ConfidenceThreshold
	if threshold <= 0 {
		threshold = model.ConfidenceThreshold
	}
	return &Tuner[T]{
		model:   model,
		lib:     kernels.NewLibrary[T](),
		threads: threads,
		// The persistent worker pool resolves the effective thread count
		// once, here; every operator the tuner produces shares it.
		pool: kernels.NewPool[T](threads),
		// Fallback measurements favour speed over precision: the paper keeps
		// the whole fallback within ~16 CSR-SpMV executions.
		measure:    MeasureOptions{MinTime: 200 * time.Microsecond, Trials: 1},
		cache:      cache,
		threshold:  threshold,
		noFallback: cfg.DisableFallback,
	}
}

// NewTuner builds a runtime tuner from a trained model. threads ≤ 0 uses the
// model's trained thread count capped to GOMAXPROCS.
//
// Deprecated: use New, which also configures the decision cache and
// fallback behaviour.
func NewTuner[T matrix.Float](model *Model, threads int) *Tuner[T] {
	return New[T](model, Config{Threads: threads})
}

// Threads returns the tuner's thread configuration.
func (t *Tuner[T]) Threads() int { return t.threads }

// Pool returns the tuner's persistent worker pool (the steady-state
// execution engine shared by every operator the tuner produces).
func (t *Tuner[T]) Pool() *kernels.Pool[T] { return t.pool }

// Close stops the worker pool. Operators the tuner produced remain usable —
// their parallel kernels fall back to per-call goroutine fan-out — and an
// abandoned tuner sheds its workers on garbage collection even without
// Close.
func (t *Tuner[T]) Close() { t.pool.Close() }

// Model returns the underlying trained model.
func (t *Tuner[T]) Model() *Model { return t.model }

// Cache returns the tuner's decision cache (nil when caching is disabled).
// Pass it to another tuner's Config.Cache to share decisions.
func (t *Tuner[T]) Cache() *Cache { return t.cache }

// Stats snapshots the decision cache counters; the zero value is returned
// when caching is disabled.
func (t *Tuner[T]) Stats() CacheStats {
	if t.cache == nil {
		return CacheStats{}
	}
	return t.cache.Stats()
}

// kernelFor resolves the model's kernel choice for a format.
func (t *Tuner[T]) kernelFor(f matrix.Format) *kernels.Kernel[T] {
	if name, ok := t.model.Kernels[f.String()]; ok {
		if k := t.lib.Lookup(name); k != nil {
			return k
		}
	}
	return t.lib.Basic(f)
}

// paramsFor resolves the model's searched parameters for a format: the zero
// Params (fixed menu) for v1 models and for formats the search left at
// their defaults.
func (t *Tuner[T]) paramsFor(f matrix.Format) kernels.Params {
	if t.model.Params == nil {
		return kernels.Params{}
	}
	return t.model.Params[f.String()]
}

// decisionParams merges the model's format-level parameters with the chosen
// kernel instance's own (the unroll depth rides on the registered instance,
// the conversion knobs on the model).
func (t *Tuner[T]) decisionParams(f matrix.Format, k *kernels.Kernel[T]) kernels.Params {
	p := t.paramsFor(f)
	if k != nil && k.Params.Unroll != 0 {
		p.Unroll = k.Params.Unroll
	}
	return p
}

// formatFeasible is feasible plus the model's searched DIA density gate: a
// v2 model that tuned DIA under a minimum diagonal density re-applies that
// bound at prediction time, so a hypersparse tally never converts to DIA on
// a rule match alone.
func (t *Tuner[T]) formatFeasible(f matrix.Format, ft *features.Features, maxFill float64) bool {
	if !feasible(f, ft, maxFill) {
		return false
	}
	if f == matrix.FormatDIA {
		if dmin := t.paramsFor(f).DIAMinDensity; dmin > 0 && ft.ERDIA < dmin {
			return false
		}
	}
	return true
}

// Tune runs the paper's Figure 7 runtime procedure on a CSR matrix: feature
// extraction, then — unless the feature-keyed decision cache already holds
// the answer — ordered rule-group evaluation against the confidence
// threshold and the execute-and-measure fallback when the model is not
// confident. Concurrent calls for matrices with the same feature
// fingerprint are deduplicated: one call tunes, the rest block on its
// decision. It returns the tuned operator and the full decision record.
//
// Tune is the asymptotic entry point: conversion cost is treated as fully
// amortised. TuneOpts makes it an input to the decision.
func (t *Tuner[T]) Tune(m *matrix.CSR[T]) (*Operator[T], *Decision, error) {
	return t.TuneOpts(m, TuneOptions{})
}

// TuneOpts is Tune with per-call options: the decision becomes "best format
// given opts.Iterations remaining SpMVs", with tuned CSR as the
// zero-conversion-cost incumbent, and opts.FormatHint can bypass the
// decision entirely. See TuneOptions for the exact semantics of each field.
func (t *Tuner[T]) TuneOpts(m *matrix.CSR[T], opts TuneOptions) (*Operator[T], *Decision, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	d := &Decision{IterationHint: opts.Iterations}

	start := time.Now()
	d.Features = features.Extract(m)
	d.FeatureSec = time.Since(start).Seconds()

	if opts.HasFormatHint {
		op, err := t.tuneHinted(m, d, opts)
		return op, d, err
	}

	if t.cache == nil {
		op, err := t.decide(m, d)
		if err != nil {
			return nil, d, err
		}
		return t.amortize(m, d, op, opts), d, nil
	}

	key := d.Features.Key()
	var leaderOp *Operator[T]
	entry, fromCache, err := t.cache.DoValidated(key, t.refreshBelow(), validForHint(opts), func() (CacheEntry, error) {
		op, err := t.decide(m, d)
		if err != nil {
			return CacheEntry{}, err
		}
		leaderOp = op
		conf := d.Confidence
		if d.UsedFallback {
			conf = 1 // measured ground truth
		}
		// The entry records the asymptotic decision plus the leader's payoff
		// measurements; amortisation against a hint is recomputed per hit.
		return CacheEntry{
			Format:         d.Chosen,
			Kernel:         d.Kernel,
			Confidence:     conf,
			Measured:       d.UsedFallback,
			Params:         d.Params,
			BatchCrossover: d.BatchCrossover,
			ConvertSec:     d.ConvertSec,
			SpMVSec:        d.ChosenSpMVSec,
			IncumbentSec:   d.IncumbentSec,
		}, nil
	})
	if err != nil {
		return nil, d, err
	}
	if !fromCache {
		return t.amortize(m, d, leaderOp, opts), d, nil
	}
	// The decision came from the cache (or from a concurrent leader tuning
	// an identical-fingerprint matrix): apply it to this matrix.
	op, err := t.applyAmortized(m, d, entry, opts)
	if err != nil {
		// The cached format does not fit this matrix — a fingerprint
		// collision with a structurally different matrix. Decide locally
		// without disturbing the cached entry.
		op, err = t.decide(m, d)
		if err != nil {
			return nil, d, err
		}
		op = t.amortize(m, d, op, opts)
	}
	return op, d, err
}

// apply materialises a cached decision for one concrete matrix: convert to
// the cached format and bind the cached kernel. It fails only when the
// format's zero-fill guard rejects this particular matrix.
//
//smat:atomic-init
func (t *Tuner[T]) apply(m *matrix.CSR[T], d *Decision, entry CacheEntry) (*Operator[T], error) {
	mat, timing, err := kernels.ConvertTimedParams(m, entry.Format, t.model.MaxFill, entry.Params)
	d.ConvertSec = timing.Sec
	if err != nil {
		return nil, err
	}
	d.ConvertStored = timing.Stored
	k := t.cachedKernel(entry)
	d.CacheHit = true
	d.Predicted = entry.Format
	d.PredictedOK = true
	d.Confidence = entry.Confidence
	d.Chosen = entry.Format
	d.Kernel = k.Name
	d.Params = entry.Params
	d.Converted = true
	op := newOperator(mat, k, t.pool, m.NNZ())
	// Reuse the leader's measured crossover instead of re-probing: cache hits
	// stay measurement-free. Entries predating the probe (< 2 can never be a
	// real crossover) fall back to the register-tile width.
	e := op.eng.Load()
	e.batch = t.lib.BatchForParams(entry.Format, entry.Params)
	e.batchCrossover = entry.BatchCrossover
	if e.batchCrossover < 2 {
		e.batchCrossover = defaultBatchCrossover
	}
	if e.batch != nil {
		d.BatchCrossover = e.batchCrossover
	}
	return op, nil
}

// cachedKernel resolves a cache entry's kernel, falling back to the model's
// choice when the cached name is unknown or belongs to another format.
func (t *Tuner[T]) cachedKernel(entry CacheEntry) *kernels.Kernel[T] {
	k := t.lib.Lookup(entry.Kernel)
	if k == nil || k.Format != entry.Format {
		k = t.kernelFor(entry.Format)
	}
	return k
}

// refreshBelow is the confidence bar under which a cached, un-measured
// entry is re-tuned. A measuring tuner uses its confidence threshold (it
// can replace a weak prediction with ground truth); a no-fallback tuner
// never refreshes, since re-deciding could do no better.
func (t *Tuner[T]) refreshBelow() float64 {
	if t.noFallback {
		return 0
	}
	return t.threshold
}

// decide runs the model + fallback decision procedure on an already
// feature-extracted matrix, filling d and returning the asymptotically best
// operator (conversion cost not yet weighed — amortize does that against the
// caller's iteration hint).
func (t *Tuner[T]) decide(m *matrix.CSR[T], d *Decision) (*Operator[T], error) {
	fv := d.Features.Vector()

	// Rule groups in DIA → ELL → CSR → COO order (Section 6): the first
	// group with a matching rule above the confidence threshold wins.
	for _, f := range matrix.Formats {
		conf, matched := t.groupConfidence(fv, f)
		if !matched {
			continue
		}
		if conf > t.threshold && t.formatFeasible(f, &d.Features, t.model.MaxFill) {
			d.Predicted = f
			d.PredictedOK = true
			d.Confidence = conf
			break
		}
	}

	if d.PredictedOK {
		mat, timing, err := kernels.ConvertTimedParams(m, d.Predicted, t.model.MaxFill, t.paramsFor(d.Predicted))
		d.ConvertSec = timing.Sec
		if err == nil {
			d.ConvertStored = timing.Stored
			d.Chosen = d.Predicted
			k := t.kernelFor(d.Chosen)
			d.Kernel = k.Name
			d.Params = t.decisionParams(d.Chosen, k)
			op := newOperator(mat, k, t.pool, m.NNZ())
			t.finish(m, d, op)
			return op, nil
		}
		// Fill guard rejected the predicted format; fall through to
		// measurement (or the best-effort pick when fallback is off).
		d.PredictedOK = false
	}

	if t.noFallback {
		op, err := t.bestEffort(m, d, fv)
		if err != nil {
			return nil, err
		}
		t.finish(m, d, op)
		return op, nil
	}

	op, err := t.fallback(m, d)
	if err != nil {
		return nil, err
	}
	t.finish(m, d, op)
	return op, nil
}

// finish completes a freshly decided operator: record the CSR baseline,
// probe the amortisation rates behind BreakEvenIters, and bind the batch
// kernel. d.Chosen at this point is the asymptotic winner.
func (t *Tuner[T]) finish(m *matrix.CSR[T], d *Decision, op *Operator[T]) {
	t.accountCSRBaseline(m, d)
	d.Asymptotic = d.Chosen
	t.accountAmortization(m, d, op)
	t.bindBatch(op, d)
}

// batchProbeWidths are the batch widths the crossover probe times, ordered:
// the first width where the tiled kernel matches k independent single-vector
// runs becomes the operator's crossover.
var batchProbeWidths = [...]int{2, 4, 8}

// bindBatch attaches the format's tiled SpMM kernel to a freshly decided
// operator and measures the batch-width crossover, recording it in the
// decision (and hence the cache). Formats without a registered batch kernel
// leave BatchCrossover at 0 and MulVecBatch always loops.
//
//smat:atomic-init
func (t *Tuner[T]) bindBatch(op *Operator[T], d *Decision) {
	e := op.eng.Load()
	e.batchCrossover = NeverBatch
	e.batch = t.lib.BatchForParams(e.mat.Format, d.Params)
	if e.batch == nil {
		return
	}
	// Record the register tile actually bound (the searched width, or the
	// format's default when the model carried none) so the cache entry and
	// the decision report the full parameter set.
	d.Params.BatchTile = e.batch.Params.BatchTile
	if op.nnz == 0 {
		// Nothing to measure; both paths are trivially cheap, so prefer the
		// tiled kernel (one pass instead of k) at every width.
		e.batchCrossover = batchProbeWidths[0]
		d.BatchCrossover = e.batchCrossover
		return
	}
	start := time.Now()
	e.batchCrossover = t.measureCrossover(op, d)
	d.BatchProbeSec = time.Since(start).Seconds()
	d.BatchCrossover = e.batchCrossover
}

// probeBudget calibrates a measurement budget against this matrix's own
// basic CSR-SpMV time (once known): a few CSR-SpMV executions per timing,
// never less than 10µs, so probes on small matrices stay near the paper's
// overhead envelope instead of burning the full default MinTime.
func (t *Tuner[T]) probeBudget(d *Decision) MeasureOptions {
	measure := t.measure
	if budget := time.Duration(3 * d.CSRSpMVSec * float64(time.Second)); budget > 0 && budget < measure.MinTime {
		if budget < 10*time.Microsecond {
			budget = 10 * time.Microsecond
		}
		measure.MinTime = budget
	}
	return measure
}

// measureCrossover times the tuned single-vector kernel against the tiled
// SpMM kernel at each probe width and returns the first width where the
// tiled pass costs no more than k single-vector passes (NeverBatch when the
// loop wins everywhere). The probe budget is calibrated like the fallback's.
func (t *Tuner[T]) measureCrossover(op *Operator[T], d *Decision) int {
	e := op.eng.Load()
	rows, cols := e.mat.Dims()
	maxK := batchProbeWidths[len(batchProbeWidths)-1]
	// All-ones input: any k-prefix of the buffer is a valid interleaved batch
	// of k identical vectors, so one allocation serves every probed width.
	xb := make([]T, cols*maxK)
	for i := range xb {
		xb[i] = 1
	}
	yb := make([]T, rows*maxK)

	measure := t.probeBudget(d)
	single := MeasureSecPerOp(func() { e.kernel.RunPooled(e.mat, xb[:cols], yb[:rows], op.pool) }, measure)
	for _, k := range batchProbeWidths {
		sec := MeasureSecPerOp(func() { e.batch.RunPooled(e.mat, xb[:cols*k], yb[:rows*k], k, op.pool) }, measure)
		if sec <= single*float64(k) {
			return k
		}
	}
	return NeverBatch
}

// bestEffort is the no-fallback decision: the highest-confidence matching,
// feasible rule group wins regardless of the threshold; with no match the
// ruleset default (CSR) is used. The low confidence is recorded so a cached
// copy of this decision can be refreshed by a measuring tuner.
func (t *Tuner[T]) bestEffort(m *matrix.CSR[T], d *Decision, fv []float64) (*Operator[T], error) {
	best := matrix.FormatCSR
	bestConf := 0.0
	for _, f := range matrix.Formats {
		conf, matched := t.groupConfidence(fv, f)
		if matched && conf > bestConf && t.formatFeasible(f, &d.Features, t.model.MaxFill) {
			best, bestConf = f, conf
		}
	}
	mat, timing, err := kernels.ConvertTimedParams(m, best, t.model.MaxFill, t.paramsFor(best))
	if err != nil {
		// The fill guard can still reject a feature-feasible format on edge
		// cases; CSR always converts.
		best, bestConf = matrix.FormatCSR, 0
		mat, timing, err = kernels.ConvertTimedParams(m, best, t.model.MaxFill, t.paramsFor(best))
		if err != nil {
			return nil, err
		}
	}
	d.ConvertSec = timing.Sec
	d.ConvertStored = timing.Stored
	d.Confidence = bestConf
	d.Chosen = best
	k := t.kernelFor(best)
	d.Kernel = k.Name
	d.Params = t.decisionParams(best, k)
	return newOperator(mat, k, t.pool, m.NNZ()), nil
}

// groupConfidence returns the confidence of the first rule of class f (in
// ruleset order) matching the feature vector.
func (t *Tuner[T]) groupConfidence(fv []float64, f matrix.Format) (float64, bool) {
	for i := range t.model.Ruleset.Rules {
		r := &t.model.Ruleset.Rules[i]
		if r.Class == int(f) && r.Matches(fv) {
			return r.Confidence, true
		}
	}
	return 0, false
}

// fallbackMaxFill is the tighter zero-fill bound of the execute-and-measure
// path: a DIA/ELL representation padding more than this multiple of NNZ
// cannot win, and converting it just to measure it would blow the fallback
// budget far past the paper's ~16 CSR-SpMV executions.
const fallbackMaxFill = 3.0

// feasible predicts from the already-extracted features whether converting
// to f stays within the given fill limit, without touching the matrix.
func feasible(f matrix.Format, ft *features.Features, maxFill float64) bool {
	switch f {
	case matrix.FormatDIA:
		return ft.ERDIA > 0 && 1/ft.ERDIA <= maxFill
	case matrix.FormatELL:
		return ft.ERELL > 0 && 1/ft.ERELL <= maxFill
	default:
		return true
	}
}

// fallback is the execute-and-measure path: benchmark every feasible format
// once and keep the fastest, reusing the winner's conversion. Conversion
// time is measured per format as a side effect (it is structure-dependent),
// feeding the amortisation payoff model.
func (t *Tuner[T]) fallback(m *matrix.CSR[T], d *Decision) (*Operator[T], error) {
	d.UsedFallback = true
	d.Measured = map[matrix.Format]float64{}
	start := time.Now()
	defer func() { d.FallbackSec = time.Since(start).Seconds() }()

	x := make([]T, m.Cols)
	for i := range x {
		x[i] = T(1)
	}
	y := make([]T, m.Rows)
	flops := kernels.FLOPs(m.NNZ())

	// Calibrate the per-format measurement budget against this matrix's own
	// basic CSR-SpMV time, so the whole fallback stays near the paper's ~16
	// CSR-SpMV executions regardless of matrix size.
	basicCSR := t.lib.Basic(matrix.FormatCSR)
	csrMat := &kernels.Mat[T]{Format: matrix.FormatCSR, CSR: m}
	st := time.Now()
	basicCSR.Run(csrMat, x, y, 1)
	csrSec := time.Since(st).Seconds()
	d.CSRSpMVSec = csrSec
	measure := t.probeBudget(d)

	var bestOp *Operator[T]
	var bestTiming kernels.ConvertTiming
	best := -1.0
	maxFill := fallbackMaxFill
	if t.model.MaxFill < maxFill {
		maxFill = t.model.MaxFill
	}
	for _, f := range matrix.Formats {
		if !t.formatFeasible(f, &d.Features, maxFill) {
			continue
		}
		mat, timing, err := kernels.ConvertTimedParams(m, f, maxFill, t.paramsFor(f))
		if err != nil {
			continue
		}
		k := t.kernelFor(f)
		// Measure on the pooled steady-state path — the regime the chosen
		// operator will actually run in.
		sec := MeasureSecPerOp(func() { k.RunPooled(mat, x, y, t.pool) }, measure)
		g := GFLOPS(flops, sec)
		d.Measured[f] = g
		if g > best {
			best = g
			bestOp = newOperator(mat, k, t.pool, m.NNZ())
			bestTiming = timing
			d.Params = t.decisionParams(f, k)
		}
	}
	if bestOp == nil {
		return nil, fmt.Errorf("autotune: no feasible format for %dx%d matrix", m.Rows, m.Cols)
	}
	d.Chosen = bestOp.Format()
	d.Kernel = bestOp.KernelName()
	d.ConvertSec = bestTiming.Sec
	d.ConvertStored = bestTiming.Stored
	return bestOp, nil
}

// accountCSRBaseline fills Decision.CSRSpMVSec (the paper's overhead unit)
// with the cost of one basic CSR SpMV, measured with a single run so the
// accounting itself stays cheap.
func (t *Tuner[T]) accountCSRBaseline(m *matrix.CSR[T], d *Decision) {
	if d.CSRSpMVSec > 0 || m.NNZ() == 0 {
		return
	}
	basic := t.lib.Basic(matrix.FormatCSR)
	mat := &kernels.Mat[T]{Format: matrix.FormatCSR, CSR: m}
	x := make([]T, m.Cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]T, m.Rows)
	st := time.Now()
	basic.Run(mat, x, y, 1)
	d.CSRSpMVSec = time.Since(st).Seconds()
}
