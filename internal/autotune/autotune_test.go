package autotune

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"smat/internal/corpus"
	"smat/internal/features"
	"smat/internal/gen"
	"smat/internal/kernels"
	"smat/internal/matrix"
	"smat/internal/mining"
)

var fastMeasure = MeasureOptions{MinTime: 100 * time.Microsecond, Trials: 1}

func TestMeasureSecPerOp(t *testing.T) {
	n := 0
	sec := MeasureSecPerOp(func() {
		for i := 0; i < 10000; i++ {
			n += i
		}
	}, fastMeasure)
	if sec <= 0 {
		t.Fatalf("sec = %g, want > 0", sec)
	}
	if sec > 0.01 {
		t.Errorf("trivial op measured at %gs", sec)
	}
	_ = n
}

func TestGFLOPS(t *testing.T) {
	if g := GFLOPS(2e9, 1.0); g != 2.0 {
		t.Errorf("GFLOPS = %g, want 2", g)
	}
	if g := GFLOPS(100, 0); g != 0 {
		t.Errorf("GFLOPS with zero time = %g, want 0", g)
	}
}

func TestSearchKernelsCoversAllFormats(t *testing.T) {
	choice, results := SearchKernels(SearchConfig{
		Threads:    2,
		ProbeScale: 0.05,
		Measure:    fastMeasure,
		Seed:       1,
	})
	lib := kernels.NewLibrary[float64]()
	if len(choice) != 4 {
		t.Fatalf("choice covers %d formats, want 4", len(choice))
	}
	for _, f := range matrix.Formats {
		name, ok := choice[f]
		if !ok {
			t.Fatalf("no kernel chosen for %v", f)
		}
		k := lib.Lookup(name)
		if k == nil {
			t.Fatalf("chosen kernel %q not registered", name)
		}
		if k.Format != f {
			t.Errorf("kernel %q has format %v, chosen for %v", name, k.Format, f)
		}
	}
	for _, r := range results {
		// The performance table covers the fixed menu; parameterized
		// instances share strategy bitmasks and are scored by the parameter
		// walk instead.
		fixed := 0
		for _, k := range lib.ForFormat(r.Format) {
			if k.Params.IsZero() {
				fixed++
			}
		}
		if len(r.Table) != fixed {
			t.Errorf("%v performance table has %d rows, want %d",
				r.Format, len(r.Table), fixed)
		}
		for _, row := range r.Table {
			if row.GFLOPS <= 0 {
				t.Errorf("%v kernel %s measured %g GFLOPS", r.Format, row.Kernel, row.GFLOPS)
			}
		}
		if _, ok := r.KernelScores[r.Best]; !ok {
			t.Errorf("%v best kernel %q missing from scores", r.Format, r.Best)
		}
	}
}

func TestLabelerMeasuresFeasibleFormats(t *testing.T) {
	l := NewLabeler(nil, 2, fastMeasure)
	// A banded matrix: all four formats feasible.
	m := gen.MultiDiagonal[float64](2000, []int{-1, 0, 1}, rand.New(rand.NewSource(1)))
	lbl := l.Label(m)
	if len(lbl.GFLOPS) != 4 {
		t.Errorf("banded matrix measured %d formats, want 4", len(lbl.GFLOPS))
	}
	best := lbl.GFLOPS[lbl.Best]
	for f, g := range lbl.GFLOPS {
		if g > best {
			t.Errorf("format %v (%g) beats reported best %v (%g)", f, g, lbl.Best, best)
		}
	}
}

func TestLabelerSkipsInfeasibleFormats(t *testing.T) {
	// Anti-diagonal-ish matrix: DIA fill explodes; one dense row blows ELL.
	n := 3000
	var ts []matrix.Triple[float64]
	for i := 0; i < n; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: i, Col: n - 1 - i, Val: 1})
	}
	for c := 0; c < n; c += 2 {
		ts = append(ts, matrix.Triple[float64]{Row: 0, Col: c, Val: 1})
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLabeler(nil, 2, fastMeasure)
	lbl := l.Label(m)
	if _, ok := lbl.GFLOPS[matrix.FormatDIA]; ok {
		t.Error("DIA measured despite fill explosion")
	}
	if _, ok := lbl.GFLOPS[matrix.FormatELL]; ok {
		t.Error("ELL measured despite fill explosion")
	}
	if _, ok := lbl.GFLOPS[matrix.FormatCSR]; !ok {
		t.Error("CSR not measured")
	}
}

// tinyTrainingSet returns a small mixed corpus slice for fast train tests.
func tinyTrainingSet() []*corpus.Entry {
	c := corpus.New(0.02, 1234)
	return c.Sample(60) // ~40 entries across all domains
}

func TestTrainProducesWorkingModel(t *testing.T) {
	res, err := Train(tinyTrainingSet(), TrainConfig{
		Threads:          2,
		Measure:          fastMeasure,
		SkipKernelSearch: true,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model == nil || res.Model.Ruleset == nil {
		t.Fatal("no model produced")
	}
	if len(res.Model.Ruleset.Rules) == 0 {
		t.Fatal("empty ruleset")
	}
	if res.TailoredRules > res.FullRules {
		t.Errorf("tailored %d > full %d rules", res.TailoredRules, res.FullRules)
	}
	if res.TrainAccuracy < 0.5 {
		t.Errorf("training accuracy %g, want ≥0.5", res.TrainAccuracy)
	}
	if len(res.Labels) != len(res.Dataset.Examples) {
		t.Error("labels/examples length mismatch")
	}
}

func TestTrainRejectsEmptySet(t *testing.T) {
	if _, err := Train(nil, TrainConfig{}); err == nil {
		t.Error("Train accepted empty set")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	res, err := Train(tinyTrainingSet(), TrainConfig{
		Threads:          2,
		Measure:          fastMeasure,
		SkipKernelSearch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Threads != res.Model.Threads ||
		back.ConfidenceThreshold != res.Model.ConfidenceThreshold ||
		len(back.Ruleset.Rules) != len(res.Model.Ruleset.Rules) {
		t.Error("round trip changed model")
	}
}

func TestLoadModelRejectsCorrupt(t *testing.T) {
	cases := []string{
		"not json",
		`{"version":1}`,
		`{"version":1,"confidence_threshold":0.9,"ruleset":{"class_names":["A"],"attr_names":[],"rules":[],"default":0}}`,
		`{"version":1,"confidence_threshold":7,"ruleset":{"class_names":["CSR","COO","DIA","ELL"],"attr_names":[],"rules":[],"default":0}}`,
	}
	for i, c := range cases {
		if _, err := LoadModel(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt model accepted", i)
		}
	}
}

// modelAlways builds a hand-made model with a single always-matching rule.
func modelAlways(f matrix.Format, conf float64) *Model {
	return &Model{
		Version:             1,
		Threads:             2,
		ConfidenceThreshold: 0.85,
		MaxFill:             DefaultMaxFill,
		Kernels:             map[string]string{},
		Ruleset: &mining.Ruleset{
			AttrNames:  features.AttributeNames,
			ClassNames: classNames(),
			Rules:      []mining.Rule{{Class: int(f), Confidence: conf}},
			Default:    int(matrix.FormatCSR),
		},
	}
}

func TestTunerConfidentPredictionPath(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatDIA, 0.99), 2)
	m := gen.MultiDiagonal[float64](1000, []int{-1, 0, 1}, rand.New(rand.NewSource(2)))
	op, d, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.UsedFallback {
		t.Error("confident prediction used fallback")
	}
	if !d.PredictedOK || d.Predicted != matrix.FormatDIA || d.Chosen != matrix.FormatDIA {
		t.Errorf("decision = %+v, want confident DIA", d)
	}
	if op.Format() != matrix.FormatDIA {
		t.Errorf("operator format = %v, want DIA", op.Format())
	}
	// Result correctness.
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i%3) + 1
	}
	got := make([]float64, m.Rows)
	want := make([]float64, m.Rows)
	op.MulVec(x, got)
	m.ToDense().MulVec(x, want)
	if !matrix.VecApproxEqual(got, want, 1e-9) {
		t.Error("tuned operator produced wrong result")
	}
	if d.Overhead() <= 0 {
		t.Errorf("overhead = %g, want > 0", d.Overhead())
	}
}

func TestTunerLowConfidenceFallsBack(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatDIA, 0.30), 2)
	m := gen.RandomUniform[float64](2000, 2000, 5, rand.New(rand.NewSource(3)))
	op, d, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if !d.UsedFallback {
		t.Fatal("low confidence did not trigger fallback")
	}
	if len(d.Measured) == 0 {
		t.Fatal("fallback measured nothing")
	}
	bestG := d.Measured[d.Chosen]
	for f, g := range d.Measured {
		if g > bestG {
			t.Errorf("fallback chose %v (%g) over faster %v (%g)", d.Chosen, bestG, f, g)
		}
	}
	if op == nil || op.NNZ() != m.NNZ() {
		t.Error("fallback operator malformed")
	}
}

func TestTunerInfeasiblePredictionFallsBack(t *testing.T) {
	// The model insists on DIA with high confidence, but the matrix is
	// anti-diagonal dominated: the feasibility check must veto DIA and the
	// fallback must run.
	n := 2000
	var ts []matrix.Triple[float64]
	for i := 0; i < n; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: i, Col: n - 1 - i, Val: 1})
		ts = append(ts, matrix.Triple[float64]{Row: i, Col: (i*7 + 3) % n, Val: 1})
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	tuner := NewTuner[float64](modelAlways(matrix.FormatDIA, 0.99), 2)
	op, d, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if !d.UsedFallback {
		t.Error("infeasible DIA prediction was not vetoed")
	}
	if d.Chosen == matrix.FormatDIA {
		t.Error("fallback chose infeasible DIA")
	}
	if op == nil {
		t.Fatal("no operator")
	}
}

func TestTunerGroupOrderPrefersDIA(t *testing.T) {
	// Two always-matching confident rules: DIA and CSR. The DIA group is
	// checked first (the paper's ordering), so DIA must win.
	model := modelAlways(matrix.FormatCSR, 0.99)
	model.Ruleset.Rules = append(model.Ruleset.Rules,
		mining.Rule{Class: int(matrix.FormatDIA), Confidence: 0.95})
	tuner := NewTuner[float64](model, 2)
	m := gen.MultiDiagonal[float64](500, []int{0, 2}, rand.New(rand.NewSource(4)))
	_, d, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.Chosen != matrix.FormatDIA {
		t.Errorf("chosen = %v, want DIA (group order)", d.Chosen)
	}
}

func TestTunerFloat32(t *testing.T) {
	tuner := NewTuner[float32](modelAlways(matrix.FormatELL, 0.99), 2)
	rng := rand.New(rand.NewSource(5))
	m64 := gen.ConstantDegree[float64](800, 4, rng)
	// Rebuild as float32.
	var ts []matrix.Triple[float32]
	for r := 0; r < m64.Rows; r++ {
		for jj := m64.RowPtr[r]; jj < m64.RowPtr[r+1]; jj++ {
			ts = append(ts, matrix.Triple[float32]{Row: r, Col: m64.ColIdx[jj], Val: float32(m64.Vals[jj])})
		}
	}
	m, err := matrix.FromTriples(800, 800, ts)
	if err != nil {
		t.Fatal(err)
	}
	op, d, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.Chosen != matrix.FormatELL {
		t.Errorf("chosen = %v, want ELL", d.Chosen)
	}
	x := make([]float32, 800)
	for i := range x {
		x[i] = 1
	}
	y := make([]float32, 800)
	op.MulVec(x, y)
	want := make([]float32, 800)
	m.ToDense().MulVec(x, want)
	if !matrix.VecApproxEqual(y, want, 1e-4) {
		t.Error("float32 operator wrong result")
	}
}

func TestEndToEndTrainedTunerPicksDIAForStencil(t *testing.T) {
	// Train on the tiny corpus, then check the learned model sends an
	// unmistakably diagonal matrix down a sensible path (DIA predicted, or a
	// fallback that measures DIA among the candidates).
	res, err := Train(tinyTrainingSet(), TrainConfig{
		Threads:          2,
		Measure:          fastMeasure,
		SkipKernelSearch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tuner := NewTuner[float64](res.Model, 2)
	m := gen.Laplacian2D5pt[float64](120, 120)
	op, d, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if op == nil {
		t.Fatal("no operator")
	}
	// Whatever the decision, the operator must be correct.
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i % 7)
	}
	got := make([]float64, m.Rows)
	op.MulVec(x, got)
	want := make([]float64, m.Rows)
	mat, _ := kernels.Convert(m, matrix.FormatCSR, 0)
	kernels.NewLibrary[float64]().Basic(matrix.FormatCSR).Run(mat, x, want, 1)
	if !matrix.VecApproxEqual(got, want, 1e-9) {
		t.Error("trained tuner produced wrong result")
	}
	t.Logf("stencil decision: chosen=%v predicted=%v fallback=%v conf=%.2f",
		d.Chosen, d.Predicted, d.UsedFallback, d.Confidence)
}

func TestTunerEmptyMatrix(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatDIA, 0.99), 1)
	m, err := matrix.FromTriples[float64](10, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	op, d, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	if op == nil {
		t.Fatal("no operator for empty matrix")
	}
	x := make([]float64, 10)
	y := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	op.MulVec(x, y)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("y[%d] = %g on empty matrix", i, v)
		}
	}
	_ = d
}

func TestTunerOneByOne(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatCSR, 0.99), 1)
	m, err := matrix.FromTriples(1, 1, []matrix.Triple[float64]{{Row: 0, Col: 0, Val: 3}})
	if err != nil {
		t.Fatal(err)
	}
	op, _, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 1)
	op.MulVec([]float64{2}, y)
	if y[0] != 6 {
		t.Fatalf("y = %g, want 6", y[0])
	}
}

func TestDecisionOverheadZeroBaseline(t *testing.T) {
	d := &Decision{FeatureSec: 1}
	if d.Overhead() != 0 {
		t.Error("overhead with zero baseline should be 0")
	}
}

func TestOperatorDims(t *testing.T) {
	tuner := NewTuner[float64](modelAlways(matrix.FormatCOO, 0.99), 1)
	m, err := matrix.FromTriples(3, 7, []matrix.Triple[float64]{{Row: 1, Col: 2, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	op, _, err := tuner.Tune(m)
	if err != nil {
		t.Fatal(err)
	}
	r, c := op.Dims()
	if r != 3 || c != 7 || op.NNZ() != 1 {
		t.Errorf("Dims %dx%d NNZ %d", r, c, op.NNZ())
	}
}
