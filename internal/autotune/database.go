package autotune

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"smat/internal/features"
	"smat/internal/kernels"
	"smat/internal/matrix"
	"smat/internal/mining"
)

// DatabaseSchemaVersion is the newest record schema this build writes.
// Version-1 rows (no schema field, no params) load unchanged and retrain
// byte-identically: the parameter map is purely additive.
const DatabaseSchemaVersion = 2

// Record is one row of the feature database (the "Feature Database" box of
// the paper's Figure 4): a matrix's identity, its Table 2 feature values,
// and its measured per-format performance with the resulting best-format
// label. Schema-v2 rows additionally carry the per-format winning kernel
// parameters from the labeling-time parameter walk.
type Record struct {
	Schema   int                       `json:"schema,omitempty"`
	Name     string                    `json:"name"`
	Domain   string                    `json:"domain,omitempty"`
	Features features.Features         `json:"features"`
	Best     string                    `json:"best"`
	GFLOPS   map[string]float64        `json:"gflops,omitempty"`
	Params   map[string]kernels.Params `json:"params,omitempty"`
}

// Database is the accumulated training evidence. The paper calls out that
// the database is open-ended: new matrices append new records, and models
// retrain from records without re-running any measurement.
type Database struct {
	Records []Record
}

// Append adds a labeled matrix to the database as a schema-v1 row.
func (db *Database) Append(name, domain string, f features.Features, lbl Label) {
	db.AppendParams(name, domain, f, lbl, nil)
}

// AppendParams adds a labeled matrix together with its per-format winning
// kernel parameters. A nil or empty params map produces a plain v1 row, so
// databases mixing both schemas stay valid.
func (db *Database) AppendParams(name, domain string, f features.Features, lbl Label, params map[matrix.Format]kernels.Params) {
	g := make(map[string]float64, len(lbl.GFLOPS))
	for fmtID, v := range lbl.GFLOPS {
		g[fmtID.String()] = v
	}
	rec := Record{
		Name:     name,
		Domain:   domain,
		Features: f,
		Best:     lbl.Best.String(),
		GFLOPS:   g,
	}
	if len(params) > 0 {
		rec.Schema = DatabaseSchemaVersion
		rec.Params = make(map[string]kernels.Params, len(params))
		for fmtID, p := range params {
			rec.Params[fmtID.String()] = p
		}
	}
	db.Records = append(db.Records, rec)
}

// Save writes the database as JSON lines (one record per line), a format
// that supports appending new records with a text editor or a shell.
func (db *Database) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range db.Records {
		if err := enc.Encode(&db.Records[i]); err != nil {
			return fmt.Errorf("autotune: save database record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// LoadDatabase reads a JSON-lines database written by Save.
func LoadDatabase(r io.Reader) (*Database, error) {
	db := &Database{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("autotune: database line %d: %w", line, err)
		}
		if rec.Schema > DatabaseSchemaVersion {
			return nil, fmt.Errorf("autotune: database line %d: schema version %d is newer than this build supports (%d)",
				line, rec.Schema, DatabaseSchemaVersion)
		}
		if _, err := matrix.ParseFormat(rec.Best); err != nil {
			return nil, fmt.Errorf("autotune: database line %d: %w", line, err)
		}
		db.Records = append(db.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("autotune: load database: %w", err)
	}
	return db, nil
}

// Dataset converts the database into the learner's input.
func (db *Database) Dataset() (*mining.Dataset, error) {
	ds := &mining.Dataset{
		AttrNames:  features.AttributeNames,
		ClassNames: classNames(),
	}
	for i := range db.Records {
		rec := &db.Records[i]
		f, err := matrix.ParseFormat(rec.Best)
		if err != nil {
			return nil, fmt.Errorf("autotune: record %d (%s): %w", i, rec.Name, err)
		}
		if int(f) >= len(ds.ClassNames) {
			return nil, fmt.Errorf("autotune: record %d (%s): label %s outside the basic formats",
				i, rec.Name, rec.Best)
		}
		ds.Examples = append(ds.Examples, mining.Example{
			Attrs: rec.Features.Vector(),
			Label: int(f),
		})
	}
	return ds, nil
}

// TrainFromDatabase learns a model from an existing feature database,
// skipping all measurement. kernels carries the per-format kernel choice for
// the target architecture (from a previous scoreboard search; nil selects
// the basic kernels).
func TrainFromDatabase(db *Database, choice KernelChoice, cfg TrainConfig) (*TrainResult, error) {
	if len(db.Records) == 0 {
		return nil, fmt.Errorf("autotune: empty database")
	}
	if cfg.TailorLoss <= 0 {
		cfg.TailorLoss = 0.01
	}
	if cfg.ConfidenceThreshold <= 0 {
		cfg.ConfidenceThreshold = DefaultConfidenceThreshold
	}
	ds, err := db.Dataset()
	if err != nil {
		return nil, err
	}
	res := &TrainResult{Dataset: ds}
	tree, err := mining.BuildTree(ds, cfg.Tree)
	if err != nil {
		return nil, fmt.Errorf("autotune: train from database: %w", err)
	}
	full := mining.RulesFromTree(tree, ds).SimplifyConditions(ds)
	tailored := full.Tailor(ds, cfg.TailorLoss)
	res.FullRuleset = full
	res.FullRules = len(full.Rules)
	res.TailoredRules = len(tailored.Rules)
	res.TrainAccuracy = tailored.Accuracy(ds)

	kmap := map[string]string{}
	for f, name := range choice {
		kmap[f.String()] = name
	}
	res.Model = &Model{
		Version:             1,
		Threads:             cfg.Threads,
		ConfidenceThreshold: cfg.ConfidenceThreshold,
		MaxFill:             DefaultMaxFill,
		Kernels:             kmap,
		Ruleset:             tailored,
	}
	return res, nil
}
