package autotune

import (
	"container/list"
	"sync"
	"sync/atomic"

	"smat/internal/features"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// DefaultCacheSize bounds the decision cache when Config.CacheSize is zero.
const DefaultCacheSize = 1024

// cacheShards is the shard fan-out of the decision cache. 64 shards keep
// lock contention negligible even with hundreds of concurrent tuning
// requests while costing only a few kilobytes of fixed overhead.
const cacheShards = 64

// CacheEntry is one cached tuning decision: the winning format and kernel
// for a feature fingerprint, plus how the decision was reached. Confidence
// is the matched rule-group confidence for model predictions and 1 for
// measured (execute-and-measure) winners; Measured separates the two so a
// low-confidence predicted entry can later be refreshed by a tuner that is
// willing to measure.
type CacheEntry struct {
	Format     matrix.Format
	Kernel     string
	Confidence float64
	Measured   bool
	// Params carries the leader's kernel parameters (conversion knobs like
	// the BCSR block shape or the HYB width cut, plus the batch register
	// tile): cache hits convert and bind with the same parameters, so a
	// parameterized decision survives the cache unchanged.
	Params kernels.Params
	// BatchCrossover is the leader's measured batch-width crossover (see
	// Decision.BatchCrossover); cache hits reuse it instead of re-probing.
	// Zero means the probe never ran — appliers substitute a default.
	BatchCrossover int
	// ConvertSec, SpMVSec and IncumbentSec are the leader's amortisation
	// measurements: seconds to convert the leader's matrix to Format, the
	// converted operator's per-SpMV seconds, and the tuned-CSR incumbent's
	// per-SpMV seconds. Hits carrying an iteration hint recompute the
	// break-even point from these instead of re-measuring; a non-CSR entry
	// recorded without them (all zero) fails hint validation and is
	// re-tuned (see Tuner.TuneOpts). All three are zero when Format is CSR —
	// there is nothing to amortise.
	ConvertSec   float64
	SpMVSec      float64
	IncumbentSec float64
}

// CacheStats is a point-in-time snapshot of the decision cache counters.
type CacheStats struct {
	// Hits counts lookups answered by a cached entry; Misses counts lookups
	// that ran a full tuning pass as singleflight leader.
	Hits, Misses uint64
	// Shared counts callers that blocked on another goroutine's in-flight
	// tuning run for the same fingerprint and reused its result.
	Shared uint64
	// Evictions counts entries dropped by the LRU bound; Refreshes counts
	// low-confidence entries replaced by a re-tune.
	Evictions, Refreshes uint64
	// Size is the current entry count, Capacity the configured bound.
	Size, Capacity int
}

// HitRate returns the fraction of lookups served without a tuning run.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Shared + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Shared) / float64(total)
}

// Cache is a sharded, LRU-bounded map from feature fingerprints to tuning
// decisions with singleflight deduplication: N concurrent requests for the
// same un-tuned fingerprint trigger exactly one tuning run while the rest
// block on its result. All methods are safe for concurrent use. The cache
// stores decisions (format + kernel name), not operators, so one cache can
// be shared by tuners of different element types.
type Cache struct {
	capacity int // total bound; each shard holds capacity/cacheShards
	shards   [cacheShards]cacheShard

	hits, misses, shared, evictions, refreshes atomic.Uint64
}

type cacheShard struct {
	mu       sync.Mutex
	lru      list.List // front = most recently used; values are *cacheNode
	entries  map[features.Key]*list.Element
	inflight map[features.Key]*flight
}

type cacheNode struct {
	key   features.Key
	entry CacheEntry
}

// flight is one in-progress tuning run that waiters block on.
type flight struct {
	done  chan struct{}
	entry CacheEntry
	err   error
}

// NewCache builds a decision cache bounded to roughly capacity entries
// (the bound is enforced per shard, so the worst-case total is capacity
// rounded up to a multiple of the shard count). capacity ≤ 0 selects
// DefaultCacheSize.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	c := &Cache{capacity: capacity}
	for i := range c.shards {
		c.shards[i].entries = make(map[features.Key]*list.Element)
		c.shards[i].inflight = make(map[features.Key]*flight)
	}
	return c
}

func (c *Cache) shard(k features.Key) *cacheShard {
	return &c.shards[k.Hash()%cacheShards]
}

func (c *Cache) perShardCap() int {
	if n := c.capacity / cacheShards; n > 1 {
		return n
	}
	return 1
}

// Do returns the cached decision for key, or runs tune — exactly once
// across all concurrent callers of the same key — and caches its result.
// The second return value reports whether the decision came from the cache
// (a hit, or another caller's completed in-flight run) rather than from
// this caller's own tune invocation.
//
// A cached entry that was not measured and whose confidence is below
// refreshBelow is treated as stale: it is removed and re-tuned, so a
// decision recorded by a low-confidence prediction can be upgraded by a
// tuner willing to run the execute-and-measure fallback.
//
// Errors from tune are returned to the leader and never cached; waiters on
// a failed run retry as leaders of their own tuning run.
func (c *Cache) Do(key features.Key, refreshBelow float64, tune func() (CacheEntry, error)) (CacheEntry, bool, error) {
	return c.DoValidated(key, refreshBelow, nil, tune)
}

// DoValidated is Do with an extra acceptance predicate: a cached entry that
// fails valid is treated exactly like a stale low-confidence entry — dropped
// (counted as a refresh) and re-tuned. A nil valid accepts everything. The
// tuner uses this to reject entries that lack the amortisation measurements
// an iteration-hinted request needs, keeping the cache keyed purely by the
// structural fingerprint while still validating hits against the hint.
func (c *Cache) DoValidated(key features.Key, refreshBelow float64, valid func(CacheEntry) bool, tune func() (CacheEntry, error)) (CacheEntry, bool, error) {
	s := c.shard(key)
	for {
		s.mu.Lock()
		if el, ok := s.entries[key]; ok {
			n := el.Value.(*cacheNode)
			if (n.entry.Measured || n.entry.Confidence >= refreshBelow) && (valid == nil || valid(n.entry)) {
				s.lru.MoveToFront(el)
				entry := n.entry
				s.mu.Unlock()
				c.hits.Add(1)
				return entry, true, nil
			}
			// Stale low-confidence (or validation-failing) entry: drop it and
			// re-tune below.
			s.lru.Remove(el)
			delete(s.entries, key)
			c.refreshes.Add(1)
		}
		if f, ok := s.inflight[key]; ok {
			s.mu.Unlock()
			<-f.done
			if f.err != nil {
				// The leader failed on its matrix; run our own tuning pass.
				continue
			}
			if valid != nil && !valid(f.entry) {
				// The leader's entry does not satisfy this caller's needs
				// (e.g. it was inserted by a Put without cost measurements);
				// loop back and refresh it as leader.
				continue
			}
			c.shared.Add(1)
			return f.entry, true, nil
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		s.mu.Unlock()

		c.misses.Add(1)
		entry, err := tune()
		f.entry, f.err = entry, err

		s.mu.Lock()
		delete(s.inflight, key)
		if err == nil {
			c.insertLocked(s, key, entry)
		}
		s.mu.Unlock()
		close(f.done)
		return entry, false, err
	}
}

// Get returns the cached decision without side effects on the counters or
// the in-flight table (the LRU position is still bumped).
func (c *Cache) Get(key features.Key) (CacheEntry, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		return el.Value.(*cacheNode).entry, true
	}
	return CacheEntry{}, false
}

// Put inserts or replaces a decision directly, bypassing singleflight.
func (c *Cache) Put(key features.Key, entry CacheEntry) {
	s := c.shard(key)
	s.mu.Lock()
	c.insertLocked(s, key, entry)
	s.mu.Unlock()
}

// insertLocked adds or refreshes an entry in s, evicting from the LRU tail
// to stay within the per-shard bound. Caller holds s.mu.
func (c *Cache) insertLocked(s *cacheShard, key features.Key, entry CacheEntry) {
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheNode).entry = entry
		s.lru.MoveToFront(el)
		return
	}
	for cap := c.perShardCap(); s.lru.Len() >= cap; {
		back := s.lru.Back()
		delete(s.entries, back.Value.(*cacheNode).key)
		s.lru.Remove(back)
		c.evictions.Add(1)
	}
	s.entries[key] = s.lru.PushFront(&cacheNode{key: key, entry: entry})
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Shared:    c.shared.Load(),
		Evictions: c.evictions.Load(),
		Refreshes: c.refreshes.Load(),
		Size:      c.Len(),
		Capacity:  c.capacity,
	}
}
