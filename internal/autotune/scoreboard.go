package autotune

import (
	"math/rand"
	"sort"

	"smat/internal/features"
	"smat/internal/gen"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// indifferenceGFLOPS is the paper's 0.01 GFLOPS band: two implementations
// closer than this are considered equal and the strategy difference between
// them is neglected.
const indifferenceGFLOPS = 0.01

// PerfRecord is one row of the performance record table: a kernel and its
// measured GFLOPS on the probe matrix.
type PerfRecord struct {
	Kernel     string
	Strategies kernels.Strategy
	GFLOPS     float64
}

// SearchResult reports the scoreboard search for one format.
type SearchResult struct {
	Format         matrix.Format
	Table          []PerfRecord
	StrategyScores map[string]int
	KernelScores   map[string]int
	Best           string
}

// KernelChoice maps each format to its chosen kernel name.
type KernelChoice map[matrix.Format]string

// SearchConfig controls the off-line kernel search.
type SearchConfig struct {
	// Threads is the architecture configuration under search (≤0: GOMAXPROCS).
	Threads int
	// ProbeScale scales the probe matrix sizes in (0, 1]; default 1.
	ProbeScale float64
	// Measure controls individual timings.
	Measure MeasureOptions
	// Seed feeds the probe generators.
	Seed int64
}

// probeMatrix builds the format's characteristic probe: the kernel search
// evaluates each format family on a matrix that format is meant for, the way
// the paper searches per-format implementations on the target architecture.
func probeMatrix(f matrix.Format, scale float64, seed int64) *matrix.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	dim := func(n int) int {
		d := int(float64(n) * scale)
		if d < 64 {
			d = 64
		}
		return d
	}
	switch f {
	case matrix.FormatDIA:
		k := dim(500)
		return gen.Laplacian2D5pt[float64](k, k)
	case matrix.FormatELL:
		return gen.ConstantDegree[float64](dim(100000), 4, rng)
	case matrix.FormatCOO:
		return gen.RoadNetwork[float64](dim(150000), rng)
	default:
		return gen.RandomUniform[float64](dim(30000), dim(30000), 40, rng)
	}
}

// SearchKernels runs the paper's two-step search: measure every registered
// implementation into a performance record table, then score each
// optimization strategy on a scoreboard by comparing implementations that
// differ in exactly that strategy. Each implementation's score is the sum of
// its strategies' scores; the highest-scoring implementation per format wins
// (ties break on measured GFLOPS).
func SearchKernels(cfg SearchConfig) (KernelChoice, []SearchResult) {
	cfg.Measure = cfg.Measure.withDefaults()
	if cfg.ProbeScale <= 0 || cfg.ProbeScale > 1 {
		cfg.ProbeScale = 1
	}
	lib := kernels.NewLibrary[float64]()
	choice := KernelChoice{}
	var results []SearchResult
	for _, f := range matrix.Formats {
		res := searchFormat(lib, f, cfg)
		results = append(results, res)
		choice[f] = res.Best
	}
	return choice, results
}

func searchFormat(lib *kernels.Library[float64], f matrix.Format, cfg SearchConfig) SearchResult {
	probe := probeMatrix(f, cfg.ProbeScale, cfg.Seed+int64(f))
	mat, err := kernels.Convert(probe, f, 0)
	if err != nil {
		// Probes are chosen to fit their format; unreachable.
		panic(err)
	}
	x := make([]float64, probe.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	y := make([]float64, probe.Rows)
	flops := kernels.FLOPs(probe.NNZ())

	// Step 1: the performance record table.
	res := SearchResult{Format: f, StrategyScores: map[string]int{}, KernelScores: map[string]int{}}
	perf := map[kernels.Strategy]float64{}
	name := map[kernels.Strategy]string{}
	for _, k := range lib.ForFormat(f) {
		if !k.Params.IsZero() {
			// Parameterized instances share a strategy bitmask with their
			// template (and with each other); scoring them here would collide
			// in the per-combo table. The parameter walk measures them.
			continue
		}
		sec := MeasureSecPerOp(func() { k.Run(mat, x, y, cfg.Threads) }, cfg.Measure)
		g := GFLOPS(flops, sec)
		res.Table = append(res.Table, PerfRecord{Kernel: k.Name, Strategies: k.Strategies, GFLOPS: g})
		perf[k.Strategies] = g
		name[k.Strategies] = k.Name
	}

	// Step 2: the scoreboard. Every implementation is compared against the
	// implementations having exactly one less strategy; the differing
	// strategy is marked +1 on a gain, -1 on a loss, 0 within the paper's
	// 0.01 GFLOPS indifference band.
	scores := map[kernels.Strategy]int{}
	for combo, g := range perf {
		if combo == 0 {
			continue
		}
		for _, sn := range kernels.StrategyNames {
			if combo&sn.S == 0 {
				continue
			}
			base, ok := perf[combo&^sn.S]
			if !ok {
				continue // no registered implementation with one less strategy
			}
			switch {
			case g-base > indifferenceGFLOPS:
				scores[sn.S]++
			case base-g > indifferenceGFLOPS:
				scores[sn.S]--
			}
		}
	}
	for _, sn := range kernels.StrategyNames {
		if s, ok := scores[sn.S]; ok {
			res.StrategyScores[sn.Name] = s
		}
	}

	// Implementation score = sum of its strategies' scores; best wins, ties
	// break on raw GFLOPS.
	bestName, bestScore, bestG := "", -1<<30, 0.0
	combos := make([]kernels.Strategy, 0, len(perf))
	for combo := range perf {
		combos = append(combos, combo)
	}
	sort.Slice(combos, func(i, j int) bool { return combos[i] < combos[j] })
	for _, combo := range combos {
		score := 0
		for _, sn := range kernels.StrategyNames {
			if combo&sn.S != 0 {
				score += scores[sn.S]
			}
		}
		res.KernelScores[name[combo]] = score
		if score > bestScore || (score == bestScore && perf[combo] > bestG) {
			bestName, bestScore, bestG = name[combo], score, perf[combo]
		}
	}
	res.Best = bestName
	return res
}

// ParamChoice maps each format to its searched kernel parameters. A missing
// or zero entry means the fixed menu (the hand-enumerated kernels with their
// built-in constants) won.
type ParamChoice map[matrix.Format]kernels.Params

// searchMaxBlockFill prunes BCSR block shapes during the parameter walk: a
// shape whose padding stores more than this multiple of NNZ moves more zeros
// than the block structure can pay back, so it is skipped without being
// converted or measured.
const searchMaxBlockFill = 1.75

// ParamSearchResult reports the parameter walk for one format on one matrix.
type ParamSearchResult struct {
	Format matrix.Format
	// Kernel and Params describe the overall winner ("" when no candidate was
	// feasible); GFLOPS is its measured rate.
	Kernel string
	Params kernels.Params
	GFLOPS float64
	// FixedKernel and FixedGFLOPS describe the best fixed-menu candidate
	// (zero-parameter kernel on the default conversion) over the same
	// measurements, the baseline the parameter search is judged against.
	FixedKernel string
	FixedGFLOPS float64
	// Pruned lists the candidates the feature guards skipped, for search logs.
	Pruned []string
}

// paramConvCandidates enumerates the conversion-level parameter candidates
// for a format, pruning with the already-extracted features: BCSR block
// shapes are skipped when their measured fill-in exceeds searchMaxBlockFill,
// and the whole DIA walk is skipped upstream when the diagonal tally is
// hypersparse. The zero Params (the format's default conversion) is always
// the first candidate.
func paramConvCandidates(m *matrix.CSR[float64], f matrix.Format, res *ParamSearchResult) []kernels.Params {
	out := []kernels.Params{{}}
	switch f {
	case matrix.FormatBCSR:
		for _, sh := range kernels.BCSRShapes {
			if fill := matrix.BlockFill(m, sh[0], sh[1]); fill > searchMaxBlockFill {
				res.Pruned = append(res.Pruned, kernels.Params{BlockR: sh[0], BlockC: sh[1]}.Suffix()+": block fill-in over bound")
				continue
			}
			out = append(out, kernels.Params{BlockR: sh[0], BlockC: sh[1]})
		}
	case matrix.FormatHYB:
		for _, cut := range kernels.HybCuts {
			out = append(out, kernels.Params{HybCut: cut})
		}
	}
	return out
}

// SearchMatrixParams walks the tunable parameter space of one format on one
// matrix: every conversion-level candidate (BCSR block shape, ELL→HYB width
// cut) crossed with every registered kernel instance of the format (unroll
// depths ride in as parameterized registrations). Feature guards prune the
// walk before anything is converted or timed — hypersparse diagonal tallies
// skip DIA entirely, over-padding block shapes are dropped — so the search
// stays within the same measurement budget class as the scoreboard. ft may
// be nil to disable feature pruning.
func SearchMatrixParams(lib *kernels.Library[float64], m *matrix.CSR[float64], ft *features.Features, f matrix.Format, threads int, measure MeasureOptions) ParamSearchResult {
	measure = measure.withDefaults()
	res := ParamSearchResult{Format: f}
	if f == matrix.FormatDIA && ft != nil && ft.ERDIA < kernels.DefaultDIAMinDensity {
		res.Pruned = append(res.Pruned, "dia: diagonal density below threshold")
		return res
	}
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	y := make([]float64, m.Rows)
	flops := kernels.FLOPs(m.NNZ())
	for _, cp := range paramConvCandidates(m, f, &res) {
		mat, err := kernels.ConvertWithParams(m, f, DefaultMaxFill, cp)
		if err != nil {
			continue
		}
		for _, k := range lib.ForFormat(f) {
			sec := MeasureSecPerOp(func() { k.Run(mat, x, y, threads) }, measure)
			g := GFLOPS(flops, sec)
			if g > res.GFLOPS {
				p := cp
				if k.Params.Unroll != 0 {
					p.Unroll = k.Params.Unroll
				}
				res.GFLOPS, res.Params, res.Kernel = g, p, k.Name
			}
			if cp.IsZero() && k.Params.IsZero() && g > res.FixedGFLOPS {
				res.FixedGFLOPS, res.FixedKernel = g, k.Name
			}
		}
	}
	if f == matrix.FormatDIA && res.Kernel != "" {
		// Record the density gate the walk ran under: the runtime re-applies
		// it before trusting a DIA prediction on a hypersparse tally.
		res.Params.DIAMinDensity = kernels.DefaultDIAMinDensity
	}
	return res
}

// SearchKernelsParams runs the scoreboard kernel search and then walks each
// format's tunable parameter space on the same probe matrix. The parameter
// walk overrides the scoreboard's per-format choice only when a parameterized
// instance beats the best fixed-menu candidate by more than the indifference
// band; the winning parameters feed the schema-v2 model.
func SearchKernelsParams(cfg SearchConfig) (KernelChoice, ParamChoice, []SearchResult, []ParamSearchResult) {
	cfg.Measure = cfg.Measure.withDefaults()
	if cfg.ProbeScale <= 0 || cfg.ProbeScale > 1 {
		cfg.ProbeScale = 1
	}
	lib := kernels.NewLibrary[float64]()
	choice := KernelChoice{}
	params := ParamChoice{}
	var results []SearchResult
	var walks []ParamSearchResult
	for _, f := range matrix.Formats {
		res := searchFormat(lib, f, cfg)
		results = append(results, res)
		choice[f] = res.Best

		probe := probeMatrix(f, cfg.ProbeScale, cfg.Seed+int64(f))
		ft := features.Extract(probe)
		walk := SearchMatrixParams(lib, probe, &ft, f, cfg.Threads, cfg.Measure)
		walks = append(walks, walk)
		gainGFLOPS := walk.GFLOPS - walk.FixedGFLOPS
		if walk.Kernel != "" && !walk.Params.IsZero() && gainGFLOPS > indifferenceGFLOPS {
			choice[f] = walk.Kernel
			params[f] = walk.Params
		}
	}
	return choice, params, results, walks
}
