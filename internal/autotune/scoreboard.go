package autotune

import (
	"math/rand"
	"sort"

	"smat/internal/gen"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// indifferenceGFLOPS is the paper's 0.01 GFLOPS band: two implementations
// closer than this are considered equal and the strategy difference between
// them is neglected.
const indifferenceGFLOPS = 0.01

// PerfRecord is one row of the performance record table: a kernel and its
// measured GFLOPS on the probe matrix.
type PerfRecord struct {
	Kernel     string
	Strategies kernels.Strategy
	GFLOPS     float64
}

// SearchResult reports the scoreboard search for one format.
type SearchResult struct {
	Format         matrix.Format
	Table          []PerfRecord
	StrategyScores map[string]int
	KernelScores   map[string]int
	Best           string
}

// KernelChoice maps each format to its chosen kernel name.
type KernelChoice map[matrix.Format]string

// SearchConfig controls the off-line kernel search.
type SearchConfig struct {
	// Threads is the architecture configuration under search (≤0: GOMAXPROCS).
	Threads int
	// ProbeScale scales the probe matrix sizes in (0, 1]; default 1.
	ProbeScale float64
	// Measure controls individual timings.
	Measure MeasureOptions
	// Seed feeds the probe generators.
	Seed int64
}

// probeMatrix builds the format's characteristic probe: the kernel search
// evaluates each format family on a matrix that format is meant for, the way
// the paper searches per-format implementations on the target architecture.
func probeMatrix(f matrix.Format, scale float64, seed int64) *matrix.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	dim := func(n int) int {
		d := int(float64(n) * scale)
		if d < 64 {
			d = 64
		}
		return d
	}
	switch f {
	case matrix.FormatDIA:
		k := dim(500)
		return gen.Laplacian2D5pt[float64](k, k)
	case matrix.FormatELL:
		return gen.ConstantDegree[float64](dim(100000), 4, rng)
	case matrix.FormatCOO:
		return gen.RoadNetwork[float64](dim(150000), rng)
	default:
		return gen.RandomUniform[float64](dim(30000), dim(30000), 40, rng)
	}
}

// SearchKernels runs the paper's two-step search: measure every registered
// implementation into a performance record table, then score each
// optimization strategy on a scoreboard by comparing implementations that
// differ in exactly that strategy. Each implementation's score is the sum of
// its strategies' scores; the highest-scoring implementation per format wins
// (ties break on measured GFLOPS).
func SearchKernels(cfg SearchConfig) (KernelChoice, []SearchResult) {
	cfg.Measure = cfg.Measure.withDefaults()
	if cfg.ProbeScale <= 0 || cfg.ProbeScale > 1 {
		cfg.ProbeScale = 1
	}
	lib := kernels.NewLibrary[float64]()
	choice := KernelChoice{}
	var results []SearchResult
	for _, f := range matrix.Formats {
		res := searchFormat(lib, f, cfg)
		results = append(results, res)
		choice[f] = res.Best
	}
	return choice, results
}

func searchFormat(lib *kernels.Library[float64], f matrix.Format, cfg SearchConfig) SearchResult {
	probe := probeMatrix(f, cfg.ProbeScale, cfg.Seed+int64(f))
	mat, err := kernels.Convert(probe, f, 0)
	if err != nil {
		// Probes are chosen to fit their format; unreachable.
		panic(err)
	}
	x := make([]float64, probe.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/7
	}
	y := make([]float64, probe.Rows)
	flops := kernels.FLOPs(probe.NNZ())

	// Step 1: the performance record table.
	res := SearchResult{Format: f, StrategyScores: map[string]int{}, KernelScores: map[string]int{}}
	perf := map[kernels.Strategy]float64{}
	name := map[kernels.Strategy]string{}
	for _, k := range lib.ForFormat(f) {
		sec := MeasureSecPerOp(func() { k.Run(mat, x, y, cfg.Threads) }, cfg.Measure)
		g := GFLOPS(flops, sec)
		res.Table = append(res.Table, PerfRecord{Kernel: k.Name, Strategies: k.Strategies, GFLOPS: g})
		perf[k.Strategies] = g
		name[k.Strategies] = k.Name
	}

	// Step 2: the scoreboard. Every implementation is compared against the
	// implementations having exactly one less strategy; the differing
	// strategy is marked +1 on a gain, -1 on a loss, 0 within the paper's
	// 0.01 GFLOPS indifference band.
	scores := map[kernels.Strategy]int{}
	for combo, g := range perf {
		if combo == 0 {
			continue
		}
		for _, sn := range kernels.StrategyNames {
			if combo&sn.S == 0 {
				continue
			}
			base, ok := perf[combo&^sn.S]
			if !ok {
				continue // no registered implementation with one less strategy
			}
			switch {
			case g-base > indifferenceGFLOPS:
				scores[sn.S]++
			case base-g > indifferenceGFLOPS:
				scores[sn.S]--
			}
		}
	}
	for _, sn := range kernels.StrategyNames {
		if s, ok := scores[sn.S]; ok {
			res.StrategyScores[sn.Name] = s
		}
	}

	// Implementation score = sum of its strategies' scores; best wins, ties
	// break on raw GFLOPS.
	bestName, bestScore, bestG := "", -1<<30, 0.0
	combos := make([]kernels.Strategy, 0, len(perf))
	for combo := range perf {
		combos = append(combos, combo)
	}
	sort.Slice(combos, func(i, j int) bool { return combos[i] < combos[j] })
	for _, combo := range combos {
		score := 0
		for _, sn := range kernels.StrategyNames {
			if combo&sn.S != 0 {
				score += scores[sn.S]
			}
		}
		res.KernelScores[name[combo]] = score
		if score > bestScore || (score == bestScore && perf[combo] > bestG) {
			bestName, bestScore, bestG = name[combo], score, perf[combo]
		}
	}
	res.Best = bestName
	return res
}
