package mining

import (
	"encoding/json"
	"fmt"
	"io"
)

// EncodeJSON writes the ruleset as indented JSON. All fields (including the
// RNone sentinel for non-scale-free matrices) are finite, so the encoding is
// lossless.
func (rs *Ruleset) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rs)
}

// DecodeRuleset reads a ruleset previously written by EncodeJSON and
// validates its internal consistency.
func DecodeRuleset(r io.Reader) (*Ruleset, error) {
	var rs Ruleset
	if err := json.NewDecoder(r).Decode(&rs); err != nil {
		return nil, fmt.Errorf("mining: decode ruleset: %w", err)
	}
	if err := rs.validate(); err != nil {
		return nil, err
	}
	return &rs, nil
}

func (rs *Ruleset) validate() error {
	if len(rs.ClassNames) == 0 {
		return fmt.Errorf("mining: ruleset has no classes")
	}
	if rs.Default < 0 || rs.Default >= len(rs.ClassNames) {
		return fmt.Errorf("mining: default class %d outside %d classes", rs.Default, len(rs.ClassNames))
	}
	for i, r := range rs.Rules {
		if r.Class < 0 || r.Class >= len(rs.ClassNames) {
			return fmt.Errorf("mining: rule %d class %d outside %d classes", i, r.Class, len(rs.ClassNames))
		}
		for _, c := range r.Conds {
			if c.Attr < 0 || c.Attr >= len(rs.AttrNames) {
				return fmt.Errorf("mining: rule %d references attribute %d of %d", i, c.Attr, len(rs.AttrNames))
			}
			if c.Op != OpLE && c.Op != OpGT {
				return fmt.Errorf("mining: rule %d has invalid operator %d", i, c.Op)
			}
		}
		if r.Confidence < 0 || r.Confidence > 1 {
			return fmt.Errorf("mining: rule %d confidence %g outside [0,1]", i, r.Confidence)
		}
	}
	return nil
}
