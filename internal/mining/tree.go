package mining

import (
	"math"
	"sort"
)

// TreeConfig controls tree induction.
type TreeConfig struct {
	// MinLeaf is the minimum number of examples on each side of a split
	// (default 2).
	MinLeaf int
	// MaxDepth bounds tree depth; 0 means unlimited.
	MaxDepth int
	// PruneCF is the confidence level of pessimistic error pruning in (0, 1);
	// smaller prunes harder. 0 selects the C4.5 default 0.25; negative
	// disables pruning.
	PruneCF float64
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.PruneCF == 0 {
		c.PruneCF = 0.25
	}
	return c
}

// Tree is a binary decision tree over continuous attributes. Internal nodes
// test attr ≤ threshold (left) versus attr > threshold (right).
type Tree struct {
	AttrNames  []string
	ClassNames []string
	root       *node
}

type node struct {
	// counts holds per-class training counts reaching this node.
	counts []int
	class  int // majority class

	// Internal nodes only.
	attr      int
	threshold float64
	left      *node
	right     *node
}

func (n *node) isLeaf() bool { return n.left == nil }

// BuildTree induces a decision tree from the dataset with C4.5-style
// gain-ratio splits and pessimistic pruning.
func BuildTree(ds *Dataset, cfg TreeConfig) (*Tree, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	idx := make([]int, len(ds.Examples))
	for i := range idx {
		idx[i] = i
	}
	root := grow(ds, idx, cfg, 0)
	if cfg.PruneCF > 0 {
		prune(root, cfg.PruneCF)
	}
	return &Tree{
		AttrNames:  append([]string(nil), ds.AttrNames...),
		ClassNames: append([]string(nil), ds.ClassNames...),
		root:       root,
	}, nil
}

func grow(ds *Dataset, idx []int, cfg TreeConfig, depth int) *node {
	counts := ds.classCounts(idx)
	class, count := majority(counts)
	n := &node{counts: counts, class: class}
	if count == len(idx) || len(idx) < 2*cfg.MinLeaf {
		return n
	}
	if cfg.MaxDepth > 0 && depth >= cfg.MaxDepth {
		return n
	}
	attr, threshold, ok := bestSplit(ds, idx, counts, cfg.MinLeaf)
	if !ok {
		return n
	}
	var left, right []int
	for _, i := range idx {
		if ds.Examples[i].Attrs[attr] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	n.attr = attr
	n.threshold = threshold
	n.left = grow(ds, left, cfg, depth+1)
	n.right = grow(ds, right, cfg, depth+1)
	return n
}

// entropy returns the Shannon entropy (bits) of a class-count vector.
func entropy(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// bestSplit finds the (attribute, threshold) pair with the highest gain
// ratio among splits with positive information gain, considering candidate
// thresholds midway between consecutive distinct attribute values.
func bestSplit(ds *Dataset, idx []int, counts []int, minLeaf int) (attr int, threshold float64, ok bool) {
	total := len(idx)
	baseH := entropy(counts, total)
	bestRatio := 0.0
	// Reusable buffers.
	order := make([]int, len(idx))
	leftCounts := make([]int, len(counts))

	for a := 0; a < len(ds.AttrNames); a++ {
		copy(order, idx)
		sort.Slice(order, func(i, j int) bool {
			return ds.Examples[order[i]].Attrs[a] < ds.Examples[order[j]].Attrs[a]
		})
		for i := range leftCounts {
			leftCounts[i] = 0
		}
		nLeft := 0
		for i := 0; i < len(order)-1; i++ {
			ex := ds.Examples[order[i]]
			leftCounts[ex.Label]++
			nLeft++
			v := ex.Attrs[a]
			next := ds.Examples[order[i+1]].Attrs[a]
			if v == next {
				continue // not a boundary between distinct values
			}
			if nLeft < minLeaf || total-nLeft < minLeaf {
				continue
			}
			// Information gain of the candidate split.
			hLeft := entropy(leftCounts, nLeft)
			rightCounts := make([]int, len(counts))
			for c := range counts {
				rightCounts[c] = counts[c] - leftCounts[c]
			}
			hRight := entropy(rightCounts, total-nLeft)
			pL := float64(nLeft) / float64(total)
			gain := baseH - pL*hLeft - (1-pL)*hRight
			if gain <= 1e-12 {
				continue
			}
			splitInfo := -pL*math.Log2(pL) - (1-pL)*math.Log2(1-pL)
			if splitInfo <= 0 {
				continue
			}
			ratio := gain / splitInfo
			if ratio > bestRatio {
				bestRatio = ratio
				attr = a
				threshold = midpoint(v, next)
				ok = true
			}
		}
	}
	return attr, threshold, ok
}

// midpoint returns a threshold strictly between a and b (a < b), robust to
// the huge magnitudes of the RNone sentinel.
func midpoint(a, b float64) float64 {
	m := a + (b-a)/2
	if m <= a {
		return a
	}
	return m
}

// Predict returns the predicted class index for an attribute vector.
func (t *Tree) Predict(attrs []float64) int {
	n := t.root
	for !n.isLeaf() {
		if attrs[n.attr] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// Size returns the total number of nodes in the tree.
func (t *Tree) Size() int { return t.root.size() }

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return t.root.leaves() }

func (n *node) size() int {
	if n.isLeaf() {
		return 1
	}
	return 1 + n.left.size() + n.right.size()
}

func (n *node) leaves() int {
	if n.isLeaf() {
		return 1
	}
	return n.left.leaves() + n.right.leaves()
}

// Accuracy returns the fraction of examples the tree classifies correctly.
func (t *Tree) Accuracy(ds *Dataset) float64 {
	if len(ds.Examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range ds.Examples {
		if t.Predict(ex.Attrs) == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.Examples))
}
