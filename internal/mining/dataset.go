// Package mining implements the data-mining substrate SMAT uses in place of
// the closed-source C5.0 tool: a C4.5-family decision-tree inducer over
// continuous attributes (gain-ratio splits, pessimistic pruning) and a
// ruleset extractor that converts the tree into ordered IF-THEN rules with
// per-rule confidence factors — the exact artifact shape SMAT's runtime
// consumes (Section 5.1 of the paper).
package mining

import "fmt"

// Example is one training record: a feature vector and a class label index.
type Example struct {
	Attrs []float64
	Label int
}

// Dataset is a labelled training set with attribute and class names.
type Dataset struct {
	AttrNames  []string
	ClassNames []string
	Examples   []Example
}

// Validate checks that every example has the right arity and a legal label.
func (ds *Dataset) Validate() error {
	for i, ex := range ds.Examples {
		if len(ex.Attrs) != len(ds.AttrNames) {
			return fmt.Errorf("mining: example %d has %d attrs, want %d",
				i, len(ex.Attrs), len(ds.AttrNames))
		}
		if ex.Label < 0 || ex.Label >= len(ds.ClassNames) {
			return fmt.Errorf("mining: example %d has label %d outside %d classes",
				i, ex.Label, len(ds.ClassNames))
		}
	}
	return nil
}

// classCounts tallies labels over a set of example indices.
func (ds *Dataset) classCounts(idx []int) []int {
	counts := make([]int, len(ds.ClassNames))
	for _, i := range idx {
		counts[ds.Examples[i].Label]++
	}
	return counts
}

// majority returns the class with the highest count (lowest index on ties)
// and its count.
func majority(counts []int) (class, count int) {
	for c, n := range counts {
		if n > count {
			class, count = c, n
		}
	}
	return class, count
}
