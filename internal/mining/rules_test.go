package mining

import (
	"bytes"
	"strings"
	"testing"
)

func buildRuleset(t *testing.T, ds *Dataset) *Ruleset {
	t.Helper()
	tree, err := BuildTree(ds, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return RulesFromTree(tree, ds)
}

func TestRulesetCoversAllInputs(t *testing.T) {
	// Tree leaves partition the input space, so some rule must match every
	// example even after contribution reordering.
	ds := thresholdDataset(500, 0.05, 10)
	rs := buildRuleset(t, ds)
	for i, ex := range ds.Examples {
		if _, ok := rs.Match(ex.Attrs); !ok {
			t.Fatalf("example %d matched no rule", i)
		}
	}
}

func TestRulesetAccuracyTracksTree(t *testing.T) {
	ds := thresholdDataset(800, 0.05, 11)
	tree, err := BuildTree(ds, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rs := RulesFromTree(tree, ds)
	ta, ra := tree.Accuracy(ds), rs.Accuracy(ds)
	if ra < ta-0.02 {
		t.Errorf("ruleset accuracy %g much below tree accuracy %g", ra, ta)
	}
}

func TestRuleConfidenceBounds(t *testing.T) {
	ds := thresholdDataset(600, 0.1, 12)
	rs := buildRuleset(t, ds)
	if len(rs.Rules) == 0 {
		t.Fatal("no rules extracted")
	}
	for i, r := range rs.Rules {
		if r.Confidence < 0 || r.Confidence > 1 {
			t.Errorf("rule %d confidence %g outside [0,1]", i, r.Confidence)
		}
		if r.Correct > r.Covered {
			t.Errorf("rule %d correct %d > covered %d", i, r.Correct, r.Covered)
		}
		// Laplace correction.
		want := float64(r.Correct+1) / float64(r.Covered+2)
		if r.Confidence != want {
			t.Errorf("rule %d confidence %g, want Laplace %g", i, r.Confidence, want)
		}
	}
}

func TestContributionOrdering(t *testing.T) {
	// The first rule must have the largest net benefit on the full set
	// (that is how the greedy ordering starts).
	ds := thresholdDataset(600, 0.05, 13)
	rs := buildRuleset(t, ds)
	best := -1 << 30
	for _, r := range rs.Rules {
		net := r.Correct - (r.Covered - r.Correct)
		if net > best {
			best = net
		}
	}
	first := rs.Rules[0]
	firstNet := first.Correct - (first.Covered - first.Correct)
	if firstNet != best {
		t.Errorf("first rule net benefit %d, best available %d", firstNet, best)
	}
}

func TestTailorKeepsAccuracy(t *testing.T) {
	ds := thresholdDataset(900, 0.1, 14)
	rs := buildRuleset(t, ds)
	tailored := rs.Tailor(ds, 0.01)
	if len(tailored.Rules) > len(rs.Rules) {
		t.Fatal("tailored ruleset grew")
	}
	if tailored.Accuracy(ds) < rs.Accuracy(ds)-0.01 {
		t.Errorf("tailored accuracy %g lost more than 1%% vs %g",
			tailored.Accuracy(ds), rs.Accuracy(ds))
	}
	// The original must be unchanged.
	if len(rs.Rules) == len(tailored.Rules) {
		t.Logf("tailoring kept all %d rules (acceptable: every rule contributes)", len(rs.Rules))
	}
}

func TestSimplifyMergesConditions(t *testing.T) {
	conds := []Condition{
		{Attr: 0, Op: OpLE, Threshold: 5},
		{Attr: 0, Op: OpLE, Threshold: 3}, // tighter, should win
		{Attr: 0, Op: OpGT, Threshold: 1},
		{Attr: 0, Op: OpGT, Threshold: 2}, // tighter, should win
		{Attr: 1, Op: OpLE, Threshold: 7},
	}
	out := simplify(conds)
	if len(out) != 3 {
		t.Fatalf("simplify kept %d conditions, want 3", len(out))
	}
	byKey := map[[2]int]float64{}
	for _, c := range out {
		byKey[[2]int{c.Attr, int(c.Op)}] = c.Threshold
	}
	if byKey[[2]int{0, int(OpLE)}] != 3 {
		t.Error("kept loose ≤ threshold")
	}
	if byKey[[2]int{0, int(OpGT)}] != 2 {
		t.Error("kept loose > threshold")
	}
}

func TestClassConfidence(t *testing.T) {
	ds := thresholdDataset(500, 0.05, 15)
	rs := buildRuleset(t, ds)
	conf := rs.ClassConfidence()
	if len(conf) != 3 {
		t.Fatalf("ClassConfidence length %d, want 3", len(conf))
	}
	for c, v := range conf {
		if v < 0 || v > 1 {
			t.Errorf("class %d confidence %g outside [0,1]", c, v)
		}
		// Must equal the max over that class's rules.
		max := 0.0
		for _, r := range rs.Rules {
			if r.Class == c && r.Confidence > max {
				max = r.Confidence
			}
		}
		if v != max {
			t.Errorf("class %d confidence %g != max rule confidence %g", c, v, max)
		}
	}
}

func TestMatchReturnsFirstInOrder(t *testing.T) {
	rs := &Ruleset{
		AttrNames:  []string{"x"},
		ClassNames: []string{"A", "B"},
		Rules: []Rule{
			{Conds: []Condition{{Attr: 0, Op: OpGT, Threshold: 0.5}}, Class: 0, Confidence: 0.9},
			{Conds: nil, Class: 1, Confidence: 0.5}, // matches everything
		},
		Default: 1,
	}
	r, ok := rs.Match([]float64{0.7})
	if !ok || r.Class != 0 {
		t.Error("first matching rule not returned")
	}
	r, ok = rs.Match([]float64{0.3})
	if !ok || r.Class != 1 {
		t.Error("fallthrough to second rule failed")
	}
}

func TestPredictDefaultWhenNoMatch(t *testing.T) {
	rs := &Ruleset{
		AttrNames:  []string{"x"},
		ClassNames: []string{"A", "B"},
		Rules: []Rule{
			{Conds: []Condition{{Attr: 0, Op: OpGT, Threshold: 10}}, Class: 0},
		},
		Default: 1,
	}
	if got := rs.Predict([]float64{1}); got != 1 {
		t.Errorf("Predict = %d, want default 1", got)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	ds := thresholdDataset(400, 0.05, 16)
	rs := buildRuleset(t, ds)
	var buf bytes.Buffer
	if err := rs.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRuleset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rules) != len(rs.Rules) || back.Default != rs.Default {
		t.Fatal("round trip changed structure")
	}
	for _, ex := range ds.Examples {
		if back.Predict(ex.Attrs) != rs.Predict(ex.Attrs) {
			t.Fatal("round trip changed predictions")
		}
	}
}

func TestDecodeRejectsCorruptRulesets(t *testing.T) {
	cases := []string{
		`not json`,
		`{"class_names":[],"attr_names":[],"rules":[],"default":0}`,
		`{"class_names":["A"],"attr_names":[],"rules":[],"default":5}`,
		`{"class_names":["A"],"attr_names":["x"],"rules":[{"conds":[{"attr":3,"op":0,"threshold":1}],"class":0}],"default":0}`,
		`{"class_names":["A"],"attr_names":["x"],"rules":[{"conds":[],"class":2}],"default":0}`,
		`{"class_names":["A"],"attr_names":["x"],"rules":[{"conds":[],"class":0,"confidence":3}],"default":0}`,
		`{"class_names":["A"],"attr_names":["x"],"rules":[{"conds":[{"attr":0,"op":9,"threshold":1}],"class":0}],"default":0}`,
	}
	for i, c := range cases {
		if _, err := DecodeRuleset(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: corrupt ruleset accepted", i)
		}
	}
}

func TestRulesetString(t *testing.T) {
	ds := thresholdDataset(300, 0, 17)
	rs := buildRuleset(t, ds)
	s := rs.String()
	if !strings.Contains(s, "Rule 1: IF") || !strings.Contains(s, "THEN") {
		t.Errorf("String() = %q lacks IF-THEN structure", s)
	}
	if !strings.Contains(s, "Default:") {
		t.Error("String() lacks default class")
	}
}
