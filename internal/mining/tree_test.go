package mining

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// thresholdDataset builds a dataset whose label is a deterministic function
// of two attributes with axis-aligned boundaries (learnable exactly by a
// depth-2 tree), optionally with label noise.
func thresholdDataset(n int, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{
		AttrNames:  []string{"x0", "x1"},
		ClassNames: []string{"A", "B", "C"},
	}
	for i := 0; i < n; i++ {
		x0, x1 := rng.Float64(), rng.Float64()
		label := 0
		if x0 > 0.3 {
			if x1 > 0.6 {
				label = 1
			} else {
				label = 2
			}
		}
		if rng.Float64() < noise {
			label = rng.Intn(3)
		}
		ds.Examples = append(ds.Examples, Example{Attrs: []float64{x0, x1}, Label: label})
	}
	return ds
}

func TestEntropy(t *testing.T) {
	if got := entropy([]int{5, 5}, 10); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("entropy(5,5) = %g, want 1", got)
	}
	if got := entropy([]int{10, 0}, 10); got != 0 {
		t.Errorf("entropy(10,0) = %g, want 0", got)
	}
	if got := entropy([]int{1, 1, 1, 1}, 4); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("entropy uniform 4 classes = %g, want 2", got)
	}
	if got := entropy(nil, 0); got != 0 {
		t.Errorf("entropy of empty = %g, want 0", got)
	}
}

func TestBuildTreeSeparableData(t *testing.T) {
	ds := thresholdDataset(400, 0, 1)
	tree, err := BuildTree(ds, TreeConfig{PruneCF: -1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := tree.Accuracy(ds); acc != 1.0 {
		t.Errorf("accuracy on separable data = %g, want 1.0", acc)
	}
	if tree.Leaves() > 6 {
		t.Errorf("tree has %d leaves for a 3-region concept", tree.Leaves())
	}
}

func TestBuildTreeRecoversThresholds(t *testing.T) {
	ds := thresholdDataset(2000, 0, 2)
	tree, err := BuildTree(ds, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	root := tree.root
	if root.isLeaf() {
		t.Fatal("root is a leaf")
	}
	if root.attr != 0 {
		t.Fatalf("root splits on attr %d, want 0 (x0)", root.attr)
	}
	if math.Abs(root.threshold-0.3) > 0.05 {
		t.Errorf("root threshold = %g, want ≈0.3", root.threshold)
	}
}

func TestBuildTreeSingleClass(t *testing.T) {
	ds := &Dataset{
		AttrNames:  []string{"x"},
		ClassNames: []string{"only"},
	}
	for i := 0; i < 10; i++ {
		ds.Examples = append(ds.Examples, Example{Attrs: []float64{float64(i)}, Label: 0})
	}
	tree, err := BuildTree(ds, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 1 {
		t.Errorf("single-class tree size = %d, want 1", tree.Size())
	}
	if tree.Predict([]float64{3}) != 0 {
		t.Error("wrong prediction")
	}
}

func TestBuildTreeRespectsMaxDepth(t *testing.T) {
	ds := thresholdDataset(500, 0, 3)
	tree, err := BuildTree(ds, TreeConfig{MaxDepth: 1, PruneCF: -1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Size() > 3 {
		t.Errorf("depth-1 tree has %d nodes, want ≤3", tree.Size())
	}
}

func TestBuildTreeValidatesDataset(t *testing.T) {
	bad := &Dataset{
		AttrNames:  []string{"x"},
		ClassNames: []string{"A"},
		Examples:   []Example{{Attrs: []float64{1, 2}, Label: 0}},
	}
	if _, err := BuildTree(bad, TreeConfig{}); err == nil {
		t.Error("BuildTree accepted wrong-arity example")
	}
	bad2 := &Dataset{
		AttrNames:  []string{"x"},
		ClassNames: []string{"A"},
		Examples:   []Example{{Attrs: []float64{1}, Label: 5}},
	}
	if _, err := BuildTree(bad2, TreeConfig{}); err == nil {
		t.Error("BuildTree accepted out-of-range label")
	}
}

func TestPruningShrinksNoisyTree(t *testing.T) {
	ds := thresholdDataset(800, 0.15, 4)
	unpruned, err := BuildTree(ds, TreeConfig{PruneCF: -1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := BuildTree(ds, TreeConfig{PruneCF: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Size() >= unpruned.Size() {
		t.Errorf("pruned size %d ≥ unpruned size %d", pruned.Size(), unpruned.Size())
	}
	// The pruned tree should still generalize: evaluate on clean data.
	clean := thresholdDataset(500, 0, 5)
	if acc := pruned.Accuracy(clean); acc < 0.9 {
		t.Errorf("pruned tree clean accuracy = %g, want ≥0.9", acc)
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.75, 0.6745},
		{0.975, 1.9600},
		{0.01, -2.3263},
	}
	for _, c := range cases {
		if got := normalQuantile(c.p); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("normalQuantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if !math.IsInf(normalQuantile(0), -1) || !math.IsInf(normalQuantile(1), 1) {
		t.Error("normalQuantile boundary values wrong")
	}
}

func TestPessimisticErrors(t *testing.T) {
	// Estimate is at least the observed error count and grows with it.
	if got := pessimisticErrors(0, 10, 0.25); got <= 0 {
		t.Errorf("zero observed errors should still estimate > 0, got %g", got)
	}
	lo := pessimisticErrors(1, 20, 0.25)
	hi := pessimisticErrors(5, 20, 0.25)
	if lo >= hi {
		t.Errorf("estimate not monotone in errors: %g vs %g", lo, hi)
	}
	if hi < 5 {
		t.Errorf("upper bound %g below observed 5", hi)
	}
	if pessimisticErrors(0, 0, 0.25) != 0 {
		t.Error("empty node should estimate 0")
	}
}

func TestPredictDeterministicProperty(t *testing.T) {
	ds := thresholdDataset(300, 0.05, 6)
	tree, err := BuildTree(ds, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x0, x1 float64) bool {
		a := []float64{math.Abs(x0), math.Abs(x1)}
		c := tree.Predict(a)
		return c >= 0 && c < 3 && c == tree.Predict(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMidpoint(t *testing.T) {
	if m := midpoint(1, 2); m <= 1 || m >= 2 {
		t.Errorf("midpoint(1,2) = %g", m)
	}
	// Huge sentinel magnitudes must not overflow to +Inf.
	if m := midpoint(3, 1e9); math.IsInf(m, 0) || m <= 3 || m > 1e9 {
		t.Errorf("midpoint(3,1e9) = %g", m)
	}
	// Degenerate: values so close the midpoint rounds to a — fall back to a.
	a := 1.0
	b := math.Nextafter(a, 2)
	if m := midpoint(a, b); m != a {
		t.Errorf("midpoint of adjacent floats = %g, want %g", m, a)
	}
}
