package mining

import "testing"

func TestCrossValidateLearnableConcept(t *testing.T) {
	ds := thresholdDataset(600, 0.02, 21)
	accs, mean, err := CrossValidate(ds, 5, TreeConfig{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 5 {
		t.Fatalf("%d folds, want 5", len(accs))
	}
	if mean < 0.9 {
		t.Errorf("mean CV accuracy %g on an easy concept, want ≥0.9", mean)
	}
	for i, a := range accs {
		if a < 0.8 {
			t.Errorf("fold %d accuracy %g", i, a)
		}
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	ds := thresholdDataset(300, 0.1, 22)
	_, m1, err := CrossValidate(ds, 4, TreeConfig{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	_, m2, err := CrossValidate(ds, 4, TreeConfig{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("same seed gave %g and %g", m1, m2)
	}
}

func TestCrossValidateRejectsBadArguments(t *testing.T) {
	ds := thresholdDataset(10, 0, 23)
	if _, _, err := CrossValidate(ds, 1, TreeConfig{}, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, _, err := CrossValidate(ds, 50, TreeConfig{}, 1); err == nil {
		t.Error("more folds than examples accepted")
	}
	bad := &Dataset{AttrNames: []string{"x"}, ClassNames: []string{"A"},
		Examples: []Example{{Attrs: []float64{1, 2}, Label: 0}}}
	if _, _, err := CrossValidate(bad, 2, TreeConfig{}, 1); err == nil {
		t.Error("invalid dataset accepted")
	}
}
