package mining

import (
	"fmt"
	"strings"
)

// Op is a condition comparison operator.
type Op byte

const (
	// OpLE tests attr ≤ threshold.
	OpLE Op = iota
	// OpGT tests attr > threshold.
	OpGT
)

// Condition is one comparison in a rule's antecedent.
type Condition struct {
	Attr      int     `json:"attr"`
	Op        Op      `json:"op"`
	Threshold float64 `json:"threshold"`
}

// Matches reports whether the attribute vector satisfies the condition.
func (c Condition) Matches(attrs []float64) bool {
	if c.Op == OpLE {
		return attrs[c.Attr] <= c.Threshold
	}
	return attrs[c.Attr] > c.Threshold
}

// Rule is one IF-THEN classification rule with its training-set statistics.
// Confidence is the Laplace-corrected accuracy (correct+1)/(covered+2), the
// paper's per-rule confidence factor in [0, 1].
type Rule struct {
	Conds      []Condition `json:"conds"`
	Class      int         `json:"class"`
	Covered    int         `json:"covered"`
	Correct    int         `json:"correct"`
	Confidence float64     `json:"confidence"`
}

// Matches reports whether all conditions hold for the attribute vector.
func (r *Rule) Matches(attrs []float64) bool {
	for _, c := range r.Conds {
		if !c.Matches(attrs) {
			return false
		}
	}
	return true
}

// Ruleset is an ordered rule list with a default class, the learning model
// SMAT's runtime evaluates. Rules appear in contribution order: rules that
// reduce training error the most come first (Section 6 "Rule Tailoring and
// Grouping").
type Ruleset struct {
	AttrNames  []string `json:"attr_names"`
	ClassNames []string `json:"class_names"`
	Rules      []Rule   `json:"rules"`
	Default    int      `json:"default"`
}

// RulesFromTree converts every root-to-leaf path of the tree into a rule,
// simplifies redundant conditions, computes per-rule confidence on the
// training set, and orders rules by estimated contribution.
func RulesFromTree(t *Tree, ds *Dataset) *Ruleset {
	rs := &Ruleset{
		AttrNames:  append([]string(nil), t.AttrNames...),
		ClassNames: append([]string(nil), t.ClassNames...),
	}
	counts := make([]int, len(t.ClassNames))
	for _, ex := range ds.Examples {
		counts[ex.Label]++
	}
	rs.Default, _ = majority(counts)

	var walk func(n *node, conds []Condition)
	walk = func(n *node, conds []Condition) {
		if n.isLeaf() {
			r := Rule{Conds: simplify(conds), Class: n.class}
			scoreRule(&r, ds)
			rs.Rules = append(rs.Rules, r)
			return
		}
		walk(n.left, append(conds, Condition{Attr: n.attr, Op: OpLE, Threshold: n.threshold}))
		walk(n.right, append(conds[:len(conds):len(conds)],
			Condition{Attr: n.attr, Op: OpGT, Threshold: n.threshold}))
	}
	walk(t.root, nil)
	rs.orderByContribution(ds)
	return rs
}

// simplify keeps only the tightest condition per (attribute, operator) pair.
func simplify(conds []Condition) []Condition {
	type key struct {
		attr int
		op   Op
	}
	tight := map[key]float64{}
	order := []key{}
	for _, c := range conds {
		k := key{c.Attr, c.Op}
		cur, seen := tight[k]
		if !seen {
			tight[k] = c.Threshold
			order = append(order, k)
			continue
		}
		if (c.Op == OpLE && c.Threshold < cur) || (c.Op == OpGT && c.Threshold > cur) {
			tight[k] = c.Threshold
		}
	}
	out := make([]Condition, 0, len(order))
	for _, k := range order {
		out = append(out, Condition{Attr: k.attr, Op: k.op, Threshold: tight[k]})
	}
	return out
}

// scoreRule fills coverage, correctness and Laplace confidence from the
// training set.
func scoreRule(r *Rule, ds *Dataset) {
	for _, ex := range ds.Examples {
		if r.Matches(ex.Attrs) {
			r.Covered++
			if ex.Label == r.Class {
				r.Correct++
			}
		}
	}
	r.Confidence = float64(r.Correct+1) / float64(r.Covered+2)
}

// orderByContribution greedily orders rules so that each position holds the
// rule with the largest net benefit (correct − incorrect) on the examples no
// earlier rule covers — the paper's "rules reducing error rate the most
// appear first".
func (rs *Ruleset) orderByContribution(ds *Dataset) {
	remaining := make([]int, 0, len(ds.Examples))
	for i := range ds.Examples {
		remaining = append(remaining, i)
	}
	unused := make([]Rule, len(rs.Rules))
	copy(unused, rs.Rules)
	var ordered []Rule
	for len(unused) > 0 && len(remaining) > 0 {
		bestIdx, bestScore := -1, 0
		var bestCov []bool
		for ri := range unused {
			score := 0
			cov := make([]bool, len(remaining))
			for pos, ei := range remaining {
				ex := ds.Examples[ei]
				if unused[ri].Matches(ex.Attrs) {
					cov[pos] = true
					if ex.Label == unused[ri].Class {
						score++
					} else {
						score--
					}
				}
			}
			if bestIdx == -1 || score > bestScore {
				bestIdx, bestScore, bestCov = ri, score, cov
			}
		}
		ordered = append(ordered, unused[bestIdx])
		unused = append(unused[:bestIdx], unused[bestIdx+1:]...)
		var next []int
		for pos, ei := range remaining {
			if !bestCov[pos] {
				next = append(next, ei)
			}
		}
		remaining = next
	}
	// Any rules left cover nothing new; keep them at the tail in original
	// order so prediction semantics are preserved.
	rs.Rules = append(ordered, unused...)
}

// Match returns the first rule in order matching the attribute vector.
func (rs *Ruleset) Match(attrs []float64) (*Rule, bool) {
	for i := range rs.Rules {
		if rs.Rules[i].Matches(attrs) {
			return &rs.Rules[i], true
		}
	}
	return nil, false
}

// Predict returns the class of the first matching rule, or the default
// class when nothing matches.
func (rs *Ruleset) Predict(attrs []float64) int {
	if r, ok := rs.Match(attrs); ok {
		return r.Class
	}
	return rs.Default
}

// Accuracy returns the fraction of examples the ruleset classifies
// correctly.
func (rs *Ruleset) Accuracy(ds *Dataset) float64 {
	if len(ds.Examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range ds.Examples {
		if rs.Predict(ex.Attrs) == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.Examples))
}

// Tailor truncates the ordered ruleset to the shortest prefix whose training
// accuracy is within maxAccuracyLoss of the full ruleset (the paper tailors
// 40 rules down to 15 within a 1% accuracy gap). It returns the tailored
// copy; the receiver is unchanged.
func (rs *Ruleset) Tailor(ds *Dataset, maxAccuracyLoss float64) *Ruleset {
	full := rs.Accuracy(ds)
	for k := 1; k <= len(rs.Rules); k++ {
		sub := rs.prefix(k)
		if sub.Accuracy(ds) >= full-maxAccuracyLoss {
			return sub
		}
	}
	return rs.prefix(len(rs.Rules))
}

func (rs *Ruleset) prefix(k int) *Ruleset {
	return &Ruleset{
		AttrNames:  rs.AttrNames,
		ClassNames: rs.ClassNames,
		Rules:      append([]Rule(nil), rs.Rules[:k]...),
		Default:    rs.Default,
	}
}

// ClassConfidence returns, per class, the maximum confidence over the
// class's rules — the paper's per-format confidence factor used by the
// runtime's threshold test.
func (rs *Ruleset) ClassConfidence() []float64 {
	conf := make([]float64, len(rs.ClassNames))
	for _, r := range rs.Rules {
		if r.Confidence > conf[r.Class] {
			conf[r.Class] = r.Confidence
		}
	}
	return conf
}

// String renders the ruleset as IF-THEN sentences.
func (rs *Ruleset) String() string {
	var b strings.Builder
	for i, r := range rs.Rules {
		fmt.Fprintf(&b, "Rule %d: IF ", i+1)
		if len(r.Conds) == 0 {
			b.WriteString("true")
		}
		for j, c := range r.Conds {
			if j > 0 {
				b.WriteString(" AND ")
			}
			op := "<="
			if c.Op == OpGT {
				op = ">"
			}
			fmt.Fprintf(&b, "%s %s %.4g", rs.AttrNames[c.Attr], op, c.Threshold)
		}
		fmt.Fprintf(&b, " THEN %s  [conf %.2f, %d/%d]\n",
			rs.ClassNames[r.Class], r.Confidence, r.Correct, r.Covered)
	}
	fmt.Fprintf(&b, "Default: %s\n", rs.ClassNames[rs.Default])
	return b.String()
}
