package mining

import (
	"strings"
	"testing"
)

// FuzzDecodeRuleset checks the model deserialiser never panics and never
// accepts a ruleset that then fails during prediction.
func FuzzDecodeRuleset(f *testing.F) {
	f.Add(`{"attr_names":["x"],"class_names":["A","B"],"rules":[{"conds":[{"attr":0,"op":0,"threshold":1}],"class":0,"confidence":0.5}],"default":1}`)
	f.Add(`{"attr_names":[],"class_names":["A"],"rules":[],"default":0}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, in string) {
		rs, err := DecodeRuleset(strings.NewReader(in))
		if err != nil {
			return
		}
		// Whatever was accepted must predict without panicking on a vector
		// of the declared arity.
		attrs := make([]float64, len(rs.AttrNames))
		c := rs.Predict(attrs)
		if c < 0 || c >= len(rs.ClassNames) {
			t.Fatalf("prediction %d outside %d classes", c, len(rs.ClassNames))
		}
	})
}
