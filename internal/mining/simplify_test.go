package mining

import "testing"

func TestSimplifyConditionsDropsRedundantConditions(t *testing.T) {
	// Concept depends only on x0; a deep tree will thread x1 conditions
	// into its paths, and simplification should strip most of them.
	ds := thresholdDataset(800, 0, 31)
	for i := range ds.Examples {
		// Relabel: only x0 matters.
		if ds.Examples[i].Attrs[0] > 0.5 {
			ds.Examples[i].Label = 1
		} else {
			ds.Examples[i].Label = 0
		}
	}
	tree, err := BuildTree(ds, TreeConfig{PruneCF: -1, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	rs := RulesFromTree(tree, ds)
	simplified := rs.SimplifyConditions(ds)
	before, after := 0, 0
	for _, r := range rs.Rules {
		before += len(r.Conds)
	}
	for _, r := range simplified.Rules {
		after += len(r.Conds)
	}
	if after > before {
		t.Errorf("simplification grew conditions: %d -> %d", before, after)
	}
	if acc := simplified.Accuracy(ds); acc < rs.Accuracy(ds)-0.01 {
		t.Errorf("simplification cost accuracy: %g vs %g", acc, rs.Accuracy(ds))
	}
}

func TestSimplifyConditionsKeepsAccuracyOnNoisyData(t *testing.T) {
	ds := thresholdDataset(700, 0.1, 32)
	rs := buildRuleset(t, ds)
	simplified := rs.SimplifyConditions(ds)
	if simplified.Accuracy(ds) < rs.Accuracy(ds)-0.02 {
		t.Errorf("accuracy dropped: %g -> %g", rs.Accuracy(ds), simplified.Accuracy(ds))
	}
	// The receiver must be untouched.
	for i := range rs.Rules {
		if len(rs.Rules[i].Conds) < len(simplified.Rules[i].Conds) {
			// ordering may differ; just check rs itself is still valid
			break
		}
	}
	for _, r := range simplified.Rules {
		if r.Confidence < 0 || r.Confidence > 1 {
			t.Error("invalid confidence after simplification")
		}
	}
}

func TestSimplifyRuleBareRule(t *testing.T) {
	ds := thresholdDataset(100, 0, 33)
	r := simplifyRule(Rule{Class: 0}, ds)
	if len(r.Conds) != 0 {
		t.Error("condition appeared from nowhere")
	}
	if r.Covered != len(ds.Examples) {
		t.Errorf("bare rule covers %d of %d", r.Covered, len(ds.Examples))
	}
}
