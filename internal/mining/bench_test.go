package mining

import "testing"

// BenchmarkBuildTree measures the off-line learning cost on a corpus-sized
// dataset (the paper: learning runs once per architecture and is reused).
func BenchmarkBuildTree(b *testing.B) {
	ds := thresholdDataset(2000, 0.05, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTree(ds, TreeConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRulesFromTree(b *testing.B) {
	ds := thresholdDataset(2000, 0.05, 2)
	tree, err := BuildTree(ds, TreeConfig{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RulesFromTree(tree, ds)
	}
}

// BenchmarkRulesetPredict measures the on-line rule evaluation cost, which
// must stay negligible next to one SpMV.
func BenchmarkRulesetPredict(b *testing.B) {
	ds := thresholdDataset(2000, 0.05, 3)
	tree, err := BuildTree(ds, TreeConfig{})
	if err != nil {
		b.Fatal(err)
	}
	rs := RulesFromTree(tree, ds)
	attrs := []float64{0.4, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rs.Predict(attrs)
	}
}
