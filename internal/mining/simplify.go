package mining

// SimplifyConditions generalises every rule by greedily dropping conditions
// whose removal does not lower the rule's Laplace confidence on the training
// set — the condition-pruning step of C4.5rules (and C5.0's ruleset
// classifier, which the paper uses). Dropping a condition widens a rule's
// coverage; the confidence criterion accepts the widening only when the
// newly covered examples agree with the rule's class. Rules are re-scored
// and re-ordered by contribution afterwards; the receiver is unchanged.
func (rs *Ruleset) SimplifyConditions(ds *Dataset) *Ruleset {
	out := &Ruleset{
		AttrNames:  rs.AttrNames,
		ClassNames: rs.ClassNames,
		Default:    rs.Default,
		Rules:      make([]Rule, len(rs.Rules)),
	}
	for i := range rs.Rules {
		out.Rules[i] = simplifyRule(rs.Rules[i], ds)
	}
	out.orderByContribution(ds)
	return out
}

func simplifyRule(r Rule, ds *Dataset) Rule {
	cur := Rule{Conds: append([]Condition(nil), r.Conds...), Class: r.Class}
	scoreRule(&cur, ds)
	for {
		bestIdx := -1
		var best Rule
		for i := range cur.Conds {
			cand := Rule{Class: cur.Class}
			cand.Conds = append(cand.Conds, cur.Conds[:i]...)
			cand.Conds = append(cand.Conds, cur.Conds[i+1:]...)
			scoreRule(&cand, ds)
			if cand.Confidence >= cur.Confidence &&
				(bestIdx == -1 || cand.Confidence > best.Confidence) {
				bestIdx = i
				best = cand
			}
		}
		if bestIdx == -1 {
			return cur
		}
		cur = best
	}
}
