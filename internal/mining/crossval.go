package mining

import (
	"fmt"
	"math/rand"
)

// CrossValidate runs k-fold cross-validation of the full pipeline (tree →
// ruleset) on the dataset and returns the per-fold held-out accuracies and
// their mean. The fold assignment is a deterministic shuffle of the example
// indices.
func CrossValidate(ds *Dataset, k int, cfg TreeConfig, seed int64) (accs []float64, mean float64, err error) {
	if err := ds.Validate(); err != nil {
		return nil, 0, err
	}
	if k < 2 {
		return nil, 0, fmt.Errorf("mining: cross validation needs k ≥ 2, got %d", k)
	}
	if len(ds.Examples) < k {
		return nil, 0, fmt.Errorf("mining: %d examples cannot fill %d folds", len(ds.Examples), k)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(len(ds.Examples))
	for fold := 0; fold < k; fold++ {
		train := &Dataset{AttrNames: ds.AttrNames, ClassNames: ds.ClassNames}
		test := &Dataset{AttrNames: ds.AttrNames, ClassNames: ds.ClassNames}
		for pos, idx := range perm {
			if pos%k == fold {
				test.Examples = append(test.Examples, ds.Examples[idx])
			} else {
				train.Examples = append(train.Examples, ds.Examples[idx])
			}
		}
		tree, err := BuildTree(train, cfg)
		if err != nil {
			return nil, 0, fmt.Errorf("mining: fold %d: %w", fold, err)
		}
		rs := RulesFromTree(tree, train)
		accs = append(accs, rs.Accuracy(test))
	}
	for _, a := range accs {
		mean += a
	}
	mean /= float64(len(accs))
	return accs, mean, nil
}
