package features

import (
	"math/rand"
	"testing"

	"smat/internal/gen"
)

func TestKeyStableAcrossValues(t *testing.T) {
	// Two matrices with identical structure but different nonzero values
	// must fingerprint identically: the decision depends on structure only.
	a := gen.MultiDiagonal[float64](2000, []int{-1, 0, 1}, rand.New(rand.NewSource(1)))
	b := gen.MultiDiagonal[float64](2000, []int{-1, 0, 1}, rand.New(rand.NewSource(99)))
	fa, fb := Extract(a), Extract(b)
	if fa.Key() != fb.Key() {
		t.Errorf("same structure, different keys:\n%v\n%v", fa.Key(), fb.Key())
	}
}

func TestKeyQuantizationBucketsNearbySizes(t *testing.T) {
	// Quarter-log2 bucketing: a 1% size difference lands in the same
	// bucket, a 2x difference does not.
	a := Extract(gen.MultiDiagonal[float64](3000, []int{-1, 0, 1}, rand.New(rand.NewSource(1))))
	b := Extract(gen.MultiDiagonal[float64](3010, []int{-1, 0, 1}, rand.New(rand.NewSource(2))))
	c := Extract(gen.MultiDiagonal[float64](6000, []int{-1, 0, 1}, rand.New(rand.NewSource(3))))
	if a.Key() != b.Key() {
		t.Errorf("3000 vs 3010 rows should share a fingerprint:\n%v\n%v", a.Key(), b.Key())
	}
	if a.Key() == c.Key() {
		t.Error("3000 vs 6000 rows should not share a fingerprint")
	}
}

func TestKeySeparatesStructures(t *testing.T) {
	rng := func(s int64) *rand.Rand { return rand.New(rand.NewSource(s)) }
	keys := map[Key]string{}
	for _, tc := range []struct {
		name string
		f    Features
	}{
		{"tridiagonal", Extract(gen.MultiDiagonal[float64](3000, []int{-1, 0, 1}, rng(1)))},
		{"constant-degree", Extract(gen.ConstantDegree[float64](3000, 4, rng(2)))},
		{"power-law", Extract(gen.PreferentialAttachment[float64](3000, 3, rng(3)))},
		{"random-uniform", Extract(gen.RandomUniform[float64](3000, 3000, 8, rng(4)))},
	} {
		k := tc.f.Key()
		if prev, ok := keys[k]; ok {
			t.Errorf("%s and %s collide on %v", prev, tc.name, k)
		}
		keys[k] = tc.name
	}
}

func TestKeyHashSpreadsShards(t *testing.T) {
	// The 16 corpus classes and size sweeps must not all pile onto a few
	// shards: check that distinct keys spread over a reasonable number of
	// 64-way buckets.
	shards := map[uint64]bool{}
	n := 0
	for size := 500; size <= 50000; size = size * 3 / 2 {
		f := Extract(gen.RandomUniform[float64](size, size, 6, rand.New(rand.NewSource(int64(size)))))
		shards[f.Key().Hash()%64] = true
		n++
	}
	if len(shards) < n/3 {
		t.Errorf("%d distinct keys landed on only %d/64 shards", n, len(shards))
	}
}

func TestKeyRNoneSentinel(t *testing.T) {
	f := Features{R: RNone}
	g := Features{R: 3.0}
	h := Features{R: RNone}
	if f.Key().R == g.Key().R {
		t.Error("RNone must not collide with a finite exponent")
	}
	if f.Key() != h.Key() {
		t.Error("RNone key not stable")
	}
}
