package features

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"smat/internal/matrix"
)

func mustCSR(t *testing.T, rows, cols int, ts []matrix.Triple[float64]) *matrix.CSR[float64] {
	t.Helper()
	m, err := matrix.FromTriples(rows, cols, ts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// paperCSR is the Figure 2 example matrix.
func paperCSR(t *testing.T) *matrix.CSR[float64] {
	return mustCSR(t, 4, 4, []matrix.Triple[float64]{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 5},
		{Row: 1, Col: 1, Val: 2}, {Row: 1, Col: 2, Val: 6},
		{Row: 2, Col: 0, Val: 8}, {Row: 2, Col: 2, Val: 3}, {Row: 2, Col: 3, Val: 7},
		{Row: 3, Col: 1, Val: 9}, {Row: 3, Col: 3, Val: 4},
	})
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestExtractPaperExample(t *testing.T) {
	f := Extract(paperCSR(t))
	if f.M != 4 || f.N != 4 || f.NNZ != 9 {
		t.Fatalf("shape = %d/%d/%d", f.M, f.N, f.NNZ)
	}
	if !almost(f.AverRD, 2.25) {
		t.Errorf("aver_RD = %g, want 2.25", f.AverRD)
	}
	if f.MaxRD != 3 {
		t.Errorf("max_RD = %g, want 3", f.MaxRD)
	}
	if !almost(f.VarRD, 0.1875) {
		t.Errorf("var_RD = %g, want 0.1875", f.VarRD)
	}
	if f.Ndiags != 3 {
		t.Errorf("Ndiags = %d, want 3", f.Ndiags)
	}
	// Diagonals: offset -2 holds 2/2 slots, offset 0 holds 4/4, offset 1
	// holds 3/3 → all three are "true" diagonals.
	if !almost(f.NTdiagsRatio, 1.0) {
		t.Errorf("NTdiags_ratio = %g, want 1.0", f.NTdiagsRatio)
	}
	if !almost(f.ERDIA, 9.0/12.0) {
		t.Errorf("ER_DIA = %g, want 0.75", f.ERDIA)
	}
	if !almost(f.ERELL, 9.0/12.0) {
		t.Errorf("ER_ELL = %g, want 0.75", f.ERELL)
	}
	if f.R != RNone {
		t.Errorf("R = %g, want RNone (only 2 distinct degrees)", f.R)
	}
}

func TestExtractTridiagonal(t *testing.T) {
	// A pure tridiagonal matrix: the DIA-perfect case (cf. the paper's
	// t2d_q9 record with NTdiags_ratio 1.0 and R inf).
	n := 100
	var ts []matrix.Triple[float64]
	for i := 0; i < n; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: i, Col: i, Val: 2})
		if i > 0 {
			ts = append(ts, matrix.Triple[float64]{Row: i, Col: i - 1, Val: -1})
		}
		if i < n-1 {
			ts = append(ts, matrix.Triple[float64]{Row: i, Col: i + 1, Val: -1})
		}
	}
	f := Extract(mustCSR(t, n, n, ts))
	if f.Ndiags != 3 {
		t.Fatalf("Ndiags = %d, want 3", f.Ndiags)
	}
	if f.NTdiagsRatio != 1.0 {
		t.Errorf("NTdiags_ratio = %g, want 1.0", f.NTdiagsRatio)
	}
	if f.ERDIA < 0.99 {
		t.Errorf("ER_DIA = %g, want ≈1", f.ERDIA)
	}
	if f.R != RNone {
		t.Errorf("R = %g, want RNone on a stencil matrix", f.R)
	}
}

func TestPowerLawExponentRecoversKnownExponent(t *testing.T) {
	// Synthesize a degree list whose histogram follows n(k) = C·k^(-2.5).
	var degrees []int
	for k := 1; k <= 60; k++ {
		cnt := int(math.Round(20000 * math.Pow(float64(k), -2.5)))
		for i := 0; i < cnt; i++ {
			degrees = append(degrees, k)
		}
	}
	r := PowerLawExponent(degrees)
	if math.Abs(r-2.5) > 0.15 {
		t.Errorf("fitted R = %g, want ≈2.5", r)
	}
}

func TestPowerLawExponentRejectsNonScaleFree(t *testing.T) {
	// Uniform degrees: no decay.
	uniform := make([]int, 0, 500)
	for k := 1; k <= 5; k++ {
		for i := 0; i < 100; i++ {
			uniform = append(uniform, k)
		}
	}
	if r := PowerLawExponent(uniform); r != RNone {
		t.Errorf("uniform degrees: R = %g, want RNone", r)
	}
	// Too few distinct degrees.
	if r := PowerLawExponent([]int{3, 3, 3, 3, 5, 5}); r != RNone {
		t.Errorf("two distinct degrees: R = %g, want RNone", r)
	}
	// Increasing distribution (more high-degree than low): slope positive.
	var increasing []int
	for k := 1; k <= 10; k++ {
		for i := 0; i < k*k; i++ {
			increasing = append(increasing, k)
		}
	}
	if r := PowerLawExponent(increasing); r != RNone {
		t.Errorf("increasing distribution: R = %g, want RNone", r)
	}
	// Empty and all-zero.
	if r := PowerLawExponent(nil); r != RNone {
		t.Errorf("empty degrees: R = %g, want RNone", r)
	}
	if r := PowerLawExponent([]int{0, 0, 0}); r != RNone {
		t.Errorf("all-zero degrees: R = %g, want RNone", r)
	}
}

func TestFeatureInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(50)
		cols := 1 + rng.Intn(50)
		var ts []matrix.Triple[float64]
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if rng.Float64() < 0.2 {
					ts = append(ts, matrix.Triple[float64]{Row: r, Col: c, Val: 1})
				}
			}
		}
		m, err := matrix.FromTriples(rows, cols, ts)
		if err != nil {
			return false
		}
		ft := Extract(m)
		if ft.NNZ != m.NNZ() || ft.M != rows || ft.N != cols {
			return false
		}
		if ft.AverRD > ft.MaxRD+1e-12 {
			t.Logf("aver_RD %g > max_RD %g", ft.AverRD, ft.MaxRD)
			return false
		}
		if ft.VarRD < 0 {
			return false
		}
		if ft.NTdiagsRatio < 0 || ft.NTdiagsRatio > 1 {
			return false
		}
		if ft.NNZ > 0 && (ft.ERDIA <= 0 || ft.ERDIA > 1 || ft.ERELL <= 0 || ft.ERELL > 1) {
			t.Logf("ER out of range: dia=%g ell=%g", ft.ERDIA, ft.ERELL)
			return false
		}
		maxDiags := rows + cols - 1
		if ft.Ndiags < 0 || ft.Ndiags > maxDiags {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestExtractHypersparseAgreesWithDense pins the map-based diagonal tally
// against the flat-array path: the same matrix pushed through both (by
// padding it with extra nonzeros until it leaves the hypersparse regime
// would change it, so instead we compare a hypersparse extraction against a
// brute-force diagonal count) must agree on every diagonal statistic.
func TestExtractHypersparseAgreesWithDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// 100k × 100k with 60 nonzeros: NNZ << (Rows+Cols)/8, firmly hypersparse.
	rows, cols := 100000, 100000
	var ts []matrix.Triple[float64]
	for i := 0; i < 60; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: rng.Intn(rows), Col: rng.Intn(cols), Val: 1})
	}
	// Plus one fully occupied short diagonal so trueDiags is nonzero.
	ts = append(ts, matrix.Triple[float64]{Row: rows - 1, Col: 0, Val: 1})
	m := mustCSR(t, rows, cols, ts)
	if m.NNZ() >= (rows+cols)/8 {
		t.Fatalf("test matrix not hypersparse: %d nonzeros", m.NNZ())
	}
	f := Extract(m)

	// Brute-force reference over the triples.
	diag := map[int]int{}
	for r := 0; r < rows; r++ {
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			diag[m.ColIdx[jj]-r]++
		}
	}
	trueDiags := 0
	for off, cnt := range diag {
		if float64(cnt) >= TrueDiagOccupancy*float64(diagLength(rows, cols, off)) {
			trueDiags++
		}
	}
	if f.Ndiags != len(diag) {
		t.Errorf("Ndiags = %d, want %d", f.Ndiags, len(diag))
	}
	wantRatio := float64(trueDiags) / float64(len(diag))
	if !almost(f.NTdiagsRatio, wantRatio) {
		t.Errorf("NTdiags_ratio = %g, want %g", f.NTdiagsRatio, wantRatio)
	}
	if !almost(f.ERDIA, float64(f.NNZ)/(float64(f.Ndiags)*float64(rows))) {
		t.Errorf("ER_DIA = %g inconsistent", f.ERDIA)
	}
}

// TestExtractRegimeBoundary walks matrices across the hypersparse threshold
// and checks both tally paths yield identical features for the same matrix
// structure scaled to either side of the cutoff.
func TestExtractRegimeBoundary(t *testing.T) {
	// A 1000×1000 tridiagonal band restricted to the first b rows: with
	// b = 100 the matrix has ~300 nonzeros > (2000)/8 = 250 (flat path),
	// with b = 70 it has ~210 < 250 (map path). Both must report the same
	// three diagonals.
	for _, b := range []int{70, 100} {
		n := 1000
		var ts []matrix.Triple[float64]
		for i := 0; i < b; i++ {
			ts = append(ts, matrix.Triple[float64]{Row: i, Col: i, Val: 2})
			if i > 0 {
				ts = append(ts, matrix.Triple[float64]{Row: i, Col: i - 1, Val: -1})
			}
			if i < n-1 {
				ts = append(ts, matrix.Triple[float64]{Row: i, Col: i + 1, Val: -1})
			}
		}
		m := mustCSR(t, n, n, ts)
		f := Extract(m)
		if f.Ndiags != 3 {
			t.Errorf("b=%d (nnz=%d): Ndiags = %d, want 3", b, m.NNZ(), f.Ndiags)
		}
		if f.NNZ != len(ts) {
			t.Errorf("b=%d: NNZ = %d, want %d", b, f.NNZ, len(ts))
		}
	}
}

func TestVectorMatchesAttributeNames(t *testing.T) {
	f := Extract(paperCSR(t))
	v := f.Vector()
	if len(v) != len(AttributeNames) {
		t.Fatalf("Vector length %d != %d attribute names", len(v), len(AttributeNames))
	}
}

func TestStringRendersInf(t *testing.T) {
	f := Extract(paperCSR(t))
	s := f.String()
	if !strings.Contains(s, "R=inf") {
		t.Errorf("String() = %q, want R=inf", s)
	}
	if !strings.Contains(s, "NNZ=9") {
		t.Errorf("String() = %q, want NNZ=9", s)
	}
}

func TestExtractEmptyAndZeroRow(t *testing.T) {
	f := Extract(mustCSR(t, 5, 5, nil))
	if f.NNZ != 0 || f.Ndiags != 0 || f.ERDIA != 0 || f.ERELL != 0 {
		t.Errorf("empty matrix features = %+v", f)
	}
	if f.R != RNone {
		t.Errorf("empty matrix R = %g, want RNone", f.R)
	}
	zero := matrix.CSR[float64]{Rows: 0, Cols: 0, RowPtr: []int{0}}
	fz := Extract(&zero)
	if fz.R != RNone || fz.M != 0 {
		t.Errorf("0x0 matrix features = %+v", fz)
	}
}

func TestDiagLength(t *testing.T) {
	cases := []struct {
		rows, cols, off, want int
	}{
		{4, 4, 0, 4},
		{4, 4, 1, 3},
		{4, 4, -2, 2},
		{4, 4, 3, 1},
		{4, 4, -3, 1},
		{2, 5, 3, 2},
		{5, 2, -3, 2},
		{3, 3, 5, 0},
	}
	for _, c := range cases {
		if got := diagLength(c.rows, c.cols, c.off); got != c.want {
			t.Errorf("diagLength(%d,%d,%d) = %d, want %d", c.rows, c.cols, c.off, got, c.want)
		}
	}
}
