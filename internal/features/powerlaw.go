package features

import "math"

// minDistinctDegrees is the minimum number of distinct positive row degrees
// required before a power-law fit is attempted; below it the distribution
// carries no scale-free signal (regular stencil matrices have one or two
// distinct degrees) and R is reported as RNone, the paper's "inf".
const minDistinctDegrees = 4

// minFitQuality is the minimum coefficient of determination (R²) of the
// log-log least-squares fit for the exponent to be trusted. Genuinely
// scale-free degree distributions (preferential attachment, R-MAT) fit at
// ≈0.8–0.9; irregular-but-uniform random matrices fit at ≈0.7 and must be
// rejected, otherwise every irregular matrix looks like a small-world graph.
const minFitQuality = 0.75

// PowerLawExponent fits P(k) ~ k^(-R) to the degree histogram of `degrees`
// by least squares on log P(k) vs. log k and returns R. It returns RNone
// when the distribution is not scale-free: too few distinct degrees, a
// non-decaying fit (R ≤ 0), or a poor fit quality.
func PowerLawExponent(degrees []int) float64 {
	hist := make(map[int]int)
	total := 0
	for _, d := range degrees {
		if d > 0 {
			hist[d]++
			total++
		}
	}
	if len(hist) < minDistinctDegrees || total == 0 {
		return RNone
	}
	// Least squares over (log k, log P(k)).
	var sx, sy, sxx, sxy, syy float64
	n := float64(len(hist))
	for k, cnt := range hist {
		x := math.Log(float64(k))
		y := math.Log(float64(cnt) / float64(total))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return RNone
	}
	slope := (n*sxy - sx*sy) / den
	r := -slope
	if r <= 0 {
		return RNone
	}
	// R² of the fit.
	ssTot := syy - sy*sy/n
	if ssTot <= 0 {
		return RNone
	}
	intercept := (sy - slope*sx) / n
	var ssRes float64
	for k, cnt := range hist {
		x := math.Log(float64(k))
		y := math.Log(float64(cnt) / float64(total))
		e := y - (slope*x + intercept)
		ssRes += e * e
	}
	if 1-ssRes/ssTot < minFitQuality {
		return RNone
	}
	return r
}
