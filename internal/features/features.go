// Package features extracts the sparse-structure feature parameters of the
// paper's Table 2 from a CSR matrix. These eleven parameters abstract the
// matrix structure for the learning model: basic shape (M, N, NNZ, aver_RD),
// diagonal situation (Ndiags, NTdiags_ratio), nonzero distribution (max_RD,
// var_RD), zero-fill ratios (ER_DIA, ER_ELL) and the power-law exponent R.
package features

import (
	"fmt"
	"math"

	"smat/internal/matrix"
)

// RNone is the sentinel value of the power-law exponent R for matrices whose
// row-degree distribution is not scale-free (the paper prints "inf"). A large
// finite value keeps records JSON-serialisable while still falling outside
// every beneficial interval a rule can learn.
const RNone = 1e9

// TrueDiagOccupancy is the minimum fraction of a diagonal's in-matrix length
// that must be occupied by nonzeros for it to count as a "true diagonal"
// (Section 4: a diagonal "occupied mostly with non-zeros").
const TrueDiagOccupancy = 0.8

// Features holds the Table 2 parameter values for one matrix.
type Features struct {
	M   int `json:"m"`   // number of rows
	N   int `json:"n"`   // number of columns
	NNZ int `json:"nnz"` // number of nonzeros

	AverRD float64 `json:"aver_rd"` // NNZ / M
	MaxRD  float64 `json:"max_rd"`  // max nonzeros per row
	VarRD  float64 `json:"var_rd"`  // Σ|deg−aver|² / M

	Ndiags       int     `json:"ndiags"`        // occupied diagonals
	NTdiagsRatio float64 `json:"ntdiags_ratio"` // "true" diagonals / Ndiags
	ERDIA        float64 `json:"er_dia"`        // NNZ / (Ndiags·M)
	ERELL        float64 `json:"er_ell"`        // NNZ / (max_RD·M)

	R float64 `json:"r"` // power-law exponent, RNone if not scale-free
}

// AttributeNames lists the feature vector components in Vector() order.
var AttributeNames = []string{
	"M", "N", "NNZ", "aver_RD", "max_RD", "var_RD",
	"Ndiags", "NTdiags_ratio", "ER_DIA", "ER_ELL", "R",
}

// Vector flattens the features in AttributeNames order for the learner.
func (f *Features) Vector() []float64 {
	return []float64{
		float64(f.M), float64(f.N), float64(f.NNZ),
		f.AverRD, f.MaxRD, f.VarRD,
		float64(f.Ndiags), f.NTdiagsRatio, f.ERDIA, f.ERELL,
		f.R,
	}
}

// String formats the record in the paper's Section 5.1 style, e.g.
// "{9801, 9801, 9, 1.0, 87025, 9, 0.35, 0.99, 0.99, inf}".
func (f *Features) String() string {
	r := fmt.Sprintf("%.2f", f.R)
	if f.R >= RNone {
		r = "inf"
	}
	return fmt.Sprintf("{M=%d N=%d NNZ=%d aver_RD=%.2f max_RD=%.0f var_RD=%.2f Ndiags=%d NTdiags_ratio=%.2f ER_DIA=%.3f ER_ELL=%.3f R=%s}",
		f.M, f.N, f.NNZ, f.AverRD, f.MaxRD, f.VarRD, f.Ndiags, f.NTdiagsRatio, f.ERDIA, f.ERELL, r)
}

// Key is a quantized fingerprint of a feature record, designed so that
// structurally similar matrices — the ones for which a prior tuning decision
// transfers — collapse onto the same value. Sizes (M, N, NNZ) and magnitude
// parameters are bucketed on a quarter-log2 scale (matrices within ~19% of
// each other share a bucket); the bounded structural ratios of Table 2 are
// quantized to 1/32 steps; the power-law exponent R to 1/4 steps with a
// sentinel for "not scale-free". Key is comparable and is the map key of the
// runtime decision cache.
type Key struct {
	M, N, NNZ             uint8
	AverRD, MaxRD, VarRD  uint8
	Ndiags                uint8
	NTdiags, ERDIA, ERELL uint8
	R                     int16
}

// qlog buckets a non-negative magnitude on a quarter-log2 scale.
func qlog(x float64) uint8 {
	if x <= 0 || math.IsNaN(x) {
		return 0
	}
	b := math.Round(4 * math.Log2(1+x))
	if b > 255 {
		return 255
	}
	return uint8(b)
}

// qratio quantizes a ratio in [0, 1] to 1/32 steps.
func qratio(x float64) uint8 {
	if x <= 0 || math.IsNaN(x) {
		return 0
	}
	if x >= 1 {
		return 32
	}
	return uint8(math.Round(32 * x))
}

// Key returns the quantized fingerprint of the record.
func (f *Features) Key() Key {
	k := Key{
		M:       qlog(float64(f.M)),
		N:       qlog(float64(f.N)),
		NNZ:     qlog(float64(f.NNZ)),
		AverRD:  qlog(f.AverRD),
		MaxRD:   qlog(f.MaxRD),
		VarRD:   qlog(f.VarRD),
		Ndiags:  qlog(float64(f.Ndiags)),
		NTdiags: qratio(f.NTdiagsRatio),
		ERDIA:   qratio(f.ERDIA),
		ERELL:   qratio(f.ERELL),
	}
	if f.R >= RNone {
		k.R = math.MaxInt16
	} else {
		r := math.Round(4 * f.R)
		switch {
		case r > 1<<14:
			k.R = 1 << 14
		case r < -(1 << 14):
			k.R = -(1 << 14)
		default:
			k.R = int16(r)
		}
	}
	return k
}

// Hash mixes the key into a 64-bit value (FNV-1a over the fields), used by
// the decision cache to pick a shard.
func (k Key) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range [...]uint64{
		uint64(k.M), uint64(k.N), uint64(k.NNZ),
		uint64(k.AverRD), uint64(k.MaxRD), uint64(k.VarRD),
		uint64(k.Ndiags), uint64(k.NTdiags), uint64(k.ERDIA), uint64(k.ERELL),
		uint64(uint16(k.R)),
	} {
		h ^= b
		h *= prime64
		h ^= b >> 8
		h *= prime64
	}
	return h
}

// Extract computes all feature parameters in two passes over the matrix, as
// the paper's runtime does: one combined pass for diagonal and row-degree
// statistics (DIA/ELL/CSR parameters) and one computation over the degree
// histogram for the power-law exponent (the COO parameter).
func Extract[T matrix.Float](m *matrix.CSR[T]) Features {
	f := Features{M: m.Rows, N: m.Cols, NNZ: m.NNZ()}
	if m.Rows == 0 {
		f.R = RNone
		return f
	}

	// Pass 1: diagonals and row degrees together. Diagonal occupancy is
	// counted in a flat array indexed by offset+(rows-1) when the matrix is
	// dense enough to plausibly touch a fair share of its Rows+Cols-1
	// diagonals: one increment per nonzero keeps feature extraction within a
	// few CSR-SpMV executions, which is what makes the paper's 2–5× decision
	// overhead achievable. Hypersparse matrices (NNZ far below the diagonal
	// count) would pay more for allocating and sweeping that array than for
	// the nonzeros themselves, so they tally into a map bounded by NNZ
	// entries instead.
	base := m.Rows - 1
	hypersparse := f.NNZ < (m.Rows+m.Cols)/8
	var diagFlat []int32
	var diagMap map[int]int32
	if hypersparse {
		diagMap = make(map[int]int32, f.NNZ)
	} else {
		diagFlat = make([]int32, m.Rows+m.Cols-1)
	}
	maxRD := 0
	degrees := make([]int, m.Rows)
	for r := 0; r < m.Rows; r++ {
		deg := m.RowPtr[r+1] - m.RowPtr[r]
		degrees[r] = deg
		if deg > maxRD {
			maxRD = deg
		}
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			if hypersparse {
				diagMap[m.ColIdx[jj]-r]++
			} else {
				diagFlat[m.ColIdx[jj]-r+base]++
			}
		}
	}
	f.MaxRD = float64(maxRD)
	f.AverRD = float64(f.NNZ) / float64(f.M)
	var acc float64
	for _, d := range degrees {
		diff := float64(d) - f.AverRD
		acc += diff * diff
	}
	f.VarRD = acc / float64(f.M)

	trueDiags := 0
	countDiag := func(off int, cnt int32) {
		f.Ndiags++
		if float64(cnt) >= TrueDiagOccupancy*float64(diagLength(m.Rows, m.Cols, off)) {
			trueDiags++
		}
	}
	if hypersparse {
		for off, cnt := range diagMap {
			countDiag(off, cnt)
		}
	} else {
		for idx, cnt := range diagFlat {
			if cnt != 0 {
				countDiag(idx-base, cnt)
			}
		}
	}
	if f.Ndiags > 0 {
		f.NTdiagsRatio = float64(trueDiags) / float64(f.Ndiags)
		f.ERDIA = float64(f.NNZ) / (float64(f.Ndiags) * float64(f.M))
	}
	if maxRD > 0 {
		f.ERELL = float64(f.NNZ) / (f.MaxRD * float64(f.M))
	}

	// Pass 2: power-law exponent from the degree histogram.
	f.R = PowerLawExponent(degrees)
	return f
}

// diagLength is the number of in-matrix positions on the diagonal with the
// given offset.
func diagLength(rows, cols, off int) int {
	iStart := 0
	if off < 0 {
		iStart = -off
	}
	jStart := 0
	if off > 0 {
		jStart = off
	}
	n := rows - iStart
	if c := cols - jStart; c < n {
		n = c
	}
	if n < 0 {
		return 0
	}
	return n
}
