// Package features extracts the sparse-structure feature parameters of the
// paper's Table 2 from a CSR matrix. These eleven parameters abstract the
// matrix structure for the learning model: basic shape (M, N, NNZ, aver_RD),
// diagonal situation (Ndiags, NTdiags_ratio), nonzero distribution (max_RD,
// var_RD), zero-fill ratios (ER_DIA, ER_ELL) and the power-law exponent R.
package features

import (
	"fmt"

	"smat/internal/matrix"
)

// RNone is the sentinel value of the power-law exponent R for matrices whose
// row-degree distribution is not scale-free (the paper prints "inf"). A large
// finite value keeps records JSON-serialisable while still falling outside
// every beneficial interval a rule can learn.
const RNone = 1e9

// TrueDiagOccupancy is the minimum fraction of a diagonal's in-matrix length
// that must be occupied by nonzeros for it to count as a "true diagonal"
// (Section 4: a diagonal "occupied mostly with non-zeros").
const TrueDiagOccupancy = 0.8

// Features holds the Table 2 parameter values for one matrix.
type Features struct {
	M   int `json:"m"`   // number of rows
	N   int `json:"n"`   // number of columns
	NNZ int `json:"nnz"` // number of nonzeros

	AverRD float64 `json:"aver_rd"` // NNZ / M
	MaxRD  float64 `json:"max_rd"`  // max nonzeros per row
	VarRD  float64 `json:"var_rd"`  // Σ|deg−aver|² / M

	Ndiags       int     `json:"ndiags"`        // occupied diagonals
	NTdiagsRatio float64 `json:"ntdiags_ratio"` // "true" diagonals / Ndiags
	ERDIA        float64 `json:"er_dia"`        // NNZ / (Ndiags·M)
	ERELL        float64 `json:"er_ell"`        // NNZ / (max_RD·M)

	R float64 `json:"r"` // power-law exponent, RNone if not scale-free
}

// AttributeNames lists the feature vector components in Vector() order.
var AttributeNames = []string{
	"M", "N", "NNZ", "aver_RD", "max_RD", "var_RD",
	"Ndiags", "NTdiags_ratio", "ER_DIA", "ER_ELL", "R",
}

// Vector flattens the features in AttributeNames order for the learner.
func (f *Features) Vector() []float64 {
	return []float64{
		float64(f.M), float64(f.N), float64(f.NNZ),
		f.AverRD, f.MaxRD, f.VarRD,
		float64(f.Ndiags), f.NTdiagsRatio, f.ERDIA, f.ERELL,
		f.R,
	}
}

// String formats the record in the paper's Section 5.1 style, e.g.
// "{9801, 9801, 9, 1.0, 87025, 9, 0.35, 0.99, 0.99, inf}".
func (f *Features) String() string {
	r := fmt.Sprintf("%.2f", f.R)
	if f.R >= RNone {
		r = "inf"
	}
	return fmt.Sprintf("{M=%d N=%d NNZ=%d aver_RD=%.2f max_RD=%.0f var_RD=%.2f Ndiags=%d NTdiags_ratio=%.2f ER_DIA=%.3f ER_ELL=%.3f R=%s}",
		f.M, f.N, f.NNZ, f.AverRD, f.MaxRD, f.VarRD, f.Ndiags, f.NTdiagsRatio, f.ERDIA, f.ERELL, r)
}

// Extract computes all feature parameters in two passes over the matrix, as
// the paper's runtime does: one combined pass for diagonal and row-degree
// statistics (DIA/ELL/CSR parameters) and one computation over the degree
// histogram for the power-law exponent (the COO parameter).
func Extract[T matrix.Float](m *matrix.CSR[T]) Features {
	f := Features{M: m.Rows, N: m.Cols, NNZ: m.NNZ()}
	if m.Rows == 0 {
		f.R = RNone
		return f
	}

	// Pass 1: diagonals and row degrees together. Diagonal occupancy is
	// counted in a flat array indexed by offset+(rows-1): one increment per
	// nonzero keeps feature extraction within a few CSR-SpMV executions,
	// which is what makes the paper's 2–5× decision overhead achievable.
	diagCount := make([]int32, m.Rows+m.Cols-1)
	base := m.Rows - 1
	maxRD := 0
	degrees := make([]int, m.Rows)
	for r := 0; r < m.Rows; r++ {
		deg := m.RowPtr[r+1] - m.RowPtr[r]
		degrees[r] = deg
		if deg > maxRD {
			maxRD = deg
		}
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			diagCount[m.ColIdx[jj]-r+base]++
		}
	}
	f.MaxRD = float64(maxRD)
	f.AverRD = float64(f.NNZ) / float64(f.M)
	var acc float64
	for _, d := range degrees {
		diff := float64(d) - f.AverRD
		acc += diff * diff
	}
	f.VarRD = acc / float64(f.M)

	trueDiags := 0
	for idx, cnt := range diagCount {
		if cnt == 0 {
			continue
		}
		f.Ndiags++
		if float64(cnt) >= TrueDiagOccupancy*float64(diagLength(m.Rows, m.Cols, idx-base)) {
			trueDiags++
		}
	}
	if f.Ndiags > 0 {
		f.NTdiagsRatio = float64(trueDiags) / float64(f.Ndiags)
		f.ERDIA = float64(f.NNZ) / (float64(f.Ndiags) * float64(f.M))
	}
	if maxRD > 0 {
		f.ERELL = float64(f.NNZ) / (f.MaxRD * float64(f.M))
	}

	// Pass 2: power-law exponent from the degree histogram.
	f.R = PowerLawExponent(degrees)
	return f
}

// diagLength is the number of in-matrix positions on the diagonal with the
// given offset.
func diagLength(rows, cols, off int) int {
	iStart := 0
	if off < 0 {
		iStart = -off
	}
	jStart := 0
	if off > 0 {
		jStart = off
	}
	n := rows - iStart
	if c := cols - jStart; c < n {
		n = c
	}
	if n < 0 {
		return 0
	}
	return n
}
