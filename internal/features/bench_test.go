package features

import (
	"math/rand"
	"testing"

	"smat/internal/matrix"
)

// BenchmarkExtract measures feature extraction, the dominant component of
// SMAT's predicted-path decision overhead (Table 3).
func BenchmarkExtract(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var ts []matrix.Triple[float64]
	n := 20000
	for r := 0; r < n; r++ {
		for d := 0; d < 8; d++ {
			ts = append(ts, matrix.Triple[float64]{Row: r, Col: rng.Intn(n), Val: 1})
		}
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Extract(m)
	}
}

func BenchmarkPowerLawExponent(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	degrees := make([]int, 100000)
	for i := range degrees {
		degrees[i] = 1 + rng.Intn(200)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PowerLawExponent(degrees)
	}
}
