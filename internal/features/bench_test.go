package features

import (
	"math/rand"
	"testing"

	"smat/internal/matrix"
)

// BenchmarkExtract measures feature extraction, the dominant component of
// SMAT's predicted-path decision overhead (Table 3).
func BenchmarkExtract(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var ts []matrix.Triple[float64]
	n := 20000
	for r := 0; r < n; r++ {
		for d := 0; d < 8; d++ {
			ts = append(ts, matrix.Triple[float64]{Row: r, Col: rng.Intn(n), Val: 1})
		}
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Extract(m)
	}
}

// BenchmarkExtractDense guards the flat-array diagonal tally: matrices with
// plenty of nonzeros per diagonal slot must keep taking the O(Rows+Cols)
// array path, whose per-nonzero increment is a single indexed add. A
// regression routing these through the map tally shows up as a large
// slowdown here.
func BenchmarkExtractDense(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	var ts []matrix.Triple[float64]
	for r := 0; r < n; r++ {
		for d := 0; d < 8; d++ {
			ts = append(ts, matrix.Triple[float64]{Row: r, Col: rng.Intn(n), Val: 1})
		}
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		b.Fatal(err)
	}
	if m.NNZ() < (m.Rows+m.Cols)/8 {
		b.Fatal("benchmark matrix unexpectedly hypersparse")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Extract(m)
	}
}

// BenchmarkExtractHypersparse measures the map-based tally on a matrix whose
// diagonal slot count dwarfs its nonzeros — the case the flat array used to
// dominate with its allocation and zero-sweep.
func BenchmarkExtractHypersparse(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	n := 2000000
	var ts []matrix.Triple[float64]
	for i := 0; i < 5000; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: rng.Intn(n), Col: rng.Intn(n), Val: 1})
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		b.Fatal(err)
	}
	if m.NNZ() >= (m.Rows+m.Cols)/8 {
		b.Fatal("benchmark matrix not hypersparse")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Extract(m)
	}
}

func BenchmarkPowerLawExponent(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	degrees := make([]int, 100000)
	for i := range degrees {
		degrees[i] = 1 + rng.Intn(200)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PowerLawExponent(degrees)
	}
}
