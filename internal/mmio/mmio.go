// Package mmio reads and writes Matrix Market exchange files (.mtx) in
// coordinate form, so external matrices — including the UF collection the
// paper trains on, when available — can be fed to the tuner.
//
// Supported: object "matrix", format "coordinate", fields real / integer /
// pattern, symmetries general / symmetric / skew-symmetric. Complex matrices
// are rejected (the paper excludes them too).
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"smat/internal/matrix"
)

// MaxDim is the largest row or column count Read accepts from a size line.
// The CSR row pointer alone costs 8·rows bytes, so an attacker-controlled
// header would otherwise turn one short stream into an arbitrarily large
// allocation; 2^27 (~134M, a 1GiB row pointer) is past every matrix in the
// UF collection while keeping the worst case bounded.
const MaxDim = 1 << 27

// maxNNZPrealloc caps how much the declared nonzero count is trusted as a
// pre-allocation hint (~24MiB of triples); beyond it the slice grows against
// the actual input.
const maxNNZPrealloc = 1 << 20

// Read parses a Matrix Market coordinate stream into CSR. Size-line values
// are treated as untrusted: dimensions above MaxDim are rejected and the
// declared nonzero count never drives more than a bounded pre-allocation.
func Read(r io.Reader) (*matrix.CSR[float64], error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) != 5 || header[0] != "%%matrixmarket" {
		return nil, fmt.Errorf("mmio: bad header %q", sc.Text())
	}
	object, format, field, symmetry := header[1], header[2], header[3], header[4]
	if object != "matrix" {
		return nil, fmt.Errorf("mmio: unsupported object %q", object)
	}
	if format != "coordinate" {
		return nil, fmt.Errorf("mmio: unsupported format %q (only coordinate)", format)
	}
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("mmio: unsupported field %q", field)
	}
	switch symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("mmio: unsupported symmetry %q", symmetry)
	}

	// Size line (skipping comments).
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("mmio: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("mmio: bad size line %q: %w", line, err)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("mmio: negative sizes %d %d %d", rows, cols, nnz)
	}
	if rows > MaxDim || cols > MaxDim {
		return nil, fmt.Errorf("mmio: dimensions %dx%d exceed the %d limit", rows, cols, MaxDim)
	}

	// The size line is untrusted input: a crafted header like
	// "1 1 9000000000000" must not drive a multi-terabyte pre-allocation.
	// The declared nnz is only a capacity hint, clamped so memory grows with
	// the entries actually present in the stream.
	capHint := nnz
	if capHint > maxNNZPrealloc {
		capHint = maxNNZPrealloc
	}
	ts := make([]matrix.Triple[float64], 0, capHint)
	read := 0
	for read < nnz {
		if !sc.Scan() {
			return nil, fmt.Errorf("mmio: expected %d entries, got %d", nnz, read)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("mmio: entry %d malformed: %q", read, line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d row: %w", read, err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("mmio: entry %d col: %w", read, err)
		}
		v := 1.0
		if field != "pattern" {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("mmio: entry %d value: %w", read, err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("mmio: entry %d (%d,%d) outside %dx%d", read, i, j, rows, cols)
		}
		ts = append(ts, matrix.Triple[float64]{Row: i - 1, Col: j - 1, Val: v})
		if i != j {
			switch symmetry {
			case "symmetric":
				ts = append(ts, matrix.Triple[float64]{Row: j - 1, Col: i - 1, Val: v})
			case "skew-symmetric":
				ts = append(ts, matrix.Triple[float64]{Row: j - 1, Col: i - 1, Val: -v})
			}
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mmio: %w", err)
	}
	return matrix.FromTriples(rows, cols, ts)
}

// Write emits the matrix in Matrix Market coordinate real general form.
func Write(w io.Writer, m *matrix.CSR[float64]) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate real general"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, m.NNZ()); err != nil {
		return err
	}
	for r := 0; r < m.Rows; r++ {
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", r+1, m.ColIdx[jj]+1, m.Vals[jj]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
