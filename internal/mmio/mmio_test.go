package mmio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"smat/internal/matrix"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var ts []matrix.Triple[float64]
	for r := 0; r < 30; r++ {
		for c := 0; c < 20; c++ {
			if rng.Float64() < 0.2 {
				ts = append(ts, matrix.Triple[float64]{Row: r, Col: c, Val: rng.NormFloat64()})
			}
		}
	}
	m, err := matrix.FromTriples(30, 20, ts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Error("round trip changed matrix")
	}
}

func TestReadGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 4 3
1 1 2.5
2 3 -1
3 4 7
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 4 || m.NNZ() != 3 {
		t.Fatalf("shape %dx%d nnz %d", m.Rows, m.Cols, m.NNZ())
	}
	if m.At(0, 0) != 2.5 || m.At(1, 2) != -1 || m.At(2, 3) != 7 {
		t.Error("wrong values")
	}
}

func TestReadSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 1
2 1 5
3 2 6
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 5 {
		t.Fatalf("nnz = %d, want 5 (mirrored off-diagonals)", m.NNZ())
	}
	if m.At(0, 1) != 5 || m.At(1, 0) != 5 {
		t.Error("symmetric mirror missing")
	}
	if m.At(1, 2) != 6 || m.At(2, 1) != 6 {
		t.Error("symmetric mirror missing")
	}
}

func TestReadSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 || m.At(0, 1) != -3 {
		t.Errorf("skew mirror wrong: %g / %g", m.At(1, 0), m.At(0, 1))
	}
}

func TestReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 1 || m.At(1, 0) != 1 {
		t.Error("pattern entries should be 1")
	}
}

func TestReadInteger(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate integer general
2 2 1
1 1 42
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 42 {
		t.Error("integer value wrong")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "%%NotMatrixMarket x y z w\n1 1 1\n1 1 1\n",
		"complex":         "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"array format":    "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"bad symmetry":    "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"missing size":    "%%MatrixMarket matrix coordinate real general\n",
		"truncated":       "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1\n",
		"out of range":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"zero index":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
		"malformed entry": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\n",
		"bad value":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 xyz\n",
		"bad size line":   "%%MatrixMarket matrix coordinate real general\nfoo bar baz\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReadHugeNNZHeader is the regression test for the unbounded
// pre-allocation: a crafted size line declaring ~9e12 nonzeros used to drive
// make([]Triple, 0, nnz) — a multi-terabyte allocation — before a single
// entry was parsed. The declared count is now only a clamped capacity hint,
// so the parse fails fast on the missing entries instead of dying in make.
func TestReadHugeNNZHeader(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n1 1 9000000000000\n1 1 3.5\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("header declaring 9e12 nonzeros was accepted")
	}
}

func TestReadHugeDimsRejected(t *testing.T) {
	cases := map[string]string{
		"huge rows": "%%MatrixMarket matrix coordinate real general\n99999999999999 1 0\n",
		"huge cols": "%%MatrixMarket matrix coordinate real general\n1 99999999999999 0\n",
		"just over": "%%MatrixMarket matrix coordinate real general\n134217729 1 0\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReadOverdeclaredNNZStillParsesEntries checks the clamp changes only the
// capacity hint, not semantics: a stream with more real entries than the
// prealloc cap would still parse (exercised here at small scale by a count
// above the declared entries present).
func TestReadOverdeclaredNNZStillParsesEntries(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n2 2 -2\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1.5 || m.At(1, 1) != -2 {
		t.Error("values wrong after clamped-prealloc parse")
	}
}

func TestReadSkipsBlankAndCommentLines(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n% c1\n\n% c2\n2 2 2\n\n1 1 1\n% mid comment\n2 2 2\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 2 {
		t.Errorf("nnz = %d, want 2", m.NNZ())
	}
}
