package mmio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzMMIORead checks that arbitrary input never panics the parser, never
// drives an unbounded allocation from attacker-controlled size lines, and
// that anything it accepts is a valid matrix that survives a write/read
// round trip.
func FuzzMMIORead(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 1\n3 1 -2\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 1\n")
	f.Add("%%MatrixMarket matrix coordinate integer skew-symmetric\n2 2 1\n2 1 7\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n% c\n\n1 1 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n999999 1 0\n")
	// Regression seeds: crafted size lines that used to pre-allocate from the
	// declared nnz (multi-terabyte make) or feed huge dims to FromTriples.
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 9000000000000\n1 1 2.0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n99999999999999 1 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 99999999999999 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
		if m.Rows > 1<<20 || m.Cols > 1<<20 {
			return // skip round trip on absurd dimensions
		}
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			t.Fatalf("write of accepted matrix failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip read failed: %v", err)
		}
		if !m.Equal(back) {
			t.Fatal("round trip changed matrix")
		}
	})
}
