// Package gen builds synthetic sparse matrices whose structural features
// sweep the same axes as the paper's UF-collection training set: diagonal
// stencils (DIA territory), regular constant-degree matrices (ELL),
// power-law graphs (COO), and irregular general matrices (CSR). The corpus
// package composes these generators into the full training/evaluation
// collection.
package gen

import (
	"math/rand"

	"smat/internal/matrix"
)

// value returns a random nonzero value in [0.5, 1.5); positive values avoid
// accidental cancellation when random generators emit duplicate coordinates.
func value[T matrix.Float](rng *rand.Rand) T {
	return T(0.5 + rng.Float64())
}

// Laplacian2D5pt returns the 5-point finite-difference Laplacian on an
// nx×ny grid: the classic DIA-friendly stencil matrix.
func Laplacian2D5pt[T matrix.Float](nx, ny int) *matrix.CSR[T] {
	return stencil2D[T](nx, ny, [][2]int{
		{0, -1}, {-1, 0}, {0, 0}, {1, 0}, {0, 1},
	}, func(di, dj int) T {
		if di == 0 && dj == 0 {
			return 4
		}
		return -1
	})
}

// Laplacian2D9pt returns the 9-point Laplacian on an nx×ny grid (the paper's
// "rugeL 9pt" AMG input).
func Laplacian2D9pt[T matrix.Float](nx, ny int) *matrix.CSR[T] {
	offsets := [][2]int{
		{-1, -1}, {0, -1}, {1, -1},
		{-1, 0}, {0, 0}, {1, 0},
		{-1, 1}, {0, 1}, {1, 1},
	}
	return stencil2D[T](nx, ny, offsets, func(di, dj int) T {
		if di == 0 && dj == 0 {
			return 8
		}
		return -1
	})
}

// stencil2D assembles a 2D stencil matrix with natural (row-major) grid
// ordering directly in sorted CSR order.
func stencil2D[T matrix.Float](nx, ny int, offsets [][2]int, coeff func(di, dj int) T) *matrix.CSR[T] {
	n := nx * ny
	m := &matrix.CSR[T]{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			row := j*nx + i
			for _, off := range offsets {
				ni, nj := i+off[0], j+off[1]
				if ni < 0 || ni >= nx || nj < 0 || nj >= ny {
					continue
				}
				m.ColIdx = append(m.ColIdx, nj*nx+ni)
				m.Vals = append(m.Vals, coeff(off[0], off[1]))
			}
			m.RowPtr[row+1] = len(m.Vals)
		}
	}
	return m
}

// Laplacian3D7pt returns the 7-point Laplacian on an nx×ny×nz grid (the
// paper's "cljp 7pt" AMG input).
func Laplacian3D7pt[T matrix.Float](nx, ny, nz int) *matrix.CSR[T] {
	n := nx * ny * nz
	m := &matrix.CSR[T]{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	offsets := [][3]int{
		{0, 0, -1}, {0, -1, 0}, {-1, 0, 0}, {0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1},
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				row := (k*ny+j)*nx + i
				for _, off := range offsets {
					ni, nj, nk := i+off[0], j+off[1], k+off[2]
					if ni < 0 || ni >= nx || nj < 0 || nj >= ny || nk < 0 || nk >= nz {
						continue
					}
					var v T = -1
					if off == ([3]int{0, 0, 0}) {
						v = 6
					}
					m.ColIdx = append(m.ColIdx, (nk*ny+nj)*nx+ni)
					m.Vals = append(m.Vals, v)
				}
				m.RowPtr[row+1] = len(m.Vals)
			}
		}
	}
	return m
}

// MultiDiagonal returns an n×n matrix with fully dense diagonals at the
// given offsets: the ideal DIA matrix (NTdiags_ratio = 1).
func MultiDiagonal[T matrix.Float](n int, offsets []int, rng *rand.Rand) *matrix.CSR[T] {
	var ts []matrix.Triple[T]
	for _, off := range offsets {
		for r := 0; r < n; r++ {
			c := r + off
			if c >= 0 && c < n {
				ts = append(ts, matrix.Triple[T]{Row: r, Col: c, Val: value[T](rng)})
			}
		}
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

// SparseDiagonal returns an n×n matrix with diagonals at the given offsets
// where each diagonal position is occupied only with probability fill: a
// DIA-shaped matrix with controllable zero padding (sweeps NTdiags_ratio and
// ER_DIA).
func SparseDiagonal[T matrix.Float](n int, offsets []int, fill float64, rng *rand.Rand) *matrix.CSR[T] {
	var ts []matrix.Triple[T]
	for _, off := range offsets {
		for r := 0; r < n; r++ {
			c := r + off
			if c >= 0 && c < n && rng.Float64() < fill {
				ts = append(ts, matrix.Triple[T]{Row: r, Col: c, Val: value[T](rng)})
			}
		}
	}
	// Guarantee a nonempty matrix.
	ts = append(ts, matrix.Triple[T]{Row: 0, Col: 0, Val: 1})
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

// ConstantDegree returns an n×n matrix with exactly deg random distinct
// columns per row: the ideal ELL matrix (ER_ELL = 1, var_RD = 0) with no
// diagonal structure.
func ConstantDegree[T matrix.Float](n, deg int, rng *rand.Rand) *matrix.CSR[T] {
	if deg > n {
		deg = n
	}
	m := &matrix.CSR[T]{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	cols := make([]int, 0, deg)
	seen := make(map[int]bool, deg)
	for r := 0; r < n; r++ {
		cols = cols[:0]
		clear(seen)
		for len(cols) < deg {
			c := rng.Intn(n)
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
		insertionSort(cols)
		for _, c := range cols {
			m.ColIdx = append(m.ColIdx, c)
			m.Vals = append(m.Vals, value[T](rng))
		}
		m.RowPtr[r+1] = len(m.Vals)
	}
	return m
}

// NearConstantDegree is ConstantDegree with per-row degree jitter of ±jitter
// (sweeps var_RD and ER_ELL just below the ideal).
func NearConstantDegree[T matrix.Float](n, deg, jitter int, rng *rand.Rand) *matrix.CSR[T] {
	m := &matrix.CSR[T]{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	cols := make([]int, 0, deg+jitter)
	seen := make(map[int]bool)
	for r := 0; r < n; r++ {
		d := deg
		if jitter > 0 {
			d += rng.Intn(2*jitter+1) - jitter
		}
		if d < 1 {
			d = 1
		}
		if d > n {
			d = n
		}
		cols = cols[:0]
		clear(seen)
		for len(cols) < d {
			c := rng.Intn(n)
			if !seen[c] {
				seen[c] = true
				cols = append(cols, c)
			}
		}
		insertionSort(cols)
		for _, c := range cols {
			m.ColIdx = append(m.ColIdx, c)
			m.Vals = append(m.Vals, value[T](rng))
		}
		m.RowPtr[r+1] = len(m.Vals)
	}
	return m
}

// RandomUniform returns a rows×cols matrix where every position is occupied
// independently with the probability that yields ≈nnzPerRow nonzeros per row
// on average: an irregular, unstructured (CSR-leaning) matrix.
func RandomUniform[T matrix.Float](rows, cols int, nnzPerRow float64, rng *rand.Rand) *matrix.CSR[T] {
	m := &matrix.CSR[T]{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for r := 0; r < rows; r++ {
		// Draw the row degree from a geometric-ish mixture for irregularity.
		d := int(nnzPerRow * (0.25 + 1.5*rng.Float64()))
		if rng.Float64() < 0.05 {
			d *= 4 // occasional heavy row
		}
		if d < 1 {
			d = 1
		}
		if d > cols {
			d = cols
		}
		cols2 := sampleDistinct(cols, d, rng)
		for _, c := range cols2 {
			m.ColIdx = append(m.ColIdx, c)
			m.Vals = append(m.Vals, value[T](rng))
		}
		m.RowPtr[r+1] = len(m.Vals)
	}
	return m
}

// BlockDiagonal returns a matrix of nBlocks dense blockSize×blockSize blocks
// along the diagonal (circuit/chemistry-like local coupling).
func BlockDiagonal[T matrix.Float](nBlocks, blockSize int, rng *rand.Rand) *matrix.CSR[T] {
	n := nBlocks * blockSize
	m := &matrix.CSR[T]{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	for b := 0; b < nBlocks; b++ {
		base := b * blockSize
		for i := 0; i < blockSize; i++ {
			for j := 0; j < blockSize; j++ {
				m.ColIdx = append(m.ColIdx, base+j)
				m.Vals = append(m.Vals, value[T](rng))
			}
			m.RowPtr[base+i+1] = len(m.Vals)
		}
	}
	return m
}

// insertionSort sorts a small int slice in place.
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// sampleDistinct draws k distinct values from [0, n) and returns them sorted.
func sampleDistinct(n, k int, rng *rand.Rand) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		c := rng.Intn(n)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	insertionSort(out)
	return out
}
