package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smat/internal/features"
	"smat/internal/matrix"
)

func validate(t *testing.T, m *matrix.CSR[float64]) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("generator produced invalid matrix: %v", err)
	}
}

// isSymmetric allows ULP-level asymmetry: generators that emit duplicate
// symmetric edges may accumulate (u,v) and (v,u) in different orders.
func isSymmetric(m *matrix.CSR[float64]) bool {
	return m.ApproxEqual(m.Transpose(), 1e-12)
}

func TestLaplacian2D5pt(t *testing.T) {
	m := Laplacian2D5pt[float64](7, 5)
	validate(t, m)
	if m.Rows != 35 || m.Cols != 35 {
		t.Fatalf("dims = %dx%d, want 35x35", m.Rows, m.Cols)
	}
	if !isSymmetric(m) {
		t.Error("5-point Laplacian not symmetric")
	}
	// Interior row: 4 on the diagonal, four -1 neighbours, zero row sum.
	r := 2*7 + 3 // grid point (3,2), interior
	if m.At(r, r) != 4 {
		t.Errorf("diagonal = %g, want 4", m.At(r, r))
	}
	sum := 0.0
	for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
		sum += m.Vals[jj]
	}
	if sum != 0 {
		t.Errorf("interior row sum = %g, want 0", sum)
	}
	if m.RowDegree(r) != 5 {
		t.Errorf("interior row degree = %d, want 5", m.RowDegree(r))
	}
	// The 5-point stencil occupies 5 diagonals.
	f := features.Extract(m)
	if f.Ndiags != 5 {
		t.Errorf("Ndiags = %d, want 5", f.Ndiags)
	}
}

func TestLaplacian2D9pt(t *testing.T) {
	m := Laplacian2D9pt[float64](6, 6)
	validate(t, m)
	if !isSymmetric(m) {
		t.Error("9-point Laplacian not symmetric")
	}
	r := 2*6 + 2
	if m.RowDegree(r) != 9 {
		t.Errorf("interior row degree = %d, want 9", m.RowDegree(r))
	}
	if m.At(r, r) != 8 {
		t.Errorf("diagonal = %g, want 8", m.At(r, r))
	}
	f := features.Extract(m)
	if f.Ndiags != 9 {
		t.Errorf("Ndiags = %d, want 9", f.Ndiags)
	}
}

func TestLaplacian3D7pt(t *testing.T) {
	m := Laplacian3D7pt[float64](4, 5, 3)
	validate(t, m)
	if m.Rows != 60 {
		t.Fatalf("rows = %d, want 60", m.Rows)
	}
	if !isSymmetric(m) {
		t.Error("7-point Laplacian not symmetric")
	}
	r := (1*5+2)*4 + 2 // interior point
	if m.RowDegree(r) != 7 {
		t.Errorf("interior row degree = %d, want 7", m.RowDegree(r))
	}
	if m.At(r, r) != 6 {
		t.Errorf("diagonal = %g, want 6", m.At(r, r))
	}
}

func TestMultiDiagonalIsPerfectDIA(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := MultiDiagonal[float64](200, []int{-5, 0, 5}, rng)
	validate(t, m)
	f := features.Extract(m)
	if f.Ndiags != 3 {
		t.Errorf("Ndiags = %d, want 3", f.Ndiags)
	}
	if f.NTdiagsRatio != 1.0 {
		t.Errorf("NTdiags_ratio = %g, want 1", f.NTdiagsRatio)
	}
}

func TestSparseDiagonalSweepsFill(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lo := SparseDiagonal[float64](300, []int{-1, 0, 1}, 0.2, rng)
	hi := SparseDiagonal[float64](300, []int{-1, 0, 1}, 0.95, rng)
	validate(t, lo)
	validate(t, hi)
	fl, fh := features.Extract(lo), features.Extract(hi)
	if fl.ERDIA >= fh.ERDIA {
		t.Errorf("ER_DIA did not increase with fill: %g vs %g", fl.ERDIA, fh.ERDIA)
	}
	if fh.NTdiagsRatio < 0.9 {
		t.Errorf("high-fill NTdiags_ratio = %g, want ≥0.9", fh.NTdiagsRatio)
	}
}

func TestConstantDegreeIsPerfectELL(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := ConstantDegree[float64](500, 8, rng)
	validate(t, m)
	f := features.Extract(m)
	if f.VarRD != 0 {
		t.Errorf("var_RD = %g, want 0", f.VarRD)
	}
	if f.ERELL != 1 {
		t.Errorf("ER_ELL = %g, want 1", f.ERELL)
	}
	if f.MaxRD != 8 {
		t.Errorf("max_RD = %g, want 8", f.MaxRD)
	}
}

func TestNearConstantDegreeJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NearConstantDegree[float64](400, 10, 3, rng)
	validate(t, m)
	for r := 0; r < m.Rows; r++ {
		d := m.RowDegree(r)
		if d < 7 || d > 13 {
			t.Fatalf("row %d degree %d outside [7,13]", r, d)
		}
	}
	f := features.Extract(m)
	if f.VarRD == 0 {
		t.Error("jittered matrix has zero row-degree variance")
	}
}

func TestRandomUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := RandomUniform[float64](300, 200, 6, rng)
	validate(t, m)
	if m.Rows != 300 || m.Cols != 200 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	aver := float64(m.NNZ()) / 300
	if aver < 2 || aver > 14 {
		t.Errorf("average degree %g far from requested 6", aver)
	}
}

func TestBlockDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := BlockDiagonal[float64](10, 7, rng)
	validate(t, m)
	if m.Rows != 70 || m.NNZ() != 10*7*7 {
		t.Fatalf("rows=%d nnz=%d", m.Rows, m.NNZ())
	}
	// Entry outside any block must be zero.
	if m.At(0, 7) != 0 {
		t.Error("nonzero outside block")
	}
	if m.At(8, 7) == 0 {
		t.Error("zero inside block")
	}
}

func TestPreferentialAttachmentPowerLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := PreferentialAttachment[float64](4000, 3, rng)
	validate(t, m)
	if !isSymmetric(m) {
		t.Error("BA adjacency not symmetric")
	}
	f := features.Extract(m)
	if f.R == features.RNone {
		t.Fatal("BA graph not detected as scale-free")
	}
	if f.R < 1 || f.R > 4.5 {
		t.Errorf("BA exponent R = %g, want within (1, 4.5)", f.R)
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := RMAT[float64](12, 8, rng)
	validate(t, m)
	if m.Rows != 4096 {
		t.Fatalf("rows = %d, want 4096", m.Rows)
	}
	f := features.Extract(m)
	if f.MaxRD < 4*f.AverRD {
		t.Errorf("RMAT degrees not skewed: max %g, aver %g", f.MaxRD, f.AverRD)
	}
}

func TestRoadNetworkLowDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := RoadNetwork[float64](3000, rng)
	validate(t, m)
	if !isSymmetric(m) {
		t.Error("road network not symmetric")
	}
	f := features.Extract(m)
	if f.AverRD > 8 {
		t.Errorf("road network aver_RD = %g, want small", f.AverRD)
	}
}

func TestBipartiteIncidence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := BipartiteIncidence[float64](500, 90, 4, rng)
	validate(t, m)
	if m.Rows != 500 || m.Cols != 90 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	for r := 0; r < m.Rows; r++ {
		if m.RowDegree(r) != 4 {
			t.Fatalf("row %d degree = %d, want 4", r, m.RowDegree(r))
		}
	}
}

func TestSampleDistinctProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		k := rng.Intn(n + 20) // may exceed n
		s := sampleDistinct(n, k, rng)
		wantLen := k
		if wantLen > n {
			wantLen = n
		}
		if len(s) != wantLen {
			return false
		}
		for i := range s {
			if s[i] < 0 || s[i] >= n {
				return false
			}
			if i > 0 && s[i] <= s[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsDeterministicPerSeed(t *testing.T) {
	a := RandomUniform[float64](100, 100, 5, rand.New(rand.NewSource(99)))
	b := RandomUniform[float64](100, 100, 5, rand.New(rand.NewSource(99)))
	if !a.Equal(b) {
		t.Error("same seed produced different matrices")
	}
}

func TestKroneckerGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := KroneckerGraph[float64](3, 4, rng)
	validate(t, g)
	if g.Rows != 81 {
		t.Fatalf("rows = %d, want 3^4 = 81", g.Rows)
	}
	f := features.Extract(g)
	if f.MaxRD < 2*f.AverRD {
		t.Errorf("Kronecker degrees not skewed: max %g aver %g", f.MaxRD, f.AverRD)
	}
	// Deterministic per seed.
	g2 := KroneckerGraph[float64](3, 4, rand.New(rand.NewSource(11)))
	if !g.Equal(g2) {
		t.Error("not deterministic")
	}
}
