package gen

import (
	"math/rand"

	"smat/internal/matrix"
)

// PreferentialAttachment returns the adjacency matrix of an undirected
// Barabási–Albert graph on n nodes where each arriving node attaches
// edgesPerNode edges to existing nodes with probability proportional to
// their degree. The resulting degree distribution is power-law (exponent ≈3),
// the small-world structure the paper associates with COO affinity.
func PreferentialAttachment[T matrix.Float](n, edgesPerNode int, rng *rand.Rand) *matrix.CSR[T] {
	if edgesPerNode < 1 {
		edgesPerNode = 1
	}
	type edge struct{ a, b int }
	var edges []edge
	// repeated holds one entry per half-edge: sampling an index uniformly
	// samples a node with probability proportional to its degree.
	var repeated []int
	seed := edgesPerNode + 1
	if seed > n {
		seed = n
	}
	// Seed clique.
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			edges = append(edges, edge{i, j})
			repeated = append(repeated, i, j)
		}
	}
	for v := seed; v < n; v++ {
		attached := map[int]bool{}
		for len(attached) < edgesPerNode {
			var u int
			if len(repeated) == 0 {
				u = rng.Intn(v)
			} else {
				u = repeated[rng.Intn(len(repeated))]
			}
			if u == v || attached[u] {
				continue
			}
			attached[u] = true
			edges = append(edges, edge{v, u})
			repeated = append(repeated, v, u)
		}
	}
	var ts []matrix.Triple[T]
	for _, e := range edges {
		v := value[T](rng)
		ts = append(ts, matrix.Triple[T]{Row: e.a, Col: e.b, Val: v})
		ts = append(ts, matrix.Triple[T]{Row: e.b, Col: e.a, Val: v})
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

// RMAT returns the adjacency matrix of a recursive-matrix (R-MAT) graph with
// 2^scale nodes and ≈edgeFactor·2^scale directed edges using the standard
// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) quadrant probabilities. R-MAT
// graphs have skewed, power-law-like degree distributions (web/social
// graphs).
func RMAT[T matrix.Float](scale, edgeFactor int, rng *rand.Rand) *matrix.CSR[T] {
	n := 1 << scale
	nEdges := edgeFactor * n
	const a, b, c = 0.57, 0.19, 0.19
	var ts []matrix.Triple[T]
	for e := 0; e < nEdges; e++ {
		row, col := 0, 0
		for bit := n >> 1; bit >= 1; bit >>= 1 {
			p := rng.Float64()
			switch {
			case p < a:
				// top-left: nothing to add
			case p < a+b:
				col += bit
			case p < a+b+c:
				row += bit
			default:
				row += bit
				col += bit
			}
		}
		ts = append(ts, matrix.Triple[T]{Row: row, Col: col, Val: value[T](rng)})
	}
	// Guarantee no empty matrix even for tiny scales.
	ts = append(ts, matrix.Triple[T]{Row: 0, Col: 0, Val: 1})
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

// RoadNetwork returns the adjacency matrix of a degree-bounded random planar-
// ish graph: nodes connect to a handful of near neighbours by index, the
// structure of road networks (very low, nearly uniform degree, huge
// diameter) such as the paper's roadNet-CA and europe_osm representatives.
func RoadNetwork[T matrix.Float](n int, rng *rand.Rand) *matrix.CSR[T] {
	var ts []matrix.Triple[T]
	for v := 0; v < n; v++ {
		deg := 1 + rng.Intn(3)
		for d := 0; d < deg; d++ {
			// Neighbours are close in index, as in a geometric embedding.
			off := 1 + rng.Intn(8)
			u := v + off
			if u >= n {
				u = v - off
			}
			if u < 0 || u == v {
				continue
			}
			val := value[T](rng)
			ts = append(ts, matrix.Triple[T]{Row: v, Col: u, Val: val})
			ts = append(ts, matrix.Triple[T]{Row: u, Col: v, Val: val})
		}
	}
	ts = append(ts, matrix.Triple[T]{Row: 0, Col: 0, Val: 1})
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

// BipartiteIncidence returns a rows×cols incidence-like matrix with a fixed
// small number of entries per row at random columns (the paper's
// combinatorial matrices such as ch7-9-b3 and shar_te2-b2 are of this kind:
// rectangular, constant row degree).
func BipartiteIncidence[T matrix.Float](rows, cols, deg int, rng *rand.Rand) *matrix.CSR[T] {
	m := &matrix.CSR[T]{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for r := 0; r < rows; r++ {
		for _, c := range sampleDistinct(cols, deg, rng) {
			m.ColIdx = append(m.ColIdx, c)
			m.Vals = append(m.Vals, value[T](rng))
		}
		m.RowPtr[r+1] = len(m.Vals)
	}
	return m
}

// KroneckerGraph returns the power-th Kronecker power of a random small
// initiator adjacency matrix: a deterministic self-similar graph in the
// Graph500 style, with heavily skewed degrees (another occupant of the
// paper's COO territory).
func KroneckerGraph[T matrix.Float](initiatorSize, power int, rng *rand.Rand) *matrix.CSR[T] {
	var ts []matrix.Triple[T]
	for r := 0; r < initiatorSize; r++ {
		for c := 0; c < initiatorSize; c++ {
			// Dense-ish initiator with self-loops keeps the product connected.
			if r == c || rng.Float64() < 0.5 {
				ts = append(ts, matrix.Triple[T]{Row: r, Col: c, Val: value[T](rng)})
			}
		}
	}
	g, err := matrix.FromTriples(initiatorSize, initiatorSize, ts)
	if err != nil {
		panic(err)
	}
	out := g
	for p := 1; p < power; p++ {
		out = matrix.Kron(out, g)
	}
	return out
}
