package bench

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"smat"
	"smat/internal/autotune"
	"smat/internal/matrix"
)

// fastCfg returns a config small enough for unit testing every experiment.
func fastCfg(out *bytes.Buffer) Config {
	return Config{
		Scale:   0.02,
		Threads: 2,
		Model:   smat.HeuristicModel(),
		Measure: autotune.MeasureOptions{MinTime: 50 * time.Microsecond, Trials: 1},
		Stride:  101,
		Seed:    3,
		Out:     out,
	}
}

func TestTable1(t *testing.T) {
	var out bytes.Buffer
	res := Table1(fastCfg(&out))
	if res.N == 0 {
		t.Fatal("no matrices labeled")
	}
	sum := 0
	for _, n := range res.Totals {
		sum += n
	}
	if sum != res.N {
		t.Errorf("totals sum %d != N %d", sum, res.N)
	}
	pct := 0.0
	for _, p := range res.Percent {
		pct += p
	}
	if math.Abs(pct-100) > 0.5 {
		t.Errorf("percentages sum to %g", pct)
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Error("missing printed header")
	}
}

func TestFigure3(t *testing.T) {
	var out bytes.Buffer
	res := Figure3(fastCfg(&out))
	if len(res.Rows) != 16 {
		t.Fatalf("%d rows, want 16 representatives", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.GFLOPS) == 0 {
			t.Errorf("%s: no formats measured", row.Name)
		}
		if g, ok := row.GFLOPS[matrix.FormatCSR]; !ok || g <= 0 {
			t.Errorf("%s: CSR GFLOPS %g", row.Name, g)
		}
	}
	if res.MaxGap < 1 {
		t.Errorf("max gap %g < 1", res.MaxGap)
	}
}

func TestFigure9(t *testing.T) {
	var out bytes.Buffer
	res := Figure9(fastCfg(&out))
	if len(res.Rows) != 16 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SPA <= 0 || row.DPA <= 0 || row.SPB <= 0 || row.DPB <= 0 {
			t.Errorf("%s: non-positive GFLOPS %+v", row.Name, row)
		}
	}
	if res.PeakDPA <= 0 {
		t.Error("no peak recorded")
	}
}

func TestFigure10(t *testing.T) {
	var out bytes.Buffer
	cfg := fastCfg(&out)
	cfg.Stride = 301
	res := Figure10(cfg)
	if len(res.Rows) != 16 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.SpeedupDP <= 0 {
			t.Errorf("%s: speedup %g", row.Name, row.SpeedupDP)
		}
	}
	if res.AvgDP <= 0 {
		t.Error("no eval aggregate")
	}
}

func TestTable3(t *testing.T) {
	var out bytes.Buffer
	cfg := fastCfg(&out)
	cfg.Stride = 301
	res := Table3(cfg)
	if len(res.Rows) != 16 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Prediction == "" {
			t.Errorf("row %d: empty prediction", row.Number)
		}
		if row.Overhead < 0 {
			t.Errorf("row %d: negative overhead", row.Number)
		}
		if !row.Right && row.SmatChoice == row.BestFormat {
			t.Errorf("row %d: accuracy flag inconsistent", row.Number)
		}
	}
	if res.EvalN == 0 || res.EvalAccuracy < 0 || res.EvalAccuracy > 1 {
		t.Errorf("eval accuracy %g over %d", res.EvalAccuracy, res.EvalN)
	}
}

func TestFigure6(t *testing.T) {
	var out bytes.Buffer
	res := Figure6(fastCfg(&out))
	if len(res.Panels) != 7 {
		t.Fatalf("%d panels, want 7", len(res.Panels))
	}
	for _, p := range res.Panels {
		if len(p.Intervals) != len(p.Percent) {
			t.Fatalf("%s: intervals/percent mismatch", p.Param)
		}
		if p.N == 0 {
			continue // no beneficial matrices in this tiny sample
		}
		sum := 0.0
		for _, pc := range p.Percent {
			sum += pc
		}
		if math.Abs(sum-100) > 0.5 {
			t.Errorf("%s: percentages sum to %g", p.Param, sum)
		}
	}
}

func TestFigure1(t *testing.T) {
	var out bytes.Buffer
	res, err := Figure1(fastCfg(&out))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("%d levels, want ≥2", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Rows >= res.Rows[i-1].Rows {
			t.Errorf("level %d not coarser", i)
		}
	}
	// The finest level is a 7-point stencil: DIA must at least be feasible.
	if _, ok := res.Rows[0].GFLOPS[matrix.FormatDIA]; !ok {
		t.Error("DIA infeasible on the stencil level")
	}
}

func TestTable4(t *testing.T) {
	var out bytes.Buffer
	cfg := fastCfg(&out)
	cfg.Scale = 0.06
	res, err := Table4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2 configurations", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.BaseMS <= 0 || row.SmatMS <= 0 {
			t.Errorf("%s: non-positive times %+v", row.Name, row)
		}
		if row.BaseIters == 0 || row.SmatIters == 0 {
			t.Errorf("%s: did not iterate", row.Name)
		}
		if len(row.Formats) != row.Levels {
			t.Errorf("%s: %d A-formats for %d levels", row.Name, len(row.Formats), row.Levels)
		}
	}
}

func TestAblationThreshold(t *testing.T) {
	var out bytes.Buffer
	cfg := fastCfg(&out)
	cfg.Stride = 301
	res := AblationThreshold(cfg, []float64{0.05, 1.0})
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	lo, hi := res.Rows[0], res.Rows[1]
	if hi.FallbackRate < lo.FallbackRate {
		t.Errorf("fallback rate decreased with threshold: %g vs %g", lo.FallbackRate, hi.FallbackRate)
	}
	// Threshold 1.0 means no rule is ever confident enough: all fallback,
	// and the fallback always picks a measured-best format.
	if hi.FallbackRate != 1.0 {
		t.Errorf("threshold 1.0 fallback rate = %g, want 1", hi.FallbackRate)
	}
}

func TestAblationScoreboard(t *testing.T) {
	var out bytes.Buffer
	cfg := fastCfg(&out)
	cfg.Scale = 0.05
	res := AblationScoreboard(cfg)
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want 4 formats", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ChosenGFLOPS <= 0 || row.BestGFLOPS <= 0 || row.Basic <= 0 {
			t.Errorf("%v: non-positive measurements %+v", row.Format, row)
		}
		if row.ChosenGFLOPS > row.BestGFLOPS+1e-9 {
			t.Errorf("%v: chosen faster than exhaustive best?", row.Format)
		}
	}
}

func TestAblationTailoringAndFeatures(t *testing.T) {
	var out bytes.Buffer
	cfg := fastCfg(&out)
	cfg.Stride = 151
	tail, err := AblationTailoring(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tail.TailoredRules > tail.FullRules {
		t.Error("tailored ruleset larger than full")
	}
	feat, err := AblationFeatures(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if feat.FullAccuracy < 0 || feat.FullAccuracy > 1 ||
		feat.ReducedAccuracy < 0 || feat.ReducedAccuracy > 1 {
		t.Errorf("accuracies out of range: %+v", feat)
	}
}

func TestDataDirExport(t *testing.T) {
	var out bytes.Buffer
	cfg := fastCfg(&out)
	cfg.DataDir = t.TempDir()
	Figure3(cfg)
	data, err := os.ReadFile(filepath.Join(cfg.DataDir, "figure3.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 17 { // header + 16 representatives
		t.Fatalf("%d lines, want 17", len(lines))
	}
	if !strings.HasPrefix(lines[0], "Matrix\tCSR\tCOO") {
		t.Errorf("bad header %q", lines[0])
	}
}

func TestExtensions(t *testing.T) {
	var out bytes.Buffer
	cfg := fastCfg(&out)
	res := Extensions(cfg)
	if len(res.Rows) != 3 {
		t.Fatalf("%d workloads, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.GFLOPS[matrix.FormatHYB] == "" || row.GFLOPS[matrix.FormatBCSR] == "" {
			t.Errorf("%s: extension formats not measured", row.Workload)
		}
		if row.GFLOPS[matrix.FormatCSR] == "-" {
			t.Errorf("%s: CSR infeasible?", row.Workload)
		}
	}
}

func TestConvertBench(t *testing.T) {
	var out bytes.Buffer
	res := ConvertBench(fastCfg(&out))
	if len(res.Rows) != 2*len(convertKs) {
		t.Fatalf("%d rows, want %d (2 classes x %d ks)", len(res.Rows), 2*len(convertKs), len(convertKs))
	}
	for _, row := range res.Rows {
		if row.NeverSec <= 0 || row.EagerSec <= 0 || row.AmortizedSec <= 0 {
			t.Errorf("%s k=%d: non-positive timing %+v", row.Class, row.K, row)
		}
		if row.BestPolicy != "never" && row.BestPolicy != "eager" {
			t.Errorf("%s k=%d: best policy %q", row.Class, row.K, row.BestPolicy)
		}
	}
	if !res.SwapOracleOK {
		t.Errorf("convert-swap oracle failed: %s", res.SwapOracleErr)
	}
	if res.SteadyAllocsPerOp != 0 {
		t.Errorf("steady-state allocs per op = %g, want 0", res.SteadyAllocsPerOp)
	}
	if !strings.Contains(out.String(), "Amortized conversion") {
		t.Error("printed output missing header")
	}
}

func TestCacheBench(t *testing.T) {
	var out bytes.Buffer
	res := CacheBench(fastCfg(&out))
	if len(res.Rows) != 16 {
		t.Fatalf("got %d rows, want 16 representatives", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.HitSec <= 0 || row.ColdSec <= 0 || row.MeasureSec <= 0 {
			t.Errorf("row %d (%s): non-positive timing %+v", row.Number, row.Name, row)
		}
	}
	if res.GeoMeanSpeedup <= 0 || res.GeoMeanSpeedupMeasured <= 0 {
		t.Errorf("speedups not computed: %+v", res)
	}
	if res.Stats.Hits == 0 || res.Stats.Misses == 0 {
		t.Errorf("warm tuner cache saw no traffic: %+v", res.Stats)
	}
	if !strings.Contains(out.String(), "geometric-mean speedup") {
		t.Error("printed output missing summary line")
	}
}
