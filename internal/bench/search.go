package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"smat/internal/autotune"
	"smat/internal/features"
	"smat/internal/gen"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// SearchBenchResult compares the fixed kernel menu against the parameterized
// kernel search on a workload suite spanning every format family: per matrix,
// the best rate any zero-parameter kernel reaches on the default conversions
// versus the best rate the full parameter walk reaches over the same
// measurement set. Searched ≥ fixed holds per matrix by construction (the
// walk's candidate set contains the fixed menu); the interesting numbers are
// how often and by how much the searched parameters pull ahead.
type SearchBenchResult struct {
	Rows []SearchBenchRow
	// Geomeans over the workload suite (GFLOPS, and the searched/fixed ratio).
	FixedGeomean    float64
	SearchedGeomean float64
	SpeedupGeomean  float64
	// Histogram counts, per format, how often each winning parameter point
	// was chosen across the suite ("default" = the fixed menu won).
	Histogram map[string]map[string]int
}

// SearchBenchRow is one workload matrix.
type SearchBenchRow struct {
	Workload string
	// Fixed and Searched are the best GFLOPS over all formats with the fixed
	// menu and with the searched parameters; Speedup = Searched/Fixed.
	Fixed    float64
	Searched float64
	Speedup  float64
	// BestFormat, BestKernel and Params describe the searched winner.
	BestFormat string
	BestKernel string
	Params     string
	// Pruned counts the candidates the feature guards skipped unmeasured.
	Pruned int
}

// searchFormats is the space the experiment walks: the basic four plus the
// opt-in extension formats, whose conversion-level knobs (BCSR block shape,
// HYB width cut) carry most of the parameter space.
var searchFormats = []matrix.Format{
	matrix.FormatCSR, matrix.FormatCOO, matrix.FormatDIA, matrix.FormatELL,
	matrix.FormatHYB, matrix.FormatBCSR,
}

// Search runs the parameterized-search experiment.
func Search(cfg Config) *SearchBenchResult {
	cfg = cfg.withDefaults()
	lib := kernels.NewLibrary[float64]()
	lib.RegisterHYB()
	lib.RegisterBCSR()
	rng := rand.New(rand.NewSource(cfg.Seed))

	dim := func(n int) int {
		d := int(float64(n) * cfg.Scale)
		if d < 64 {
			d = 64
		}
		return d
	}
	workloads := []struct {
		name  string
		build func() *matrix.CSR[float64]
	}{
		{"stencil-5pt", func() *matrix.CSR[float64] {
			k := dim(400)
			return gen.Laplacian2D5pt[float64](k, k)
		}},
		{"constant-degree", func() *matrix.CSR[float64] {
			return gen.ConstantDegree[float64](dim(100000), 4, rng)
		}},
		{"road-network", func() *matrix.CSR[float64] {
			return gen.RoadNetwork[float64](dim(120000), rng)
		}},
		{"random-uniform", func() *matrix.CSR[float64] {
			return gen.RandomUniform[float64](dim(30000), dim(30000), 40, rng)
		}},
		{"skewed-regular", func() *matrix.CSR[float64] {
			return skewedRegular(dim(120000), rng)
		}},
		{"block-4x4", func() *matrix.CSR[float64] {
			return blockStructured(dim(30000), rng)
		}},
		{"block-8x2", func() *matrix.CSR[float64] {
			return tallBlockStructured(dim(30000), rng)
		}},
	}

	res := &SearchBenchResult{Histogram: map[string]map[string]int{}}
	for _, w := range workloads {
		m := w.build()
		ft := features.Extract(m)
		row := SearchBenchRow{Workload: w.name}
		for _, f := range searchFormats {
			walk := autotune.SearchMatrixParams(lib, m, &ft, f, cfg.Threads, cfg.Measure)
			row.Pruned += len(walk.Pruned)
			if walk.Kernel == "" {
				continue
			}
			if walk.FixedGFLOPS > row.Fixed {
				row.Fixed = walk.FixedGFLOPS
			}
			if walk.GFLOPS > row.Searched {
				row.Searched = walk.GFLOPS
				row.BestFormat = f.String()
				row.BestKernel = walk.Kernel
				row.Params = walk.Params.String()
			}
			h := res.Histogram[f.String()]
			if h == nil {
				h = map[string]int{}
				res.Histogram[f.String()] = h
			}
			h[walk.Params.String()]++
		}
		if row.Fixed > 0 {
			row.Speedup = row.Searched / row.Fixed
		}
		res.Rows = append(res.Rows, row)
	}
	res.FixedGeomean = geomeanOf(res.Rows, func(r SearchBenchRow) float64 { return r.Fixed })
	res.SearchedGeomean = geomeanOf(res.Rows, func(r SearchBenchRow) float64 { return r.Searched })
	res.SpeedupGeomean = geomeanOf(res.Rows, func(r SearchBenchRow) float64 { return r.Speedup })

	t := &table{header: []string{"Workload", "Fixed", "Searched", "Speedup", "Best", "Kernel", "Params"}}
	for _, r := range res.Rows {
		t.add(r.Workload, f2(r.Fixed), f2(r.Searched), fmt.Sprintf("%.2fx", r.Speedup),
			r.BestFormat, r.BestKernel, r.Params)
	}
	fmt.Fprintln(cfg.Out, "Parameter search: fixed kernel menu vs searched parameters (best GFLOPS over all formats)")
	t.print(cfg.Out)
	fmt.Fprintf(cfg.Out, "geomean: fixed %.2f, searched %.2f GFLOPS (%.2fx)\n",
		res.FixedGeomean, res.SearchedGeomean, res.SpeedupGeomean)
	fmt.Fprintln(cfg.Out, "winning parameters per format:")
	var fmts []string
	for f := range res.Histogram {
		fmts = append(fmts, f)
	}
	sort.Strings(fmts)
	for _, f := range fmts {
		var points []string
		for p := range res.Histogram[f] {
			points = append(points, p)
		}
		sort.Strings(points)
		for _, p := range points {
			fmt.Fprintf(cfg.Out, "  %-5s %-12s %d\n", f, p, res.Histogram[f][p])
		}
	}
	t.saveTSV(cfg, "search")
	return res
}

// geomeanOf is the geometric mean of pick over rows, ignoring non-positive
// values (infeasible workloads contribute nothing rather than zeroing the
// mean).
func geomeanOf(rows []SearchBenchRow, pick func(SearchBenchRow) float64) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		if v := pick(r); v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// tallBlockStructured builds a banded matrix of dense 8×2 blocks — a shape
// the fixed menu's automatic block-size picker never tries (its candidate
// list is square-biased), so the searched 8×2 instantiation is the only way
// to match the matrix's natural tiling.
func tallBlockStructured(n int, rng *rand.Rand) *matrix.CSR[float64] {
	nbr, nbc := n/8, n/2
	var ts []matrix.Triple[float64]
	for bi := 0; bi < nbr; bi++ {
		base := bi * 4 // keep the band near the diagonal in block-column units
		for _, off := range []int{-2, 0, 2, 4} {
			bj := base + off + rng.Intn(2)
			if bj < 0 || bj >= nbc {
				continue
			}
			for lr := 0; lr < 8; lr++ {
				for lc := 0; lc < 2; lc++ {
					ts = append(ts, matrix.Triple[float64]{Row: bi*8 + lr, Col: bj*2 + lc, Val: 1})
				}
			}
		}
	}
	m, err := matrix.FromTriples(nbr*8, nbc*2, ts)
	if err != nil {
		panic(err)
	}
	return m
}
