package bench

import (
	"fmt"

	"smat/internal/autotune"
	"smat/internal/corpus"
	"smat/internal/matrix"
	"smat/internal/refblas"
)

// Figure3Result reproduces Figure 3: per representative matrix, the SpMV
// GFLOPS of each of the four formats (basic implementations), exposing the
// up-to-6× performance variance that motivates format tuning.
type Figure3Result struct {
	Rows []Figure3Row
	// MaxGap is the largest best/worst ratio observed across matrices.
	MaxGap float64
}

// Figure3Row is one representative matrix.
type Figure3Row struct {
	Name   string
	GFLOPS map[matrix.Format]float64
	Best   matrix.Format
	Gap    float64 // best/worst ratio over feasible formats
}

// Figure3 measures the 16 representative matrices in all four formats.
func Figure3(cfg Config) *Figure3Result {
	cfg = cfg.withDefaults()
	labeler := autotune.NewLabeler(cfg.choice(), cfg.Threads, cfg.Measure)
	res := &Figure3Result{}
	for _, e := range corpus.Representatives(cfg.Scale) {
		lbl := labeler.Label(e.Matrix())
		row := Figure3Row{Name: e.Name, GFLOPS: lbl.GFLOPS, Best: lbl.Best}
		lo, hi := 0.0, 0.0
		for _, g := range lbl.GFLOPS {
			if lo == 0 || g < lo {
				lo = g
			}
			if g > hi {
				hi = g
			}
		}
		if lo > 0 {
			row.Gap = hi / lo
		}
		if row.Gap > res.MaxGap {
			res.MaxGap = row.Gap
		}
		res.Rows = append(res.Rows, row)
	}

	t := &table{header: []string{"Matrix", "CSR", "COO", "DIA", "ELL", "Best", "Gap"}}
	for _, row := range res.Rows {
		cell := func(f matrix.Format) string {
			if g, ok := row.GFLOPS[f]; ok {
				return f2(g)
			}
			return "-"
		}
		t.add(row.Name, cell(matrix.FormatCSR), cell(matrix.FormatCOO),
			cell(matrix.FormatDIA), cell(matrix.FormatELL),
			row.Best.String(), f2(row.Gap)+"x")
	}
	fmt.Fprintln(cfg.Out, "Figure 3: performance variance among storage formats (GFLOPS)")
	t.print(cfg.Out)
	t.saveTSV(cfg, "figure3")
	fmt.Fprintf(cfg.Out, "largest best/worst gap: %.1fx\n", res.MaxGap)
	return res
}

// Figure9Result reproduces Figure 9: SMAT-tuned SpMV GFLOPS per
// representative matrix, single- and double-precision, on two "platforms"
// (thread configurations).
type Figure9Result struct {
	Rows []Figure9Row
	// Peaks: the headline numbers (max GFLOPS per precision/platform).
	PeakSPA, PeakDPA, PeakSPB, PeakDPB float64
}

// Figure9Row is one representative matrix.
type Figure9Row struct {
	Name     string
	SPA, DPA float64 // platform A (Threads)
	SPB, DPB float64 // platform B (ThreadsB)
	FormatA  matrix.Format
}

// Figure9 tunes each representative with the model and measures the tuned
// operator in float32 and float64 on both thread configurations.
func Figure9(cfg Config) *Figure9Result {
	cfg = cfg.withDefaults()
	res := &Figure9Result{}
	for _, e := range corpus.Representatives(cfg.Scale) {
		m64 := e.Matrix()
		m32 := castCSR(m64)
		row := Figure9Row{Name: e.Name}
		for _, p := range []struct {
			threads int
			sp, dp  *float64
		}{
			{cfg.Threads, &row.SPA, &row.DPA},
			{cfg.ThreadsB, &row.SPB, &row.DPB},
		} {
			t64 := autotune.NewTuner[float64](cfg.Model, p.threads)
			if op, _, err := t64.Tune(m64); err == nil {
				*p.dp = measureOperator[float64](op, m64.Cols, m64.Rows, m64.NNZ(), cfg.Measure)
				if p.threads == cfg.Threads {
					row.FormatA = op.Format()
				}
			}
			t32 := autotune.NewTuner[float32](cfg.Model, p.threads)
			if op, _, err := t32.Tune(m32); err == nil {
				*p.sp = measureOperator[float32](op, m32.Cols, m32.Rows, m32.NNZ(), cfg.Measure)
			}
		}
		res.PeakSPA = max(res.PeakSPA, row.SPA)
		res.PeakDPA = max(res.PeakDPA, row.DPA)
		res.PeakSPB = max(res.PeakSPB, row.SPB)
		res.PeakDPB = max(res.PeakDPB, row.DPB)
		res.Rows = append(res.Rows, row)
	}

	t := &table{header: []string{"Matrix", "SP(A)", "DP(A)", "SP(B)", "DP(B)", "Format(A)"}}
	for _, row := range res.Rows {
		t.add(row.Name, f2(row.SPA), f2(row.DPA), f2(row.SPB), f2(row.DPB), row.FormatA.String())
	}
	fmt.Fprintf(cfg.Out, "Figure 9: SMAT performance (GFLOPS); platform A = %d threads, platform B = %d threads\n",
		cfg.Threads, cfg.ThreadsB)
	t.print(cfg.Out)
	t.saveTSV(cfg, "figure9")
	fmt.Fprintf(cfg.Out, "peaks: SP(A)=%.1f DP(A)=%.1f SP(B)=%.1f DP(B)=%.1f GFLOPS\n",
		res.PeakSPA, res.PeakDPA, res.PeakSPB, res.PeakDPB)
	return res
}

// Figure10Result reproduces Figure 10: SMAT versus the fixed-format
// reference library (the MKL stand-in), single- and double-precision, plus
// the evaluation-set average speedup the paper reports (3.2× SP, 3.8× DP on
// real UF matrices; shapes, not absolutes, are the target here).
type Figure10Result struct {
	Rows []Figure10Row
	// Eval-set aggregate speedups (geometric means).
	AvgSP, AvgDP float64
}

// Figure10Row is one representative matrix.
type Figure10Row struct {
	Name                 string
	SmatSP, RefSP        float64
	SmatDP, RefDP        float64
	SpeedupSP, SpeedupDP float64
}

// Figure10 compares tuned SMAT operators against the reference library's
// best fixed-format entry point on the representatives, then aggregates
// speedups over a sample of the held-out evaluation split.
func Figure10(cfg Config) *Figure10Result {
	cfg = cfg.withDefaults()
	res := &Figure10Result{}
	for _, e := range corpus.Representatives(cfg.Scale) {
		row := figure10Row(cfg, e)
		res.Rows = append(res.Rows, row)
	}
	// Aggregate over the evaluation split.
	c := corpus.New(cfg.Scale, cfg.Seed)
	_, eval := c.Split(len(c.Entries)*6/7, cfg.Seed)
	sumSP, sumDP, n := 0.0, 0.0, 0
	for i, e := range eval {
		if cfg.Stride > 1 && i%cfg.Stride != 0 {
			continue
		}
		row := figure10Row(cfg, e)
		if row.SpeedupSP > 0 && row.SpeedupDP > 0 {
			sumSP += row.SpeedupSP
			sumDP += row.SpeedupDP
			n++
		}
	}
	if n > 0 {
		res.AvgSP = sumSP / float64(n)
		res.AvgDP = sumDP / float64(n)
	}

	t := &table{header: []string{"Matrix", "SMAT-SP", "Ref-SP", "Speedup-SP", "SMAT-DP", "Ref-DP", "Speedup-DP"}}
	for _, row := range res.Rows {
		t.add(row.Name, f2(row.SmatSP), f2(row.RefSP), f2(row.SpeedupSP)+"x",
			f2(row.SmatDP), f2(row.RefDP), f2(row.SpeedupDP)+"x")
	}
	fmt.Fprintln(cfg.Out, "Figure 10: SMAT vs fixed-format reference library (GFLOPS)")
	t.print(cfg.Out)
	t.saveTSV(cfg, "figure10")
	fmt.Fprintf(cfg.Out, "evaluation-set average speedup over %d matrices: SP %.2fx, DP %.2fx\n",
		n, res.AvgSP, res.AvgDP)
	return res
}

func figure10Row(cfg Config, e *corpus.Entry) Figure10Row {
	m64 := e.Matrix()
	m32 := castCSR(m64)
	row := Figure10Row{Name: e.Name}

	measure := func(op func()) float64 {
		return autotune.MeasureSecPerOp(op, cfg.Measure)
	}
	// Double precision.
	t64 := autotune.NewTuner[float64](cfg.Model, cfg.Threads)
	if op, _, err := t64.Tune(m64); err == nil {
		row.SmatDP = measureOperator[float64](op, m64.Cols, m64.Rows, m64.NNZ(), cfg.Measure)
	}
	ref64 := refblas.New[float64](cfg.Threads)
	if _, g := ref64.BestFixedFormat(m64, cfg.Model.MaxFill, measure); len(g) > 0 {
		for _, v := range g {
			row.RefDP = max(row.RefDP, v)
		}
	}
	// Single precision.
	t32 := autotune.NewTuner[float32](cfg.Model, cfg.Threads)
	if op, _, err := t32.Tune(m32); err == nil {
		row.SmatSP = measureOperator[float32](op, m32.Cols, m32.Rows, m32.NNZ(), cfg.Measure)
	}
	ref32 := refblas.New[float32](cfg.Threads)
	if _, g := ref32.BestFixedFormat(m32, cfg.Model.MaxFill, measure); len(g) > 0 {
		for _, v := range g {
			row.RefSP = max(row.RefSP, v)
		}
	}
	if row.RefSP > 0 {
		row.SpeedupSP = row.SmatSP / row.RefSP
	}
	if row.RefDP > 0 {
		row.SpeedupDP = row.SmatDP / row.RefDP
	}
	return row
}
