package bench

import (
	"fmt"
	"math"

	"smat/internal/autotune"
	"smat/internal/corpus"
	"smat/internal/features"
	"smat/internal/matrix"
)

// Figure6Result reproduces Figure 6: for each rule parameter, the
// distribution of "beneficial" matrices (those whose measured best format is
// the parameter's format) over parameter-value intervals. The paper uses
// these histograms to justify each Table 2 parameter.
type Figure6Result struct {
	Panels []Figure6Panel
}

// Figure6Panel is one histogram: parameter name, interval labels, and the
// percentage of beneficial matrices per interval.
type Figure6Panel struct {
	Param     string
	Format    matrix.Format
	Intervals []string
	Percent   []float64
	N         int
}

// figure6Spec describes one panel: how to bucket a parameter value.
type figure6Spec struct {
	param  string
	format matrix.Format
	edges  []float64 // interval upper bounds; a final +inf bucket is implied
	value  func(f *features.Features) float64
}

func figure6Specs() []figure6Spec {
	ratioEdges := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	return []figure6Spec{
		{"Ndiags", matrix.FormatDIA, []float64{8, 32, 128, 512},
			func(f *features.Features) float64 { return float64(f.Ndiags) }},
		{"max_RD", matrix.FormatELL, []float64{4, 16, 64, 256},
			func(f *features.Features) float64 { return f.MaxRD }},
		{"ER_DIA", matrix.FormatDIA, ratioEdges,
			func(f *features.Features) float64 { return f.ERDIA }},
		{"ER_ELL", matrix.FormatELL, ratioEdges,
			func(f *features.Features) float64 { return f.ERELL }},
		{"NTdiags_ratio", matrix.FormatDIA, ratioEdges,
			func(f *features.Features) float64 { return f.NTdiagsRatio }},
		{"var_RD", matrix.FormatELL, []float64{0.5, 2, 8, 32},
			func(f *features.Features) float64 { return f.VarRD }},
		{"R", matrix.FormatCOO, []float64{1, 2, 3, 4},
			func(f *features.Features) float64 { return f.R }},
	}
}

// Figure6 labels the sampled corpus and histograms each parameter over the
// matrices that benefit from that parameter's format.
func Figure6(cfg Config) *Figure6Result {
	cfg = cfg.withDefaults()
	c := corpus.New(cfg.Scale, cfg.Seed)
	labeler := autotune.NewLabeler(cfg.choice(), cfg.Threads, cfg.Measure)

	type sample struct {
		f    features.Features
		best matrix.Format
	}
	var samples []sample
	for _, e := range c.Sample(cfg.Stride) {
		m := e.Matrix()
		samples = append(samples, sample{features.Extract(m), labeler.Label(m).Best})
	}

	res := &Figure6Result{}
	for _, spec := range figure6Specs() {
		panel := Figure6Panel{Param: spec.param, Format: spec.format}
		counts := make([]int, len(spec.edges)+1)
		total := 0
		for _, s := range samples {
			if s.best != spec.format {
				continue
			}
			v := spec.value(&s.f)
			b := len(spec.edges)
			for i, e := range spec.edges {
				if v <= e {
					b = i
					break
				}
			}
			counts[b]++
			total++
		}
		panel.N = total
		prev := math.Inf(-1)
		for i := range counts {
			var label string
			switch {
			case i == len(spec.edges):
				label = fmt.Sprintf(">%g", spec.edges[len(spec.edges)-1])
			case math.IsInf(prev, -1):
				label = fmt.Sprintf("≤%g", spec.edges[i])
			default:
				label = fmt.Sprintf("(%g,%g]", prev, spec.edges[i])
			}
			if i < len(spec.edges) {
				prev = spec.edges[i]
			}
			panel.Intervals = append(panel.Intervals, label)
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(counts[i]) / float64(total)
			}
			panel.Percent = append(panel.Percent, pct)
		}
		res.Panels = append(res.Panels, panel)
	}

	fmt.Fprintln(cfg.Out, "Figure 6: distribution of beneficial matrices per parameter interval")
	for _, p := range res.Panels {
		fmt.Fprintf(cfg.Out, "\n%s (matrices whose best format is %s, n=%d)\n", p.Param, p.Format, p.N)
		t := &table{header: []string{"interval", "percent"}}
		for i, iv := range p.Intervals {
			t.add(iv, f2(p.Percent[i])+"%")
		}
		t.print(cfg.Out)
		t.saveTSV(cfg, "figure6_"+p.Param)
	}
	return res
}
