package bench

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"smat/internal/autotune"
	"smat/internal/gen"
	"smat/internal/matrix"
	"smat/internal/oracle"
)

// ConvertResult is the amortised-conversion experiment: wall-clock time to
// finish k SpMVs under the three conversion policies the TuneOptions API
// expresses. "Never" pins tuned CSR (zero conversion cost), "eager" converts
// to the asymptotic winner inline before the first SpMV, and "amortized"
// passes the iteration hint k and lets the payoff model decide — converting
// in the background, off the serving path, when k clears break-even.
type ConvertResult struct {
	Threads int     `json:"threads"`
	Scale   float64 `json:"scale"`
	Ks      []int   `json:"ks"`

	// SwapOracleOK reports that the differential convert-swap oracle passed:
	// pre-, mid- and post-swap answers bit-for-bit among the two allowed
	// vectors at every checked thread count (acceptance for the async swap
	// serving correct results from the first call).
	SwapOracleOK  bool   `json:"swap_oracle_ok"`
	SwapOracleErr string `json:"swap_oracle_err,omitempty"`

	// SteadyAllocsPerOp is the malloc count per call on the post-swap pooled
	// serving path (MulVec and loop-path MulVecBatch alternating), measured
	// over 200 calls; the steady-state contract is 0.
	SteadyAllocsPerOp float64 `json:"steady_allocs_per_op"`

	Rows []ConvertRow `json:"rows"`
}

// ConvertRow is one (workload class, k) policy comparison. Seconds are
// best-of-trials wall-clock for tune + k SpMVs, tuning included — the cost a
// caller who owns the matrix for exactly k products actually pays.
type ConvertRow struct {
	Class      string `json:"class"`
	Asymptotic string `json:"asymptotic_format"`
	K          int    `json:"k"`

	NeverSec     float64 `json:"never_sec"`
	EagerSec     float64 `json:"eager_sec"`
	AmortizedSec float64 `json:"amortized_sec"`

	// BreakEvenIters and AmortizedChosen describe the amortised policy's
	// decision at this k; AmortizedAsync reports that it scheduled a
	// background conversion (served CSR first, swapped mid-run).
	BreakEvenIters  int    `json:"break_even_iters"`
	AmortizedChosen string `json:"amortized_chosen"`
	AmortizedAsync  bool   `json:"amortized_async"`

	// BestPolicy is the faster of never/eager; AmortizedVsBestPct is how far
	// the amortised policy landed from it (negative = faster than both).
	BestPolicy         string  `json:"best_policy"`
	AmortizedVsBestPct float64 `json:"amortized_vs_best_pct"`
}

// convertKs is the iteration-count sweep: from a single product (conversion
// can never pay) to deep amortisation.
var convertKs = []int{1, 4, 16, 64, 256}

// convertWorkloads are the two classes where conversion genuinely competes:
// a banded stencil (DIA-affine) and a constant-degree graph (ELL-affine).
// CSR- and COO-affine classes are excluded by construction — their asymptotic
// winner needs no conversion, so every policy degenerates to "never".
func convertWorkloads(cfg Config) []struct {
	class string
	m     *matrix.CSR[float64]
} {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := func(n int) int { return max(64, int(float64(n)*cfg.Scale)) }
	return []struct {
		class string
		m     *matrix.CSR[float64]
	}{
		{"dia-affine", gen.Laplacian2D5pt[float64](dim(700), dim(700))},
		{"ell-affine", gen.ConstantDegree[float64](dim(400000), 8, rng)},
	}
}

// convertTimeToK measures the wall-clock seconds from TuneOpts to the k-th
// completed SpMV, best of trials. Between trials any background conversion is
// allowed to settle off the clock, so one trial's worker never contends with
// the next trial's serving calls.
func convertTimeToK(t *autotune.Tuner[float64], m *matrix.CSR[float64],
	opts autotune.TuneOptions, k, trials int, x, y []float64) (float64, *autotune.Decision, error) {

	best := math.MaxFloat64
	var d *autotune.Decision
	for i := 0; i < trials; i++ {
		start := time.Now()
		op, di, err := t.TuneOpts(m, opts)
		if err != nil {
			return 0, nil, err
		}
		for j := 0; j < k; j++ {
			op.MulVec(x, y)
		}
		sec := time.Since(start).Seconds()
		op.AwaitConversion()
		if sec < best {
			best = sec
		}
		d = di
	}
	return best, d, nil
}

// convertSteadyAllocs measures mallocs per call on the post-swap pooled
// serving path: a background-converted operator alternating MulVec and
// loop-path MulVecBatch after one warm-up of each.
func convertSteadyAllocs(t *autotune.Tuner[float64], m *matrix.CSR[float64]) (float64, error) {
	// A pre-closed hold channel forces the background-swap protocol even on
	// a single-CPU machine, so this measures the genuinely post-swap engine.
	released := make(chan struct{})
	close(released)
	op, _, err := t.TuneOpts(m, autotune.TuneOptions{Iterations: 1 << 20, HoldConversion: released})
	if err != nil {
		return 0, err
	}
	op.AwaitConversion()

	const bw = 3 // below any crossover: the loop path and its engine scratch
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1 + float64(i%7)/8
	}
	y := make([]float64, m.Rows)
	xb := make([]float64, m.Cols*bw)
	for i := range xb {
		xb[i] = 1 + float64(i%5)/8
	}
	yb := make([]float64, m.Rows*bw)
	op.MulVec(x, y)
	op.MulVecBatch(xb, yb, bw)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const calls = 100
	for i := 0; i < calls; i++ {
		op.MulVec(x, y)
		op.MulVecBatch(xb, yb, bw)
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / (2 * calls), nil
}

// ConvertBench runs the amortised-conversion experiment: for each workload
// class and each k, time-to-k-SpMVs under the never / eager / amortized
// policies, all acquiring their operator through the same TuneOpts entry
// point so the three policies pay comparable acquisition costs. The decision
// cache is warmed by one asymptotic leader tune per class, so the amortised
// policy exercises the cache-hit path with recorded payoff measurements —
// the configuration the background swap is designed for.
func ConvertBench(cfg Config) *ConvertResult {
	cfg = cfg.withDefaults()
	res := &ConvertResult{Threads: cfg.Threads, Scale: cfg.Scale, Ks: convertKs}

	// Acceptance: the swap serves correct results from the first call. The
	// differential oracle checks pre/mid/post-swap answers bit for bit.
	for _, s := range oracle.Specs() {
		if s.Name != "diag-banded" {
			continue
		}
		s := s
		if err := oracle.CheckConvertSwap[float64](&s, matrix.FormatDIA, oracle.Options{}); err != nil {
			res.SwapOracleErr = err.Error()
		} else {
			res.SwapOracleOK = true
		}
	}

	trials := cfg.Measure.Trials
	if trials < 3 {
		trials = 3
	}

	for _, w := range convertWorkloads(cfg) {
		tuner := autotune.New[float64](cfg.Model, autotune.Config{Threads: cfg.Threads})

		// Warm the decision cache: the leader pays the full decision once,
		// recording conversion cost and the two per-SpMV rates.
		_, lead, err := tuner.Tune(w.m)
		if err != nil {
			fmt.Fprintf(cfg.Out, "(%s: leader tune failed: %v)\n", w.class, err)
			tuner.Close()
			continue
		}
		asym := lead.Asymptotic

		x := make([]float64, w.m.Cols)
		for i := range x {
			x[i] = 1 + float64(i%7)/8
		}
		y := make([]float64, w.m.Rows)

		for _, k := range convertKs {
			never, _, err := convertTimeToK(tuner, w.m,
				autotune.TuneOptions{FormatHint: matrix.FormatCSR, HasFormatHint: true}, k, trials, x, y)
			if err == nil {
				var eager float64
				eager, _, err = convertTimeToK(tuner, w.m,
					autotune.TuneOptions{FormatHint: asym, HasFormatHint: true}, k, trials, x, y)
				if err == nil {
					var amort float64
					var d *autotune.Decision
					amort, d, err = convertTimeToK(tuner, w.m,
						autotune.TuneOptions{Iterations: k}, k, trials, x, y)
					if err == nil {
						row := ConvertRow{
							Class:           w.class,
							Asymptotic:      asym.String(),
							K:               k,
							NeverSec:        never,
							EagerSec:        eager,
							AmortizedSec:    amort,
							BreakEvenIters:  d.BreakEvenIters,
							AmortizedChosen: d.Chosen.String(),
							AmortizedAsync:  !d.Converted,
							BestPolicy:      "never",
						}
						best := never
						if eager < best {
							best, row.BestPolicy = eager, "eager"
						}
						if best > 0 {
							row.AmortizedVsBestPct = (amort/best - 1) * 100
						}
						res.Rows = append(res.Rows, row)
					}
				}
			}
			if err != nil {
				fmt.Fprintf(cfg.Out, "(%s k=%d: %v)\n", w.class, k, err)
			}
		}

		if w.class == "dia-affine" && asym != matrix.FormatCSR {
			allocs, err := convertSteadyAllocs(tuner, w.m)
			if err == nil {
				res.SteadyAllocsPerOp = allocs
			}
		}
		tuner.Close()
	}

	t := &table{header: []string{"Class", "Asym", "k", "Never (ms)", "Eager (ms)", "Amortized (ms)", "Break-even", "Chosen", "Async", "Vs best"}}
	for _, row := range res.Rows {
		be := fmt.Sprint(row.BreakEvenIters)
		if row.BreakEvenIters == autotune.NeverAmortize {
			be = "never"
		}
		t.add(row.Class, row.Asymptotic, fmt.Sprint(row.K),
			fmt.Sprintf("%.3f", row.NeverSec*1e3),
			fmt.Sprintf("%.3f", row.EagerSec*1e3),
			fmt.Sprintf("%.3f", row.AmortizedSec*1e3),
			be, row.AmortizedChosen, fmt.Sprint(row.AmortizedAsync),
			fmt.Sprintf("%+.1f%%", row.AmortizedVsBestPct))
	}
	fmt.Fprintf(cfg.Out, "Amortized conversion: time to k SpMVs by policy (%d threads)\n", cfg.Threads)
	t.print(cfg.Out)
	fmt.Fprintf(cfg.Out, "swap oracle ok: %v; steady-state allocs/op post-swap: %g\n",
		res.SwapOracleOK, res.SteadyAllocsPerOp)
	t.saveTSV(cfg, "convert")
	return res
}
