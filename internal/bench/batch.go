package bench

import (
	"fmt"
	"math/rand"

	"smat/internal/autotune"
	"smat/internal/gen"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// BatchResult is the batched-serving experiment: per-vector SpMV throughput
// as the batch width grows, across the four format-affinity classes. Width 1
// is the single-vector kernel (the serving baseline); larger widths run the
// format's register-tiled SpMM kernel, whose per-vector speedup comes from
// amortising every matrix-element load over the whole register tile.
type BatchResult struct {
	Threads int        `json:"threads"`
	Scale   float64    `json:"scale"`
	Widths  []int      `json:"widths"`
	Rows    []BatchRow `json:"rows"`
}

// BatchRow is one (affinity class, batch width) measurement.
type BatchRow struct {
	Class        string  `json:"class"`
	Format       string  `json:"format"`
	Kernel       string  `json:"kernel"`
	NNZ          int     `json:"nnz"`
	Width        int     `json:"width"`
	SecPerOp     float64 `json:"sec_per_op"`
	PerVecGFLOPS float64 `json:"per_vector_gflops"`
	// SpeedupVs1 is the per-vector speedup over this class's width-1 row:
	// (width-1 seconds × width) / batched seconds.
	SpeedupVs1 float64 `json:"speedup_vs_k1"`
}

// batchWidths is the width sweep: the single-vector baseline, a sub-tile
// batch, the register tile, and two full-tile multiples.
var batchWidths = []int{1, 2, 4, 8, 16}

// batchWorkloads builds one matrix per format-affinity class (the corpus
// grouping of Table 1): a banded stencil for DIA, a constant-degree graph
// for ELL, a uniform random matrix for CSR, and a power-law graph for COO.
func batchWorkloads(cfg Config) []struct {
	class  string
	format matrix.Format
	m      *matrix.CSR[float64]
} {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := func(n int) int { return max(64, int(float64(n)*cfg.Scale)) }
	return []struct {
		class  string
		format matrix.Format
		m      *matrix.CSR[float64]
	}{
		{"dia-affine", matrix.FormatDIA, gen.Laplacian2D5pt[float64](dim(700), dim(700))},
		{"ell-affine", matrix.FormatELL, gen.ConstantDegree[float64](dim(400000), 8, rng)},
		{"csr-affine", matrix.FormatCSR, gen.RandomUniform[float64](dim(100000), dim(100000), 16, rng)},
		{"coo-affine", matrix.FormatCOO, gen.PreferentialAttachment[float64](dim(200000), 4, rng)},
	}
}

// BatchBench runs the batched multi-vector SpMV experiment and prints the
// per-vector throughput table. Each class is materialised in its affine
// format; width 1 runs the parallel single-vector kernel pooled, larger
// widths the format's batched SpMM kernel pooled, all on warmed plans.
func BatchBench(cfg Config) *BatchResult {
	cfg = cfg.withDefaults()
	res := &BatchResult{Threads: cfg.Threads, Scale: cfg.Scale, Widths: batchWidths}

	lib := kernels.NewLibrary[float64]()
	pool := kernels.NewPool[float64](cfg.Threads)
	defer pool.Close()

	for _, w := range batchWorkloads(cfg) {
		mat, err := kernels.Convert(w.m, w.format, 8)
		if err != nil {
			fmt.Fprintf(cfg.Out, "(%s: conversion to %s failed: %v)\n", w.class, w.format, err)
			continue
		}
		nnz := w.m.NNZ()
		flops := kernels.FLOPs(nnz)

		single := lib.Basic(w.format)
		for _, k := range lib.ForFormat(w.format) {
			if k.Strategies&kernels.StratParallel != 0 && k.Strategies&kernels.StratWidthSpec == 0 {
				single = k
				break
			}
		}
		batch := lib.BatchFor(w.format)
		if batch == nil {
			fmt.Fprintf(cfg.Out, "(%s: no batched kernel for %s)\n", w.class, w.format)
			continue
		}

		maxK := batchWidths[len(batchWidths)-1]
		xb := make([]float64, w.m.Cols*maxK)
		for i := range xb {
			xb[i] = 1 + float64(i%7)/8
		}
		yb := make([]float64, w.m.Rows*maxK)

		var sec1 float64
		for _, k := range batchWidths {
			var sec float64
			if k == 1 {
				single.RunPooled(mat, xb[:w.m.Cols], yb[:w.m.Rows], pool) // warm plan + workers
				sec = autotune.MeasureSecPerOp(func() {
					single.RunPooled(mat, xb[:w.m.Cols], yb[:w.m.Rows], pool)
				}, cfg.Measure)
				sec1 = sec
			} else {
				bx, by := xb[:w.m.Cols*k], yb[:w.m.Rows*k]
				batch.RunPooled(mat, bx, by, k, pool)
				sec = autotune.MeasureSecPerOp(func() {
					batch.RunPooled(mat, bx, by, k, pool)
				}, cfg.Measure)
			}
			row := BatchRow{
				Class:        w.class,
				Format:       w.format.String(),
				Kernel:       single.Name,
				NNZ:          nnz,
				Width:        k,
				SecPerOp:     sec,
				PerVecGFLOPS: autotune.GFLOPS(flops, sec/float64(k)),
			}
			if k > 1 {
				row.Kernel = batch.Name
			}
			if sec > 0 && sec1 > 0 {
				row.SpeedupVs1 = sec1 * float64(k) / sec
			}
			res.Rows = append(res.Rows, row)
		}
	}

	t := &table{header: []string{"Class", "Format", "Kernel", "k", "Sec/op (us)", "Per-vec GFLOPS", "Speedup vs k=1"}}
	for _, row := range res.Rows {
		t.add(row.Class, row.Format, row.Kernel, fmt.Sprint(row.Width),
			fmt.Sprintf("%.1f", row.SecPerOp*1e6), f2(row.PerVecGFLOPS), fmt.Sprintf("%.2fx", row.SpeedupVs1))
	}
	fmt.Fprintf(cfg.Out, "Batched multi-vector SpMV: per-vector throughput vs batch width (%d threads)\n", cfg.Threads)
	t.print(cfg.Out)
	t.saveTSV(cfg, "batch")
	return res
}
