package bench

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"smat/internal/amg"
	"smat/internal/autotune"
	"smat/internal/gen"
	"smat/internal/kernels"
	"smat/internal/matrix"
	"smat/internal/oracle"
	"smat/internal/refblas"
	"smat/internal/solve"
)

// SolveResult is the solver-workload experiment: end-to-end Krylov solves
// through the tuned operator versus the fixed-format reference, block versus
// single-RHS time-to-convergence, and AMG setup-phase Galerkin products
// (fused row-blocked SpGEMM versus the serial two-pass triple product). The
// oracle fields embed the differential acceptance runs so the artifact
// records that the fast paths were cross-checked, not just timed.
type SolveResult struct {
	Rows []SolveRow `json:"rows"`

	SpGEMMOracleOK  bool   `json:"spgemm_oracle_ok"`
	SpGEMMOracleErr string `json:"spgemm_oracle_err,omitempty"`
	SolverOracleOK  bool   `json:"solver_oracle_ok"`
	SolverOracleErr string `json:"solver_oracle_err,omitempty"`
}

// SolveRow is one timed case. BaselineSec holds the reference configuration
// for the same work (serial triple product, fixed-CSR CG, sequential
// single-RHS solves); Speedup is BaselineSec/Sec where both are set.
type SolveRow struct {
	Case        string  `json:"case"`
	N           int     `json:"n"`
	NNZ         int     `json:"nnz"`
	Threads     int     `json:"threads"`
	Sec         float64 `json:"sec"`
	BaselineSec float64 `json:"baseline_sec,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
	Iterations  int     `json:"iterations,omitempty"`
	ItersPerSec float64 `json:"iters_per_sec,omitempty"`
	PerRHSSec   float64 `json:"per_rhs_sec,omitempty"`
	Detail      string  `json:"detail,omitempty"`
}

// bestOfSec runs f trials times and returns the fastest wall-clock
// seconds. A forced GC before every trial keeps garbage left by earlier
// cases (the Galerkin setups churn through hundreds of MB) from being
// collected inside a later case's timing window.
func bestOfSec(trials int, f func()) float64 {
	if trials < 1 {
		trials = 1
	}
	best := math.Inf(1)
	for t := 0; t < trials; t++ {
		runtime.GC()
		start := time.Now()
		f()
		if s := time.Since(start).Seconds(); s < best {
			best = s
		}
	}
	return best
}

// SolveBench runs the solver-workload experiment.
func SolveBench(cfg Config) (*SolveResult, error) {
	cfg = cfg.withDefaults()
	trials := cfg.Measure.Trials
	if trials < 1 {
		trials = 3
	}
	res := &SolveResult{}

	if err := galerkinRows(cfg, trials, res); err != nil {
		return nil, err
	}
	if err := cgRows(cfg, trials, res); err != nil {
		return nil, err
	}
	if err := amgPCGRows(cfg, trials, res); err != nil {
		return nil, err
	}
	solveOracleRows(cfg, res)

	t := &table{header: []string{"Case", "N", "NNZ", "Thr", "Base(ms)", "Time(ms)", "Speedup", "Iters", "It/s", "PerRHS(ms)"}}
	ms := func(s float64) string {
		if s == 0 {
			return "-"
		}
		return f2(s * 1e3)
	}
	for _, r := range res.Rows {
		sp := "-"
		if r.Speedup > 0 {
			sp = f2(r.Speedup) + "x"
		}
		t.add(r.Case, fmt.Sprint(r.N), fmt.Sprint(r.NNZ), fmt.Sprint(r.Threads),
			ms(r.BaselineSec), ms(r.Sec), sp, fmt.Sprint(r.Iterations),
			f2(r.ItersPerSec), ms(r.PerRHSSec))
	}
	fmt.Fprintln(cfg.Out, "Solver workloads: tuned Krylov solves and parallel Galerkin setup")
	t.print(cfg.Out)
	fmt.Fprintf(cfg.Out, "oracle: spgemm ok=%v solvers ok=%v\n", res.SpGEMMOracleOK, res.SolverOracleOK)
	t.saveTSV(cfg, "solve")
	return res, nil
}

// galerkinRows times the AMG setup-phase coarse-grid products: the serial
// two-pass triple product R·A·P (matrix.TripleProduct, the pre-existing
// Setup path) against the fused row-blocked kernels.GalerkinRAP dispatched
// over a worker pool, summed over every level of each hierarchy.
func galerkinRows(cfg Config, trials int, res *SolveResult) error {
	setupThreads := cfg.Threads
	if setupThreads < 4 {
		setupThreads = 4
	}
	configs := []struct {
		name  string
		build func() *matrix.CSR[float64]
		opts  amg.Options
	}{
		{
			name: "galerkin/cljp_7pt",
			build: func() *matrix.CSR[float64] {
				n := scaledGrid(50, cfg.Scale)
				return gen.Laplacian3D7pt[float64](n, n, n)
			},
			opts: amg.Options{Coarsening: amg.CLJP, Seed: cfg.Seed},
		},
		{
			name:  "galerkin/rugeL_9pt",
			build: func() *matrix.CSR[float64] { n := scaledGrid(500, cfg.Scale); return gen.Laplacian2D9pt[float64](n, n) },
			opts:  amg.Options{Coarsening: amg.RugeStueben},
		},
	}
	for _, c := range configs {
		a := c.build()
		h, err := amg.Setup(a, c.opts)
		if err != nil {
			return fmt.Errorf("bench: %s setup: %w", c.name, err)
		}
		type rap struct{ r, a, p *matrix.CSR[float64] }
		var products []rap
		nnz := 0
		for _, lvl := range h.Levels {
			if lvl.P == nil {
				continue
			}
			products = append(products, rap{lvl.R, lvl.A, lvl.P})
			nnz += lvl.A.NNZ()
		}
		serial := bestOfSec(trials, func() {
			for _, pr := range products {
				matrix.TripleProduct(pr.r, pr.a, pr.p)
			}
		})
		pool := kernels.NewPool[float64](setupThreads)
		pooled := bestOfSec(trials, func() {
			for _, pr := range products {
				kernels.GalerkinRAP(pr.r, pr.a, pr.p, pool, setupThreads)
			}
		})
		pool.Close()
		res.Rows = append(res.Rows, SolveRow{
			Case: c.name, N: a.Rows, NNZ: nnz, Threads: setupThreads,
			Sec: pooled, BaselineSec: serial, Speedup: serial / pooled,
			Detail: fmt.Sprintf("%d levels, fused RAP vs two-pass triple product", len(h.Levels)),
		})
	}
	return nil
}

// cgRows times CG to convergence through the tuned operator (with the
// iteration hint, so conversion amortizes) against the fixed-CSR reference
// library, then single-RHS CG ×k against BlockCG through the batched path.
func cgRows(cfg Config, trials int, res *SolveResult) error {
	const tol = 1e-8
	n := scaledGrid(220, cfg.Scale)
	a := gen.Laplacian2D5pt[float64](n, n)
	rows := a.Rows
	maxIter := 20 * n
	b := make([]float64, rows)
	for i := range b {
		b[i] = 1 + float64(i%5)/8
	}
	x := make([]float64, rows)

	// Fixed-format baseline: the reference library's CSR SpMV, the operator
	// a solver links against when there is no tuner in the loop.
	lib := refblas.New[float64](cfg.Threads)
	baseOp := spmvFunc[float64](func(xv, yv []float64) { lib.CSRGeMV(a, xv, yv) })
	var ws solve.CGScratch[float64]
	var baseStats solve.Stats
	runBase := func() {
		clear(x)
		st, err := solve.CGWith[float64](&ws, baseOp, nil, b, x, tol, maxIter)
		baseStats = st
		if err != nil {
			panic(err) // SPD Laplacian: breakdown is impossible
		}
	}
	runBase() // warm
	baseSec := bestOfSec(trials, runBase)

	tuner := autotune.NewTuner[float64](cfg.Model, cfg.Threads)
	defer tuner.Close()
	tuneStart := time.Now()
	op, _, err := tuner.TuneOpts(a, autotune.TuneOptions{Iterations: maxIter})
	if err != nil {
		return fmt.Errorf("bench: solve: tune: %w", err)
	}
	op.AwaitConversion()
	tuneSec := time.Since(tuneStart).Seconds()
	var tunedStats solve.Stats
	runTuned := func() {
		clear(x)
		st, err := solve.CGWith[float64](&ws, op, nil, b, x, tol, maxIter)
		tunedStats = st
		if err != nil {
			panic(err)
		}
	}
	runTuned() // warm
	tunedSec := bestOfSec(trials, runTuned)

	res.Rows = append(res.Rows, SolveRow{
		Case: "cg/fixed_csr", N: rows, NNZ: a.NNZ(), Threads: cfg.Threads,
		Sec: baseSec, Iterations: baseStats.Iterations,
		ItersPerSec: float64(baseStats.Iterations) / baseSec,
		Detail:      "refblas CSRGeMV baseline",
	})
	res.Rows = append(res.Rows, SolveRow{
		Case: "cg/tuned", N: rows, NNZ: a.NNZ(), Threads: cfg.Threads,
		Sec: tunedSec, BaselineSec: baseSec, Speedup: baseSec / tunedSec,
		Iterations:  tunedStats.Iterations,
		ItersPerSec: float64(tunedStats.Iterations) / tunedSec,
		Detail:      fmt.Sprintf("format=%s kernel=%s tune+convert=%.2fms", op.Format(), op.KernelName(), tuneSec*1e3),
	})

	// Multi-RHS: k independent right-hand sides, solved one CG at a time
	// versus one BlockCG driving the batched SpMM path.
	const k = 8
	bb := make([]float64, rows*k)
	for i := 0; i < rows; i++ {
		for j := 0; j < k; j++ {
			bb[i*k+j] = 1 + float64((i+3*j)%7)/8
		}
	}
	xb := make([]float64, rows*k)
	bcol := make([]float64, rows)
	var singleIters int
	runSingle := func() {
		singleIters = 0
		for j := 0; j < k; j++ {
			for i := 0; i < rows; i++ {
				bcol[i] = bb[i*k+j]
			}
			clear(x)
			st, err := solve.CGWith[float64](&ws, op, nil, bcol, x, tol, maxIter)
			if err != nil {
				panic(err)
			}
			singleIters += st.Iterations
		}
	}
	var blockStats solve.BlockStats
	runBlock := func() {
		clear(xb)
		st, err := solve.BlockCG[float64](op, bb, xb, k, tol, maxIter)
		blockStats = st
		if err != nil {
			panic(err)
		}
	}
	runSingle() // warm
	singleSec := bestOfSec(trials, runSingle)
	runBlock() // warm
	blockSec := bestOfSec(trials, runBlock)

	res.Rows = append(res.Rows, SolveRow{
		Case: "blockcg/single_rhs_x8", N: rows, NNZ: a.NNZ(), Threads: cfg.Threads,
		Sec: singleSec, Iterations: singleIters, PerRHSSec: singleSec / k,
		ItersPerSec: float64(singleIters) / singleSec,
		Detail:      "8 sequential tuned CG solves",
	})
	res.Rows = append(res.Rows, SolveRow{
		Case: "blockcg/k8", N: rows, NNZ: a.NNZ(), Threads: cfg.Threads,
		Sec: blockSec, BaselineSec: singleSec, Speedup: singleSec / blockSec,
		Iterations: blockStats.Iterations, PerRHSSec: blockSec / k,
		ItersPerSec: float64(blockStats.Iterations) / blockSec,
		Detail:      "one BlockCG through MulVecBatch",
	})
	return nil
}

// amgPCGRows times an end-to-end AMG-preconditioned CG solve: hierarchy
// built with the pooled fused Galerkin products (sharing the tuner's
// workers), then solved with every level bound to the fixed parallel-CSR
// kernel versus SMAT-tuned operators with the iteration hint.
func amgPCGRows(cfg Config, trials int, res *SolveResult) error {
	const tol, maxIter = 1e-8, 100
	n := scaledGrid(300, cfg.Scale)
	a := gen.Laplacian2D9pt[float64](n, n)
	tuner := autotune.NewTuner[float64](cfg.Model, cfg.Threads)
	defer tuner.Close()
	h, err := amg.SetupPooled(a, amg.Options{}, tuner.Pool())
	if err != nil {
		return fmt.Errorf("bench: amg_pcg setup: %w", err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	var stats amg.SolveStats
	run := func() {
		clear(x)
		stats = h.SolvePCG(b, x, tol, maxIter)
	}

	if err := h.Bind(csrFactory(cfg.Threads)); err != nil {
		return err
	}
	run() // warm
	baseSec := bestOfSec(trials, run)
	baseIters := stats.Iterations

	err = h.Bind(func(m *matrix.CSR[float64]) (amg.SpMV[float64], error) {
		op, _, err := tuner.TuneOpts(m, autotune.TuneOptions{Iterations: maxIter})
		if err != nil {
			return nil, err
		}
		op.AwaitConversion()
		return op, nil
	})
	if err != nil {
		return err
	}
	run() // warm
	tunedSec := bestOfSec(trials, run)

	res.Rows = append(res.Rows, SolveRow{
		Case: "amg_pcg/tuned_bind", N: a.Rows, NNZ: a.NNZ(), Threads: cfg.Threads,
		Sec: tunedSec, BaselineSec: baseSec, Speedup: baseSec / tunedSec,
		Iterations:  stats.Iterations,
		ItersPerSec: float64(stats.Iterations) / tunedSec,
		Detail:      fmt.Sprintf("%d levels, pooled fused setup, base iters %d", len(h.Levels), baseIters),
	})
	return nil
}

// solveOracleRows embeds the differential acceptance runs in the artifact:
// the SpGEMM/Galerkin bit-for-bit and rounding-bound suite over the
// adversarial structures, and the residual-checked tuned-vs-reference
// solver suite.
func solveOracleRows(cfg Config, res *SolveResult) {
	opt := oracle.Options{Threads: []int{2, 4}}
	res.SpGEMMOracleOK = true
	for _, s := range oracle.Specs() {
		s := s
		if err := oracle.CheckSpGEMM[float64](&s, opt); err != nil {
			res.SpGEMMOracleOK = false
			res.SpGEMMOracleErr = err.Error()
			break
		}
	}
	res.SolverOracleOK = true
	if err := oracle.CheckSolvers[float64](oracle.Options{Threads: []int{2}}); err != nil {
		res.SolverOracleOK = false
		res.SolverOracleErr = err.Error()
	}
}
