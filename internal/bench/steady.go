package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"

	"smat/internal/autotune"
	"smat/internal/gen"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// SteadyResult compares the two dispatch paths of the execution engine on
// every parallel kernel: Run (per-call goroutine spawn) against RunPooled
// (persistent workers + cached execution plan). This is the perf contract of
// the steady-state SpMV path — the regime a solver sits in after tuning,
// multiplying the same matrix thousands of times.
type SteadyResult struct {
	Threads        int         `json:"threads"`
	Scale          float64     `json:"scale"`
	Rows           []SteadyRow `json:"rows"`
	GeoMeanSpeedup float64     `json:"geomean_speedup"`
}

// SteadyRow is one (workload, kernel) comparison.
type SteadyRow struct {
	Workload     string  `json:"workload"`
	Format       string  `json:"format"`
	Kernel       string  `json:"kernel"`
	NNZ          int     `json:"nnz"`
	SpawnSec     float64 `json:"spawn_sec_per_op"`
	PooledSec    float64 `json:"pooled_sec_per_op"`
	Speedup      float64 `json:"speedup"`
	SpawnGFLOPS  float64 `json:"spawn_gflops"`
	PooledGFLOPS float64 `json:"pooled_gflops"`
}

// steadyWorkloads builds the experiment's matrices, dimension-scaled by
// cfg.Scale: a banded stencil (DIA/ELL territory), a constant-degree graph
// (ELL), a uniform random matrix (CSR), and a power-law-ish road network
// (CSR/COO) — mid-size matrices where per-call goroutine setup is a visible
// fraction of SpMV time.
func steadyWorkloads(cfg Config) []struct {
	name string
	m    *matrix.CSR[float64]
} {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := func(n int) int { return max(64, int(float64(n)*cfg.Scale)) }
	return []struct {
		name string
		m    *matrix.CSR[float64]
	}{
		{"laplace2d", gen.Laplacian2D5pt[float64](dim(600), dim(600))},
		{"constdeg4", gen.ConstantDegree[float64](dim(50000), 4, rng)},
		{"random30", gen.RandomUniform[float64](dim(20000), dim(20000), 30, rng)},
		{"road", gen.RoadNetwork[float64](dim(80000), rng)},
		// Just past the serial cutoff: each SpMV is tens of microseconds, so
		// this row isolates dispatch overhead (goroutine spawns vs pool
		// wakes) rather than bandwidth.
		{"tiny6", gen.RandomUniform[float64](dim(8000), dim(8000), 6, rng)},
	}
}

// Steady runs the steady-state engine experiment and prints the comparison
// table. Every format the workload converts to (within a fill budget)
// contributes its parallel kernels; each is timed on the spawn path and the
// pooled path with the same warmed plan.
func Steady(cfg Config) *SteadyResult {
	cfg = cfg.withDefaults()
	res := &SteadyResult{Threads: cfg.Threads, Scale: cfg.Scale}

	lib := kernels.NewLibrary[float64]()
	lib.RegisterHYB()
	lib.RegisterBCSR()
	pool := kernels.NewPool[float64](cfg.Threads)
	defer pool.Close()

	formats := []matrix.Format{
		matrix.FormatCSR, matrix.FormatCOO, matrix.FormatDIA,
		matrix.FormatELL, matrix.FormatHYB, matrix.FormatBCSR,
	}

	logSum, logN := 0.0, 0
	for _, w := range steadyWorkloads(cfg) {
		nnz := w.m.NNZ()
		x := make([]float64, w.m.Cols)
		for i := range x {
			x[i] = 1 + float64(i%7)/8
		}
		y := make([]float64, w.m.Rows)
		for _, f := range formats {
			mat, err := kernels.Convert(w.m, f, 8)
			if err != nil {
				continue // fill explosion: the format does not suit this matrix
			}
			for _, k := range lib.ForFormat(f) {
				if k.Strategies&kernels.StratParallel == 0 {
					continue
				}
				// Warm both paths: compute the plan, start the workers.
				k.Run(mat, x, y, cfg.Threads)
				k.RunPooled(mat, x, y, pool)
				spawnSec := autotune.MeasureSecPerOp(func() { k.Run(mat, x, y, cfg.Threads) }, cfg.Measure)
				pooledSec := autotune.MeasureSecPerOp(func() { k.RunPooled(mat, x, y, pool) }, cfg.Measure)
				row := SteadyRow{
					Workload:     w.name,
					Format:       f.String(),
					Kernel:       k.Name,
					NNZ:          nnz,
					SpawnSec:     spawnSec,
					PooledSec:    pooledSec,
					SpawnGFLOPS:  autotune.GFLOPS(kernels.FLOPs(nnz), spawnSec),
					PooledGFLOPS: autotune.GFLOPS(kernels.FLOPs(nnz), pooledSec),
				}
				if pooledSec > 0 {
					row.Speedup = spawnSec / pooledSec
					logSum += math.Log(row.Speedup)
					logN++
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	if logN > 0 {
		res.GeoMeanSpeedup = math.Exp(logSum / float64(logN))
	}

	t := &table{header: []string{"Workload", "Format", "Kernel", "NNZ", "Spawn (us)", "Pooled (us)", "Speedup", "Pooled GFLOPS"}}
	for _, row := range res.Rows {
		t.add(row.Workload, row.Format, row.Kernel, fmt.Sprint(row.NNZ),
			fmt.Sprintf("%.1f", row.SpawnSec*1e6), fmt.Sprintf("%.1f", row.PooledSec*1e6),
			fmt.Sprintf("%.2fx", row.Speedup), f2(row.PooledGFLOPS))
	}
	fmt.Fprintf(cfg.Out, "Steady-state SpMV: per-call goroutine spawn vs persistent pool + cached plan (%d threads)\n", cfg.Threads)
	t.print(cfg.Out)
	t.saveTSV(cfg, "steady")
	fmt.Fprintf(cfg.Out, "geometric-mean pooled speedup over spawn: %.2fx across %d kernel/workload pairs\n",
		res.GeoMeanSpeedup, logN)
	return res
}

// SaveJSON writes the result as an indented JSON artifact (the BENCH_steady
// file committed alongside the code).
func (r *SteadyResult) SaveJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
