package bench

import (
	"fmt"

	"smat/internal/autotune"
	"smat/internal/corpus"
	"smat/internal/features"
	"smat/internal/matrix"
	"smat/internal/mining"
)

// AblationThresholdResult sweeps the runtime confidence threshold: low
// thresholds trust the model everywhere (cheap, less accurate on hard
// inputs); high thresholds fall back to measurement (accurate, expensive).
type AblationThresholdResult struct {
	Rows []AblationThresholdRow
}

// AblationThresholdRow is one threshold setting.
type AblationThresholdRow struct {
	Threshold    float64
	Accuracy     float64
	FallbackRate float64
	MeanOverhead float64
	N            int
}

// AblationThreshold evaluates the accuracy/overhead trade-off of the
// confidence threshold on the sampled evaluation split.
func AblationThreshold(cfg Config, thresholds []float64) *AblationThresholdResult {
	cfg = cfg.withDefaults()
	if len(thresholds) == 0 {
		thresholds = []float64{0.05, 0.25, 0.50, 0.75, 0.85, 0.95, 1.0}
	}
	c := corpus.New(cfg.Scale, cfg.Seed)
	_, eval := c.Split(len(c.Entries)*6/7, cfg.Seed)
	labeler := autotune.NewLabeler(cfg.choice(), cfg.Threads, cfg.Measure)

	// Pre-label the sample once.
	type sample struct {
		m    *matrix.CSR[float64]
		best matrix.Format
	}
	var samples []sample
	for i, e := range eval {
		if cfg.Stride > 1 && i%cfg.Stride != 0 {
			continue
		}
		m := e.Matrix()
		samples = append(samples, sample{m, labeler.Label(m).Best})
	}

	res := &AblationThresholdResult{}
	for _, th := range thresholds {
		model := *cfg.Model
		model.ConfidenceThreshold = th
		tuner := autotune.NewTuner[float64](&model, cfg.Threads)
		row := AblationThresholdRow{Threshold: th}
		var ovSum float64
		fallbacks := 0
		right := 0
		for _, s := range samples {
			_, dec, err := tuner.Tune(s.m)
			if err != nil {
				continue
			}
			if dec.Chosen == s.best {
				right++
			}
			if dec.UsedFallback {
				fallbacks++
			}
			ovSum += dec.Overhead()
			row.N++
		}
		if row.N > 0 {
			row.Accuracy = float64(right) / float64(row.N)
			row.FallbackRate = float64(fallbacks) / float64(row.N)
			row.MeanOverhead = ovSum / float64(row.N)
		}
		res.Rows = append(res.Rows, row)
	}

	t := &table{header: []string{"Threshold", "Accuracy", "FallbackRate", "MeanOverhead", "N"}}
	for _, row := range res.Rows {
		t.add(f2(row.Threshold), f2(100*row.Accuracy)+"%", f2(100*row.FallbackRate)+"%",
			f2(row.MeanOverhead)+"x", fmt.Sprint(row.N))
	}
	fmt.Fprintln(cfg.Out, "Ablation: confidence threshold sweep (accuracy vs overhead)")
	t.print(cfg.Out)
	return res
}

// AblationTailoringResult compares the full extracted ruleset against the
// tailored prefix (Section 6: the paper cuts 40 rules to 15 within 1%
// accuracy).
type AblationTailoringResult struct {
	FullRules, TailoredRules       int
	FullAccuracy, TailoredAccuracy float64
}

// AblationTailoring trains a model on the sampled training split and
// evaluates both rulesets on the sampled evaluation split.
func AblationTailoring(cfg Config) (*AblationTailoringResult, error) {
	cfg = cfg.withDefaults()
	res, evalDS, err := trainForAblation(cfg)
	if err != nil {
		return nil, err
	}
	out := &AblationTailoringResult{
		FullRules:        res.FullRules,
		TailoredRules:    res.TailoredRules,
		FullAccuracy:     res.FullRuleset.Accuracy(evalDS),
		TailoredAccuracy: res.Model.Ruleset.Accuracy(evalDS),
	}
	fmt.Fprintln(cfg.Out, "Ablation: rule tailoring")
	t := &table{header: []string{"Ruleset", "Rules", "EvalAccuracy"}}
	t.add("full", fmt.Sprint(out.FullRules), f2(100*out.FullAccuracy)+"%")
	t.add("tailored", fmt.Sprint(out.TailoredRules), f2(100*out.TailoredAccuracy)+"%")
	t.print(cfg.Out)
	return out, nil
}

// AblationFeaturesResult measures the contribution of the paper's two
// refinement parameters (NTdiags_ratio, var_RD — the ones Section 4 adds
// after observing ER_DIA/ER_ELL alone are too coarse) by retraining without
// them.
type AblationFeaturesResult struct {
	FullAccuracy    float64
	ReducedAccuracy float64
	Dropped         []string
}

// AblationFeatures trains once, then relearns on a dataset with the
// refinement attributes removed and compares held-out accuracy.
func AblationFeatures(cfg Config) (*AblationFeaturesResult, error) {
	cfg = cfg.withDefaults()
	res, evalDS, err := trainForAblation(cfg)
	if err != nil {
		return nil, err
	}
	dropped := []string{"NTdiags_ratio", "var_RD"}
	keep := make([]int, 0, len(features.AttributeNames))
	var keptNames []string
	for i, n := range features.AttributeNames {
		isDropped := false
		for _, d := range dropped {
			if n == d {
				isDropped = true
				break
			}
		}
		if !isDropped {
			keep = append(keep, i)
			keptNames = append(keptNames, n)
		}
	}
	project := func(ds *mining.Dataset) *mining.Dataset {
		out := &mining.Dataset{AttrNames: keptNames, ClassNames: ds.ClassNames}
		for _, ex := range ds.Examples {
			attrs := make([]float64, len(keep))
			for j, idx := range keep {
				attrs[j] = ex.Attrs[idx]
			}
			out.Examples = append(out.Examples, mining.Example{Attrs: attrs, Label: ex.Label})
		}
		return out
	}
	redTrain := project(res.Dataset)
	redEval := project(evalDS)
	tree, err := mining.BuildTree(redTrain, mining.TreeConfig{})
	if err != nil {
		return nil, err
	}
	reduced := mining.RulesFromTree(tree, redTrain)

	out := &AblationFeaturesResult{
		FullAccuracy:    res.FullRuleset.Accuracy(evalDS),
		ReducedAccuracy: reduced.Accuracy(redEval),
		Dropped:         dropped,
	}
	fmt.Fprintln(cfg.Out, "Ablation: refinement features (drop NTdiags_ratio and var_RD)")
	t := &table{header: []string{"Features", "EvalAccuracy"}}
	t.add("all 11", f2(100*out.FullAccuracy)+"%")
	t.add("without refinements", f2(100*out.ReducedAccuracy)+"%")
	t.print(cfg.Out)
	return out, nil
}

// trainForAblation trains on the sampled training split and labels the
// sampled evaluation split into a held-out dataset.
func trainForAblation(cfg Config) (*autotune.TrainResult, *mining.Dataset, error) {
	c := corpus.New(cfg.Scale, cfg.Seed)
	train, eval := c.Split(len(c.Entries)*6/7, cfg.Seed)
	var trainSample []*corpus.Entry
	for i, e := range train {
		if cfg.Stride > 1 && i%cfg.Stride != 0 {
			continue
		}
		trainSample = append(trainSample, e)
	}
	res, err := autotune.Train(trainSample, autotune.TrainConfig{
		Threads:          cfg.Threads,
		Measure:          cfg.Measure,
		SkipKernelSearch: true,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	// Label the held-out set with the same (basic) kernels the training
	// labels used, so both splits share one ground truth.
	labeler := autotune.NewLabeler(nil, cfg.Threads, cfg.Measure)
	evalDS := &mining.Dataset{AttrNames: res.Dataset.AttrNames, ClassNames: res.Dataset.ClassNames}
	for i, e := range eval {
		if cfg.Stride > 1 && i%cfg.Stride != 0 {
			continue
		}
		m := e.Matrix()
		evalDS.Examples = append(evalDS.Examples, mining.Example{
			Attrs: featVec(m),
			Label: int(labeler.Label(m).Best),
		})
	}
	return res, evalDS, nil
}

// AblationScoreboardResult compares, per format, the scoreboard-chosen
// kernel against the exhaustively-best and the basic implementation on the
// search probes.
type AblationScoreboardResult struct {
	Rows []AblationScoreboardRow
}

// AblationScoreboardRow is one format.
type AblationScoreboardRow struct {
	Format                          matrix.Format
	Chosen                          string
	ChosenGFLOPS, BestGFLOPS, Basic float64
	BestKernel                      string
}

// AblationScoreboard runs the kernel search and checks how close the
// scoreboard pick is to the exhaustive optimum.
func AblationScoreboard(cfg Config) *AblationScoreboardResult {
	cfg = cfg.withDefaults()
	_, results := autotune.SearchKernels(autotune.SearchConfig{
		Threads:    cfg.Threads,
		ProbeScale: cfg.Scale,
		Measure:    cfg.Measure,
		Seed:       cfg.Seed,
	})
	res := &AblationScoreboardResult{}
	for _, r := range results {
		row := AblationScoreboardRow{Format: r.Format, Chosen: r.Best}
		for _, rec := range r.Table {
			if rec.Kernel == r.Best {
				row.ChosenGFLOPS = rec.GFLOPS
			}
			if rec.GFLOPS > row.BestGFLOPS {
				row.BestGFLOPS = rec.GFLOPS
				row.BestKernel = rec.Kernel
			}
			if rec.Strategies == 0 {
				row.Basic = rec.GFLOPS
			}
		}
		res.Rows = append(res.Rows, row)
	}

	t := &table{header: []string{"Format", "Scoreboard pick", "GFLOPS", "Exhaustive best", "GFLOPS", "Basic GFLOPS"}}
	for _, row := range res.Rows {
		t.add(row.Format.String(), row.Chosen, f2(row.ChosenGFLOPS),
			row.BestKernel, f2(row.BestGFLOPS), f2(row.Basic))
	}
	fmt.Fprintln(cfg.Out, "Ablation: scoreboard kernel search vs exhaustive search vs basic kernels")
	t.print(cfg.Out)
	return res
}

// featVec extracts a matrix's feature vector.
func featVec(m *matrix.CSR[float64]) []float64 {
	f := features.Extract(m)
	return f.Vector()
}
