package bench

import (
	"fmt"
	"math"
	"time"

	"smat/internal/autotune"
	"smat/internal/corpus"
	"smat/internal/matrix"
)

// CacheBenchResult compares the serving runtime's tuning regimes on the
// representative matrices: a cold Tune under the model's own threshold
// (usually the predicted path), a cold Tune forced onto the
// execute-and-measure fallback (confidence threshold 0.999 — the regime the
// cache amortises), and a Tune that hits the sharded decision cache
// (feature extraction, fingerprint lookup, format conversion).
type CacheBenchResult struct {
	Rows []CacheBenchRow
	// GeoMeanSpeedup / GeoMeanSpeedupMeasured are geometric means of the
	// per-matrix cold/hit ratios for the predicted-path and forced-fallback
	// cold regimes respectively.
	GeoMeanSpeedup         float64
	GeoMeanSpeedupMeasured float64
	// Stats is the warm tuner's decision-cache counters after the run.
	Stats autotune.CacheStats
}

// CacheBenchRow is one matrix's cold-vs-cached comparison.
type CacheBenchRow struct {
	Number          int
	Name            string
	Chosen          matrix.Format
	Fallback        bool // cold decision took the execute-and-measure path
	ColdSec         float64
	MeasureSec      float64 // cold Tune with the fallback forced (threshold 0.999)
	HitSec          float64
	Speedup         float64
	SpeedupMeasured float64
}

// CacheBench times the decision cache on every representative matrix. Both
// tuners share the model and thread count; the cold tuner runs with caching
// disabled, the warm tuner is primed once and then timed on the hit path.
// Timings are best-of-N to shed scheduler noise.
func CacheBench(cfg Config) *CacheBenchResult {
	cfg = cfg.withDefaults()
	res := &CacheBenchResult{}

	cold := autotune.New[float64](cfg.Model, autotune.Config{Threads: cfg.Threads, CacheSize: -1})
	measure := autotune.New[float64](cfg.Model, autotune.Config{Threads: cfg.Threads, CacheSize: -1, ConfidenceThreshold: 0.999})
	warm := autotune.New[float64](cfg.Model, autotune.Config{Threads: cfg.Threads})

	minOver := func(n int, tune func() error) (float64, error) {
		best := 0.0
		for i := 0; i < n; i++ {
			start := time.Now()
			if err := tune(); err != nil {
				return 0, err
			}
			if sec := time.Since(start).Seconds(); i == 0 || sec < best {
				best = sec
			}
		}
		return best, nil
	}

	logSum, logSumMeasured, logN := 0.0, 0.0, 0
	for i, e := range corpus.Representatives(cfg.Scale) {
		m := e.Matrix()
		row := CacheBenchRow{Number: i + 1, Name: e.Name}

		var dec *autotune.Decision
		coldSec, err := minOver(3, func() error {
			_, d, err := cold.Tune(m)
			dec = d
			return err
		})
		if err != nil {
			row.Name += " (error: " + err.Error() + ")"
			res.Rows = append(res.Rows, row)
			continue
		}
		row.Fallback = dec.UsedFallback

		measureSec, err := minOver(2, func() error {
			_, _, err := measure.Tune(m)
			return err
		})
		if err != nil {
			row.Name += " (error: " + err.Error() + ")"
			res.Rows = append(res.Rows, row)
			continue
		}

		if _, _, err := warm.Tune(m); err != nil { // prime the cache
			row.Name += " (error: " + err.Error() + ")"
			res.Rows = append(res.Rows, row)
			continue
		}
		hitSec, err := minOver(5, func() error {
			_, d, err := warm.Tune(m)
			dec = d
			return err
		})
		if err != nil {
			row.Name += " (error: " + err.Error() + ")"
			res.Rows = append(res.Rows, row)
			continue
		}
		row.Chosen = dec.Chosen
		row.ColdSec = coldSec
		row.MeasureSec = measureSec
		row.HitSec = hitSec
		if hitSec > 0 {
			row.Speedup = coldSec / hitSec
			row.SpeedupMeasured = measureSec / hitSec
			logSum += math.Log(row.Speedup)
			logSumMeasured += math.Log(row.SpeedupMeasured)
			logN++
		}
		res.Rows = append(res.Rows, row)
	}
	if logN > 0 {
		res.GeoMeanSpeedup = math.Exp(logSum / float64(logN))
		res.GeoMeanSpeedupMeasured = math.Exp(logSumMeasured / float64(logN))
	}
	res.Stats = warm.Stats()

	t := &table{header: []string{"No.", "Matrix", "Chosen", "Path", "Cold (us)", "Measured (us)", "Hit (us)", "Speedup", "vs Measured"}}
	for _, row := range res.Rows {
		path := "predicted"
		if row.Fallback {
			path = "fallback"
		}
		t.add(fmt.Sprint(row.Number), row.Name, row.Chosen.String(), path,
			fmt.Sprintf("%.1f", row.ColdSec*1e6), fmt.Sprintf("%.1f", row.MeasureSec*1e6),
			fmt.Sprintf("%.1f", row.HitSec*1e6),
			fmt.Sprintf("%.1fx", row.Speedup), fmt.Sprintf("%.1fx", row.SpeedupMeasured))
	}
	fmt.Fprintln(cfg.Out, "Decision cache: cold Tune vs cache-hit Tune per representative matrix")
	fmt.Fprintln(cfg.Out, "(Measured = cold Tune with the execute-and-measure fallback forced, threshold 0.999)")
	t.print(cfg.Out)
	t.saveTSV(cfg, "cache")
	st := res.Stats
	fmt.Fprintf(cfg.Out, "geometric-mean speedup: %.1fx over the cold path, %.1fx over the measured path\n",
		res.GeoMeanSpeedup, res.GeoMeanSpeedupMeasured)
	fmt.Fprintf(cfg.Out, "warm tuner cache: %d hits, %d misses, %d shared, %d refreshes, %d/%d entries (hit rate %.1f%%)\n",
		st.Hits, st.Misses, st.Shared, st.Refreshes, st.Size, st.Capacity, 100*st.HitRate())
	return res
}
