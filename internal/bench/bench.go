// Package bench regenerates the paper's evaluation: every table and figure
// has a function here that builds the workload, runs the measurement, and
// prints rows in the paper's shape. cmd/smat-bench drives it from the
// command line; the root-level benchmarks drive the same code under
// testing.B.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"smat/internal/autotune"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// Config is shared by all experiments.
type Config struct {
	// Scale shrinks every workload's matrix dimensions, (0, 1].
	Scale float64
	// Threads is "platform A" (default GOMAXPROCS); ThreadsB is "platform
	// B", the second architecture configuration (default half of A, min 1).
	Threads, ThreadsB int
	// Model drives SMAT decisions (required; cmd/smat-bench loads a trained
	// model or falls back to the heuristic one).
	Model *autotune.Model
	// Measure controls timing windows.
	Measure autotune.MeasureOptions
	// Stride samples every k-th corpus entry in corpus-wide experiments
	// (1 = all 2386).
	Stride int
	// Seed feeds workload generators.
	Seed int64
	// Out receives the printed experiment (default: discard).
	Out io.Writer
	// DataDir, when set, receives one tab-separated data file per
	// experiment (plot-ready series).
	DataDir string
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 || c.Scale > 1 {
		c.Scale = 1
	}
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.ThreadsB <= 0 {
		c.ThreadsB = max(1, c.Threads/2)
	}
	if c.Stride < 1 {
		c.Stride = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
	return c
}

// choice extracts the model's per-format kernel choice.
func (c Config) choice() autotune.KernelChoice {
	out := autotune.KernelChoice{}
	for name, kernel := range c.Model.Kernels {
		f, err := matrix.ParseFormat(name)
		if err == nil {
			out[f] = kernel
		}
	}
	return out
}

// measureOperator times an already-tuned operator and returns GFLOPS.
func measureOperator[T matrix.Float](op interface{ MulVec(x, y []T) }, cols, rows, nnz int,
	m autotune.MeasureOptions) float64 {
	x := make([]T, cols)
	for i := range x {
		x[i] = T(1) + T(i%7)/8
	}
	y := make([]T, rows)
	sec := autotune.MeasureSecPerOp(func() { op.MulVec(x, y) }, m)
	return autotune.GFLOPS(kernels.FLOPs(nnz), sec)
}

// castCSR converts an assembled float64 matrix to float32 for the
// single-precision axis of Figures 9 and 10.
func castCSR(m *matrix.CSR[float64]) *matrix.CSR[float32] {
	out := &matrix.CSR[float32]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Vals:   make([]float32, len(m.Vals)),
	}
	for i, v := range m.Vals {
		out.Vals[i] = float32(v)
	}
	return out
}

// table is a minimal fixed-width table printer for paper-style output.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) print(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// saveTSV writes the table as a tab-separated data file under cfg.DataDir
// (no-op when DataDir is empty). Errors are reported on cfg.Out rather than
// failing the experiment: the printed table is the primary artifact.
func (t *table) saveTSV(cfg Config, name string) {
	if cfg.DataDir == "" {
		return
	}
	path := filepath.Join(cfg.DataDir, name+".tsv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(cfg.Out, "(tsv export failed: %v)\n", err)
		return
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, strings.Join(t.header, "\t"))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(cfg.Out, "(tsv export failed: %v)\n", err)
	}
}
