package bench

import (
	"fmt"

	"smat/internal/autotune"
	"smat/internal/corpus"
	"smat/internal/matrix"
)

// Table1Result reproduces the paper's Table 1: per application domain, the
// number of corpus matrices whose measured best format is CSR / COO / DIA /
// ELL.
type Table1Result struct {
	Rows    []Table1Row
	Totals  map[matrix.Format]int
	Percent map[matrix.Format]float64
	N       int
}

// Table1Row is one application-domain line.
type Table1Row struct {
	Domain string
	Counts map[matrix.Format]int
	Total  int
}

// Table1 labels the (stride-sampled) corpus by exhaustive measurement and
// tallies format affinity per application domain.
func Table1(cfg Config) *Table1Result {
	cfg = cfg.withDefaults()
	c := corpus.New(cfg.Scale, cfg.Seed)
	labeler := autotune.NewLabeler(cfg.choice(), cfg.Threads, cfg.Measure)

	res := &Table1Result{
		Totals:  map[matrix.Format]int{},
		Percent: map[matrix.Format]float64{},
	}
	perDomain := map[string]*Table1Row{}
	var order []string
	for _, e := range c.Sample(cfg.Stride) {
		lbl := labeler.Label(e.Matrix())
		row, ok := perDomain[e.Domain]
		if !ok {
			row = &Table1Row{Domain: e.Domain, Counts: map[matrix.Format]int{}}
			perDomain[e.Domain] = row
			order = append(order, e.Domain)
		}
		row.Counts[lbl.Best]++
		row.Total++
		res.Totals[lbl.Best]++
		res.N++
	}
	for _, d := range order {
		res.Rows = append(res.Rows, *perDomain[d])
	}
	if res.N > 0 {
		for f, n := range res.Totals {
			res.Percent[f] = 100 * float64(n) / float64(res.N)
		}
	}

	t := &table{header: []string{"Application Domains", "CSR", "COO", "DIA", "ELL", "Total"}}
	for _, row := range res.Rows {
		t.add(row.Domain,
			fmt.Sprint(row.Counts[matrix.FormatCSR]), fmt.Sprint(row.Counts[matrix.FormatCOO]),
			fmt.Sprint(row.Counts[matrix.FormatDIA]), fmt.Sprint(row.Counts[matrix.FormatELL]),
			fmt.Sprint(row.Total))
	}
	t.add("Percentage",
		f2(res.Percent[matrix.FormatCSR])+"%", f2(res.Percent[matrix.FormatCOO])+"%",
		f2(res.Percent[matrix.FormatDIA])+"%", f2(res.Percent[matrix.FormatELL])+"%",
		fmt.Sprint(res.N))
	fmt.Fprintln(cfg.Out, "Table 1: application domains and distribution of affinity to each format")
	t.print(cfg.Out)
	t.saveTSV(cfg, "table1")
	return res
}
