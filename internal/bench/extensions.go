package bench

import (
	"fmt"
	"math/rand"

	"smat/internal/autotune"
	"smat/internal/gen"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// ExtensionsResult measures the opt-in extension formats (HYB, BCSR) against
// the basic four on their home-turf workloads — the quantitative half of the
// paper's extensibility claim (the qualitative half being that adding them
// touched only the registry).
type ExtensionsResult struct {
	Rows []ExtensionsRow
}

// ExtensionsRow is one workload.
type ExtensionsRow struct {
	Workload string
	// GFLOPS per format (best kernel of each); missing formats were
	// infeasible under the fill guard.
	GFLOPS map[matrix.Format]string
	Best   matrix.Format
}

// Extensions measures every registered format (including HYB and BCSR) on a
// skewed-regular workload (HYB territory) and a block-structured workload
// (BCSR territory).
func Extensions(cfg Config) *ExtensionsResult {
	cfg = cfg.withDefaults()
	lib := kernels.NewLibrary[float64]()
	lib.RegisterHYB()
	lib.RegisterBCSR()
	rng := rand.New(rand.NewSource(cfg.Seed))

	dim := func(n int) int {
		d := int(float64(n) * cfg.Scale)
		if d < 64 {
			d = 64
		}
		return d
	}
	workloads := []struct {
		name  string
		build func() *matrix.CSR[float64]
	}{
		{"skewed-regular (HYB territory)", func() *matrix.CSR[float64] {
			return skewedRegular(dim(120000), rng)
		}},
		{"block-structured (BCSR territory)", func() *matrix.CSR[float64] {
			return blockStructured(dim(30000), rng)
		}},
		{"stencil (DIA territory)", func() *matrix.CSR[float64] {
			k := dim(400)
			return gen.Laplacian2D5pt[float64](k, k)
		}},
	}
	formats := append(append([]matrix.Format{}, matrix.Formats[:]...),
		matrix.FormatHYB, matrix.FormatBCSR)

	res := &ExtensionsResult{}
	for _, w := range workloads {
		m := w.build()
		x := make([]float64, m.Cols)
		for i := range x {
			x[i] = 1
		}
		y := make([]float64, m.Rows)
		flops := kernels.FLOPs(m.NNZ())
		row := ExtensionsRow{Workload: w.name, GFLOPS: map[matrix.Format]string{}}
		bestG := 0.0
		for _, f := range formats {
			mat, err := kernels.Convert(m, f, 8)
			if err != nil {
				row.GFLOPS[f] = "-"
				continue
			}
			best := 0.0
			for _, k := range lib.ForFormat(f) {
				sec := autotune.MeasureSecPerOp(func() { k.Run(mat, x, y, cfg.Threads) }, cfg.Measure)
				if g := autotune.GFLOPS(flops, sec); g > best {
					best = g
				}
			}
			row.GFLOPS[f] = f2(best)
			if best > bestG {
				bestG = best
				row.Best = f
			}
		}
		res.Rows = append(res.Rows, row)
	}

	t := &table{header: []string{"Workload", "CSR", "COO", "DIA", "ELL", "HYB", "BCSR", "Best"}}
	for _, row := range res.Rows {
		t.add(row.Workload,
			row.GFLOPS[matrix.FormatCSR], row.GFLOPS[matrix.FormatCOO],
			row.GFLOPS[matrix.FormatDIA], row.GFLOPS[matrix.FormatELL],
			row.GFLOPS[matrix.FormatHYB], row.GFLOPS[matrix.FormatBCSR],
			row.Best.String())
	}
	fmt.Fprintln(cfg.Out, "Extensions: HYB and BCSR vs the basic formats (GFLOPS, best kernel per format)")
	t.print(cfg.Out)
	t.saveTSV(cfg, "extensions")
	return res
}

// skewedRegular builds mostly degree-2 near-band rows plus rare heavy rows.
func skewedRegular(n int, rng *rand.Rand) *matrix.CSR[float64] {
	var ts []matrix.Triple[float64]
	for r := 0; r < n; r++ {
		if r%2000 == 0 {
			for _, c := range sampleCols(n, 1500, rng) {
				ts = append(ts, matrix.Triple[float64]{Row: r, Col: c, Val: 1})
			}
			continue
		}
		c1 := (r + 1 + rng.Intn(64)) % n
		c2 := (r + 128 + rng.Intn(64)) % n
		ts = append(ts, matrix.Triple[float64]{Row: r, Col: c1, Val: 1})
		if c2 != c1 {
			ts = append(ts, matrix.Triple[float64]{Row: r, Col: c2, Val: 1})
		}
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

// blockStructured builds a banded matrix of dense 4x4 blocks.
func blockStructured(n int, rng *rand.Rand) *matrix.CSR[float64] {
	nb := n / 4
	var ts []matrix.Triple[float64]
	for bi := 0; bi < nb; bi++ {
		for _, off := range []int{-2, 0, 2} {
			bj := bi + off + rng.Intn(2)
			if bj < 0 || bj >= nb {
				continue
			}
			for lr := 0; lr < 4; lr++ {
				for lc := 0; lc < 4; lc++ {
					ts = append(ts, matrix.Triple[float64]{Row: bi*4 + lr, Col: bj*4 + lc, Val: 1})
				}
			}
		}
	}
	m, err := matrix.FromTriples(nb*4, nb*4, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func sampleCols(n, k int, rng *rand.Rand) []int {
	seen := map[int]bool{}
	out := make([]int, 0, k)
	for len(out) < k && len(out) < n {
		c := rng.Intn(n)
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
