package bench

import (
	"fmt"
	"time"

	"smat/internal/amg"
	"smat/internal/autotune"
	"smat/internal/gen"
	"smat/internal/kernels"
	"smat/internal/matrix"
)

// Figure1Result reproduces Figure 1: the sequence of grid operators an AMG
// setup generates from one input matrix, with the per-format SpMV
// performance at every level — demonstrating that the optimal format changes
// across levels of a single application run.
type Figure1Result struct {
	Rows []Figure1Row
}

// Figure1Row is one AMG level.
type Figure1Row struct {
	Level  int
	Rows   int
	NNZ    int
	GFLOPS map[matrix.Format]float64
	Best   matrix.Format
}

// Figure1 builds an AMG hierarchy on a 3D 7-point Laplacian (the paper's
// Figure 1 input) and labels every level operator.
func Figure1(cfg Config) (*Figure1Result, error) {
	cfg = cfg.withDefaults()
	n := scaledGrid(34, cfg.Scale)
	a := gen.Laplacian3D7pt[float64](n, n, n)
	h, err := amg.Setup(a, amg.Options{Coarsening: amg.CLJP, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	labeler := autotune.NewLabeler(cfg.choice(), cfg.Threads, cfg.Measure)
	res := &Figure1Result{}
	for li, lvl := range h.Levels {
		lbl := labeler.Label(lvl.A)
		res.Rows = append(res.Rows, Figure1Row{
			Level:  li,
			Rows:   lvl.A.Rows,
			NNZ:    lvl.A.NNZ(),
			GFLOPS: lbl.GFLOPS,
			Best:   lbl.Best,
		})
	}

	t := &table{header: []string{"Level", "Rows", "NNZ", "CSR", "COO", "DIA", "ELL", "Best"}}
	for _, row := range res.Rows {
		cell := func(f matrix.Format) string {
			if g, ok := row.GFLOPS[f]; ok {
				return f2(g)
			}
			return "-"
		}
		t.add(fmt.Sprint(row.Level), fmt.Sprint(row.Rows), fmt.Sprint(row.NNZ),
			cell(matrix.FormatCSR), cell(matrix.FormatCOO),
			cell(matrix.FormatDIA), cell(matrix.FormatELL), row.Best.String())
	}
	fmt.Fprintln(cfg.Out, "Figure 1: dynamic sparse structures across AMG levels (GFLOPS per format)")
	t.print(cfg.Out)
	t.saveTSV(cfg, "figure1")
	return res, nil
}

// Table4Result reproduces Table 4: the AMG solve-phase time with plain-CSR
// SpMV (the Hypre proxy) versus SMAT-tuned SpMV, for the paper's two
// configurations (cljp coarsening on a 3D 7-point problem, Ruge–Stüben on a
// 2D 9-point problem).
type Table4Result struct {
	Rows []Table4Row
}

// Table4Row is one solver configuration.
type Table4Row struct {
	Name      string
	Rows      int
	Levels    int
	BaseMS    float64 // plain-CSR solve time
	SmatMS    float64 // SMAT-bound solve time
	TuneMS    float64 // one-time SMAT tuning of all level operators
	Speedup   float64
	BaseIters int
	SmatIters int
	Formats   []string // chosen format per level operator A_l
}

// csrFactory binds levels to the parallel CSR kernel: the fixed-format
// baseline, standing in for Hypre's native CSR SpMV.
func csrFactory(threads int) amg.OperatorFactory[float64] {
	lib := kernels.NewLibrary[float64]()
	k := lib.Lookup("csr_parallel")
	return func(m *matrix.CSR[float64]) (amg.SpMV[float64], error) {
		mat := &kernels.Mat[float64]{Format: matrix.FormatCSR, CSR: m}
		return spmvFunc[float64](func(x, y []float64) { k.Run(mat, x, y, threads) }), nil
	}
}

type spmvFunc[T matrix.Float] func(x, y []T)

func (f spmvFunc[T]) MulVec(x, y []T) { f(x, y) }

// Table4 runs both AMG configurations to a fixed tolerance with each SpMV
// binding and reports solve-phase times.
func Table4(cfg Config) (*Table4Result, error) {
	cfg = cfg.withDefaults()
	res := &Table4Result{}
	configs := []struct {
		name  string
		build func() *matrix.CSR[float64]
		opts  amg.Options
	}{
		{
			// Paper: "cljp 7pt 50" — 50³ = 125K rows.
			name: "cljp_7pt",
			build: func() *matrix.CSR[float64] {
				n := scaledGrid(50, cfg.Scale)
				return gen.Laplacian3D7pt[float64](n, n, n)
			},
			opts: amg.Options{Coarsening: amg.CLJP, Seed: cfg.Seed},
		},
		{
			// Paper: "rugeL 9pt 500" — 500² = 250K rows.
			name:  "rugeL_9pt",
			build: func() *matrix.CSR[float64] { n := scaledGrid(500, cfg.Scale); return gen.Laplacian2D9pt[float64](n, n) },
			opts:  amg.Options{Coarsening: amg.RugeStueben},
		},
	}
	for _, c := range configs {
		a := c.build()
		h, err := amg.Setup(a, c.opts)
		if err != nil {
			return nil, fmt.Errorf("bench: %s setup: %w", c.name, err)
		}
		row := Table4Row{Name: c.name, Rows: a.Rows, Levels: len(h.Levels)}

		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = 1
		}
		x := make([]float64, a.Rows)
		solve := func() (time.Duration, int) {
			clear(x)
			start := time.Now()
			stats := h.Solve(b, x, 1e-8, 100)
			return time.Since(start), stats.Iterations
		}

		if err := h.Bind(csrFactory(cfg.Threads)); err != nil {
			return nil, err
		}
		solve() // warm-up
		dBase, itBase := solve()
		row.BaseMS = float64(dBase.Microseconds()) / 1000
		row.BaseIters = itBase

		tuner := autotune.NewTuner[float64](cfg.Model, cfg.Threads)
		tuneStart := time.Now()
		var formats []string
		err = h.Bind(func(m *matrix.CSR[float64]) (amg.SpMV[float64], error) {
			op, _, err := tuner.Tune(m)
			if err != nil {
				return nil, err
			}
			formats = append(formats, op.Format().String())
			return op, nil
		})
		if err != nil {
			return nil, err
		}
		row.TuneMS = float64(time.Since(tuneStart).Microseconds()) / 1000
		// Bind visits A, P, R per level; keep only the A formats (every
		// third entry starting at 0 for non-coarsest levels, last is the
		// coarsest A).
		for i := 0; i < len(formats); i += 3 {
			row.Formats = append(row.Formats, formats[i])
		}
		solve() // warm-up
		dSmat, itSmat := solve()
		row.SmatMS = float64(dSmat.Microseconds()) / 1000
		row.SmatIters = itSmat
		if row.SmatMS > 0 {
			row.Speedup = row.BaseMS / row.SmatMS
		}
		res.Rows = append(res.Rows, row)
	}

	t := &table{header: []string{"Coarsen", "Rows", "Levels", "Hypre-proxy(ms)", "SMAT-AMG(ms)", "Speedup", "Tune(ms)", "A-formats"}}
	for _, row := range res.Rows {
		t.add(row.Name, fmt.Sprint(row.Rows), fmt.Sprint(row.Levels),
			f2(row.BaseMS), f2(row.SmatMS), f2(row.Speedup)+"x", f2(row.TuneMS),
			fmt.Sprint(row.Formats))
	}
	fmt.Fprintln(cfg.Out, "Table 4: SMAT-based AMG solve time vs plain-CSR AMG")
	t.print(cfg.Out)
	t.saveTSV(cfg, "table4")
	return res, nil
}

// scaledGrid scales a per-side grid dimension by the cube/square root-free
// linear factor, with a floor that keeps AMG meaningful.
func scaledGrid(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 12 {
		n = 12
	}
	return n
}
