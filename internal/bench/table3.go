package bench

import (
	"fmt"
	"sort"

	"smat/internal/autotune"
	"smat/internal/corpus"
	"smat/internal/matrix"
)

// Table3Result reproduces Table 3: per representative matrix, the model's
// prediction, the execute-and-measure fallback (if any), SMAT's final
// choice, the exhaustively-measured best format, whether SMAT was right, and
// the decision overhead in CSR-SpMV multiples — plus aggregate accuracy over
// the held-out evaluation split.
type Table3Result struct {
	Rows []Table3Row
	// EvalAccuracy is the fraction of sampled evaluation matrices where
	// SMAT's final choice matches the measured best format.
	EvalAccuracy float64
	EvalN        int
	// MeanOverheadPredicted / MeanOverheadFallback split the overhead by
	// decision path (the paper: ≈2–5× predicted, ≈15–16× fallback).
	MeanOverheadPredicted float64
	MeanOverheadFallback  float64
}

// Table3Row is one matrix's decision audit.
type Table3Row struct {
	Number     int
	Name       string
	Prediction string // predicted format or "confidence<TH"
	Execution  string // formats measured by the fallback, or "-"
	SmatChoice matrix.Format
	BestFormat matrix.Format
	Right      bool
	Overhead   float64
}

// Table3 audits the runtime decision on every representative matrix and
// aggregates accuracy over the evaluation split.
func Table3(cfg Config) *Table3Result {
	cfg = cfg.withDefaults()
	res := &Table3Result{}
	tuner := autotune.NewTuner[float64](cfg.Model, cfg.Threads)
	labeler := autotune.NewLabeler(cfg.choice(), cfg.Threads, cfg.Measure)

	var predSum, fbSum float64
	var predN, fbN int
	audit := func(i int, e *corpus.Entry) Table3Row {
		m := e.Matrix()
		_, dec, err := tuner.Tune(m)
		row := Table3Row{Number: i + 1, Name: e.Name}
		if err != nil {
			row.Prediction = "error: " + err.Error()
			return row
		}
		if dec.PredictedOK {
			row.Prediction = dec.Predicted.String()
		} else {
			row.Prediction = "confidence<TH"
		}
		if dec.UsedFallback {
			var fs []string
			for f := range dec.Measured {
				fs = append(fs, f.String())
			}
			sort.Strings(fs)
			row.Execution = ""
			for i, f := range fs {
				if i > 0 {
					row.Execution += "+"
				}
				row.Execution += f
			}
		} else {
			row.Execution = "-"
		}
		row.SmatChoice = dec.Chosen
		row.BestFormat = labeler.Label(m).Best
		row.Right = row.SmatChoice == row.BestFormat
		row.Overhead = dec.Overhead()
		if dec.UsedFallback {
			fbSum += row.Overhead
			fbN++
		} else {
			predSum += row.Overhead
			predN++
		}
		return row
	}

	for i, e := range corpus.Representatives(cfg.Scale) {
		res.Rows = append(res.Rows, audit(i, e))
	}

	// Aggregate accuracy over the evaluation split.
	c := corpus.New(cfg.Scale, cfg.Seed)
	_, eval := c.Split(len(c.Entries)*6/7, cfg.Seed)
	right := 0
	for i, e := range eval {
		if cfg.Stride > 1 && i%cfg.Stride != 0 {
			continue
		}
		m := e.Matrix()
		_, dec, err := tuner.Tune(m)
		if err != nil {
			continue
		}
		if dec.UsedFallback {
			fbSum += dec.Overhead()
			fbN++
		} else {
			predSum += dec.Overhead()
			predN++
		}
		if dec.Chosen == labeler.Label(m).Best {
			right++
		}
		res.EvalN++
	}
	if res.EvalN > 0 {
		res.EvalAccuracy = float64(right) / float64(res.EvalN)
	}
	if predN > 0 {
		res.MeanOverheadPredicted = predSum / float64(predN)
	}
	if fbN > 0 {
		res.MeanOverheadFallback = fbSum / float64(fbN)
	}

	t := &table{header: []string{"No.", "Matrix", "Model Prediction", "Execution", "SMAT", "Best", "Acc", "Overhead"}}
	for _, row := range res.Rows {
		acc := "W"
		if row.Right {
			acc = "R"
		}
		t.add(fmt.Sprint(row.Number), row.Name, row.Prediction, row.Execution,
			row.SmatChoice.String(), row.BestFormat.String(), acc, f2(row.Overhead))
	}
	fmt.Fprintln(cfg.Out, "Table 3: SMAT decision analysis (overhead in CSR-SpMV multiples)")
	t.print(cfg.Out)
	t.saveTSV(cfg, "table3")
	fmt.Fprintf(cfg.Out, "evaluation-set accuracy: %.1f%% over %d matrices\n", 100*res.EvalAccuracy, res.EvalN)
	fmt.Fprintf(cfg.Out, "mean overhead: predicted path %.1fx, fallback path %.1fx\n",
		res.MeanOverheadPredicted, res.MeanOverheadFallback)
	return res
}
