package amg

import (
	"testing"

	"smat/internal/gen"
)

// TestVCycleSteadyStateAllocs pins the satellite contract: once the
// hierarchy is set up, a V-cycle runs entirely in the per-level and
// per-factorisation workspaces — zero allocations per cycle.
func TestVCycleSteadyStateAllocs(t *testing.T) {
	a := gen.Laplacian2D5pt[float64](24, 24)
	h, err := Setup(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	x := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	h.VCycle(b, x) // warm
	if avg := testing.AllocsPerRun(20, func() { h.VCycle(b, x) }); avg != 0 {
		t.Errorf("steady-state V-cycle allocates %.1f times per run, want 0", avg)
	}
}

// TestSolvePCGSteadyStateAllocs pins the hoisted CG scratch: after the
// first solve through a hierarchy, repeated SolvePCG calls reuse it.
func TestSolvePCGSteadyStateAllocs(t *testing.T) {
	a := gen.Laplacian2D5pt[float64](16, 16)
	h, err := Setup(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	x := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	h.SolvePCG(b, x, 1e-8, 50) // warm: reserves the scratch
	if avg := testing.AllocsPerRun(5, func() {
		clear(x)
		h.SolvePCG(b, x, 1e-8, 50)
	}); avg != 0 {
		t.Errorf("steady-state SolvePCG allocates %.1f times per run, want 0", avg)
	}
}
