package amg

import (
	"math"
	"sort"

	"smat/internal/matrix"
)

// buildInterpolation constructs the classical direct-interpolation operator
// P (fine×coarse) from the splitting. C-point rows are identity; an F-point
// i interpolates from its strong C-neighbours C_i with weights
//
//	w_ij = -α_i · a_ij / ã_ii,   α_i = Σ_{k≠i, a_ik<0} a_ik / Σ_{j∈C_i} a_ij
//
// where positive off-diagonal couplings are lumped onto the diagonal ã_ii
// (the standard treatment for essentially negative-coupled problems).
func buildInterpolation[T matrix.Float](a *matrix.CSR[T], g *strengthGraph, split []int8, maxPerRow int) *matrix.CSR[T] {
	n := a.Rows
	var rowBuf []pEntry
	cmap := make([]int, n)
	nc := 0
	for i := 0; i < n; i++ {
		if split[i] == cPoint {
			cmap[i] = nc
			nc++
		} else {
			cmap[i] = -1
		}
	}
	p := &matrix.CSR[T]{Rows: n, Cols: nc, RowPtr: make([]int, n+1)}
	isStrongC := make(map[int]bool)
	for i := 0; i < n; i++ {
		if split[i] == cPoint {
			p.ColIdx = append(p.ColIdx, cmap[i])
			p.Vals = append(p.Vals, 1)
			p.RowPtr[i+1] = len(p.Vals)
			continue
		}
		clear(isStrongC)
		for _, j := range g.strongDeps(i) {
			if split[j] == cPoint {
				isStrongC[j] = true
			}
		}
		if len(isStrongC) == 0 {
			// Isolated F-point: no coarse correction; smoothing handles it.
			p.RowPtr[i+1] = len(p.Vals)
			continue
		}
		var diag, negSum, cSum, posSum float64
		for jj := a.RowPtr[i]; jj < a.RowPtr[i+1]; jj++ {
			j := a.ColIdx[jj]
			v := float64(a.Vals[jj])
			switch {
			case j == i:
				diag = v
			case v < 0:
				negSum += v
				if isStrongC[j] {
					cSum += v
				}
			default:
				posSum += v
			}
		}
		diag += posSum // lump positive couplings
		if diag == 0 || cSum == 0 {
			p.RowPtr[i+1] = len(p.Vals)
			continue
		}
		alpha := negSum / cSum
		row := rowBuf[:0]
		for jj := a.RowPtr[i]; jj < a.RowPtr[i+1]; jj++ {
			j := a.ColIdx[jj]
			if !isStrongC[j] {
				continue
			}
			row = append(row, pEntry{col: cmap[j], w: -alpha * float64(a.Vals[jj]) / diag})
		}
		row = truncateRow(row, maxPerRow)
		rowBuf = row
		for _, e := range row {
			p.ColIdx = append(p.ColIdx, e.col)
			p.Vals = append(p.Vals, T(e.w))
		}
		p.RowPtr[i+1] = len(p.Vals)
	}
	return p
}

// pEntry is one interpolation weight during row assembly.
type pEntry struct {
	col int
	w   float64
}

// truncateRow implements interpolation truncation (Hypre's Pmax): keep the
// maxEntries largest-magnitude weights and rescale so the row sum is
// preserved, which keeps the Galerkin coarse operators sparse (bounded
// operator complexity) at a negligible cost in convergence.
func truncateRow(row []pEntry, maxEntries int) []pEntry {
	if maxEntries <= 0 || len(row) <= maxEntries {
		sort.Slice(row, func(i, j int) bool { return row[i].col < row[j].col })
		return row
	}
	before := 0.0
	for _, e := range row {
		before += e.w
	}
	sort.Slice(row, func(i, j int) bool { return math.Abs(row[i].w) > math.Abs(row[j].w) })
	row = row[:maxEntries]
	after := 0.0
	for _, e := range row {
		after += e.w
	}
	if after != 0 {
		scale := before / after
		for i := range row {
			row[i].w *= scale
		}
	}
	sort.Slice(row, func(i, j int) bool { return row[i].col < row[j].col })
	return row
}
