package amg

import (
	"fmt"

	"smat/internal/kernels"
	"smat/internal/matrix"
	"smat/internal/solve"
)

// SpMV is the pluggable sparse matrix-vector product every solve-phase
// multiply goes through. SMAT's tuned operator satisfies it, as does the
// plain CSR fallback — swapping the factory is all it takes to put SMAT
// inside AMG, mirroring how the paper replaces Hypre's SpMV calls.
type SpMV[T matrix.Float] interface {
	MulVec(x, y []T)
}

// OperatorFactory turns a CSR matrix into the SpMV operator the solve phase
// will use for it.
type OperatorFactory[T matrix.Float] func(m *matrix.CSR[T]) (SpMV[T], error)

// Smoother selects the relaxation method.
type Smoother int

const (
	// Jacobi is weighted Jacobi relaxation; each sweep is one SpMV plus
	// vector updates, so the solve phase is SpMV-dominated (the property the
	// paper exploits).
	Jacobi Smoother = iota
	// GaussSeidel is a serial forward sweep on the raw CSR structure.
	GaussSeidel
)

// Options configures Setup.
type Options struct {
	// Theta is the strength threshold (default 0.25).
	Theta float64
	// Coarsening selects RugeStueben or CLJP.
	Coarsening Coarsening
	// MaxLevels bounds the hierarchy depth (default 25).
	MaxLevels int
	// CoarseSize is the dimension at which a level is solved directly
	// (default 64).
	CoarseSize int
	// Nu1, Nu2 are pre-/post-smoothing sweeps (default 1 each).
	Nu1, Nu2 int
	// Omega is the Jacobi damping factor (default 2/3).
	Omega float64
	// PMax truncates interpolation rows to this many entries (default 4,
	// Hypre's default; ≤ -1 disables truncation).
	PMax int
	// Smoother selects the relaxation (default Jacobi).
	Smoother Smoother
	// Gamma is the cycle index: 1 recursion per level is a V-cycle
	// (default), 2 a W-cycle.
	Gamma int
	// Seed feeds CLJP's random weights.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Theta <= 0 {
		o.Theta = 0.25
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 25
	}
	if o.CoarseSize <= 0 {
		o.CoarseSize = 64
	}
	if o.Nu1 <= 0 {
		o.Nu1 = 1
	}
	if o.Nu2 <= 0 {
		o.Nu2 = 1
	}
	if o.Omega <= 0 {
		o.Omega = 2.0 / 3.0
	}
	if o.PMax == 0 {
		o.PMax = 4
	}
	if o.Gamma <= 0 {
		o.Gamma = 1
	}
	return o
}

// Level is one grid of the hierarchy: the operator A, the transfer operators
// P (prolongation to this level) and R (restriction from this level), and
// the bound SpMV implementations.
type Level[T matrix.Float] struct {
	A    *matrix.CSR[T]
	P    *matrix.CSR[T] // fine(this)×coarse(next); nil on the coarsest level
	R    *matrix.CSR[T] // transpose of P
	Diag []T            // diagonal of A (Jacobi)

	aOp, pOp, rOp SpMV[T]

	// Workspaces sized to this level.
	x, b, tmp []T
}

// Hierarchy is a fully set-up AMG preconditioner/solver.
type Hierarchy[T matrix.Float] struct {
	Levels []*Level[T]
	lu     *denseLU[T]
	opts   Options
	cgws   solve.CGScratch[T] // reusable PCG workspace: SolvePCG allocates only on first use
}

// csrOp is the default operator: basic CSR SpMV.
type csrOp[T matrix.Float] struct{ m *matrix.CSR[T] }

func (o csrOp[T]) MulVec(x, y []T) {
	for i := 0; i < o.m.Rows; i++ {
		var sum T
		for jj := o.m.RowPtr[i]; jj < o.m.RowPtr[i+1]; jj++ {
			sum += o.m.Vals[jj] * x[o.m.ColIdx[jj]]
		}
		y[i] = sum
	}
}

// Setup builds the multigrid hierarchy from a square sparse operator:
// strength graph → coarsening → direct interpolation → Galerkin triple
// product per level, until the coarse-size or level limit. Operators default
// to plain CSR; call Bind to swap in tuned SpMVs. The Galerkin products run
// serially; SetupPooled parallelises them over a kernel worker pool.
func Setup[T matrix.Float](a *matrix.CSR[T], opts Options) (*Hierarchy[T], error) {
	return SetupPooled(a, opts, nil)
}

// SetupPooled is Setup with the Galerkin coarse-grid products — the setup
// phase's dominant cost — dispatched as row-blocked fused SpGEMM chunks
// over the given kernel worker pool (kernels.GalerkinRAP). A nil pool runs
// the same fused product serially, which already beats the two-pass
// matrix.TripleProduct by skipping the R·A intermediate. Sharing the
// tuner's pool (Tuner.Pool()) keeps setup and solve on one set of workers.
func SetupPooled[T matrix.Float](a *matrix.CSR[T], opts Options, pool *kernels.Pool[T]) (*Hierarchy[T], error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("amg: operator is %dx%d, want square", a.Rows, a.Cols)
	}
	opts = opts.withDefaults()
	h := &Hierarchy[T]{opts: opts}
	cur := a
	for len(h.Levels) < opts.MaxLevels-1 && cur.Rows > opts.CoarseSize {
		g := buildStrength(cur, opts.Theta)
		var split []int8
		if opts.Coarsening == CLJP {
			split = coarsenCLJP(g, opts.Seed+int64(len(h.Levels)))
		} else {
			split = coarsenRS(g)
		}
		enforceInterpolatable(g, split)
		p := buildInterpolation(cur, g, split, opts.PMax)
		if p.Cols == 0 || p.Cols >= cur.Rows {
			break // coarsening stalled
		}
		r := p.Transpose()
		lvl := &Level[T]{A: cur, P: p, R: r, Diag: cur.Diagonal()}
		h.Levels = append(h.Levels, lvl)
		cur = kernels.GalerkinRAP(r, cur, p, pool, 0)
	}
	h.Levels = append(h.Levels, &Level[T]{A: cur, Diag: cur.Diagonal()})
	for _, lvl := range h.Levels {
		lvl.x = make([]T, lvl.A.Rows)
		lvl.b = make([]T, lvl.A.Rows)
		lvl.tmp = make([]T, lvl.A.Rows)
		lvl.aOp = csrOp[T]{lvl.A}
		if lvl.P != nil {
			lvl.pOp = csrOp[T]{lvl.P}
			lvl.rOp = csrOp[T]{lvl.R}
		}
	}
	var err error
	h.lu, err = factorDense(cur)
	if err != nil {
		return nil, fmt.Errorf("amg: coarse factorisation: %w", err)
	}
	return h, nil
}

// Bind replaces every level's SpMV operators (A, P and R products) with
// operators produced by the factory — the SMAT integration point.
func (h *Hierarchy[T]) Bind(factory OperatorFactory[T]) error {
	for li, lvl := range h.Levels {
		op, err := factory(lvl.A)
		if err != nil {
			return fmt.Errorf("amg: bind level %d A: %w", li, err)
		}
		lvl.aOp = op
		if lvl.P != nil {
			if op, err = factory(lvl.P); err != nil {
				return fmt.Errorf("amg: bind level %d P: %w", li, err)
			}
			lvl.pOp = op
			if op, err = factory(lvl.R); err != nil {
				return fmt.Errorf("amg: bind level %d R: %w", li, err)
			}
			lvl.rOp = op
		}
	}
	return nil
}

// OperatorComplexity returns Σ nnz(A_l) / nnz(A_0), the standard AMG
// quality metric.
func (h *Hierarchy[T]) OperatorComplexity() float64 {
	total := 0
	for _, lvl := range h.Levels {
		total += lvl.A.NNZ()
	}
	if h.Levels[0].A.NNZ() == 0 {
		return 0
	}
	return float64(total) / float64(h.Levels[0].A.NNZ())
}
