// Package amg implements an algebraic multigrid solver in the style of
// Hypre's BoomerAMG, the application the paper evaluates SMAT inside
// (Section 7.4): strength-of-connection graphs, Ruge–Stüben and CLJP
// coarsening, direct interpolation, Galerkin coarse operators via sparse
// triple products, and a V-cycle with weighted-Jacobi or Gauss–Seidel
// smoothing. Every SpMV in the solve phase goes through a pluggable operator
// interface, so SMAT-tuned kernels drop in per level exactly as the paper
// drops SMAT into Hypre.
package amg

import "smat/internal/matrix"

// strengthGraph holds, per point, the points it strongly depends on (S) and
// the transpose relation (points that strongly depend on it, ST), both in
// CSR-like adjacency form.
type strengthGraph struct {
	n            int
	sPtr, sIdx   []int // i strongly depends on sIdx[sPtr[i]:sPtr[i+1]]
	stPtr, stIdx []int // points strongly depending on i
}

// buildStrength classifies connections with the classical criterion for
// essentially-negative-coupled problems: j strongly influences i when
// -a_ij ≥ theta · max_{k≠i}(-a_ik). Positive off-diagonal couplings are
// never strong.
func buildStrength[T matrix.Float](a *matrix.CSR[T], theta float64) *strengthGraph {
	n := a.Rows
	g := &strengthGraph{n: n, sPtr: make([]int, n+1)}
	// Pass 1: per-row threshold and strong-edge count.
	maxNeg := make([]float64, n)
	for i := 0; i < n; i++ {
		m := 0.0
		for jj := a.RowPtr[i]; jj < a.RowPtr[i+1]; jj++ {
			if a.ColIdx[jj] == i {
				continue
			}
			if v := -float64(a.Vals[jj]); v > m {
				m = v
			}
		}
		maxNeg[i] = m
	}
	for i := 0; i < n; i++ {
		cnt := 0
		if maxNeg[i] > 0 {
			for jj := a.RowPtr[i]; jj < a.RowPtr[i+1]; jj++ {
				j := a.ColIdx[jj]
				if j != i && -float64(a.Vals[jj]) >= theta*maxNeg[i] {
					cnt++
				}
			}
		}
		g.sPtr[i+1] = g.sPtr[i] + cnt
	}
	g.sIdx = make([]int, g.sPtr[n])
	pos := append([]int(nil), g.sPtr[:n]...)
	for i := 0; i < n; i++ {
		if maxNeg[i] <= 0 {
			continue
		}
		for jj := a.RowPtr[i]; jj < a.RowPtr[i+1]; jj++ {
			j := a.ColIdx[jj]
			if j != i && -float64(a.Vals[jj]) >= theta*maxNeg[i] {
				g.sIdx[pos[i]] = j
				pos[i]++
			}
		}
	}
	// Transpose.
	g.stPtr = make([]int, n+1)
	for _, j := range g.sIdx {
		g.stPtr[j+1]++
	}
	for i := 0; i < n; i++ {
		g.stPtr[i+1] += g.stPtr[i]
	}
	g.stIdx = make([]int, len(g.sIdx))
	tpos := append([]int(nil), g.stPtr[:n]...)
	for i := 0; i < n; i++ {
		for k := g.sPtr[i]; k < g.sPtr[i+1]; k++ {
			j := g.sIdx[k]
			g.stIdx[tpos[j]] = i
			tpos[j]++
		}
	}
	return g
}

// strongDeps returns the points i strongly depends on.
func (g *strengthGraph) strongDeps(i int) []int { return g.sIdx[g.sPtr[i]:g.sPtr[i+1]] }

// strongInfluenced returns the points that strongly depend on i.
func (g *strengthGraph) strongInfluenced(i int) []int { return g.stIdx[g.stPtr[i]:g.stPtr[i+1]] }
