package amg

import (
	"math/rand"
	"testing"

	"smat/internal/gen"
	"smat/internal/matrix"
)

func poissonSystem(t *testing.T, nx int) (*matrix.CSR[float64], []float64, []float64) {
	t.Helper()
	a := gen.Laplacian2D5pt[float64](nx, nx)
	rng := rand.New(rand.NewSource(3))
	want := make([]float64, a.Rows)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, a.Rows)
	a.ToDense().MulVec(want, b)
	return a, b, want
}

func TestPlainCGConvergesOnSPD(t *testing.T) {
	a, b, want := poissonSystem(t, 16)
	x := make([]float64, a.Rows)
	stats := PCG[float64](csrOp[float64]{a}, nil, b, x, 1e-10, 2000)
	if !stats.Converged {
		t.Fatalf("plain CG did not converge: %+v", stats)
	}
	if !matrix.VecApproxEqual(x, want, 1e-6) {
		t.Error("CG solution wrong")
	}
}

func TestAMGPreconditionedCGBeatsPlainCG(t *testing.T) {
	a, b, want := poissonSystem(t, 40)
	h, err := Setup(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	xp := make([]float64, a.Rows)
	pcg := h.SolvePCG(b, xp, 1e-10, 500)
	if !pcg.Converged {
		t.Fatalf("AMG-PCG did not converge: %+v", pcg)
	}
	if !matrix.VecApproxEqual(xp, want, 1e-5) {
		t.Error("AMG-PCG solution wrong")
	}
	xc := make([]float64, a.Rows)
	cg := PCG[float64](csrOp[float64]{a}, nil, b, xc, 1e-10, 500)
	if cg.Converged && cg.Iterations <= pcg.Iterations {
		t.Errorf("AMG preconditioning did not help: PCG %d iters vs CG %d",
			pcg.Iterations, cg.Iterations)
	}
	if pcg.Iterations > 30 {
		t.Errorf("AMG-PCG took %d iterations on Poisson, want few", pcg.Iterations)
	}
}

func TestPCGZeroRHS(t *testing.T) {
	a := lap1D(20)
	x := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	stats := PCG[float64](csrOp[float64]{a}, nil, make([]float64, 20), x, 1e-12, 10)
	if !stats.Converged {
		t.Error("zero RHS did not converge")
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("x not zeroed")
		}
	}
}

func TestPCGStopsOnNonSPD(t *testing.T) {
	// An indefinite operator: CG must bail out instead of looping.
	a, err := matrix.FromTriples(2, 2, []matrix.Triple[float64]{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	stats := PCG[float64](csrOp[float64]{a}, nil, []float64{0, 1}, x, 1e-12, 100)
	if stats.Converged {
		t.Error("indefinite system reported converged")
	}
	if stats.Iterations >= 100 {
		t.Error("CG did not stop early on indefinite system")
	}
}

func TestPCGRespectsMaxIter(t *testing.T) {
	a, b, _ := poissonSystem(t, 30)
	x := make([]float64, a.Rows)
	stats := PCG[float64](csrOp[float64]{a}, nil, b, x, 1e-14, 3)
	if stats.Converged {
		t.Error("converged in 3 iterations at 1e-14 on a 900-dof Poisson problem?")
	}
	if stats.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", stats.Iterations)
	}
}
