package amg

import (
	"fmt"
	"math"

	"smat/internal/matrix"
	"smat/internal/solve"
)

// denseLU is the coarsest-level direct solver: LU with partial pivoting.
// ytmp is the forward-substitution scratch, hoisted out of solve so the
// per-cycle coarse solve allocates nothing.
type denseLU[T matrix.Float] struct {
	n    int
	lu   []float64
	perm []int
	ytmp []float64
}

func factorDense[T matrix.Float](a *matrix.CSR[T]) (*denseLU[T], error) {
	n := a.Rows
	f := &denseLU[T]{n: n, lu: make([]float64, n*n), perm: make([]int, n), ytmp: make([]float64, n)}
	for r := 0; r < n; r++ {
		f.perm[r] = r
		for jj := a.RowPtr[r]; jj < a.RowPtr[r+1]; jj++ {
			f.lu[r*n+a.ColIdx[jj]] = float64(a.Vals[jj])
		}
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, pv := k, math.Abs(f.lu[f.perm[k]*n+k])
		for r := k + 1; r < n; r++ {
			if v := math.Abs(f.lu[f.perm[r]*n+k]); v > pv {
				p, pv = r, v
			}
		}
		if pv == 0 {
			return nil, fmt.Errorf("amg: singular coarse operator at column %d", k)
		}
		f.perm[k], f.perm[p] = f.perm[p], f.perm[k]
		pk := f.perm[k]
		piv := f.lu[pk*n+k]
		for r := k + 1; r < n; r++ {
			pr := f.perm[r]
			m := f.lu[pr*n+k] / piv
			f.lu[pr*n+k] = m
			if m == 0 {
				continue
			}
			for c := k + 1; c < n; c++ {
				f.lu[pr*n+c] -= m * f.lu[pk*n+c]
			}
		}
	}
	return f, nil
}

// solve computes x = A⁻¹ b in place.
func (f *denseLU[T]) solve(b, x []T) {
	n := f.n
	ytmp := f.ytmp
	// Forward substitution (unit lower triangular, permuted rows).
	for i := 0; i < n; i++ {
		v := float64(b[f.perm[i]])
		for k := 0; k < i; k++ {
			v -= f.lu[f.perm[i]*n+k] * ytmp[k]
		}
		ytmp[i] = v
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		v := ytmp[i]
		for k := i + 1; k < n; k++ {
			v -= f.lu[f.perm[i]*n+k] * float64(x[k])
		}
		x[i] = T(v / f.lu[f.perm[i]*n+i])
	}
}

// smooth runs one relaxation sweep on A x = b at the given level.
func (h *Hierarchy[T]) smooth(lvl *Level[T], b, x []T) {
	switch h.opts.Smoother {
	case GaussSeidel:
		a := lvl.A
		for i := 0; i < a.Rows; i++ {
			var sum T
			var diag T
			for jj := a.RowPtr[i]; jj < a.RowPtr[i+1]; jj++ {
				j := a.ColIdx[jj]
				if j == i {
					diag = a.Vals[jj]
					continue
				}
				sum += a.Vals[jj] * x[j]
			}
			if diag != 0 {
				x[i] = (b[i] - sum) / diag
			}
		}
	default: // weighted Jacobi: x += ω D⁻¹ (b − A x), one SpMV per sweep.
		lvl.aOp.MulVec(x, lvl.tmp)
		omega := T(h.opts.Omega)
		for i := range x {
			if d := lvl.Diag[i]; d != 0 {
				x[i] += omega * (b[i] - lvl.tmp[i]) / d
			}
		}
	}
}

// vcycle runs one V-cycle starting at level li, solving A x = b with the
// current x as the initial guess.
func (h *Hierarchy[T]) vcycle(li int, b, x []T) {
	lvl := h.Levels[li]
	if lvl.P == nil {
		h.lu.solve(b, x)
		return
	}
	for s := 0; s < h.opts.Nu1; s++ {
		h.smooth(lvl, b, x)
	}
	// Residual r = b − A x.
	lvl.aOp.MulVec(x, lvl.tmp)
	for i := range lvl.tmp {
		lvl.tmp[i] = b[i] - lvl.tmp[i]
	}
	// Restrict and recurse (once for a V-cycle, Gamma times for W-cycles).
	next := h.Levels[li+1]
	lvl.rOp.MulVec(lvl.tmp, next.b)
	clear(next.x)
	for g := 0; g < h.opts.Gamma; g++ {
		h.vcycle(li+1, next.b, next.x)
	}
	// Prolong and correct.
	lvl.pOp.MulVec(next.x, lvl.tmp)
	for i := range x {
		x[i] += lvl.tmp[i]
	}
	for s := 0; s < h.opts.Nu2; s++ {
		h.smooth(lvl, b, x)
	}
}

// VCycle applies one multigrid cycle (V or W per Options.Gamma) to
// A x = b, refining x in place.
func (h *Hierarchy[T]) VCycle(b, x []T) { h.vcycle(0, b, x) }

// SolveStats reports a Solve run.
type SolveStats struct {
	Iterations  int
	RelResidual float64
	Converged   bool
}

// Solve iterates V-cycles until ‖b − A x‖₂ / ‖b‖₂ ≤ tol or maxIter cycles,
// refining x in place.
func (h *Hierarchy[T]) Solve(b, x []T, tol float64, maxIter int) SolveStats {
	lvl := h.Levels[0]
	normB := solve.Norm2(b)
	if normB == 0 {
		clear(x)
		return SolveStats{Converged: true}
	}
	var stats SolveStats
	for stats.Iterations = 0; stats.Iterations < maxIter; {
		h.VCycle(b, x)
		stats.Iterations++
		lvl.aOp.MulVec(x, lvl.tmp)
		res := 0.0
		for i := range b {
			d := float64(b[i] - lvl.tmp[i])
			res += d * d
		}
		stats.RelResidual = math.Sqrt(res) / normB
		if stats.RelResidual <= tol {
			stats.Converged = true
			break
		}
	}
	return stats
}
