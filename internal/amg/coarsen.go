package amg

import (
	"container/heap"
	"math/rand"
)

// Coarsening selects the coarse-grid point-selection algorithm.
type Coarsening int

const (
	// RugeStueben is the classical sequential first-pass coarsening (the
	// paper's "rugeL" configuration).
	RugeStueben Coarsening = iota
	// CLJP is the Cleary–Luby–Jones–Plassmann independent-set coarsening
	// (the paper's "cljp" configuration).
	CLJP
)

func (c Coarsening) String() string {
	if c == CLJP {
		return "cljp"
	}
	return "rugeL"
}

// point classification.
const (
	unassigned int8 = iota
	cPoint
	fPoint
)

// lambdaItem is a lazy max-heap entry for Ruge–Stüben selection.
type lambdaItem struct {
	lambda int
	point  int
}

type lambdaHeap []lambdaItem

func (h lambdaHeap) Len() int            { return len(h) }
func (h lambdaHeap) Less(i, j int) bool  { return h[i].lambda > h[j].lambda }
func (h lambdaHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lambdaHeap) Push(x interface{}) { *h = append(*h, x.(lambdaItem)) }
func (h *lambdaHeap) Pop() interface{} {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

// coarsenRS runs classical Ruge–Stüben first-pass coarsening: repeatedly
// promote the unassigned point with the largest measure λ_i = |S_i^T| to a
// C-point, make the points that strongly depend on it F-points, and raise
// the measure of those F-points' remaining strong dependencies.
func coarsenRS(g *strengthGraph) []int8 {
	n := g.n
	split := make([]int8, n)
	lambda := make([]int, n)
	h := make(lambdaHeap, 0, n)
	for i := 0; i < n; i++ {
		lambda[i] = g.stPtr[i+1] - g.stPtr[i]
		h = append(h, lambdaItem{lambda[i], i})
	}
	heap.Init(&h)
	assigned := 0
	for assigned < n && h.Len() > 0 {
		it := heap.Pop(&h).(lambdaItem)
		i := it.point
		if split[i] != unassigned || it.lambda != lambda[i] {
			continue // stale entry
		}
		if lambda[i] == 0 {
			// No remaining influence: isolated or fully surrounded by
			// assigned points. Such points smooth well on the fine grid.
			split[i] = fPoint
			assigned++
			continue
		}
		split[i] = cPoint
		assigned++
		for _, j := range g.strongInfluenced(i) {
			if split[j] != unassigned {
				continue
			}
			split[j] = fPoint
			assigned++
			for _, k := range g.strongDeps(j) {
				if split[k] == unassigned {
					lambda[k]++
					heap.Push(&h, lambdaItem{lambda[k], k})
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if split[i] == unassigned {
			split[i] = fPoint
		}
	}
	return split
}

// coarsenCLJP runs Cleary–Luby–Jones–Plassmann coarsening. Weights are
// w(i) = |S_i^T| + rand(0,1); each round the local maxima over the live
// strong-connection graph become C-points and the two CLJP heuristics remove
// edges and decrement weights:
//
//	H1: points that influence a new C-point are less valuable as C-points
//	    themselves (the C-point will not be interpolated);
//	H2: if j and k both strongly depend on a new C-point c and j also
//	    influences k, then k can be interpolated from c instead of j, so j
//	    loses that dependent.
//
// Points whose weight drops below one become F-points. The random
// tie-breaking yields the more uniform splittings that distinguish the
// paper's "cljp" configuration from "rugeL".
func coarsenCLJP(g *strengthGraph, seed int64) []int8 {
	n := g.n
	rng := rand.New(rand.NewSource(seed))
	split := make([]int8, n)
	w := make([]float64, n)

	// Live edge sets: dep[i] = points i strongly depends on; infl[i] =
	// points that strongly depend on i. Both shrink as points resolve.
	dep := make([]map[int]struct{}, n)
	infl := make([]map[int]struct{}, n)
	remaining := 0
	for i := 0; i < n; i++ {
		nDeps := g.sPtr[i+1] - g.sPtr[i]
		nInfl := g.stPtr[i+1] - g.stPtr[i]
		if nDeps == 0 && nInfl == 0 {
			split[i] = fPoint // isolated
			continue
		}
		dep[i] = make(map[int]struct{}, nDeps)
		for _, j := range g.strongDeps(i) {
			dep[i][j] = struct{}{}
		}
		infl[i] = make(map[int]struct{}, nInfl)
		for _, j := range g.strongInfluenced(i) {
			infl[i][j] = struct{}{}
		}
		w[i] = float64(nInfl) + rng.Float64()
		remaining++
	}

	markF := func(i int) {
		split[i] = fPoint
		remaining--
		for j := range dep[i] {
			delete(infl[j], i)
		}
		for j := range infl[i] {
			delete(dep[j], i)
		}
		dep[i], infl[i] = nil, nil
	}

	for remaining > 0 {
		// Select local maxima over live edges.
		var selected []int
		for i := 0; i < n; i++ {
			if split[i] != unassigned {
				continue
			}
			isMax := true
			for j := range dep[i] {
				if w[j] >= w[i] {
					isMax = false
					break
				}
			}
			if isMax {
				for j := range infl[i] {
					if w[j] >= w[i] {
						isMax = false
						break
					}
				}
			}
			if isMax {
				selected = append(selected, i)
			}
		}
		if len(selected) == 0 {
			// Guard against exact weight ties: resolve the global maximum.
			best, bw := -1, -1.0
			for i := 0; i < n; i++ {
				if split[i] == unassigned && w[i] > bw {
					best, bw = i, w[i]
				}
			}
			selected = append(selected, best)
		}
		for _, c := range selected {
			split[c] = cPoint
			remaining--
			// H1: points influencing c lose value.
			for j := range dep[c] {
				w[j]--
				delete(infl[j], c)
			}
			dep[c] = nil
			// H2: dependents of c stop needing each other.
			depOnC := infl[c]
			infl[c] = nil
			for j := range depOnC {
				delete(dep[j], c)
			}
			for j := range depOnC {
				for k := range infl[j] {
					if _, also := depOnC[k]; also {
						w[j]--
						delete(dep[k], j)
						delete(infl[j], k)
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			if split[i] == unassigned && w[i] < 1 {
				markF(i)
			}
		}
	}
	return split
}

// enforceInterpolatable promotes F-points that have strong dependencies but
// no strong C-neighbour to C-points, guaranteeing direct interpolation is
// well defined everywhere.
func enforceInterpolatable(g *strengthGraph, split []int8) {
	for i := 0; i < g.n; i++ {
		if split[i] != fPoint {
			continue
		}
		deps := g.strongDeps(i)
		if len(deps) == 0 {
			continue // truly isolated; interpolated by zero
		}
		hasC := false
		for _, j := range deps {
			if split[j] == cPoint {
				hasC = true
				break
			}
		}
		if !hasC {
			split[i] = cPoint
		}
	}
}
