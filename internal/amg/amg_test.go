package amg

import (
	"math"
	"math/rand"
	"testing"

	"smat/internal/gen"
	"smat/internal/matrix"
)

func lap1D(n int) *matrix.CSR[float64] {
	var ts []matrix.Triple[float64]
	for i := 0; i < n; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: i, Col: i, Val: 2})
		if i > 0 {
			ts = append(ts, matrix.Triple[float64]{Row: i, Col: i - 1, Val: -1})
		}
		if i < n-1 {
			ts = append(ts, matrix.Triple[float64]{Row: i, Col: i + 1, Val: -1})
		}
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func TestStrengthGraphTridiagonal(t *testing.T) {
	a := lap1D(5)
	g := buildStrength(a, 0.25)
	// Every off-diagonal -1 is strong (max off-diag magnitude is 1).
	if got := g.strongDeps(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("deps(0) = %v, want [1]", got)
	}
	if got := g.strongDeps(2); len(got) != 2 {
		t.Errorf("deps(2) = %v, want two neighbours", got)
	}
	if got := g.strongInfluenced(2); len(got) != 2 {
		t.Errorf("influenced(2) = %v, want two neighbours", got)
	}
}

func TestStrengthGraphThreshold(t *testing.T) {
	// Row 0: strong -10 to col 1, weak -1 to col 2.
	m, err := matrix.FromTriples(3, 3, []matrix.Triple[float64]{
		{Row: 0, Col: 0, Val: 12}, {Row: 0, Col: 1, Val: -10}, {Row: 0, Col: 2, Val: -1},
		{Row: 1, Col: 1, Val: 1},
		{Row: 2, Col: 2, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := buildStrength(m, 0.25)
	deps := g.strongDeps(0)
	if len(deps) != 1 || deps[0] != 1 {
		t.Errorf("deps(0) = %v, want [1] (weak link filtered)", deps)
	}
}

func TestStrengthIgnoresPositiveCouplings(t *testing.T) {
	m, err := matrix.FromTriples(2, 2, []matrix.Triple[float64]{
		{Row: 0, Col: 0, Val: 2}, {Row: 0, Col: 1, Val: 5}, // positive coupling
		{Row: 1, Col: 1, Val: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := buildStrength(m, 0.25)
	if len(g.strongDeps(0)) != 0 {
		t.Error("positive coupling classified as strong")
	}
}

func validSplitting(t *testing.T, g *strengthGraph, split []int8) {
	t.Helper()
	nc := 0
	for i, s := range split {
		switch s {
		case cPoint:
			nc++
		case fPoint:
			if len(g.strongDeps(i)) == 0 {
				continue // isolated
			}
			hasC := false
			for _, j := range g.strongDeps(i) {
				if split[j] == cPoint {
					hasC = true
					break
				}
			}
			if !hasC {
				t.Errorf("F-point %d has no strong C-neighbour", i)
			}
		default:
			t.Errorf("point %d unassigned", i)
		}
	}
	if nc == 0 || nc == len(split) {
		t.Errorf("degenerate splitting: %d of %d C-points", nc, len(split))
	}
}

func TestCoarsenRS1D(t *testing.T) {
	a := lap1D(101)
	g := buildStrength(a, 0.25)
	split := coarsenRS(g)
	enforceInterpolatable(g, split)
	validSplitting(t, g, split)
	nc := 0
	for _, s := range split {
		if s == cPoint {
			nc++
		}
	}
	// 1D Laplacian should coarsen by roughly half.
	if nc < 25 || nc > 75 {
		t.Errorf("RS selected %d of 101 C-points, want ≈50", nc)
	}
}

func TestCoarsenCLJP2D(t *testing.T) {
	a := gen.Laplacian2D5pt[float64](20, 20)
	g := buildStrength(a, 0.25)
	split := coarsenCLJP(g, 7)
	enforceInterpolatable(g, split)
	validSplitting(t, g, split)
}

func TestCoarsenHandlesIsolatedPoints(t *testing.T) {
	// Diagonal matrix: no strong connections anywhere.
	m, err := matrix.FromTriples(5, 5, []matrix.Triple[float64]{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}, {Row: 2, Col: 2, Val: 1},
		{Row: 3, Col: 3, Val: 1}, {Row: 4, Col: 4, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	g := buildStrength(m, 0.25)
	for _, split := range [][]int8{coarsenRS(g), coarsenCLJP(g, 3)} {
		for i, s := range split {
			if s == unassigned {
				t.Errorf("isolated point %d left unassigned", i)
			}
		}
	}
}

func TestInterpolation1DWeights(t *testing.T) {
	a := lap1D(7)
	g := buildStrength(a, 0.25)
	split := coarsenRS(g)
	enforceInterpolatable(g, split)
	p := buildInterpolation(a, g, split, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior F-point rows of the zero-row-sum Laplacian must sum to 1
	// (constants are interpolated exactly).
	for i := 1; i < 6; i++ {
		if split[i] != fPoint {
			continue
		}
		sum := 0.0
		for jj := p.RowPtr[i]; jj < p.RowPtr[i+1]; jj++ {
			sum += p.Vals[jj]
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("interior F-row %d interpolation sum = %g, want 1", i, sum)
		}
	}
}

func TestDenseLUSolvesRandomSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20
	var ts []matrix.Triple[float64]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.NormFloat64()
			if i == j {
				v += float64(n) // diagonally dominant
			}
			ts = append(ts, matrix.Triple[float64]{Row: i, Col: j, Val: v})
		}
	}
	a, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := factorDense(a)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.ToDense().MulVec(want, b)
	got := make([]float64, n)
	lu.solve(b, got)
	if !matrix.VecApproxEqual(got, want, 1e-9) {
		t.Error("LU solve wrong")
	}
}

func TestDenseLURejectsSingular(t *testing.T) {
	a, err := matrix.FromTriples(2, 2, []matrix.Triple[float64]{{Row: 0, Col: 0, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := factorDense(a); err == nil {
		t.Error("singular matrix factored")
	}
}

func TestSetupBuildsHierarchy(t *testing.T) {
	a := gen.Laplacian2D5pt[float64](32, 32)
	h, err := Setup(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Levels) < 2 {
		t.Fatalf("hierarchy has %d levels, want ≥2", len(h.Levels))
	}
	for i := 1; i < len(h.Levels); i++ {
		if h.Levels[i].A.Rows >= h.Levels[i-1].A.Rows {
			t.Errorf("level %d (%d rows) not coarser than level %d (%d rows)",
				i, h.Levels[i].A.Rows, i-1, h.Levels[i-1].A.Rows)
		}
	}
	if oc := h.OperatorComplexity(); oc < 1 || oc > 4 {
		t.Errorf("operator complexity %g outside sane range", oc)
	}
	// The Galerkin coarse operator of a symmetric problem stays symmetric.
	a1 := h.Levels[1].A
	if !a1.ApproxEqual(a1.Transpose(), 1e-9) {
		t.Error("coarse operator lost symmetry")
	}
}

func TestSetupRejectsNonSquare(t *testing.T) {
	m, err := matrix.FromTriples(2, 3, []matrix.Triple[float64]{{Row: 0, Col: 0, Val: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Setup(m, Options{}); err == nil {
		t.Error("non-square operator accepted")
	}
}

func solveTest(t *testing.T, opts Options) {
	t.Helper()
	a := gen.Laplacian2D5pt[float64](32, 32)
	h, err := Setup(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	want := make([]float64, a.Rows)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := make([]float64, a.Rows)
	a.ToDense().MulVec(want, b)
	x := make([]float64, a.Rows)
	stats := h.Solve(b, x, 1e-8, 60)
	if !stats.Converged {
		t.Fatalf("did not converge: %d iters, relres %g (opts %+v)",
			stats.Iterations, stats.RelResidual, opts)
	}
	if stats.Iterations > 40 {
		t.Errorf("slow convergence: %d V-cycles", stats.Iterations)
	}
	if !matrix.VecApproxEqual(x, want, 1e-5) {
		t.Error("solution wrong")
	}
}

func TestSolvePoissonJacobiRS(t *testing.T) {
	solveTest(t, Options{Coarsening: RugeStueben, Smoother: Jacobi})
}

func TestSolvePoissonGaussSeidelRS(t *testing.T) {
	solveTest(t, Options{Coarsening: RugeStueben, Smoother: GaussSeidel})
}

func TestSolvePoissonJacobiCLJP(t *testing.T) {
	solveTest(t, Options{Coarsening: CLJP, Smoother: Jacobi})
}

func TestSolve9ptAnd3D(t *testing.T) {
	for _, a := range []*matrix.CSR[float64]{
		gen.Laplacian2D9pt[float64](24, 24),
		gen.Laplacian3D7pt[float64](10, 10, 10),
	} {
		h, err := Setup(a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = 1
		}
		x := make([]float64, a.Rows)
		stats := h.Solve(b, x, 1e-8, 80)
		if !stats.Converged {
			t.Errorf("%d-row problem did not converge (relres %g)", a.Rows, stats.RelResidual)
		}
	}
}

func TestSolveZeroRHS(t *testing.T) {
	a := lap1D(50)
	h, err := Setup(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 50)
	for i := range x {
		x[i] = 1
	}
	stats := h.Solve(make([]float64, 50), x, 1e-10, 10)
	if !stats.Converged {
		t.Error("zero RHS did not converge")
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %g, want 0", i, v)
		}
	}
}

// countingOp wraps an SpMV and counts calls, to prove Bind is honoured.
type countingOp struct {
	inner SpMV[float64]
	calls *int
}

func (c countingOp) MulVec(x, y []float64) {
	*c.calls++
	c.inner.MulVec(x, y)
}

func TestBindReplacesOperators(t *testing.T) {
	a := gen.Laplacian2D5pt[float64](16, 16)
	h, err := Setup(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	err = h.Bind(func(m *matrix.CSR[float64]) (SpMV[float64], error) {
		return countingOp{inner: csrOp[float64]{m}, calls: &calls}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	h.VCycle(b, x)
	if calls == 0 {
		t.Fatal("bound operators never called")
	}
}

func TestSolveFloat32(t *testing.T) {
	a64 := gen.Laplacian2D5pt[float64](20, 20)
	var ts []matrix.Triple[float32]
	for r := 0; r < a64.Rows; r++ {
		for jj := a64.RowPtr[r]; jj < a64.RowPtr[r+1]; jj++ {
			ts = append(ts, matrix.Triple[float32]{Row: r, Col: a64.ColIdx[jj], Val: float32(a64.Vals[jj])})
		}
	}
	a, err := matrix.FromTriples(a64.Rows, a64.Cols, ts)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Setup(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float32, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float32, a.Rows)
	stats := h.Solve(b, x, 1e-4, 60)
	if !stats.Converged {
		t.Errorf("float32 solve did not converge (relres %g)", stats.RelResidual)
	}
}

func TestWCycleConverges(t *testing.T) {
	a := gen.Laplacian2D5pt[float64](32, 32)
	hv, err := Setup(a, Options{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	hw, err := Setup(a, Options{Gamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	xv := make([]float64, a.Rows)
	xw := make([]float64, a.Rows)
	sv := hv.Solve(b, xv, 1e-10, 80)
	sw := hw.Solve(b, xw, 1e-10, 80)
	if !sv.Converged || !sw.Converged {
		t.Fatalf("V converged=%v, W converged=%v", sv.Converged, sw.Converged)
	}
	// W-cycles do strictly more coarse work per cycle: never more cycles.
	if sw.Iterations > sv.Iterations {
		t.Errorf("W-cycle took %d cycles vs V-cycle %d", sw.Iterations, sv.Iterations)
	}
}
