package amg

import (
	"math"

	"smat/internal/matrix"
)

// Preconditioner applies z ≈ A⁻¹ r.
type Preconditioner[T matrix.Float] interface {
	Apply(r, z []T)
}

// Apply runs one V-cycle from a zero initial guess: the standard way AMG
// serves as a preconditioner (the paper's Section 7.1: "AMG is used as a
// preconditioner such as conjugate gradients").
func (h *Hierarchy[T]) Apply(r, z []T) {
	clear(z)
	h.VCycle(r, z)
}

// PCG solves the symmetric positive-definite system A x = b with
// preconditioned conjugate gradients, refining x in place. a is the
// operator's SpMV (tuned or plain), M the preconditioner (nil for plain CG).
// Inner products accumulate in float64 regardless of T.
func PCG[T matrix.Float](a SpMV[T], m Preconditioner[T], b, x []T, tol float64, maxIter int) SolveStats {
	n := len(b)
	r := make([]T, n)
	z := make([]T, n)
	p := make([]T, n)
	ap := make([]T, n)

	normB := norm2(b)
	if normB == 0 {
		clear(x)
		return SolveStats{Converged: true}
	}
	// r = b − A x.
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	applyPrec(m, r, z)
	copy(p, z)
	rz := dot(r, z)

	var stats SolveStats
	for stats.Iterations = 0; stats.Iterations < maxIter; stats.Iterations++ {
		stats.RelResidual = norm2(r) / normB
		if stats.RelResidual <= tol {
			stats.Converged = true
			return stats
		}
		a.MulVec(p, ap)
		pap := dot(p, ap)
		if pap <= 0 {
			// Not SPD along p (or numerically exhausted): stop.
			return stats
		}
		alpha := rz / pap
		for i := range x {
			x[i] += T(alpha) * p[i]
			r[i] -= T(alpha) * ap[i]
		}
		applyPrec(m, r, z)
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + T(beta)*p[i]
		}
	}
	stats.RelResidual = norm2(r) / normB
	stats.Converged = stats.RelResidual <= tol
	return stats
}

// SolvePCG solves A x = b with CG preconditioned by this hierarchy, using
// the hierarchy's (possibly SMAT-bound) operator for the fine-level SpMV.
func (h *Hierarchy[T]) SolvePCG(b, x []T, tol float64, maxIter int) SolveStats {
	return PCG[T](h.Levels[0].aOp, h, b, x, tol, maxIter)
}

func applyPrec[T matrix.Float](m Preconditioner[T], r, z []T) {
	if m == nil {
		copy(z, r)
		return
	}
	m.Apply(r, z)
}

func dot[T matrix.Float](a, b []T) float64 {
	s := 0.0
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	if math.IsNaN(s) {
		return 0
	}
	return s
}
