package amg

import (
	"smat/internal/matrix"
	"smat/internal/solve"
)

// Preconditioner applies z ≈ A⁻¹ r.
type Preconditioner[T matrix.Float] interface {
	Apply(r, z []T)
}

// Apply runs one V-cycle from a zero initial guess: the standard way AMG
// serves as a preconditioner (the paper's Section 7.1: "AMG is used as a
// preconditioner such as conjugate gradients").
func (h *Hierarchy[T]) Apply(r, z []T) {
	clear(z)
	h.VCycle(r, z)
}

// PCG solves the symmetric positive-definite system A x = b with
// preconditioned conjugate gradients, refining x in place. a is the
// operator's SpMV (tuned or plain), M the preconditioner (nil for plain CG).
// It delegates to solve.CG (shared unrolled float64 inner products,
// breakdown detection); a breakdown — the operator not SPD along a search
// direction — surfaces as an early, non-converged return, matching the
// historical behaviour of this entry point.
func PCG[T matrix.Float](a SpMV[T], m Preconditioner[T], b, x []T, tol float64, maxIter int) SolveStats {
	var ws solve.CGScratch[T]
	return pcgWith(&ws, a, m, b, x, tol, maxIter)
}

func pcgWith[T matrix.Float](ws *solve.CGScratch[T], a SpMV[T], m Preconditioner[T], b, x []T, tol float64, maxIter int) SolveStats {
	stats, _ := solve.CGWith[T](ws, a, m, b, x, tol, maxIter)
	return SolveStats(stats)
}

// SolvePCG solves A x = b with CG preconditioned by this hierarchy, using
// the hierarchy's (possibly SMAT-bound) operator for the fine-level SpMV.
// The CG work vectors live on the hierarchy, so repeated solves through one
// hierarchy allocate only on the first call.
func (h *Hierarchy[T]) SolvePCG(b, x []T, tol float64, maxIter int) SolveStats {
	return pcgWith(&h.cgws, h.Levels[0].aOp, h, b, x, tol, maxIter)
}
