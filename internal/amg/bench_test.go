package amg

import (
	"testing"

	"smat/internal/gen"
)

// BenchmarkSetup measures AMG setup (coarsening + interpolation + Galerkin
// products) per configuration.
func BenchmarkSetup(b *testing.B) {
	a := gen.Laplacian2D9pt[float64](120, 120)
	for _, c := range []Coarsening{RugeStueben, CLJP} {
		b.Run(c.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Setup(a, Options{Coarsening: c}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVCycle measures one V-cycle, the unit of the paper's Table 4
// solve phase.
func BenchmarkVCycle(b *testing.B) {
	a := gen.Laplacian2D9pt[float64](120, 120)
	h, err := Setup(a, Options{})
	if err != nil {
		b.Fatal(err)
	}
	bvec := make([]float64, a.Rows)
	for i := range bvec {
		bvec[i] = 1
	}
	x := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.VCycle(bvec, x)
	}
}

func BenchmarkPCG(b *testing.B) {
	a := gen.Laplacian2D5pt[float64](80, 80)
	h, err := Setup(a, Options{})
	if err != nil {
		b.Fatal(err)
	}
	bvec := make([]float64, a.Rows)
	for i := range bvec {
		bvec[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := make([]float64, a.Rows)
		h.SolvePCG(bvec, x, 1e-8, 100)
	}
}
