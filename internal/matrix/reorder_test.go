package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// shuffledBandMatrix builds a tridiagonal matrix and hides its band under a
// random symmetric permutation.
func shuffledBandMatrix(rng *rand.Rand, n int) *CSR[float64] {
	var ts []Triple[float64]
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		ts = append(ts, Triple[float64]{Row: perm[i], Col: perm[i], Val: 2})
		if i > 0 {
			ts = append(ts, Triple[float64]{Row: perm[i], Col: perm[i-1], Val: -1})
			ts = append(ts, Triple[float64]{Row: perm[i-1], Col: perm[i], Val: -1})
		}
	}
	m, err := FromTriples(n, n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func TestRCMRecoversHiddenBand(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := shuffledBandMatrix(rng, 400)
	if m.Bandwidth() < 50 {
		t.Fatalf("shuffle failed to scatter: bandwidth %d", m.Bandwidth())
	}
	perm, err := m.RCM()
	if err != nil {
		t.Fatal(err)
	}
	re, err := m.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	// A path graph has an exact bandwidth-1 ordering; RCM recovers it (or
	// something very close).
	if bw := re.Bandwidth(); bw > 2 {
		t.Errorf("RCM bandwidth = %d, want ≤2 on a hidden path", bw)
	}
}

func TestPermuteIsSimilarityTransform(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := randCSR(rng, n, n, 0.3)
		perm := rng.Perm(n)
		p, err := m.Permute(perm)
		if err != nil {
			return false
		}
		if err := p.Validate(); err != nil {
			return false
		}
		// Entry check: P[i,j] == A[perm[i], perm[j]].
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if p.At(i, j) != m.At(perm[i], perm[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randCSR(rng, 15, 15, 0.3)
	id := make([]int, 15)
	for i := range id {
		id[i] = i
	}
	p, err := m.Permute(id)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(m) {
		t.Error("identity permutation changed matrix")
	}
}

func TestPermuteRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randCSR(rng, 5, 5, 0.5)
	if _, err := m.Permute([]int{0, 1, 2}); err == nil {
		t.Error("short permutation accepted")
	}
	if _, err := m.Permute([]int{0, 1, 2, 3, 3}); err == nil {
		t.Error("duplicate permutation accepted")
	}
	if _, err := m.Permute([]int{0, 1, 2, 3, 9}); err == nil {
		t.Error("out-of-range permutation accepted")
	}
	rect := randCSR(rng, 3, 5, 0.5)
	if _, err := rect.Permute([]int{0, 1, 2}); err == nil {
		t.Error("rectangular matrix accepted")
	}
	if _, err := rect.RCM(); err == nil {
		t.Error("RCM on rectangular matrix accepted")
	}
}

func TestRCMHandlesDisconnectedGraph(t *testing.T) {
	// Two disjoint paths plus an isolated vertex.
	var ts []Triple[float64]
	for i := 0; i < 4; i++ {
		ts = append(ts, Triple[float64]{Row: i, Col: i, Val: 1})
	}
	ts = append(ts,
		Triple[float64]{Row: 0, Col: 1, Val: 1}, Triple[float64]{Row: 1, Col: 0, Val: 1},
		Triple[float64]{Row: 2, Col: 3, Val: 1}, Triple[float64]{Row: 3, Col: 2, Val: 1},
	)
	ts = append(ts, Triple[float64]{Row: 4, Col: 4, Val: 1})
	m, err := FromTriples(5, 5, ts)
	if err != nil {
		t.Fatal(err)
	}
	perm, err := m.RCM()
	if err != nil {
		t.Fatal(err)
	}
	if len(perm) != 5 {
		t.Fatalf("permutation covers %d of 5 vertices", len(perm))
	}
	seen := map[int]bool{}
	for _, p := range perm {
		if seen[p] {
			t.Fatal("duplicate in permutation")
		}
		seen[p] = true
	}
}

func TestBandwidth(t *testing.T) {
	m := mustCSR(t, 4, 4, []Triple[float64]{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	})
	if bw := m.Bandwidth(); bw != 2 {
		t.Errorf("bandwidth = %d, want 2", bw)
	}
	empty := mustCSR(t, 3, 3, nil)
	if bw := empty.Bandwidth(); bw != 0 {
		t.Errorf("empty bandwidth = %d", bw)
	}
}
