package matrix

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromTriplesDeduplicatesAndCancels(t *testing.T) {
	m, err := FromTriples(2, 2, []Triple[float64]{
		{0, 0, 1}, {0, 0, 2}, // duplicates sum
		{1, 1, 5}, {1, 1, -5}, // duplicates cancel -> dropped
		{0, 1, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %g, want 3", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %g, want 0 (cancelled)", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", m.NNZ())
	}
}

func TestFromTriplesRejectsOutOfRange(t *testing.T) {
	for _, tr := range []Triple[float64]{{-1, 0, 1}, {0, -1, 1}, {2, 0, 1}, {0, 2, 1}} {
		if _, err := FromTriples(2, 2, []Triple[float64]{tr}); err == nil {
			t.Errorf("FromTriples accepted out-of-range triple %+v", tr)
		}
	}
}

func TestPaperExampleCOO(t *testing.T) {
	// Figure 2(b): rows [0 0 1 1 2 2 2 3 3], cols [0 1 1 2 0 2 3 1 3].
	c := paperCSR(t).ToCOO()
	wantRows := []int{0, 0, 1, 1, 2, 2, 2, 3, 3}
	wantCols := []int{0, 1, 1, 2, 0, 2, 3, 1, 3}
	wantVals := []float64{1, 5, 2, 6, 8, 3, 7, 9, 4}
	for i := range wantRows {
		if c.RowIdx[i] != wantRows[i] || c.ColIdx[i] != wantCols[i] || c.Vals[i] != wantVals[i] {
			t.Errorf("entry %d = (%d,%d,%g), want (%d,%d,%g)",
				i, c.RowIdx[i], c.ColIdx[i], c.Vals[i], wantRows[i], wantCols[i], wantVals[i])
		}
	}
}

func TestPaperExampleDIA(t *testing.T) {
	// Figure 2(c): offsets [-2 0 1].
	d, err := paperCSR(t).ToDIA(0)
	if err != nil {
		t.Fatal(err)
	}
	wantOff := []int{-2, 0, 1, 2}
	// The paper's figure draws offsets [-2 0 1]; the example matrix also has
	// entry (2,3)=7 wait: offset 1. And (0,1)=5 offset 1, (1,2)=6 offset 1,
	// (3,3)=4 offset 0, (2,3)=7 offset 1. So offsets are {-2, 0, 1}.
	_ = wantOff
	gotOff := d.Offsets
	want := []int{-2, 0, 1}
	if len(gotOff) != len(want) {
		t.Fatalf("offsets = %v, want %v", gotOff, want)
	}
	for i := range want {
		if gotOff[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", gotOff, want)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperExampleELL(t *testing.T) {
	m := paperCSR(t)
	e, err := m.ToELL(0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Width != 3 {
		t.Fatalf("ELL width = %d, want 3", e.Width)
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Row 2 has three entries: columns 0, 2, 3.
	for slot, wantCol := range []int{0, 2, 3} {
		if got := e.ColIdx[slot*e.Rows+2]; got != wantCol {
			t.Errorf("row 2 slot %d col = %d, want %d", slot, got, wantCol)
		}
	}
	// Row 0 has two entries; slot 2 is padding.
	if e.Data[2*e.Rows+0] != 0 {
		t.Error("row 0 slot 2 should be zero padding")
	}
}

func TestConversionRoundTripsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(20)
		cols := 1 + r.Intn(20)
		m := randCSR(r, rows, cols, 0.2+r.Float64()*0.5)
		if err := m.Validate(); err != nil {
			t.Logf("invalid source: %v", err)
			return false
		}
		viaCOO := m.ToCOO().ToCSR()
		if !m.Equal(viaCOO) {
			t.Logf("COO round trip mismatch (seed %d)", seed)
			return false
		}
		d, err := m.ToDIA(0)
		if err != nil {
			t.Logf("ToDIA: %v", err)
			return false
		}
		if !m.Equal(d.ToCSR()) {
			t.Logf("DIA round trip mismatch (seed %d)", seed)
			return false
		}
		e, err := m.ToELL(0)
		if err != nil {
			t.Logf("ToELL: %v", err)
			return false
		}
		if !m.Equal(e.ToCSR()) {
			t.Logf("ELL round trip mismatch (seed %d)", seed)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestToDIAFillGuard(t *testing.T) {
	// An anti-diagonal matrix occupies n distinct diagonals with one element
	// each: the worst case for DIA.
	n := 64
	var ts []Triple[float64]
	for i := 0; i < n; i++ {
		ts = append(ts, Triple[float64]{Row: i, Col: n - 1 - i, Val: 1})
	}
	m := mustCSR(t, n, n, ts)
	if _, err := m.ToDIA(4.0); !errors.Is(err, ErrFillExplosion) {
		t.Fatalf("ToDIA err = %v, want ErrFillExplosion", err)
	}
	if _, err := m.ToDIA(0); err != nil {
		t.Fatalf("unlimited ToDIA failed: %v", err)
	}
}

func TestToELLFillGuard(t *testing.T) {
	// One dense row in an otherwise diagonal matrix blows up ELL width.
	n := 64
	ts := []Triple[float64]{}
	for i := 1; i < n; i++ {
		ts = append(ts, Triple[float64]{Row: i, Col: i, Val: 1})
	}
	for c := 0; c < n; c++ {
		ts = append(ts, Triple[float64]{Row: 0, Col: c, Val: 1})
	}
	m := mustCSR(t, n, n, ts)
	if _, err := m.ToELL(4.0); !errors.Is(err, ErrFillExplosion) {
		t.Fatalf("ToELL err = %v, want ErrFillExplosion", err)
	}
	if _, err := m.ToELL(0); err != nil {
		t.Fatalf("unlimited ToELL failed: %v", err)
	}
}

func TestDiagCount(t *testing.T) {
	m := paperCSR(t)
	n, offs := m.DiagCount()
	if n != 3 {
		t.Fatalf("DiagCount = %d, want 3", n)
	}
	want := []int{-2, 0, 1}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", offs, want)
		}
	}
}

func TestApproxEqual(t *testing.T) {
	m := paperCSR(t)
	o := m.Clone()
	o.Vals[0] += 1e-12
	if !m.ApproxEqual(o, 1e-9) {
		t.Error("ApproxEqual rejected tiny perturbation")
	}
	o.Vals[0] += 1
	if m.ApproxEqual(o, 1e-9) {
		t.Error("ApproxEqual accepted large perturbation")
	}
	if m.Equal(o) {
		t.Error("Equal accepted perturbed matrix")
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randCSR(rng, 13, 9, 0.3)
	back := CSRFromDense(m.ToDense())
	if !m.Equal(back) {
		t.Error("dense round trip mismatch")
	}
}

// TestCOOToCSRUnsortedInput is the regression test for the silent-corruption
// bug where ToCSR built RowPtr by counting but copied ColIdx/Vals in input
// order: on COO not sorted by row, values attached to the wrong rows while
// the result still looked structurally plausible.
func TestCOOToCSRUnsortedInput(t *testing.T) {
	// Entries deliberately out of row order (and out of column order within
	// row 0).
	c := &COO[float64]{
		Rows:   3,
		Cols:   3,
		RowIdx: []int{2, 0, 1, 0},
		ColIdx: []int{1, 2, 0, 0},
		Vals:   []float64{5, 7, 11, 13},
	}
	m := c.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatalf("ToCSR on unsorted COO produced invalid CSR: %v", err)
	}
	want := map[[2]int]float64{{2, 1}: 5, {0, 2}: 7, {1, 0}: 11, {0, 0}: 13}
	for pos, v := range want {
		if got := m.At(pos[0], pos[1]); got != v {
			t.Errorf("At(%d,%d) = %g, want %g", pos[0], pos[1], got, v)
		}
	}
	if m.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4", m.NNZ())
	}
}

// TestCOOToCSRDuplicatesSummed: duplicate coordinates in non-canonical COO
// are summed (and dropped when they cancel), matching FromTriples.
func TestCOOToCSRDuplicatesSummed(t *testing.T) {
	c := &COO[float64]{
		Rows:   2,
		Cols:   2,
		RowIdx: []int{1, 0, 1, 0},
		ColIdx: []int{1, 0, 1, 0},
		Vals:   []float64{2, 3, 4, -3},
	}
	m := c.ToCSR()
	if got := m.At(1, 1); got != 6 {
		t.Errorf("duplicate sum At(1,1) = %g, want 6", got)
	}
	if m.NNZ() != 1 {
		t.Errorf("NNZ = %d, want 1 (cancelling pair dropped)", m.NNZ())
	}
}

// TestCOOToCSRSortedFastPathPreservesZeros: canonical input converts by
// direct copy, keeping explicit zeros and round-tripping exactly.
func TestCOOToCSRSortedFastPathPreservesZeros(t *testing.T) {
	c := &COO[float64]{
		Rows:   2,
		Cols:   3,
		RowIdx: []int{0, 0, 1},
		ColIdx: []int{0, 2, 1},
		Vals:   []float64{1, 0, 4}, // explicit zero survives the fast path
	}
	m := c.ToCSR()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", m.NNZ())
	}
	back := m.ToCOO()
	if back.Validate() != nil || len(back.Vals) != 3 {
		t.Errorf("round trip lost entries: %+v", back)
	}
}

// TestFromTriplesNegativeDims is the regression test for the construction
// panic: make([]int, rows+1) on rows < -1 panicked, and rows == -1 silently
// returned a structurally invalid matrix.
func TestFromTriplesNegativeDims(t *testing.T) {
	for _, dims := range [][2]int{{-1, 4}, {-2, 4}, {4, -1}, {-3, -3}} {
		m, err := FromTriples[float64](dims[0], dims[1], nil)
		if err == nil {
			t.Errorf("FromTriples(%d, %d) accepted negative dimensions: %+v", dims[0], dims[1], m)
		}
	}
	// Zero-sized dimensions remain valid.
	m, err := FromTriples[float64](0, 5, nil)
	if err != nil {
		t.Fatalf("FromTriples(0, 5) = %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
