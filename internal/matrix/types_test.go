package matrix

import (
	"math/rand"
	"testing"
)

// randCSR builds a random valid CSR matrix for property tests.
func randCSR(rng *rand.Rand, rows, cols int, density float64) *CSR[float64] {
	var ts []Triple[float64]
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				ts = append(ts, Triple[float64]{Row: r, Col: c, Val: rng.NormFloat64()})
			}
		}
	}
	m, err := FromTriples(rows, cols, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func mustCSR(t *testing.T, rows, cols int, ts []Triple[float64]) *CSR[float64] {
	t.Helper()
	m, err := FromTriples(rows, cols, ts)
	if err != nil {
		t.Fatalf("FromTriples: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return m
}

// paperCSR is the 4x4 example matrix from Figure 2 of the paper:
//
//	1 5 0 0
//	0 2 6 0
//	8 0 3 7
//	0 9 0 4
func paperCSR(t *testing.T) *CSR[float64] {
	return mustCSR(t, 4, 4, []Triple[float64]{
		{0, 0, 1}, {0, 1, 5},
		{1, 1, 2}, {1, 2, 6},
		{2, 0, 8}, {2, 2, 3}, {2, 3, 7},
		{3, 1, 9}, {3, 3, 4},
	})
}

func TestPaperExampleCSRLayout(t *testing.T) {
	m := paperCSR(t)
	wantPtr := []int{0, 2, 4, 7, 9}
	wantIdx := []int{0, 1, 1, 2, 0, 2, 3, 1, 3}
	wantVal := []float64{1, 5, 2, 6, 8, 3, 7, 9, 4}
	for i, w := range wantPtr {
		if m.RowPtr[i] != w {
			t.Errorf("RowPtr[%d] = %d, want %d", i, m.RowPtr[i], w)
		}
	}
	for i, w := range wantIdx {
		if m.ColIdx[i] != w {
			t.Errorf("ColIdx[%d] = %d, want %d", i, m.ColIdx[i], w)
		}
	}
	for i, w := range wantVal {
		if m.Vals[i] != w {
			t.Errorf("Vals[%d] = %g, want %g", i, m.Vals[i], w)
		}
	}
}

func TestCSRAt(t *testing.T) {
	m := paperCSR(t)
	cases := []struct {
		r, c int
		want float64
	}{
		{0, 0, 1}, {0, 1, 5}, {0, 2, 0}, {0, 3, 0},
		{1, 0, 0}, {1, 1, 2}, {1, 2, 6},
		{2, 0, 8}, {2, 1, 0}, {2, 2, 3}, {2, 3, 7},
		{3, 1, 9}, {3, 3, 4}, {3, 0, 0},
	}
	for _, tc := range cases {
		if got := m.At(tc.r, tc.c); got != tc.want {
			t.Errorf("At(%d,%d) = %g, want %g", tc.r, tc.c, got, tc.want)
		}
	}
}

func TestCSRValidateRejectsCorruption(t *testing.T) {
	check := func(name string, corrupt func(*CSR[float64])) {
		m := paperCSR(t)
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupted matrix", name)
		}
	}
	check("short RowPtr", func(m *CSR[float64]) { m.RowPtr = m.RowPtr[:3] })
	check("bad first ptr", func(m *CSR[float64]) { m.RowPtr[0] = 1 })
	check("bad last ptr", func(m *CSR[float64]) { m.RowPtr[4] = 5 })
	check("non-monotone ptr", func(m *CSR[float64]) { m.RowPtr[1] = 3; m.RowPtr[2] = 2 })
	check("column out of range", func(m *CSR[float64]) { m.ColIdx[0] = 9 })
	check("negative column", func(m *CSR[float64]) { m.ColIdx[0] = -1 })
	check("duplicate column", func(m *CSR[float64]) { m.ColIdx[1] = 0 })
	check("unsorted columns", func(m *CSR[float64]) { m.ColIdx[0], m.ColIdx[1] = 1, 0 })
	check("len mismatch", func(m *CSR[float64]) { m.Vals = m.Vals[:8] })
}

func TestCOOValidateRejectsCorruption(t *testing.T) {
	check := func(name string, corrupt func(*COO[float64])) {
		m := paperCSR(t).ToCOO()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted corrupted matrix", name)
		}
	}
	check("row out of range", func(m *COO[float64]) { m.RowIdx[0] = 4 })
	check("col out of range", func(m *COO[float64]) { m.ColIdx[0] = -2 })
	check("unsorted", func(m *COO[float64]) {
		m.RowIdx[0], m.RowIdx[1] = m.RowIdx[1], m.RowIdx[0]
		m.RowIdx[0] = 3
	})
	check("duplicate", func(m *COO[float64]) {
		m.RowIdx[1] = m.RowIdx[0]
		m.ColIdx[1] = m.ColIdx[0]
	})
	check("len mismatch", func(m *COO[float64]) { m.Vals = m.Vals[:3] })
}

func TestFormatStringAndParse(t *testing.T) {
	for _, f := range []Format{FormatCSR, FormatCOO, FormatDIA, FormatELL} {
		got, err := ParseFormat(f.String())
		if err != nil {
			t.Fatalf("ParseFormat(%q): %v", f.String(), err)
		}
		if got != f {
			t.Errorf("round trip %v -> %v", f, got)
		}
	}
	if _, err := ParseFormat("XYZ"); err == nil {
		t.Error("ParseFormat accepted unknown format")
	}
	if s := Format(99).String(); s != "Format(99)" {
		t.Errorf("unknown format String() = %q", s)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := paperCSR(t)
	c := m.Clone()
	c.Vals[0] = 42
	c.ColIdx[0] = 3
	c.RowPtr[1] = 0
	if m.Vals[0] != 1 || m.ColIdx[0] != 0 || m.RowPtr[1] != 2 {
		t.Error("Clone shares storage with original")
	}
}

func TestRowDegree(t *testing.T) {
	m := paperCSR(t)
	want := []int{2, 2, 3, 2}
	for r, w := range want {
		if got := m.RowDegree(r); got != w {
			t.Errorf("RowDegree(%d) = %d, want %d", r, got, w)
		}
	}
	if got := m.MaxRowDegree(); got != 3 {
		t.Errorf("MaxRowDegree = %d, want 3", got)
	}
}

func TestNNZCounts(t *testing.T) {
	m := paperCSR(t)
	if m.NNZ() != 9 {
		t.Fatalf("CSR NNZ = %d, want 9", m.NNZ())
	}
	if got := m.ToCOO().NNZ(); got != 9 {
		t.Errorf("COO NNZ = %d, want 9", got)
	}
	d, err := m.ToDIA(0)
	if err != nil {
		t.Fatalf("ToDIA: %v", err)
	}
	if got := d.NNZ(); got != 9 {
		t.Errorf("DIA NNZ = %d, want 9 (fill not counted)", got)
	}
	e, err := m.ToELL(0)
	if err != nil {
		t.Fatalf("ToELL: %v", err)
	}
	if got := e.NNZ(); got != 9 {
		t.Errorf("ELL NNZ = %d, want 9 (padding not counted)", got)
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := mustCSR(t, 3, 5, nil)
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0", m.NNZ())
	}
	if err := m.ToCOO().Validate(); err != nil {
		t.Errorf("empty COO invalid: %v", err)
	}
	d, err := m.ToDIA(0)
	if err != nil {
		t.Fatalf("ToDIA: %v", err)
	}
	if len(d.Offsets) != 0 {
		t.Errorf("empty DIA has %d offsets", len(d.Offsets))
	}
	e, err := m.ToELL(0)
	if err != nil {
		t.Fatalf("ToELL: %v", err)
	}
	if e.Width != 0 {
		t.Errorf("empty ELL width = %d", e.Width)
	}
}
