package matrix

import "fmt"

// FormatHYB identifies the hybrid ELL+COO format. HYB is the repository's
// demonstration of the paper's extensibility claim (Section 3): a fifth
// format added on top of the basic four without changing the tuner — its
// storage lives here, its kernels register in the kernel library, and an
// extended model can classify into it. It is not part of Formats, so the
// stock four-format pipeline is unaffected unless a caller opts in.
const FormatHYB Format = numFormats

// HYB is the hybrid format of Bell & Garland: a regular ELL part holding
// the first Width entries of every row, plus a row-sorted COO part holding
// the overflow of heavier rows. It suits matrices that are mostly regular
// with a skewed tail — exactly where pure ELL drowns in padding.
type HYB[T Float] struct {
	ELL *ELL[T]
	COO *COO[T]
}

// Rows returns the row count.
func (m *HYB[T]) Rows() int { return m.ELL.Rows }

// Cols returns the column count.
func (m *HYB[T]) Cols() int { return m.ELL.Cols }

// NNZ returns the stored nonzero count across both parts.
func (m *HYB[T]) NNZ() int { return m.ELL.NNZ() + m.COO.NNZ() }

// Stored returns the element slots held across both parts, padding included.
func (m *HYB[T]) Stored() int { return m.ELL.Stored() + m.COO.Stored() }

// Validate checks both parts and their dimensional agreement.
func (m *HYB[T]) Validate() error {
	if m.ELL == nil || m.COO == nil {
		return fmt.Errorf("hyb: missing part")
	}
	if err := m.ELL.Validate(); err != nil {
		return fmt.Errorf("hyb ell: %w", err)
	}
	if err := m.COO.Validate(); err != nil {
		return fmt.Errorf("hyb coo: %w", err)
	}
	if m.ELL.Rows != m.COO.Rows || m.ELL.Cols != m.COO.Cols {
		return fmt.Errorf("hyb: part dimensions disagree %dx%d vs %dx%d",
			m.ELL.Rows, m.ELL.Cols, m.COO.Rows, m.COO.Cols)
	}
	return nil
}

// HybSplitWidth picks the ELL width for a CSR matrix: the largest width
// whose ELL part wastes at most maxPad of its slots on padding, which keeps
// the regular part dense while the COO tail absorbs the heavy rows.
func HybSplitWidth[T Float](m *CSR[T], maxPad float64) int {
	if m.Rows == 0 {
		return 0
	}
	// histogram[k] = number of rows with degree ≥ k is derived by suffix
	// summing the degree histogram.
	maxDeg := m.MaxRowDegree()
	atLeast := make([]int, maxDeg+2)
	for r := 0; r < m.Rows; r++ {
		atLeast[m.RowDegree(r)]++
	}
	for k := maxDeg - 1; k >= 0; k-- {
		atLeast[k] += atLeast[k+1]
	}
	best := 0
	stored := 0 // entries covered by widths ≤ current
	for w := 1; w <= maxDeg; w++ {
		stored += atLeast[w] // rows with degree ≥ w contribute one entry at slot w-1
		pad := w*m.Rows - stored
		if float64(pad) <= maxPad*float64(w*m.Rows) {
			best = w
		}
	}
	return best
}

// ToHYB converts to hybrid storage with the given ELL width (width < 0
// selects HybSplitWidth with 30% padding allowance).
func (m *CSR[T]) ToHYB(width int) *HYB[T] {
	if width < 0 {
		width = HybSplitWidth(m, 0.3)
	}
	ell := &ELL[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		Width:  width,
		ColIdx: make([]int, width*m.Rows),
		Data:   make([]T, width*m.Rows),
	}
	coo := &COO[T]{Rows: m.Rows, Cols: m.Cols}
	for r := 0; r < m.Rows; r++ {
		slot := 0
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			if slot < width {
				ell.ColIdx[slot*m.Rows+r] = m.ColIdx[jj]
				ell.Data[slot*m.Rows+r] = m.Vals[jj]
				slot++
				continue
			}
			coo.RowIdx = append(coo.RowIdx, r)
			coo.ColIdx = append(coo.ColIdx, m.ColIdx[jj])
			coo.Vals = append(coo.Vals, m.Vals[jj])
		}
	}
	return &HYB[T]{ELL: ell, COO: coo}
}

// ToCSR converts hybrid storage back to CSR.
func (m *HYB[T]) ToCSR() *CSR[T] {
	var ts []Triple[T]
	for r := 0; r < m.ELL.Rows; r++ {
		for slot := 0; slot < m.ELL.Width; slot++ {
			if v := m.ELL.Data[slot*m.ELL.Rows+r]; v != 0 {
				ts = append(ts, Triple[T]{Row: r, Col: m.ELL.ColIdx[slot*m.ELL.Rows+r], Val: v})
			}
		}
	}
	for k := range m.COO.Vals {
		ts = append(ts, Triple[T]{Row: m.COO.RowIdx[k], Col: m.COO.ColIdx[k], Val: m.COO.Vals[k]})
	}
	out, err := FromTriples(m.ELL.Rows, m.ELL.Cols, ts)
	if err != nil {
		// Both parts were validated at conversion time; unreachable.
		panic(err)
	}
	return out
}
