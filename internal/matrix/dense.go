package matrix

import "math"

// Dense is a row-major dense matrix used as the correctness reference for
// sparse kernels and conversions in tests and small solves (the AMG coarsest
// level). It is not a performance format.
type Dense[T Float] struct {
	Rows, Cols int
	Data       []T // Data[r*Cols+c]
}

// NewDense allocates a zeroed Rows×Cols dense matrix.
func NewDense[T Float](rows, cols int) *Dense[T] {
	return &Dense[T]{Rows: rows, Cols: cols, Data: make([]T, rows*cols)}
}

// At returns the element at (r, c).
func (m *Dense[T]) At(r, c int) T { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Dense[T]) Set(r, c int, v T) { m.Data[r*m.Cols+c] = v }

// MulVec computes y = A·x by the definition, as a reference.
func (m *Dense[T]) MulVec(x, y []T) {
	for r := 0; r < m.Rows; r++ {
		var sum T
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			sum += v * x[c]
		}
		y[r] = sum
	}
}

// ToDense expands a CSR matrix into the dense reference representation.
func (m *CSR[T]) ToDense() *Dense[T] {
	d := NewDense[T](m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			d.Data[r*m.Cols+m.ColIdx[jj]] = m.Vals[jj]
		}
	}
	return d
}

// DenseFromRows builds a dense matrix from a slice of rows (each of equal
// length). Convenient in tests.
func DenseFromRows[T Float](rows [][]T) *Dense[T] {
	if len(rows) == 0 {
		return NewDense[T](0, 0)
	}
	d := NewDense[T](len(rows), len(rows[0]))
	for r, row := range rows {
		copy(d.Data[r*d.Cols:(r+1)*d.Cols], row)
	}
	return d
}

// CSRFromDense compresses a dense matrix, dropping exact zeros.
func CSRFromDense[T Float](d *Dense[T]) *CSR[T] {
	m := &CSR[T]{Rows: d.Rows, Cols: d.Cols, RowPtr: make([]int, d.Rows+1)}
	for r := 0; r < d.Rows; r++ {
		for c := 0; c < d.Cols; c++ {
			if v := d.Data[r*d.Cols+c]; v != 0 {
				m.ColIdx = append(m.ColIdx, c)
				m.Vals = append(m.Vals, v)
			}
		}
		m.RowPtr[r+1] = len(m.Vals)
	}
	return m
}

// Mul computes the dense product A·B, as a reference for SpGEMM.
func (m *Dense[T]) Mul(b *Dense[T]) *Dense[T] {
	out := NewDense[T](m.Rows, b.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			v := m.Data[r*m.Cols+k]
			if v == 0 {
				continue
			}
			for c := 0; c < b.Cols; c++ {
				out.Data[r*out.Cols+c] += v * b.Data[k*b.Cols+c]
			}
		}
	}
	return out
}

// VecApproxEqual reports whether two vectors agree elementwise within tol,
// measured relative to the larger magnitude (absolute for small values).
func VecApproxEqual[T Float](a, b []T, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		diff := math.Abs(x - y)
		scale := math.Max(math.Abs(x), math.Abs(y))
		if scale < 1 {
			scale = 1
		}
		if diff > tol*scale {
			return false
		}
	}
	return true
}
