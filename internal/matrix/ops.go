package matrix

// Transpose returns the transpose of the matrix in CSR form, built with a
// counting sort over columns (O(nnz + rows + cols)).
func (m *CSR[T]) Transpose() *CSR[T] {
	t := &CSR[T]{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		ColIdx: make([]int, m.NNZ()),
		Vals:   make([]T, m.NNZ()),
	}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for c := 0; c < m.Cols; c++ {
		t.RowPtr[c+1] += t.RowPtr[c]
	}
	next := append([]int(nil), t.RowPtr[:m.Cols]...)
	for r := 0; r < m.Rows; r++ {
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			c := m.ColIdx[jj]
			dst := next[c]
			next[c]++
			t.ColIdx[dst] = r
			t.Vals[dst] = m.Vals[jj]
		}
	}
	return t
}

// Mul computes the sparse product A·B (Gustavson's row-wise SpGEMM). It is
// the substrate for the AMG Galerkin coarse-grid operator.
func (m *CSR[T]) Mul(b *CSR[T]) *CSR[T] {
	if m.Cols != b.Rows {
		panic("matrix: Mul dimension mismatch")
	}
	out := &CSR[T]{Rows: m.Rows, Cols: b.Cols, RowPtr: make([]int, m.Rows+1)}
	// Dense accumulator with a generation stamp so it is cleared in O(row
	// result size), not O(Cols), per row.
	acc := make([]T, b.Cols)
	stamp := make([]int, b.Cols)
	gen := 0
	var cols []int
	for r := 0; r < m.Rows; r++ {
		gen++
		cols = cols[:0]
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			k := m.ColIdx[jj]
			av := m.Vals[jj]
			for kk := b.RowPtr[k]; kk < b.RowPtr[k+1]; kk++ {
				c := b.ColIdx[kk]
				if stamp[c] != gen {
					stamp[c] = gen
					acc[c] = 0
					cols = append(cols, c)
				}
				acc[c] += av * b.Vals[kk]
			}
		}
		// CSR requires sorted columns within the row.
		insertionSortInts(cols)
		for _, c := range cols {
			if v := acc[c]; v != 0 {
				out.ColIdx = append(out.ColIdx, c)
				out.Vals = append(out.Vals, v)
			}
		}
		out.RowPtr[r+1] = len(out.Vals)
	}
	return out
}

// SortInts sorts an int slice in place with the same hybrid
// insertion/quick sort Mul uses on its result rows, so external SpGEMM
// implementations (internal/kernels) can reproduce Mul's output bit for
// bit, ties included.
func SortInts(a []int) { insertionSortInts(a) }

// insertionSortInts sorts small integer slices in place. SpGEMM result rows
// are short and nearly sorted, where insertion sort beats sort.Ints.
func insertionSortInts(a []int) {
	if len(a) > 64 {
		quickSortInts(a)
		return
	}
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

func quickSortInts(a []int) {
	for len(a) > 64 {
		p := partitionInts(a)
		if p < len(a)-p {
			quickSortInts(a[:p])
			a = a[p+1:]
		} else {
			quickSortInts(a[p+1:])
			a = a[:p]
		}
	}
	insertionSortInts(a)
}

func partitionInts(a []int) int {
	mid := len(a) / 2
	hi := len(a) - 1
	// Median-of-three pivot to the end.
	if a[0] > a[mid] {
		a[0], a[mid] = a[mid], a[0]
	}
	if a[0] > a[hi] {
		a[0], a[hi] = a[hi], a[0]
	}
	if a[mid] > a[hi] {
		a[mid], a[hi] = a[hi], a[mid]
	}
	a[mid], a[hi] = a[hi], a[mid]
	pivot := a[hi]
	i := 0
	for j := 0; j < hi; j++ {
		if a[j] < pivot {
			a[i], a[j] = a[j], a[i]
			i++
		}
	}
	a[i], a[hi] = a[hi], a[i]
	return i
}

// TripleProduct computes R·A·P, the Galerkin coarse-grid operator of AMG.
func TripleProduct[T Float](r, a, p *CSR[T]) *CSR[T] {
	return r.Mul(a).Mul(p)
}

// Diagonal returns the main diagonal as a vector (zero where absent).
func (m *CSR[T]) Diagonal() []T {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]T, m.Rows)
	for r := 0; r < n; r++ {
		d[r] = m.At(r, r)
	}
	return d
}

// Scale multiplies every stored value by s, in place.
func (m *CSR[T]) Scale(s T) {
	for i := range m.Vals {
		m.Vals[i] *= s
	}
}

// Add returns A + B for identically sized matrices.
func (m *CSR[T]) Add(b *CSR[T]) *CSR[T] {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("matrix: Add dimension mismatch")
	}
	out := &CSR[T]{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for r := 0; r < m.Rows; r++ {
		i, iEnd := m.RowPtr[r], m.RowPtr[r+1]
		j, jEnd := b.RowPtr[r], b.RowPtr[r+1]
		for i < iEnd || j < jEnd {
			switch {
			case j >= jEnd || (i < iEnd && m.ColIdx[i] < b.ColIdx[j]):
				out.ColIdx = append(out.ColIdx, m.ColIdx[i])
				out.Vals = append(out.Vals, m.Vals[i])
				i++
			case i >= iEnd || b.ColIdx[j] < m.ColIdx[i]:
				out.ColIdx = append(out.ColIdx, b.ColIdx[j])
				out.Vals = append(out.Vals, b.Vals[j])
				j++
			default:
				if v := m.Vals[i] + b.Vals[j]; v != 0 {
					out.ColIdx = append(out.ColIdx, m.ColIdx[i])
					out.Vals = append(out.Vals, v)
				}
				i++
				j++
			}
		}
		out.RowPtr[r+1] = len(out.Vals)
	}
	return out
}

// Identity returns the n×n identity matrix in CSR form.
func Identity[T Float](n int) *CSR[T] {
	m := &CSR[T]{
		Rows:   n,
		Cols:   n,
		RowPtr: make([]int, n+1),
		ColIdx: make([]int, n),
		Vals:   make([]T, n),
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.ColIdx[i] = i
		m.Vals[i] = 1
	}
	return m
}

// Kron computes the Kronecker product A ⊗ B: the (ia·Brows+ib,
// ja·Bcols+jb) entry is A[ia,ja]·B[ib,jb]. Kronecker powers of a small
// initiator generate the self-similar graphs of the Graph500 benchmark
// family.
func Kron[T Float](a, b *CSR[T]) *CSR[T] {
	out := &CSR[T]{
		Rows:   a.Rows * b.Rows,
		Cols:   a.Cols * b.Cols,
		RowPtr: make([]int, a.Rows*b.Rows+1),
	}
	out.ColIdx = make([]int, 0, a.NNZ()*b.NNZ())
	out.Vals = make([]T, 0, a.NNZ()*b.NNZ())
	for ia := 0; ia < a.Rows; ia++ {
		for ib := 0; ib < b.Rows; ib++ {
			row := ia*b.Rows + ib
			for ja := a.RowPtr[ia]; ja < a.RowPtr[ia+1]; ja++ {
				av := a.Vals[ja]
				base := a.ColIdx[ja] * b.Cols
				for jb := b.RowPtr[ib]; jb < b.RowPtr[ib+1]; jb++ {
					out.ColIdx = append(out.ColIdx, base+b.ColIdx[jb])
					out.Vals = append(out.Vals, av*b.Vals[jb])
				}
			}
			out.RowPtr[row+1] = len(out.Vals)
		}
	}
	return out
}
