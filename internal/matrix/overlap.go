package matrix

import "unsafe"

// SlicesOverlap reports whether two slices share any backing memory. SpMV
// kernels clear y and then accumulate reads of x, so an aliased or
// overlapping x/y pair silently corrupts the result: the guard exists so the
// public entry points can reject the call instead. Zero-length slices never
// overlap.
//
// The comparison is on the numeric addresses of the first and last elements;
// both slices are live across the comparison, so the addresses are stable.
func SlicesOverlap[T Float](x, y []T) bool {
	if len(x) == 0 || len(y) == 0 {
		return false
	}
	xLo := uintptr(unsafe.Pointer(&x[0]))
	yLo := uintptr(unsafe.Pointer(&y[0]))
	xHi := uintptr(unsafe.Pointer(&x[len(x)-1]))
	yHi := uintptr(unsafe.Pointer(&y[len(y)-1]))
	return xLo <= yHi && yLo <= xHi
}
