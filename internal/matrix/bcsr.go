package matrix

import "fmt"

// FormatBCSR identifies the blocked CSR extension format (the register-
// blocking format of Sparsity/OSKI, which the paper builds on in related
// work). Like FormatHYB it is opt-in: not part of Formats, invisible to the
// stock four-format pipeline.
const FormatBCSR Format = numFormats + 1

// BCSR stores the matrix as dense BR×BC blocks over a block-level CSR
// skeleton. Blocks are row-major; block (bi, slot) occupies
// Blocks[slot*BR*BC : (slot+1)*BR*BC]. Rows and Cols are the logical
// (unpadded) dimensions; the last block row/column is zero-padded.
type BCSR[T Float] struct {
	Rows, Cols int
	BR, BC     int
	RowPtr     []int // block rows + 1
	ColIdx     []int // block-column indices, strictly increasing per block row
	Blocks     []T
}

// BlockRows returns the number of block rows.
func (m *BCSR[T]) BlockRows() int { return (m.Rows + m.BR - 1) / m.BR }

// BlockCols returns the number of block columns.
func (m *BCSR[T]) BlockCols() int { return (m.Cols + m.BC - 1) / m.BC }

// NBlocks returns the number of stored blocks.
func (m *BCSR[T]) NBlocks() int { return len(m.ColIdx) }

// Stored returns the number of element slots including block zero fill.
func (m *BCSR[T]) Stored() int { return len(m.Blocks) }

// NNZ returns the number of nonzero entries (zero fill inside blocks is not
// counted).
func (m *BCSR[T]) NNZ() int {
	n := 0
	for _, v := range m.Blocks {
		if v != 0 {
			n++
		}
	}
	return n
}

// Validate checks the structural invariants.
func (m *BCSR[T]) Validate() error {
	if m.BR < 1 || m.BC < 1 {
		return fmt.Errorf("bcsr: invalid block size %dx%d", m.BR, m.BC)
	}
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("bcsr: negative dimensions")
	}
	if len(m.RowPtr) != m.BlockRows()+1 {
		return fmt.Errorf("bcsr: RowPtr length %d, want %d", len(m.RowPtr), m.BlockRows()+1)
	}
	if len(m.Blocks) != len(m.ColIdx)*m.BR*m.BC {
		return fmt.Errorf("bcsr: Blocks length %d, want %d", len(m.Blocks), len(m.ColIdx)*m.BR*m.BC)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[len(m.RowPtr)-1] != len(m.ColIdx) {
		return fmt.Errorf("bcsr: RowPtr endpoints wrong")
	}
	for bi := 0; bi < m.BlockRows(); bi++ {
		if m.RowPtr[bi] > m.RowPtr[bi+1] {
			return fmt.Errorf("bcsr: RowPtr not monotone at block row %d", bi)
		}
		prev := -1
		for s := m.RowPtr[bi]; s < m.RowPtr[bi+1]; s++ {
			c := m.ColIdx[s]
			if c < 0 || c >= m.BlockCols() {
				return fmt.Errorf("bcsr: block column %d out of range", c)
			}
			if c <= prev {
				return fmt.Errorf("bcsr: block columns not increasing in block row %d", bi)
			}
			prev = c
		}
	}
	return nil
}

// BlockFill returns the stored-element count of a (br, bc) blocking as a
// multiple of NNZ, computed exactly in O(nnz) — the quantity OSKI estimates
// by sampling to pick the register-blocking factor.
func BlockFill[T Float](m *CSR[T], br, bc int) float64 {
	if m.NNZ() == 0 {
		return 0
	}
	blockCols := (m.Cols + bc - 1) / bc
	seen := make([]int, blockCols) // last block row to touch this block col
	for i := range seen {
		seen[i] = -1
	}
	blocks := 0
	blockRows := (m.Rows + br - 1) / br
	for bi := 0; bi < blockRows; bi++ {
		rowEnd := (bi + 1) * br
		if rowEnd > m.Rows {
			rowEnd = m.Rows
		}
		for r := bi * br; r < rowEnd; r++ {
			for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
				bcIdx := m.ColIdx[jj] / bc
				if seen[bcIdx] != bi {
					seen[bcIdx] = bi
					blocks++
				}
			}
		}
	}
	return float64(blocks*br*bc) / float64(m.NNZ())
}

// BestBlockSize picks the (br, bc) from a candidate set by a bytes-moved
// model, the simplification of OSKI's profile-driven selection: SpMV is
// memory-bound, an unblocked element moves a value plus a column index
// (8+8 bytes for float64), while a blocked element moves fill× values but
// amortises one block index over br·bc elements. The blocking with the
// smallest modelled traffic wins; 1×1 is kept unless a blocking is a clear
// improvement.
func BestBlockSize[T Float](m *CSR[T]) (br, bc int) {
	type cand struct{ r, c int }
	cands := []cand{{2, 2}, {2, 3}, {3, 3}, {4, 4}, {6, 6}, {8, 8}}
	br, bc = 1, 1
	const valBytes, idxBytes = 8.0, 8.0
	bestScore := 0.95 // a blocking must beat 1x1 by ≥5% of modelled traffic
	for _, c := range cands {
		fill := BlockFill(m, c.r, c.c)
		area := float64(c.r * c.c)
		score := (fill*valBytes + idxBytes/area) / (valBytes + idxBytes)
		if score < bestScore {
			br, bc = c.r, c.c
			bestScore = score
		}
	}
	return br, bc
}

// ToBCSR converts to blocked CSR with the given block size (br, bc ≤ 0
// selects BestBlockSize). maxFillRatio bounds stored elements as a multiple
// of NNZ (≤0: unlimited).
func (m *CSR[T]) ToBCSR(br, bc int, maxFillRatio float64) (*BCSR[T], error) {
	if br <= 0 || bc <= 0 {
		br, bc = BestBlockSize(m)
	}
	if maxFillRatio > 0 && m.NNZ() > 0 {
		if fill := BlockFill(m, br, bc); fill > maxFillRatio {
			return nil, fmt.Errorf("%w: BCSR %dx%d fill %.2fx", ErrFillExplosion, br, bc, fill)
		}
	}
	blockRows := (m.Rows + br - 1) / br
	blockCols := (m.Cols + bc - 1) / bc
	out := &BCSR[T]{Rows: m.Rows, Cols: m.Cols, BR: br, BC: bc, RowPtr: make([]int, blockRows+1)}
	slotOf := make([]int, blockCols) // block col -> slot index within this block row
	for i := range slotOf {
		slotOf[i] = -1
	}
	var touched []int
	for bi := 0; bi < blockRows; bi++ {
		rowEnd := (bi + 1) * br
		if rowEnd > m.Rows {
			rowEnd = m.Rows
		}
		// Discover the block columns of this block row in sorted order:
		// merge the sorted per-row column lists.
		touched = touched[:0]
		for r := bi * br; r < rowEnd; r++ {
			for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
				c := m.ColIdx[jj] / bc
				if slotOf[c] == -1 {
					slotOf[c] = 0
					touched = append(touched, c)
				}
			}
		}
		insertionSortInts(touched)
		base := len(out.ColIdx)
		for s, c := range touched {
			slotOf[c] = base + s
			out.ColIdx = append(out.ColIdx, c)
		}
		out.Blocks = append(out.Blocks, make([]T, len(touched)*br*bc)...)
		// Fill values.
		for r := bi * br; r < rowEnd; r++ {
			lr := r - bi*br
			for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
				col := m.ColIdx[jj]
				slot := slotOf[col/bc]
				out.Blocks[slot*br*bc+lr*bc+(col%bc)] = m.Vals[jj]
			}
		}
		for _, c := range touched {
			slotOf[c] = -1
		}
		out.RowPtr[bi+1] = len(out.ColIdx)
	}
	return out, nil
}

// ToCSR converts blocked storage back to CSR, dropping block fill.
func (m *BCSR[T]) ToCSR() *CSR[T] {
	var ts []Triple[T]
	for bi := 0; bi < m.BlockRows(); bi++ {
		for s := m.RowPtr[bi]; s < m.RowPtr[bi+1]; s++ {
			baseRow := bi * m.BR
			baseCol := m.ColIdx[s] * m.BC
			for lr := 0; lr < m.BR; lr++ {
				for lc := 0; lc < m.BC; lc++ {
					v := m.Blocks[s*m.BR*m.BC+lr*m.BC+lc]
					if v == 0 {
						continue
					}
					ts = append(ts, Triple[T]{Row: baseRow + lr, Col: baseCol + lc, Val: v})
				}
			}
		}
	}
	out, err := FromTriples(m.Rows, m.Cols, ts)
	if err != nil {
		// Block indices were validated at conversion; unreachable.
		panic(err)
	}
	return out
}
