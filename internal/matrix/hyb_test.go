package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHybSplitWidthConstantDegree(t *testing.T) {
	// Constant degree 4: the whole matrix fits the ELL part with zero pad.
	rng := rand.New(rand.NewSource(1))
	m := randConstantDegree(rng, 200, 4)
	if w := HybSplitWidth(m, 0.3); w != 4 {
		t.Fatalf("width = %d, want 4", w)
	}
	h := m.ToHYB(-1)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.COO.NNZ() != 0 {
		t.Errorf("COO part holds %d entries, want 0", h.COO.NNZ())
	}
	if h.NNZ() != m.NNZ() {
		t.Errorf("NNZ %d != %d", h.NNZ(), m.NNZ())
	}
}

func randConstantDegree(rng *rand.Rand, n, deg int) *CSR[float64] {
	var ts []Triple[float64]
	for r := 0; r < n; r++ {
		seen := map[int]bool{}
		for len(seen) < deg {
			c := rng.Intn(n)
			if !seen[c] {
				seen[c] = true
				ts = append(ts, Triple[float64]{Row: r, Col: c, Val: 1 + rng.Float64()})
			}
		}
	}
	m, err := FromTriples(n, n, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func TestHybSplitsSkewedTail(t *testing.T) {
	// Mostly degree-2 rows plus one dense row: the dense row must overflow
	// into COO instead of padding ELL to full width.
	n := 200
	var ts []Triple[float64]
	for i := 0; i < n; i++ {
		ts = append(ts, Triple[float64]{Row: i, Col: i, Val: 2})
		ts = append(ts, Triple[float64]{Row: i, Col: (i + 1) % n, Val: 1})
	}
	for c := 2; c < n; c++ {
		ts = append(ts, Triple[float64]{Row: 0, Col: c, Val: 3})
	}
	m, err := FromTriples(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	h := m.ToHYB(-1)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.ELL.Width > 3 {
		t.Errorf("ELL width = %d, want small (dense row in COO)", h.ELL.Width)
	}
	if h.COO.NNZ() == 0 {
		t.Error("COO part empty despite dense row")
	}
	if !h.ToCSR().Equal(m) {
		t.Error("HYB round trip mismatch")
	}
}

func TestHybRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randCSR(rng, 1+rng.Intn(30), 1+rng.Intn(30), 0.05+rng.Float64()*0.4)
		for _, w := range []int{-1, 0, 1, 2, 100} {
			h := m.ToHYB(w)
			if err := h.Validate(); err != nil {
				t.Logf("invalid HYB (w=%d): %v", w, err)
				return false
			}
			if !h.ToCSR().Equal(m) {
				t.Logf("round trip mismatch (w=%d, seed %d)", w, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHybValidateRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randCSR(rng, 20, 20, 0.3)
	h := m.ToHYB(2)
	h.COO.Rows = 5
	if err := h.Validate(); err == nil {
		t.Error("dimension mismatch accepted")
	}
	h2 := m.ToHYB(2)
	h2.ELL = nil
	if err := h2.Validate(); err == nil {
		t.Error("missing part accepted")
	}
}

func TestHybFormatConstant(t *testing.T) {
	if FormatHYB == FormatCSR || FormatHYB == FormatCOO || FormatHYB == FormatDIA || FormatHYB == FormatELL {
		t.Fatal("FormatHYB collides with a basic format")
	}
	for _, f := range Formats {
		if f == FormatHYB {
			t.Fatal("FormatHYB must not be part of the stock format set")
		}
	}
}

func TestHybSplitWidthEmpty(t *testing.T) {
	m, err := FromTriples[float64](0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w := HybSplitWidth(m, 0.3); w != 0 {
		t.Errorf("empty matrix width = %d", w)
	}
}
