package matrix

import "testing"

func TestSlicesOverlap(t *testing.T) {
	buf := make([]float64, 10)
	other := make([]float64, 10)
	cases := []struct {
		name string
		x, y []float64
		want bool
	}{
		{"identical", buf, buf, true},
		{"distinct", buf, other, false},
		{"x-nil", nil, buf, false},
		{"y-nil", buf, nil, false},
		{"both-empty", buf[:0], buf[:0], false},
		{"empty-vs-full", buf[:0], buf, false},
		{"disjoint-halves", buf[:5], buf[5:], false},
		{"overlapping-middle", buf[:6], buf[4:], true},
		{"one-element-shared", buf[:5], buf[4:5], true},
		{"nested", buf, buf[3:7], true},
		{"adjacent-single", buf[4:5], buf[5:6], false},
	}
	for _, c := range cases {
		if got := SlicesOverlap(c.x, c.y); got != c.want {
			t.Errorf("%s: SlicesOverlap = %v, want %v", c.name, got, c.want)
		}
		if got := SlicesOverlap(c.y, c.x); got != c.want {
			t.Errorf("%s (swapped): SlicesOverlap = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSlicesOverlapFloat32(t *testing.T) {
	buf := make([]float32, 8)
	if !SlicesOverlap(buf[:5], buf[3:]) {
		t.Error("overlapping float32 slices not detected")
	}
	if SlicesOverlap(buf[:4], buf[4:]) {
		t.Error("disjoint float32 halves reported overlapping")
	}
}
