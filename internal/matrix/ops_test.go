package matrix

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTransposeTwiceIsIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randCSR(r, 1+r.Intn(25), 1+r.Intn(25), 0.25)
		return m.Equal(m.Transpose().Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randCSR(rng, 11, 17, 0.3)
	mt := m.Transpose()
	if err := mt.Validate(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if m.At(r, c) != mt.At(c, r) {
				t.Fatalf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestSpGEMMAgainstDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, k, p := 1+r.Intn(15), 1+r.Intn(15), 1+r.Intn(15)
		a := randCSR(r, n, k, 0.3)
		b := randCSR(r, k, p, 0.3)
		got := a.Mul(b)
		if err := got.Validate(); err != nil {
			t.Logf("invalid SpGEMM result: %v", err)
			return false
		}
		want := a.ToDense().Mul(b.ToDense())
		for row := 0; row < n; row++ {
			for col := 0; col < p; col++ {
				g := float64(got.At(row, col))
				w := float64(want.At(row, col))
				if diff := g - w; diff > 1e-9 || diff < -1e-9 {
					t.Logf("mismatch at (%d,%d): %g vs %g (seed %d)", row, col, g, w, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randCSR(rng, 10, 10, 0.3)
	id := Identity[float64](10)
	if !m.Mul(id).Equal(m) {
		t.Error("A*I != A")
	}
	if !id.Mul(m).Equal(m) {
		t.Error("I*A != A")
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mul with mismatched dims did not panic")
		}
	}()
	a := Identity[float64](3)
	b := Identity[float64](4)
	a.Mul(b)
}

func TestAddAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randCSR(rng, 12, 8, 0.3)
	b := randCSR(rng, 12, 8, 0.3)
	sum := a.Add(b)
	if err := sum.Validate(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 12; r++ {
		for c := 0; c < 8; c++ {
			want := a.At(r, c) + b.At(r, c)
			if got := sum.At(r, c); got != want {
				t.Fatalf("Add mismatch at (%d,%d): %g vs %g", r, c, got, want)
			}
		}
	}
}

func TestAddCancellationDropsZeros(t *testing.T) {
	a := mustCSR(t, 2, 2, []Triple[float64]{{0, 0, 2}, {1, 1, 3}})
	b := mustCSR(t, 2, 2, []Triple[float64]{{0, 0, -2}, {1, 0, 1}})
	sum := a.Add(b)
	if sum.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2 (cancelled entry dropped)", sum.NNZ())
	}
	if sum.At(0, 0) != 0 || sum.At(1, 1) != 3 || sum.At(1, 0) != 1 {
		t.Error("Add cancellation produced wrong values")
	}
}

func TestTripleProductAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Shapes as in AMG: R is coarse×fine, A is fine×fine, P is fine×coarse.
	fine, coarse := 14, 6
	a := randCSR(rng, fine, fine, 0.3)
	p := randCSR(rng, fine, coarse, 0.3)
	r := p.Transpose()
	got := TripleProduct(r, a, p)
	want := r.ToDense().Mul(a.ToDense()).Mul(p.ToDense())
	for i := 0; i < coarse; i++ {
		for j := 0; j < coarse; j++ {
			g, w := float64(got.At(i, j)), float64(want.At(i, j))
			if diff := g - w; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("RAP mismatch at (%d,%d): %g vs %g", i, j, g, w)
			}
		}
	}
}

func TestDiagonal(t *testing.T) {
	m := paperCSR(t)
	want := []float64{1, 2, 3, 4}
	for i, w := range want {
		if got := m.Diagonal()[i]; got != w {
			t.Errorf("Diagonal[%d] = %g, want %g", i, got, w)
		}
	}
}

func TestScale(t *testing.T) {
	m := paperCSR(t)
	m.Scale(2)
	if m.At(2, 3) != 14 {
		t.Errorf("Scale: At(2,3) = %g, want 14", m.At(2, 3))
	}
}

func TestSortHelpersProperty(t *testing.T) {
	f := func(a []int) bool {
		mine := append([]int(nil), a...)
		ref := append([]int(nil), a...)
		insertionSortInts(mine)
		sort.Ints(ref)
		for i := range ref {
			if mine[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	// Exercise the quicksort path explicitly with a large reversed slice.
	big := make([]int, 1000)
	for i := range big {
		big[i] = len(big) - i
	}
	insertionSortInts(big)
	for i := 1; i < len(big); i++ {
		if big[i-1] > big[i] {
			t.Fatal("large sort produced unsorted output")
		}
	}
}

func TestIdentityStructure(t *testing.T) {
	id := Identity[float32](5)
	if err := id.Validate(); err != nil {
		t.Fatal(err)
	}
	if id.NNZ() != 5 {
		t.Fatalf("identity NNZ = %d", id.NNZ())
	}
	for i := 0; i < 5; i++ {
		if id.At(i, i) != 1 {
			t.Fatalf("identity At(%d,%d) != 1", i, i)
		}
	}
}

func TestDenseMulVec(t *testing.T) {
	d := DenseFromRows([][]float64{
		{1, 2},
		{3, 4},
	})
	x := []float64{5, 6}
	y := make([]float64, 2)
	d.MulVec(x, y)
	if y[0] != 17 || y[1] != 39 {
		t.Errorf("MulVec = %v, want [17 39]", y)
	}
}

func TestKronAgainstDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randCSR(rng, 1+rng.Intn(6), 1+rng.Intn(6), 0.5)
		b := randCSR(rng, 1+rng.Intn(6), 1+rng.Intn(6), 0.5)
		k := Kron(a, b)
		if err := k.Validate(); err != nil {
			t.Logf("invalid Kron result: %v", err)
			return false
		}
		if k.Rows != a.Rows*b.Rows || k.Cols != a.Cols*b.Cols {
			return false
		}
		for ia := 0; ia < a.Rows; ia++ {
			for ja := 0; ja < a.Cols; ja++ {
				for ib := 0; ib < b.Rows; ib++ {
					for jb := 0; jb < b.Cols; jb++ {
						want := a.At(ia, ja) * b.At(ib, jb)
						got := k.At(ia*b.Rows+ib, ja*b.Cols+jb)
						if got != want {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestKronIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randCSR(rng, 6, 6, 0.4)
	k := Kron(Identity[float64](1), a)
	if !k.Equal(a) {
		t.Error("I1 ⊗ A != A")
	}
	k2 := Kron(a, Identity[float64](1))
	if !k2.Equal(a) {
		t.Error("A ⊗ I1 != A")
	}
	// nnz multiplies.
	b := randCSR(rng, 4, 4, 0.5)
	if got := Kron(a, b).NNZ(); got != a.NNZ()*b.NNZ() {
		t.Errorf("nnz = %d, want %d", got, a.NNZ()*b.NNZ())
	}
}
