package matrix

import (
	"math/rand"
	"testing"
)

func benchMatrix(b *testing.B) *CSR[float64] {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return randCSR(rng, 2000, 2000, 0.005)
}

func BenchmarkSpGEMM(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Mul(m)
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Transpose()
	}
}

func BenchmarkTripleProductRAP(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randCSR(rng, 2000, 2000, 0.005)
	p := randCSR(rng, 2000, 500, 0.004)
	r := p.Transpose()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = TripleProduct(r, a, p)
	}
}

func BenchmarkConversions(b *testing.B) {
	m := benchMatrix(b)
	b.Run("ToCOO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = m.ToCOO()
		}
	})
	b.Run("ToELL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.ToELL(0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ToHYB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = m.ToHYB(-1)
		}
	})
	b.Run("ToBCSR2x2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.ToBCSR(2, 2, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFromTriples(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ts := make([]Triple[float64], 50000)
	for i := range ts {
		ts[i] = Triple[float64]{Row: rng.Intn(5000), Col: rng.Intn(5000), Val: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromTriples(5000, 5000, ts); err != nil {
			b.Fatal(err)
		}
	}
}
