package matrix

import "fmt"

// Bandwidth returns the maximum |col−row| over stored entries: the quantity
// Cuthill–McKee reordering minimises, and a direct proxy for DIA
// suitability (a reordered matrix concentrates its diagonals near the main
// one).
func (m *CSR[T]) Bandwidth() int {
	bw := 0
	for r := 0; r < m.Rows; r++ {
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			d := m.ColIdx[jj] - r
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// RCM computes the reverse Cuthill–McKee ordering of a square matrix's
// symmetrised adjacency graph, returning perm such that row/column i of the
// reordered matrix is perm[i] of the original. Reordering a scattered but
// locally-coupled matrix can move it into DIA/banded territory — a
// preprocessing step that changes which format SMAT picks.
func (m *CSR[T]) RCM() ([]int, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("matrix: RCM needs a square matrix, got %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	// Symmetrised adjacency: A + Aᵀ pattern.
	t := m.Transpose()
	adj := make([][]int32, n)
	for r := 0; r < n; r++ {
		var row []int32
		i, iEnd := m.RowPtr[r], m.RowPtr[r+1]
		j, jEnd := t.RowPtr[r], t.RowPtr[r+1]
		for i < iEnd || j < jEnd {
			var c int
			switch {
			case j >= jEnd || (i < iEnd && m.ColIdx[i] < t.ColIdx[j]):
				c = m.ColIdx[i]
				i++
			case i >= iEnd || t.ColIdx[j] < m.ColIdx[i]:
				c = t.ColIdx[j]
				j++
			default:
				c = m.ColIdx[i]
				i++
				j++
			}
			if c != r {
				row = append(row, int32(c))
			}
		}
		adj[r] = row
	}
	degree := func(v int) int { return len(adj[v]) }

	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for len(order) < n {
		// Start each component from a minimum-degree unvisited vertex (the
		// standard peripheral-vertex heuristic).
		start, best := -1, n+1
		for v := 0; v < n; v++ {
			if !visited[v] && degree(v) < best {
				start, best = v, degree(v)
			}
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			// Neighbours in increasing-degree order.
			var nbrs []int
			for _, u := range adj[v] {
				if !visited[u] {
					visited[u] = true
					nbrs = append(nbrs, int(u))
				}
			}
			for i := 1; i < len(nbrs); i++ {
				x := nbrs[i]
				j := i - 1
				for j >= 0 && degree(nbrs[j]) > degree(x) {
					nbrs[j+1] = nbrs[j]
					j--
				}
				nbrs[j+1] = x
			}
			queue = append(queue, nbrs...)
		}
	}
	// Reverse (the "R" of RCM).
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// Permute returns P·A·Pᵀ for the symmetric permutation perm: entry (i, j)
// of the result is A[perm[i], perm[j]].
func (m *CSR[T]) Permute(perm []int) (*CSR[T], error) {
	if m.Rows != m.Cols || len(perm) != m.Rows {
		return nil, fmt.Errorf("matrix: Permute needs a square matrix and a full permutation")
	}
	n := m.Rows
	inv := make([]int, n)
	seen := make([]bool, n)
	for i, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("matrix: invalid permutation at position %d", i)
		}
		seen[p] = true
		inv[p] = i
	}
	ts := make([]Triple[T], 0, m.NNZ())
	for i := 0; i < n; i++ {
		r := perm[i]
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			ts = append(ts, Triple[T]{Row: i, Col: inv[m.ColIdx[jj]], Val: m.Vals[jj]})
		}
	}
	return FromTriples(n, n, ts)
}
