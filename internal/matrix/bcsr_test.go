package matrix

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// randBlockMatrix builds a matrix of dense 2x2 blocks at random block
// positions, the BCSR-friendly structure.
func randBlockMatrix(rng *rand.Rand, blockRows, blockCols int, density float64) *CSR[float64] {
	var ts []Triple[float64]
	for bi := 0; bi < blockRows; bi++ {
		for bj := 0; bj < blockCols; bj++ {
			if rng.Float64() < density {
				for lr := 0; lr < 2; lr++ {
					for lc := 0; lc < 2; lc++ {
						ts = append(ts, Triple[float64]{
							Row: bi*2 + lr, Col: bj*2 + lc, Val: 1 + rng.Float64(),
						})
					}
				}
			}
		}
	}
	// Guarantee a nonempty matrix with one full block, keeping every stored
	// block fully dense.
	for lr := 0; lr < 2; lr++ {
		for lc := 0; lc < 2; lc++ {
			ts = append(ts, Triple[float64]{Row: lr, Col: lc, Val: 1})
		}
	}
	m, err := FromTriples(blockRows*2, blockCols*2, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func TestBlockFillExactOnBlockMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randBlockMatrix(rng, 30, 30, 0.2)
	// A 2x2 blocking of a 2x2-block matrix has fill 1 (every stored slot is
	// a structural nonzero).
	if fill := BlockFill(m, 2, 2); fill != 1 {
		t.Errorf("2x2 fill = %g, want 1", fill)
	}
	// 1x1 blocking always has fill exactly 1.
	if fill := BlockFill(m, 1, 1); fill != 1 {
		t.Errorf("1x1 fill = %g, want 1", fill)
	}
	// A 3x3 blocking of a 2x2-block matrix must pad.
	if fill := BlockFill(m, 3, 3); fill <= 1 {
		t.Errorf("3x3 fill = %g, want > 1", fill)
	}
}

func TestBestBlockSizeFindsNaturalBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randBlockMatrix(rng, 40, 40, 0.15)
	br, bc := BestBlockSize(m)
	if br != 2 || bc != 2 {
		t.Errorf("BestBlockSize = %dx%d, want 2x2", br, bc)
	}
	// A scattered matrix should refuse blocking.
	scattered := randCSR(rng, 60, 60, 0.02)
	br, bc = BestBlockSize(scattered)
	if br != 1 || bc != 1 {
		t.Errorf("BestBlockSize on scattered = %dx%d, want 1x1", br, bc)
	}
}

func TestBCSRRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(30)
		cols := 1 + rng.Intn(30)
		m := randCSR(rng, rows, cols, 0.05+rng.Float64()*0.4)
		for _, bs := range [][2]int{{1, 1}, {2, 2}, {3, 2}, {4, 4}, {0, 0}} {
			b, err := m.ToBCSR(bs[0], bs[1], 0)
			if err != nil {
				t.Logf("ToBCSR(%v): %v", bs, err)
				return false
			}
			if err := b.Validate(); err != nil {
				t.Logf("invalid BCSR (%v, seed %d): %v", bs, seed, err)
				return false
			}
			if !b.ToCSR().Equal(m) {
				t.Logf("round trip mismatch (%v, seed %d)", bs, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBCSRFillGuard(t *testing.T) {
	// A diagonal matrix blocks terribly at 8x8 (fill 8x with one element per
	// block... actually 8: each 8x8 block holds 8 diagonal entries → fill 8).
	m := Identity[float64](64)
	if _, err := m.ToBCSR(8, 8, 4); !errors.Is(err, ErrFillExplosion) {
		t.Errorf("err = %v, want ErrFillExplosion", err)
	}
	if _, err := m.ToBCSR(8, 8, 0); err != nil {
		t.Errorf("unlimited ToBCSR failed: %v", err)
	}
}

func TestBCSRRaggedEdges(t *testing.T) {
	// 5x7 with 2x3 blocks: both dimensions ragged.
	rng := rand.New(rand.NewSource(3))
	m := randCSR(rng, 5, 7, 0.5)
	b, err := m.ToBCSR(2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.BlockRows() != 3 || b.BlockCols() != 3 {
		t.Errorf("block grid %dx%d, want 3x3", b.BlockRows(), b.BlockCols())
	}
	if !b.ToCSR().Equal(m) {
		t.Error("ragged round trip mismatch")
	}
	if b.NNZ() != m.NNZ() {
		t.Errorf("NNZ %d != %d", b.NNZ(), m.NNZ())
	}
}

func TestBCSRValidateRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fresh := func() *BCSR[float64] {
		b, err := randCSR(rng, 10, 10, 0.4).ToBCSR(2, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := map[string]func(*BCSR[float64]){
		"zero block size": func(b *BCSR[float64]) { b.BR = 0 },
		"short RowPtr":    func(b *BCSR[float64]) { b.RowPtr = b.RowPtr[:2] },
		"bad endpoint":    func(b *BCSR[float64]) { b.RowPtr[len(b.RowPtr)-1]++ },
		"col out of range": func(b *BCSR[float64]) {
			if len(b.ColIdx) > 0 {
				b.ColIdx[0] = 99
			}
		},
		"blocks length": func(b *BCSR[float64]) { b.Blocks = b.Blocks[:1] },
	}
	for name, corrupt := range cases {
		b := fresh()
		corrupt(b)
		if err := b.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
