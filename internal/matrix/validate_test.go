package matrix

import "testing"

// validCSR is a small well-formed fixture the corruption cases mutate.
func validCSR() *CSR[float64] {
	return &CSR[float64]{
		Rows: 3, Cols: 4,
		RowPtr: []int{0, 2, 2, 4},
		ColIdx: []int{0, 2, 1, 3},
		Vals:   []float64{1, 2, 3, 4},
	}
}

func TestCSRValidate(t *testing.T) {
	if err := validCSR().Validate(); err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
	cases := map[string]func(*CSR[float64]){
		"negative-rows":      func(m *CSR[float64]) { m.Rows = -1; m.RowPtr = nil },
		"negative-cols":      func(m *CSR[float64]) { m.Cols = -1 },
		"rowptr-length":      func(m *CSR[float64]) { m.RowPtr = m.RowPtr[:3] },
		"colidx-vals-length": func(m *CSR[float64]) { m.ColIdx = m.ColIdx[:3] },
		"rowptr-first":       func(m *CSR[float64]) { m.RowPtr[0] = 1 },
		"rowptr-last":        func(m *CSR[float64]) { m.RowPtr[3] = 3 },
		"rowptr-monotone":    func(m *CSR[float64]) { m.RowPtr[1] = 3; m.RowPtr[2] = 1 },
		"col-out-of-range":   func(m *CSR[float64]) { m.ColIdx[3] = 4 },
		"col-negative":       func(m *CSR[float64]) { m.ColIdx[0] = -1 },
		"cols-not-sorted":    func(m *CSR[float64]) { m.ColIdx[0], m.ColIdx[1] = 2, 0 },
		"col-duplicate":      func(m *CSR[float64]) { m.ColIdx[1] = 0 },
	}
	for name, corrupt := range cases {
		m := validCSR()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCSRValidateEmptyDims(t *testing.T) {
	zero := &CSR[float64]{Rows: 0, Cols: 0, RowPtr: []int{0}}
	if err := zero.Validate(); err != nil {
		t.Errorf("0x0: %v", err)
	}
	zeroRows := &CSR[float64]{Rows: 0, Cols: 5, RowPtr: []int{0}}
	if err := zeroRows.Validate(); err != nil {
		t.Errorf("0x5: %v", err)
	}
	zeroCols := &CSR[float64]{Rows: 3, Cols: 0, RowPtr: []int{0, 0, 0, 0}}
	if err := zeroCols.Validate(); err != nil {
		t.Errorf("3x0: %v", err)
	}
	// A 3x0 matrix cannot store an entry: any stored column is out of range.
	bad := &CSR[float64]{Rows: 3, Cols: 0, RowPtr: []int{0, 1, 1, 1}, ColIdx: []int{0}, Vals: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Error("entry in 3x0 accepted")
	}
}

func validCOO() *COO[float64] {
	return &COO[float64]{
		Rows: 3, Cols: 4,
		RowIdx: []int{0, 0, 2},
		ColIdx: []int{1, 3, 0},
		Vals:   []float64{1, 2, 3},
	}
}

func TestCOOValidate(t *testing.T) {
	if err := validCOO().Validate(); err != nil {
		t.Fatalf("valid COO rejected: %v", err)
	}
	cases := map[string]func(*COO[float64]){
		"negative-rows":    func(m *COO[float64]) { m.Rows = -1 },
		"negative-cols":    func(m *COO[float64]) { m.Cols = -2 },
		"length-mismatch":  func(m *COO[float64]) { m.RowIdx = m.RowIdx[:2] },
		"row-out-of-range": func(m *COO[float64]) { m.RowIdx[2] = 3 },
		"col-out-of-range": func(m *COO[float64]) { m.ColIdx[1] = 4 },
		"row-negative":     func(m *COO[float64]) { m.RowIdx[0] = -1 },
		"unsorted-rows":    func(m *COO[float64]) { m.RowIdx[0], m.RowIdx[2] = 2, 0 },
		"unsorted-cols":    func(m *COO[float64]) { m.ColIdx[0], m.ColIdx[1] = 3, 1 },
		"duplicate":        func(m *COO[float64]) { m.ColIdx[1] = 1 },
	}
	for name, corrupt := range cases {
		m := validCOO()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	empty := &COO[float64]{Rows: 0, Cols: 0}
	if err := empty.Validate(); err != nil {
		t.Errorf("0x0: %v", err)
	}
	zeroCols := &COO[float64]{Rows: 4, Cols: 0}
	if err := zeroCols.Validate(); err != nil {
		t.Errorf("4x0: %v", err)
	}
}

func validDIA() *DIA[float64] {
	return &DIA[float64]{
		Rows: 3, Cols: 3,
		Offsets: []int{-1, 0, 2},
		Data: []float64{
			0, 4, 5, // offset -1: positions (1,0) (2,1); slot 0 padding
			1, 2, 3, // offset 0
			9, 0, 0, // offset 2: position (0,2); rows 1,2 fall outside
		},
	}
}

func TestDIAValidate(t *testing.T) {
	if err := validDIA().Validate(); err != nil {
		t.Fatalf("valid DIA rejected: %v", err)
	}
	cases := map[string]func(*DIA[float64]){
		"negative-rows":     func(m *DIA[float64]) { m.Rows = -1 },
		"negative-cols":     func(m *DIA[float64]) { m.Cols = -1 },
		"data-length":       func(m *DIA[float64]) { m.Data = m.Data[:8] },
		"offsets-unsorted":  func(m *DIA[float64]) { m.Offsets[0], m.Offsets[1] = 0, -1 },
		"offset-duplicate":  func(m *DIA[float64]) { m.Offsets[0] = 0 },
		"offset-below":      func(m *DIA[float64]) { m.Offsets[0] = -3 },
		"offset-above":      func(m *DIA[float64]) { m.Offsets[2] = 3 },
		"nonzero-past-edge": func(m *DIA[float64]) { m.Data[0] = 7 }, // (0,-1) is outside
	}
	for name, corrupt := range cases {
		m := validDIA()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDIAValidateEmptyDims(t *testing.T) {
	if err := (&DIA[float64]{}).Validate(); err != nil {
		t.Errorf("0x0: %v", err)
	}
	// Rows == 0 makes every offset violate off > -Rows; no diagonal can
	// exist, so Offsets must be empty.
	bad := &DIA[float64]{Rows: 0, Cols: 4, Offsets: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Error("diagonal in 0x4 accepted")
	}
	badCols := &DIA[float64]{Rows: 4, Cols: 0, Offsets: []int{0}, Data: make([]float64, 4)}
	if err := badCols.Validate(); err == nil {
		t.Error("diagonal in 4x0 accepted")
	}
}

func validELL() *ELL[float64] {
	return &ELL[float64]{
		Rows: 3, Cols: 4, Width: 2,
		ColIdx: []int{0, 1, 0, 2, 3, 0},
		Data:   []float64{1, 2, 3, 4, 5, 0},
	}
}

func TestELLValidate(t *testing.T) {
	if err := validELL().Validate(); err != nil {
		t.Fatalf("valid ELL rejected: %v", err)
	}
	cases := map[string]func(*ELL[float64]){
		"negative-rows":    func(m *ELL[float64]) { m.Rows = -1; m.Width = -1 },
		"negative-cols":    func(m *ELL[float64]) { m.Cols = -1 },
		"negative-width":   func(m *ELL[float64]) { m.Width = -2 },
		"data-length":      func(m *ELL[float64]) { m.Data = m.Data[:4] },
		"colidx-length":    func(m *ELL[float64]) { m.ColIdx = m.ColIdx[:4] },
		"col-out-of-range": func(m *ELL[float64]) { m.ColIdx[3] = 4 },
		"col-negative":     func(m *ELL[float64]) { m.ColIdx[0] = -1 },
	}
	for name, corrupt := range cases {
		m := validELL()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestELLValidateEmptyDims(t *testing.T) {
	if err := (&ELL[float64]{}).Validate(); err != nil {
		t.Errorf("0x0: %v", err)
	}
	// Padding slots carry column index 0, which Validate permits only while
	// Cols == 0 pairs with an all-padding (zero-row or zero-width) layout.
	zeroRows := &ELL[float64]{Rows: 0, Cols: 6, Width: 3}
	if err := zeroRows.Validate(); err != nil {
		t.Errorf("0x6: %v", err)
	}
	zeroColsPadding := &ELL[float64]{Rows: 2, Cols: 0, Width: 1, ColIdx: []int{0, 0}, Data: []float64{0, 0}}
	if err := zeroColsPadding.Validate(); err != nil {
		t.Errorf("2x0 all-padding: %v", err)
	}
}

func validHYB() *HYB[float64] {
	return &HYB[float64]{
		ELL: &ELL[float64]{Rows: 3, Cols: 4, Width: 1, ColIdx: []int{0, 1, 2}, Data: []float64{1, 2, 3}},
		COO: &COO[float64]{Rows: 3, Cols: 4, RowIdx: []int{1}, ColIdx: []int{3}, Vals: []float64{9}},
	}
}

func TestHYBValidate(t *testing.T) {
	if err := validHYB().Validate(); err != nil {
		t.Fatalf("valid HYB rejected: %v", err)
	}
	cases := map[string]func(*HYB[float64]){
		"missing-ell":    func(m *HYB[float64]) { m.ELL = nil },
		"missing-coo":    func(m *HYB[float64]) { m.COO = nil },
		"bad-ell":        func(m *HYB[float64]) { m.ELL.ColIdx[0] = 9 },
		"bad-coo":        func(m *HYB[float64]) { m.COO.RowIdx[0] = 7 },
		"rows-disagree":  func(m *HYB[float64]) { m.COO.Rows = 5; m.COO.RowIdx[0] = 4 },
		"cols-disagree":  func(m *HYB[float64]) { m.COO.Cols = 9 },
		"negative-parts": func(m *HYB[float64]) { m.ELL.Rows = -1; m.COO.Rows = -1 },
	}
	for name, corrupt := range cases {
		m := validHYB()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	empty := &HYB[float64]{ELL: &ELL[float64]{}, COO: &COO[float64]{}}
	if err := empty.Validate(); err != nil {
		t.Errorf("0x0: %v", err)
	}
}

func validBCSR() *BCSR[float64] {
	return &BCSR[float64]{
		Rows: 3, Cols: 5, BR: 2, BC: 2,
		RowPtr: []int{0, 1, 3},
		ColIdx: []int{0, 1, 2},
		Blocks: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0, 0},
	}
}

func TestBCSRValidate(t *testing.T) {
	if err := validBCSR().Validate(); err != nil {
		t.Fatalf("valid BCSR rejected: %v", err)
	}
	cases := map[string]func(*BCSR[float64]){
		"zero-block":        func(m *BCSR[float64]) { m.BR = 0 },
		"negative-block":    func(m *BCSR[float64]) { m.BC = -1 },
		"negative-rows":     func(m *BCSR[float64]) { m.Rows = -1 },
		"rowptr-length":     func(m *BCSR[float64]) { m.RowPtr = m.RowPtr[:2] },
		"blocks-length":     func(m *BCSR[float64]) { m.Blocks = m.Blocks[:8] },
		"rowptr-endpoints":  func(m *BCSR[float64]) { m.RowPtr[2] = 2 },
		"rowptr-monotone":   func(m *BCSR[float64]) { m.RowPtr[1] = 3; m.RowPtr[2] = 3; m.RowPtr[0] = 3 },
		"blockcol-range":    func(m *BCSR[float64]) { m.ColIdx[2] = 3 },
		"blockcol-negative": func(m *BCSR[float64]) { m.ColIdx[0] = -1 },
		"blockcol-unsorted": func(m *BCSR[float64]) { m.ColIdx[1], m.ColIdx[2] = 2, 1 },
		"blockcol-dup":      func(m *BCSR[float64]) { m.ColIdx[2] = 1 },
	}
	for name, corrupt := range cases {
		m := validBCSR()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBCSRValidateEmptyDims(t *testing.T) {
	empty := &BCSR[float64]{BR: 2, BC: 2, RowPtr: []int{0}}
	if err := empty.Validate(); err != nil {
		t.Errorf("0x0: %v", err)
	}
	zeroCols := &BCSR[float64]{Rows: 3, Cols: 0, BR: 2, BC: 2, RowPtr: []int{0, 0, 0}}
	if err := zeroCols.Validate(); err != nil {
		t.Errorf("3x0: %v", err)
	}
	// With zero block columns no block can be stored.
	bad := &BCSR[float64]{Rows: 3, Cols: 0, BR: 2, BC: 2,
		RowPtr: []int{0, 1, 1}, ColIdx: []int{0}, Blocks: make([]float64, 4)}
	if err := bad.Validate(); err == nil {
		t.Error("block in 3x0 accepted")
	}
}
