package matrix

import (
	"errors"
	"testing"
)

// decodeRawTriples maps fuzzer bytes onto dimensions and triples WITHOUT
// clamping: bytes decode as signed, so negative dimensions and out-of-range
// coordinates — exactly the inputs FromTriples must reject rather than
// panic on or silently accept — are reachable.
func decodeRawTriples(data []byte) (rows, cols int, ts []Triple[float64]) {
	if len(data) < 2 {
		return 0, 0, nil
	}
	rows, cols = int(int8(data[0])), int(int8(data[1]))
	data = data[2:]
	for len(data) >= 3 && len(ts) < 256 {
		ts = append(ts, Triple[float64]{
			Row: int(int8(data[0])),
			Col: int(int8(data[1])),
			Val: float64(int8(data[2])) / 8,
		})
		data = data[3:]
	}
	return rows, cols, ts
}

// FuzzFromTriples checks the constructor's contract on arbitrary input:
// invalid input (negative dimensions, out-of-range coordinates) returns an
// error — never a panic, never a silently invalid matrix — and valid input
// yields a Validate-clean CSR whose entries are exactly the per-coordinate
// sums of the triples.
func FuzzFromTriples(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 4, 0, 0, 8, 1, 2, 16})
	f.Add([]byte{0xff, 4, 0, 0, 8})         // rows = -1
	f.Add([]byte{4, 0xfe, 0, 0, 8})         // cols = -2
	f.Add([]byte{4, 4, 9, 0, 8})            // row out of range
	f.Add([]byte{4, 4, 0, 0xf0, 8})         // negative column
	f.Add([]byte{4, 4, 1, 1, 8, 1, 1, 248}) // cancelling duplicate (+1, -1)
	f.Add([]byte{0, 7, 0, 0, 8})            // 0xN with an out-of-range triple

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, cols, ts := decodeRawTriples(data)
		valid := rows >= 0 && cols >= 0
		for _, tr := range ts {
			if tr.Row < 0 || tr.Row >= rows || tr.Col < 0 || tr.Col >= cols {
				valid = false
			}
		}
		m, err := FromTriples(rows, cols, ts)
		if valid && err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		if !valid {
			if err == nil {
				t.Fatalf("invalid input (%dx%d) accepted", rows, cols)
			}
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("constructed matrix invalid: %v", err)
		}
		sums := make(map[[2]int]float64)
		for _, tr := range ts {
			sums[[2]int{tr.Row, tr.Col}] += tr.Val
		}
		nnz := 0
		for rc, want := range sums {
			// Values are exact eighths, so duplicate summing is exact and
			// zero sums are exactly zero.
			if got := m.At(rc[0], rc[1]); got != want {
				t.Fatalf("At(%d,%d) = %g, want %g", rc[0], rc[1], got, want)
			}
			if want != 0 {
				nnz++
			}
		}
		if m.NNZ() != nnz {
			t.Fatalf("NNZ = %d, want %d", m.NNZ(), nnz)
		}
	})
}

// decodeInRangeTriples reduces coordinates into range, so every input
// decodes to a buildable matrix and the fuzzer explores structure instead
// of rejection paths.
func decodeInRangeTriples(data []byte) (rows, cols int, ts []Triple[float64]) {
	if len(data) < 2 {
		return 0, 0, nil
	}
	rows, cols = int(data[0])%49, int(data[1])%49
	data = data[2:]
	if rows == 0 || cols == 0 {
		return rows, cols, nil
	}
	for len(data) >= 3 && len(ts) < 256 {
		ts = append(ts, Triple[float64]{
			Row: int(data[0]) % rows,
			Col: int(data[1]) % cols,
			Val: float64(int8(data[2])) / 8,
		})
		data = data[3:]
	}
	return rows, cols, ts
}

// FuzzConvertRoundTrip checks every format conversion on arbitrary
// structures: each representation must satisfy its own Validate and convert
// back to exactly the CSR it came from (fill-guard rejections are the only
// accepted failure).
func FuzzConvertRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 0, 0, 20})
	f.Add([]byte{10, 10, 0, 0, 8, 1, 1, 8, 2, 2, 8, 3, 3, 8})
	f.Add([]byte{3, 48, 0, 0, 8, 1, 47, 16, 2, 24, 24})
	f.Add([]byte{16, 16, 3, 4, 12, 3, 4, 244, 5, 5, 30, 0, 15, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		rows, cols, ts := decodeInRangeTriples(data)
		m, err := FromTriples(rows, cols, ts)
		if err != nil {
			t.Fatalf("in-range input rejected: %v", err)
		}

		coo := m.ToCOO()
		if err := coo.Validate(); err != nil {
			t.Fatalf("COO: %v", err)
		}
		if !m.Equal(coo.ToCSR()) {
			t.Fatal("COO round trip changed matrix")
		}

		if d, err := m.ToDIA(8); err == nil {
			if err := d.Validate(); err != nil {
				t.Fatalf("DIA: %v", err)
			}
			if !m.Equal(d.ToCSR()) {
				t.Fatal("DIA round trip changed matrix")
			}
		} else if !errors.Is(err, ErrFillExplosion) {
			t.Fatalf("DIA conversion: %v", err)
		}

		if e, err := m.ToELL(8); err == nil {
			if err := e.Validate(); err != nil {
				t.Fatalf("ELL: %v", err)
			}
			if !m.Equal(e.ToCSR()) {
				t.Fatal("ELL round trip changed matrix")
			}
		} else if !errors.Is(err, ErrFillExplosion) {
			t.Fatalf("ELL conversion: %v", err)
		}

		h := m.ToHYB(-1)
		if err := h.Validate(); err != nil {
			t.Fatalf("HYB: %v", err)
		}
		if !m.Equal(h.ToCSR()) {
			t.Fatal("HYB round trip changed matrix")
		}

		if b, err := m.ToBCSR(0, 0, 8); err == nil {
			if err := b.Validate(); err != nil {
				t.Fatalf("BCSR: %v", err)
			}
			if !m.Equal(b.ToCSR()) {
				t.Fatal("BCSR round trip changed matrix")
			}
		} else if !errors.Is(err, ErrFillExplosion) {
			t.Fatalf("BCSR conversion: %v", err)
		}
	})
}
