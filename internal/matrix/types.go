// Package matrix implements the sparse matrix storage formats used by SMAT:
// CSR, COO, DIA and ELL (the four basic formats of the paper's Section 2.1),
// a dense reference representation, and the structural operations the rest of
// the system is built on (format conversion, transposition, sparse
// matrix-matrix products).
//
// All formats are generic over the element type (float32 or float64), which
// realises the paper's single-/double-precision axis with one code path.
package matrix

import (
	"fmt"
)

// Float is the set of element types supported by every format and kernel.
type Float interface {
	~float32 | ~float64
}

// CSR is the compressed sparse row format: the paper's default and the type
// behind SMAT's unified programming interface.
//
// RowPtr has Rows+1 entries; row i occupies ColIdx[RowPtr[i]:RowPtr[i+1]] and
// Vals[RowPtr[i]:RowPtr[i+1]]. Column indices are strictly increasing within
// each row.
type CSR[T Float] struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Vals       []T
}

// COO is the coordinate format. Entries are sorted by (row, col) with no
// duplicates; keeping entries row-sorted lets parallel kernels partition on
// row boundaries without write conflicts.
type COO[T Float] struct {
	Rows, Cols int
	RowIdx     []int
	ColIdx     []int
	Vals       []T
}

// DIA is the diagonal format. Offsets holds the (strictly increasing) offsets
// of the stored diagonals relative to the main diagonal (0), negative below,
// positive above. Data is diagonal-major with stride Rows:
//
//	A[r, r+Offsets[d]] == Data[d*Rows + r]
//
// Positions outside the matrix, and structural zeros on a stored diagonal,
// hold 0 (the zero-filling the paper's ER_DIA feature measures).
type DIA[T Float] struct {
	Rows, Cols int
	Offsets    []int
	Data       []T
}

// ELL is the ELLPACK format. Every row stores exactly Width entries
// (zero-padded beyond its actual nonzeros) in column-major order:
//
//	slot j of row r is Data[j*Rows + r] with column ColIdx[j*Rows + r]
//
// Padding slots have value 0 and column index 0.
type ELL[T Float] struct {
	Rows, Cols int
	Width      int
	ColIdx     []int
	Data       []T
}

// Format identifies one of the four basic storage formats.
type Format int

const (
	FormatCSR Format = iota
	FormatCOO
	FormatDIA
	FormatELL
	numFormats
)

// Formats lists all basic formats in the paper's runtime evaluation order
// (DIA first, COO last; see Section 6 "Rule Tailoring and Grouping").
var Formats = [...]Format{FormatDIA, FormatELL, FormatCSR, FormatCOO}

// String returns the conventional upper-case name of the format.
func (f Format) String() string {
	switch f {
	case FormatCSR:
		return "CSR"
	case FormatCOO:
		return "COO"
	case FormatDIA:
		return "DIA"
	case FormatELL:
		return "ELL"
	case FormatHYB:
		return "HYB"
	case FormatBCSR:
		return "BCSR"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat converts a format name ("CSR", "coo", ...) to a Format.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "CSR", "csr":
		return FormatCSR, nil
	case "COO", "coo":
		return FormatCOO, nil
	case "DIA", "dia":
		return FormatDIA, nil
	case "ELL", "ell":
		return FormatELL, nil
	case "HYB", "hyb":
		return FormatHYB, nil
	case "BCSR", "bcsr":
		return FormatBCSR, nil
	}
	return 0, fmt.Errorf("matrix: unknown format %q", s)
}

// NNZ returns the number of stored nonzeros.
func (m *CSR[T]) NNZ() int { return len(m.Vals) }

// NNZ returns the number of stored entries.
func (m *COO[T]) NNZ() int { return len(m.Vals) }

// NNZ returns the number of structurally nonzero entries actually present on
// the stored diagonals (zero fill is not counted).
func (m *DIA[T]) NNZ() int {
	n := 0
	for _, v := range m.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// NNZ returns the number of non-padding entries.
func (m *ELL[T]) NNZ() int {
	n := 0
	for _, v := range m.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Stored returns the number of element slots the representation holds,
// padding included. Conversion cost scales linearly with it (every slot is
// written once), so it is the work term of the amortisation payoff model in
// internal/autotune: a conversion time measured on one matrix transfers to a
// structurally similar one by the ratio of their Stored counts.
func (m *CSR[T]) Stored() int { return len(m.Vals) }

// Stored returns the number of stored entries (COO holds no padding).
func (m *COO[T]) Stored() int { return len(m.Vals) }

// Stored returns the number of element slots including diagonal zero fill.
func (m *DIA[T]) Stored() int { return len(m.Data) }

// Stored returns the number of element slots including row padding.
func (m *ELL[T]) Stored() int { return len(m.Data) }

// Validate checks the structural invariants of the CSR representation.
func (m *CSR[T]) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("csr: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("csr: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if len(m.ColIdx) != len(m.Vals) {
		return fmt.Errorf("csr: ColIdx length %d != Vals length %d", len(m.ColIdx), len(m.Vals))
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("csr: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if m.RowPtr[m.Rows] != len(m.Vals) {
		return fmt.Errorf("csr: RowPtr[last] = %d, want %d", m.RowPtr[m.Rows], len(m.Vals))
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("csr: RowPtr not monotone at row %d", i)
		}
		prev := -1
		for jj := m.RowPtr[i]; jj < m.RowPtr[i+1]; jj++ {
			c := m.ColIdx[jj]
			if c < 0 || c >= m.Cols {
				return fmt.Errorf("csr: column %d out of range in row %d", c, i)
			}
			if c <= prev {
				return fmt.Errorf("csr: columns not strictly increasing in row %d", i)
			}
			prev = c
		}
	}
	return nil
}

// Validate checks the structural invariants of the COO representation.
func (m *COO[T]) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("coo: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.RowIdx) != len(m.Vals) || len(m.ColIdx) != len(m.Vals) {
		return fmt.Errorf("coo: index/value length mismatch %d/%d/%d",
			len(m.RowIdx), len(m.ColIdx), len(m.Vals))
	}
	for k := range m.Vals {
		r, c := m.RowIdx[k], m.ColIdx[k]
		if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
			return fmt.Errorf("coo: entry %d at (%d,%d) out of range", k, r, c)
		}
		if k > 0 {
			pr, pc := m.RowIdx[k-1], m.ColIdx[k-1]
			if r < pr || (r == pr && c <= pc) {
				return fmt.Errorf("coo: entries not sorted/deduplicated at %d", k)
			}
		}
	}
	return nil
}

// Validate checks the structural invariants of the DIA representation.
func (m *DIA[T]) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("dia: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if len(m.Data) != len(m.Offsets)*m.Rows {
		return fmt.Errorf("dia: Data length %d, want %d", len(m.Data), len(m.Offsets)*m.Rows)
	}
	for d, off := range m.Offsets {
		if d > 0 && off <= m.Offsets[d-1] {
			return fmt.Errorf("dia: offsets not strictly increasing at %d", d)
		}
		if off <= -m.Rows || off >= m.Cols {
			return fmt.Errorf("dia: offset %d outside matrix", off)
		}
		for r := 0; r < m.Rows; r++ {
			c := r + off
			if (c < 0 || c >= m.Cols) && m.Data[d*m.Rows+r] != 0 {
				return fmt.Errorf("dia: nonzero outside matrix at diag %d row %d", off, r)
			}
		}
	}
	return nil
}

// Validate checks the structural invariants of the ELL representation.
func (m *ELL[T]) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("ell: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if m.Width < 0 {
		return fmt.Errorf("ell: negative width %d", m.Width)
	}
	if len(m.Data) != m.Width*m.Rows || len(m.ColIdx) != m.Width*m.Rows {
		return fmt.Errorf("ell: Data/ColIdx length %d/%d, want %d",
			len(m.Data), len(m.ColIdx), m.Width*m.Rows)
	}
	for k, c := range m.ColIdx {
		if c < 0 || c >= m.Cols {
			if !(c == 0 && m.Cols == 0) {
				return fmt.Errorf("ell: column %d out of range at slot %d", c, k)
			}
		}
	}
	return nil
}

// At returns the element at (r, c) by binary search within the row.
func (m *CSR[T]) At(r, c int) T {
	lo, hi := m.RowPtr[r], m.RowPtr[r+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m.ColIdx[mid] == c:
			return m.Vals[mid]
		case m.ColIdx[mid] < c:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// Clone returns a deep copy of the matrix.
func (m *CSR[T]) Clone() *CSR[T] {
	return &CSR[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Vals:   append([]T(nil), m.Vals...),
	}
}

// RowDegree returns the number of stored entries in row r.
func (m *CSR[T]) RowDegree(r int) int { return m.RowPtr[r+1] - m.RowPtr[r] }
