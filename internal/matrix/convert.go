package matrix

import (
	"errors"
	"fmt"
	"sort"
)

// ErrFillExplosion is returned by ToDIA and ToELL when the converted
// representation would store more than the allowed multiple of the source
// nonzero count. DIA and ELL zero-fill sparse diagonals and short rows; on an
// unsuitable matrix the fill can exceed memory by orders of magnitude (the
// phenomenon the paper's ER_DIA / ER_ELL features exist to predict), so
// conversion refuses rather than allocating.
var ErrFillExplosion = errors.New("matrix: conversion would exceed fill limit")

// Triple is one (row, col, value) entry, the input unit for FromTriples.
type Triple[T Float] struct {
	Row, Col int
	Val      T
}

// FromTriples builds a CSR matrix from unordered triples. Duplicate (row,
// col) entries are summed; explicit zeros (including entries that cancel) are
// dropped. Out-of-range entries and negative dimensions are an error.
func FromTriples[T Float](rows, cols int, ts []Triple[T]) (*CSR[T], error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("matrix: negative dimensions %dx%d", rows, cols)
	}
	for _, t := range ts {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			return nil, fmt.Errorf("matrix: triple (%d,%d) outside %dx%d", t.Row, t.Col, rows, cols)
		}
	}
	sorted := append([]Triple[T](nil), ts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR[T]{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for k := 0; k < len(sorted); {
		r, c := sorted[k].Row, sorted[k].Col
		var sum T
		for k < len(sorted) && sorted[k].Row == r && sorted[k].Col == c {
			sum += sorted[k].Val
			k++
		}
		if sum != 0 {
			m.ColIdx = append(m.ColIdx, c)
			m.Vals = append(m.Vals, sum)
			m.RowPtr[r+1] = len(m.Vals)
		}
	}
	for r := 0; r < rows; r++ {
		if m.RowPtr[r+1] < m.RowPtr[r] {
			m.RowPtr[r+1] = m.RowPtr[r]
		}
	}
	return m, nil
}

// ToCOO converts CSR to coordinate form. The result shares no storage with
// the receiver and is sorted by (row, col).
func (m *CSR[T]) ToCOO() *COO[T] {
	out := &COO[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowIdx: make([]int, m.NNZ()),
		ColIdx: append([]int(nil), m.ColIdx...),
		Vals:   append([]T(nil), m.Vals...),
	}
	for r := 0; r < m.Rows; r++ {
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			out.RowIdx[jj] = r
		}
	}
	return out
}

// ToCSR converts COO back to CSR. Entries already sorted by (row, col) with
// no duplicates — the representation's documented invariant — convert with a
// direct copy that preserves every stored value, explicit zeros included.
// Entries violating the invariant used to be converted anyway, with RowPtr
// built by counting while ColIdx/Vals kept input order: values silently
// attached to the wrong rows. Unsorted or duplicate-carrying input is now
// canonicalised first (sorted by (row, col), duplicates summed, zero sums
// dropped — FromTriples semantics). Entries outside the matrix panic, as
// every conversion of an invalid representation does; run Validate first on
// untrusted input.
func (m *COO[T]) ToCSR() *CSR[T] {
	if !m.canonical() {
		ts := make([]Triple[T], len(m.Vals))
		for k := range m.Vals {
			ts[k] = Triple[T]{Row: m.RowIdx[k], Col: m.ColIdx[k], Val: m.Vals[k]}
		}
		out, err := FromTriples(m.Rows, m.Cols, ts)
		if err != nil {
			panic(fmt.Sprintf("matrix: COO.ToCSR on invalid representation: %v", err))
		}
		return out
	}
	out := &CSR[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int, m.Rows+1),
		ColIdx: append([]int(nil), m.ColIdx...),
		Vals:   append([]T(nil), m.Vals...),
	}
	for _, r := range m.RowIdx {
		out.RowPtr[r+1]++
	}
	for r := 0; r < m.Rows; r++ {
		out.RowPtr[r+1] += out.RowPtr[r]
	}
	return out
}

// canonical reports whether the entries are sorted by (row, col) with no
// duplicate coordinates — the precondition of the direct COO→CSR copy.
func (m *COO[T]) canonical() bool {
	for k := 1; k < len(m.RowIdx); k++ {
		r, c := m.RowIdx[k], m.ColIdx[k]
		pr, pc := m.RowIdx[k-1], m.ColIdx[k-1]
		if r < pr || (r == pr && c <= pc) {
			return false
		}
	}
	return true
}

// DiagCount returns the number of distinct occupied diagonals and, for
// convenience, the sorted offsets. It is shared by ToDIA and the feature
// extractor.
func (m *CSR[T]) DiagCount() (n int, offsets []int) {
	// A diagonal's offset c-r ranges over [-(Rows-1), Cols-1]; a flat
	// occupancy array keeps this pass at one increment per nonzero.
	if m.Rows == 0 || m.Cols == 0 {
		return 0, nil
	}
	occupied := make([]bool, m.Rows+m.Cols-1)
	base := m.Rows - 1
	for r := 0; r < m.Rows; r++ {
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			occupied[m.ColIdx[jj]-r+base] = true
		}
	}
	for idx, on := range occupied {
		if on {
			offsets = append(offsets, idx-base)
		}
	}
	return len(offsets), offsets
}

// ToDIA converts to diagonal storage. maxFillRatio bounds the stored-element
// count as a multiple of NNZ (≤0 means unlimited); conversion fails with
// ErrFillExplosion beyond it.
func (m *CSR[T]) ToDIA(maxFillRatio float64) (*DIA[T], error) {
	_, offsets := m.DiagCount()
	stored := len(offsets) * m.Rows
	if maxFillRatio > 0 && m.NNZ() > 0 && float64(stored) > maxFillRatio*float64(m.NNZ()) {
		return nil, fmt.Errorf("%w: DIA would store %d elements for %d nonzeros",
			ErrFillExplosion, stored, m.NNZ())
	}
	d := &DIA[T]{Rows: m.Rows, Cols: m.Cols, Offsets: offsets, Data: make([]T, stored)}
	if len(offsets) == 0 {
		return d, nil
	}
	// Flat offset→diagonal-index table (offsets span rows+cols-1 slots).
	pos := make([]int32, m.Rows+m.Cols-1)
	base := m.Rows - 1
	for i, off := range offsets {
		pos[off+base] = int32(i)
	}
	for r := 0; r < m.Rows; r++ {
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			dgi := int(pos[m.ColIdx[jj]-r+base])
			d.Data[dgi*m.Rows+r] = m.Vals[jj]
		}
	}
	return d, nil
}

// ToCSR converts diagonal storage back to CSR, dropping zero fill.
func (m *DIA[T]) ToCSR() *CSR[T] {
	var ts []Triple[T]
	for d, off := range m.Offsets {
		for r := 0; r < m.Rows; r++ {
			c := r + off
			if c < 0 || c >= m.Cols {
				continue
			}
			if v := m.Data[d*m.Rows+r]; v != 0 {
				ts = append(ts, Triple[T]{Row: r, Col: c, Val: v})
			}
		}
	}
	out, err := FromTriples(m.Rows, m.Cols, ts)
	if err != nil {
		// Offsets were validated to lie inside the matrix; unreachable.
		panic(err)
	}
	return out
}

// MaxRowDegree returns the maximum number of stored entries in any row.
func (m *CSR[T]) MaxRowDegree() int {
	max := 0
	for r := 0; r < m.Rows; r++ {
		if d := m.RowDegree(r); d > max {
			max = d
		}
	}
	return max
}

// ToELL converts to ELLPACK storage with Width = MaxRowDegree. maxFillRatio
// bounds the stored-element count as a multiple of NNZ (≤0 means unlimited).
func (m *CSR[T]) ToELL(maxFillRatio float64) (*ELL[T], error) {
	width := m.MaxRowDegree()
	stored := width * m.Rows
	if maxFillRatio > 0 && m.NNZ() > 0 && float64(stored) > maxFillRatio*float64(m.NNZ()) {
		return nil, fmt.Errorf("%w: ELL would store %d elements for %d nonzeros",
			ErrFillExplosion, stored, m.NNZ())
	}
	e := &ELL[T]{
		Rows:   m.Rows,
		Cols:   m.Cols,
		Width:  width,
		ColIdx: make([]int, stored),
		Data:   make([]T, stored),
	}
	for r := 0; r < m.Rows; r++ {
		slot := 0
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			e.ColIdx[slot*m.Rows+r] = m.ColIdx[jj]
			e.Data[slot*m.Rows+r] = m.Vals[jj]
			slot++
		}
	}
	return e, nil
}

// ToCSR converts ELLPACK storage back to CSR, dropping padding.
func (m *ELL[T]) ToCSR() *CSR[T] {
	var ts []Triple[T]
	for r := 0; r < m.Rows; r++ {
		for slot := 0; slot < m.Width; slot++ {
			if v := m.Data[slot*m.Rows+r]; v != 0 {
				ts = append(ts, Triple[T]{Row: r, Col: m.ColIdx[slot*m.Rows+r], Val: v})
			}
		}
	}
	out, err := FromTriples(m.Rows, m.Cols, ts)
	if err != nil {
		// Column indices were validated at conversion time; unreachable.
		panic(err)
	}
	return out
}

// Equal reports exact structural and numerical equality of two CSR matrices.
func (m *CSR[T]) Equal(o *CSR[T]) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols || m.NNZ() != o.NNZ() {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for i := range m.ColIdx {
		if m.ColIdx[i] != o.ColIdx[i] || m.Vals[i] != o.Vals[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports structural equality and elementwise agreement within
// tol (relative for large magnitudes).
func (m *CSR[T]) ApproxEqual(o *CSR[T], tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols || m.NNZ() != o.NNZ() {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for i := range m.ColIdx {
		if m.ColIdx[i] != o.ColIdx[i] {
			return false
		}
	}
	return VecApproxEqual(m.Vals, o.Vals, tol)
}
