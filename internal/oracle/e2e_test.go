package oracle_test

import (
	"math"
	"testing"

	"smat"
	"smat/internal/oracle"
)

// TestTunerDifferentialAgainstReference closes the loop through the public
// API: for every generated structure, the auto-tuned CSRSpMV — whatever
// format and kernel the tuner picks — must agree with a float64 reference
// accumulated straight off the coordinate triples.
func TestTunerDifferentialAgainstReference(t *testing.T) {
	tn := smat.NewTuner[float64](smat.HeuristicModel(), smat.WithThreads(3))
	defer tn.Close()

	for _, s := range oracle.Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			entries := make([]smat.Entry[float64], len(s.Triples))
			for i, tr := range s.Triples {
				entries[i] = smat.Entry[float64]{Row: tr.Row, Col: tr.Col, Val: tr.Val}
			}
			a, err := smat.FromEntries(s.Rows, s.Cols, entries)
			if err != nil {
				t.Fatal(err)
			}

			x := make([]float64, s.Cols)
			for c := range x {
				x[c] = float64((c*13)%31-15) / 8
			}
			want := make([]float64, s.Rows)
			absSum := make([]float64, s.Rows)
			for _, tr := range s.Triples {
				want[tr.Row] += tr.Val * x[tr.Col]
				absSum[tr.Row] += math.Abs(tr.Val * x[tr.Col])
			}

			y := make([]float64, s.Rows)
			for i := range y {
				y[i] = math.NaN()
			}
			if err := tn.CSRSpMV(a, x, y); err != nil {
				t.Fatal(err)
			}
			op := a.Operator()
			for r := range y {
				tol := 0x1p-50 * (absSum[r] + math.Abs(want[r]))
				if math.IsNaN(y[r]) || math.Abs(y[r]-want[r]) > tol {
					t.Fatalf("%s kernel %s: y[%d] = %g, reference %g",
						op.Format(), op.KernelName(), r, y[r], want[r])
				}
			}
		})
	}
}
