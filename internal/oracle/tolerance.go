package oracle

import "math"

// epsOf returns the unit roundoff of the element type: 2⁻²³ for float32,
// 2⁻⁵² for float64. The oracle's per-row error bound scales in this unit,
// which is what "within per-type ULP tolerance" means concretely.
func epsOf[T ~float32 | ~float64]() float64 {
	var t T
	if _, ok := any(t).(float32); ok {
		return 0x1p-23
	}
	return 0x1p-52
}

// rowTolerance bounds how far a kernel's y[r] may drift from the float64
// reference want. Each of the deg products contributes at most one rounding
// in T, accumulation order contributes up to deg more, and conversion of
// the reference itself one: the classical bound is eps·deg·Σ|aᵣₖ·xₖ|. The
// +4 headroom and the |want| term cover the final rounding of near-cancelled
// sums without letting a genuinely wrong value (off by a whole term on the
// k/8 value grid) slip through.
func rowTolerance(eps float64, deg int, absSum, want float64) float64 {
	return eps * float64(deg+4) * (absSum + math.Abs(want))
}
