package oracle

import (
	"math"
	"strings"
	"testing"

	"smat/internal/kernels"
	"smat/internal/matrix"
)

// fullLibrary is the complete registry under test: the 24 stock kernels
// plus the HYB and BCSR extension families.
func fullLibrary[T matrix.Float]() *kernels.Library[T] {
	lib := kernels.NewLibrary[T]()
	lib.RegisterHYB()
	lib.RegisterBCSR()
	return lib
}

// allFormats mirrors the exported format set the acceptance criterion
// names: the four basic formats plus both extensions.
var allFormats = []matrix.Format{
	matrix.FormatCSR, matrix.FormatCOO, matrix.FormatDIA, matrix.FormatELL,
	matrix.FormatHYB, matrix.FormatBCSR,
}

func runSuite[T matrix.Float](t *testing.T) {
	lib := fullLibrary[T]()
	cov := NewCoverage()
	for _, s := range Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			c, err := Check(lib, &s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cov.Merge(c)
		})
	}

	// The suite is only as good as its reach: every exported format must
	// have converted somewhere, every registered kernel must have executed,
	// and every parallel-strategy kernel must have run a genuinely
	// partitioned plan (not just its serial fallback body).
	for _, f := range allFormats {
		if !cov.Formats[f] {
			t.Errorf("format %s never exercised", f)
		}
	}
	for _, f := range allFormats {
		for _, k := range lib.ForFormat(f) {
			if !cov.Kernels[k.Name] {
				t.Errorf("kernel %s never executed", k.Name)
			}
			if k.Strategies&kernels.StratParallel != 0 && !cov.Parallel[k.Name] {
				t.Errorf("parallel kernel %s never ran a partitioned plan", k.Name)
			}
		}
	}

	// Parameter-space reach: every searched unroll depth must have executed
	// through some kernel instance (depths 1 and 4 ride on the fixed menu,
	// the rest on parameterized registrations), and every conversion-level
	// instantiation — each BCSR block shape, each HYB width cut — must have
	// converted and passed the differential check somewhere in the suite.
	assertUnrollDepthsCovered(t, lib, cov)
	assertConversionsCovered(t, cov)
}

// assertUnrollDepthsCovered checks every depth in kernels.UnrollDepths ran:
// the parameterized depths through an executed instance carrying that depth,
// the fixed-menu depths through the zero-Params kernels (always registered,
// asserted executed above).
func assertUnrollDepthsCovered[T matrix.Float](t *testing.T, lib *kernels.Library[T], cov *Coverage) {
	t.Helper()
	for _, u := range kernels.UnrollDepths {
		if u == 1 || u == 4 {
			continue // the fixed menu's basic and *_unroll4 kernels
		}
		found := false
		for _, f := range allFormats {
			for _, k := range lib.ForFormat(f) {
				if k.Params.Unroll == u && cov.Kernels[k.Name] {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("unroll depth %d never executed through a parameter instance", u)
		}
	}
}

// assertConversionsCovered checks every conversion-level parameter
// instantiation passed the differential check on at least one spec.
func assertConversionsCovered(t *testing.T, cov *Coverage) {
	t.Helper()
	for _, sh := range kernels.BCSRShapes {
		key := ConversionKey(matrix.FormatBCSR, kernels.Params{BlockR: sh[0], BlockC: sh[1]})
		if !cov.Conversions[key] {
			t.Errorf("BCSR block shape %dx%d never passed the differential check", sh[0], sh[1])
		}
	}
	for _, cut := range kernels.HybCuts {
		key := ConversionKey(matrix.FormatHYB, kernels.Params{HybCut: cut})
		if !cov.Conversions[key] {
			t.Errorf("HYB width cut %g never passed the differential check", cut)
		}
	}
}

func TestOracleSuiteFloat64(t *testing.T) { runSuite[float64](t) }
func TestOracleSuiteFloat32(t *testing.T) { runSuite[float32](t) }

// runBatchSuite is the batched analogue: every spec through CheckBatch,
// then the same reach assertions over the batch-kernel registry — every
// registered batch kernel executed at every width, and every parallel batch
// kernel ran a genuinely partitioned plan somewhere in the sweep.
func runBatchSuite[T matrix.Float](t *testing.T) {
	lib := fullLibrary[T]()
	cov := NewCoverage()
	for _, s := range Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			c, err := CheckBatch(lib, &s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cov.Merge(c)
		})
	}
	for _, f := range allFormats {
		for _, bk := range lib.ForFormatBatch(f) {
			if !cov.Kernels[bk.Name] {
				t.Errorf("batch kernel %s never executed", bk.Name)
			}
			if bk.Strategies&kernels.StratParallel != 0 && !cov.Parallel[bk.Name] {
				t.Errorf("parallel batch kernel %s never ran a partitioned plan", bk.Name)
			}
		}
	}

	// Parameter-space reach: every searched register-tile width must have
	// executed through a batch kernel carrying it (every batch registration
	// records its tile in Params.BatchTile), and the conversion-level
	// instantiations must have passed under the batched kernels too.
	for _, tile := range kernels.BatchTiles {
		found := false
		for _, f := range allFormats {
			for _, bk := range lib.ForFormatBatch(f) {
				if bk.Params.BatchTile == tile && cov.Kernels[bk.Name] {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("batch tile width %d never executed through a batch kernel", tile)
		}
	}
	assertConversionsCovered(t, cov)
}

func TestOracleBatchSuiteFloat64(t *testing.T) { runBatchSuite[float64](t) }
func TestOracleBatchSuiteFloat32(t *testing.T) { runBatchSuite[float32](t) }

func TestCheckRejectsOutOfRangeSpec(t *testing.T) {
	s := &Spec{Name: "bad", Rows: 2, Cols: 2,
		Triples: []matrix.Triple[float64]{{Row: 5, Col: 0, Val: 1}}}
	if _, err := Check(fullLibrary[float64](), s, Options{}); err == nil {
		t.Fatal("out-of-range spec accepted")
	}
}

func TestCheckBounds(t *testing.T) {
	if err := checkBounds([]int{0, 3, 7}, 7, "b"); err != nil {
		t.Errorf("valid bounds rejected: %v", err)
	}
	for name, c := range map[string]struct {
		b []int
		n int
	}{
		"wrong-end":    {[]int{0, 3}, 7},
		"wrong-start":  {[]int{1, 7}, 7},
		"non-monotone": {[]int{0, 5, 3, 7}, 7},
		"too-short":    {[]int{0}, 0},
	} {
		if err := checkBounds(c.b, c.n, "b"); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckRowAligned(t *testing.T) {
	rowIdx := []int{0, 0, 1, 1, 2, 2}
	if err := checkRowAligned([]int{0, 2, 4, 6}, rowIdx); err != nil {
		t.Errorf("row-aligned cuts rejected: %v", err)
	}
	if err := checkRowAligned([]int{0, 3, 6}, rowIdx); err == nil {
		t.Error("cut through row 1 accepted")
	}
}

func TestRunNaNSentinel(t *testing.T) {
	y := runNaN(func(y []float64) { y[0] = 1 }, 3)
	if y[0] != 1 || !math.IsNaN(y[1]) || !math.IsNaN(y[2]) {
		t.Fatalf("sentinel state wrong: %v", y)
	}
}

func TestBitMismatch(t *testing.T) {
	if _, ok := bitMismatch([]float64{1, 2}, []float64{1, 2}); ok {
		t.Error("equal vectors reported mismatched")
	}
	if i, ok := bitMismatch([]float64{1, 2}, []float64{1, 3}); !ok || i != 1 {
		t.Errorf("mismatch at 1 reported as (%d,%v)", i, ok)
	}
	nan := math.NaN()
	if _, ok := bitMismatch([]float64{nan}, []float64{nan}); ok {
		t.Error("NaN pair reported mismatched")
	}
}

func TestDecodeSpecBoundedAndTotal(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0},
		{0, 9},
		{9, 0},
		{255, 255},
		{48, 48, 200, 200, 128, 7, 7, 0},
		[]byte(strings.Repeat("\xff", 4096)),
	}
	for _, data := range cases {
		s := DecodeSpec(data)
		if s.Rows < 0 || s.Rows > decodeMaxDim || s.Cols < 0 || s.Cols > decodeMaxDim {
			t.Fatalf("decoded dims %dx%d out of bounds", s.Rows, s.Cols)
		}
		if len(s.Triples) > decodeMaxNNZ {
			t.Fatalf("decoded %d triples", len(s.Triples))
		}
		for _, tr := range s.Triples {
			if tr.Row < 0 || tr.Row >= s.Rows || tr.Col < 0 || tr.Col >= s.Cols {
				t.Fatalf("decoded triple (%d,%d) outside %dx%d", tr.Row, tr.Col, s.Rows, s.Cols)
			}
		}
		if _, err := Check(fullLibrary[float64](), s, Options{Threads: []int{1, 2}}); err != nil {
			t.Fatalf("decoded spec fails oracle: %v", err)
		}
	}
}

// TestSpecsCoverParallelCutoff pins the suite's reach: at least three specs
// must exceed the engine's serial-work cutoff, or the "parallel paths
// genuinely run" guarantee silently erodes when the cutoff moves.
func TestSpecsCoverParallelCutoff(t *testing.T) {
	big := 0
	for _, s := range Specs() {
		if len(s.Triples) >= 8192 {
			big++
		}
	}
	if big < 3 {
		t.Fatalf("only %d specs exceed the parallel cutoff", big)
	}
}
