package oracle

import (
	"fmt"
	"math"

	"smat/internal/kernels"
	"smat/internal/matrix"
)

// CheckSpGEMM runs the differential suite for the row-blocked sparse
// products backing AMG hierarchy setup. Three properties, on the spec's
// matrix A (with B = Aᵀ so shapes compose and the structure is adversarial
// in both orientations):
//
//  1. kernels.SpGEMM(A, B) is bit-for-bit identical to the serial
//     reference matrix.Mul — same values, same pattern, same ordering.
//  2. Serial and pooled runs of SpGEMM and GalerkinRAP are bit-for-bit
//     identical at every thread count in opt.Threads: chunking must not
//     change a single bit of any row.
//  3. The fused GalerkinRAP(Aᵀ, A, Aᵀ) matches the float64 two-pass
//     triple product within the per-entry rounding bound (its association
//     differs by design, so this is a tolerance check, with the bound
//     built from the exact per-entry term counts and absolute-value sums).
func CheckSpGEMM[T matrix.Float](s *Spec, opt Options) error {
	opt = opt.withDefaults()
	a, err := BuildCSR[T](s)
	if err != nil {
		return err
	}
	b := a.Transpose()

	want := a.Mul(b)
	serial := kernels.SpGEMM(a, b, nil, 1)
	if !want.Equal(serial) {
		return fmt.Errorf("oracle: %s: spgemm: serial SpGEMM differs from matrix.Mul", s.Name)
	}
	rapSerial := kernels.GalerkinRAP(b, a, b, nil, 1)
	for _, th := range opt.Threads {
		pool := kernels.NewPool[T](th)
		got := kernels.SpGEMM(a, b, pool, th)
		rap := kernels.GalerkinRAP(b, a, b, pool, th)
		pool.Close()
		if !serial.Equal(got) {
			return fmt.Errorf("oracle: %s: spgemm at %d threads: pooled result differs from serial", s.Name, th)
		}
		if !rapSerial.Equal(rap) {
			return fmt.Errorf("oracle: %s: galerkin-rap at %d threads: pooled result differs from serial", s.Name, th)
		}
	}
	return checkRAPValues(s.Name, b, a, b, rapSerial, opt.TolScale)
}

// checkRAPValues compares the fused triple product against the float64
// two-pass reference over the union of both patterns. The per-entry bound
// is rowTolerance with the entry's exact contribution count (computed on
// indicator matrices, where no cancellation is possible) and its
// absolute-value sum (the triple product of |R|, |A|, |P|).
func checkRAPValues[T matrix.Float](name string, r, a, p, got *matrix.CSR[T], tolScale float64) error {
	r64, rAbs, rOne := splitFloat64(r)
	a64, aAbs, aOne := splitFloat64(a)
	p64, pAbs, pOne := splitFloat64(p)
	want := matrix.TripleProduct(r64, a64, p64)
	absSum := matrix.TripleProduct(rAbs, aAbs, pAbs)
	terms := matrix.TripleProduct(rOne, aOne, pOne)
	eps := epsOf[T]()
	for i := 0; i < want.Rows; i++ {
		// Walk the union of the reference and fused patterns: either side
		// may drop an entry the other keeps (exact cancellation happens on
		// one association but not the other), and a dropped entry is a
		// zero that still has to satisfy the bound.
		gi, giEnd := got.RowPtr[i], got.RowPtr[i+1]
		wi, wiEnd := want.RowPtr[i], want.RowPtr[i+1]
		// absSum and terms share a pattern that covers the union (they are
		// built from all-positive values, so nothing cancels out of them);
		// ti walks it in lockstep with the ascending union columns.
		ti, tiEnd := terms.RowPtr[i], terms.RowPtr[i+1]
		for gi < giEnd || wi < wiEnd {
			var c int
			var gv, wv float64
			switch {
			case wi >= wiEnd || (gi < giEnd && got.ColIdx[gi] < want.ColIdx[wi]):
				c, gv = got.ColIdx[gi], float64(got.Vals[gi])
				gi++
			case gi >= giEnd || want.ColIdx[wi] < got.ColIdx[gi]:
				c, wv = want.ColIdx[wi], want.Vals[wi]
				wi++
			default:
				c, gv, wv = got.ColIdx[gi], float64(got.Vals[gi]), want.Vals[wi]
				gi++
				wi++
			}
			for ti < tiEnd && terms.ColIdx[ti] < c {
				ti++
			}
			var deg int
			var as float64
			if ti < tiEnd && terms.ColIdx[ti] == c {
				deg = int(terms.Vals[ti])
				as = absSum.Vals[ti]
			}
			tol := tolScale * rowTolerance(eps, deg, as, wv)
			if d := math.Abs(gv - wv); d > tol {
				return fmt.Errorf("oracle: %s: galerkin-rap entry (%d,%d): fused %g vs reference %g (|Δ|=%g > tol %g, %d terms)",
					name, i, c, gv, wv, d, tol, deg)
			}
		}
	}
	return nil
}

// splitFloat64 returns float64, absolute-value, and indicator (all-ones)
// copies of m: the value, error-bound, and term-count inputs of the
// reference triple product.
func splitFloat64[T matrix.Float](m *matrix.CSR[T]) (v, abs, one *matrix.CSR[float64]) {
	v = &matrix.CSR[float64]{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr,
		ColIdx: m.ColIdx, Vals: make([]float64, len(m.Vals))}
	abs = &matrix.CSR[float64]{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr,
		ColIdx: m.ColIdx, Vals: make([]float64, len(m.Vals))}
	one = &matrix.CSR[float64]{Rows: m.Rows, Cols: m.Cols, RowPtr: m.RowPtr,
		ColIdx: m.ColIdx, Vals: make([]float64, len(m.Vals))}
	for i, x := range m.Vals {
		f := float64(x)
		v.Vals[i] = f
		abs.Vals[i] = math.Abs(f)
		one.Vals[i] = 1
	}
	return v, abs, one
}
