package oracle

import (
	"fmt"
	"math"

	"smat/internal/autotune"
	"smat/internal/gen"
	"smat/internal/matrix"
	"smat/internal/mining"
	"smat/internal/solve"
)

// solveTolOf returns the convergence tolerance the differential solver
// suite requests per element type: deep enough to be a real solve, shallow
// enough for float32 to reach it.
func solveTolOf[T matrix.Float]() float64 {
	if epsOf[T]() == 0x1p-23 {
		return 1e-4
	}
	return 1e-9
}

// serialOp is the trusted reference operator: the plain serial CSR product,
// the same arithmetic Check's reference path uses.
type serialOp[T matrix.Float] struct{ m *matrix.CSR[T] }

func (o serialOp[T]) MulVec(x, y []T) {
	m := o.m
	for r := 0; r < m.Rows; r++ {
		var s T
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			s += m.Vals[jj] * x[m.ColIdx[jj]]
		}
		y[r] = s
	}
}

func (o serialOp[T]) MulVecBatch(xb, yb []T, k int) {
	m := o.m
	for r := 0; r < m.Rows; r++ {
		base := r * k
		for j := 0; j < k; j++ {
			yb[base+j] = 0
		}
		for jj := m.RowPtr[r]; jj < m.RowPtr[r+1]; jj++ {
			c, v := m.ColIdx[jj], m.Vals[jj]
			for j := 0; j < k; j++ {
				yb[base+j] += v * xb[c*k+j]
			}
		}
	}
}

// CheckSolvers runs the residual-checked differential solver suite: every
// solver in internal/solve driven by a tuned operator (tuned with an
// iteration hint, the long-solve path) against the same solve driven by
// the trusted serial CSR reference, at every thread count in opt.Threads.
//
// A solver run only counts if it converges, and no solver is trusted to
// grade itself: every solution — tuned or reference, single or block — is
// re-checked by recomputing ‖b − A·x‖₂/‖b‖₂ from scratch in float64. The
// tuned and reference solutions must also agree to the conditioning-scaled
// bound, so a tuned kernel that converged to the wrong answer cannot hide
// behind its own residual.
func CheckSolvers[T matrix.Float](opt Options) error {
	opt = opt.withDefaults()
	tol := solveTolOf[T]()

	// SPD system with a known generator: 2D 5-point Laplacian.
	a := gen.Laplacian2D5pt[T](20, 20)
	n := a.Rows
	b := make([]T, n)
	g := lcg{s: 40}
	for i := range b {
		b[i] = T(val(g.intn(16)))
	}

	// Nonsymmetric convection-diffusion chain for BiCGSTAB.
	ns := convectionDiffusion[T](250)
	bns := make([]T, ns.Rows)
	for i := range bns {
		bns[i] = T(val(g.intn(16)))
	}

	for _, th := range opt.Threads {
		if err := checkSolversAtThreads(a, ns, b, bns, th, tol, opt); err != nil {
			return err
		}
	}
	return nil
}

func checkSolversAtThreads[T matrix.Float](a, ns *matrix.CSR[T], b, bns []T, th int, tol float64, opt Options) error {
	const maxIter = 4000
	model := &autotune.Model{
		Threads:             th,
		ConfidenceThreshold: 0.5,
		MaxFill:             opt.MaxFill,
		Kernels:             map[string]string{},
		Ruleset:             &mining.Ruleset{Default: int(matrix.FormatCSR)},
	}
	tuner := autotune.New[T](model, autotune.Config{Threads: th})
	defer tuner.Close()
	// The iteration hint is the long-solve contract: solvers announce their
	// budget so the tuner may amortize a conversion across it.
	op, _, err := tuner.TuneOpts(a, autotune.TuneOptions{Iterations: maxIter})
	if err != nil {
		return fmt.Errorf("oracle: solvers at %d threads: tune: %w", th, err)
	}
	opNS, _, err := tuner.TuneOpts(ns, autotune.TuneOptions{Iterations: maxIter})
	if err != nil {
		return fmt.Errorf("oracle: solvers at %d threads: tune nonsymmetric: %w", th, err)
	}

	// CG: tuned vs reference.
	xT := make([]T, len(b))
	xR := make([]T, len(b))
	st, err := solve.CG[T](op, nil, b, xT, tol, maxIter)
	if err != nil || !st.Converged {
		return fmt.Errorf("oracle: solvers at %d threads: tuned CG stats %+v err %v", th, st, err)
	}
	sr, err := solve.CG[T](serialOp[T]{a}, nil, b, xR, tol, maxIter)
	if err != nil || !sr.Converged {
		return fmt.Errorf("oracle: solvers at %d threads: reference CG stats %+v err %v", th, sr, err)
	}
	if err := residualCheck(a, b, xT, tol, "tuned CG", th); err != nil {
		return err
	}
	if err := residualCheck(a, b, xR, tol, "reference CG", th); err != nil {
		return err
	}
	if err := solutionsAgree(xT, xR, tol, "CG", th); err != nil {
		return err
	}

	// BiCGSTAB on the nonsymmetric system: tuned vs reference.
	yT := make([]T, len(bns))
	yR := make([]T, len(bns))
	st, err = solve.BiCGSTAB[T](opNS, nil, bns, yT, tol, maxIter)
	if err != nil || !st.Converged {
		return fmt.Errorf("oracle: solvers at %d threads: tuned BiCGSTAB stats %+v err %v", th, st, err)
	}
	sr, err = solve.BiCGSTAB[T](serialOp[T]{ns}, nil, bns, yR, tol, maxIter)
	if err != nil || !sr.Converged {
		return fmt.Errorf("oracle: solvers at %d threads: reference BiCGSTAB stats %+v err %v", th, sr, err)
	}
	if err := residualCheck(ns, bns, yT, tol, "tuned BiCGSTAB", th); err != nil {
		return err
	}
	if err := residualCheck(ns, bns, yR, tol, "reference BiCGSTAB", th); err != nil {
		return err
	}
	if err := solutionsAgree(yT, yR, tol, "BiCGSTAB", th); err != nil {
		return err
	}

	// Block CG through the tuned batched path vs k independent reference
	// CG solves, column by column.
	const k = 4
	n := len(b)
	bb := make([]T, n*k)
	g := lcg{s: 77}
	for i := range bb {
		bb[i] = T(val(g.intn(16)))
	}
	xb := make([]T, n*k)
	bst, err := solve.BlockCG[T](op, bb, xb, k, tol, maxIter)
	if err != nil || !bst.Converged {
		return fmt.Errorf("oracle: solvers at %d threads: tuned BlockCG stats %+v err %v", th, bst, err)
	}
	col := make([]T, n)
	bcol := make([]T, n)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			bcol[i] = bb[i*k+j]
		}
		clear(col)
		sr, err := solve.CG[T](serialOp[T]{a}, nil, bcol, col, tol, maxIter)
		if err != nil || !sr.Converged {
			return fmt.Errorf("oracle: solvers at %d threads: BlockCG reference column %d stats %+v err %v", th, j, sr, err)
		}
		xcol := make([]T, n)
		for i := 0; i < n; i++ {
			xcol[i] = xb[i*k+j]
		}
		if err := residualCheck(a, bcol, xcol, tol, fmt.Sprintf("tuned BlockCG column %d", j), th); err != nil {
			return err
		}
		if err := solutionsAgree(xcol, col, tol, fmt.Sprintf("BlockCG column %d", j), th); err != nil {
			return err
		}
	}
	return nil
}

// residualCheck recomputes ‖b − A·x‖₂/‖b‖₂ from scratch in float64 — no
// solver state, no tuned kernel — and requires it within a small slack of
// the requested tolerance (the float64 recomputation of a T-precision
// residual can sit slightly above it).
func residualCheck[T matrix.Float](a *matrix.CSR[T], b, x []T, tol float64, what string, th int) error {
	var res, nb float64
	for r := 0; r < a.Rows; r++ {
		var s float64
		for jj := a.RowPtr[r]; jj < a.RowPtr[r+1]; jj++ {
			s += float64(a.Vals[jj]) * float64(x[a.ColIdx[jj]])
		}
		d := float64(b[r]) - s
		res += d * d
		nb += float64(b[r]) * float64(b[r])
	}
	rel := math.Sqrt(res) / math.Sqrt(nb)
	if rel > 4*tol {
		return fmt.Errorf("oracle: solvers at %d threads: %s: independent residual %g exceeds 4·tol %g", th, what, rel, 4*tol)
	}
	return nil
}

// solutionsAgree bounds the tuned-vs-reference solution gap: both residuals
// are ≤ tol, so the solutions may differ by at most the conditioning
// amplification, generously bounded here relative to the solution scale.
func solutionsAgree[T matrix.Float](got, want []T, tol float64, what string, th int) error {
	var d2, w2 float64
	for i := range got {
		d := float64(got[i]) - float64(want[i])
		d2 += d * d
		w2 += float64(want[i]) * float64(want[i])
	}
	if math.Sqrt(d2) > 1e4*tol*(1+math.Sqrt(w2)) {
		return fmt.Errorf("oracle: solvers at %d threads: %s: tuned and reference solutions differ by %g (scale %g)",
			th, what, math.Sqrt(d2), math.Sqrt(w2))
	}
	return nil
}

// convectionDiffusion builds the nonsymmetric 1D convection-diffusion
// operator the BiCGSTAB differential runs on.
func convectionDiffusion[T matrix.Float](n int) *matrix.CSR[T] {
	var ts []matrix.Triple[T]
	for i := 0; i < n; i++ {
		ts = append(ts, matrix.Triple[T]{Row: i, Col: i, Val: 2.5})
		if i > 0 {
			ts = append(ts, matrix.Triple[T]{Row: i, Col: i - 1, Val: -1.4})
		}
		if i+1 < n {
			ts = append(ts, matrix.Triple[T]{Row: i, Col: i + 1, Val: -0.6})
		}
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		panic(err) // structurally impossible: indices are in range by construction
	}
	return m
}
