package oracle

import (
	"testing"
)

// TestSpGEMMDifferential walks the adversarial structure suite through the
// row-blocked SpGEMM and fused Galerkin product checks: bit-for-bit vs
// matrix.Mul, bit-for-bit serial vs pooled, and the fused product's
// rounding bound vs the float64 two-pass reference.
func TestSpGEMMDifferential(t *testing.T) {
	opt := Options{}
	if testing.Short() {
		opt.Threads = []int{2, 3}
	}
	for _, s := range Specs() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			if err := CheckSpGEMM[float64](&s, opt); err != nil {
				t.Error(err)
			}
			if err := CheckSpGEMM[float32](&s, opt); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSolversDifferential runs the residual-checked tuned-vs-reference
// solver suite for both element types.
func TestSolversDifferential(t *testing.T) {
	opt := Options{}
	if testing.Short() {
		opt.Threads = []int{2}
	}
	if err := CheckSolvers[float64](opt); err != nil {
		t.Error(err)
	}
	if err := CheckSolvers[float32](opt); err != nil {
		t.Error(err)
	}
}
