package oracle

import (
	"errors"
	"fmt"
	"math"

	"smat/internal/kernels"
	"smat/internal/matrix"
)

// batchWidths is the batch-width sweep every CheckBatch run walks: the
// degenerate widths (0 = no-op, 1 = single-vector equivalence), widths
// straddling the register tile (5, 7), and full multiples of it.
var batchWidths = []int{0, 1, 2, 5, 7, 8}

// xBatch builds k deterministic input columns, phase-shifted per column so a
// kernel mixing up batch lanes produces a visibly different product, and
// packs them into the interleaved layout (xb[c*k+j] = column j, element c).
func xBatch[T matrix.Float](cols, k int) (xb []T, cols64 [][]float64) {
	xb = make([]T, cols*k)
	cols64 = make([][]float64, k)
	for j := 0; j < k; j++ {
		cols64[j] = make([]float64, cols)
		for c := 0; c < cols; c++ {
			v := float64(((c+5*j)*13)%31-15) / 8
			if v == 0 {
				v = 0.375
			}
			xb[c*k+j] = T(v)
			cols64[j][c] = float64(T(v))
		}
	}
	return xb, cols64
}

// CheckBatch runs the differential suite over the batched (multi-vector)
// kernels for one spec: for every format that converts within the fill
// bound and every registered batch kernel of that format, each column of
// the serial batched product is checked against an independent float64
// reference SpMV of that input column, and the spawned and pooled parallel
// paths must agree with the serial batched result bit for bit at every
// thread count. Width 0 must be a no-op and width 1 must satisfy the same
// per-column bound as any other width. The returned Coverage reports which
// batch kernels executed and which ran genuinely partitioned plans.
func CheckBatch[T matrix.Float](lib *kernels.Library[T], s *Spec, opt Options) (*Coverage, error) {
	opt = opt.withDefaults()
	cov := NewCoverage()

	ref, err := BuildCSR[T](s)
	if err != nil {
		return cov, err
	}
	eps := epsOf[T]() * opt.TolScale

	// Per-column float64 references, shared across formats and kernels.
	maxK := 0
	for _, k := range batchWidths {
		if k > maxK {
			maxK = k
		}
	}
	_, cols64 := xBatch[T](s.Cols, maxK)
	want := make([][]float64, maxK)
	absSum := make([][]float64, maxK)
	for j := 0; j < maxK; j++ {
		if want[j], absSum[j], err = reference(s, cols64[j]); err != nil {
			return cov, err
		}
	}

	pools := make(map[int]*kernels.Pool[T], len(opt.Threads))
	for _, th := range opt.Threads {
		if _, ok := pools[th]; !ok {
			pools[th] = kernels.NewPool[T](th)
		}
	}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()

	for _, f := range checkFormats {
		// As in Check: the default conversion plus every conversion-level
		// parameter variant, so each BCSR block shape and HYB width cut is
		// exercised by every registered batch tile width too.
		for _, p := range append([]kernels.Params{{}}, paramVariants(f)...) {
			mat, err := kernels.ConvertWithParams(ref, f, opt.MaxFill, p)
			if errors.Is(err, matrix.ErrFillExplosion) {
				continue
			}
			if err != nil {
				return cov, fmt.Errorf("oracle: %s/%s%s: convert: %w", s.Name, f, p.Suffix(), err)
			}
			for _, bk := range lib.ForFormatBatch(f) {
				if err := checkBatchKernel(bk, mat, ref, want, absSum, eps, opt, pools, cov, s.Name); err != nil {
					return cov, err
				}
			}
			cov.Formats[f] = true
			if !p.IsZero() {
				cov.Conversions[ConversionKey(f, p)] = true
			}
		}
	}
	return cov, nil
}

// checkBatchKernel runs one batch kernel through the width sweep.
func checkBatchKernel[T matrix.Float](bk *kernels.BatchKernel[T], mat *kernels.Mat[T], ref *matrix.CSR[T],
	want, absSum [][]float64, eps float64, opt Options,
	pools map[int]*kernels.Pool[T], cov *Coverage, spec string) error {

	cov.Kernels[bk.Name] = true
	rows := ref.Rows

	for _, k := range batchWidths {
		if k == 0 {
			// Width 0: no output element may be touched.
			sentinel := []T{42, 42, 42}
			bk.Run(mat, nil, sentinel[:0], 0, 2)
			bk.RunPooled(mat, nil, sentinel[:0], 0, pools[opt.Threads[0]])
			for i, v := range sentinel {
				if v != 42 {
					return fmt.Errorf("oracle: %s/%s: k=0 wrote output[%d]", spec, bk.Name, i)
				}
			}
			continue
		}
		xb, _ := xBatch[T](ref.Cols, k)

		ySerial := runNaN(func(yb []T) { bk.Run(mat, xb, yb, k, 1) }, rows*k)

		// Property 1 (batched): column j of the serial product within the
		// per-row rounding bound of that column's float64 reference.
		for j := 0; j < k; j++ {
			for r := 0; r < rows; r++ {
				got := float64(ySerial[r*k+j])
				if math.IsNaN(got) {
					return fmt.Errorf("oracle: %s/%s: k=%d y[%d][col %d] unwritten (NaN sentinel survived)",
						spec, bk.Name, k, r, j)
				}
				deg := ref.RowDegree(r)
				if diff := math.Abs(got - want[j][r]); diff > rowTolerance(eps, deg, absSum[j][r], want[j][r]) {
					return fmt.Errorf("oracle: %s/%s: k=%d y[%d][col %d] = %g, reference %g (|diff| %g > tol %g, deg %d)",
						spec, bk.Name, k, r, j, got, want[j][r], diff,
						rowTolerance(eps, deg, absSum[j][r], want[j][r]), deg)
				}
			}
		}

		// Property 3 (batched): spawned and pooled execution agree with the
		// serial batched result bit for bit at every thread count.
		for _, th := range opt.Threads {
			ySpawn := runNaN(func(yb []T) { bk.Run(mat, xb, yb, k, th) }, rows*k)
			if i, ok := bitMismatch(ySerial, ySpawn); ok {
				return fmt.Errorf("oracle: %s/%s: k=%d spawned run at %d threads differs from serial at yb[%d]: %g vs %g",
					spec, bk.Name, k, th, i, float64(ySpawn[i]), float64(ySerial[i]))
			}
			yPooled := runNaN(func(yb []T) { bk.RunPooled(mat, xb, yb, k, pools[th]) }, rows*k)
			if i, ok := bitMismatch(ySerial, yPooled); ok {
				return fmt.Errorf("oracle: %s/%s: k=%d pooled run at %d threads differs from serial at yb[%d]: %g vs %g",
					spec, bk.Name, k, th, i, float64(yPooled[i]), float64(ySerial[i]))
			}
			if th > 1 && !mat.PlanForBatch(th, k).Serial {
				cov.Parallel[bk.Name] = true
			}
		}
	}
	return nil
}
