// Package oracle is SMAT's differential correctness harness: it generates
// adversarial sparse structures and checks every registered kernel, every
// format conversion round trip and every plan partition against a pure-Go
// dense reference computed in float64. Three properties are enforced for
// each (matrix, format, kernel, thread count) combination:
//
//  1. the SpMV result matches the reference within a per-type, per-row
//     rounding bound (see tolerance.go);
//  2. Validate() holds on every converted representation, and converting
//     back to CSR reproduces the original matrix exactly;
//  3. serial, spawned-goroutine and pooled execution agree bit for bit.
//
// The same generators feed the native fuzz targets (FuzzSpMVDifferential
// here, FuzzFromTriples / FuzzConvertRoundTrip in internal/matrix,
// FuzzMMIORead in internal/mmio) through DecodeSpec, which maps arbitrary
// fuzzer bytes onto a bounded Spec.
package oracle

import (
	"fmt"

	"smat/internal/matrix"
)

// Spec is one generated test matrix: a name for failure messages plus the
// shape and coordinate triples it is assembled from. Values are always of
// the form k/8 with small k, exactly representable in float32 and float64,
// so duplicate summing and cancellation behave identically in both element
// types and the reference computation is exact per product.
type Spec struct {
	Name       string
	Rows, Cols int
	Triples    []matrix.Triple[float64]
}

// NNZ returns the number of raw triples (before duplicate summing).
func (s *Spec) NNZ() int { return len(s.Triples) }

// val maps an integer onto the exact-in-float32 value grid, avoiding zero
// (FromTriples drops explicit zeros, which would silently shrink a case).
func val(k int) float64 {
	v := float64(k%41-20) / 8
	if v == 0 {
		return 0.125
	}
	return v
}

// lcg is a tiny deterministic generator so specs are reproducible without
// math/rand seeding conventions leaking into golden failures.
type lcg struct{ s uint64 }

func (g *lcg) next() uint64 {
	g.s = g.s*6364136223846793005 + 1442695040888963407
	return g.s >> 33
}

func (g *lcg) intn(n int) int { return int(g.next() % uint64(n)) }

// Specs returns the adversarial structure suite. Each entry targets a
// boundary that has bitten a sparse kernel or conversion somewhere: empty
// dimensions, single rows/columns, rows and columns with no entries,
// duplicate-heavy input, dense blocks, ragged power-law rows, extreme
// aspect ratios, and structures big enough (estimated work ≥ the engine's
// serial cutoff) that parallel row/nnz/entry partitions genuinely run.
func Specs() []Spec {
	specs := []Spec{
		{Name: "empty-0x0", Rows: 0, Cols: 0},
		{Name: "zero-rows-0xN", Rows: 0, Cols: 7},
		{Name: "zero-cols-Nx0", Rows: 7, Cols: 0},
		{Name: "empty-10x10", Rows: 10, Cols: 10},
		{Name: "single-1x1", Rows: 1, Cols: 1,
			Triples: []matrix.Triple[float64]{{Row: 0, Col: 0, Val: -2.5}}},
	}

	specs = append(specs, singleRow(), singleCol(), denseSmall(), denseBlock(),
		emptyRowsCols(), duplicateHeavy(), raggedPowerLaw(), diagBanded(),
		wideExtreme(), tallExtreme(), parallelLaplacian(), powerLawParallel(),
		hybTailParallel())
	return specs
}

func singleRow() Spec {
	s := Spec{Name: "single-row", Rows: 1, Cols: 64}
	for c := 0; c < 64; c += 3 {
		s.Triples = append(s.Triples, matrix.Triple[float64]{Row: 0, Col: c, Val: val(c)})
	}
	return s
}

func singleCol() Spec {
	s := Spec{Name: "single-col", Rows: 64, Cols: 1}
	for r := 0; r < 64; r += 2 {
		s.Triples = append(s.Triples, matrix.Triple[float64]{Row: r, Col: 0, Val: val(r + 1)})
	}
	return s
}

func denseSmall() Spec {
	s := Spec{Name: "dense-small", Rows: 6, Cols: 6}
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			s.Triples = append(s.Triples, matrix.Triple[float64]{Row: r, Col: c, Val: val(r*6 + c)})
		}
	}
	return s
}

// denseBlock embeds a fully dense 8x8 block in an otherwise sparse matrix —
// the structure BCSR blocking is built for and ELL padding hates.
func denseBlock() Spec {
	s := Spec{Name: "dense-block", Rows: 16, Cols: 16}
	for r := 4; r < 12; r++ {
		for c := 4; c < 12; c++ {
			s.Triples = append(s.Triples, matrix.Triple[float64]{Row: r, Col: c, Val: val(r + 2*c)})
		}
	}
	s.Triples = append(s.Triples,
		matrix.Triple[float64]{Row: 0, Col: 15, Val: 1.5},
		matrix.Triple[float64]{Row: 15, Col: 0, Val: -1.5})
	return s
}

// emptyRowsCols scatters entries so several rows and columns hold nothing:
// row pointers with zero-length spans and untouched x elements.
func emptyRowsCols() Spec {
	s := Spec{Name: "empty-rows-cols", Rows: 12, Cols: 12}
	for i, rc := range [][2]int{{0, 3}, {0, 9}, {4, 4}, {4, 0}, {7, 9}, {11, 3}} {
		s.Triples = append(s.Triples, matrix.Triple[float64]{Row: rc[0], Col: rc[1], Val: val(i)})
	}
	return s
}

// duplicateHeavy repeats coordinates many times, including pairs that sum
// to exactly zero: FromTriples must sum the repeats and drop the cancelled
// entry entirely.
func duplicateHeavy() Spec {
	s := Spec{Name: "duplicate-heavy", Rows: 8, Cols: 8}
	for i := 0; i < 5; i++ {
		s.Triples = append(s.Triples,
			matrix.Triple[float64]{Row: 2, Col: 3, Val: 0.25},
			matrix.Triple[float64]{Row: 5, Col: 1, Val: val(i)})
	}
	// A cancelling pair: +1.5 and -1.5 at (6,6) must vanish.
	s.Triples = append(s.Triples,
		matrix.Triple[float64]{Row: 6, Col: 6, Val: 1.5},
		matrix.Triple[float64]{Row: 6, Col: 6, Val: -1.5},
		matrix.Triple[float64]{Row: 0, Col: 7, Val: 2})
	return s
}

// raggedPowerLaw gives row r roughly degree/(r+1) entries: a few heavy rows
// and a long sparse tail, the worst case for even row partitions and for
// ELL width.
func raggedPowerLaw() Spec {
	s := Spec{Name: "ragged-powerlaw", Rows: 40, Cols: 40}
	g := &lcg{s: 7}
	for r := 0; r < 40; r++ {
		deg := 40 / (r + 1)
		for j := 0; j < deg; j++ {
			s.Triples = append(s.Triples, matrix.Triple[float64]{
				Row: r, Col: g.intn(40), Val: val(int(g.next())),
			})
		}
	}
	return s
}

func diagBanded() Spec {
	s := Spec{Name: "diag-banded", Rows: 64, Cols: 64}
	for r := 0; r < 64; r++ {
		for _, off := range []int{-5, -1, 0, 1, 5} {
			if c := r + off; c >= 0 && c < 64 {
				s.Triples = append(s.Triples, matrix.Triple[float64]{Row: r, Col: c, Val: val(r + off)})
			}
		}
	}
	return s
}

// wideExtreme and tallExtreme push one dimension near the practical limit
// while the other stays tiny, stressing column-index width, evenBounds with
// threads > rows, and DIA's offset range.
func wideExtreme() Spec {
	s := Spec{Name: "wide-extreme-3x50000", Rows: 3, Cols: 50000}
	for _, c := range []int{0, 1, 2, 49997, 49998, 49999, 25000} {
		for r := 0; r < 3; r++ {
			s.Triples = append(s.Triples, matrix.Triple[float64]{Row: r, Col: c, Val: val(r + c)})
		}
	}
	return s
}

func tallExtreme() Spec {
	s := Spec{Name: "tall-extreme-50000x3", Rows: 50000, Cols: 3}
	for _, r := range []int{0, 1, 2, 49997, 49998, 49999, 25000} {
		for c := 0; c < 3; c++ {
			s.Triples = append(s.Triples, matrix.Triple[float64]{Row: r, Col: c, Val: val(r + c)})
		}
	}
	return s
}

// parallelLaplacian is the 1-D Laplacian with ~18k nonzeros: enough
// estimated work that every format's plan genuinely partitions (the engine
// serialises below 8192 work items), with a 3-diagonal structure DIA and
// ELL accept without fill explosion.
func parallelLaplacian() Spec {
	const n = 6000
	s := Spec{Name: "parallel-laplacian", Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		s.Triples = append(s.Triples, matrix.Triple[float64]{Row: i, Col: i, Val: 2})
		if i > 0 {
			s.Triples = append(s.Triples, matrix.Triple[float64]{Row: i, Col: i - 1, Val: -1})
		}
		if i < n-1 {
			s.Triples = append(s.Triples, matrix.Triple[float64]{Row: i, Col: i + 1, Val: -1})
		}
	}
	return s
}

// powerLawParallel combines the ragged degree distribution with enough
// nonzeros to run the nnz-balanced and entry-balanced parallel partitions.
func powerLawParallel() Spec {
	const n = 2000
	s := Spec{Name: "powerlaw-parallel", Rows: n, Cols: n}
	g := &lcg{s: 99}
	for r := 0; r < n; r++ {
		deg := 4 + 400/(r+20)
		for j := 0; j < deg; j++ {
			s.Triples = append(s.Triples, matrix.Triple[float64]{
				Row: r, Col: g.intn(n), Val: val(int(g.next())),
			})
		}
	}
	return s
}

// hybTailParallel is shaped so ToHYB's width split leaves a COO tail of
// ≥ 8192 entries: most rows have degree 2 (the chosen ELL width) while 200
// heavy rows overflow ~58 entries each into the tail, exercising the HYB
// kernels' parallel tail accumulation rather than the serial fallback.
func hybTailParallel() Spec {
	const n = 3000
	s := Spec{Name: "hyb-tail-parallel", Rows: n, Cols: n}
	g := &lcg{s: 31}
	for r := 0; r < n; r++ {
		deg := 2
		if r%15 == 0 {
			deg = 60
		}
		for j := 0; j < deg; j++ {
			s.Triples = append(s.Triples, matrix.Triple[float64]{
				Row: r, Col: g.intn(n), Val: val(int(g.next())),
			})
		}
	}
	return s
}

// BuildCSR assembles the spec at the requested element type. Spec values
// are exact in float32, so the float32 and float64 builds describe the
// same mathematical matrix.
func BuildCSR[T matrix.Float](s *Spec) (*matrix.CSR[T], error) {
	ts := make([]matrix.Triple[T], len(s.Triples))
	for i, t := range s.Triples {
		ts[i] = matrix.Triple[T]{Row: t.Row, Col: t.Col, Val: T(t.Val)}
	}
	m, err := matrix.FromTriples(s.Rows, s.Cols, ts)
	if err != nil {
		return nil, fmt.Errorf("oracle: spec %q does not assemble: %w", s.Name, err)
	}
	return m, nil
}
