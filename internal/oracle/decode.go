package oracle

import "smat/internal/matrix"

// decode limits: fuzz-built specs stay small enough that one differential
// check is fast (the fuzzer's throughput is mutations per second, not
// matrix size), while still reaching every boundary class the handwritten
// specs cover — empty dimensions, out-of-band duplicates, ragged rows.
const (
	decodeMaxDim = 48
	decodeMaxNNZ = 192
)

// DecodeSpec maps arbitrary fuzzer bytes onto a bounded Spec. Every input
// decodes to something (an empty input is the 0x0 matrix); coordinates are
// reduced into range rather than rejected, so the fuzzer spends its budget
// on structure, not on guessing valid encodings. The decode is total and
// deterministic: a crashing input reproduces from its corpus file alone.
func DecodeSpec(data []byte) *Spec {
	s := &Spec{Name: "fuzz"}
	if len(data) == 0 {
		return s
	}
	s.Rows = int(data[0]) % (decodeMaxDim + 1)
	data = data[1:]
	if len(data) == 0 {
		return s
	}
	s.Cols = int(data[0]) % (decodeMaxDim + 1)
	data = data[1:]

	if s.Rows == 0 || s.Cols == 0 {
		return s
	}
	for len(data) >= 3 && len(s.Triples) < decodeMaxNNZ {
		s.Triples = append(s.Triples, matrix.Triple[float64]{
			Row: int(data[0]) % s.Rows,
			Col: int(data[1]) % s.Cols,
			Val: val(int(int8(data[2]))),
		})
		data = data[3:]
	}
	return s
}
