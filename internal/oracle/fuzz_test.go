package oracle

import (
	"testing"
)

// FuzzSpMVDifferential decodes arbitrary bytes into a bounded sparse
// structure and runs the full differential oracle over it at both element
// types: every registered kernel in every convertible format must match the
// float64 reference, every conversion must validate and round-trip, and
// parallel execution must agree with serial bit for bit.
func FuzzSpMVDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 9})
	f.Add([]byte{9, 0})
	f.Add([]byte{1, 1, 0, 0, 20})
	// A ragged 16x16 with duplicates (same (row,col) repeated with values
	// that sum and with values that cancel).
	f.Add([]byte{16, 16, 3, 4, 12, 3, 4, 12, 5, 5, 30, 5, 5, 90, 0, 15, 1, 15, 0, 2})
	// Diagonal-ish band on a 32x24 rectangle.
	f.Add([]byte{32, 24, 0, 0, 10, 1, 1, 11, 2, 2, 12, 3, 3, 13, 4, 4, 14, 31, 23, 15})

	lib64 := fullLibrary[float64]()
	lib32 := fullLibrary[float32]()
	opt := Options{Threads: []int{1, 3}}

	f.Fuzz(func(t *testing.T, data []byte) {
		s := DecodeSpec(data)
		if _, err := Check(lib64, s, opt); err != nil {
			t.Fatalf("float64: %v", err)
		}
		if _, err := Check(lib32, s, opt); err != nil {
			t.Fatalf("float32: %v", err)
		}
	})
}
