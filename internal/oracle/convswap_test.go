package oracle

import (
	"testing"

	"smat/internal/matrix"
)

// TestCheckConvertSwap runs the background-conversion swap oracle over
// structures whose target formats genuinely convert: the swap must be
// invisible except as a bit-for-bit change between the two allowed answers.
func TestCheckConvertSwap(t *testing.T) {
	cases := []struct {
		spec    Spec
		targets []matrix.Format
	}{
		{diagBanded(), []matrix.Format{matrix.FormatDIA, matrix.FormatELL, matrix.FormatCOO}},
		{parallelLaplacian(), []matrix.Format{matrix.FormatDIA}},
	}
	for _, c := range cases {
		c := c
		for _, target := range c.targets {
			target := target
			t.Run(c.spec.Name+"/"+target.String(), func(t *testing.T) {
				t.Parallel()
				if err := CheckConvertSwap[float64](&c.spec, target, Options{}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCheckConvertSwapFloat32 exercises the float32 instantiation on one
// banded structure — the swap protocol and the bitwise properties are
// element-type generic.
func TestCheckConvertSwapFloat32(t *testing.T) {
	s := diagBanded()
	if err := CheckConvertSwap[float32](&s, matrix.FormatELL, Options{Threads: []int{1, 3}}); err != nil {
		t.Fatal(err)
	}
}
