package oracle

import (
	"errors"
	"fmt"
	"math"

	"smat/internal/kernels"
	"smat/internal/matrix"
)

// Options configures one oracle run.
type Options struct {
	// Threads lists the thread counts every kernel is executed at (on top
	// of the always-run serial pass). Default: 1, 2, 3 and 8 — odd counts
	// catch remainder-chunk bugs that powers of two hide.
	Threads []int
	// MaxFill bounds DIA/ELL/BCSR zero-fill as a multiple of NNZ; formats
	// rejected by the fill guard are skipped, not failed. Default 8.
	MaxFill float64
	// TolScale scales the per-row rounding bound (default 1). It exists for
	// callers probing the bound itself; the suite runs at 1.
	TolScale float64
}

func (o Options) withDefaults() Options {
	if len(o.Threads) == 0 {
		o.Threads = []int{1, 2, 3, 8}
	}
	if o.MaxFill == 0 {
		o.MaxFill = 8
	}
	if o.TolScale == 0 {
		o.TolScale = 1
	}
	return o
}

// Coverage records what one or more Check calls actually exercised, so the
// suite can assert "every registered kernel, every format, parallel paths
// included" instead of trusting the case list.
type Coverage struct {
	// Formats holds every format that converted successfully.
	Formats map[matrix.Format]bool
	// Kernels holds every kernel name that executed.
	Kernels map[string]bool
	// Parallel holds every kernel name that executed a genuinely
	// partitioned (non-serial) plan.
	Parallel map[string]bool
	// Conversions holds every parameterized conversion variant (keyed
	// "format/params") that converted and passed the full differential
	// check, so the suite can assert the whole conversion-level parameter
	// space — every BCSR block shape, every HYB width cut — was reached.
	Conversions map[string]bool
}

// NewCoverage returns an empty coverage accumulator.
func NewCoverage() *Coverage {
	return &Coverage{
		Formats:     make(map[matrix.Format]bool),
		Kernels:     make(map[string]bool),
		Parallel:    make(map[string]bool),
		Conversions: make(map[string]bool),
	}
}

// Merge folds other into c.
func (c *Coverage) Merge(other *Coverage) {
	for f := range other.Formats {
		c.Formats[f] = true
	}
	for k := range other.Kernels {
		c.Kernels[k] = true
	}
	for k := range other.Parallel {
		c.Parallel[k] = true
	}
	for k := range other.Conversions {
		c.Conversions[k] = true
	}
}

// ConversionKey names one parameterized conversion variant in
// Coverage.Conversions.
func ConversionKey(f matrix.Format, p kernels.Params) string {
	return f.String() + "/" + p.String()
}

// paramVariants lists the conversion-level parameter instantiations a format
// supports beyond its default conversion: every searched BCSR block shape and
// every ELL→HYB width cut. The differential suite walks each variant with the
// format's full kernel registry, so a shape-specialised interior that
// mis-indexes its padding shows up as a reference mismatch.
func paramVariants(f matrix.Format) []kernels.Params {
	switch f {
	case matrix.FormatBCSR:
		out := make([]kernels.Params, 0, len(kernels.BCSRShapes))
		for _, sh := range kernels.BCSRShapes {
			out = append(out, kernels.Params{BlockR: sh[0], BlockC: sh[1]})
		}
		return out
	case matrix.FormatHYB:
		out := make([]kernels.Params, 0, len(kernels.HybCuts))
		for _, cut := range kernels.HybCuts {
			out = append(out, kernels.Params{HybCut: cut})
		}
		return out
	}
	return nil
}

// xVector builds the deterministic input vector: values on the exact k/8
// grid, never zero, varying with the index so a kernel reading the wrong
// column produces a visibly different product.
func xVector[T matrix.Float](cols int) []T {
	x := make([]T, cols)
	for c := range x {
		v := float64((c*13)%31-15) / 8
		if v == 0 {
			v = 0.375
		}
		x[c] = T(v)
	}
	return x
}

// reference computes want = A·x and the per-row absolute sums Σ|aᵣₖ·xₖ| in
// float64, independently of every code path under test. Small shapes expand
// through the dense representation (the pure-Go dense reference); large
// ones accumulate straight off the spec's triples, still in float64.
func reference(s *Spec, x64 []float64) (want, absSum []float64, err error) {
	want = make([]float64, s.Rows)
	absSum = make([]float64, s.Rows)
	for _, t := range s.Triples {
		if t.Row < 0 || t.Row >= s.Rows || t.Col < 0 || t.Col >= s.Cols {
			return nil, nil, fmt.Errorf("oracle: spec %q triple (%d,%d) outside %dx%d",
				s.Name, t.Row, t.Col, s.Rows, s.Cols)
		}
		absSum[t.Row] += math.Abs(t.Val * x64[t.Col])
	}
	if s.Rows*s.Cols <= 1<<20 && s.Rows > 0 && s.Cols > 0 {
		d := matrix.NewDense[float64](s.Rows, s.Cols)
		for _, t := range s.Triples {
			d.Set(t.Row, t.Col, d.At(t.Row, t.Col)+t.Val)
		}
		d.MulVec(x64, want)
		return want, absSum, nil
	}
	for _, t := range s.Triples {
		want[t.Row] += t.Val * x64[t.Col]
	}
	return want, absSum, nil
}

// checkFormats is the format list one Check call walks: the four basic
// formats plus the opt-in extensions. Extension formats without registered
// kernels still get their conversion, Validate and round-trip checks.
var checkFormats = []matrix.Format{
	matrix.FormatCSR, matrix.FormatCOO, matrix.FormatDIA, matrix.FormatELL,
	matrix.FormatHYB, matrix.FormatBCSR,
}

// Check runs the full differential suite for one spec against one kernel
// library: for every format that converts within the fill bound, it checks
// Validate and the CSR round trip, the plan partition at every thread
// count, and for every registered kernel of the format the serial result
// against the float64 reference plus bit-for-bit agreement of the spawned
// and pooled parallel paths with the serial one. The returned Coverage
// reports what actually ran; the first violated property is returned as an
// error.
func Check[T matrix.Float](lib *kernels.Library[T], s *Spec, opt Options) (*Coverage, error) {
	opt = opt.withDefaults()
	cov := NewCoverage()

	ref, err := BuildCSR[T](s)
	if err != nil {
		return cov, err
	}
	if err := ref.Validate(); err != nil {
		return cov, fmt.Errorf("oracle: %s: assembled CSR invalid: %w", s.Name, err)
	}

	x := xVector[T](s.Cols)
	x64 := make([]float64, s.Cols)
	for i, v := range x {
		x64[i] = float64(v)
	}
	want, absSum, err := reference(s, x64)
	if err != nil {
		return cov, err
	}
	eps := epsOf[T]() * opt.TolScale

	pools := make(map[int]*kernels.Pool[T], len(opt.Threads))
	for _, th := range opt.Threads {
		if _, ok := pools[th]; !ok {
			pools[th] = kernels.NewPool[T](th)
		}
	}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()

	for _, f := range checkFormats {
		// The default conversion first, then every conversion-level parameter
		// variant (BCSR block shapes, HYB width cuts): each instantiation
		// must satisfy the same invariants, round trip, plan partitioning and
		// differential properties as the default.
		for _, p := range append([]kernels.Params{{}}, paramVariants(f)...) {
			mat, err := kernels.ConvertWithParams(ref, f, opt.MaxFill, p)
			if errors.Is(err, matrix.ErrFillExplosion) {
				continue
			}
			if err != nil {
				return cov, fmt.Errorf("oracle: %s/%s%s: convert: %w", s.Name, f, p.Suffix(), err)
			}
			if err := checkConverted(lib, mat, ref, x, want, absSum, eps, opt, pools, cov, s.Name, f); err != nil {
				return cov, err
			}
			cov.Formats[f] = true
			if !p.IsZero() {
				cov.Conversions[ConversionKey(f, p)] = true
			}
		}
	}
	return cov, nil
}

// checkConverted runs one converted representation through the invariant,
// round-trip, plan and kernel checks.
func checkConverted[T matrix.Float](lib *kernels.Library[T], mat *kernels.Mat[T], ref *matrix.CSR[T],
	x []T, want, absSum []float64, eps float64, opt Options,
	pools map[int]*kernels.Pool[T], cov *Coverage, spec string, f matrix.Format) error {

	// Property 2: the converted representation satisfies its own
	// invariants and converts back to exactly the source matrix.
	if err := mat.Validate(); err != nil {
		return fmt.Errorf("oracle: %s/%s: converted representation invalid: %w", spec, f, err)
	}
	if back := mat.ToCSR(); !ref.Equal(back) {
		return fmt.Errorf("oracle: %s/%s: round trip changed the matrix", spec, f)
	}

	// Every plan partition must tile its work range exactly.
	for _, th := range opt.Threads {
		if err := checkPlan(mat.PlanFor(th), mat, th); err != nil {
			return fmt.Errorf("oracle: %s/%s: %w", spec, f, err)
		}
	}

	for _, k := range lib.ForFormat(f) {
		if err := checkKernel(k, mat, ref, x, want, absSum, eps, opt, pools, cov, spec); err != nil {
			return err
		}
	}
	return nil
}

// checkKernel runs one kernel through the serial reference comparison and
// the parallel bitwise agreement checks.
func checkKernel[T matrix.Float](k *kernels.Kernel[T], mat *kernels.Mat[T], ref *matrix.CSR[T],
	x []T, want, absSum []float64, eps float64, opt Options,
	pools map[int]*kernels.Pool[T], cov *Coverage, spec string) error {

	cov.Kernels[k.Name] = true
	rows := len(want)

	ySerial := runNaN(func(y []T) { k.Run(mat, x, y, 1) }, rows)

	// Property 1: serial result within the per-row rounding bound of the
	// float64 reference; NaN means an element was never written. The row
	// degree scaling the bound comes from the source CSR: padding slots in
	// other formats multiply by an exact zero and add no rounding.
	for r := 0; r < rows; r++ {
		got := float64(ySerial[r])
		if math.IsNaN(got) {
			return fmt.Errorf("oracle: %s/%s: y[%d] unwritten (NaN sentinel survived)", spec, k.Name, r)
		}
		deg := ref.RowDegree(r)
		if diff := math.Abs(got - want[r]); diff > rowTolerance(eps, deg, absSum[r], want[r]) {
			return fmt.Errorf("oracle: %s/%s: y[%d] = %g, reference %g (|diff| %g > tol %g, deg %d)",
				spec, k.Name, r, got, want[r], diff, rowTolerance(eps, deg, absSum[r], want[r]), deg)
		}
	}

	// Property 3: spawned and pooled execution agree with serial bit for
	// bit at every thread count (all partitions split on row boundaries, so
	// per-element accumulation order is identical by construction).
	for _, th := range opt.Threads {
		ySpawn := runNaN(func(y []T) { k.Run(mat, x, y, th) }, rows)
		if r, ok := bitMismatch(ySerial, ySpawn); ok {
			return fmt.Errorf("oracle: %s/%s: spawned run at %d threads differs from serial at y[%d]: %g vs %g",
				spec, k.Name, th, r, float64(ySpawn[r]), float64(ySerial[r]))
		}
		yPooled := runNaN(func(y []T) { k.RunPooled(mat, x, y, pools[th]) }, rows)
		if r, ok := bitMismatch(ySerial, yPooled); ok {
			return fmt.Errorf("oracle: %s/%s: pooled run at %d threads differs from serial at y[%d]: %g vs %g",
				spec, k.Name, th, r, float64(yPooled[r]), float64(ySerial[r]))
		}
		if th > 1 && !mat.PlanFor(th).Serial {
			cov.Parallel[k.Name] = true
		}
	}
	return nil
}

// runNaN executes one SpMV into a NaN-prefilled vector, so elements the
// kernel fails to write survive as NaN sentinels instead of accidental
// zeros.
func runNaN[T matrix.Float](run func(y []T), rows int) []T {
	y := make([]T, rows)
	nan := T(math.NaN())
	for i := range y {
		y[i] = nan
	}
	run(y)
	return y
}

// bitMismatch returns the first index where the two vectors differ bit for
// bit (two NaNs count as equal — both already fail the reference check).
func bitMismatch[T matrix.Float](a, b []T) (int, bool) {
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(float64(a[i])) && math.IsNaN(float64(b[i]))) {
			return i, true
		}
	}
	return -1, false
}

// checkPlan verifies a plan partitions its work range exactly: bounds start
// at zero, end at the full range, never step backwards, and COO entry
// bounds fall on row boundaries (the no-cross-chunk-write guarantee every
// parallel COO kernel relies on).
func checkPlan[T matrix.Float](p *kernels.Plan, m *kernels.Mat[T], threads int) error {
	if p.Threads != threads {
		return fmt.Errorf("plan for %d threads reports Threads=%d", threads, p.Threads)
	}
	if p.Serial {
		return nil
	}
	rows, _ := m.Dims()
	switch m.Format {
	case matrix.FormatCSR:
		if err := checkBounds(p.RowBounds, rows, "RowBounds"); err != nil {
			return err
		}
		return checkBounds(p.NNZBounds, rows, "NNZBounds")
	case matrix.FormatCOO:
		if err := checkBounds(p.EntryBounds, m.COO.NNZ(), "EntryBounds"); err != nil {
			return err
		}
		return checkRowAligned(p.EntryBounds, m.COO.RowIdx)
	case matrix.FormatDIA, matrix.FormatELL:
		return checkBounds(p.RowBounds, rows, "RowBounds")
	case matrix.FormatHYB:
		if err := checkBounds(p.RowBounds, m.HYB.ELL.Rows, "RowBounds"); err != nil {
			return err
		}
		if p.TailSerial {
			return nil
		}
		if err := checkBounds(p.EntryBounds, m.HYB.COO.NNZ(), "EntryBounds"); err != nil {
			return err
		}
		return checkRowAligned(p.EntryBounds, m.HYB.COO.RowIdx)
	case matrix.FormatBCSR:
		return checkBounds(p.RowBounds, m.BCSR.BlockRows(), "RowBounds")
	}
	return fmt.Errorf("plan check: unknown format %v", m.Format)
}

func checkBounds(b []int, n int, name string) error {
	if len(b) < 2 {
		return fmt.Errorf("plan %s has %d bounds", name, len(b))
	}
	if b[0] != 0 || b[len(b)-1] != n {
		return fmt.Errorf("plan %s spans [%d,%d), want [0,%d)", name, b[0], b[len(b)-1], n)
	}
	for i := 1; i < len(b); i++ {
		if b[i] < b[i-1] {
			return fmt.Errorf("plan %s not monotone at %d", name, i)
		}
	}
	return nil
}

// checkRowAligned verifies no entry chunk boundary splits a row: the entry
// before each interior boundary belongs to a different row than the entry
// after it.
func checkRowAligned(b []int, rowIdx []int) error {
	for i := 1; i < len(b)-1; i++ {
		cut := b[i]
		if cut <= 0 || cut >= len(rowIdx) {
			continue
		}
		if rowIdx[cut-1] == rowIdx[cut] {
			return fmt.Errorf("plan EntryBounds cut %d splits row %d", cut, rowIdx[cut])
		}
	}
	return nil
}
