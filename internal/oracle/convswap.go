package oracle

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"smat/internal/autotune"
	"smat/internal/features"
	"smat/internal/kernels"
	"smat/internal/matrix"
	"smat/internal/mining"
)

// swapBatchWidths are the batch widths CheckConvertSwap drives through the
// operator: 3 exercises the loop-over-vectors path, 8 the tiled SpMM path
// (the seeded crossover is swapCrossover, between the two).
var swapBatchWidths = [...]int{3, 8}

// swapCrossover is the batch crossover seeded into the cache entry.
const swapCrossover = 4

// swapGoroutines hammer the operator through the swap window; swapIters is
// how many products each one computes. The hold channel is released a few
// iterations in, so the swap lands while calls are in flight.
const (
	swapGoroutines = 8
	swapIters      = 60
)

// CheckConvertSwap runs the differential suite for the background-conversion
// swap: an operator tuned with a large iteration hint over a warm decision
// cache must serve correct, deterministic answers before, during, and after
// the atomic engine swap to the target format.
//
// The decision cache is seeded so that the tuner schedules a background
// conversion to target, pinned by TuneOptions.HoldConversion. The properties
// checked, at every thread count in opt.Threads:
//
//  1. Pre-swap the operator serves the tuned-CSR incumbent bit for bit, and
//     that answer is within the rounding bound of the float64 reference.
//  2. Mid-swap — swapGoroutines concurrent callers straddling the moment the
//     hold is released — every MulVec and MulVecBatch result is bit-for-bit
//     one of exactly two vectors: the CSR answer or the target-format answer.
//     Nothing torn, blended, or stale is ever observed.
//  3. Post-swap (after AwaitConversion reports ConvertDone) the operator
//     serves the target format bit for bit.
//
// Both allowed answers are independently tolerance-checked against the
// float64 reference, so "one of the two" can never launder a wrong result.
// A target that the fill guard rejects or that has no registered kernel is
// skipped, mirroring Check's skip rule. The error reports the first violated
// property.
func CheckConvertSwap[T matrix.Float](s *Spec, target matrix.Format, opt Options) error {
	opt = opt.withDefaults()

	ref, err := BuildCSR[T](s)
	if err != nil {
		return err
	}

	lib := kernels.NewLibrary[T]()
	tgtK := lib.Basic(target)
	if tgtK == nil {
		return nil // no kernel registered for the target: nothing to swap to
	}
	tgtMat, err := kernels.Convert(ref, target, opt.MaxFill)
	if errors.Is(err, matrix.ErrFillExplosion) {
		return nil // fill guard rejects the target on this structure: skip
	}
	if err != nil {
		return fmt.Errorf("oracle: %s/%s: convert-swap: convert: %w", s.Name, target, err)
	}

	x := xVector[T](s.Cols)
	x64 := make([]float64, s.Cols)
	for i, v := range x {
		x64[i] = float64(v)
	}
	want, absSum, err := reference(s, x64)
	if err != nil {
		return err
	}
	eps := epsOf[T]() * opt.TolScale

	// The two allowed answers, computed serially and independently of the
	// operator under test. The parallel-bitwise invariant (oracle property 3)
	// makes them the only values any pooled run may produce.
	csrK := lib.Basic(matrix.FormatCSR)
	csrMat := &kernels.Mat[T]{Format: matrix.FormatCSR, CSR: ref}
	yCSR := runNaN(func(y []T) { csrK.Run(csrMat, x, y, 1) }, s.Rows)
	yTgt := runNaN(func(y []T) { tgtK.Run(tgtMat, x, y, 1) }, s.Rows)
	name := fmt.Sprintf("%s/%s", s.Name, target)
	if err := swapRefCheck(ref, yCSR, 1, 0, want, absSum, eps, name+": CSR answer"); err != nil {
		return err
	}
	if err := swapRefCheck(ref, yTgt, 1, 0, want, absSum, eps, name+": target answer"); err != nil {
		return err
	}

	// The allowed post-swap batch answers: the tiled kernel's serial result
	// where the seeded crossover selects it, the loop path's column-wise
	// replication of the single-vector answer otherwise.
	tgtB := lib.BatchFor(target)
	ybTgt := make(map[int][]T, len(swapBatchWidths))
	for _, k := range swapBatchWidths {
		if tgtB != nil && k >= swapCrossover {
			xb := replicateColumns(x, k)
			k := k
			ybTgt[k] = runNaN(func(yb []T) { tgtB.Run(tgtMat, xb, yb, k, 1) }, s.Rows*k)
			if err := swapBatchRefCheck(ref, ybTgt[k], k, want, absSum, eps, name+": target batch answer"); err != nil {
				return err
			}
		} else {
			ybTgt[k] = replicateColumns(yTgt, k)
		}
	}

	for _, th := range opt.Threads {
		if err := checkSwapAtThreads(ref, target, th, opt, x, yCSR, yTgt, ybTgt, want, absSum, eps, name); err != nil {
			return err
		}
	}
	return nil
}

// checkSwapAtThreads runs one full pre/mid/post-swap pass on a fresh tuner
// configured for th threads.
func checkSwapAtThreads[T matrix.Float](ref *matrix.CSR[T], target matrix.Format, th int, opt Options,
	x, yCSR, yTgt []T, ybTgt map[int][]T, want, absSum []float64, eps float64, name string) error {

	// A minimal model: the ruleset never fires, so every decision the seeded
	// cache does not answer would fall through to measurement — which this
	// check never reaches.
	model := &autotune.Model{
		Threads:             th,
		ConfidenceThreshold: 0.5,
		MaxFill:             opt.MaxFill,
		Kernels:             map[string]string{},
		Ruleset:             &mining.Ruleset{Default: int(matrix.FormatCSR)},
	}
	tuner := autotune.New[T](model, autotune.Config{Threads: th})
	defer tuner.Close()

	// Seed the decision cache with the target format and synthetic payoff
	// costs whose break-even is 1, so any positive iteration hint schedules
	// the conversion — in the background, pinned by the hold channel.
	fv := features.Extract(ref)
	tuner.Cache().Put(fv.Key(), autotune.CacheEntry{
		Format:         target,
		Confidence:     1,
		Measured:       true,
		BatchCrossover: swapCrossover,
		ConvertSec:     1e-9,
		SpMVSec:        0.1,
		IncumbentSec:   0.2,
	})

	hold := make(chan struct{})
	op, d, err := tuner.TuneOpts(ref, autotune.TuneOptions{Iterations: 1 << 20, HoldConversion: hold})
	if err != nil {
		return fmt.Errorf("oracle: %s: convert-swap: tune at %d threads: %w", name, th, err)
	}
	if st := op.ConversionState(); st != autotune.ConvertPending {
		return fmt.Errorf("oracle: %s: convert-swap at %d threads: conversion state %v before release, want pending", name, th, st)
	}
	if f := op.Format(); f != matrix.FormatCSR {
		return fmt.Errorf("oracle: %s: convert-swap at %d threads: pre-swap operator serves %v, want CSR incumbent", name, th, f)
	}
	if d.Converted || d.Chosen != target {
		return fmt.Errorf("oracle: %s: convert-swap at %d threads: decision Converted=%v Chosen=%v, want pending %v", name, th, d.Converted, d.Chosen, target)
	}

	rows := len(yCSR)

	// Property 1: the very first calls — tune just returned, conversion still
	// held — serve the CSR incumbent bit for bit.
	yPre := runNaN(func(y []T) { op.MulVec(x, y) }, rows)
	if r, bad := bitMismatch(yCSR, yPre); bad {
		return fmt.Errorf("oracle: %s: convert-swap at %d threads: pre-swap y[%d] = %g, CSR answer %g",
			name, th, r, float64(yPre[r]), float64(yCSR[r]))
	}
	ybCSR := make(map[int][]T, len(swapBatchWidths))
	for _, k := range swapBatchWidths {
		k := k
		xb := replicateColumns(x, k)
		yb := runNaN(func(yb []T) { op.MulVecBatch(xb, yb, k) }, rows*k)
		if err := swapBatchRefCheck(ref, yb, k, want, absSum, eps,
			fmt.Sprintf("%s: pre-swap batch k=%d at %d threads", name, k, th)); err != nil {
			return err
		}
		ybCSR[k] = yb
	}

	// Property 2: hammer the operator through the swap window. Goroutine 0
	// releases the hold a few iterations in; every observed result must be
	// bit-for-bit one of the two allowed answers.
	var (
		wg      sync.WaitGroup
		release sync.Once
		errCh   = make(chan error, swapGoroutines)
	)
	releaseHold := func() { release.Do(func() { close(hold) }) }
	for g := 0; g < swapGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g == 0 {
				defer releaseHold() // never leave AwaitConversion hanging
			}
			y := make([]T, rows)
			xbs := make(map[int][]T, len(swapBatchWidths))
			ybs := make(map[int][]T, len(swapBatchWidths))
			for _, k := range swapBatchWidths {
				xbs[k] = replicateColumns(x, k)
				ybs[k] = make([]T, rows*k)
			}
			for i := 0; i < swapIters; i++ {
				if g == 0 && i == 10 {
					releaseHold()
				}
				if i%3 == 0 {
					op.MulVec(x, y)
					if r, ok := matchEither(y, yCSR, yTgt); !ok {
						errCh <- fmt.Errorf("oracle: %s: convert-swap at %d threads: mid-swap y[%d] = %g matches neither the CSR answer %g nor the target answer %g",
							name, th, r, float64(y[r]), float64(yCSR[r]), float64(yTgt[r]))
						return
					}
					continue
				}
				k := swapBatchWidths[i%3-1]
				op.MulVecBatch(xbs[k], ybs[k], k)
				if r, ok := matchEither(ybs[k], ybCSR[k], ybTgt[k]); !ok {
					errCh <- fmt.Errorf("oracle: %s: convert-swap at %d threads: mid-swap batch k=%d yb[%d] = %g matches neither the CSR nor the target answer",
						name, th, k, r, float64(ybs[k][r]))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	if st := op.AwaitConversion(); st != autotune.ConvertDone {
		return fmt.Errorf("oracle: %s: convert-swap at %d threads: conversion settled as %v, want done", name, th, st)
	}
	for err := range errCh {
		if err != nil {
			return err
		}
	}

	// Property 3: the swap landed; the operator serves the target format bit
	// for bit from here on.
	if f := op.Format(); f != target {
		return fmt.Errorf("oracle: %s: convert-swap at %d threads: post-swap operator serves %v", name, th, f)
	}
	yPost := runNaN(func(y []T) { op.MulVec(x, y) }, rows)
	if r, bad := bitMismatch(yTgt, yPost); bad {
		return fmt.Errorf("oracle: %s: convert-swap at %d threads: post-swap y[%d] = %g, target answer %g",
			name, th, r, float64(yPost[r]), float64(yTgt[r]))
	}
	for _, k := range swapBatchWidths {
		k := k
		xb := replicateColumns(x, k)
		yb := runNaN(func(yb []T) { op.MulVecBatch(xb, yb, k) }, rows*k)
		if r, bad := bitMismatch(ybTgt[k], yb); bad {
			return fmt.Errorf("oracle: %s: convert-swap at %d threads: post-swap batch k=%d yb[%d] = %g, target answer %g",
				name, th, k, r, float64(yb[r]), float64(ybTgt[k][r]))
		}
	}
	return nil
}

// replicateColumns interleaves k identical copies of v into the batched
// layout: out[c*k+j] = v[c]. With identical columns, every batch column of a
// loop-path product must be bit-for-bit the single-vector answer.
func replicateColumns[T matrix.Float](v []T, k int) []T {
	out := make([]T, len(v)*k)
	for c, val := range v {
		for j := 0; j < k; j++ {
			out[c*k+j] = val
		}
	}
	return out
}

// matchEither reports whether got is bit-for-bit equal to a or to b; on
// failure it returns an index where got differs from b (for the error
// message).
func matchEither[T matrix.Float](got, a, b []T) (int, bool) {
	if _, bad := bitMismatch(a, got); !bad {
		return -1, true
	}
	r, bad := bitMismatch(b, got)
	if !bad {
		return -1, true
	}
	return r, false
}

// swapRefCheck verifies one strided result vector (element r at y[r*stride+
// off]) against the float64 reference within the per-row rounding bound.
func swapRefCheck[T matrix.Float](ref *matrix.CSR[T], y []T, stride, off int, want, absSum []float64, eps float64, what string) error {
	for r := range want {
		got := float64(y[r*stride+off])
		if math.IsNaN(got) {
			return fmt.Errorf("oracle: %s: y[%d] unwritten (NaN sentinel survived)", what, r)
		}
		deg := ref.RowDegree(r)
		if diff := math.Abs(got - want[r]); diff > rowTolerance(eps, deg, absSum[r], want[r]) {
			return fmt.Errorf("oracle: %s: y[%d] = %g, reference %g (|diff| %g, deg %d)",
				what, r, got, want[r], diff, deg)
		}
	}
	return nil
}

// swapBatchRefCheck verifies every column of an interleaved batch result
// against the float64 reference (all columns share the same input vector).
func swapBatchRefCheck[T matrix.Float](ref *matrix.CSR[T], yb []T, k int, want, absSum []float64, eps float64, what string) error {
	for j := 0; j < k; j++ {
		if err := swapRefCheck(ref, yb, k, j, want, absSum, eps, fmt.Sprintf("%s col %d", what, j)); err != nil {
			return err
		}
	}
	return nil
}
