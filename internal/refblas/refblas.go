// Package refblas is the comparison baseline standing in for the Intel MKL
// sparse library in the paper's Figure 10: a competent, fixed-format sparse
// BLAS with one entry point per storage format (mirroring MKL's
// mkl_xcsrgemv / mkl_xcoogemv / mkl_xdiagemv family) and no input-adaptive
// tuning. Each entry point uses a straightforward parallel kernel — the
// point of the comparison is adaptivity, not kernel quality.
package refblas

import (
	"runtime"

	"smat/internal/kernels"
	"smat/internal/matrix"
)

// Lib is a fixed-format reference library instance for one element type.
type Lib[T matrix.Float] struct {
	lib     *kernels.Library[T]
	threads int
}

// New builds the reference library. threads ≤ 0 selects GOMAXPROCS.
func New[T matrix.Float](threads int) *Lib[T] {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &Lib[T]{lib: kernels.NewLibrary[T](), threads: threads}
}

// CSRGeMV computes y = A·x on a CSR matrix (mkl_xcsrgemv analogue).
func (l *Lib[T]) CSRGeMV(m *matrix.CSR[T], x, y []T) {
	mat := &kernels.Mat[T]{Format: matrix.FormatCSR, CSR: m}
	l.lib.Lookup("csr_parallel").Run(mat, x, y, l.threads)
}

// COOGeMV computes y = A·x on a COO matrix (mkl_xcoogemv analogue).
func (l *Lib[T]) COOGeMV(m *matrix.COO[T], x, y []T) {
	mat := &kernels.Mat[T]{Format: matrix.FormatCOO, COO: m}
	l.lib.Lookup("coo_parallel").Run(mat, x, y, l.threads)
}

// DIAGeMV computes y = A·x on a DIA matrix (mkl_xdiagemv analogue).
func (l *Lib[T]) DIAGeMV(m *matrix.DIA[T], x, y []T) {
	mat := &kernels.Mat[T]{Format: matrix.FormatDIA, DIA: m}
	l.lib.Lookup("dia_parallel").Run(mat, x, y, l.threads)
}

// ELLGeMV computes y = A·x on an ELL matrix.
func (l *Lib[T]) ELLGeMV(m *matrix.ELL[T], x, y []T) {
	mat := &kernels.Mat[T]{Format: matrix.FormatELL, ELL: m}
	l.lib.Lookup("ell_parallel").Run(mat, x, y, l.threads)
}

// BestFixedFormat measures the library's per-format entry points on a matrix
// the way the paper reports "MKL performance ... the maximum performance
// number of DIA, CSR, and COO SpMV functions": the caller (who, unlike SMAT,
// must know their matrix) would pick the best fixed format by hand. It
// returns GFLOPS per feasible format and the best format. measure is a
// seconds-per-op measurement callback so the caller controls timing policy.
func (l *Lib[T]) BestFixedFormat(m *matrix.CSR[T], maxFill float64,
	measure func(op func()) float64) (best matrix.Format, gflops map[matrix.Format]float64) {
	x := make([]T, m.Cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]T, m.Rows)
	flops := float64(kernels.FLOPs(m.NNZ()))
	gflops = map[matrix.Format]float64{}
	bestG := -1.0
	best = matrix.FormatCSR
	for _, f := range []matrix.Format{matrix.FormatCSR, matrix.FormatCOO, matrix.FormatDIA} {
		mat, err := kernels.Convert(m, f, maxFill)
		if err != nil {
			continue
		}
		var run func()
		switch f {
		case matrix.FormatCSR:
			run = func() { l.CSRGeMV(mat.CSR, x, y) }
		case matrix.FormatCOO:
			run = func() { l.COOGeMV(mat.COO, x, y) }
		case matrix.FormatDIA:
			run = func() { l.DIAGeMV(mat.DIA, x, y) }
		}
		sec := measure(run)
		if sec <= 0 {
			continue
		}
		g := flops / sec / 1e9
		gflops[f] = g
		if g > bestG {
			bestG, best = g, f
		}
	}
	return best, gflops
}
