package refblas

import (
	"math/rand"
	"testing"
	"time"

	"smat/internal/gen"
	"smat/internal/matrix"
)

func TestEntryPointsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := gen.RandomUniform[float64](200, 150, 6, rng)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, m.Rows)
	m.ToDense().MulVec(x, want)
	lib := New[float64](2)

	y := make([]float64, m.Rows)
	lib.CSRGeMV(m, x, y)
	if !matrix.VecApproxEqual(y, want, 1e-9) {
		t.Error("CSRGeMV wrong")
	}
	lib.COOGeMV(m.ToCOO(), x, y)
	if !matrix.VecApproxEqual(y, want, 1e-9) {
		t.Error("COOGeMV wrong")
	}
	d, err := m.ToDIA(0)
	if err != nil {
		t.Fatal(err)
	}
	lib.DIAGeMV(d, x, y)
	if !matrix.VecApproxEqual(y, want, 1e-9) {
		t.Error("DIAGeMV wrong")
	}
	e, err := m.ToELL(0)
	if err != nil {
		t.Fatal(err)
	}
	lib.ELLGeMV(e, x, y)
	if !matrix.VecApproxEqual(y, want, 1e-9) {
		t.Error("ELLGeMV wrong")
	}
}

func TestBestFixedFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := gen.MultiDiagonal[float64](1500, []int{-1, 0, 1}, rng)
	lib := New[float64](2)
	measure := func(op func()) float64 {
		op() // warm up
		start := time.Now()
		for i := 0; i < 3; i++ {
			op()
		}
		return time.Since(start).Seconds() / 3
	}
	best, gflops := lib.BestFixedFormat(m, 20, measure)
	if len(gflops) != 3 {
		t.Fatalf("measured %d formats, want 3 (CSR, COO, DIA)", len(gflops))
	}
	if gflops[best] < gflops[matrix.FormatCSR] || gflops[best] < gflops[matrix.FormatCOO] {
		t.Error("best format is not the max")
	}
}

func TestBestFixedFormatSkipsInfeasibleDIA(t *testing.T) {
	n := 800
	var ts []matrix.Triple[float64]
	for i := 0; i < n; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: i, Col: n - 1 - i, Val: 1})
		ts = append(ts, matrix.Triple[float64]{Row: i, Col: i, Val: 1})
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	lib := New[float64](2)
	measure := func(op func()) float64 {
		start := time.Now()
		op()
		return time.Since(start).Seconds()
	}
	_, gflops := lib.BestFixedFormat(m, 10, measure)
	if _, ok := gflops[matrix.FormatDIA]; ok {
		t.Error("DIA measured despite fill explosion")
	}
}
