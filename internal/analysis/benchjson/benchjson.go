// Package benchjson implements the smat-lint analyzer keeping the smat-bench
// experiment table total: every experiment the -experiment flag accepts must
// declare exactly one machine-readable BENCH_<name>.json artifact.
//
// The analyzer activates on any package declaring a top-level function named
// experimentTable. Within every composite literal that function builds whose
// struct type has name/artifact fields, it checks:
//
//   - the name is a unique, non-empty string literal (the bench driver and
//     the CI artifact matrix are keyed by it);
//   - the artifact is exactly "BENCH_" + name + ".json" — one derivable
//     schema file per experiment, no drift between flag names and artifacts;
//   - a run function is present.
//
// It then scans the rest of the package for stray BENCH_*.json string
// literals: any such literal that is not one of the declared artifacts
// means an experiment writer bypassed the table (or a name was renamed
// without its artifact).
package benchjson

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"smat/internal/analysis/framework"
)

// Analyzer is the benchjson analyzer.
var Analyzer = &framework.Analyzer{
	Name: "benchjson",
	Doc:  "keep smat-bench's experiment table total: unique names, one BENCH_<name>.json artifact each, no stray artifact literals",
	Run:  run,
}

var benchArtifactRE = regexp.MustCompile(`^BENCH_[^/\\]*\.json$`)

func run(pass *framework.Pass) error {
	var table *ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "experimentTable" {
				table = fd
			}
		}
	}
	if table == nil || table.Body == nil {
		return nil // not the bench driver package
	}

	artifacts := collectTable(pass, table)

	// Stray artifact literals outside the table.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd == table {
				return false
			}
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind.String() != "STRING" {
				return true
			}
			s := strings.Trim(lit.Value, `"`)
			if benchArtifactRE.MatchString(s) && !artifacts[s] {
				pass.Reportf(lit.Pos(), "artifact literal %q is not declared by any experimentTable entry; route it through the table", s)
			}
			return true
		})
	}
	return nil
}

// collectTable validates the experiment entries and returns the set of
// declared artifact names.
func collectTable(pass *framework.Pass, table *ast.FuncDecl) map[string]bool {
	artifacts := map[string]bool{}
	names := map[string]bool{}

	ast.Inspect(table.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !isExperimentLit(pass, lit) {
			return true
		}
		var name string
		var nameOK, haveArtifact, haveRun bool
		var artifactExpr ast.Expr
		var artifact string
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "name":
				if b, ok := kv.Value.(*ast.BasicLit); ok {
					name = strings.Trim(b.Value, `"`)
					nameOK = name != ""
				}
				if !nameOK {
					pass.Reportf(kv.Value.Pos(), "experiment name must be a non-empty string literal")
				}
			case "artifact":
				haveArtifact = true
				artifactExpr = kv.Value
				if b, ok := kv.Value.(*ast.BasicLit); ok {
					artifact = strings.Trim(b.Value, `"`)
				}
			case "run":
				haveRun = true
			}
		}
		if nameOK {
			if names[name] {
				pass.Reportf(lit.Pos(), "duplicate experiment name %q", name)
			}
			names[name] = true
			want := "BENCH_" + name + ".json"
			switch {
			case !haveArtifact:
				pass.Reportf(lit.Pos(), "experiment %q declares no artifact; want %q", name, want)
			case artifact != want:
				pass.Reportf(artifactExpr.Pos(), "experiment %q artifact is %q; want %q", name, artifact, want)
			default:
				artifacts[artifact] = true
			}
		}
		if !haveRun {
			pass.Reportf(lit.Pos(), "experiment %q has no run function", name)
		}
		return false
	})
	return artifacts
}

// isExperimentLit reports whether the composite literal builds a struct with
// name and artifact fields (the experiment row type).
func isExperimentLit(pass *framework.Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return false
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var hasName, hasArtifact bool
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "name":
			hasName = true
		case "artifact":
			hasArtifact = true
		}
	}
	return hasName && hasArtifact
}
