// Package benchjson implements the smat-lint analyzer keeping the smat-bench
// experiment table total: every experiment the -experiment flag accepts must
// declare exactly one machine-readable BENCH_<name>.json artifact.
//
// The analyzer activates on any package declaring a top-level function named
// experimentTable. Within every composite literal that function builds whose
// struct type has name/artifact fields, it checks:
//
//   - the name is a unique, non-empty string literal (the bench driver and
//     the CI artifact matrix are keyed by it);
//   - the artifact is exactly "BENCH_" + name + ".json" — one derivable
//     schema file per experiment, no drift between flag names and artifacts;
//   - a run function is present.
//
// It then scans the rest of the package for stray BENCH_*.json string
// literals: any such literal that is not one of the declared artifacts
// means an experiment writer bypassed the table (or a name was renamed
// without its artifact).
//
// Finally it validates the committed artifacts themselves: every
// BENCH_*.json at the module root must be declared by the table and carry
// the full envelope smat-bench writes — the experiment name (matching the
// file), a non-empty git provenance string, and a data payload with at
// least one case row carrying a numeric timing/throughput field. A
// hand-edited or truncated artifact fails the lint run instead of silently
// shipping an unreproducible number.
package benchjson

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"smat/internal/analysis/framework"
)

// Analyzer is the benchjson analyzer.
var Analyzer = &framework.Analyzer{
	Name: "benchjson",
	Doc:  "keep smat-bench's experiment table total: unique names, one BENCH_<name>.json artifact each, no stray artifact literals",
	Run:  run,
}

var benchArtifactRE = regexp.MustCompile(`^BENCH_[^/\\]*\.json$`)

func run(pass *framework.Pass) error {
	var table *ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "experimentTable" {
				table = fd
			}
		}
	}
	if table == nil || table.Body == nil {
		return nil // not the bench driver package
	}

	artifacts := collectTable(pass, table)
	checkCommittedArtifacts(pass, table, artifacts)

	// Stray artifact literals outside the table.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd == table {
				return false
			}
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind.String() != "STRING" {
				return true
			}
			s := strings.Trim(lit.Value, `"`)
			if benchArtifactRE.MatchString(s) && !artifacts[s] {
				pass.Reportf(lit.Pos(), "artifact literal %q is not declared by any experimentTable entry; route it through the table", s)
			}
			return true
		})
	}
	return nil
}

// collectTable validates the experiment entries and returns the set of
// declared artifact names.
func collectTable(pass *framework.Pass, table *ast.FuncDecl) map[string]bool {
	artifacts := map[string]bool{}
	names := map[string]bool{}

	ast.Inspect(table.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !isExperimentLit(pass, lit) {
			return true
		}
		var name string
		var nameOK, haveArtifact, haveRun bool
		var artifactExpr ast.Expr
		var artifact string
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			switch key.Name {
			case "name":
				if b, ok := kv.Value.(*ast.BasicLit); ok {
					name = strings.Trim(b.Value, `"`)
					nameOK = name != ""
				}
				if !nameOK {
					pass.Reportf(kv.Value.Pos(), "experiment name must be a non-empty string literal")
				}
			case "artifact":
				haveArtifact = true
				artifactExpr = kv.Value
				if b, ok := kv.Value.(*ast.BasicLit); ok {
					artifact = strings.Trim(b.Value, `"`)
				}
			case "run":
				haveRun = true
			}
		}
		if nameOK {
			if names[name] {
				pass.Reportf(lit.Pos(), "duplicate experiment name %q", name)
			}
			names[name] = true
			want := "BENCH_" + name + ".json"
			switch {
			case !haveArtifact:
				pass.Reportf(lit.Pos(), "experiment %q declares no artifact; want %q", name, want)
			case artifact != want:
				pass.Reportf(artifactExpr.Pos(), "experiment %q artifact is %q; want %q", name, artifact, want)
			default:
				artifacts[artifact] = true
			}
		}
		if !haveRun {
			pass.Reportf(lit.Pos(), "experiment %q has no run function", name)
		}
		return false
	})
	return artifacts
}

// checkCommittedArtifacts validates every BENCH_*.json at the module root of
// the bench driver package: each must be declared by the experiment table
// and parse as a complete smat-bench envelope. Problems are reported at the
// experiment table, the one position the drift is fixed from.
func checkCommittedArtifacts(pass *framework.Pass, table *ast.FuncDecl, artifacts map[string]bool) {
	if pass.Pkg.Name() != "main" {
		return // a fixture table, not the bench driver
	}
	root := moduleRoot(filepath.Dir(pass.Fset.Position(table.Pos()).Filename))
	if root == "" {
		return
	}
	paths, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil {
		return
	}
	sort.Strings(paths)
	for _, path := range paths {
		base := filepath.Base(path)
		if !artifacts[base] {
			pass.Reportf(table.Pos(), "committed artifact %s is not declared by any experimentTable entry", base)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			pass.Reportf(table.Pos(), "committed artifact %s: %v", base, err)
			continue
		}
		for _, problem := range ValidateArtifact(data, base) {
			pass.Reportf(table.Pos(), "committed artifact %s: %s", base, problem)
		}
	}
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// timingKeyRE matches the numeric fields that make a case row a
// measurement: wall-clock seconds, derived throughput, or a ratio of the
// two.
var timingKeyRE = regexp.MustCompile(`(?i)sec|flops|speedup`)

// ValidateArtifact checks one BENCH_*.json payload against the envelope
// smat-bench writes and returns a description of every violated
// requirement (empty means valid). filename anchors the experiment-name
// cross-check.
func ValidateArtifact(data []byte, filename string) []string {
	var problems []string
	var env struct {
		Experiment string          `json:"experiment"`
		Git        string          `json:"git"`
		Data       json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return []string{fmt.Sprintf("not a JSON envelope: %v", err)}
	}
	if env.Experiment == "" {
		problems = append(problems, `missing required field "experiment"`)
	} else if want := "BENCH_" + env.Experiment + ".json"; want != filename {
		problems = append(problems, fmt.Sprintf("experiment %q does not match the file name (want %s)", env.Experiment, want))
	}
	if env.Git == "" {
		problems = append(problems, `missing required field "git" (the git describe provenance of the run)`)
	}
	if len(env.Data) == 0 || string(env.Data) == "null" {
		problems = append(problems, `missing required field "data"`)
		return problems
	}
	var payload map[string]json.RawMessage
	if err := json.Unmarshal(env.Data, &payload); err != nil {
		problems = append(problems, fmt.Sprintf(`"data" is not a JSON object: %v`, err))
		return problems
	}
	rows, ok := caseRows(payload)
	switch {
	case !ok:
		problems = append(problems, `"data" has no case array ("rows")`)
	case len(rows) == 0:
		problems = append(problems, "case array is empty: the artifact records no measurements")
	default:
		for i, row := range rows {
			if !hasTimingField(row) {
				problems = append(problems, fmt.Sprintf("case row %d has no per-case timing field (sec/flops/speedup)", i))
				break
			}
		}
	}
	return problems
}

// caseRows pulls the per-case array out of a payload ("rows" under any
// casing).
func caseRows(payload map[string]json.RawMessage) ([]map[string]json.RawMessage, bool) {
	for key, raw := range payload {
		if !strings.EqualFold(key, "rows") {
			continue
		}
		var rows []map[string]json.RawMessage
		if err := json.Unmarshal(raw, &rows); err != nil {
			return nil, false
		}
		return rows, true
	}
	return nil, false
}

// hasTimingField reports whether one case row carries a numeric measurement
// field.
func hasTimingField(row map[string]json.RawMessage) bool {
	for key, raw := range row {
		if !timingKeyRE.MatchString(key) {
			continue
		}
		var f float64
		if err := json.Unmarshal(raw, &f); err == nil {
			return true
		}
	}
	return false
}

// isExperimentLit reports whether the composite literal builds a struct with
// name and artifact fields (the experiment row type).
func isExperimentLit(pass *framework.Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return false
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	var hasName, hasArtifact bool
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "name":
			hasName = true
		case "artifact":
			hasArtifact = true
		}
	}
	return hasName && hasArtifact
}
