package benchjson

import (
	"testing"

	"smat/internal/analysis/framework/analysistest"
)

func TestBenchJSON(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/bj")
}
