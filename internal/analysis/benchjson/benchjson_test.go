package benchjson

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"smat/internal/analysis/framework/analysistest"
)

func TestBenchJSON(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/bj")
}

// TestValidateArtifact covers the committed-artifact envelope contract: one
// valid envelope and every seeded way an artifact can be broken.
func TestValidateArtifact(t *testing.T) {
	valid := `{
		"experiment": "steady",
		"git": "abc1234",
		"data": {"threads": 8, "rows": [{"workload": "x", "pooled_sec_per_op": 1e-4}]}
	}`
	cases := []struct {
		name     string
		filename string
		payload  string
		wantSub  string // "" means valid
	}{
		{"valid", "BENCH_steady.json", valid, ""},
		{"malformed JSON", "BENCH_steady.json", `{"experiment": "steady",`, "not a JSON envelope"},
		{"missing experiment", "BENCH_steady.json", `{"git": "abc", "data": {"rows": [{"sec": 1}]}}`, `missing required field "experiment"`},
		{"name/file mismatch", "BENCH_steady.json", `{"experiment": "batch", "git": "abc", "data": {"rows": [{"sec": 1}]}}`, "does not match the file name"},
		{"missing git", "BENCH_steady.json", `{"experiment": "steady", "data": {"rows": [{"sec": 1}]}}`, `missing required field "git"`},
		{"missing data", "BENCH_steady.json", `{"experiment": "steady", "git": "abc"}`, `missing required field "data"`},
		{"null data", "BENCH_steady.json", `{"experiment": "steady", "git": "abc", "data": null}`, `missing required field "data"`},
		{"no case array", "BENCH_steady.json", `{"experiment": "steady", "git": "abc", "data": {"threads": 8}}`, "no case array"},
		{"empty case array", "BENCH_steady.json", `{"experiment": "steady", "git": "abc", "data": {"rows": []}}`, "records no measurements"},
		{"row without timings", "BENCH_steady.json", `{"experiment": "steady", "git": "abc", "data": {"rows": [{"workload": "x"}]}}`, "no per-case timing field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := ValidateArtifact([]byte(tc.payload), tc.filename)
			if tc.wantSub == "" {
				if len(problems) != 0 {
					t.Fatalf("valid artifact reported: %v", problems)
				}
				return
			}
			for _, p := range problems {
				if strings.Contains(p, tc.wantSub) {
					return
				}
			}
			t.Fatalf("no problem containing %q; got %v", tc.wantSub, problems)
		})
	}
}

// TestCommittedArtifactsValid parses the repository's own committed
// artifacts through the same validator the analyzer applies.
func TestCommittedArtifactsValid(t *testing.T) {
	root := moduleRoot(".")
	if root == "" {
		t.Fatal("no module root above the test directory")
	}
	paths, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no committed artifacts")
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ValidateArtifact(data, filepath.Base(path)) {
			t.Errorf("%s: %s", filepath.Base(path), p)
		}
	}
}
