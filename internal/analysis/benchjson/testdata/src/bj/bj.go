// Package bj is the benchjson analyzer fixture: a miniature smat-bench
// experiment table with artifact-contract violations.
package bj

type config struct{ scale float64 }

type experiment struct {
	name     string
	artifact string
	run      func(cfg config) (any, error)
}

func runTable1(cfg config) (any, error)  { return nil, nil }
func runFigure3(cfg config) (any, error) { return nil, nil }

func experimentTable() []experiment {
	return []experiment{
		{name: "table1", artifact: "BENCH_table1.json", run: runTable1},
		{name: "figure3", artifact: "BENCH_fig3.json", run: runFigure3}, // want `artifact is "BENCH_fig3.json"; want "BENCH_figure3.json"`
		{name: "table1", artifact: "BENCH_table1.json", run: runTable1}, // want `duplicate experiment name "table1"`
		{name: "cache", run: runTable1},                                 // want `declares no artifact`
		{name: "steady", artifact: "BENCH_steady.json"},                 // want `has no run function`
		{name: "", artifact: "BENCH_.json", run: runTable1},             // want `non-empty string literal`
	}
}

// writeSteady writes the artifact declared by the table: fine.
func writeSteady() string { return "BENCH_steady.json" }

// writeStray bypasses the table.
func writeStray() string {
	return "BENCH_orphan.json" // want `not declared by any experimentTable entry`
}

// notAnArtifact is an unrelated literal: ignored.
func notAnArtifact() string { return "model.json" }
