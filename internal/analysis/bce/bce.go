// Package bce implements smat-lint's bounds-check-elimination regression
// gate.
//
// The parameterized kernel templates earn their measured wins partly by
// keeping the inner loops free of bounds checks: the unrolled bodies are
// written so the compiler can prove every index in range (slicing to the
// chunk, `_ = s[n-1]` pin patterns, len-bounded loops). A harmless-looking
// refactor — reordering a slice header load, hoisting an index computation,
// widening an induction variable — can silently resurrect an IsInBounds
// branch per element and eat the 1.19–3× speedups the bench artifacts
// record. The compiler will tell us, but only if asked: this gate runs
// `go build -gcflags=-d=ssa/check_bce/debug=1`, keeps the "Found
// IsInBounds" / "Found IsSliceInBounds" diagnostics landing inside
// //smat:hotpath bodies (and hotpath-factory closures), and diffs them
// against a checked-in baseline. A new entry fails CI; intentional changes
// re-baseline with `smat-lint -update-bce`.
//
// Entries are keyed "file:function: Found IsInBounds xN" where N counts
// distinct source positions (after go.shape collapsing) inside the body, so
// the baseline is insensitive to line renumbering but sensitive to a check
// appearing at a new position. The compile is shared with the escapes gate
// (both request compilediag.EscapesAndBCEFlags), so the two gates cost one
// compiler pass between them.
package bce

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"smat/internal/analysis/compilediag"
)

// Config parameterises the gate; the zero value gates this module.
type Config struct {
	// ModuleDir is the module root the build runs in ("." by default).
	ModuleDir string
	// Patterns are the build patterns (default ./...).
	Patterns []string
	// GcflagsScope is the package pattern receiving the diagnostic flags
	// (default smat/...).
	GcflagsScope string
	// HotDirs are module-relative directories whose annotated functions are
	// gated (default internal/kernels, internal/autotune).
	HotDirs []string
	// BaselinePath is the baseline file, module-relative
	// (default internal/analysis/bce/baseline.txt).
	BaselinePath string
}

func (c Config) withDefaults() Config {
	if c.ModuleDir == "" {
		c.ModuleDir = "."
	}
	if len(c.Patterns) == 0 {
		c.Patterns = []string{"./..."}
	}
	if c.GcflagsScope == "" {
		c.GcflagsScope = "smat/..."
	}
	if len(c.HotDirs) == 0 {
		c.HotDirs = []string{"internal/kernels", "internal/autotune"}
	}
	if c.BaselinePath == "" {
		c.BaselinePath = "internal/analysis/bce/baseline.txt"
	}
	return c
}

// boundsCheckKinds are the check_bce diagnostic messages, in report order.
var boundsCheckKinds = []string{"Found IsInBounds", "Found IsSliceInBounds"}

// Current compiles the module with the shared escapes+bce flag set and
// returns the sorted baseline entries: one per (hot function, check kind)
// with the count of distinct check positions.
func Current(cfg Config) ([]string, error) {
	cfg = cfg.withDefaults()
	spans, err := compilediag.Funcs(cfg.ModuleDir, cfg.HotDirs)
	if err != nil {
		return nil, err
	}
	hot := compilediag.HotSpans(spans)
	out, err := compilediag.Build(cfg.ModuleDir, cfg.GcflagsScope, compilediag.EscapesAndBCEFlags, cfg.Patterns...)
	if err != nil {
		return nil, err
	}
	return matchEntries(hot, out), nil
}

// matchEntries attributes bounds-check diagnostics to hot bodies and folds
// them into "file:function: kind xN" entries, N counting distinct positions.
// Generic instantiations replay the same positions per shape; the position
// set dedupes them.
func matchEntries(hot []compilediag.FuncSpan, buildOutput string) []string {
	// positions[file:name][kind] = set of "line:col"
	positions := map[string]map[string]map[string]bool{}
	for _, d := range compilediag.Parse(buildOutput) {
		kind := ""
		for _, k := range boundsCheckKinds {
			if d.Msg == k {
				kind = k
				break
			}
		}
		if kind == "" {
			continue
		}
		span, ok := compilediag.Attribute(hot, d)
		if !ok {
			continue
		}
		key := span.File + ":" + span.Name
		if positions[key] == nil {
			positions[key] = map[string]map[string]bool{}
		}
		if positions[key][kind] == nil {
			positions[key][kind] = map[string]bool{}
		}
		positions[key][kind][fmt.Sprintf("%d:%d", d.Line, d.Col)] = true
	}
	var entries []string
	for key, kinds := range positions {
		for kind, posSet := range kinds {
			entries = append(entries, fmt.Sprintf("%s: %s x%d", key, kind, len(posSet)))
		}
	}
	sort.Strings(entries)
	return entries
}

// Check returns entries new against the baseline (regressions) and stale
// baseline entries no longer produced (safe cleanups).
func Check(cfg Config) (fresh, stale []string, err error) {
	cfg = cfg.withDefaults()
	current, err := Current(cfg)
	if err != nil {
		return nil, nil, err
	}
	baseline, err := compilediag.ReadBaseline(filepath.Join(cfg.ModuleDir, cfg.BaselinePath))
	if err != nil {
		return nil, nil, err
	}
	fresh, stale = compilediag.Diff(current, baseline)
	return fresh, stale, nil
}

// Update rewrites the baseline with the current entry set.
func Update(cfg Config) ([]string, error) {
	cfg = cfg.withDefaults()
	current, err := Current(cfg)
	if err != nil {
		return nil, err
	}
	header := []string{
		"smat-lint bounds-check-elimination baseline: surviving bounds checks",
		"inside //smat:hotpath bodies, counted as distinct positions per",
		"function. Regenerate with smat-lint -update-bce; a residual check in",
		"an unroll kernel needs a tracking comment here explaining why BCE",
		"cannot prove it away yet.",
	}
	path := filepath.Join(cfg.ModuleDir, cfg.BaselinePath)
	if err := compilediag.WriteBaseline(path, header, current); err != nil {
		return nil, err
	}
	return current, nil
}

// Describe renders a fresh-entry failure for the driver.
func Describe(fresh []string) string {
	return fmt.Sprintf("new bounds checks in hot paths (run `go build -gcflags=all=-d=ssa/check_bce/debug=1` to locate, or accept with -update-bce):\n  %s",
		strings.Join(fresh, "\n  "))
}
