package bce

import (
	"strings"
	"testing"

	"smat/internal/analysis/compilediag"
)

// fixtureCfg points the gate at the standalone mini-module under testdata.
func fixtureCfg() Config {
	return Config{
		ModuleDir:    "testdata/module",
		GcflagsScope: "bcefix/...",
		HotDirs:      []string{"."},
		BaselinePath: "baseline.txt",
	}
}

// TestFixtureSeededViolations compiles the fixture module for real and
// asserts every seeded bounds-check survives into the entry set — and that
// clean/cold functions stay out of it.
func TestFixtureSeededViolations(t *testing.T) {
	entries, err := Current(fixtureCfg())
	if err != nil {
		t.Fatal(err)
	}
	byFunc := map[string]bool{}
	for _, e := range entries {
		// entry: "hot.go:<func>: Found <kind> xN"
		parts := strings.SplitN(e, ":", 3)
		if len(parts) == 3 {
			byFunc[parts[1]] = true
		}
	}
	for _, want := range []string{
		"gather",             // data-dependent gather
		"offsetIndex",        // offset vs unrelated bound
		"crossSlice",         // cross-slice index
		"subSlice",           // IsSliceInBounds
		"makeRowKernel.func", // factory closure attribution
		"rowPtrWalk",         // rowPtr pair fetch + loaded bound
	} {
		if !byFunc[want] {
			t.Errorf("seeded violation in %s not reported; entries:\n  %s", want, strings.Join(entries, "\n  "))
		}
	}
	for _, bad := range []string{"clean", "coldGather"} {
		if byFunc[bad] {
			t.Errorf("%s must not appear in the entry set; entries:\n  %s", bad, strings.Join(entries, "\n  "))
		}
	}
	// The slice reslice must be reported as IsSliceInBounds specifically.
	var sawSliceKind bool
	for _, e := range entries {
		if strings.Contains(e, "subSlice: Found IsSliceInBounds") {
			sawSliceKind = true
		}
	}
	if !sawSliceKind {
		t.Errorf("subSlice should report Found IsSliceInBounds; entries:\n  %s", strings.Join(entries, "\n  "))
	}
}

// TestCheckDetectsRegression diffs the live fixture entries against a
// baseline that omits them: every seeded entry must surface as fresh, and a
// fabricated baseline entry must surface as stale.
func TestCheckDetectsRegression(t *testing.T) {
	cfg := fixtureCfg()
	current, err := Current(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(current) < 5 {
		t.Fatalf("fixture seeds %d entries, want >= 5:\n  %s", len(current), strings.Join(current, "\n  "))
	}
	baseline := append([]string{"hot.go:ghost: Found IsInBounds x1"}, current[:2]...)
	fresh, stale := compilediag.Diff(current, baseline)
	if len(fresh) != len(current)-2 {
		t.Errorf("fresh = %d entries, want %d", len(fresh), len(current)-2)
	}
	if len(stale) != 1 || stale[0] != "hot.go:ghost: Found IsInBounds x1" {
		t.Errorf("stale = %q, want the ghost entry", stale)
	}
}

func TestMatchEntriesCountsDistinctPositions(t *testing.T) {
	hot := []compilediag.FuncSpan{
		{File: "k.go", Start: 10, End: 20, Name: "kern", Directives: map[string]bool{"smat:hotpath": true}},
	}
	out := strings.Join([]string{
		"# pkg",
		"k.go:12:7: Found IsInBounds",
		"k.go:12:7: Found IsInBounds", // generic re-instantiation: same position
		"k.go:13:9: Found IsInBounds",
		"k.go:15:3: Found IsSliceInBounds",
		"k.go:25:3: Found IsInBounds",     // outside the span
		"k.go:14:1: escapes to heap",      // not a bounds check
		"other.go:12:7: Found IsInBounds", // other file
	}, "\n")
	entries := matchEntries(hot, out)
	want := []string{
		"k.go:kern: Found IsInBounds x2",
		"k.go:kern: Found IsSliceInBounds x1",
	}
	if len(entries) != len(want) || entries[0] != want[0] || entries[1] != want[1] {
		t.Errorf("entries = %q, want %q", entries, want)
	}
}

// TestGateAgainstBaseline is the real gate: the module must produce no
// bounds checks in hot bodies beyond the committed baseline.
func TestGateAgainstBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module")
	}
	fresh, stale, err := Check(Config{ModuleDir: "../../.."})
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) > 0 {
		t.Errorf("new bounds checks in hot paths, missing from baseline: %q", fresh)
	}
	if len(stale) > 0 {
		t.Logf("stale baseline entries (not a failure): %q", stale)
	}
}
