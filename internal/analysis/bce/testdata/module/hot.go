// Package bcefix is the bce gate's fixture: a standalone mini-module whose
// annotated functions seed bounds checks the compiler provably cannot
// eliminate, plus clean and cold controls. The gate test compiles this
// module for real and asserts the exact entry set, so the fixture doubles
// as a regression test for check_bce output parsing.
package bcefix

// gather keeps one inherent data-dependent check: idx values are unbounded,
// so x[idx[i]] must be checked (1 IsInBounds for the gather, 1 for idx[i]
// is eliminated by the range loop).
//
//smat:hotpath
func gather(x []float64, idx []int) float64 {
	var s float64
	for _, j := range idx {
		s += x[j] // seeded violation 1: data-dependent gather
	}
	return s
}

// offsetIndex indexes past a loop bound through an offset the compiler
// cannot relate to len(s).
//
//smat:hotpath
func offsetIndex(s []float64, off, n int) float64 {
	var t float64
	for i := 0; i < n; i++ {
		t += s[i+off] // seeded violation 2: offset index vs unrelated bound
	}
	return t
}

// crossSlice drives b's index from a's length.
//
//smat:hotpath
func crossSlice(a, b []float64) float64 {
	var t float64
	for i := range a {
		t += a[i] * b[i] // seeded violation 3: b indexed by len(a)-bounded i
	}
	return t
}

// subSlice reslices with caller-controlled bounds.
//
//smat:hotpath
func subSlice(s []float64, lo, hi int) []float64 {
	return s[lo:hi] // seeded violation 4: IsSliceInBounds
}

// makeRowKernel returns the closure actually dispatched; the check inside it
// must be attributed to "makeRowKernel.func".
//
//smat:hotpath-factory
func makeRowKernel(stride int) func([]float64, int) float64 {
	return func(x []float64, row int) float64 {
		return x[row*stride] // seeded violation 5: computed index in factory closure
	}
}

// rowPtrWalk mimics the CSR rowPtr[i], rowPtr[i+1] pair fetch.
//
//smat:hotpath
func rowPtrWalk(rowPtr []int, vals []float64, rows int) float64 {
	var t float64
	for i := 0; i < rows; i++ {
		start, end := rowPtr[i], rowPtr[i+1] // seeded violation 6: i+1 vs unproven len
		for j := start; j < end; j++ {
			t += vals[j] // seeded violation 7: loaded loop bound
		}
	}
	return t
}

// clean is annotated but fully provable: a range loop over one slice keeps
// no checks, so it must NOT appear in the entry set.
//
//smat:hotpath
func clean(s []float64) float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

// coldGather carries the same checks as gather but no annotation: the gate
// must ignore it.
func coldGather(x []float64, idx []int) float64 {
	var s float64
	for _, j := range idx {
		s += x[j]
	}
	return s
}
