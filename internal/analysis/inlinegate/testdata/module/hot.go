// Package inlfix is the inlinegate fixture: a standalone mini-module whose
// functions and policy file seed one violation of every kind the gate
// reports, plus healthy entries that must stay quiet.
package inlfix

// small is inlinable; the policy under-records its cost with zero slack →
// cost-exceeded.
func small(a, b int) int {
	return a*b + a - b
}

// big is recursive, which the inliner refuses outright; the policy demands
// inline → lost-inline.
func big(n int) int {
	if n <= 0 {
		return 0
	}
	return n + big(n-1)
}

// leaky is trivially inlinable but the policy demands noinline (as if a
// go:noinline pragma was deleted) → noinline-violated.
func leaky(msg string) string {
	return "fixture: " + msg
}

// panicky keeps its pragma; its noinline entry must pass.
//
//go:noinline
func panicky(msg string) {
	panic("fixture: " + msg)
}

// ok is inlinable with an honest recorded cost; its inline entry must pass.
func ok(x int) int {
	return x + 1
}

// Use ties everything together so nothing is compiled out.
func Use(n int) int {
	defer panicky("never")
	return small(n, 2) + big(n) + len(leaky("x")) + ok(n)
}
