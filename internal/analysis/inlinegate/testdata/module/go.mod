module inlfix

go 1.22
