// Package inlinegate implements smat-lint's inlining-policy gate.
//
// The kernel dispatch design leans on two compiler behaviours that nothing
// in the type system pins down: the small chunk adapters (csrChunk,
// ellChunkUnroll4, …) and serial-path leaves (csrRowRange, diaRowRange)
// must stay cheap enough to inline into the closures the registry
// dispatches, and the outlined panic helpers (formatMismatch,
// aliasedVectors, …) must stay OUT of line so their format strings don't
// bloat the hot instruction stream. Both properties silently flip under
// refactors — one added branch pushes a 78-cost adapter past the budget of
// 80; someone deletes a go:noinline pragma during a cleanup.
//
// The gate runs `go build -gcflags=-m=2`, parses the per-function inlining
// decisions (cost N, "exceeds budget", "marked go:noinline"), and enforces
// a declarative policy file:
//
//	inline internal/kernels/csr.go:csrChunk cost=78
//	inline internal/kernels/csr.go:csrRowRange cost=66 slack=20
//	noinline internal/kernels/kernels.go:formatMismatch
//
// An `inline` entry fails when the function can no longer be inlined or
// its observed cost exceeds recorded+slack; any cost movement at all is
// reported as a non-failing drift note, so budgets are renegotiated
// consciously (-update-inline rewrites the recorded costs). A `noinline`
// entry fails when the function becomes inlinable. Entries naming
// functions the compiler no longer reports fail too — a silently deleted
// kernel is a policy bug, not a pass.
//
// Costs differ across compiler versions, so `slack` (default 40) absorbs
// toolchain skew; the committed costs are documentation of the last
// consciously accepted value, not an exact pin.
package inlinegate

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"smat/internal/analysis/compilediag"
)

// Config parameterises the gate; the zero value gates this module.
type Config struct {
	ModuleDir    string
	Patterns     []string
	GcflagsScope string
	// PolicyPath is the policy file, module-relative
	// (default internal/analysis/inlinegate/policy.txt).
	PolicyPath string
	// DefaultSlack is the cost tolerance for inline entries without an
	// explicit slack= (default 40, sized for compiler-version skew).
	DefaultSlack int
}

func (c Config) withDefaults() Config {
	if c.ModuleDir == "" {
		c.ModuleDir = "."
	}
	if len(c.Patterns) == 0 {
		c.Patterns = []string{"./..."}
	}
	if c.GcflagsScope == "" {
		c.GcflagsScope = "smat/..."
	}
	if c.PolicyPath == "" {
		c.PolicyPath = "internal/analysis/inlinegate/policy.txt"
	}
	if c.DefaultSlack == 0 {
		c.DefaultSlack = 40
	}
	return c
}

// Violation is one policy failure.
type Violation struct {
	// Kind is one of: lost-inline, cost-exceeded, noinline-violated,
	// missing-function, malformed-policy.
	Kind string
	// Entry is the policy entry "file:name" (or the raw line for
	// malformed-policy).
	Entry string
	// Detail explains the failure with the observed decision.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (%s)", v.Entry, v.Detail, v.Kind)
}

// Report is the gate outcome: Violations fail CI, Notes (cost drift within
// slack) inform.
type Report struct {
	Violations []Violation
	Notes      []string
}

// policyEntry is one parsed policy line.
type policyEntry struct {
	inline bool
	file   string
	name   string
	cost   int
	slack  int // -1 = use default
	line   int
}

// decision is one -m=2 inlining decision, shape-normalized.
type decision struct {
	name       string // bracket-stripped: "kernels.csrChunk", "runCSRParallel.func2"
	canInline  bool
	cost       int  // for canInline, the reported cost; for budget failures, the excess cost
	noinlineMk bool // "marked go:noinline"
	reason     string
}

var (
	canRE    = regexp.MustCompile(`^can inline (\S+) with cost (\d+)(?: as: .*)?$`)
	cannotRE = regexp.MustCompile(`^cannot inline (\S+): (.*)$`)
	costRE   = regexp.MustCompile(`cost (\d+) exceeds budget`)
	brackRE  = regexp.MustCompile(`\[[^\[\]]*\]`)
)

// parseDecisions extracts per-function inlining decisions from -m=2 output,
// keyed by file. Generic instantiations collapse onto one name after
// bracket stripping; all their decisions are kept (a shape instantiation
// can be refused inlining while a concrete one is accepted — the gate
// judges the union).
func parseDecisions(buildOutput string) map[string][]decision {
	byFile := map[string][]decision{}
	for _, d := range compilediag.Parse(buildOutput) {
		msg := compilediag.NormalizeShapes(d.Msg)
		if m := canRE.FindStringSubmatch(msg); m != nil {
			cost, _ := strconv.Atoi(m[2])
			byFile[d.File] = append(byFile[d.File], decision{
				name: stripBrackets(m[1]), canInline: true, cost: cost,
			})
			continue
		}
		if m := cannotRE.FindStringSubmatch(msg); m != nil {
			dec := decision{name: stripBrackets(m[1]), reason: m[2]}
			if strings.Contains(m[2], "marked go:noinline") {
				dec.noinlineMk = true
			}
			if cm := costRE.FindStringSubmatch(m[2]); cm != nil {
				dec.cost, _ = strconv.Atoi(cm[1])
			}
			byFile[d.File] = append(byFile[d.File], dec)
		}
	}
	return byFile
}

// stripBrackets removes instantiation brackets so policy names are stable:
// "kernels.(*Library[go.shape.T]).RegisterHYB" → "kernels.(*Library).RegisterHYB".
// Applied twice for the nested method-receiver case.
func stripBrackets(s string) string {
	return brackRE.ReplaceAllString(brackRE.ReplaceAllString(s, ""), "")
}

// nameMatches reports whether a decision's (possibly package-qualified)
// name refers to the policy name: exact, or a ".name" suffix. The compiler
// qualifies generic and cross-package names ("kernels.csrChunk") but prints
// plain functions bare ("aliasedVectors"); policy names never carry the
// package.
func nameMatches(decisionName, policyName string) bool {
	return decisionName == policyName || strings.HasSuffix(decisionName, "."+policyName)
}

// ParsePolicy reads the policy file. Malformed lines become violations, not
// errors, so a typo'd policy fails the gate visibly instead of silently
// shrinking it.
func ParsePolicy(data string) ([]policyEntry, []Violation) {
	var entries []policyEntry
	var viols []Violation
	for i, raw := range strings.Split(data, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(why string) {
			viols = append(viols, Violation{Kind: "malformed-policy", Entry: line,
				Detail: fmt.Sprintf("policy line %d: %s", i+1, why)})
		}
		if len(fields) < 2 {
			bad("want `inline file:name cost=N [slack=N]` or `noinline file:name`")
			continue
		}
		file, name, ok := splitEntry(fields[1])
		if !ok {
			bad("target must be file.go:function")
			continue
		}
		e := policyEntry{file: file, name: name, slack: -1, line: i + 1}
		switch fields[0] {
		case "inline":
			e.inline = true
			e.cost = -1
			valid := true
			for _, f := range fields[2:] {
				switch {
				case strings.HasPrefix(f, "cost="):
					n, err := strconv.Atoi(f[len("cost="):])
					if err != nil {
						bad("bad cost: " + f)
						valid = false
					}
					e.cost = n
				case strings.HasPrefix(f, "slack="):
					n, err := strconv.Atoi(f[len("slack="):])
					if err != nil {
						bad("bad slack: " + f)
						valid = false
					}
					e.slack = n
				default:
					bad("unknown field " + f)
					valid = false
				}
			}
			if !valid {
				continue
			}
			if e.cost < 0 {
				bad("inline entry needs cost=N (run -update-inline to record)")
				continue
			}
		case "noinline":
			if len(fields) > 2 {
				bad("noinline takes no options")
				continue
			}
		default:
			bad("unknown directive " + fields[0])
			continue
		}
		entries = append(entries, e)
	}
	return entries, viols
}

// splitEntry splits "path/file.go:name" at the .go: boundary (function
// names can contain dots for closures, so the last colon is wrong).
func splitEntry(s string) (file, name string, ok bool) {
	i := strings.Index(s, ".go:")
	if i < 0 || i+4 >= len(s) {
		return "", "", false
	}
	return s[:i+3], s[i+4:], true
}

// Check builds with -m=2 and evaluates the policy.
func Check(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	data, err := compilediag.ReadBaselineRaw(filepath.Join(cfg.ModuleDir, cfg.PolicyPath))
	if err != nil {
		return Report{}, err
	}
	out, err := compilediag.Build(cfg.ModuleDir, cfg.GcflagsScope, compilediag.InlineFlags, cfg.Patterns...)
	if err != nil {
		return Report{}, err
	}
	return evaluate(cfg, data, out), nil
}

// evaluate is Check minus the IO, for tests.
func evaluate(cfg Config, policyData, buildOutput string) Report {
	entries, viols := ParsePolicy(policyData)
	decisions := parseDecisions(buildOutput)
	rep := Report{Violations: viols}
	for _, e := range entries {
		var matched []decision
		for _, d := range decisions[e.file] {
			if nameMatches(d.name, e.name) {
				matched = append(matched, d)
			}
		}
		key := e.file + ":" + e.name
		if len(matched) == 0 {
			rep.Violations = append(rep.Violations, Violation{
				Kind: "missing-function", Entry: key,
				Detail: "no inlining decision reported — function deleted, renamed, or compiled out",
			})
			continue
		}
		if e.inline {
			rep.judgeInline(cfg, e, key, matched)
		} else {
			rep.judgeNoinline(e, key, matched)
		}
	}
	return rep
}

func (rep *Report) judgeInline(cfg Config, e policyEntry, key string, matched []decision) {
	maxCost, canInline := 0, false
	var refusal decision
	for _, d := range matched {
		if d.canInline {
			canInline = true
			if d.cost > maxCost {
				maxCost = d.cost
			}
		} else if !d.noinlineMk {
			refusal = d
		}
	}
	if !canInline {
		rep.Violations = append(rep.Violations, Violation{
			Kind: "lost-inline", Entry: key,
			Detail: "no longer inlinable: " + refusal.reason,
		})
		return
	}
	slack := e.slack
	if slack < 0 {
		slack = cfg.DefaultSlack
	}
	switch {
	case maxCost > e.cost+slack:
		rep.Violations = append(rep.Violations, Violation{
			Kind: "cost-exceeded", Entry: key,
			Detail: fmt.Sprintf("inline cost %d exceeds recorded %d + slack %d", maxCost, e.cost, slack),
		})
	case maxCost != e.cost:
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: inline cost drifted %d → %d (within slack %d; -update-inline to accept)",
			key, e.cost, maxCost, slack))
	}
	// A refusal alongside a success (one instantiation over budget) is worth
	// a note even when some shape still inlines.
	if refusal.reason != "" {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: one instantiation refused inlining: %s", key, refusal.reason))
	}
}

func (rep *Report) judgeNoinline(e policyEntry, key string, matched []decision) {
	sawMark := false
	for _, d := range matched {
		if d.canInline {
			rep.Violations = append(rep.Violations, Violation{
				Kind: "noinline-violated", Entry: key,
				Detail: fmt.Sprintf("panic helper became inlinable (cost %d) — go:noinline pragma lost?", d.cost),
			})
			return
		}
		if d.noinlineMk {
			sawMark = true
		}
	}
	if !sawMark {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: not inlined, but not via go:noinline (%s)", key, matched[0].reason))
	}
}

// Update rewrites cost= values in the policy file to the observed maxima,
// preserving comments, ordering, slack options, and noinline lines.
func Update(cfg Config) ([]string, error) {
	cfg = cfg.withDefaults()
	path := filepath.Join(cfg.ModuleDir, cfg.PolicyPath)
	data, err := compilediag.ReadBaselineRaw(path)
	if err != nil {
		return nil, err
	}
	out, err := compilediag.Build(cfg.ModuleDir, cfg.GcflagsScope, compilediag.InlineFlags, cfg.Patterns...)
	if err != nil {
		return nil, err
	}
	decisions := parseDecisions(out)

	var changed []string
	lines := strings.Split(data, "\n")
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		if !strings.HasPrefix(line, "inline ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		file, name, ok := splitEntry(fields[1])
		if !ok {
			continue
		}
		maxCost, found := 0, false
		for _, d := range decisions[file] {
			if nameMatches(d.name, name) && d.canInline {
				found = true
				if d.cost > maxCost {
					maxCost = d.cost
				}
			}
		}
		if !found {
			continue // leave as-is; Check will flag lost-inline
		}
		newLine := line
		replaced := false
		for j, f := range fields {
			if strings.HasPrefix(f, "cost=") {
				fields[j] = fmt.Sprintf("cost=%d", maxCost)
				replaced = true
			}
		}
		if !replaced {
			fields = append(fields, fmt.Sprintf("cost=%d", maxCost))
		}
		newLine = strings.Join(fields, " ")
		if newLine != line {
			changed = append(changed, fmt.Sprintf("%s:%s: %s", file, name, newLine))
		}
		lines[i] = newLine
	}
	if err := compilediag.WriteRaw(path, strings.Join(lines, "\n")); err != nil {
		return nil, err
	}
	return changed, nil
}
