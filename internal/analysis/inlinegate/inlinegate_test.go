package inlinegate

import (
	"strings"
	"testing"
)

func fixtureCfg() Config {
	return Config{
		ModuleDir:    "testdata/module",
		GcflagsScope: "inlfix/...",
		PolicyPath:   "policy.txt",
	}
}

// TestFixtureSeededViolations compiles the fixture module for real and
// asserts the gate reports every seeded violation kind exactly once, with
// the healthy entries silent.
func TestFixtureSeededViolations(t *testing.T) {
	rep, err := Check(fixtureCfg())
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[string][]Violation{}
	for _, v := range rep.Violations {
		byKind[v.Kind] = append(byKind[v.Kind], v)
	}
	expect := map[string]string{
		"cost-exceeded":     "hot.go:small",
		"lost-inline":       "hot.go:big",
		"noinline-violated": "hot.go:leaky",
		"missing-function":  "hot.go:ghost",
		"malformed-policy":  "broken-target-line",
	}
	for kind, entrySub := range expect {
		vs := byKind[kind]
		if len(vs) != 1 {
			t.Errorf("kind %s: got %d violations, want 1: %v", kind, len(vs), vs)
			continue
		}
		if !strings.Contains(vs[0].Entry, entrySub) {
			t.Errorf("kind %s reported for %q, want entry containing %q", kind, vs[0].Entry, entrySub)
		}
	}
	if len(rep.Violations) != len(expect) {
		t.Errorf("total violations = %d, want %d:\n%v", len(rep.Violations), len(expect), rep.Violations)
	}
	// The honest inline entry drifted from its recorded cost=100 (real cost
	// is tiny) but stays within slack → note, not violation.
	var sawDrift bool
	for _, n := range rep.Notes {
		if strings.Contains(n, "hot.go:ok") {
			sawDrift = true
		}
	}
	if !sawDrift {
		t.Errorf("expected a cost-drift note for hot.go:ok; notes: %v", rep.Notes)
	}
}

func TestParseDecisions(t *testing.T) {
	out := strings.Join([]string{
		"# smat/internal/kernels",
		"./internal/kernels/csr.go:46:6: can inline kernels.csrChunk[go.shape.float64] with cost 78 as: func(...) { body }",
		"./internal/kernels/csr.go:23:6: cannot inline kernels.csrRowRangeUnroll4[go.shape.float64]: function too complex: cost 158 exceeds budget 80",
		"./internal/kernels/kernels.go:311:6: cannot inline kernels.formatMismatch[go.shape.float64]: marked go:noinline",
		"./internal/autotune/runtime.go:288:6: cannot inline aliasedVectors: marked go:noinline",
		"./internal/kernels/hyb.go:103:6: can inline kernels.(*Library[float64]).RegisterHYB with cost 61 as: method expr",
		"./internal/kernels/csr.go:68:9: can inline kernels.runCSRParallel[go.shape.float64].func2 with cost 156 as: func(...) { body }",
	}, "\n")
	byFile := parseDecisions(out)

	find := func(file, name string) *decision {
		for i := range byFile[file] {
			if nameMatches(byFile[file][i].name, name) {
				return &byFile[file][i]
			}
		}
		return nil
	}
	if d := find("internal/kernels/csr.go", "csrChunk"); d == nil || !d.canInline || d.cost != 78 {
		t.Errorf("csrChunk: %+v", d)
	}
	if d := find("internal/kernels/csr.go", "csrRowRangeUnroll4"); d == nil || d.canInline || d.cost != 158 {
		t.Errorf("csrRowRangeUnroll4: %+v", d)
	}
	if d := find("internal/kernels/kernels.go", "formatMismatch"); d == nil || !d.noinlineMk {
		t.Errorf("formatMismatch: %+v", d)
	}
	if d := find("internal/autotune/runtime.go", "aliasedVectors"); d == nil || !d.noinlineMk {
		t.Errorf("bare-name aliasedVectors: %+v", d)
	}
	if d := find("internal/kernels/hyb.go", "(*Library).RegisterHYB"); d == nil || !d.canInline || d.cost != 61 {
		t.Errorf("bracket-stripped method name: %+v", d)
	}
	if d := find("internal/kernels/csr.go", "runCSRParallel.func2"); d == nil || !d.canInline {
		t.Errorf("closure name: %+v", d)
	}
}

func TestEvaluateCostSemantics(t *testing.T) {
	out := strings.Join([]string{
		"./k.go:1:1: can inline p.f[go.shape.float64] with cost 70 as: func() { body }",
		"./k.go:1:1: can inline p.f[go.shape.float32] with cost 75 as: func() { body }",
	}, "\n")
	// Max cost across instantiations (75) is judged, not the first seen.
	rep := evaluate(Config{DefaultSlack: 40}.withDefaults(), "inline k.go:f cost=74 slack=0\n", out)
	if len(rep.Violations) != 1 || rep.Violations[0].Kind != "cost-exceeded" {
		t.Errorf("expected cost-exceeded on max instantiation cost, got %v", rep.Violations)
	}
	rep = evaluate(Config{}.withDefaults(), "inline k.go:f cost=75\n", out)
	if len(rep.Violations) != 0 || len(rep.Notes) != 0 {
		t.Errorf("exact cost must be silent, got %v / %v", rep.Violations, rep.Notes)
	}
	rep = evaluate(Config{}.withDefaults(), "inline k.go:f cost=70\n", out)
	if len(rep.Violations) != 0 || len(rep.Notes) != 1 {
		t.Errorf("in-slack drift must be one note, got %v / %v", rep.Violations, rep.Notes)
	}
}

func TestSplitEntry(t *testing.T) {
	file, name, ok := splitEntry("internal/kernels/csr.go:runCSRParallel.func2")
	if !ok || file != "internal/kernels/csr.go" || name != "runCSRParallel.func2" {
		t.Errorf("splitEntry = %q %q %v", file, name, ok)
	}
	if _, _, ok := splitEntry("no-go-file:name"); ok {
		t.Error("splitEntry must reject targets without .go:")
	}
}

// TestGateAgainstPolicy is the real gate over this module.
func TestGateAgainstPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module with -m=2")
	}
	rep, err := Check(Config{ModuleDir: "../../.."})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) > 0 {
		t.Errorf("inlining policy violations:\n%v", rep.Violations)
	}
	for _, n := range rep.Notes {
		t.Logf("note: %s", n)
	}
}
