// Package hp is the hotpath analyzer fixture: annotated functions exercising
// every rule (positive cases carry want comments) next to unannotated and
// clean annotated functions that must stay silent.
package hp

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

type vec []float64

type plan struct {
	Serial bool
	Bounds []int
}

type mat struct {
	rows int
	vals []float64
}

type runFn func(m *mat, x, y []float64)

// sink defeats "declared and not used" in violation bodies.
var sink any

// --- positive cases -------------------------------------------------------

//smat:hotpath
func badAlloc(m *mat, x, y []float64) {
	buf := make([]float64, m.rows) // want `calls make`
	_ = buf
	y = append(y, 1) // want `calls append`
	p := new(plan)   // want `calls new`
	_ = p
	s := []int{1, 2} // want `allocates a slice literal`
	_ = s
	mp := map[int]int{1: 2} // want `allocates a map literal`
	_ = mp
	pp := &plan{Serial: true} // want `takes the address of a composite literal`
	_ = pp
}

//smat:hotpath
func badCalls(m *mat, x, y []float64) {
	fmt.Println(m.rows) // want `calls fmt.Println`
	_ = time.Now()      // want `calls time.Now`
	_ = rand.Float64()  // want `calls math/rand.Float64`
	defer doNothing()   // want `uses defer`
	go doNothing()      // want `spawns a goroutine`
}

//smat:hotpath
func badClosure(m *mat, x, y []float64) {
	f := func() { y[0] = 1 } // want `allocates a closure`
	f()
}

//smat:hotpath
func badIface(m *mat, x, y []float64) {
	sink = m.rows               // want `boxing allocation`
	takeAny(m.vals)             // want `boxing allocation`
	_ = []byte("ab"[m.rows%2:]) // want `converts between string and byte/rune slice`
	panic(m.rows)               // want `panics with a non-constant value`
}

//smat:hotpath
func badMethodValue(mu *sync.Mutex) {
	f := mu.Unlock // want `allocates a method value`
	_ = f
}

// badFactoryNoLit never returns a closure, so the directive is inert.
//
//smat:hotpath-factory
func badFactoryNoLit() int { // want `returns no func literal`
	return 0
}

//smat:hotpath-factory
func badFactory() runFn {
	// Setup statements are exempt: allocating the chunk binding here is the
	// whole point of the factory pattern.
	bounds := make([]int, 4)
	return func(m *mat, x, y []float64) {
		_ = bounds
		tmp := make([]float64, 1) // want `calls make`
		_ = tmp
	}
}

// --- negative cases -------------------------------------------------------

//smat:hotpath
func goodChunk(m *mat, x, y []float64, lo, hi int) {
	clear(y[lo:hi])
	for i := lo; i < hi; i++ {
		y[i] += m.vals[i] * x[i]
	}
	if len(y) == 0 {
		panic("hp: empty y") // constant panic value: static data, no box
	}
}

//smat:hotpath
func goodStructLit(m *mat) plan {
	// Value composite literals live on the stack.
	return plan{Serial: m.rows < 8}
}

//smat:hotpath
func goodPtrIface(m *mat) {
	// Pointer-shaped values fit the interface data word without boxing.
	takeAny(m)
}

//smat:hotpath-factory
func goodFactory() runFn {
	chunk := vec(make([]float64, 8))
	return func(m *mat, x, y []float64) {
		copy(y, chunk)
	}
}

// unannotated may do anything.
func coldHelper() []float64 {
	fmt.Println("cold")
	return append([]float64{}, rand.Float64())
}

func doNothing() {}

func takeAny(v any) { sink = v }
