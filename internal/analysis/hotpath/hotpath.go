// Package hotpath implements the smat-lint analyzer that keeps annotated
// steady-state functions allocation-free.
//
// The execution engine (internal/kernels) promises that a steady-state SpMV
// call — RunPooled, plan lookup, pool dispatch, and every kernel chunk body —
// performs zero heap allocations. That contract is pinned at runtime by an
// AllocsPerRun test, but a single stray append or captured closure only shows
// up when that exact path is exercised. This analyzer makes the contract
// syntactically checkable on every function that opts in:
//
//	//smat:hotpath
//	func csrChunk[T matrix.Float](m *Mat[T], x, y []T, lo, hi int) { ... }
//
// marks the whole body hot. Parallel-kernel factories, whose setup runs once
// at registration but whose returned closure runs per call, use
//
//	//smat:hotpath-factory
//	func runCSRParallel[T matrix.Float]() runFn[T] { ... }
//
// which exempts the factory's setup statements and checks the bodies of the
// func literals it returns.
//
// Inside a hot body the analyzer reports:
//
//   - heap-allocating constructs: make, new, append, slice/map composite
//     literals, address-taken composite literals, closures (func literals),
//     method values, string/[]byte conversions;
//   - interface conversions of non-constant concrete values (explicit or
//     implicit through call arguments, assignments and returns), which box;
//   - calls into fmt, log, errors, os, reflect and math/rand, plus time.Now —
//     allocation, I/O or nondeterminism that has no business on the SpMV path;
//   - go statements, defer statements, and panics carrying non-constant
//     values.
//
// Calls to unannotated functions are allowed: cold helpers (plan
// construction, mismatch panics) live behind ordinary calls, and the escape
// gate (internal/analysis/escapes) backstops what syntax cannot see.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"smat/internal/analysis/framework"
)

// Analyzer is the hotpath analyzer.
var Analyzer = &framework.Analyzer{
	Name: "hotpath",
	Doc:  "report heap-allocating constructs inside //smat:hotpath functions",
	Run:  run,
}

// bannedPkgs are packages whose every call is reported in a hot body.
var bannedPkgs = map[string]string{
	"fmt":       "allocates and formats",
	"log":       "allocates and performs I/O",
	"errors":    "allocates",
	"os":        "performs I/O",
	"reflect":   "defeats escape analysis",
	"math/rand": "is nondeterministic and locks",
}

// bannedFuncs are individual package-level functions reported in a hot body.
var bannedFuncs = map[string]string{
	"time.Now": "reads the clock",
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			dirs := framework.FuncDirectives(fd)
			switch {
			case dirs["smat:hotpath"]:
				sig, _ := pass.Info.Defs[fd.Name].Type().(*types.Signature)
				checkBody(pass, fd.Body, sig)
			case dirs["smat:hotpath-factory"]:
				lits := returnedFuncLits(fd.Body)
				if len(lits) == 0 {
					pass.Reportf(fd.Pos(), "hot-path factory %s returns no func literal", fd.Name.Name)
				}
				for _, lit := range lits {
					sig, _ := pass.Info.Types[lit].Type.(*types.Signature)
					checkBody(pass, lit.Body, sig)
				}
			}
		}
	}
	return nil
}

// returnedFuncLits collects func literals appearing in return statements of
// the factory body (at any nesting level outside other func literals).
func returnedFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // don't descend into closures looking for returns
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if lit, ok := res.(*ast.FuncLit); ok {
					lits = append(lits, lit)
				}
			}
		}
		return true
	})
	return lits
}

// checker walks one hot body. sig is the enclosing function's signature
// (for checking implicit interface conversions at return statements).
type checker struct {
	pass *framework.Pass
	sig  *types.Signature
	// calleeFuns marks expressions in call-function position, so method
	// values (allocating bound-method closures) can be told apart from
	// ordinary method calls.
	calleeFuns map[ast.Expr]bool
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt, sig *types.Signature) {
	c := &checker{pass: pass, sig: sig, calleeFuns: map[ast.Expr]bool{}}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			c.calleeFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})
	ast.Inspect(body, c.visit)
}

func (c *checker) visit(n ast.Node) bool {
	pass, info := c.pass, c.pass.Info
	switch n := n.(type) {
	case *ast.GoStmt:
		pass.Reportf(n.Pos(), "hot path spawns a goroutine")
	case *ast.DeferStmt:
		pass.Reportf(n.Pos(), "hot path uses defer")
	case *ast.FuncLit:
		pass.Reportf(n.Pos(), "hot path allocates a closure")
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(), "hot path takes the address of a composite literal (heap allocation)")
			}
		}
	case *ast.CompositeLit:
		if tv, ok := info.Types[n]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "hot path allocates a slice literal")
			case *types.Map:
				pass.Reportf(n.Pos(), "hot path allocates a map literal")
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal && !c.calleeFuns[ast.Expr(n)] {
			pass.Reportf(n.Pos(), "hot path allocates a method value (bound-method closure)")
		}
	case *ast.CallExpr:
		c.checkCall(n)
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			if i >= len(n.Rhs) {
				break // multi-value RHS: conversion happens inside the call
			}
			if lt, ok := info.Types[lhs]; ok {
				c.checkIfaceConversion(n.Rhs[i], lt.Type, "assigns")
			}
		}
	case *ast.ReturnStmt:
		if c.sig == nil || c.sig.Results() == nil || len(n.Results) != c.sig.Results().Len() {
			break
		}
		for i, res := range n.Results {
			c.checkIfaceConversion(res, c.sig.Results().At(i).Type(), "returns")
		}
	case *ast.ValueSpec:
		if n.Type != nil {
			if tt, ok := info.Types[n.Type]; ok {
				for _, v := range n.Values {
					c.checkIfaceConversion(v, tt.Type, "assigns")
				}
			}
		}
	}
	return true
}

func (c *checker) checkCall(call *ast.CallExpr) {
	pass, info := c.pass, c.pass.Info
	fun := ast.Unparen(call.Fun)

	// Type conversion T(x).
	if framework.IsTypeExpr(info, fun) {
		tv := info.Types[fun]
		if types.IsInterface(tv.Type) {
			c.checkIfaceConversion(call.Args[0], tv.Type, "converts")
		}
		if len(call.Args) == 1 {
			from, ok := info.Types[call.Args[0]]
			if ok && stringBytesConv(from.Type, tv.Type) {
				pass.Reportf(call.Pos(), "hot path converts between string and byte/rune slice (allocates)")
			}
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				pass.Reportf(call.Pos(), "hot path calls append (may grow the backing array)")
			case "make":
				pass.Reportf(call.Pos(), "hot path calls make (allocates)")
			case "new":
				pass.Reportf(call.Pos(), "hot path calls new (allocates)")
			case "panic":
				if len(call.Args) == 1 {
					if tv, ok := info.Types[call.Args[0]]; !ok || tv.Value == nil {
						pass.Reportf(call.Pos(), "hot path panics with a non-constant value (boxes into interface)")
					}
				}
			}
			return
		}
	}

	// Package-qualified calls into banned packages.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if pkg := framework.PkgNameOf(info, sel); pkg != "" {
			if why, banned := bannedPkgs[pkg]; banned {
				pass.Reportf(call.Pos(), "hot path calls %s.%s (%s)", pkg, sel.Sel.Name, why)
				return
			}
			if why, banned := bannedFuncs[pkg+"."+sel.Sel.Name]; banned {
				pass.Reportf(call.Pos(), "hot path calls %s.%s (%s)", pkg, sel.Sel.Name, why)
				return
			}
		}
	}

	// Implicit interface conversions at the call boundary.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		}
		if pt != nil {
			c.checkIfaceConversion(arg, pt, "passes")
		}
	}
}

// checkIfaceConversion reports expr when it is a non-constant concrete value
// being converted to a (non-empty or empty) interface destination — a boxing
// allocation unless the value is pointer-shaped, which escape analysis
// cannot be trusted to exploit on a hot path.
func (c *checker) checkIfaceConversion(expr ast.Expr, dst types.Type, verb string) {
	if !types.IsInterface(dst) {
		return
	}
	tv, ok := c.pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil { // constants convert via static data
		return
	}
	src := tv.Type
	if types.IsInterface(src) {
		return // interface-to-interface: no box
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if _, isPtr := src.Underlying().(*types.Pointer); isPtr {
		return // pointer-shaped: fits the iface data word, no allocation
	}
	c.pass.Reportf(expr.Pos(), "hot path %s non-constant %s into interface %s (boxing allocation)", verb, src, dst)
}

// stringBytesConv reports a conversion between string and []byte/[]rune in
// either direction.
func stringBytesConv(from, to types.Type) bool {
	return isString(from) && isByteOrRuneSlice(to) || isString(to) && isByteOrRuneSlice(from)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
