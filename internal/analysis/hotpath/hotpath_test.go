package hotpath

import (
	"testing"

	"smat/internal/analysis/framework/analysistest"
)

func TestHotpath(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/hp")
}
