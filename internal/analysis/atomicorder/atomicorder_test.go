package atomicorder

import (
	"testing"

	"smat/internal/analysis/framework"
	"smat/internal/analysis/framework/analysistest"
)

func TestAtomicOrder(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/ao")
}

// TestRealTreeClean runs the analyzer over the packages whose protocols it
// was written for: the annotated publish/barrier sites must verify clean.
func TestRealTreeClean(t *testing.T) {
	pkgs, err := framework.LoadCached(framework.LoadConfig{},
		"smat", "smat/internal/kernels", "smat/internal/autotune")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run([]*framework.Analyzer{Analyzer}, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
