// Package ao is the atomicorder fixture: a miniature engine-swap + worker
// barrier protocol with one seeded violation of every rule the analyzer
// reports, next to healthy twins that must stay quiet.
package ao

import "sync/atomic"

type payload struct {
	data  []float64
	ready bool
}

type slotBox struct {
	slot  atomic.Pointer[payload]
	state atomic.Int32
	n     int
}

// goodPublish builds the payload completely and then publishes it; quiet.
//
//smat:atomic-publish
func (b *slotBox) goodPublish(n int) {
	p := &payload{data: make([]float64, n), ready: true}
	b.slot.Store(p)
}

// mutateAfterPublish finishes initializing the payload after the store made
// it visible: a concurrent reader can observe ready still false.
func (b *slotBox) mutateAfterPublish(n int) {
	p := &payload{data: make([]float64, n)}
	b.slot.Store(p)
	p.ready = true // want `mutated after being atomically published`
}

// publishMaybeZero publishes a pointer whose zero-value definition still
// reaches the store on the n <= 0 path.
func (b *slotBox) publishMaybeZero(n int) {
	var p *payload
	if n > 0 {
		p = &payload{data: make([]float64, n), ready: true}
	}
	b.slot.Store(p) // want `may store its zero value`
}

// writeThroughSnapshot mutates the shared payload through a Load snapshot.
func (b *slotBox) writeThroughSnapshot() {
	p := b.slot.Load()
	p.ready = false // want `write through atomic Load snapshot`
}

// initThroughSnapshot performs the same write, but the operator it fills in
// is not yet shared — the directive marks it pre-publication setup; quiet.
//
//smat:atomic-init
func (b *slotBox) initThroughSnapshot() {
	p := b.slot.Load()
	p.ready = true
}

// doubleLoad takes two snapshots of one slot; a swap between them tears the
// sum across two payloads.
func (b *slotBox) doubleLoad() int {
	a := b.slot.Load()
	c := b.slot.Load() // want `loaded more than once`
	return len(a.data) + len(c.data)
}

// singleLoad is the healthy consumer shape: one load, reads only; quiet.
func (b *slotBox) singleLoad() int {
	p := b.slot.Load()
	if p == nil {
		return 0
	}
	return len(p.data)
}

// plainAccess lets the atomic cell's address escape, so callers can bypass
// the protocol entirely.
func (b *slotBox) plainAccess() *atomic.Int32 {
	return &b.state // want `plain access to atomic field`
}

type barrier struct {
	pending atomic.Int32
	wake    []chan struct{}
	done    chan struct{}
}

// goodBarrier arms the countdown before waking any worker; quiet.
//
//smat:wake-barrier
func (b *barrier) goodBarrier(n int) {
	b.pending.Store(int32(n))
	for i := 0; i < n; i++ {
		b.wake[i] <- struct{}{}
	}
	<-b.done
}

// badBarrier wakes the workers first: a fast worker decrements a stale
// countdown and releases the dispatcher early.
//
//smat:wake-barrier
func (b *barrier) badBarrier(n int) {
	for i := 0; i < n; i++ {
		b.wake[i] <- struct{}{} // want `not preceded by an atomic countdown`
	}
	b.pending.Store(int32(n))
	<-b.done
}

// countdown is the healthy worker-side barrier: the decrement dominates the
// completion send; quiet.
//
//smat:wake-barrier
func (b *barrier) countdown() {
	if b.pending.Add(-1) == 0 {
		b.done <- struct{}{}
	}
}

// silentPublish claims to publish but never stores.
//
//smat:atomic-publish
func (b *slotBox) silentPublish() int { // want `performs no atomic Store`
	return b.n
}
