// Package atomicorder implements the smat-lint analyzer verifying the
// repository's atomic publish protocols — the ordering discipline that makes
// the lock-free hot paths correct, which neither the race detector (it needs
// a racing execution) nor vet can check structurally.
//
// The engine-swap design (autotune.Operator), the tuned-handle slot
// (smat.Matrix) and the worker pool barrier (kernels.Pool) all follow one
// pattern: build a value completely, publish it with a single atomic store,
// and have every consumer take one atomic load and treat the snapshot as
// immutable. The analyzer checks that pattern on the framework's SSA-lite
// layer (CFG + dominance + reaching definitions):
//
//   - a pointer passed to an atomic Store must not be mutated afterwards:
//     a write that the store dominates is visible to concurrent readers
//     mid-update (torn publish);
//   - the stored pointer's reaching definitions must all be real
//     initializations — when a zero-value `var p *T` definition reaches the
//     Store, the publish is not dominated by initialization;
//   - a snapshot obtained from an atomic Load is read-only; writing through
//     it mutates shared state outside the protocol. Pre-publication setup
//     (filling in an engine the caller just created) is the one legitimate
//     exception and must carry the //smat:atomic-init directive;
//   - one function takes one Load per slot: a second load of the same slot
//     may observe a swapped value, tearing a computation across two engines;
//   - an atomic field is only touched through its atomic methods — any plain
//     access (copy, address escape) splits the synchronisation domain;
//   - in a //smat:wake-barrier function every channel send must be preceded
//     (dominated) by an atomic countdown Store/Add: waking a worker before
//     arming the barrier lets the completion signal fire early;
//   - a //smat:atomic-publish function must actually publish: at least one
//     atomic Store (or Swap/CompareAndSwap) in its body.
//
// _test.go files are exempt: tests legitimately poke protocol internals.
package atomicorder

import (
	"go/ast"
	"go/types"
	"strings"

	"smat/internal/analysis/framework"
)

// Analyzer is the atomicorder analyzer.
var Analyzer = &framework.Analyzer{
	Name: "atomicorder",
	Doc:  "verify atomic publish protocols: init-dominated stores, immutable load snapshots, one load per slot, barrier ordering",
	Run:  run,
}

// atomicMethods are the methods of the sync/atomic wrapper types. Presence
// here makes a call "atomic access"; everything else touching an atomic
// field is plain access.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Swap": true, "Add": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

// publishMethods are the subset that make a value visible to other
// goroutines.
var publishMethods = map[string]bool{
	"Store": true, "Swap": true, "CompareAndSwap": true,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			dirs := framework.FuncDirectives(fd)
			checkFunc(pass, fd.Body, framework.SigVars(pass.Info, fd.Recv, fd.Type), dirs, fd)
			// Closures get their own CFG; they inherit the enclosing
			// declaration's directives (an atomic-init constructor's helper
			// closure is still pre-publication code).
			for _, fl := range framework.FuncLitsIn(fd.Body) {
				checkFunc(pass, fl.Body, framework.SigVars(pass.Info, nil, fl.Type), dirs, nil)
			}
		}
	}
	return nil
}

// atomCall is one call of an atomic method inside the function under check.
type atomCall struct {
	call   *ast.CallExpr
	sel    *ast.SelectorExpr // receiver.Method
	method string
	slot   string // render of the receiver expression, e.g. "o.eng"
	pos    framework.Pos
}

// fieldWrite is one mutation through a local variable: an assignment or
// inc/dec whose left side dereferences, indexes or selects through base.
type fieldWrite struct {
	node ast.Node
	expr ast.Expr
	base *types.Var
	pos  framework.Pos
}

// checkFunc applies every rule to one function body. fd is nil for function
// literals (the declaration-level rules skip them).
func checkFunc(pass *framework.Pass, body *ast.BlockStmt, params []*types.Var, dirs map[string]bool, fd *ast.FuncDecl) {
	cfg := framework.BuildCFG(body)
	rd := framework.BuildReachingDefs(cfg, pass.Info, params)

	var calls []atomCall
	var sends []struct {
		stmt *ast.SendStmt
		pos  framework.Pos
	}
	var writes []fieldWrite
	okRecv := map[ast.Expr]bool{}

	for bi, bl := range cfg.Blocks {
		for ni, n := range bl.Nodes {
			pos := framework.Pos{Block: bi, Index: ni}
			inspectNode(n, func(m ast.Node) {
				switch m := m.(type) {
				case *ast.CallExpr:
					if ac, ok := asAtomicCall(pass.Info, m); ok {
						ac.pos = pos
						calls = append(calls, ac)
						okRecv[ast.Unparen(ac.sel.X)] = true
					}
				case *ast.SendStmt:
					sends = append(sends, struct {
						stmt *ast.SendStmt
						pos  framework.Pos
					}{m, pos})
				case *ast.AssignStmt:
					for _, lhs := range m.Lhs {
						if w, ok := asFieldWrite(pass.Info, m, lhs); ok {
							w.pos = pos
							writes = append(writes, w)
						}
					}
				case *ast.IncDecStmt:
					if w, ok := asFieldWrite(pass.Info, m, m.X); ok {
						w.pos = pos
						writes = append(writes, w)
					}
				}
			})
		}
	}

	// Rule: a published pointer is not mutated after its Store, and every
	// definition reaching the Store is a real initialization.
	for _, ac := range calls {
		if !publishMethods[ac.method] || len(ac.call.Args) == 0 {
			continue
		}
		arg := ast.Unparen(ac.call.Args[len(ac.call.Args)-1]) // CompareAndSwap publishes its last arg
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue // composite literals and call results have no later alias
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || !isPointer(v.Type()) {
			continue
		}
		for _, w := range writes {
			if w.base == v && ac.pos.Before(w.pos, cfg) {
				pass.Reportf(w.node.Pos(),
					"%s is mutated after being atomically published via %s.%s; a concurrent reader can observe the torn update — initialize fully before the store",
					v.Name(), ac.slot, ac.method)
			}
		}
		for _, d := range rd.At(v, ac.pos) {
			if d.Zero || isNilExpr(pass.Info, d.RHS) {
				pass.Reportf(ac.call.Pos(),
					"atomic publish of %s via %s.%s may store its zero value: a nil/zero definition reaches the store — dominate the publish with full initialization",
					v.Name(), ac.slot, ac.method)
			}
		}
	}

	// Rule: snapshots from an atomic Load are immutable unless the function
	// is marked as pre-publication initialization.
	if !dirs["smat:atomic-init"] {
		for _, w := range writes {
			for _, d := range rd.At(w.base, w.pos) {
				if lc, ok := loadCallOf(pass.Info, d.RHS); ok {
					pass.Reportf(w.node.Pos(),
						"write through atomic Load snapshot %s (loaded from %s); consumers must treat loaded state as immutable — annotate the function //smat:atomic-init if this is pre-publication setup",
						w.base.Name(), lc)
					break
				}
			}
		}
	}

	// Rule: one Load per slot per function.
	loadsBySlot := map[string]int{}
	for _, ac := range calls {
		if ac.method != "Load" {
			continue
		}
		loadsBySlot[ac.slot]++
		if loadsBySlot[ac.slot] > 1 {
			pass.Reportf(ac.call.Pos(),
				"atomic slot %s is loaded more than once in one function; a second load may observe a concurrent swap — reuse the first snapshot",
				ac.slot)
		}
	}

	// Rule: atomic fields are only touched through their atomic methods.
	for bi := range cfg.Blocks {
		for _, n := range cfg.Blocks[bi].Nodes {
			inspectNode(n, func(m ast.Node) {
				sel, ok := m.(*ast.SelectorExpr)
				if !ok || okRecv[sel] {
					return
				}
				tv, ok := pass.Info.Types[sel]
				if !ok || !tv.IsValue() || !isAtomicType(tv.Type) {
					return
				}
				pass.Reportf(sel.Pos(),
					"plain access to atomic field %s; all access must go through its atomic methods (copying or address-escaping the cell splits the synchronisation domain)",
					types.ExprString(sel))
			})
		}
	}

	// Rule: in a wake-barrier function every send is dominated by an atomic
	// countdown Store/Add.
	if dirs["smat:wake-barrier"] {
		for _, s := range sends {
			armed := false
			for _, ac := range calls {
				if (ac.method == "Store" || ac.method == "Add") && ac.pos.Before(s.pos, cfg) {
					armed = true
					break
				}
			}
			if !armed {
				pass.Reportf(s.stmt.Pos(),
					"channel send in a //smat:wake-barrier function is not preceded by an atomic countdown Store/Add; waking a worker before arming the barrier lets the completion signal fire early")
			}
		}
	}

	// Rule: an atomic-publish function actually publishes.
	if fd != nil && dirs["smat:atomic-publish"] {
		published := false
		for _, ac := range calls {
			if publishMethods[ac.method] {
				published = true
				break
			}
		}
		if !published {
			pass.Reportf(fd.Name.Pos(),
				"function is annotated //smat:atomic-publish but performs no atomic Store/Swap/CompareAndSwap")
		}
	}
}

// inspectNode walks one CFG node's subtree without crossing into territory
// that belongs to other blocks: function literals have their own CFGs, and a
// RangeStmt node stands only for its clause (key/value/operand) — its body
// statements live in the loop's body block.
func inspectNode(n ast.Node, fn func(ast.Node)) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		for _, e := range []ast.Expr{rs.Key, rs.Value, rs.X} {
			if e != nil {
				inspectNode(e, fn)
			}
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		fn(m)
		return true
	})
}

// asAtomicCall matches expr.Method(...) where expr's type is a sync/atomic
// wrapper struct.
func asAtomicCall(info *types.Info, call *ast.CallExpr) (atomCall, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !atomicMethods[sel.Sel.Name] {
		return atomCall{}, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || !isAtomicType(tv.Type) {
		return atomCall{}, false
	}
	return atomCall{
		call:   call,
		sel:    sel,
		method: sel.Sel.Name,
		slot:   types.ExprString(sel.X),
	}, true
}

// asFieldWrite matches a mutation whose target routes through a local
// variable: v.f = x, *v = x, v[i] = x, v.f.g++, ... A bare `v = x` is a
// (re)definition, not a write through v, and field writes through package-
// level state are outside the local protocol.
func asFieldWrite(info *types.Info, node ast.Node, lhs ast.Expr) (fieldWrite, bool) {
	e := ast.Unparen(lhs)
	if _, bare := e.(*ast.Ident); bare {
		return fieldWrite{}, false
	}
	for {
		switch t := e.(type) {
		case *ast.SelectorExpr:
			e = ast.Unparen(t.X)
		case *ast.StarExpr:
			e = ast.Unparen(t.X)
		case *ast.IndexExpr:
			e = ast.Unparen(t.X)
		case *ast.Ident:
			v, ok := info.Uses[t].(*types.Var)
			if !ok {
				return fieldWrite{}, false
			}
			return fieldWrite{node: node, expr: lhs, base: v}, true
		default:
			return fieldWrite{}, false
		}
	}
}

// loadCallOf reports whether rhs is an atomic Load call, returning the slot
// it loads from.
func loadCallOf(info *types.Info, rhs ast.Expr) (string, bool) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	ac, ok := asAtomicCall(info, call)
	if !ok || ac.method != "Load" {
		return "", false
	}
	return ac.slot, true
}

// isAtomicType reports whether t (or its pointee) is one of the sync/atomic
// wrapper structs (atomic.Pointer[T], atomic.Int32, ...). Interfaces from
// that package carry no cell and do not count.
func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || pkg.Path() != "sync/atomic" {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}

func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	if e == nil {
		return false
	}
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
