// Package kr is the kernelreg analyzer fixture: a miniature kernel registry
// mirroring internal/kernels (Kernel entries, rangeFn chunk funcvals, a
// newPlan partitioner) with deliberate registry violations.
package kr

// Format mirrors matrix.Format.
type Format int

const (
	FormatCSR Format = iota
	FormatCOO
	FormatDIA
	FormatELL
	FormatHYB
	numFormats // unexported: exempt from coverage
)

// Plan mirrors kernels.Plan; Serial is the small-matrix cutoff.
type Plan struct {
	Serial bool
	Chunks int
}

type exec struct{ plan *Plan }

type runFn func(ex exec)

type rangeFn func(ex exec, lo, hi int)

// Kernel mirrors kernels.Kernel.
type Kernel struct {
	Name       string
	Format     Format
	Strategies int
	run        runFn
}

type batchFn func(ex exec, k int)

// BatchKernel mirrors kernels.BatchKernel; its entries live in a separate
// lookup namespace.
type BatchKernel struct {
	Name       string
	Format     Format
	Strategies int
	run        batchFn
}

// --- chunk and serial bodies (top-level funcvals) -------------------------

func csrSerial(ex exec)            {}
func cooSerial(ex exec)            {}
func ellSerial(ex exec)            {}
func hybSerial(ex exec)            {}
func csrChunk(ex exec, lo, hi int) {}
func ellChunk(ex exec, lo, hi int) {}
func csrBatch(ex exec, k int)      {}
func cooBatch(ex exec, k int)      {}
func ellBatch(ex exec, k int)      {}
func hybBatch(ex exec, k int)      {}

var ellVar runFn = ellSerial

// --- factories ------------------------------------------------------------

// goodFactory binds the chunk funcval once and honours the serial cutoff.
func goodFactory() runFn {
	chunk := rangeFn(csrChunk)
	return func(ex exec) {
		if ex.plan.Serial {
			csrSerial(ex)
			return
		}
		chunk(ex, 0, 1)
	}
}

// badFactoryConvInClosure rebuilds the funcval on every call.
func badFactoryConvInClosure() runFn {
	return func(ex exec) {
		if ex.plan.Serial {
			ellSerial(ex)
			return
		}
		chunk := rangeFn(ellChunk) // want `inside the per-call closure`
		chunk(ex, 0, 1)
	}
}

// badFactoryNoSerial fans out unconditionally.
func badFactoryNoSerial() runFn {
	chunk := rangeFn(ellChunk)
	return func(ex exec) { // want `never checks the plan's Serial cutoff`
		chunk(ex, 0, 1)
	}
}

// badFactoryLocalChunk converts a closure instead of a top-level function.
func badFactoryLocalChunk() runFn {
	local := func(ex exec, lo, hi int) {}
	chunk := rangeFn(local) // want `chunk must be a top-level function`
	return func(ex exec) {
		if ex.plan.Serial {
			return
		}
		chunk(ex, 0, 1)
	}
}

// badFactoryNoLit never returns a closure at all.
func badFactoryNoLit() runFn { // want `must return its per-call closure`
	return runFn(ellSerial)
}

// --- parameterized registrations ------------------------------------------

// paramName mirrors kernels.ParamName: a top-level name-templating helper
// whose literal first argument anchors the lint; the per-instance suffix is
// appended at registration.
func paramName(base string, tile int) string { return base }

var nameVar = "csr-par"

// pickChunk is a selector helper: it holds the per-parameter conversions so
// parameter-bound factories resolve a funcval at bind time.
func pickChunk(tile int) rangeFn {
	if tile == 2 {
		return rangeFn(csrChunk)
	}
	return rangeFn(ellChunk)
}

// goodParamFactory binds the parameter to a funcval once; the closure never
// sees the parameter.
func goodParamFactory(tile int) runFn {
	chunk := pickChunk(tile)
	return func(ex exec) {
		if ex.plan.Serial {
			csrSerial(ex)
			return
		}
		chunk(ex, 0, 1)
	}
}

// badParamFactory re-dispatches on the parameter inside the per-call closure.
func badParamFactory(tile int) runFn {
	chunk := rangeFn(csrChunk)
	return func(ex exec) {
		if ex.plan.Serial {
			csrSerial(ex)
			return
		}
		if tile == 2 { // want `references parameter tile inside the per-call closure`
			csrSerial(ex)
			return
		}
		chunk(ex, 0, 1)
	}
}

// --- registry -------------------------------------------------------------

func allKernels() []*Kernel { // want `format FormatDIA has no registered kernel` `format FormatHYB has no basic`
	base := []*Kernel{
		{Name: "csr-serial", Format: FormatCSR, run: csrSerial},
		{Name: "csr-par", Format: FormatCSR, Strategies: 1, run: goodFactory()},
		{Name: "csr-serial", Format: FormatCSR, run: csrSerial}, // want `duplicate kernel name`
		{Name: "coo-serial", Format: FormatCOO, run: cooSerial},
		{Name: "coo-norun", Format: FormatCOO},                                         // want `has no run function`
		{Name: "coo-closure", Format: FormatCOO, Strategies: 1, run: func(ex exec) {}}, // want `not a closure`
		{Name: "ell-serial", Format: FormatELL, run: ellSerial},
		{Name: "ell-var", Format: FormatELL, Strategies: 1, run: ellVar}, // want `top-level function or factory call`
		{Name: "ell-conv-in-closure", Format: FormatELL, Strategies: 2, run: badFactoryConvInClosure()},
		{Name: "ell-no-serial", Format: FormatELL, Strategies: 4, run: badFactoryNoSerial()},
		{Name: "ell-local-chunk", Format: FormatELL, Strategies: 8, run: badFactoryLocalChunk()},
		{Name: "ell-no-lit", Format: FormatELL, Strategies: 16, run: badFactoryNoLit()},
		{Name: "", Format: FormatCSR, run: csrSerial}, // want `non-empty string literal`
		// Templated instances: same literal base, per-instance suffix at
		// registration — no duplicate report, factories still checked.
		{Name: paramName("csr-par", 2), Format: FormatCSR, Strategies: 1, run: goodParamFactory(2)},
		{Name: paramName("csr-par", 8), Format: FormatCSR, Strategies: 1, run: goodParamFactory(8)},
		{Name: paramName("csr-par-bad", 2), Format: FormatCSR, Strategies: 1, run: badParamFactory(2)},
		{Name: paramName("", 4), Format: FormatCSR, run: csrSerial},      // want `non-empty string literal`
		{Name: paramName(nameVar, 4), Format: FormatCSR, run: csrSerial}, // want `non-empty string literal`
	}
	return append(base, hybKernels()...)
}

// hybKernels is a second provider; its entries are gathered too. HYB has
// only a strategic kernel, so the basic-kernel check fires (at allKernels).
func hybKernels() []*Kernel {
	return []*Kernel{
		{Name: "hyb-split", Format: FormatHYB, Strategies: 1, run: hybSerial},
	}
}

// goodBatchFactory binds its chunk once and honours the serial cutoff, like
// the single-vector factories.
func goodBatchFactory() batchFn {
	chunk := rangeFn(csrChunk)
	return func(ex exec, k int) {
		if ex.plan.Serial {
			csrBatch(ex, k)
			return
		}
		chunk(ex, 0, 1)
	}
}

// allBatchKernels is the batched registry root. FormatDIA has no batched
// kernel and FormatHYB has no strategy-free batched anchor; "csr-serial"
// legally reuses a single-vector name (separate namespace), while the
// duplicate within the batched namespace fires.
func allBatchKernels() []*BatchKernel { // want `format FormatDIA has no registered batch kernel` `format FormatHYB has no basic \(strategy-free\) batch kernel`
	return []*BatchKernel{
		{Name: "csr-batch", Format: FormatCSR, run: csrBatch},
		{Name: "csr-batch-par", Format: FormatCSR, Strategies: 1, run: goodBatchFactory()},
		{Name: "csr-batch", Format: FormatCSR, run: csrBatch}, // want `duplicate kernel name`
		{Name: "csr-serial", Format: FormatCSR, run: csrBatch},
		{Name: "coo-batch", Format: FormatCOO, run: cooBatch},
		{Name: "ell-batch", Format: FormatELL, run: ellBatch},
		{Name: "ell-batch-closure", Format: FormatELL, Strategies: 1, run: func(ex exec, k int) {}}, // want `not a closure`
		{Name: "hyb-batch-par", Format: FormatHYB, Strategies: 1, run: hybBatch},
	}
}

// newPlan is the partitioner; FormatDIA has no case.
func newPlan(f Format) *Plan { // want `format FormatDIA has no partitioner case`
	switch f {
	case FormatCSR, FormatCOO:
		return &Plan{Chunks: 4}
	case FormatELL:
		return &Plan{Chunks: 2}
	case FormatHYB:
		return &Plan{Chunks: 8}
	}
	return &Plan{Serial: true}
}

var _ = numFormats
