// Package kernelreg implements the smat-lint analyzer that cross-checks the
// kernel registry against the format universe and the plan layer.
//
// The analyzer activates on any package that declares a top-level function
// named allKernels (the kernel registry root; internal/kernels in this
// repository). It gathers every kernel entry registered by provider
// functions — top-level functions returning a slice of *Kernel or
// *BatchKernel — and checks:
//
//   - kernel names are unique, non-empty string literals (single-vector and
//     batched kernels live in separate lookup namespaces, so uniqueness is
//     per namespace); parameterized registrations may instead template the
//     name through a call to a top-level function whose first argument is a
//     non-empty literal base (e.g. ParamName("bcsr_batch_parallel", p) →
//     "bcsr_batch_parallel_t2") — such names get their suffix at
//     registration, so static uniqueness is left to the registry's runtime
//     duplicate panic;
//   - every entry's run field is a top-level function (optionally a generic
//     instantiation) or a call to a top-level factory — never a closure or a
//     variable, so registration is the only place function values are built
//     (the PR 2 funcval trick that keeps pooled dispatch allocation-free);
//   - every factory binds its chunk functions once, in the factory body:
//     conversions to the chunk type (rangeFn) must wrap top-level functions
//     and must not appear inside the returned per-call closure;
//   - a parameter-bound factory (one taking value parameters, like an unroll
//     depth or register-tile width) must resolve those parameters at bind
//     time: referencing a factory parameter inside the returned closure
//     would re-dispatch on the parameter every call instead of running the
//     pre-bound funcval;
//   - every factory-returned closure handles the serial plan cutoff (an
//     ex.plan.Serial branch), so small matrices never pay the fan-out;
//   - every exported constant of the registry's Format type — wherever that
//     type is defined — has at least one registered kernel and at least one
//     strategy-free basic kernel (the scoreboard anchor);
//   - once the package registers any batched kernel, every format constant
//     also has a batched kernel and a strategy-free batched anchor, so the
//     batched serving path never silently loses a format;
//   - the package's newPlan function has a partitioner case for every such
//     format constant.
package kernelreg

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"smat/internal/analysis/framework"
)

// Analyzer is the kernelreg analyzer.
var Analyzer = &framework.Analyzer{
	Name: "kernelreg",
	Doc:  "cross-check the kernel registry: top-level chunk funcs, unique names, full format and partitioner coverage",
	Run:  run,
}

// entry is one registered kernel gathered from a provider function.
type entry struct {
	lit        *ast.CompositeLit
	name       string
	nameOK     bool
	templated  bool // name built by a templating call; suffix applied at registration
	format     *types.Const
	strategies bool // true when the Strategies field is present and nonzero
	batch      bool // true for BatchKernel entries
	runExpr    ast.Expr
}

func run(pass *framework.Pass) error {
	decls := topLevelFuncs(pass.Files)
	if _, ok := decls["allKernels"]; !ok {
		return nil // not a kernel-registry package
	}

	entries, formatType := collectEntries(pass, decls)
	if len(entries) == 0 {
		return nil
	}

	checkNames(pass, entries)
	checkRunFields(pass, decls, entries)
	if formatType != nil {
		consts := formatConstants(pass, formatType)
		checkFormatCoverage(pass, decls["allKernels"], entries, consts)
		checkBatchCoverage(pass, decls, entries, consts)
		checkPlanCoverage(pass, decls, consts)
	}
	return nil
}

// topLevelFuncs indexes the package's function declarations by name.
func topLevelFuncs(files []*ast.File) map[string]*ast.FuncDecl {
	out := map[string]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil {
				out[fd.Name.Name] = fd
			}
		}
	}
	return out
}

// collectEntries gathers kernel composite literals from every provider (a
// top-level function returning a slice of Kernel or BatchKernel, by value or
// pointer) and the Format field's named type.
func collectEntries(pass *framework.Pass, decls map[string]*ast.FuncDecl) ([]*entry, *types.Named) {
	var entries []*entry
	var formatType *types.Named
	for _, fd := range decls {
		if fd.Body == nil || !returnsKernelSlice(pass, fd) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[lit]
			if !ok {
				return true
			}
			kind, ok := kernelTypeName(tv.Type)
			if !ok {
				return true
			}
			e := &entry{lit: lit, batch: kind == "BatchKernel"}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "Name":
					if b, ok := kv.Value.(*ast.BasicLit); ok {
						e.name = strings.Trim(b.Value, `"`)
						e.nameOK = e.name != ""
					} else if base, ok := templatedName(pass, kv.Value); ok {
						e.name = base
						e.nameOK = true
						e.templated = true
					}
					if !e.nameOK {
						pass.Reportf(kv.Value.Pos(), "kernel name must be a non-empty string literal or a templating call with a literal base")
					}
				case "Format":
					if tv, ok := pass.Info.Types[kv.Value]; ok && tv.Value != nil {
						if c := constObj(pass, kv.Value); c != nil {
							e.format = c
							if named, ok := c.Type().(*types.Named); ok {
								formatType = named
							}
						}
					}
					if e.format == nil {
						pass.Reportf(kv.Value.Pos(), "kernel Format must be a declared format constant")
					}
				case "Strategies":
					if tv, ok := pass.Info.Types[kv.Value]; ok && tv.Value != nil {
						if v, ok := constant.Int64Val(tv.Value); ok && v != 0 {
							e.strategies = true
						}
					} else {
						e.strategies = true // non-constant: assume strategic
					}
				case "run":
					e.runExpr = kv.Value
				}
			}
			entries = append(entries, e)
			return false
		})
	}
	return entries, formatType
}

func returnsKernelSlice(pass *framework.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.Info.Defs[fd.Name]
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	sl, ok := sig.Results().At(0).Type().Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, ok = kernelTypeName(sl.Elem())
	return ok
}

// kernelTypeName reports whether t is a (pointer to a) registry entry type
// and which of the two namespaces it belongs to.
func kernelTypeName(t types.Type) (string, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	switch name := named.Obj().Name(); name {
	case "Kernel", "BatchKernel":
		return name, true
	}
	return "", false
}

// constObj resolves the expression to the constant object it denotes.
func constObj(pass *framework.Pass, e ast.Expr) *types.Const {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		c, _ := pass.Info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := pass.Info.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}

// templatedName accepts a kernel name built by a call to a top-level
// templating function whose first argument is a non-empty string literal —
// the per-instance suffix (e.g. "_2x4", "_t8") is appended at registration,
// so the literal base is what the lint can anchor on statically.
func templatedName(pass *framework.Pass, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	if _, ok := topLevelFuncName(pass, call.Fun); !ok {
		return "", false
	}
	b, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return "", false
	}
	base := strings.Trim(b.Value, `"`)
	return base, base != ""
}

func checkNames(pass *framework.Pass, entries []*entry) {
	// Single-vector and batched kernels resolve through separate library
	// lookups, so a name may legally appear once in each namespace.
	seen := map[string]bool{}
	for _, e := range entries {
		if !e.nameOK {
			continue
		}
		if e.templated {
			// The suffix that makes templated instances unique is computed at
			// registration; the registry's duplicate panic is the arbiter.
			continue
		}
		key := e.name
		if e.batch {
			key = "batch\x00" + e.name
		}
		if seen[key] {
			pass.Reportf(e.lit.Pos(), "duplicate kernel name %q in the registry", e.name)
		}
		seen[key] = true
	}
}

// checkRunFields validates each entry's run field and the factories behind
// call-form entries.
func checkRunFields(pass *framework.Pass, decls map[string]*ast.FuncDecl, entries []*entry) {
	checkedFactories := map[string]bool{}
	for _, e := range entries {
		if e.runExpr == nil {
			pass.Reportf(e.lit.Pos(), "kernel %q has no run function", e.name)
			continue
		}
		switch v := ast.Unparen(e.runExpr).(type) {
		case *ast.FuncLit:
			pass.Reportf(v.Pos(), "kernel %q run must be a top-level function, not a closure", e.name)
		case *ast.CallExpr:
			name, ok := topLevelFuncName(pass, v.Fun)
			if !ok {
				pass.Reportf(v.Pos(), "kernel %q run factory must be a top-level function call", e.name)
				continue
			}
			if fd := decls[name]; fd != nil && !checkedFactories[name] {
				checkedFactories[name] = true
				checkFactory(pass, fd)
			}
		default:
			if _, ok := topLevelFuncName(pass, e.runExpr); !ok {
				pass.Reportf(e.runExpr.Pos(), "kernel %q run must be a top-level function or factory call", e.name)
			}
		}
	}
}

// topLevelFuncName resolves an identifier or generic instantiation to a
// package-scope function name.
func topLevelFuncName(pass *framework.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.IndexExpr:
		id, _ = e.X.(*ast.Ident)
	case *ast.IndexListExpr:
		id, _ = e.X.(*ast.Ident)
	}
	if id == nil {
		return "", false
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	if fn.Pkg() != pass.Pkg || pass.Pkg.Scope().Lookup(fn.Name()) != fn {
		return "", false
	}
	return fn.Name(), true
}

// checkFactory validates one parallel-kernel factory: chunk funcvals bound
// at the top of the factory (to top-level functions), a returned closure,
// and a serial-cutoff branch inside that closure.
func checkFactory(pass *framework.Pass, fd *ast.FuncDecl) {
	var returned []*ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if lit, ok := res.(*ast.FuncLit); ok {
					returned = append(returned, lit)
				}
			}
		}
		return true
	})
	if len(returned) == 0 {
		pass.Reportf(fd.Pos(), "kernel factory %s must return its per-call closure", fd.Name.Name)
		return
	}

	inReturned := func(pos ast.Node) *ast.FuncLit {
		for _, lit := range returned {
			if lit.Pos() <= pos.Pos() && pos.Pos() < lit.End() {
				return lit
			}
		}
		return nil
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isChunkConversion(pass, call) {
			return true
		}
		if inReturned(call) != nil {
			pass.Reportf(call.Pos(), "factory %s converts a chunk function inside the per-call closure; bind the funcval once in the factory body", fd.Name.Name)
			return true
		}
		if _, ok := topLevelFuncName(pass, call.Args[0]); !ok {
			pass.Reportf(call.Args[0].Pos(), "factory %s chunk must be a top-level function, not a closure or local value", fd.Name.Name)
		}
		return true
	})

	for _, lit := range returned {
		if !mentionsSerial(lit.Body) {
			pass.Reportf(lit.Pos(), "factory %s closure never checks the plan's Serial cutoff", fd.Name.Name)
		}
	}

	// Parameter-bound factories must resolve their parameters at bind time:
	// a factory parameter referenced inside the per-call closure re-dispatches
	// on the parameter every call instead of running a pre-bound funcval.
	params := map[types.Object]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return
	}
	for _, lit := range returned {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pass.Info.Uses[id]; obj != nil && params[obj] {
				pass.Reportf(id.Pos(), "factory %s references parameter %s inside the per-call closure; resolve it to a bound funcval in the factory body", fd.Name.Name, id.Name)
			}
			return true
		})
	}
}

// isChunkConversion reports a conversion to the package's chunk func type
// (a defined type named rangeFn).
func isChunkConversion(pass *framework.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 || !framework.IsTypeExpr(pass.Info, call.Fun) {
		return false
	}
	t := pass.Info.Types[call.Fun].Type
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "rangeFn"
}

func mentionsSerial(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "Serial" {
			found = true
		}
		return !found
	})
	return found
}

// formatConstants returns the exported constants of the format type from its
// defining package (which may be the analyzed package itself).
func formatConstants(pass *framework.Pass, formatType *types.Named) []*types.Const {
	scope := formatType.Obj().Pkg().Scope()
	sameType := func(t types.Type) bool {
		named, ok := t.(*types.Named)
		return ok && named.Obj() == formatType.Obj()
	}
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && c.Exported() && sameType(c.Type()) {
			out = append(out, c)
		}
	}
	return out
}

func checkFormatCoverage(pass *framework.Pass, at *ast.FuncDecl, entries []*entry, consts []*types.Const) {
	covered := map[string]bool{}
	basic := map[string]bool{}
	for _, e := range entries {
		if e.format == nil || e.batch {
			continue
		}
		covered[e.format.Name()] = true
		if !e.strategies {
			basic[e.format.Name()] = true
		}
	}
	for _, c := range consts {
		if !covered[c.Name()] {
			pass.Reportf(at.Pos(), "format %s has no registered kernel", c.Name())
		} else if !basic[c.Name()] {
			pass.Reportf(at.Pos(), "format %s has no basic (strategy-free) kernel to anchor the scoreboard", c.Name())
		}
	}
}

// checkBatchCoverage mirrors checkFormatCoverage over the batched namespace:
// once the package registers any batched kernel, every format constant must
// keep a batched kernel and a strategy-free batched anchor. Reported at the
// allBatchKernels root when one exists, else at allKernels.
func checkBatchCoverage(pass *framework.Pass, decls map[string]*ast.FuncDecl, entries []*entry, consts []*types.Const) {
	covered := map[string]bool{}
	basic := map[string]bool{}
	any := false
	for _, e := range entries {
		if !e.batch || e.format == nil {
			continue
		}
		any = true
		covered[e.format.Name()] = true
		if !e.strategies {
			basic[e.format.Name()] = true
		}
	}
	if !any {
		return
	}
	at := decls["allBatchKernels"]
	if at == nil {
		at = decls["allKernels"]
	}
	for _, c := range consts {
		if !covered[c.Name()] {
			pass.Reportf(at.Pos(), "format %s has no registered batch kernel", c.Name())
		} else if !basic[c.Name()] {
			pass.Reportf(at.Pos(), "format %s has no basic (strategy-free) batch kernel", c.Name())
		}
	}
}

// checkPlanCoverage requires a newPlan function whose switch cases mention
// every format constant.
func checkPlanCoverage(pass *framework.Pass, decls map[string]*ast.FuncDecl, consts []*types.Const) {
	np, ok := decls["newPlan"]
	if !ok || np.Body == nil {
		if ak := decls["allKernels"]; ak != nil {
			pass.Reportf(ak.Pos(), "kernel package has no newPlan partitioner function")
		}
		return
	}
	cased := map[string]bool{}
	ast.Inspect(np.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if c := constObj(pass, e); c != nil {
				cased[c.Name()] = true
			}
		}
		return true
	})
	for _, c := range consts {
		if !cased[c.Name()] {
			pass.Reportf(np.Pos(), "format %s has no partitioner case in newPlan", c.Name())
		}
	}
}
