package kernelreg

import (
	"testing"

	"smat/internal/analysis/framework/analysistest"
)

func TestKernelReg(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/kr")
}
