package syncsafety

import (
	"testing"

	"smat/internal/analysis/framework/analysistest"
)

func TestSyncSafety(t *testing.T) {
	analysistest.Run(t, Analyzer, "./testdata/src/ss")
}
