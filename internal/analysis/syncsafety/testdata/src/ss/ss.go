// Package ss is the syncsafety analyzer fixture.
package ss

import (
	"sync"
	"sync/atomic"
)

// mat mirrors kernels.Mat: a value type with an atomic plan slot.
type mat struct {
	rows int
	plan atomic.Pointer[int]
}

// shard mirrors the decision cache shard: a mutex-guarded map.
type shard struct {
	mu      sync.Mutex
	entries map[int]int
}

// pool holds guarded state behind a pointer: copying pool itself is fine.
type pool struct {
	s *shard
}

// counters uses raw 64-bit cells after a narrow field: misaligned on 386.
type counters struct {
	flag bool
	hits int64
	miss uint64
}

// alignedCounters keeps the 64-bit cell first.
type alignedCounters struct {
	hits int64
	flag bool
}

// --- positive cases -------------------------------------------------------

func takesMatByValue(m mat) int { // want `parameter passes ss.mat by value`
	return m.rows
}

func returnsShardByValue() shard { // want `result passes ss.shard by value`
	return shard{}
}

func (m mat) valueReceiver() int { // want `receiver passes ss.mat by value`
	return m.rows
}

var matSlice []mat         // want `slice of ss.mat stores sync state`
var shardMap map[int]shard // want `map of ss.shard stores sync state`
var matChan chan mat       // want `channel of ss.mat stores sync state`

func copies(p *mat, ms []mat) { // want `slice of ss.mat stores sync state`
	m := *p // want `copies ss.mat by value`
	_ = m.rows
	n := ms[0] // want `copies ss.mat by value`
	_ = n.rows
	for _, v := range ms { // want `range clause copies ss.mat by value`
		_ = v.rows
	}
	sink(*p) // want `passes ss.mat by value`
}

func misaligned(c *counters) {
	atomic.AddInt64(&c.hits, 1) // want `not 8-byte aligned`
	atomic.LoadUint64(&c.miss)  // want `not 8-byte aligned`
}

// --- negative cases -------------------------------------------------------

func takesMatPointer(m *mat) int { return m.rows }

func takesPool(p pool) *shard { return p.s } // pool holds only a pointer

var matPtrSlice []*mat
var shardArray [4]shard // fixed arrays store in place: allowed

func initOK() {
	m := mat{rows: 1} // fresh literal: initialisation, not a copy
	_ = m.rows
	s := newShard() // call results are fresh values
	_ = s
}

func aligned(a *alignedCounters) {
	atomic.AddInt64(&a.hits, 1)
}

func newShard() *shard { return &shard{entries: map[int]int{}} }

func sink(v any) { _ = v }
