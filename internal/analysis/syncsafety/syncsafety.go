// Package syncsafety implements the smat-lint analyzer guarding the
// concurrency-bearing value types beyond what vet's copylocks covers.
//
// A type is "guarded" when it transitively contains state from sync or
// sync/atomic by value — kernels.Mat (atomic plan slot), the worker pool
// state (mutex + barrier counters), the decision-cache shards (mutex + LRU).
// Copying such a value forks its lock or atomic cell and silently splits the
// synchronisation domain. The analyzer reports:
//
//   - by-value parameters, results and method receivers of guarded types;
//   - assignments and range clauses that copy a guarded value out of a
//     variable, field, element or dereference;
//   - call arguments passing a guarded value by value;
//   - slice, map and channel types with guarded element (or key) types:
//     append reallocation and map rehashing relocate the values bytewise,
//     and map elements are unaddressable, so their locks are unusable
//     (fixed-size arrays are allowed — storage in place is fine);
//   - raw int64/uint64 struct fields passed to sync/atomic functions while
//     not 8-byte aligned under 32-bit layout rules — these fault on 386/ARM;
//     move such fields to the front of the struct or use atomic.Int64, which
//     carries its own alignment.
package syncsafety

import (
	"go/ast"
	"go/types"
	"strings"

	"smat/internal/analysis/framework"
)

// Analyzer is the syncsafety analyzer.
var Analyzer = &framework.Analyzer{
	Name: "syncsafety",
	Doc:  "report copies and hostile storage of sync/atomic-bearing values, and misaligned 64-bit atomics",
	Run:  run,
}

type state struct {
	pass *framework.Pass
	memo map[types.Type]string // type -> witness ("sync.Mutex") or ""
}

func run(pass *framework.Pass) error {
	s := &state{pass: pass, memo: map[types.Type]string{}}

	framework.Preorder(pass.Files, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			s.checkSignature(n)
		case *ast.ArrayType:
			if n.Len == nil { // slice, not array
				s.checkElem(n, n.Elt, "slice")
			}
		case *ast.MapType:
			s.checkElem(n, n.Key, "map key")
			s.checkElem(n, n.Value, "map")
		case *ast.ChanType:
			s.checkElem(n, n.Value, "channel")
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue // discarded, nothing retains the copy
				}
				s.checkCopy(n.Rhs[i], "copies")
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				s.checkCopy(v, "copies")
			}
		case *ast.RangeStmt:
			if n.Value != nil && !isBlank(n.Value) {
				if t := s.exprType(n.Value); t != nil {
					if w := s.guarded(t); w != "" {
						pass.Reportf(n.Value.Pos(), "range clause copies %s by value; it contains %s", typeName(t), w)
					}
				}
			}
		case *ast.CallExpr:
			s.checkCall(n)
		}
	})
	return nil
}

// guarded returns a witness description ("sync.Mutex") when t transitively
// holds sync or sync/atomic state by value, or "" otherwise. Indirection
// (pointers, slices, maps, channels, funcs) breaks the chain: a struct
// holding *sync.Mutex copies fine.
func (s *state) guarded(t types.Type) string {
	if t == nil {
		return ""
	}
	if w, ok := s.memo[t]; ok {
		return w
	}
	s.memo[t] = "" // cycle guard
	w := s.guardedUncached(t)
	s.memo[t] = w
	return w
}

func (s *state) guardedUncached(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				return typeName(t)
			}
			return "" // sync.Locker etc.: interfaces carry no state
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if w := s.guarded(u.Field(i).Type()); w != "" {
				return w
			}
		}
	case *types.Array:
		return s.guarded(u.Elem())
	}
	return ""
}

func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func (s *state) checkSignature(fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			tv, ok := s.pass.Info.Types[f.Type]
			if !ok {
				continue
			}
			if w := s.guarded(tv.Type); w != "" {
				s.pass.Reportf(f.Type.Pos(), "%s passes %s by value; it contains %s (copying splits the sync state)",
					what, typeName(tv.Type), w)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

func (s *state) checkElem(at ast.Node, elt ast.Expr, container string) {
	tv, ok := s.pass.Info.Types[elt]
	if !ok {
		return
	}
	if w := s.guarded(tv.Type); w != "" {
		s.pass.Reportf(at.Pos(), "%s of %s stores sync state (%s) by value; growth relocates it bytewise — store pointers instead",
			container, typeName(tv.Type), w)
	}
}

// checkCopy reports expr when it reads a guarded value out of an existing
// location (variable, field, element, dereference). Fresh composite
// literals and call results are initialisation, not copies.
func (s *state) checkCopy(expr ast.Expr, verb string) {
	src := ast.Unparen(expr)
	switch src.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	tv, ok := s.pass.Info.Types[src]
	if !ok || tv.Type == nil || tv.IsType() {
		return
	}
	// Identifiers must denote variables (not types or package names).
	if id, ok := src.(*ast.Ident); ok {
		if _, isVar := s.pass.Info.Uses[id].(*types.Var); !isVar {
			return
		}
	}
	if w := s.guarded(tv.Type); w != "" {
		s.pass.Reportf(expr.Pos(), "%s %s by value; it contains %s (copying splits the sync state)", verb, typeName(tv.Type), w)
	}
}

// atomic64Funcs maps sync/atomic functions operating on raw 64-bit cells.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

func (s *state) checkCall(call *ast.CallExpr) {
	// By-value guarded arguments.
	for _, arg := range call.Args {
		s.checkCopy(arg, "passes")
	}

	// Misaligned raw 64-bit atomics.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || framework.PkgNameOf(s.pass.Info, sel) != "sync/atomic" || !atomic64Funcs[sel.Sel.Name] || len(call.Args) == 0 {
		return
	}
	addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok {
		return
	}
	fieldSel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := s.pass.Info.Selections[fieldSel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	off, path, ok := offset32(selection)
	if !ok {
		return
	}
	if off%8 != 0 {
		wrapper := "Int64"
		if strings.HasSuffix(sel.Sel.Name, "Uint64") {
			wrapper = "Uint64"
		}
		s.pass.Reportf(call.Pos(),
			"atomic %s on field %s at 32-bit offset %d: not 8-byte aligned on 386/ARM — move the field first or use atomic.%s",
			sel.Sel.Name, path, off, wrapper)
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// exprType resolves an expression's type, falling back to the Defs map for
// identifiers introduced by the expression itself (range clauses, :=).
func (s *state) exprType(e ast.Expr) types.Type {
	if tv, ok := s.pass.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj, ok := s.pass.Info.Defs[id]; ok && obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// offset32 computes the byte offset of the selected field under 32-bit (386)
// layout, following the selection's embedded-field index path.
func offset32(sel *types.Selection) (int64, string, bool) {
	sizes := types.SizesFor("gc", "386")
	t := sel.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	var off int64
	var pathParts []string
	for _, idx := range sel.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, "", false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offsets := sizes.Offsetsof(fields)
		off += offsets[idx]
		pathParts = append(pathParts, st.Field(idx).Name())
		t = st.Field(idx).Type()
	}
	return off, strings.Join(pathParts, "."), true
}
