package framework

import (
	"go/types"
	"strings"
	"testing"
)

const fixtureBase = "smat/internal/analysis/framework/testdata/src"

func TestLoadMultiPackageDeps(t *testing.T) {
	// Listing only the chain root must still type-check it fully: mid and
	// leaf resolve through export data, not source.
	pkgs, err := Load(LoadConfig{}, "./testdata/src/dep/top")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1 (deps must not become targets)", len(pkgs))
	}
	p := pkgs[0]
	if len(p.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", p.TypeErrors)
	}
	if got := p.Types.Path(); got != fixtureBase+"/dep/top" {
		t.Errorf("import path = %q", got)
	}
	// The import chain must be visible in the type info.
	var sawMid bool
	for _, imp := range p.Types.Imports() {
		if strings.HasSuffix(imp.Path(), "/dep/mid") {
			sawMid = true
		}
	}
	if !sawMid {
		t.Errorf("top's imports %v missing dep/mid", p.Types.Imports())
	}

	// Listing all three at once yields three distinct target packages.
	pkgs, err = Load(LoadConfig{}, "./testdata/src/dep/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("dep/... matched %d packages, want 3", len(pkgs))
	}
}

func TestLoadGenericsViaExportData(t *testing.T) {
	// genuse instantiates genlib generics; genlib is NOT a listed target, so
	// its type parameters must survive the export-data round trip.
	pkgs, err := Load(LoadConfig{}, "./testdata/src/generics/genuse")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if len(p.TypeErrors) > 0 {
		t.Fatalf("type errors importing generic package: %v", p.TypeErrors)
	}
	obj := p.Types.Scope().Lookup("UsePair")
	if obj == nil {
		t.Fatal("UsePair not in scope")
	}
	sig := obj.Type().(*types.Signature)
	ret := sig.Results().At(0).Type()
	named, ok := ret.(*types.Named)
	if !ok {
		t.Fatalf("UsePair result is %T, want instantiated named type", ret)
	}
	if named.TypeArgs() == nil || named.TypeArgs().Len() != 1 {
		t.Errorf("Pair instantiation lost its type arguments: %v", named)
	}
	if named.Obj().Pkg().Path() != fixtureBase+"/generics/genlib" {
		t.Errorf("Pair's origin package = %q", named.Obj().Pkg().Path())
	}
}

func TestLoadTypeErrorPackageFailsGracefully(t *testing.T) {
	pkgs, err := Load(LoadConfig{}, "./testdata/src/typeerr")
	if err == nil {
		t.Fatalf("expected a load error for a type-broken package, got %d packages", len(pkgs))
	}
	// The driver maps this error to exit 2; the message must name the package
	// so the failure is actionable.
	if !strings.Contains(err.Error(), "typeerr") {
		t.Errorf("load error does not identify the broken package: %v", err)
	}
}

func TestLoadCachedReturnsSameResult(t *testing.T) {
	a, err := LoadCached(LoadConfig{}, "./testdata/src/dep/leaf")
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadCached(LoadConfig{}, "./testdata/src/dep/leaf")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Errorf("cache miss: second load returned a different package object")
	}
	// A different configuration must not alias the first entry.
	c, err := LoadCached(LoadConfig{Tests: true}, "./testdata/src/dep/leaf")
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == 1 && c[0] == a[0] {
		t.Errorf("distinct configs must not share cache entries")
	}
}

func TestGoarchResolution(t *testing.T) {
	if got := goarch([]string{"GOARCH=386"}); got != "386" {
		t.Errorf("goarch from env = %q, want 386", got)
	}
	if got := goarch([]string{"GOARCH=arm", "GOARCH=386"}); got != "386" {
		t.Errorf("last GOARCH must win, got %q", got)
	}
	if got := goarch(nil); got == "" {
		t.Errorf("goarch must fall back to a non-empty host arch")
	}
}
