package framework

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc type-checks src (a full file) and returns the named function's
// declaration plus the types.Info.
func parseFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil
}

// findStmt locates the first node in the CFG whose source text position
// matches a predicate; used to anchor assertions to specific statements.
func findNode(c *CFG, pred func(ast.Node) bool) (Pos, ast.Node) {
	for bi, bl := range c.Blocks {
		for ni, n := range bl.Nodes {
			if pred(n) {
				return Pos{Block: bi, Index: ni}, n
			}
		}
	}
	return Pos{Block: -1}, nil
}

func isCallNamed(n ast.Node, fn string) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == fn
}

const cfgSrc = `package p

func a() {}
func b() {}
func c() {}
func d() {}

func branchy(cond bool) {
	a()
	if cond {
		b()
	} else {
		c()
	}
	d()
}

func loopy(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		total += i
	}
	return total
}

func switchy(n int) {
	switch n {
	case 1:
		a()
	case 2:
		b()
	default:
		c()
	}
	d()
}

func early(cond bool) {
	if cond {
		a()
		return
	}
	b()
}

func defs(cond bool) int {
	x := 1
	if cond {
		x = 2
	}
	return x
}

func zeroThenSet(cond bool) *int {
	var p *int
	if cond {
		v := 1
		p = &v
	}
	return p
}
`

func TestCFGBranchDominance(t *testing.T) {
	fd, _ := parseFunc(t, cfgSrc, "branchy")
	c := BuildCFG(fd.Body)

	aPos, _ := findNode(c, func(n ast.Node) bool { return isCallNamed(n, "a") })
	bPos, _ := findNode(c, func(n ast.Node) bool { return isCallNamed(n, "b") })
	cPos, _ := findNode(c, func(n ast.Node) bool { return isCallNamed(n, "c") })
	dPos, _ := findNode(c, func(n ast.Node) bool { return isCallNamed(n, "d") })
	for _, p := range []Pos{aPos, bPos, cPos, dPos} {
		if p.Block < 0 {
			t.Fatalf("call not found in CFG:\n%s", c)
		}
	}

	// a() runs on every path: it dominates both arms and the join.
	for _, q := range []Pos{bPos, cPos, dPos} {
		if !aPos.Before(q, c) {
			t.Errorf("a() should execute before block %d on all paths", q.Block)
		}
	}
	// Neither arm dominates the join.
	if bPos.Before(dPos, c) && bPos.Block != dPos.Block {
		t.Errorf("then-arm b() must not dominate join d()")
	}
	if cPos.Before(dPos, c) && cPos.Block != dPos.Block {
		t.Errorf("else-arm c() must not dominate join d()")
	}
	// The arms are mutually exclusive.
	if c.Dominates(bPos.Block, cPos.Block) || c.Dominates(cPos.Block, bPos.Block) {
		t.Errorf("if arms must not dominate each other")
	}
}

func TestCFGLoopEdges(t *testing.T) {
	fd, _ := parseFunc(t, cfgSrc, "loopy")
	c := BuildCFG(fd.Body)

	retPos, _ := findNode(c, func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok })
	brkPos, _ := findNode(c, func(n ast.Node) bool {
		b, ok := n.(*ast.BranchStmt)
		return ok && b.Tok == token.BREAK
	})
	bodyPos, _ := findNode(c, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && as.Tok == token.ADD_ASSIGN
	})
	if retPos.Block < 0 || brkPos.Block < 0 || bodyPos.Block < 0 {
		t.Fatalf("statements not all present in CFG:\n%s", c)
	}

	// The return is reachable both via loop exit and via break.
	if !c.Reachable(brkPos.Block)[retPos.Block] {
		t.Errorf("break must reach the return")
	}
	if !c.Reachable(bodyPos.Block)[retPos.Block] {
		t.Errorf("loop body must reach the return via the back edge and exit")
	}
	// Loop body does not dominate the return (break path skips total += i... but
	// break is before the add; the add block must not dominate return).
	if c.Dominates(bodyPos.Block, retPos.Block) {
		t.Errorf("loop body tail must not dominate the function exit")
	}
	// The loop body can re-reach itself (back edge).
	if !c.Reachable(bodyPos.Block)[bodyPos.Block] {
		t.Errorf("loop body should be on a cycle")
	}
}

func TestCFGSwitchAndReturn(t *testing.T) {
	fd, _ := parseFunc(t, cfgSrc, "switchy")
	c := BuildCFG(fd.Body)
	aPos, _ := findNode(c, func(n ast.Node) bool { return isCallNamed(n, "a") })
	bPos, _ := findNode(c, func(n ast.Node) bool { return isCallNamed(n, "b") })
	dPos, _ := findNode(c, func(n ast.Node) bool { return isCallNamed(n, "d") })
	// Every case reaches the join; no case dominates it (default exists).
	for _, p := range []Pos{aPos, bPos} {
		if !c.Reachable(p.Block)[dPos.Block] {
			t.Errorf("case block %d must reach the join", p.Block)
		}
		if c.Dominates(p.Block, dPos.Block) {
			t.Errorf("case block %d must not dominate the join", p.Block)
		}
	}

	fd, _ = parseFunc(t, cfgSrc, "early")
	c = BuildCFG(fd.Body)
	aPos, _ = findNode(c, func(n ast.Node) bool { return isCallNamed(n, "a") })
	bPos, _ = findNode(c, func(n ast.Node) bool { return isCallNamed(n, "b") })
	// a(); return — nothing after the return is reachable from a's block
	// except via... nothing: b() must not be reachable from a().
	if c.Reachable(aPos.Block)[bPos.Block] {
		t.Errorf("early return arm must not reach the else path")
	}
}

func TestReachingDefs(t *testing.T) {
	fd, info := parseFunc(t, cfgSrc, "defs")
	c := BuildCFG(fd.Body)
	r := BuildReachingDefs(c, info, SigVars(info, fd.Recv, fd.Type))

	retPos, retNode := findNode(c, func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok })
	ret := retNode.(*ast.ReturnStmt)
	xv := info.Uses[ret.Results[0].(*ast.Ident)].(*types.Var)

	ds := r.At(xv, retPos)
	if len(ds) != 2 {
		t.Fatalf("expected both definitions of x to reach the return, got %d", len(ds))
	}

	// At the x = 2 assignment itself, only x := 1 reaches.
	asgPos, _ := findNode(c, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		return ok && as.Tok == token.ASSIGN
	})
	ds = r.At(xv, asgPos)
	if len(ds) != 1 {
		t.Fatalf("expected one reaching def at x = 2, got %d", len(ds))
	}
	if ds[0].RHS == nil {
		t.Errorf("x := 1 definition should carry its RHS")
	}
}

func TestReachingDefsZeroValue(t *testing.T) {
	fd, info := parseFunc(t, cfgSrc, "zeroThenSet")
	c := BuildCFG(fd.Body)
	r := BuildReachingDefs(c, info, SigVars(info, fd.Recv, fd.Type))

	retPos, retNode := findNode(c, func(n ast.Node) bool { _, ok := n.(*ast.ReturnStmt); return ok })
	ret := retNode.(*ast.ReturnStmt)
	pv := info.Uses[ret.Results[0].(*ast.Ident)].(*types.Var)

	ds := r.At(pv, retPos)
	if len(ds) != 2 {
		t.Fatalf("expected zero-value and assigned defs of p at return, got %d", len(ds))
	}
	var sawZero bool
	for _, d := range ds {
		if d.Zero {
			sawZero = true
		}
	}
	if !sawZero {
		t.Errorf("var p *int declaration should be a zero-value definition")
	}
}

func TestParamsAreEntryDefs(t *testing.T) {
	fd, info := parseFunc(t, cfgSrc, "defs")
	c := BuildCFG(fd.Body)
	params := SigVars(info, fd.Recv, fd.Type)
	if len(params) != 1 {
		t.Fatalf("expected 1 param var, got %d", len(params))
	}
	r := BuildReachingDefs(c, info, params)
	ds := r.At(params[0], Pos{Block: 0, Index: 0})
	if len(ds) != 1 || !ds[0].Param {
		t.Fatalf("parameter should have exactly its entry definition, got %+v", ds)
	}
}
