package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds soft type-check errors. Loading proceeds past them
	// (fixture packages under test are still analyzable), but drivers should
	// surface them.
	TypeErrors []error
}

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is the working directory for the go tool ("" = current).
	Dir string
	// Tests includes in-package _test.go files in the analyzed syntax.
	Tests bool
	// Env appends to the go tool's environment.
	Env []string
}

// goarch resolves the architecture the loader should size types for: an
// explicit GOARCH in the config env wins (cross-arch lint runs set it there
// or in the process environment), otherwise the host architecture. Without
// this, a `GOARCH=386 smat-lint` run would check 64-bit-atomic alignment
// against the host's 8-byte word and miss every 32-bit violation.
func goarch(env []string) string {
	for i := len(env) - 1; i >= 0; i-- {
		if v, ok := strings.CutPrefix(env[i], "GOARCH="); ok && v != "" {
			return v
		}
	}
	if v := os.Getenv("GOARCH"); v != "" {
		return v
	}
	return runtime.GOARCH
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath  string
	Dir         string
	Export      string
	DepOnly     bool
	ForTest     string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	Incomplete  bool
	Error       *struct{ Err string }
}

// Load lists the given package patterns with the go tool, then parses and
// type-checks each matched package from source. Dependencies are resolved
// through compiler export data produced by `go list -export` — the same
// offline strategy cmd/vet's unitchecker uses — so no network access or
// third-party machinery is involved.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Resolve the target set first: `-deps -test` below lists the whole
	// dependency closure and marks roots inconsistently across test variants,
	// so the authoritative "what did the pattern match" answer comes from a
	// plain go list.
	wantCmd := exec.Command("go", append([]string{"list"}, patterns...)...)
	wantCmd.Dir = cfg.Dir
	wantCmd.Env = append(os.Environ(), cfg.Env...)
	var wantErr bytes.Buffer
	wantCmd.Stderr = &wantErr
	wantOut, err := wantCmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, wantErr.String())
	}
	want := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(wantOut)), "\n") {
		if line != "" {
			want[line] = true
		}
	}

	args := []string{"list", "-e", "-export", "-json", "-deps"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), cfg.Env...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		// Test variants are listed as "path [root.test]"; their export data
		// describes the augmented package, which the plain key must not
		// shadow. Synthesized test mains ("path.test") are skipped entirely.
		bracketed := strings.Contains(p.ImportPath, " [")
		if p.Export != "" && !bracketed {
			exports[p.ImportPath] = p.Export
		}
		if bracketed || p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") || !want[p.ImportPath] {
			continue
		}
		want[p.ImportPath] = false // dedupe
		q := p
		targets = append(targets, &q)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		files := append(append([]string{}, t.GoFiles...), t.CgoFiles...)
		if cfg.Tests {
			files = append(files, t.TestGoFiles...)
		}
		if len(files) == 0 {
			continue
		}
		var syntax []*ast.File
		for _, name := range files {
			path := name
			if !filepath.IsAbs(path) {
				path = filepath.Join(t.Dir, name)
			}
			af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", path, err)
			}
			syntax = append(syntax, af)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		pkg := &Package{ImportPath: t.ImportPath, Dir: t.Dir, Fset: fset, Syntax: syntax, Info: info}
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", goarch(cfg.Env)),
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tpkg, _ := conf.Check(t.ImportPath, fset, syntax, info)
		pkg.Types = tpkg
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
