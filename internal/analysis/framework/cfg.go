// cfg.go implements the framework's SSA-lite layer: a statement-level
// control-flow graph over one function body, block dominance, forward
// reachability, and reaching definitions for local variables. It is the
// substrate the dataflow analyzers (atomicorder) query for "does this
// initialization dominate that publish?" and "which definitions reach this
// use?" questions that a purely syntactic walk cannot answer.
//
// The graph is deliberately modest — no SSA renaming, no interprocedural
// edges — but it is sound for the protocols it checks: every statement of the
// source body appears in exactly one block, conditions are recorded in the
// block that evaluates them, and an edge exists for every possible intra-
// function transfer (if/for/range/switch/select/break/continue/return).
// Nested function literals are NOT descended into: a closure body is its own
// function with its own CFG (see FuncLitsIn).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one straight-line run of statements. Nodes holds the statements
// (and branch conditions) in execution order; a node is an ast.Stmt from the
// source body, or an ast.Expr for a condition evaluated at the end of the
// block (if/for/switch tags).
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Blocks[0] is the entry
// block.
type CFG struct {
	Blocks []*Block

	dom [][]bool // dom[i][j]: block j dominates block i (lazily built)
}

// Pos locates a node inside a CFG: the block index and the node's position
// within the block.
type Pos struct {
	Block, Index int
}

// Before reports whether p executes strictly before q on every path when
// both are on one (p's block dominating q's, or earlier in the same block).
func (p Pos) Before(q Pos, c *CFG) bool {
	if p.Block == q.Block {
		return p.Index < q.Index
	}
	return c.Dominates(p.Block, q.Block)
}

// BuildCFG constructs the control-flow graph of a function body. A nil body
// (declaration without implementation) yields a single empty entry block.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}}
	b.cur = b.newBlock()
	if body != nil {
		b.stmtList(body.List)
	}
	return b.cfg
}

type loopFrame struct {
	label       string
	brk, cont   *Block
	isSwitch    bool
	nextClause  *Block // fallthrough target inside a switch
	hasFallthru bool
}

type cfgBuilder struct {
	cfg   *CFG
	cur   *Block
	loops []loopFrame
}

func (b *cfgBuilder) newBlock() *Block {
	bl := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, bl)
	return bl
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt appends one statement to the graph. label names the statement when it
// was wrapped in a LabeledStmt (break/continue targets).
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.cur
		join := b.newBlock()
		thenBlock := b.newBlock()
		b.edge(condBlock, thenBlock)
		b.cur = thenBlock
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseBlock := b.newBlock()
			b.edge(condBlock, elseBlock)
			b.cur = elseBlock
			b.stmt(s.Else, "")
			b.edge(b.cur, join)
		} else {
			b.edge(condBlock, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.edge(b.cur, head)
		if s.Cond != nil {
			b.cur = head
			b.add(s.Cond)
			b.edge(head, exit) // condition false
		}
		b.edge(head, body)
		b.loops = append(b.loops, loopFrame{label: label, brk: exit, cont: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		if s.Post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.add(s.Post)
			b.edge(post, head)
		} else {
			b.edge(b.cur, head)
		}
		if s.Cond == nil {
			// for {}: the only way out is break/return.
		}
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(s) // the range clause itself: defines Key/Value each iteration
		b.edge(head, body)
		b.edge(head, exit)
		b.loops = append(b.loops, loopFrame{label: label, brk: exit, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, head)
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s, label)

	case *ast.SelectStmt:
		head := b.cur
		join := b.newBlock()
		b.loops = append(b.loops, loopFrame{label: label, brk: join, isSwitch: true})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			clause := b.newBlock()
			b.edge(head, clause)
			b.cur = clause
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(s.Body.List) == 0 {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ReturnStmt:
		b.add(s)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.target(s.Label, func(f loopFrame) *Block { return f.brk }, true); t != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := b.target(s.Label, func(f loopFrame) *Block { return f.cont }, false); t != nil {
				b.edge(b.cur, t)
			}
		case token.FALLTHROUGH:
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].isSwitch {
					b.edge(b.cur, b.loops[i].nextClause)
					break
				}
			}
		case token.GOTO:
			// Approximated as a terminator: no goto exists in the gated code,
			// and a missing edge only under-approximates reachability.
		}
		b.cur = b.newBlock() // unreachable continuation

	default:
		// ExprStmt, AssignStmt, DeclStmt, SendStmt, IncDecStmt, GoStmt,
		// DeferStmt, EmptyStmt: straight-line.
		b.add(s)
	}
}

func (b *cfgBuilder) switchStmt(s ast.Stmt, label string) {
	var init ast.Stmt
	var tag ast.Node
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, tag, clauses = s.Init, s.Tag, s.Body.List
	case *ast.TypeSwitchStmt:
		init, tag, clauses = s.Init, s.Assign, s.Body.List
	}
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	head := b.cur
	join := b.newBlock()
	hasDefault := false

	// Build clause blocks first so fallthrough can point at the next one.
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
	}
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		var next *Block
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		b.loops = append(b.loops, loopFrame{label: label, brk: join, isSwitch: true, nextClause: next})
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, join)
	}
	if !hasDefault || len(clauses) == 0 {
		b.edge(head, join)
	}
	b.cur = join
}

// target resolves a break/continue destination; orSwitch also accepts switch
// frames (break applies to them, continue does not).
func (b *cfgBuilder) target(label *ast.Ident, pick func(loopFrame) *Block, orSwitch bool) *Block {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if f.isSwitch && !orSwitch {
			continue
		}
		if label != nil && f.label != label.Name {
			continue
		}
		if t := pick(f); t != nil {
			return t
		}
	}
	return nil
}

// Dominates reports whether block a dominates block b: every path from the
// entry to b passes through a. A block dominates itself. Unreachable blocks
// are treated as dominated by everything (standard fixpoint initialisation),
// which errs toward reporting for dead code.
func (c *CFG) Dominates(a, b int) bool {
	if c.dom == nil {
		c.buildDominators()
	}
	return c.dom[b][a]
}

func (c *CFG) buildDominators() {
	n := len(c.Blocks)
	c.dom = make([][]bool, n)
	for i := range c.dom {
		c.dom[i] = make([]bool, n)
		if i == 0 {
			c.dom[0][0] = true
			continue
		}
		for j := range c.dom[i] {
			c.dom[i][j] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for i := 1; i < n; i++ {
			bl := c.Blocks[i]
			next := make([]bool, n)
			if len(bl.Preds) > 0 {
				for j := range next {
					next[j] = true
				}
				for _, p := range bl.Preds {
					for j := range next {
						next[j] = next[j] && c.dom[p.Index][j]
					}
				}
			}
			next[i] = true
			for j := range next {
				if next[j] != c.dom[i][j] {
					c.dom[i] = next
					changed = true
					break
				}
			}
		}
	}
}

// Reachable returns the set of block indices reachable from start by
// following successor edges (start itself is included only when it lies on a
// cycle).
func (c *CFG) Reachable(start int) map[int]bool {
	seen := map[int]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		for _, s := range b.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				walk(s)
			}
		}
	}
	walk(c.Blocks[start])
	return seen
}

// DefSite is one definition of a local variable: an assignment, a var
// declaration, a range clause, a type-switch binding, or a function
// parameter. RHS is the defining expression when the definition has exactly
// one (nil for zero-value declarations, range/type-switch bindings, params
// and multi-value assignments).
type DefSite struct {
	Var   *types.Var
	Node  ast.Node
	RHS   ast.Expr
	Param bool // parameter or receiver: defined at entry, always initialized
	Zero  bool // `var x T` with no initializer: the zero value
	Pos   Pos  // position in the CFG (Pos{0,-1} for parameters)
}

// ReachingDefs answers "which definitions of v can reach this program
// point?" for the local variables of one function.
type ReachingDefs struct {
	cfg  *CFG
	defs []*DefSite
	// in[b] holds the def IDs live at block b's entry.
	in []map[int]bool
	// byVar indexes defs by variable.
	byVar map[*types.Var][]int
}

// BuildReachingDefs runs the reaching-definitions dataflow over a CFG.
// fn supplies the function's parameter/receiver/result objects (entry
// definitions); info resolves identifiers to objects.
func BuildReachingDefs(c *CFG, info *types.Info, params []*types.Var) *ReachingDefs {
	r := &ReachingDefs{cfg: c, byVar: map[*types.Var][]int{}}
	addDef := func(d *DefSite) int {
		id := len(r.defs)
		r.defs = append(r.defs, d)
		r.byVar[d.Var] = append(r.byVar[d.Var], id)
		return id
	}
	for _, p := range params {
		addDef(&DefSite{Var: p, Param: true, Pos: Pos{Block: 0, Index: -1}})
	}

	// gen[b]: for each var, the ID of its last definition in block b.
	gen := make([]map[*types.Var]int, len(c.Blocks))
	for bi, bl := range c.Blocks {
		gen[bi] = map[*types.Var]int{}
		for ni, n := range bl.Nodes {
			for _, d := range defsOf(n, info) {
				d.Pos = Pos{Block: bi, Index: ni}
				id := addDef(d)
				gen[bi][d.Var] = id
			}
		}
	}

	// Iterate IN/OUT to fixpoint. OUT[b] = gen[b] ∪ (IN[b] − kill[b]).
	r.in = make([]map[int]bool, len(c.Blocks))
	out := make([]map[int]bool, len(c.Blocks))
	for i := range r.in {
		r.in[i] = map[int]bool{}
		out[i] = map[int]bool{}
	}
	// Entry block starts with the parameter defs.
	for id, d := range r.defs {
		if d.Param {
			r.in[0][id] = true
		}
	}
	changed := true
	for changed {
		changed = false
		for bi, bl := range c.Blocks {
			in := map[int]bool{}
			for id := range r.in[bi] {
				in[id] = true // seeded entry defs
			}
			for _, p := range bl.Preds {
				for id := range out[p.Index] {
					in[id] = true
				}
			}
			if bi == 0 {
				for id, d := range r.defs {
					if d.Param {
						in[id] = true
					}
				}
			}
			r.in[bi] = in
			o := map[int]bool{}
			for id := range in {
				if _, killed := gen[bi][r.defs[id].Var]; !killed {
					o[id] = true
				}
			}
			for _, id := range sortedVals(gen[bi]) {
				o[id] = true
			}
			if !sameSet(o, out[bi]) {
				out[bi] = o
				changed = true
			}
		}
	}
	return r
}

func sortedVals(m map[*types.Var]int) []int {
	out := make([]int, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// At returns the definitions of v that can reach the program point just
// before node index `idx` of block `block`.
func (r *ReachingDefs) At(v *types.Var, p Pos) []*DefSite {
	live := map[int]bool{}
	for id := range r.in[p.Block] {
		if r.defs[id].Var == v {
			live[id] = true
		}
	}
	// Apply this block's definitions up to (not including) idx.
	bl := r.cfg.Blocks[p.Block]
	for ni := 0; ni < p.Index && ni < len(bl.Nodes); ni++ {
		for _, id := range r.byVar[v] {
			d := r.defs[id]
			if d.Pos.Block == p.Block && d.Pos.Index == ni {
				for old := range live {
					delete(live, old)
				}
				live[id] = true
			}
		}
	}
	out := make([]*DefSite, 0, len(live))
	for _, id := range r.byVar[v] { // deterministic order
		if live[id] {
			out = append(out, r.defs[id])
		}
	}
	return out
}

// Defs returns every definition site of v in the function.
func (r *ReachingDefs) Defs(v *types.Var) []*DefSite {
	var out []*DefSite
	for _, id := range r.byVar[v] {
		out = append(out, r.defs[id])
	}
	return out
}

// defsOf extracts the variable definitions a single CFG node performs.
// Nested function literals are skipped: their assignments belong to their own
// CFG.
func defsOf(n ast.Node, info *types.Info) []*DefSite {
	var out []*DefSite
	local := func(id *ast.Ident) *types.Var {
		if id == nil || id.Name == "_" {
			return nil
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, _ := obj.(*types.Var)
		return v
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		oneToOne := len(n.Lhs) == len(n.Rhs)
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue // field/index writes are mutations, not defs
			}
			if v := local(id); v != nil {
				d := &DefSite{Var: v, Node: n}
				if oneToOne {
					d.RHS = n.Rhs[i]
				}
				out = append(out, d)
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			break
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if v := local(name); v != nil {
					d := &DefSite{Var: v, Node: n}
					if len(vs.Values) == len(vs.Names) {
						d.RHS = vs.Values[i]
					} else if len(vs.Values) == 0 {
						d.Zero = true
					}
					out = append(out, d)
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if v := local(id); v != nil {
					out = append(out, &DefSite{Var: v, Node: n})
				}
			}
		}
	case *ast.TypeSwitchStmt:
		// Handled via the Assign statement recorded in the head block.
	}
	if as, ok := n.(ast.Stmt); ok {
		_ = as
	}
	return out
}

// FuncLitsIn returns every function literal nested anywhere inside n,
// outermost first, so callers can analyze closure bodies as functions of
// their own.
func FuncLitsIn(n ast.Node) []*ast.FuncLit {
	var out []*ast.FuncLit
	ast.Inspect(n, func(m ast.Node) bool {
		if fl, ok := m.(*ast.FuncLit); ok {
			out = append(out, fl)
		}
		return true
	})
	return out
}

// SigVars collects the parameter and receiver variables of a function
// signature for BuildReachingDefs.
func SigVars(info *types.Info, recv *ast.FieldList, typ *ast.FuncType) []*types.Var {
	var out []*types.Var
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					out = append(out, v)
				}
			}
		}
	}
	collect(recv)
	if typ != nil {
		collect(typ.Params)
		collect(typ.Results)
	}
	return out
}

// NodePositions builds the node → Pos index of a CFG for analyzers that
// need to relate two statements' execution order.
func NodePositions(c *CFG) map[ast.Node]Pos {
	out := map[ast.Node]Pos{}
	for bi, bl := range c.Blocks {
		for ni, n := range bl.Nodes {
			out[n] = Pos{Block: bi, Index: ni}
		}
	}
	return out
}

// String renders the CFG for debugging.
func (c *CFG) String() string {
	s := ""
	for _, b := range c.Blocks {
		s += fmt.Sprintf("b%d(%d nodes) ->", b.Index, len(b.Nodes))
		for _, t := range b.Succs {
			s += fmt.Sprintf(" b%d", t.Index)
		}
		s += "\n"
	}
	return s
}
