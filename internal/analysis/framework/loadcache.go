package framework

import (
	"sort"
	"strings"
	"sync"
)

// loadCache memoizes Load results so the driver, the compiler-feedback gates,
// and analysistest fixtures sharing one configuration pay the go-list +
// type-check cost once per process. Keyed by the full configuration: working
// directory, test inclusion, environment, and pattern list.
var loadCache = struct {
	sync.Mutex
	m map[string]*loadEntry
}{m: map[string]*loadEntry{}}

type loadEntry struct {
	once sync.Once
	pkgs []*Package
	err  error
}

func loadKey(cfg LoadConfig, patterns []string) string {
	env := append([]string{}, cfg.Env...)
	sort.Strings(env)
	parts := []string{"dir=" + cfg.Dir}
	if cfg.Tests {
		parts = append(parts, "tests")
	}
	parts = append(parts, "env="+strings.Join(env, "\x00"), "pat="+strings.Join(patterns, "\x00"))
	return strings.Join(parts, "\x01")
}

// LoadCached is Load with process-lifetime memoization. Concurrent callers
// with the same configuration share one underlying Load; distinct
// configurations load independently and in parallel.
func LoadCached(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	key := loadKey(cfg, patterns)
	loadCache.Lock()
	e, ok := loadCache.m[key]
	if !ok {
		e = &loadEntry{}
		loadCache.m[key] = e
	}
	loadCache.Unlock()
	e.once.Do(func() { e.pkgs, e.err = Load(cfg, patterns...) })
	return e.pkgs, e.err
}

// RunParallel is Run with package-level parallelism: each package gets its
// own goroutine running the full analyzer list (analyzers are pure functions
// of their Pass, so cross-package concurrency is safe). Results are merged
// and position-sorted identically to Run; the first analyzer error wins.
func RunParallel(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	perPkg := make([][]Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			perPkg[i], errs[i] = Run(analyzers, []*Package{pkg})
		}(i, pkg)
	}
	wg.Wait()
	var diags []Diagnostic
	for i := range pkgs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		diags = append(diags, perPkg[i]...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
