// Package analysistest runs a framework.Analyzer over fixture packages under
// testdata/ and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest without the dependency.
//
// A fixture is an ordinary compilable package (go list can name testdata
// directories explicitly even though ./... skips them). Expectations are
// written at the end of the offending line:
//
//	x := make([]int, 4) // want `allocates`
//
// The backquoted (or double-quoted) strings are regular expressions matched
// against the diagnostic message; every diagnostic must be matched by a want
// on its line, and every want must be matched by a diagnostic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"smat/internal/analysis/framework"
)

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads the fixture package at dir (relative to the test's working
// directory), applies the analyzer, and reports mismatches through t.
func Run(t *testing.T, analyzer *framework.Analyzer, dir string) {
	t.Helper()
	pkgs, err := framework.LoadCached(framework.LoadConfig{Tests: true}, dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", dir, terr)
	}

	diags, err := framework.Run([]*framework.Analyzer{analyzer}, pkgs)
	if err != nil {
		t.Fatalf("running %s on %s: %v", analyzer.Name, dir, err)
	}

	type expectation struct {
		file string
		line int
		re   *regexp.Regexp
		raw  string
		hit  bool
	}
	var wants []*expectation
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 || !strings.HasPrefix(strings.TrimLeft(strings.TrimPrefix(text, "//"), " "), "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[i+len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// Position is a convenience for fixture debugging.
func Position(fset *token.FileSet, n ast.Node) string {
	p := fset.Position(n.Pos())
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}
