// Package framework is a self-contained analyzer harness modelled on
// golang.org/x/tools/go/analysis, built entirely on the standard library so
// the repository carries no external dependencies. It provides the Analyzer /
// Pass / Diagnostic vocabulary, a package loader that type-checks source
// against compiler export data (the same strategy as cmd/vet's unitchecker),
// and small AST helpers shared by the smat-lint analyzers.
//
// The analyzers built on it enforce the invariants the steady-state SpMV
// engine promises but cannot express in the type system: allocation-free
// annotated hot paths, a structurally complete kernel registry, and
// copy-safety of sync/atomic-bearing types.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name for diagnostics, a doc string,
// and the Run function applied to each loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and driver flags. It must
	// be a valid identifier.
	Name string
	// Doc is the analyzer's documentation, shown by the driver's -help.
	Doc string
	// Run applies the check to one package, reporting findings through the
	// Pass. Returning an error aborts the whole lint run (reserved for
	// internal failures, not findings).
	Run func(*Pass) error
}

// Pass carries one analyzed package to an Analyzer.Run invocation.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position, the analyzer that produced it, and
// the message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the findings
// sorted by position. Analyzer errors (not findings) are returned as an
// error immediately.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Syntax,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Preorder walks every file and calls fn for each node in depth-first
// preorder (the x/tools inspector idiom without the inspector).
func Preorder(files []*ast.File, fn func(ast.Node)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}

// HasDirective reports whether the declaration's doc comment group carries
// the given comment directive line (e.g. name "smat:hotpath" matches a
// "//smat:hotpath" line). Directives follow the Go convention: no space
// after "//", optionally followed by an argument after a space.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := c.Text
		if !strings.HasPrefix(text, "//") {
			continue
		}
		rest := text[2:]
		if rest == name || strings.HasPrefix(rest, name+" ") {
			return true
		}
	}
	return false
}

// FuncDirectives returns the directive set ("smat:hotpath", ...) present on
// a function declaration's doc comment.
func FuncDirectives(fd *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fd.Doc == nil {
		return out
	}
	for _, c := range fd.Doc.List {
		text := c.Text
		if !strings.HasPrefix(text, "//") || strings.HasPrefix(text, "// ") {
			continue
		}
		rest := strings.TrimPrefix(text, "//")
		if i := strings.IndexByte(rest, ' '); i >= 0 {
			rest = rest[:i]
		}
		if strings.Contains(rest, ":") {
			out[rest] = true
		}
	}
	return out
}

// PkgNameOf resolves the package an identifier in a selector expression
// refers to, or "" when the expression is not a package-qualified selector.
func PkgNameOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// IsTypeExpr reports whether the call expression is actually a type
// conversion T(x).
func IsTypeExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsType()
}
