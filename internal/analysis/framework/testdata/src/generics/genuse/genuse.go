// Package genuse instantiates genlib's generics across an import boundary,
// so loading it (without also listing genlib as a target) forces the
// importer to reconstruct type parameters from export data alone.
package genuse

import "smat/internal/analysis/framework/testdata/src/generics/genlib"

func UseSum() float64 {
	return genlib.Sum([]float64{1, 2, 3})
}

func UsePair() genlib.Pair[int] {
	return genlib.Pair[int]{A: 1, B: 2}
}

func UseScale() float32 {
	double := genlib.Scale[float32](2)
	return double(21)
}
