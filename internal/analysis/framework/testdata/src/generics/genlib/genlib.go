// Package genlib exports generic API so the loader tests can verify that
// type parameters round-trip through compiler export data when another
// package imports and instantiates them.
package genlib

// Number mirrors the kernel element-type constraint shape.
type Number interface {
	~int | ~float32 | ~float64
}

// Pair is a generic exported type.
type Pair[T Number] struct {
	A, B T
}

// Sum is a generic exported function.
func Sum[T Number](xs []T) T {
	var total T
	for _, x := range xs {
		total += x
	}
	return total
}

// Scale returns a closure over the type parameter, the funcval shape the
// kernel registry uses.
func Scale[T Number](k T) func(T) T {
	return func(x T) T { return k * x }
}
