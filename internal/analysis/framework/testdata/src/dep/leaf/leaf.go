package leaf

func Two() int { return 2 }
