// Package top sits at the root of a three-package dependency chain
// (top → mid → leaf) exercising the loader's export-data resolution of
// transitive dependencies.
package top

import "smat/internal/analysis/framework/testdata/src/dep/mid"

func Eight() int { return 2 * mid.Four() }
