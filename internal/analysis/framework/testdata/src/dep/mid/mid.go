package mid

import "smat/internal/analysis/framework/testdata/src/dep/leaf"

func Four() int { return 2 * leaf.Two() }
