// Package typeerr fails to compile on purpose: the loader tests assert that
// smat-lint surfaces this as a load error (driver exit 2), not a panic.
package typeerr

func Broken() int {
	return undefinedIdentifier + "not an int"
}
