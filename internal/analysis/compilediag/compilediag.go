// Package compilediag is the shared substrate of smat-lint's
// compiler-feedback gates (escapes, bce, inlinegate): it runs `go build`
// with diagnostic gcflags, memoizes the output per (module, flags) so
// concurrent gates sharing a flag set pay for one compile, parses the
// file:line:col diagnostic stream, normalizes generic shape names, locates
// annotated hot bodies, and reads/writes/diffs baseline files.
//
// Memoization matters for more than speed: the escapes and bce gates
// deliberately request the *same* build (-m=1 plus the check_bce debug flag)
// so one compiler invocation feeds both, while inlinegate needs -m=2 — whose
// extra inlining changes the escape-diagnostic set, which is why the two
// builds cannot be merged into one.
package compilediag

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"smat/internal/analysis/framework"
)

// EscapesAndBCEFlags is the gcflags set shared by the escapes and bce gates:
// -m=1 emits escape decisions, the check_bce debug flag emits one "Found
// Is(Slice)InBounds" line per surviving bounds check, and the two streams
// interleave harmlessly on stderr.
const EscapesAndBCEFlags = "-m=1 -d=ssa/check_bce/debug=1"

// InlineFlags is the gcflags set for the inlining gate. -m=2 includes
// inlining costs and cannot-inline reasons; it is NOT shared with the
// escapes build because deeper inlining exposes additional escape sites.
const InlineFlags = "-m=2"

// buildCache memoizes compiler output per (absolute module dir, scope,
// flags, patterns).
var buildCache = struct {
	sync.Mutex
	m map[string]*buildEntry
}{m: map[string]*buildEntry{}}

type buildEntry struct {
	once sync.Once
	out  string
	err  error
}

// Build compiles the module with `-gcflags=scope=flags` and returns the
// compiler's stderr. Output is memoized for the life of the process, so the
// escapes and bce gates running concurrently with identical flags trigger a
// single build. The go build cache replays diagnostics for unchanged
// packages, so even cold calls are cheap after the first CI compile.
func Build(moduleDir, scope, flags string, patterns ...string) (string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		abs = moduleDir
	}
	key := abs + "\x01" + scope + "\x01" + flags + "\x01" + strings.Join(patterns, "\x00")
	buildCache.Lock()
	e, ok := buildCache.m[key]
	if !ok {
		e = &buildEntry{}
		buildCache.m[key] = e
	}
	buildCache.Unlock()
	e.once.Do(func() {
		args := append([]string{"build", "-gcflags=" + scope + "=" + flags}, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Dir = moduleDir
		var stderr strings.Builder
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			e.err = fmt.Errorf("go build %s failed: %v\n%s", flags, err, tail(stderr.String(), 2048))
			return
		}
		e.out = stderr.String()
	})
	return e.out, e.err
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n:]
}

// Diag is one parsed compiler diagnostic line.
type Diag struct {
	File      string // cleaned, slash-separated, module-relative path
	Line, Col int
	Msg       string
}

var (
	diagRE  = regexp.MustCompile(`^(.*\.go):(\d+):(\d+): (.*)$`)
	shapeRE = regexp.MustCompile(`go\.shape\.[A-Za-z0-9_]+`)
)

// Parse extracts file:line:col diagnostics from compiler output, skipping
// "# package" header lines and anything else that doesn't match.
func Parse(out string) []Diag {
	var diags []Diag
	for _, line := range strings.Split(out, "\n") {
		m := diagRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		diags = append(diags, Diag{
			File: filepath.ToSlash(filepath.Clean(m[1])),
			Line: lineNo,
			Col:  col,
			Msg:  m[4],
		})
	}
	return diags
}

// NormalizeShapes rewrites generic shape names (go.shape.float64,
// go.shape.uint32 …) to the stable go.shape.T so baseline entries are
// identical across instantiations.
func NormalizeShapes(s string) string {
	return shapeRE.ReplaceAllString(s, "go.shape.T")
}

// FuncSpan is one function-shaped region of source: a top-level declaration,
// or a closure returned by a //smat:hotpath-factory function (named
// "factory.func" like the compiler's funcval naming).
type FuncSpan struct {
	File       string // module-relative, slash-separated
	Start, End int    // line range, inclusive
	Name       string // bare declaration name (baseline keys; stable across receiver refactors)
	Qualified  string // receiver-qualified name matching -m output, e.g. "(*poolState).tryRun"
	Directives map[string]bool
}

// Contains reports whether the diagnostic lands inside the span.
func (s FuncSpan) Contains(d Diag) bool {
	return d.File == s.File && d.Line >= s.Start && d.Line <= s.End
}

// Funcs parses every non-test .go file in the given module-relative
// directories (syntax only) and returns all top-level function spans plus
// factory-returned closure spans. Directives come from the declaration's doc
// comment; closure spans inherit {"smat:hotpath": true} when their factory
// carries smat:hotpath-factory.
func Funcs(moduleDir string, dirs []string) ([]FuncSpan, error) {
	var spans []FuncSpan
	fset := token.NewFileSet()
	for _, dir := range dirs {
		matches, err := filepath.Glob(filepath.Join(moduleDir, dir, "*.go"))
		if err != nil {
			return nil, err
		}
		for _, path := range matches {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", path, err)
			}
			rel := filepath.ToSlash(filepath.Join(dir, filepath.Base(path)))
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				dirs := framework.FuncDirectives(fd)
				qual := fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) > 0 {
					qual = recvName(fd.Recv.List[0].Type) + "." + qual
				}
				spans = append(spans, FuncSpan{
					File:       rel,
					Start:      fset.Position(fd.Pos()).Line,
					End:        fset.Position(fd.End()).Line,
					Name:       fd.Name.Name,
					Qualified:  qual,
					Directives: dirs,
				})
				if dirs["smat:hotpath-factory"] {
					spans = append(spans, factoryClosures(fset, rel, fd)...)
				}
			}
		}
	}
	return spans, nil
}

// recvName renders a method receiver type for span naming: *poolState →
// (*poolState), Operator[T] → Operator.
func recvName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return "(*" + recvName(e.X) + ")"
	case *ast.IndexExpr:
		return recvName(e.X)
	case *ast.IndexListExpr:
		return recvName(e.X)
	case *ast.Ident:
		return e.Name
	}
	return ""
}

// factoryClosures finds the closures a hotpath factory returns; those bodies
// are the actual hot code the registry dispatches.
func factoryClosures(fset *token.FileSet, rel string, fd *ast.FuncDecl) []FuncSpan {
	var spans []FuncSpan
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			_, isLit := n.(*ast.FuncLit)
			return !isLit
		}
		for _, res := range ret.Results {
			if lit, ok := res.(*ast.FuncLit); ok {
				spans = append(spans, FuncSpan{
					File:       rel,
					Start:      fset.Position(lit.Pos()).Line,
					End:        fset.Position(lit.End()).Line,
					Name:       fd.Name.Name + ".func",
					Qualified:  fd.Name.Name + ".func",
					Directives: map[string]bool{"smat:hotpath": true},
				})
			}
		}
		return true
	})
	return spans
}

// HotSpans filters Funcs output down to //smat:hotpath bodies (including
// factory closures).
func HotSpans(spans []FuncSpan) []FuncSpan {
	var hot []FuncSpan
	for _, s := range spans {
		if s.Directives["smat:hotpath"] {
			hot = append(hot, s)
		}
	}
	return hot
}

// Attribute finds the innermost span containing the diagnostic ("" when
// none). Innermost matters: a factory closure span nests inside its
// enclosing declaration's span.
func Attribute(spans []FuncSpan, d Diag) (FuncSpan, bool) {
	best := -1
	for i, s := range spans {
		if !s.Contains(d) {
			continue
		}
		if best < 0 || s.End-s.Start < spans[best].End-spans[best].Start {
			best = i
		}
	}
	if best < 0 {
		return FuncSpan{}, false
	}
	return spans[best], true
}

// ReadBaseline loads baseline entries; '#' lines are comments and a missing
// file is an empty baseline.
func ReadBaseline(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries = append(entries, line)
	}
	return entries, nil
}

// WriteBaseline writes header comment lines (without the leading '#') and
// sorted entries.
func WriteBaseline(path string, header []string, entries []string) error {
	var b strings.Builder
	for _, h := range header {
		b.WriteString("# ")
		b.WriteString(h)
		b.WriteByte('\n')
	}
	sorted := append([]string{}, entries...)
	sort.Strings(sorted)
	for _, e := range sorted {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// ReadBaselineRaw loads a policy/baseline file verbatim (comments intact);
// a missing file reads as empty.
func ReadBaselineRaw(path string) (string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// WriteRaw writes a policy/baseline file verbatim.
func WriteRaw(path, data string) error {
	if !strings.HasSuffix(data, "\n") {
		data += "\n"
	}
	return os.WriteFile(path, []byte(data), 0o644)
}

// Diff splits current entries into fresh (absent from the baseline —
// regressions) and stale (baselined but no longer produced — cleanups worth
// re-baselining, never failures).
func Diff(current, baseline []string) (fresh, stale []string) {
	base := map[string]bool{}
	for _, e := range baseline {
		base[e] = true
	}
	cur := map[string]bool{}
	for _, e := range current {
		cur[e] = true
		if !base[e] {
			fresh = append(fresh, e)
		}
	}
	for _, e := range baseline {
		if !cur[e] {
			stale = append(stale, e)
		}
	}
	return fresh, stale
}
