package escapes

import (
	"strings"
	"testing"
)

// moduleCfg points the gate at the real module from this package's directory.
func moduleCfg() Config {
	return Config{ModuleDir: "../../.."}
}

func TestCollectHotRanges(t *testing.T) {
	ranges, err := collectHotRanges(moduleCfg().withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]hotRange{}
	for _, r := range ranges {
		byName[r.file+":"+r.name] = r
		if r.start <= 0 || r.end < r.start {
			t.Errorf("bad range for %s:%s: [%d,%d]", r.file, r.name, r.start, r.end)
		}
	}
	for _, want := range []string{
		"internal/kernels/csr.go:csrRowRange",
		"internal/kernels/csr.go:runCSRParallel.func", // factory closure, not the factory
		"internal/kernels/kernels.go:RunPooled",
		"internal/kernels/bcsr.go:bcsrGenericRange",
		"internal/autotune/runtime.go:MulVec",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("annotated body %s not collected", want)
		}
	}
	if _, ok := byName["internal/kernels/csr.go:runCSRParallel"]; ok {
		t.Error("factory body itself must not be gated, only its returned closure")
	}
}

func TestMatchEntriesNormalises(t *testing.T) {
	cfg := moduleCfg().withDefaults()
	ranges := []hotRange{
		{file: "internal/kernels/csr.go", start: 10, end: 20, name: "csrChunk"},
	}
	out := strings.Join([]string{
		"./internal/kernels/csr.go:12:7: make([]go.shape.float64, n) escapes to heap",
		"internal/kernels/csr.go:12:7: make([]go.shape.float32, n) escapes to heap", // dup after shape normalisation
		"./internal/kernels/csr.go:15:3: kernels.x does not escape",                 // not an escape
		"./internal/kernels/csr.go:40:3: make([]int, n) escapes to heap",            // outside the range
		"./internal/kernels/coo.go:12:3: make([]int, n) escapes to heap",            // other file
	}, "\n")
	entries := matchEntries(cfg, ranges, out)
	want := []string{"internal/kernels/csr.go:csrChunk: make([]go.shape.T, n) escapes to heap"}
	if len(entries) != 1 || entries[0] != want[0] {
		t.Errorf("entries = %q, want %q", entries, want)
	}
}

func TestGateAgainstBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module")
	}
	fresh, stale, err := Check(moduleCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) > 0 {
		t.Errorf("hot-path escapes missing from baseline: %q", fresh)
	}
	if len(stale) > 0 {
		t.Logf("stale baseline entries (not a failure): %q", stale)
	}
}
