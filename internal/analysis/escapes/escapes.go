// Package escapes implements smat-lint's escape-analysis regression gate.
//
// The hot-path analyzer proves the annotated functions contain no
// heap-allocating constructs, but the compiler can still decide that a
// parameter or local escapes (interface boxing introduced by a refactor, a
// captured variable, a slice whose bound stopped being provable). The gate
// closes that hole empirically: it runs the real compiler with -m=1 over the
// module, keeps the "escapes to heap" / "moved to heap" diagnostics that land
// inside //smat:hotpath (and hotpath-factory closure) bodies in the gated
// directories, and compares them against a checked-in baseline. A new entry
// fails the build; intentional changes re-baseline with -update-escapes.
//
// Entries are keyed by file and enclosing function, not line numbers, so
// unrelated edits don't churn the baseline; generic shape names
// (go.shape.float64 etc.) are normalised to go.shape.T so the entry set is
// identical across instantiations.
//
// The compile itself is shared with the bce gate through
// compilediag.Build: both request -m=1 plus the check_bce debug flag, so one
// compiler pass feeds both baselines.
package escapes

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"smat/internal/analysis/compilediag"
)

// Config parameterises the gate.
type Config struct {
	// ModuleDir is the module root the build runs in ("." by default).
	ModuleDir string
	// Patterns are the build patterns (default ./...). Building the whole
	// module matters: generic kernels are only compiled — and escape-analysed
	// — inside the packages that instantiate them.
	Patterns []string
	// GcflagsScope is the package pattern receiving the diagnostic flags
	// (default smat/...).
	GcflagsScope string
	// HotDirs are module-relative directories whose annotated functions are
	// gated (default internal/kernels, internal/autotune).
	HotDirs []string
	// BaselinePath is the baseline file, module-relative
	// (default internal/analysis/escapes/baseline.txt).
	BaselinePath string
}

func (c Config) withDefaults() Config {
	if c.ModuleDir == "" {
		c.ModuleDir = "."
	}
	if len(c.Patterns) == 0 {
		c.Patterns = []string{"./..."}
	}
	if c.GcflagsScope == "" {
		c.GcflagsScope = "smat/..."
	}
	if len(c.HotDirs) == 0 {
		c.HotDirs = []string{"internal/kernels", "internal/autotune"}
	}
	if c.BaselinePath == "" {
		c.BaselinePath = "internal/analysis/escapes/baseline.txt"
	}
	return c
}

// hotRange is one gated body: an annotated function, or a closure returned by
// an annotated factory.
type hotRange struct {
	file       string // module-relative path
	start, end int    // line range, inclusive
	name       string // function name ("runCSRParallel.func" for closures)
}

// Current compiles the module and returns the sorted, normalised escape
// entries inside gated hot bodies.
func Current(cfg Config) ([]string, error) {
	cfg = cfg.withDefaults()
	ranges, err := collectHotRanges(cfg)
	if err != nil {
		return nil, err
	}
	out, err := compilediag.Build(cfg.ModuleDir, cfg.GcflagsScope, compilediag.EscapesAndBCEFlags, cfg.Patterns...)
	if err != nil {
		return nil, err
	}
	return matchEntries(cfg, ranges, out), nil
}

// Check returns the entries new against the baseline and the stale baseline
// entries no longer produced. Only new entries are regressions.
func Check(cfg Config) (fresh, stale []string, err error) {
	cfg = cfg.withDefaults()
	current, err := Current(cfg)
	if err != nil {
		return nil, nil, err
	}
	baseline, err := compilediag.ReadBaseline(filepath.Join(cfg.ModuleDir, cfg.BaselinePath))
	if err != nil {
		return nil, nil, err
	}
	fresh, stale = compilediag.Diff(current, baseline)
	return fresh, stale, nil
}

// Update rewrites the baseline with the current entry set.
func Update(cfg Config) ([]string, error) {
	cfg = cfg.withDefaults()
	current, err := Current(cfg)
	if err != nil {
		return nil, err
	}
	header := []string{
		"smat-lint escape-analysis baseline: accepted heap escapes inside",
		"//smat:hotpath bodies. Regenerate with smat-lint -update-escapes.",
	}
	path := filepath.Join(cfg.ModuleDir, cfg.BaselinePath)
	if err := compilediag.WriteBaseline(path, header, current); err != nil {
		return nil, err
	}
	return current, nil
}

// collectHotRanges parses the gated directories (syntax only — no type
// information is needed to find directives) and gathers annotated bodies.
func collectHotRanges(cfg Config) ([]hotRange, error) {
	spans, err := compilediag.Funcs(cfg.ModuleDir, cfg.HotDirs)
	if err != nil {
		return nil, err
	}
	var ranges []hotRange
	for _, s := range compilediag.HotSpans(spans) {
		ranges = append(ranges, hotRange{file: s.File, start: s.Start, end: s.End, name: s.Name})
	}
	return ranges, nil
}

// matchEntries keeps escape diagnostics inside hot ranges and normalises them
// into stable "file:function: message" entries.
func matchEntries(cfg Config, ranges []hotRange, buildOutput string) []string {
	byFile := map[string][]hotRange{}
	for _, r := range ranges {
		byFile[r.file] = append(byFile[r.file], r)
	}
	seen := map[string]bool{}
	for _, d := range compilediag.Parse(buildOutput) {
		if !strings.Contains(d.Msg, "escapes to heap") && !strings.Contains(d.Msg, "moved to heap") {
			continue
		}
		for _, r := range byFile[d.File] {
			if d.Line >= r.start && d.Line <= r.end {
				msg := compilediag.NormalizeShapes(d.Msg)
				seen[fmt.Sprintf("%s:%s: %s", d.File, r.name, msg)] = true
				break
			}
		}
	}
	entries := make([]string, 0, len(seen))
	for e := range seen {
		entries = append(entries, e)
	}
	sort.Strings(entries)
	return entries
}
