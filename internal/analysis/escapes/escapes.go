// Package escapes implements smat-lint's escape-analysis regression gate.
//
// The hot-path analyzer proves the annotated functions contain no
// heap-allocating constructs, but the compiler can still decide that a
// parameter or local escapes (interface boxing introduced by a refactor, a
// captured variable, a slice whose bound stopped being provable). The gate
// closes that hole empirically: it runs the real compiler with -m=1 over the
// module, keeps the "escapes to heap" / "moved to heap" diagnostics that land
// inside //smat:hotpath (and hotpath-factory closure) bodies in the gated
// directories, and compares them against a checked-in baseline. A new entry
// fails the build; intentional changes re-baseline with -update-escapes.
//
// Entries are keyed by file and enclosing function, not line numbers, so
// unrelated edits don't churn the baseline; generic shape names
// (go.shape.float64 etc.) are normalised to go.shape.T so the entry set is
// identical across instantiations.
package escapes

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"smat/internal/analysis/framework"
)

// Config parameterises the gate.
type Config struct {
	// ModuleDir is the module root the build runs in ("." by default).
	ModuleDir string
	// Patterns are the build patterns (default ./...). Building the whole
	// module matters: generic kernels are only compiled — and escape-analysed
	// — inside the packages that instantiate them.
	Patterns []string
	// GcflagsScope is the package pattern receiving -m=1 (default smat/...).
	GcflagsScope string
	// HotDirs are module-relative directories whose annotated functions are
	// gated (default internal/kernels, internal/autotune).
	HotDirs []string
	// BaselinePath is the baseline file, module-relative
	// (default internal/analysis/escapes/baseline.txt).
	BaselinePath string
}

func (c Config) withDefaults() Config {
	if c.ModuleDir == "" {
		c.ModuleDir = "."
	}
	if len(c.Patterns) == 0 {
		c.Patterns = []string{"./..."}
	}
	if c.GcflagsScope == "" {
		c.GcflagsScope = "smat/..."
	}
	if len(c.HotDirs) == 0 {
		c.HotDirs = []string{"internal/kernels", "internal/autotune"}
	}
	if c.BaselinePath == "" {
		c.BaselinePath = "internal/analysis/escapes/baseline.txt"
	}
	return c
}

// hotRange is one gated body: an annotated function, or a closure returned by
// an annotated factory.
type hotRange struct {
	file       string // module-relative path
	start, end int    // line range, inclusive
	name       string // function name ("runCSRParallel.func" for closures)
}

// Current compiles the module with -m=1 and returns the sorted, normalised
// escape entries inside gated hot bodies.
func Current(cfg Config) ([]string, error) {
	cfg = cfg.withDefaults()
	ranges, err := collectHotRanges(cfg)
	if err != nil {
		return nil, err
	}
	out, err := compileDiagnostics(cfg)
	if err != nil {
		return nil, err
	}
	return matchEntries(cfg, ranges, out), nil
}

// Check returns the entries new against the baseline and the stale baseline
// entries no longer produced. Only new entries are regressions.
func Check(cfg Config) (fresh, stale []string, err error) {
	cfg = cfg.withDefaults()
	current, err := Current(cfg)
	if err != nil {
		return nil, nil, err
	}
	baseline, err := readBaseline(filepath.Join(cfg.ModuleDir, cfg.BaselinePath))
	if err != nil {
		return nil, nil, err
	}
	base := map[string]bool{}
	for _, e := range baseline {
		base[e] = true
	}
	cur := map[string]bool{}
	for _, e := range current {
		cur[e] = true
		if !base[e] {
			fresh = append(fresh, e)
		}
	}
	for _, e := range baseline {
		if !cur[e] {
			stale = append(stale, e)
		}
	}
	return fresh, stale, nil
}

// Update rewrites the baseline with the current entry set.
func Update(cfg Config) ([]string, error) {
	cfg = cfg.withDefaults()
	current, err := Current(cfg)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString("# smat-lint escape-analysis baseline: accepted heap escapes inside\n")
	b.WriteString("# //smat:hotpath bodies. Regenerate with smat-lint -update-escapes.\n")
	for _, e := range current {
		b.WriteString(e)
		b.WriteByte('\n')
	}
	path := filepath.Join(cfg.ModuleDir, cfg.BaselinePath)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return nil, err
	}
	return current, nil
}

// collectHotRanges parses the gated directories (syntax only — no type
// information is needed to find directives) and gathers annotated bodies.
func collectHotRanges(cfg Config) ([]hotRange, error) {
	var ranges []hotRange
	fset := token.NewFileSet()
	for _, dir := range cfg.HotDirs {
		matches, err := filepath.Glob(filepath.Join(cfg.ModuleDir, dir, "*.go"))
		if err != nil {
			return nil, err
		}
		for _, path := range matches {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", path, err)
			}
			rel := filepath.ToSlash(filepath.Join(dir, filepath.Base(path)))
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				dirs := framework.FuncDirectives(fd)
				switch {
				case dirs["smat:hotpath"]:
					ranges = append(ranges, hotRange{
						file:  rel,
						start: fset.Position(fd.Pos()).Line,
						end:   fset.Position(fd.End()).Line,
						name:  fd.Name.Name,
					})
				case dirs["smat:hotpath-factory"]:
					ast.Inspect(fd.Body, func(n ast.Node) bool {
						ret, ok := n.(*ast.ReturnStmt)
						if !ok {
							return !isFuncLit(n)
						}
						for _, res := range ret.Results {
							if lit, ok := res.(*ast.FuncLit); ok {
								ranges = append(ranges, hotRange{
									file:  rel,
									start: fset.Position(lit.Pos()).Line,
									end:   fset.Position(lit.End()).Line,
									name:  fd.Name.Name + ".func",
								})
							}
						}
						return true
					})
				}
			}
		}
	}
	return ranges, nil
}

func isFuncLit(n ast.Node) bool {
	_, ok := n.(*ast.FuncLit)
	return ok
}

// compileDiagnostics runs the compiler with -m=1 and returns its stderr. The
// build cache replays diagnostics for unchanged packages, so repeated runs
// stay fast.
func compileDiagnostics(cfg Config) (string, error) {
	args := append([]string{"build", "-gcflags=" + cfg.GcflagsScope + "=-m=1"}, cfg.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.ModuleDir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build -m failed: %v\n%s", err, tail(stderr.String(), 2048))
	}
	return stderr.String(), nil
}

func tail(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n:]
}

var (
	diagRE  = regexp.MustCompile(`^(.*\.go):(\d+):\d+: (.*)$`)
	shapeRE = regexp.MustCompile(`go\.shape\.[A-Za-z0-9_]+`)
)

// matchEntries keeps escape diagnostics inside hot ranges and normalises them
// into stable "file:function: message" entries.
func matchEntries(cfg Config, ranges []hotRange, buildOutput string) []string {
	byFile := map[string][]hotRange{}
	for _, r := range ranges {
		byFile[r.file] = append(byFile[r.file], r)
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(buildOutput, "\n") {
		m := diagRE.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := filepath.ToSlash(filepath.Clean(m[1]))
		lineNo, _ := strconv.Atoi(m[2])
		for _, r := range byFile[file] {
			if lineNo >= r.start && lineNo <= r.end {
				msg = shapeRE.ReplaceAllString(msg, "go.shape.T")
				seen[fmt.Sprintf("%s:%s: %s", file, r.name, msg)] = true
				break
			}
		}
	}
	entries := make([]string, 0, len(seen))
	for e := range seen {
		entries = append(entries, e)
	}
	sort.Strings(entries)
	return entries
}

// readBaseline loads the baseline entries; a missing file is an empty
// baseline (every current entry is then new).
func readBaseline(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries = append(entries, line)
	}
	return entries, nil
}
