package kernels

import "smat/internal/matrix"

// Row-blocked sparse matrix-matrix products for AMG hierarchy setup.
//
// matrix.Mul is the single-threaded Gustavson reference. The entry points
// here keep its exact per-row arithmetic — same accumulation order, same
// ascending-column output, same explicit-zero drop — but restructure the
// storage management so rows can be computed in parallel chunks over the
// kernel worker pool:
//
//   - an O(nnz) upper-bound pass sizes every result row before any numeric
//     work, so the scratch arrays are sized exactly once (matrix.Mul grows
//     its output with append, paying repeated copy-on-grow);
//   - rows are partitioned into contiguous chunks balanced by upper-bound
//     work (reusing the SpMV nnz-balanced partitioner on the bound's prefix
//     sum), each chunk writing into its private region of the shared scratch
//     with a per-chunk dense accumulator;
//   - the scratch lives in an arena attached to the worker pool and is
//     reused across calls — repeated products (a multi-level hierarchy
//     setup) pay no repeated allocation or zeroing, because the dense
//     accumulators are generation-stamped and never cleared;
//   - accumulated rows drain through a window sweep over the generation
//     stamps whenever the row's column span is dense relative to its
//     population, producing ascending order without a comparison sort.
//
// Because every result row depends only on its own inputs, the output is
// bit-for-bit identical whatever the chunking: serial, pooled, and spawned
// runs all agree exactly, and SpGEMM agrees exactly with matrix.Mul. The
// oracle pins both properties (oracle.CheckSpGEMM).

// SpGEMM computes the sparse product A·B with Gustavson's row-wise
// algorithm, chunked over pool's workers (threads ≤ 0 resolves to the
// pool's fan-out, or 1 without a pool). A nil pool runs the same chunking
// on spawned goroutines, or serially for a single chunk. The result is
// bit-for-bit equal to a.Mul(b).
func SpGEMM[T matrix.Float](a, b *matrix.CSR[T], pool *Pool[T], threads int) *matrix.CSR[T] {
	if a.Cols != b.Rows {
		panic("kernels: SpGEMM dimension mismatch")
	}
	ar, release := arenaOf(pool)
	defer release()
	rows := a.Rows
	ar.ub = growInts(ar.ub, rows+1)
	ub := ar.ub
	ub[0] = 0
	for r := 0; r < rows; r++ {
		n := 0
		for jj := a.RowPtr[r]; jj < a.RowPtr[r+1]; jj++ {
			k := a.ColIdx[jj]
			n += b.RowPtr[k+1] - b.RowPtr[k]
		}
		ub[r+1] = ub[r] + n
	}
	ar.idx = growInts(ar.idx, ub[rows])
	ar.val = growVals(ar.val, ub[rows])
	colIdx, vals := ar.idx, ar.val
	out := &matrix.CSR[T]{Rows: rows, Cols: b.Cols, RowPtr: make([]int, rows+1)}
	bounds := nnzBalancedRowBounds(ub, resolveThreads(pool, threads))
	ar.reserveChunks(bounds, ub, b.Cols)
	runChunks(pool, bounds, func(chunk, lo, hi int) {
		cs := &ar.chunks[chunk]
		cs.gen = spgemmRows(a, b, out.RowPtr, colIdx, vals, cs.acc, cs.cols, cs.gen, ub[lo], lo, hi)
	})
	return stitch(out, colIdx, vals, ub, bounds, !ar.private)
}

// GalerkinRAP computes the Galerkin triple product R·A·P, choosing its
// strategy from the operands' structure: either one fused Gustavson pass
// (each R entry expands A's row directly through P's rows, so the R·A
// combination is never formed) or a row-fused two-phase pass (each output
// row scatters R·A into one dense accumulator and immediately pushes the
// merged row through P into a second — the R·A intermediate lives only in
// accumulator cells, never as a materialised matrix). The fused pass
// revisits each A·P row once per R entry selecting it, so it wins exactly
// when rows of R are near-singletons (aggressive coarsening); the O(nnz)
// bound pass that sizes the result also yields both cost estimates, and the
// cheaper strategy runs.
//
// The floating-point association can therefore differ from
// matrix.TripleProduct, so results agree to rounding, not bit-for-bit;
// serial and pooled runs of this function do agree bit-for-bit (the
// strategy choice depends only on the operands, and rows are independent).
func GalerkinRAP[T matrix.Float](r, a, p *matrix.CSR[T], pool *Pool[T], threads int) *matrix.CSR[T] {
	if r.Cols != a.Rows || a.Cols != p.Rows {
		panic("kernels: GalerkinRAP dimension mismatch")
	}
	ar, release := arenaOf(pool)
	defer release()
	// Cost model in O(nnz(A) + nnz(R)): ap[j] is the flop bound of row j of
	// A·P; summed over R's entries it is the fused pass's total work (and the
	// output scratch bound for both strategies), while raCost is the two-phase
	// pass's extra first-phase work. The two-phase second phase runs on the
	// merged R·A rows (less than fusedCost whenever R rows overlap), so fused
	// must beat raCost with a margin to be picked.
	ar.flops = growInts(ar.flops, a.Rows)
	ap := ar.flops
	for j := 0; j < a.Rows; j++ {
		n := 0
		for kk := a.RowPtr[j]; kk < a.RowPtr[j+1]; kk++ {
			k := a.ColIdx[kk]
			n += p.RowPtr[k+1] - p.RowPtr[k]
		}
		ap[j] = n
	}
	// One pass over R builds both bound prefixes: ub (fused flops, the output
	// scratch layout for either strategy) and raUB (first-phase scatter sizes,
	// the two-phase accumulator scratch bound).
	ar.ub = growInts(ar.ub, r.Rows+1)
	ar.ub2 = growInts(ar.ub2, r.Rows+1)
	ub, raUB := ar.ub, ar.ub2
	ub[0], raUB[0] = 0, 0
	for i := 0; i < r.Rows; i++ {
		nf, nr := 0, 0
		for jj := r.RowPtr[i]; jj < r.RowPtr[i+1]; jj++ {
			j := r.ColIdx[jj]
			nf += ap[j]
			nr += a.RowPtr[j+1] - a.RowPtr[j]
		}
		ub[i+1] = ub[i] + nf
		raUB[i+1] = raUB[i] + nr
	}
	fusedCost, raCost := ub[r.Rows], raUB[r.Rows]
	ar.idx = growInts(ar.idx, ub[r.Rows])
	ar.val = growVals(ar.val, ub[r.Rows])
	colIdx, vals := ar.idx, ar.val
	out := &matrix.CSR[T]{Rows: r.Rows, Cols: p.Cols, RowPtr: make([]int, r.Rows+1)}
	bounds := nnzBalancedRowBounds(ub, resolveThreads(pool, threads))
	ar.reserveChunks(bounds, ub, p.Cols)
	if 20*fusedCost < 37*raCost { // fusedCost < 1.85·raCost
		runChunks(pool, bounds, func(chunk, lo, hi int) {
			cs := &ar.chunks[chunk]
			cs.gen = rapRows(r, a, p, out.RowPtr, colIdx, vals, cs.acc, cs.cols, cs.gen, ub[lo], lo, hi)
		})
	} else {
		ar.reserveMidChunks(bounds, raUB, a.Cols)
		runChunks(pool, bounds, func(chunk, lo, hi int) {
			cs := &ar.chunks[chunk]
			cs.gen = rapTwoPhaseRows(r, a, p, out.RowPtr, colIdx, vals,
				cs.acc, cs.mid, cs.cols, cs.midCols, cs.gen, ub[lo], lo, hi)
		})
	}
	return stitch(out, colIdx, vals, ub, bounds, !ar.private)
}

// spgemmRows computes result rows [lo, hi) of A·B, writing entries densely
// from scratch offset cur and row sizes into rowLen[r+1]. The accumulation
// order, ascending-column output, and zero drop replicate matrix.Mul
// exactly. gen is the chunk's persistent accumulator generation:
// monotonically increasing, so stale stamps from earlier products never
// match and the accumulator is never cleared.
//
//smat:hotpath
func spgemmRows[T matrix.Float](a, b *matrix.CSR[T], rowLen, colIdx []int, vals []T, acc []accCell[T], cols []int, gen, cur, lo, hi int) int {
	aRowPtr, aColIdx, aVals := a.RowPtr, a.ColIdx, a.Vals
	bRowPtr, bColIdx, bVals := b.RowPtr, b.ColIdx, b.Vals
	for r := lo; r < hi; r++ {
		gen++
		ncols := 0
		cmin, cmax := int(^uint(0)>>1), -1
		for jj := aRowPtr[r]; jj < aRowPtr[r+1]; jj++ {
			k := aColIdx[jj]
			av := aVals[jj]
			for kk := bRowPtr[k]; kk < bRowPtr[k+1]; kk++ {
				c := bColIdx[kk]
				cell := &acc[c]
				if cell.gen != gen {
					cell.gen = gen
					cell.val = 0
					cols[ncols] = c
					ncols++
					if c < cmin {
						cmin = c
					}
					if c > cmax {
						cmax = c
					}
				}
				cell.val += av * bVals[kk]
			}
		}
		n := gatherSorted(acc, cols, ncols, gen, cmin, cmax, colIdx, vals, cur)
		rowLen[r+1] = n
		cur += n
	}
	return gen
}

// rapRows computes fused Galerkin rows [lo, hi): for each R entry (i, j)
// the A row j is scaled and scattered through the matching P rows into the
// dense accumulator, skipping the R·A combination entirely.
//
//smat:hotpath
func rapRows[T matrix.Float](r, a, p *matrix.CSR[T], rowLen, colIdx []int, vals []T, acc []accCell[T], cols []int, gen, cur, lo, hi int) int {
	pRowPtr, pColIdx, pVals := p.RowPtr, p.ColIdx, p.Vals
	for i := lo; i < hi; i++ {
		gen++
		ncols := 0
		cmin, cmax := int(^uint(0)>>1), -1
		for jj := r.RowPtr[i]; jj < r.RowPtr[i+1]; jj++ {
			j := r.ColIdx[jj]
			rv := r.Vals[jj]
			for kk := a.RowPtr[j]; kk < a.RowPtr[j+1]; kk++ {
				k := a.ColIdx[kk]
				rav := rv * a.Vals[kk]
				for pp := pRowPtr[k]; pp < pRowPtr[k+1]; pp++ {
					c := pColIdx[pp]
					cell := &acc[c]
					if cell.gen != gen {
						cell.gen = gen
						cell.val = 0
						cols[ncols] = c
						ncols++
						if c < cmin {
							cmin = c
						}
						if c > cmax {
							cmax = c
						}
					}
					cell.val += rav * pVals[pp]
				}
			}
		}
		n := gatherSorted(acc, cols, ncols, gen, cmin, cmax, colIdx, vals, cur)
		rowLen[i+1] = n
		cur += n
	}
	return gen
}

// rapTwoPhaseRows computes Galerkin rows [lo, hi) with one R·A merge per
// output row: phase one scatters the combined R·A row into mid (discovery
// order in midCols — a pure per-row property, so chunking never shows), and
// phase two pushes each merged entry through its P row into acc. The R·A
// intermediate never exists as a matrix, so nothing is written, compacted,
// re-read, or re-bounded between the phases. Zero merged entries are
// skipped, matching the explicit-zero drop a materialised intermediate
// would have applied.
//
//smat:hotpath
func rapTwoPhaseRows[T matrix.Float](r, a, p *matrix.CSR[T], rowLen, colIdx []int, vals []T, acc, mid []accCell[T], cols, midCols []int, gen, cur, lo, hi int) int {
	aRowPtr, aColIdx, aVals := a.RowPtr, a.ColIdx, a.Vals
	pRowPtr, pColIdx, pVals := p.RowPtr, p.ColIdx, p.Vals
	for i := lo; i < hi; i++ {
		gen++
		nmid := 0
		for jj := r.RowPtr[i]; jj < r.RowPtr[i+1]; jj++ {
			j := r.ColIdx[jj]
			rv := r.Vals[jj]
			for kk := aRowPtr[j]; kk < aRowPtr[j+1]; kk++ {
				k := aColIdx[kk]
				cell := &mid[k]
				if cell.gen != gen {
					cell.gen = gen
					cell.val = 0
					midCols[nmid] = k
					nmid++
				}
				cell.val += rv * aVals[kk]
			}
		}
		ncols := 0
		cmin, cmax := int(^uint(0)>>1), -1
		for _, k := range midCols[:nmid] {
			av := mid[k].val
			if av == 0 {
				continue
			}
			for kk := pRowPtr[k]; kk < pRowPtr[k+1]; kk++ {
				c := pColIdx[kk]
				cell := &acc[c]
				if cell.gen != gen {
					cell.gen = gen
					cell.val = 0
					cols[ncols] = c
					ncols++
					if c < cmin {
						cmin = c
					}
					if c > cmax {
						cmax = c
					}
				}
				cell.val += av * pVals[kk]
			}
		}
		n := gatherSorted(acc, cols, ncols, gen, cmin, cmax, colIdx, vals, cur)
		rowLen[i+1] = n
		cur += n
	}
	return gen
}

// gatherSorted drains one accumulated row into colIdx/vals at cur in
// ascending column order, dropping explicit zeros, and returns the entry
// count. When the row's column window [cmin, cmax] is dense relative to its
// population it sweeps the window directly off the generation stamps —
// already sorted, no comparison sort at all, the common case on matrices
// with banded structure — and falls back to sort-and-gather otherwise. Both
// branches produce identical output, so the choice never shows in results.
//
//smat:hotpath
func gatherSorted[T matrix.Float](acc []accCell[T], cols []int, ncols, gen, cmin, cmax int, colIdx []int, vals []T, cur int) int {
	n := 0
	if cmax-cmin < 4*ncols {
		for c := cmin; c <= cmax; c++ {
			cell := &acc[c]
			if cell.gen == gen {
				if v := cell.val; v != 0 {
					colIdx[cur+n] = c
					vals[cur+n] = v
					n++
				}
			}
		}
		return n
	}
	matrix.SortInts(cols[:ncols])
	for _, c := range cols[:ncols] {
		if v := acc[c].val; v != 0 {
			colIdx[cur+n] = c
			vals[cur+n] = v
			n++
		}
	}
	return n
}

// spgemmArena is the reusable scratch for the products: the bound prefixes,
// the shared column/value staging arrays, the cost-model scratch, and the
// per-chunk dense accumulators. A pool owns one arena, handed out under
// arenaOf; callers without one get a private arena that lives for a single
// call.
type spgemmArena[T matrix.Float] struct {
	ub     []int
	ub2    []int
	idx    []int
	val    []T
	flops  []int
	chunks []chunkScratch[T]

	// private marks a single-call arena: its arrays die with the call, so a
	// finalised result may alias them instead of copying out.
	private bool
}

// chunkScratch is one chunk's dense accumulator set: acc/cols for the
// output row, mid/midCols for the two-phase pass's merged R·A row. gen
// persists across products and stamps both accumulators: cells only ever
// hold past generations, so growing, shrinking, or switching matrices never
// requires clearing anything.
type chunkScratch[T matrix.Float] struct {
	acc     []accCell[T]
	cols    []int
	mid     []accCell[T]
	midCols []int
	gen     int
}

// accCell packs the accumulator value with its generation stamp so each
// scatter touches one cache line, not two parallel arrays.
type accCell[T matrix.Float] struct {
	gen int
	val T
}

// arenaOf hands out the pool's arena, or a fresh private one when there is
// no pool or another product currently owns it (concurrent callers stay
// correct, they just don't share scratch).
func arenaOf[T matrix.Float](pool *Pool[T]) (*spgemmArena[T], func()) {
	if pool == nil {
		return &spgemmArena[T]{private: true}, func() {}
	}
	s := pool.s
	if !s.arenaMu.TryLock() {
		return &spgemmArena[T]{private: true}, func() {}
	}
	if s.arena == nil {
		s.arena = &spgemmArena[T]{}
	}
	return s.arena, s.arenaMu.Unlock
}

// reserveChunks sizes the per-chunk output accumulators for a dispatch over
// bounds: acc covers the result's column space, cols the chunk's largest
// row bound. Freshly grown stamps start at zero, below any live generation.
func (ar *spgemmArena[T]) reserveChunks(bounds, ub []int, cols int) {
	nchunks := len(bounds) - 1
	if len(ar.chunks) < nchunks {
		ar.chunks = append(ar.chunks, make([]chunkScratch[T], nchunks-len(ar.chunks))...)
	}
	for c := 0; c < nchunks; c++ {
		cs := &ar.chunks[c]
		cs.acc = growCells(cs.acc, cols)
		cs.cols = growInts(cs.cols, maxRowBound(ub, bounds[c], bounds[c+1]))
	}
}

// reserveMidChunks sizes the two-phase pass's merge accumulators the same
// way, against the intermediate's column space and row bounds. It must run
// after reserveChunks has fixed the chunk count for this dispatch.
func (ar *spgemmArena[T]) reserveMidChunks(bounds, raUB []int, cols int) {
	for c := 0; c < len(bounds)-1; c++ {
		cs := &ar.chunks[c]
		cs.mid = growCells(cs.mid, cols)
		cs.midCols = growInts(cs.midCols, maxRowBound(raUB, bounds[c], bounds[c+1]))
	}
}

func growInts(b []int, n int) []int {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int, n)
}

func growVals[T matrix.Float](b []T, n int) []T {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]T, n)
}

func growCells[T matrix.Float](b []accCell[T], n int) []accCell[T] {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]accCell[T], n)
}

// resolveThreads picks the chunk fan-out: an explicit positive count wins,
// otherwise the pool's fan-out, otherwise serial.
func resolveThreads[T matrix.Float](pool *Pool[T], threads int) int {
	if threads > 0 {
		return threads
	}
	if pool != nil {
		return pool.Threads()
	}
	return 1
}

// runChunks dispatches fn over the bounds chunks: pooled when a pool is
// given, spawned goroutines otherwise, inline for a single chunk.
func runChunks[T matrix.Float](pool *Pool[T], bounds []int, fn func(chunk, lo, hi int)) {
	nchunks := len(bounds) - 1
	if nchunks <= 0 {
		return
	}
	if pool != nil {
		pool.RunChunks(bounds, fn)
		return
	}
	if nchunks == 1 {
		fn(0, bounds[0], bounds[1])
		return
	}
	spawnJobChunks(bounds, fn)
}

// maxRowBound returns the largest single-row upper bound in [lo, hi): the
// column-scratch size that makes the row loops append-free.
func maxRowBound(ub []int, lo, hi int) int {
	m := 0
	for r := lo; r < hi; r++ {
		if n := ub[r+1] - ub[r]; n > m {
			m = n
		}
	}
	return m
}

// stitch finalises a chunked product whose rows were written densely at
// their upper-bound offsets: the row sizes in out.RowPtr are prefix-summed,
// then each chunk's region lands at its final offset — copied into fresh
// exact-size arrays when the result must own its memory, or compacted left
// in place (actual ≤ bound, so the copies never overlap destructively) when
// it may alias the arena.
func stitch[T matrix.Float](out *matrix.CSR[T], colIdx []int, vals []T, ub, bounds []int, finalize bool) *matrix.CSR[T] {
	for r := 0; r < out.Rows; r++ {
		out.RowPtr[r+1] += out.RowPtr[r]
	}
	total := out.RowPtr[out.Rows]
	nchunks := len(bounds) - 1
	if finalize {
		oc := make([]int, total)
		ov := make([]T, total)
		for c := 0; c < nchunks; c++ {
			lo, hi := bounds[c], bounds[c+1]
			n := out.RowPtr[hi] - out.RowPtr[lo]
			copy(oc[out.RowPtr[lo]:], colIdx[ub[lo]:ub[lo]+n])
			copy(ov[out.RowPtr[lo]:], vals[ub[lo]:ub[lo]+n])
		}
		out.ColIdx, out.Vals = oc, ov
		return out
	}
	for c := 1; c < nchunks; c++ {
		lo, hi := bounds[c], bounds[c+1]
		dst, src := out.RowPtr[lo], ub[lo]
		if dst == src {
			continue
		}
		n := out.RowPtr[hi] - out.RowPtr[lo]
		copy(colIdx[dst:dst+n], colIdx[src:src+n])
		copy(vals[dst:dst+n], vals[src:src+n])
	}
	out.ColIdx = colIdx[:total:total]
	out.Vals = vals[:total:total]
	return out
}
