package kernels

import "smat/internal/matrix"

// BCSR kernels: the register-blocking extension format. The generic kernel
// handles any block size; the specialised kernel dispatches fully-unrolled
// bodies for the common square blocks (the scalar analogue of OSKI's
// register-blocked code variants).

// bcsrGenericRange computes block rows [lo, hi). It accumulates straight
// into y (zeroing the block row's segment first) so the body stays
// allocation-free; rows past Rows in the last ragged block are skipped.
//
//smat:hotpath
func bcsrGenericRange[T matrix.Float](m *matrix.BCSR[T], x, y []T, lo, hi int) {
	br, bc := m.BR, m.BC
	for bi := lo; bi < hi; bi++ {
		baseRow := bi * br
		height := br
		if baseRow+height > m.Rows {
			height = m.Rows - baseRow
		}
		ySeg := y[baseRow : baseRow+height]
		clear(ySeg)
		for s := m.RowPtr[bi]; s < m.RowPtr[bi+1]; s++ {
			baseCol := m.ColIdx[s] * bc
			blk := m.Blocks[s*br*bc : (s+1)*br*bc]
			// The last block column may be padded past Cols; padding holds
			// zeros, but x must not be read out of range.
			width := bc
			if baseCol+width > m.Cols {
				width = m.Cols - baseCol
			}
			for lr := 0; lr < height; lr++ {
				var sum T
				row := blk[lr*bc:]
				for lc := 0; lc < width; lc++ {
					sum += row[lc] * x[baseCol+lc]
				}
				ySeg[lr] += sum
			}
		}
	}
}

// bcsr2x2Range is the fully unrolled 2×2 body.
//
//smat:hotpath
func bcsr2x2Range[T matrix.Float](m *matrix.BCSR[T], x, y []T, lo, hi int) {
	for bi := lo; bi < hi; bi++ {
		var s0, s1 T
		for s := m.RowPtr[bi]; s < m.RowPtr[bi+1]; s++ {
			c := m.ColIdx[s] * 2
			blk := m.Blocks[s*4 : s*4+4]
			if c+1 < m.Cols {
				x0, x1 := x[c], x[c+1]
				s0 += blk[0]*x0 + blk[1]*x1
				s1 += blk[2]*x0 + blk[3]*x1
			} else {
				x0 := x[c]
				s0 += blk[0] * x0
				s1 += blk[2] * x0
			}
		}
		r := bi * 2
		y[r] = s0
		if r+1 < m.Rows {
			y[r+1] = s1
		}
	}
}

// bcsr4x4Range is the fully unrolled 4×4 body for interior block columns,
// falling back to bounded loops on the (single) ragged edge block.
//
//smat:hotpath
func bcsr4x4Range[T matrix.Float](m *matrix.BCSR[T], x, y []T, lo, hi int) {
	for bi := lo; bi < hi; bi++ {
		var s0, s1, s2, s3 T
		for s := m.RowPtr[bi]; s < m.RowPtr[bi+1]; s++ {
			c := m.ColIdx[s] * 4
			blk := m.Blocks[s*16 : s*16+16]
			if c+3 < m.Cols {
				x0, x1, x2, x3 := x[c], x[c+1], x[c+2], x[c+3]
				s0 += blk[0]*x0 + blk[1]*x1 + blk[2]*x2 + blk[3]*x3
				s1 += blk[4]*x0 + blk[5]*x1 + blk[6]*x2 + blk[7]*x3
				s2 += blk[8]*x0 + blk[9]*x1 + blk[10]*x2 + blk[11]*x3
				s3 += blk[12]*x0 + blk[13]*x1 + blk[14]*x2 + blk[15]*x3
			} else {
				for lc := 0; c+lc < m.Cols; lc++ {
					xv := x[c+lc]
					s0 += blk[lc] * xv
					s1 += blk[4+lc] * xv
					s2 += blk[8+lc] * xv
					s3 += blk[12+lc] * xv
				}
			}
		}
		r := bi * 4
		sums := [4]T{s0, s1, s2, s3}
		for lr := 0; lr < 4 && r+lr < m.Rows; lr++ {
			y[r+lr] = sums[lr]
		}
	}
}

// bcsr2x4Range is the fully unrolled 2×4 body for interior block columns,
// falling back to bounded loops on the (single) ragged edge block.
//
//smat:hotpath
func bcsr2x4Range[T matrix.Float](m *matrix.BCSR[T], x, y []T, lo, hi int) {
	for bi := lo; bi < hi; bi++ {
		var s0, s1 T
		for s := m.RowPtr[bi]; s < m.RowPtr[bi+1]; s++ {
			c := m.ColIdx[s] * 4
			blk := m.Blocks[s*8 : s*8+8]
			if c+3 < m.Cols {
				x0, x1, x2, x3 := x[c], x[c+1], x[c+2], x[c+3]
				s0 += blk[0]*x0 + blk[1]*x1 + blk[2]*x2 + blk[3]*x3
				s1 += blk[4]*x0 + blk[5]*x1 + blk[6]*x2 + blk[7]*x3
			} else {
				for lc := 0; c+lc < m.Cols; lc++ {
					xv := x[c+lc]
					s0 += blk[lc] * xv
					s1 += blk[4+lc] * xv
				}
			}
		}
		r := bi * 2
		y[r] = s0
		if r+1 < m.Rows {
			y[r+1] = s1
		}
	}
}

// bcsr4x2Range is the fully unrolled 4×2 body.
//
//smat:hotpath
func bcsr4x2Range[T matrix.Float](m *matrix.BCSR[T], x, y []T, lo, hi int) {
	for bi := lo; bi < hi; bi++ {
		var s0, s1, s2, s3 T
		for s := m.RowPtr[bi]; s < m.RowPtr[bi+1]; s++ {
			c := m.ColIdx[s] * 2
			blk := m.Blocks[s*8 : s*8+8]
			if c+1 < m.Cols {
				x0, x1 := x[c], x[c+1]
				s0 += blk[0]*x0 + blk[1]*x1
				s1 += blk[2]*x0 + blk[3]*x1
				s2 += blk[4]*x0 + blk[5]*x1
				s3 += blk[6]*x0 + blk[7]*x1
			} else {
				x0 := x[c]
				s0 += blk[0] * x0
				s1 += blk[2] * x0
				s2 += blk[4] * x0
				s3 += blk[6] * x0
			}
		}
		r := bi * 4
		sums := [4]T{s0, s1, s2, s3}
		for lr := 0; lr < 4 && r+lr < m.Rows; lr++ {
			y[r+lr] = sums[lr]
		}
	}
}

// bcsr8x2Range is the fully unrolled 8×2 body — the tall-block shape for
// column-pair structure that matrix.BestBlockSize's square-leaning candidate
// list never picks.
//
//smat:hotpath
func bcsr8x2Range[T matrix.Float](m *matrix.BCSR[T], x, y []T, lo, hi int) {
	for bi := lo; bi < hi; bi++ {
		var s0, s1, s2, s3, s4, s5, s6, s7 T
		for s := m.RowPtr[bi]; s < m.RowPtr[bi+1]; s++ {
			c := m.ColIdx[s] * 2
			blk := m.Blocks[s*16 : s*16+16]
			if c+1 < m.Cols {
				x0, x1 := x[c], x[c+1]
				s0 += blk[0]*x0 + blk[1]*x1
				s1 += blk[2]*x0 + blk[3]*x1
				s2 += blk[4]*x0 + blk[5]*x1
				s3 += blk[6]*x0 + blk[7]*x1
				s4 += blk[8]*x0 + blk[9]*x1
				s5 += blk[10]*x0 + blk[11]*x1
				s6 += blk[12]*x0 + blk[13]*x1
				s7 += blk[14]*x0 + blk[15]*x1
			} else {
				x0 := x[c]
				s0 += blk[0] * x0
				s1 += blk[2] * x0
				s2 += blk[4] * x0
				s3 += blk[6] * x0
				s4 += blk[8] * x0
				s5 += blk[10] * x0
				s6 += blk[12] * x0
				s7 += blk[14] * x0
			}
		}
		r := bi * 8
		sums := [8]T{s0, s1, s2, s3, s4, s5, s6, s7}
		for lr := 0; lr < 8 && r+lr < m.Rows; lr++ {
			y[r+lr] = sums[lr]
		}
	}
}

// bcsrDispatchRange picks the specialised body when one exists. The searched
// shape space (BCSRShapes) is chosen at conversion time and dispatched here
// on the stored block shape, so one registered kernel serves every shape.
//
//smat:hotpath
func bcsrDispatchRange[T matrix.Float](m *matrix.BCSR[T], x, y []T, lo, hi int) {
	switch {
	case m.BR == 2 && m.BC == 2:
		bcsr2x2Range(m, x, y, lo, hi)
	case m.BR == 2 && m.BC == 4:
		bcsr2x4Range(m, x, y, lo, hi)
	case m.BR == 4 && m.BC == 2:
		bcsr4x2Range(m, x, y, lo, hi)
	case m.BR == 4 && m.BC == 4:
		bcsr4x4Range(m, x, y, lo, hi)
	case m.BR == 8 && m.BC == 2:
		bcsr8x2Range(m, x, y, lo, hi)
	default:
		bcsrGenericRange(m, x, y, lo, hi)
	}
}

//smat:hotpath
func runBCSRBasic[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	bcsrGenericRange(m.BCSR, x, y, 0, m.BCSR.BlockRows())
}

//smat:hotpath
func runBCSRBlockSpec[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	bcsrDispatchRange(m.BCSR, x, y, 0, m.BCSR.BlockRows())
}

//smat:hotpath
func bcsrChunk[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	bcsrDispatchRange(m.BCSR, x, y, lo, hi)
}

//smat:hotpath-factory
func runBCSRBlockSpecParallel[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](bcsrChunk[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			bcsrDispatchRange(m.BCSR, x, y, 0, m.BCSR.BlockRows())
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, x, y, 1)
	}
}

// bcsrKernels returns the extension kernels (opt-in via RegisterBCSR).
func bcsrKernels[T matrix.Float]() []*Kernel[T] {
	return []*Kernel[T]{
		{Name: "bcsr_basic", Format: matrix.FormatBCSR, Strategies: 0, run: runBCSRBasic[T]},
		{Name: "bcsr_blockspec", Format: matrix.FormatBCSR, Strategies: StratWidthSpec, run: runBCSRBlockSpec[T]},
		{Name: "bcsr_blockspec_parallel", Format: matrix.FormatBCSR, Strategies: StratWidthSpec | StratParallel, run: runBCSRBlockSpecParallel[T]()},
	}
}

// bcsrBatchKernels returns the batched extension kernels, registered
// alongside the single-vector ones by RegisterBCSR.
func bcsrBatchKernels[T matrix.Float]() []*BatchKernel[T] {
	return []*BatchKernel[T]{
		{Name: "bcsr_batch", Format: matrix.FormatBCSR, Strategies: 0, Params: Params{BatchTile: 4}, run: runBCSRBatch[T]},
		{Name: "bcsr_batch_parallel", Format: matrix.FormatBCSR, Strategies: StratParallel, Params: Params{BatchTile: 4}, run: runBCSRBatchParallel[T]()},
	}
}

// bcsrParamBatchKernels returns the register-tile instances of the batched
// BCSR kernel (see params.go for the stock-format analogue).
func bcsrParamBatchKernels[T matrix.Float]() []*BatchKernel[T] {
	var out []*BatchKernel[T]
	for _, t := range BatchTiles {
		if t == DefaultBatchTile(matrix.FormatBCSR) {
			continue
		}
		p := Params{BatchTile: t}
		out = append(out, &BatchKernel[T]{Name: ParamName("bcsr_batch_parallel", p),
			Format: matrix.FormatBCSR, Strategies: StratParallel,
			Params: p, run: runBCSRBatchParallelTile[T](t)})
	}
	return out
}

// RegisterBCSR adds the blocked-CSR kernels to the library.
func (l *Library[T]) RegisterBCSR() {
	for _, k := range bcsrKernels[T]() {
		l.Register(k)
	}
	for _, b := range bcsrBatchKernels[T]() {
		l.RegisterBatch(b)
	}
	for _, b := range bcsrParamBatchKernels[T]() {
		l.RegisterBatch(b)
	}
}
