package kernels

import "smat/internal/matrix"

// cooBatchRange accumulates entries [lo, hi) into yb for k interleaved
// right-hand sides. Callers must have zeroed the affected rows of yb. The
// per-entry column loop is the unit-stride streak the interleaved layout
// buys: one rows[i]/cols[i]/vals[i] load feeds k multiply-adds. At k=1 only
// the remainder step runs, matching cooRange's order (bit-for-bit coo_basic).
//
//smat:hotpath
func cooBatchRange[T matrix.Float](m *matrix.COO[T], xb, yb []T, k, lo, hi int) {
	rows, cols, vals := m.RowIdx, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		v := vals[i]
		yr := yb[rows[i]*k:]
		xc := xb[cols[i]*k:]
		j := 0
		for ; j+batchTile <= k; j += batchTile {
			yr[j] += v * xc[j]
			yr[j+1] += v * xc[j+1]
			yr[j+2] += v * xc[j+2]
			yr[j+3] += v * xc[j+3]
		}
		for ; j < k; j++ {
			yr[j] += v * xc[j]
		}
	}
}

//smat:hotpath
func runCOOBatch[T matrix.Float](m *Mat[T], xb, yb []T, k int, _ exec[T]) {
	clear(yb)
	cooBatchRange(m.COO, xb, yb, k, 0, m.COO.NNZ())
}

// cooBatchChunk clears and accumulates the rows owned by entry chunk
// [lo, hi); chunk boundaries fall on row boundaries (cooBounds), so the
// scaled row ranges never overlap across concurrent chunks.
//
//smat:hotpath
func cooBatchChunk[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	rLo, rHi := cooChunkRows(m.COO, lo, hi)
	clear(yb[rLo*k : rHi*k])
	cooBatchRange(m.COO, xb, yb, k, lo, hi)
}

//smat:hotpath-factory
func runCOOBatchParallel[T matrix.Float]() batchFn[T] {
	chunk := rangeFn[T](cooBatchChunk[T])
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			clear(yb)
			cooBatchRange(m.COO, xb, yb, k, 0, m.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.EntryBounds, chunk, m, xb, yb, k)
	}
}
