package kernels

import "smat/internal/matrix"

// cooBatchRange accumulates entries [lo, hi) into yb for k interleaved
// right-hand sides at COO's default register-tile width of four. Callers must
// have zeroed the affected rows of yb. The per-entry column loop is the
// unit-stride streak the interleaved layout buys: one rows[i]/cols[i]/vals[i]
// load feeds k multiply-adds. At k=1 only the remainder step runs, matching
// cooRange's order (bit-for-bit coo_basic). cooBatchRangeT2/T8 are the other
// searched tile widths (BatchTiles).
//
//smat:hotpath
func cooBatchRange[T matrix.Float](m *matrix.COO[T], xb, yb []T, k, lo, hi int) {
	rows, cols, vals := m.RowIdx, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		v := vals[i]
		yr := yb[rows[i]*k:]
		xc := xb[cols[i]*k:]
		j := 0
		for ; j+4 <= k; j += 4 {
			yr[j] += v * xc[j]
			yr[j+1] += v * xc[j+1]
			yr[j+2] += v * xc[j+2]
			yr[j+3] += v * xc[j+3]
		}
		for ; j < k; j++ {
			yr[j] += v * xc[j]
		}
	}
}

//smat:hotpath
func cooBatchRangeT2[T matrix.Float](m *matrix.COO[T], xb, yb []T, k, lo, hi int) {
	rows, cols, vals := m.RowIdx, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		v := vals[i]
		yr := yb[rows[i]*k:]
		xc := xb[cols[i]*k:]
		j := 0
		for ; j+2 <= k; j += 2 {
			yr[j] += v * xc[j]
			yr[j+1] += v * xc[j+1]
		}
		for ; j < k; j++ {
			yr[j] += v * xc[j]
		}
	}
}

//smat:hotpath
func cooBatchRangeT8[T matrix.Float](m *matrix.COO[T], xb, yb []T, k, lo, hi int) {
	rows, cols, vals := m.RowIdx, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		v := vals[i]
		yr := yb[rows[i]*k:]
		xc := xb[cols[i]*k:]
		j := 0
		for ; j+8 <= k; j += 8 {
			yr[j] += v * xc[j]
			yr[j+1] += v * xc[j+1]
			yr[j+2] += v * xc[j+2]
			yr[j+3] += v * xc[j+3]
			yr[j+4] += v * xc[j+4]
			yr[j+5] += v * xc[j+5]
			yr[j+6] += v * xc[j+6]
			yr[j+7] += v * xc[j+7]
		}
		for ; j < k; j++ {
			yr[j] += v * xc[j]
		}
	}
}

//smat:hotpath
func runCOOBatch[T matrix.Float](m *Mat[T], xb, yb []T, k int, _ exec[T]) {
	clear(yb)
	cooBatchRange(m.COO, xb, yb, k, 0, m.COO.NNZ())
}

// cooBatchChunk clears and accumulates the rows owned by entry chunk
// [lo, hi); chunk boundaries fall on row boundaries (cooBounds), so the
// scaled row ranges never overlap across concurrent chunks.
//
//smat:hotpath
func cooBatchChunk[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	rLo, rHi := cooChunkRows(m.COO, lo, hi)
	clear(yb[rLo*k : rHi*k])
	cooBatchRange(m.COO, xb, yb, k, lo, hi)
}

//smat:hotpath-factory
func runCOOBatchParallel[T matrix.Float]() batchFn[T] {
	chunk := rangeFn[T](cooBatchChunk[T])
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			clear(yb)
			cooBatchRange(m.COO, xb, yb, k, 0, m.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.EntryBounds, chunk, m, xb, yb, k)
	}
}

// Accumulate-only chunk adapters for the non-default tile widths (used by the
// serial branch, which clears yb wholesale first, and by the HYB tail).
//
//smat:hotpath
func cooBatchAccChunkT2[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	cooBatchRangeT2(m.COO, xb, yb, k, lo, hi)
}

//smat:hotpath
func cooBatchAccChunkT8[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	cooBatchRangeT8(m.COO, xb, yb, k, lo, hi)
}

// Clear-then-accumulate chunks for the parallel phase, mirroring
// cooBatchChunk at the other tile widths.
//
//smat:hotpath
func cooBatchChunkT2[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	rLo, rHi := cooChunkRows(m.COO, lo, hi)
	clear(yb[rLo*k : rHi*k])
	cooBatchRangeT2(m.COO, xb, yb, k, lo, hi)
}

//smat:hotpath
func cooBatchChunkT8[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	rLo, rHi := cooChunkRows(m.COO, lo, hi)
	clear(yb[rLo*k : rHi*k])
	cooBatchRangeT8(m.COO, xb, yb, k, lo, hi)
}

// cooBatchAccTile / cooBatchChunkTile resolve the accumulate-only and
// clear-then-accumulate chunk bodies for a register-tile width at
// registration.
func cooBatchAccTile[T matrix.Float](tile int) rangeFn[T] {
	switch tile {
	case 2:
		return rangeFn[T](cooBatchAccChunkT2[T])
	case 8:
		return rangeFn[T](cooBatchAccChunkT8[T])
	default:
		return rangeFn[T](cooBatchAccChunk[T])
	}
}

func cooBatchChunkTile[T matrix.Float](tile int) rangeFn[T] {
	switch tile {
	case 2:
		return rangeFn[T](cooBatchChunkT2[T])
	case 8:
		return rangeFn[T](cooBatchChunkT8[T])
	default:
		return rangeFn[T](cooBatchChunk[T])
	}
}

// runCOOBatchParallelTile instantiates the parallel batched COO kernel at a
// register-tile width, both funcvals resolved at bind time.
//
//smat:hotpath-factory
func runCOOBatchParallelTile[T matrix.Float](tile int) batchFn[T] {
	acc := cooBatchAccTile[T](tile)
	chunk := cooBatchChunkTile[T](tile)
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			clear(yb)
			acc(m, xb, yb, k, 0, m.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.EntryBounds, chunk, m, xb, yb, k)
	}
}

// cooBatchAccChunk is the default-tile accumulate-only adapter.
//
//smat:hotpath
func cooBatchAccChunk[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	cooBatchRange(m.COO, xb, yb, k, lo, hi)
}
