package kernels

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"smat/internal/gen"
	"smat/internal/matrix"
)

// intCSR builds a matrix with small integer values: every kernel then
// computes bit-for-bit the same result regardless of summation order, so
// tests can require exact equality across formats, kernels, and plans.
func intCSR(rng *rand.Rand, rows, cols, perRow int) *matrix.CSR[float64] {
	var ts []matrix.Triple[float64]
	for r := 0; r < rows; r++ {
		for k := 0; k < perRow; k++ {
			ts = append(ts, matrix.Triple[float64]{
				Row: r, Col: rng.Intn(cols), Val: float64(1 + rng.Intn(8)),
			})
		}
	}
	m, err := matrix.FromTriples(rows, cols, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func intVector(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(1 + i%5)
	}
	return x
}

// engineCases are the structural edge cases of the execution engine:
// asymmetric shapes, empty rows (the COO chunk-clear hazard), single-row and
// single-column matrices, the empty matrix, and a banded matrix big enough
// to take the parallel pooled path in every format.
func engineCases() map[string]*matrix.CSR[float64] {
	rng := rand.New(rand.NewSource(11))
	emptyRows := func() *matrix.CSR[float64] {
		// Entries only in rows r ≡ 3 (mod 7): leading, trailing, and
		// interior runs of empty rows.
		var ts []matrix.Triple[float64]
		for r := 3; r < 300; r += 7 {
			for k := 0; k < 5; k++ {
				ts = append(ts, matrix.Triple[float64]{Row: r, Col: rng.Intn(300), Val: float64(1 + rng.Intn(4))})
			}
		}
		m, err := matrix.FromTriples(300, 300, ts)
		if err != nil {
			panic(err)
		}
		return m
	}
	empty, err := matrix.FromTriples[float64](10, 10, nil)
	if err != nil {
		panic(err)
	}
	return map[string]*matrix.CSR[float64]{
		"asymmetric":      intCSR(rng, 37, 211, 9),
		"tall":            intCSR(rng, 1500, 3, 2),
		"empty-rows":      emptyRows(),
		"single-row":      intCSR(rng, 1, 400, 250),
		"single-col":      intCSR(rng, 400, 1, 1),
		"empty":           empty,
		"banded-parallel": gen.Laplacian2D5pt[float64](150, 150), // 22500 rows, integer values, > serialWork
	}
}

// TestEveryKernelPlanMatchesBasicBitForBit runs every registered kernel
// (including the HYB/BCSR extensions) under every plan shape — thread counts
// 1/2/3/8, spawned and pooled dispatch — and requires the result to equal
// csr_basic's bit for bit.
func TestEveryKernelPlanMatchesBasicBitForBit(t *testing.T) {
	lib := NewLibrary[float64]()
	lib.RegisterHYB()
	lib.RegisterBCSR()
	basic := lib.Basic(matrix.FormatCSR)

	formats := append(append([]matrix.Format{}, matrix.Formats[:]...), matrix.FormatHYB, matrix.FormatBCSR)
	for name, m := range engineCases() {
		x := intVector(m.Cols)
		want := make([]float64, m.Rows)
		basic.Run(&Mat[float64]{Format: matrix.FormatCSR, CSR: m}, x, want, 1)

		for _, threads := range []int{1, 2, 3, 8} {
			pool := NewPool[float64](threads)
			for _, f := range formats {
				mat, err := Convert(m, f, 0)
				if err != nil {
					continue // fill guard: format unsuitable for this shape
				}
				for _, k := range lib.ForFormat(f) {
					for _, pooled := range []bool{false, true} {
						y := make([]float64, m.Rows)
						for i := range y {
							y[i] = 123 // must be fully overwritten
						}
						if pooled {
							k.RunPooled(mat, x, y, pool)
						} else {
							k.Run(mat, x, y, threads)
						}
						for i := range y {
							if y[i] != want[i] {
								t.Fatalf("%s: kernel %s threads=%d pooled=%v: y[%d] = %g, want %g",
									name, k.Name, threads, pooled, i, y[i], want[i])
							}
						}
					}
				}
			}
			pool.Close()
		}
	}
}

// TestPoolConcurrentDistinctMatrices hammers one shared pool from many
// goroutines, each running SpMV on its own matrix. Dispatches that find the
// pool busy must overflow to per-call goroutines with correct results; run
// under -race this is the engine's concurrency contract.
func TestPoolConcurrentDistinctMatrices(t *testing.T) {
	const goroutines = 8
	iters := 25
	if testing.Short() {
		iters = 5
	}
	lib := NewLibrary[float64]()
	basic := lib.Basic(matrix.FormatCSR)
	k := lib.Lookup("csr_parallel_nnz_unroll4")
	pool := NewPool[float64](4)
	defer pool.Close()

	mats := make([]*Mat[float64], goroutines)
	xs := make([][]float64, goroutines)
	wants := make([][]float64, goroutines)
	for g := 0; g < goroutines; g++ {
		m := gen.Laplacian2D5pt[float64](60+g, 60+g) // > serialWork nonzeros, integer values
		mats[g] = &Mat[float64]{Format: matrix.FormatCSR, CSR: m}
		xs[g] = intVector(m.Cols)
		wants[g] = make([]float64, m.Rows)
		basic.Run(mats[g], xs[g], wants[g], 1)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			y := make([]float64, len(wants[g]))
			for i := 0; i < iters; i++ {
				k.RunPooled(mats[g], xs[g], y, pool)
				for j := range y {
					if y[j] != wants[g][j] {
						t.Errorf("goroutine %d iter %d: y[%d] = %g, want %g", g, i, j, y[j], wants[g][j])
						return
					}
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
}

// TestCSRSteadyStatePathZeroAlloc is the engine's allocation contract: once
// the plan is cached and the workers are up, a pooled CSR SpMV performs zero
// heap allocations per call.
func TestCSRSteadyStatePathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	rng := rand.New(rand.NewSource(3))
	m := intCSR(rng, 5000, 5000, 6) // ~30k nonzeros: parallel path
	mat := &Mat[float64]{Format: matrix.FormatCSR, CSR: m}
	lib := NewLibrary[float64]()
	x := intVector(m.Cols)
	y := make([]float64, m.Rows)
	pool := NewPool[float64](4)
	defer pool.Close()
	for _, name := range []string{"csr_parallel", "csr_parallel_nnz", "csr_parallel_nnz_unroll4"} {
		k := lib.Lookup(name)
		k.RunPooled(mat, x, y, pool) // warm: compute the plan, start the workers
		if allocs := testing.AllocsPerRun(100, func() { k.RunPooled(mat, x, y, pool) }); allocs != 0 {
			t.Errorf("%s: %.1f allocs per steady-state call, want 0", name, allocs)
		}
	}
}

// TestPlanWorkBasedCutoff pins the serial-cutoff fix: the decision counts
// estimated work (nonzeros), not rows, in both directions.
func TestPlanWorkBasedCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(4))

	// Few rows, heavy nonzero load: the old rows<2048 guard ran this
	// serially; the plan must parallelise it.
	heavy := intCSR(rng, 1000, 4000, 500) // ~500k nonzeros
	mat := &Mat[float64]{Format: matrix.FormatCSR, CSR: heavy}
	if p := mat.PlanFor(4); p.Serial {
		t.Errorf("1000x4000 with %d nnz planned serial; want parallel", heavy.NNZ())
	} else {
		if len(p.NNZBounds) < 2 || p.NNZBounds[len(p.NNZBounds)-1] != heavy.Rows {
			t.Errorf("bad NNZBounds %v", p.NNZBounds)
		}
		if len(p.RowBounds) != 5 {
			t.Errorf("RowBounds %v, want 4 chunks", p.RowBounds)
		}
	}

	// Many rows, almost no work: the old guard fanned out goroutines for
	// 100 nonzeros; the plan must run it serially.
	var ts []matrix.Triple[float64]
	for i := 0; i < 100; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: i * 50, Col: i, Val: 1})
	}
	sparse, err := matrix.FromTriples(5000, 5000, ts) // 100 nnz spread over 5000 rows
	if err != nil {
		t.Fatal(err)
	}
	mat = &Mat[float64]{Format: matrix.FormatCSR, CSR: sparse}
	if p := mat.PlanFor(4); !p.Serial {
		t.Errorf("5000x5000 with 100 nnz planned parallel; want serial")
	}

	// Thread count 1 is always serial.
	if p := mat.PlanFor(1); !p.Serial {
		t.Error("threads=1 plan not serial")
	}
}

// TestPlanCachedPerThreadCount checks the plan cache on the Mat handle: same
// thread count reuses the plan, a different count recomputes.
func TestPlanCachedPerThreadCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mat := &Mat[float64]{Format: matrix.FormatCSR, CSR: intCSR(rng, 2000, 2000, 10)}
	p4 := mat.PlanFor(4)
	if mat.PlanFor(4) != p4 {
		t.Error("PlanFor(4) recomputed a cached plan")
	}
	p2 := mat.PlanFor(2)
	if p2 == p4 {
		t.Error("PlanFor(2) returned the threads=4 plan")
	}
	if p2.Threads != 2 || p4.Threads != 4 {
		t.Errorf("plan thread counts %d/%d, want 2/4", p2.Threads, p4.Threads)
	}
}

// TestCOOChunkRowsCoverEveryRowOnce verifies the folded COO clear: the
// chunk-owned row ranges tile [0, Rows) exactly, including leading,
// interior, and trailing empty rows.
func TestCOOChunkRowsCoverEveryRowOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var ts []matrix.Triple[float64]
	for r := 5; r < 900; r += 3 { // rows 0-4 and 900+ empty, gaps between
		for k := 0; k < 4; k++ {
			ts = append(ts, matrix.Triple[float64]{Row: r, Col: rng.Intn(1000), Val: 1})
		}
	}
	m, err := matrix.FromTriples(1000, 1000, ts)
	if err != nil {
		t.Fatal(err)
	}
	c := m.ToCOO()
	for _, threads := range []int{2, 3, 7, 16} {
		bounds := cooBounds(c, threads)
		covered := make([]int, c.Rows)
		for t := 0; t < len(bounds)-1; t++ {
			rLo, rHi := cooChunkRows(c, bounds[t], bounds[t+1])
			for r := rLo; r < rHi; r++ {
				covered[r]++
			}
		}
		for r, n := range covered {
			if n != 1 {
				t.Fatalf("threads=%d: row %d cleared %d times, want exactly once", threads, r, n)
			}
		}
	}
}

// TestPoolClosedFallsBack checks that kernels dispatched to a closed pool
// still compute correct results via the per-call spawn path.
func TestPoolClosedFallsBack(t *testing.T) {
	lib := NewLibrary[float64]()
	m := gen.Laplacian2D5pt[float64](100, 100)
	mat := &Mat[float64]{Format: matrix.FormatCSR, CSR: m}
	x := intVector(m.Cols)
	want := make([]float64, m.Rows)
	lib.Basic(matrix.FormatCSR).Run(mat, x, want, 1)

	pool := NewPool[float64](4)
	k := lib.Lookup("csr_parallel_nnz")
	y := make([]float64, m.Rows)
	k.RunPooled(mat, x, y, pool) // workers up
	pool.Close()
	clear(y)
	k.RunPooled(mat, x, y, pool) // closed: must fall back, not hang
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("closed-pool fallback: y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	pool.Close() // double Close is a no-op
}

// TestNilPoolRunPooled: a nil pool degrades to the spawn path.
func TestNilPoolRunPooled(t *testing.T) {
	lib := NewLibrary[float64]()
	m := gen.Laplacian2D5pt[float64](50, 50)
	mat := &Mat[float64]{Format: matrix.FormatCSR, CSR: m}
	x := intVector(m.Cols)
	want := make([]float64, m.Rows)
	lib.Basic(matrix.FormatCSR).Run(mat, x, want, 1)
	y := make([]float64, m.Rows)
	lib.Lookup("csr_parallel").RunPooled(mat, x, y, nil)
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("nil-pool RunPooled: y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

// TestPoolThreadsResolvedOnce: NewPool resolves ≤0 to GOMAXPROCS at
// construction (the hoisted lookup) and reports it.
func TestPoolThreadsResolvedOnce(t *testing.T) {
	p := NewPool[float64](0)
	defer p.Close()
	if p.Threads() < 1 {
		t.Errorf("Threads() = %d, want ≥ 1", p.Threads())
	}
	p3 := NewPool[float64](3)
	defer p3.Close()
	if p3.Threads() != 3 {
		t.Errorf("Threads() = %d, want 3", p3.Threads())
	}
}

func BenchmarkSpMVSteadyState(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	workloads := []struct {
		name string
		m    *matrix.CSR[float64]
	}{
		{"mid-csr-20k", gen.RandomUniform[float64](20000, 20000, 30, rng)},
		{"small-csr-5k", gen.RandomUniform[float64](5000, 5000, 8, rng)},
		// Just past the serial cutoff: dispatch overhead dominates, so this
		// row isolates spawn cost vs pool wake cost.
		{"tiny-csr-2k", gen.RandomUniform[float64](2000, 2000, 6, rng)},
	}
	lib := NewLibrary[float64]()
	// 8 threads regardless of GOMAXPROCS: the comparison is dispatch
	// overhead (8 goroutine spawns per call vs 7 channel wakes), which the
	// scheduler exposes even when the chunks time-slice on fewer cores.
	pool := NewPool[float64](8)
	defer pool.Close()
	threads := pool.Threads()
	for _, w := range workloads {
		mat, err := Convert(w.m, matrix.FormatCSR, 0)
		if err != nil {
			b.Fatal(err)
		}
		x := intVector(w.m.Cols)
		y := make([]float64, w.m.Rows)
		for _, name := range []string{"csr_parallel", "csr_parallel_nnz", "csr_parallel_nnz_unroll4"} {
			k := lib.Lookup(name)
			for _, mode := range []string{"spawn", "pooled"} {
				b.Run(fmt.Sprintf("%s/%s/%s", w.name, name, mode), func(b *testing.B) {
					b.SetBytes(int64(w.m.NNZ() * 16))
					b.ReportAllocs()
					if mode == "pooled" {
						k.RunPooled(mat, x, y, pool) // warm plan + workers outside the timer
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							k.RunPooled(mat, x, y, pool)
						}
					} else {
						for i := 0; i < b.N; i++ {
							k.Run(mat, x, y, threads)
						}
					}
					b.ReportMetric(float64(FLOPs(w.m.NNZ()))/1e9*float64(b.N)/b.Elapsed().Seconds(), "gflops")
				})
			}
		}
	}
}
