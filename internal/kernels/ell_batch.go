package kernels

import "smat/internal/matrix"

// ellBatchRange computes rows [lo, hi) of Y = A·X for k interleaved
// right-hand sides, row-major, at ELL's default register-tile width of
// eight: one pass over each row's slots with a register tile over the RHS
// dimension; the eight-accumulator pass halves how often the stride-Rows
// slot data and column indices are re-walked per row, with a four-wide
// middle pass before the scalar remainder. Remainder columns use
// ellRowRange's accumulation order, so k=1 is bit-for-bit ell_rowmajor.
// ellBatchRangeT2/T4 are the narrower searched tile widths (BatchTiles).
//
//smat:hotpath
func ellBatchRange[T matrix.Float](e *matrix.ELL[T], xb, yb []T, k, lo, hi int) {
	w, rows := e.Width, e.Rows
	for r := lo; r < hi; r++ {
		yr := yb[r*k : (r+1)*k]
		j := 0
		for ; j+8 <= k; j += 8 {
			var s0, s1, s2, s3, s4, s5, s6, s7 T
			for n := 0; n < w; n++ {
				v := e.Data[n*rows+r]
				c := int(e.ColIdx[n*rows+r])
				xc := xb[c*k+j : c*k+j+8]
				s0 += v * xc[0]
				s1 += v * xc[1]
				s2 += v * xc[2]
				s3 += v * xc[3]
				s4 += v * xc[4]
				s5 += v * xc[5]
				s6 += v * xc[6]
				s7 += v * xc[7]
			}
			yr[j], yr[j+1], yr[j+2], yr[j+3] = s0, s1, s2, s3
			yr[j+4], yr[j+5], yr[j+6], yr[j+7] = s4, s5, s6, s7
		}
		for ; j+4 <= k; j += 4 {
			var s0, s1, s2, s3 T
			for n := 0; n < w; n++ {
				v := e.Data[n*rows+r]
				c := int(e.ColIdx[n*rows+r])
				xc := xb[c*k+j : c*k+j+4]
				s0 += v * xc[0]
				s1 += v * xc[1]
				s2 += v * xc[2]
				s3 += v * xc[3]
			}
			yr[j], yr[j+1], yr[j+2], yr[j+3] = s0, s1, s2, s3
		}
		for ; j < k; j++ {
			var sum T
			for n := 0; n < w; n++ {
				sum += e.Data[n*rows+r] * xb[e.ColIdx[n*rows+r]*k+j]
			}
			yr[j] = sum
		}
	}
}

//smat:hotpath
func ellBatchChunk[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	ellBatchRange(m.ELL, xb, yb, k, lo, hi)
}

//smat:hotpath
func runELLBatch[T matrix.Float](m *Mat[T], xb, yb []T, k int, _ exec[T]) {
	ellBatchRange(m.ELL, xb, yb, k, 0, m.ELL.Rows)
}

//smat:hotpath-factory
func runELLBatchParallel[T matrix.Float]() batchFn[T] {
	chunk := rangeFn[T](ellBatchChunk[T])
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			ellBatchRange(m.ELL, xb, yb, k, 0, m.ELL.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, xb, yb, k)
	}
}

// ellBatchRangeT2 is the two-accumulator tile.
//
//smat:hotpath
func ellBatchRangeT2[T matrix.Float](e *matrix.ELL[T], xb, yb []T, k, lo, hi int) {
	w, rows := e.Width, e.Rows
	for r := lo; r < hi; r++ {
		yr := yb[r*k : (r+1)*k]
		j := 0
		for ; j+2 <= k; j += 2 {
			var s0, s1 T
			for n := 0; n < w; n++ {
				v := e.Data[n*rows+r]
				c := int(e.ColIdx[n*rows+r])
				xc := xb[c*k+j : c*k+j+2]
				s0 += v * xc[0]
				s1 += v * xc[1]
			}
			yr[j], yr[j+1] = s0, s1
		}
		for ; j < k; j++ {
			var sum T
			for n := 0; n < w; n++ {
				sum += e.Data[n*rows+r] * xb[e.ColIdx[n*rows+r]*k+j]
			}
			yr[j] = sum
		}
	}
}

// ellBatchRangeT4 is the four-accumulator tile without the double-wide pass.
//
//smat:hotpath
func ellBatchRangeT4[T matrix.Float](e *matrix.ELL[T], xb, yb []T, k, lo, hi int) {
	w, rows := e.Width, e.Rows
	for r := lo; r < hi; r++ {
		yr := yb[r*k : (r+1)*k]
		j := 0
		for ; j+4 <= k; j += 4 {
			var s0, s1, s2, s3 T
			for n := 0; n < w; n++ {
				v := e.Data[n*rows+r]
				c := int(e.ColIdx[n*rows+r])
				xc := xb[c*k+j : c*k+j+4]
				s0 += v * xc[0]
				s1 += v * xc[1]
				s2 += v * xc[2]
				s3 += v * xc[3]
			}
			yr[j], yr[j+1], yr[j+2], yr[j+3] = s0, s1, s2, s3
		}
		for ; j < k; j++ {
			var sum T
			for n := 0; n < w; n++ {
				sum += e.Data[n*rows+r] * xb[e.ColIdx[n*rows+r]*k+j]
			}
			yr[j] = sum
		}
	}
}

//smat:hotpath
func ellBatchChunkT2[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	ellBatchRangeT2(m.ELL, xb, yb, k, lo, hi)
}

//smat:hotpath
func ellBatchChunkT4[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	ellBatchRangeT4(m.ELL, xb, yb, k, lo, hi)
}

// ellBatchChunkTile resolves the chunk body for a register-tile width at
// registration.
func ellBatchChunkTile[T matrix.Float](tile int) rangeFn[T] {
	switch tile {
	case 2:
		return rangeFn[T](ellBatchChunkT2[T])
	case 4:
		return rangeFn[T](ellBatchChunkT4[T])
	default:
		return rangeFn[T](ellBatchChunk[T])
	}
}

// runELLBatchParallelTile instantiates the parallel batched ELL kernel at a
// register-tile width, resolved to a chunk funcval at bind time.
//
//smat:hotpath-factory
func runELLBatchParallelTile[T matrix.Float](tile int) batchFn[T] {
	chunk := ellBatchChunkTile[T](tile)
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			chunk(m, xb, yb, k, 0, m.ELL.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, xb, yb, k)
	}
}
