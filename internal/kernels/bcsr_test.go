package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smat/internal/matrix"
)

func TestBCSRKernelsMatchDenseReferenceProperty(t *testing.T) {
	lib := NewLibrary[float64]()
	lib.RegisterBCSR()
	kernels := lib.ForFormat(matrix.FormatBCSR)
	if len(kernels) != 3 {
		t.Fatalf("%d BCSR kernels, want 3", len(kernels))
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		m := randCSR(rng, rows, cols, 0.05+rng.Float64()*0.4)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		m.ToDense().MulVec(x, want)
		// Exercise the generic body and both specialised bodies.
		for _, bs := range [][2]int{{2, 2}, {4, 4}, {3, 5}} {
			b, err := m.ToBCSR(bs[0], bs[1], 0)
			if err != nil {
				return false
			}
			mat := &Mat[float64]{Format: matrix.FormatBCSR, BCSR: b}
			for _, k := range kernels {
				y := make([]float64, rows)
				k.Run(mat, x, y, 3)
				if !matrix.VecApproxEqual(y, want, 1e-9) {
					t.Logf("kernel %s (%dx%d blocks) mismatch (seed %d)", k.Name, bs[0], bs[1], seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBCSRConvertAutoBlockSize(t *testing.T) {
	// A 2x2-block structured matrix: Convert with auto selection.
	rng := rand.New(rand.NewSource(5))
	var ts []matrix.Triple[float64]
	for b := 0; b < 100; b++ {
		bi, bj := rng.Intn(50), rng.Intn(50)
		for lr := 0; lr < 2; lr++ {
			for lc := 0; lc < 2; lc++ {
				ts = append(ts, matrix.Triple[float64]{Row: bi*2 + lr, Col: bj*2 + lc, Val: 1})
			}
		}
	}
	m, err := matrix.FromTriples(100, 100, ts)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := Convert(m, matrix.FormatBCSR, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mat.BCSR.BR < 2 || mat.BCSR.BC < 2 {
		t.Errorf("auto block size %dx%d, want ≥2x2", mat.BCSR.BR, mat.BCSR.BC)
	}
	r, c := mat.Dims()
	if r != 100 || c != 100 {
		t.Errorf("Dims = %dx%d", r, c)
	}
}

func TestBCSRKernelsLargeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var ts []matrix.Triple[float64]
	n := 6000
	for b := 0; b < 8000; b++ {
		bi, bj := rng.Intn(n/4), rng.Intn(n/4)
		for lr := 0; lr < 4; lr++ {
			for lc := 0; lc < 4; lc++ {
				ts = append(ts, matrix.Triple[float64]{Row: bi*4 + lr, Col: bj*4 + lc, Val: rng.NormFloat64()})
			}
		}
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.ToBCSR(4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	mat := &Mat[float64]{Format: matrix.FormatBCSR, BCSR: b}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	csrMat := &Mat[float64]{Format: matrix.FormatCSR, CSR: m}
	NewLibrary[float64]().Basic(matrix.FormatCSR).Run(csrMat, x, want, 1)
	lib := NewLibrary[float64]()
	lib.RegisterBCSR()
	for _, threads := range []int{1, 4} {
		for _, k := range lib.ForFormat(matrix.FormatBCSR) {
			y := make([]float64, n)
			k.Run(mat, x, y, threads)
			if !matrix.VecApproxEqual(y, want, 1e-9) {
				t.Errorf("kernel %s (threads=%d) wrong result", k.Name, threads)
			}
		}
	}
}
