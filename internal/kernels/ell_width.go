package kernels

import "smat/internal/matrix"

// ellWidthRange computes rows [lo, hi) with kernels fully specialised per
// small width: the column-major layout makes each slot a contiguous slice,
// and for widths up to four the row body is straight-line code with no inner
// loop — the scalar-code analogue of the vectorisation that makes ELL
// attractive on SIMD hardware. Wider matrices fall back to the row-major
// loop.
//
//smat:hotpath
func ellWidthRange[T matrix.Float](e *matrix.ELL[T], x, y []T, lo, hi int) {
	rows := e.Rows
	switch e.Width {
	case 0:
		clear(y[lo:hi])
	case 1:
		d0, i0 := e.Data, e.ColIdx
		for r := lo; r < hi; r++ {
			y[r] = d0[r] * x[i0[r]]
		}
	case 2:
		d0, i0 := e.Data[:rows], e.ColIdx[:rows]
		d1, i1 := e.Data[rows:], e.ColIdx[rows:]
		for r := lo; r < hi; r++ {
			y[r] = d0[r]*x[i0[r]] + d1[r]*x[i1[r]]
		}
	case 3:
		d0, i0 := e.Data[:rows], e.ColIdx[:rows]
		d1, i1 := e.Data[rows:2*rows], e.ColIdx[rows:2*rows]
		d2, i2 := e.Data[2*rows:], e.ColIdx[2*rows:]
		for r := lo; r < hi; r++ {
			y[r] = d0[r]*x[i0[r]] + d1[r]*x[i1[r]] + d2[r]*x[i2[r]]
		}
	case 4:
		d0, i0 := e.Data[:rows], e.ColIdx[:rows]
		d1, i1 := e.Data[rows:2*rows], e.ColIdx[rows:2*rows]
		d2, i2 := e.Data[2*rows:3*rows], e.ColIdx[2*rows:3*rows]
		d3, i3 := e.Data[3*rows:], e.ColIdx[3*rows:]
		for r := lo; r < hi; r++ {
			y[r] = (d0[r]*x[i0[r]] + d1[r]*x[i1[r]]) + (d2[r]*x[i2[r]] + d3[r]*x[i3[r]])
		}
	default:
		ellRowRange(e, x, y, lo, hi)
	}
}

//smat:hotpath
func runELLWidth[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	ellWidthRange(m.ELL, x, y, 0, m.ELL.Rows)
}

//smat:hotpath
func ellWidthChunk[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	ellWidthRange(m.ELL, x, y, lo, hi)
}

//smat:hotpath-factory
func runELLWidthParallel[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](ellWidthChunk[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			ellWidthRange(m.ELL, x, y, 0, m.ELL.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, x, y, 1)
	}
}
