package kernels

import "smat/internal/matrix"

// HYB batched kernels: the ELL part runs the batched row-major loop (writing
// every yb element), then the COO overflow accumulates on top with the
// batched COO loop — the same two-phase shape as the single-vector HYB
// kernels. At k=1 the per-element addition sequence matches hyb_basic
// (sequential over ELL slots, then tail entries in order), so the batched
// oracle pins them bit-for-bit.

//smat:hotpath
func runHYBBatch[T matrix.Float](m *Mat[T], xb, yb []T, k int, _ exec[T]) {
	h := m.HYB
	ellBatchRange(h.ELL, xb, yb, k, 0, h.ELL.Rows)
	cooBatchRange(h.COO, xb, yb, k, 0, h.COO.NNZ())
}

//smat:hotpath
func hybELLBatchChunk[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	ellBatchRange(m.HYB.ELL, xb, yb, k, lo, hi)
}

//smat:hotpath
func hybCOOBatchChunk[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	cooBatchRange(m.HYB.COO, xb, yb, k, lo, hi)
}

//smat:hotpath-factory
func runHYBBatchParallel[T matrix.Float]() batchFn[T] {
	ellChunk := rangeFn[T](hybELLBatchChunk[T])
	cooChunk := rangeFn[T](hybCOOBatchChunk[T])
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		h := m.HYB
		if ex.plan.Serial {
			ellBatchRange(h.ELL, xb, yb, k, 0, h.ELL.Rows)
			cooBatchRange(h.COO, xb, yb, k, 0, h.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.RowBounds, ellChunk, m, xb, yb, k)
		// As in the single-vector kernel, the COO tail accumulates after the
		// ELL phase's barrier; tail chunks stay row-aligned.
		if ex.plan.TailSerial {
			cooBatchRange(h.COO, xb, yb, k, 0, h.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.EntryBounds, cooChunk, m, xb, yb, k)
	}
}

// Tile-width instances of the HYB phases: the chosen register tile applies
// to both the ELL pass and the COO overflow.
//
//smat:hotpath
func hybELLBatchChunkT2[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	ellBatchRangeT2(m.HYB.ELL, xb, yb, k, lo, hi)
}

//smat:hotpath
func hybELLBatchChunkT4[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	ellBatchRangeT4(m.HYB.ELL, xb, yb, k, lo, hi)
}

//smat:hotpath
func hybCOOBatchChunkT2[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	cooBatchRangeT2(m.HYB.COO, xb, yb, k, lo, hi)
}

//smat:hotpath
func hybCOOBatchChunkT8[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	cooBatchRangeT8(m.HYB.COO, xb, yb, k, lo, hi)
}

// hybELLBatchChunkTile / hybCOOBatchChunkTile resolve the phase bodies for a
// register-tile width at registration.
func hybELLBatchChunkTile[T matrix.Float](tile int) rangeFn[T] {
	switch tile {
	case 2:
		return rangeFn[T](hybELLBatchChunkT2[T])
	case 4:
		return rangeFn[T](hybELLBatchChunkT4[T])
	default:
		return rangeFn[T](hybELLBatchChunk[T])
	}
}

func hybCOOBatchChunkTile[T matrix.Float](tile int) rangeFn[T] {
	switch tile {
	case 2:
		return rangeFn[T](hybCOOBatchChunkT2[T])
	case 8:
		return rangeFn[T](hybCOOBatchChunkT8[T])
	default:
		return rangeFn[T](hybCOOBatchChunk[T])
	}
}

// runHYBBatchParallelTile instantiates the parallel batched HYB kernel at a
// register-tile width, both phase funcvals resolved at bind time.
//
//smat:hotpath-factory
func runHYBBatchParallelTile[T matrix.Float](tile int) batchFn[T] {
	ellChunk := hybELLBatchChunkTile[T](tile)
	cooChunk := hybCOOBatchChunkTile[T](tile)
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		h := m.HYB
		if ex.plan.Serial {
			ellChunk(m, xb, yb, k, 0, h.ELL.Rows)
			cooChunk(m, xb, yb, k, 0, h.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.RowBounds, ellChunk, m, xb, yb, k)
		if ex.plan.TailSerial {
			cooChunk(m, xb, yb, k, 0, h.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.EntryBounds, cooChunk, m, xb, yb, k)
	}
}
