package kernels

import "smat/internal/matrix"

// HYB batched kernels: the ELL part runs the batched row-major loop (writing
// every yb element), then the COO overflow accumulates on top with the
// batched COO loop — the same two-phase shape as the single-vector HYB
// kernels. At k=1 the per-element addition sequence matches hyb_basic
// (sequential over ELL slots, then tail entries in order), so the batched
// oracle pins them bit-for-bit.

//smat:hotpath
func runHYBBatch[T matrix.Float](m *Mat[T], xb, yb []T, k int, _ exec[T]) {
	h := m.HYB
	ellBatchRange(h.ELL, xb, yb, k, 0, h.ELL.Rows)
	cooBatchRange(h.COO, xb, yb, k, 0, h.COO.NNZ())
}

//smat:hotpath
func hybELLBatchChunk[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	ellBatchRange(m.HYB.ELL, xb, yb, k, lo, hi)
}

//smat:hotpath
func hybCOOBatchChunk[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	cooBatchRange(m.HYB.COO, xb, yb, k, lo, hi)
}

//smat:hotpath-factory
func runHYBBatchParallel[T matrix.Float]() batchFn[T] {
	ellChunk := rangeFn[T](hybELLBatchChunk[T])
	cooChunk := rangeFn[T](hybCOOBatchChunk[T])
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		h := m.HYB
		if ex.plan.Serial {
			ellBatchRange(h.ELL, xb, yb, k, 0, h.ELL.Rows)
			cooBatchRange(h.COO, xb, yb, k, 0, h.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.RowBounds, ellChunk, m, xb, yb, k)
		// As in the single-vector kernel, the COO tail accumulates after the
		// ELL phase's barrier; tail chunks stay row-aligned.
		if ex.plan.TailSerial {
			cooBatchRange(h.COO, xb, yb, k, 0, h.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.EntryBounds, cooChunk, m, xb, yb, k)
	}
}
