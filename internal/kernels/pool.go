package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"

	"smat/internal/matrix"
)

// Pool is a persistent set of worker goroutines executing kernel chunks: the
// steady-state replacement for spawning `threads` goroutines on every SpMV
// call. Construct one per Library/Tuner with NewPool and pass it to
// Kernel.RunPooled. Chunk 0 always runs on the dispatching goroutine;
// workers start lazily on the first parallel dispatch and exit when the pool
// is closed or garbage-collected.
//
// A Pool is safe for concurrent use: one dispatch owns the workers at a
// time, and concurrent dispatches overflow to per-call goroutines instead of
// queueing behind each other.
type Pool[T matrix.Float] struct {
	s *poolState[T]
}

// poolState is the worker-visible part of the pool. Workers hold only this
// inner struct, so an abandoned Pool becomes unreachable, its finalizer
// runs, and the workers exit instead of leaking.
type poolState[T matrix.Float] struct {
	threads int

	mu      sync.Mutex // owns the dispatch fields and worker startup
	started bool
	closed  bool

	// Dispatch state, written under mu before the workers are woken:
	// wake[i] hands chunk i+1 to worker i, and the last worker to finish
	// signals done (the barrier the dispatcher blocks on). Exactly one of
	// fn (SpMV dispatch) and job (generic chunked dispatch, e.g. SpGEMM)
	// is non-nil per dispatch.
	fn      rangeFn[T]
	job     func(chunk, lo, hi int)
	mat     *Mat[T]
	x, y    []T
	k       int
	bounds  []int
	pending atomic.Int32
	wake    []chan struct{}
	done    chan struct{}
	stop    chan struct{}

	// arena is the SpGEMM scratch attached to this pool, handed out under
	// its own lock (arenaOf) so repeated products reuse it while concurrent
	// callers fall back to private scratch.
	arenaMu sync.Mutex
	arena   *spgemmArena[T]
}

// NewPool builds a worker pool with the given thread fan-out; threads ≤ 0
// resolves GOMAXPROCS once, here, instead of on every kernel call.
func NewPool[T matrix.Float](threads int) *Pool[T] {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	s := &poolState[T]{
		threads: threads,
		done:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	p := &Pool[T]{s: s}
	runtime.SetFinalizer(p, func(p *Pool[T]) { p.s.shutdown() })
	return p
}

// Threads returns the pool's resolved thread count.
func (p *Pool[T]) Threads() int { return p.s.threads }

// Close stops the workers. Kernels may still be dispatched to a closed pool;
// they fall back to per-call goroutine fan-out.
func (p *Pool[T]) Close() {
	runtime.SetFinalizer(p, nil)
	p.s.shutdown()
}

func (s *poolState[T]) shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.stop)
	}
}

// tryRun dispatches the bounds chunks across the workers, returning false
// when the pool is busy with another SpMV or closed (the caller then falls
// back to spawning). The dispatching goroutine computes chunk 0 itself and
// blocks on the completion barrier. The whole dispatch allocates nothing.
//
//smat:wake-barrier
func (s *poolState[T]) tryRun(bounds []int, fn rangeFn[T], m *Mat[T], x, y []T, k int) bool {
	if !s.mu.TryLock() {
		return false
	}
	defer s.mu.Unlock()
	nchunks := len(bounds) - 1
	if s.closed || nchunks > s.threads {
		return false
	}
	if !s.started {
		s.start()
	}
	s.fn, s.mat, s.x, s.y, s.k, s.bounds = fn, m, x, y, k, bounds
	s.pending.Store(int32(nchunks - 1))
	for w := 0; w < nchunks-1; w++ {
		s.wake[w] <- struct{}{}
	}
	fn(m, x, y, k, bounds[0], bounds[1])
	<-s.done
	s.fn, s.mat, s.x, s.y, s.bounds = nil, nil, nil, nil, nil
	return true
}

// RunChunks executes fn over the half-open chunks of bounds — chunk c covers
// [bounds[c], bounds[c+1]) — reusing the pool's persistent workers. Chunk 0
// runs on the calling goroutine. When the pool is nil, busy with another
// dispatch, closed, or the chunk count exceeds the worker fan-out, the call
// falls back to one fresh goroutine per extra chunk, so it always completes.
// This is the dispatch substrate for non-SpMV row-blocked work (SpGEMM,
// Galerkin products) that wants the same threads without new goroutines.
func (p *Pool[T]) RunChunks(bounds []int, fn func(chunk, lo, hi int)) {
	nchunks := len(bounds) - 1
	if nchunks <= 0 {
		return
	}
	if nchunks == 1 {
		fn(0, bounds[0], bounds[1])
		return
	}
	if p != nil && p.s.tryRunJob(bounds, fn) {
		return
	}
	spawnJobChunks(bounds, fn)
}

// tryRunJob is tryRun's generic-job twin: same ownership, wake, and barrier
// protocol, with s.job carrying the closure instead of the SpMV quintuple.
//
//smat:wake-barrier
func (s *poolState[T]) tryRunJob(bounds []int, fn func(chunk, lo, hi int)) bool {
	if !s.mu.TryLock() {
		return false
	}
	defer s.mu.Unlock()
	nchunks := len(bounds) - 1
	if s.closed || nchunks > s.threads {
		return false
	}
	if !s.started {
		s.start()
	}
	s.job, s.bounds = fn, bounds
	s.pending.Store(int32(nchunks - 1))
	for w := 0; w < nchunks-1; w++ {
		s.wake[w] <- struct{}{}
	}
	fn(0, bounds[0], bounds[1])
	<-s.done
	s.job, s.bounds = nil, nil
	return true
}

// spawnJobChunks is RunChunks' pool-less fallback: a goroutine per chunk
// beyond the caller's, joined on a WaitGroup.
func spawnJobChunks(bounds []int, fn func(chunk, lo, hi int)) {
	nchunks := len(bounds) - 1
	var wg sync.WaitGroup
	wg.Add(nchunks - 1)
	for t := 1; t < nchunks; t++ {
		go func(c, lo, hi int) {
			defer wg.Done()
			fn(c, lo, hi)
		}(t, bounds[t], bounds[t+1])
	}
	fn(0, bounds[0], bounds[1])
	wg.Wait()
}

// start launches the workers. It runs under mu on the first parallel
// dispatch, so pools that only ever see serial work cost no goroutines.
func (s *poolState[T]) start() {
	s.started = true
	s.wake = make([]chan struct{}, s.threads-1)
	for i := range s.wake {
		s.wake[i] = make(chan struct{})
		go s.worker(i)
	}
}

// worker executes chunk i+1 of each dispatch it is woken for; the last
// worker to finish releases the dispatcher's barrier. The field reads are
// ordered by the wake send (before) and the pending decrement (after), so
// the dispatcher never reuses the slots while a worker still reads them.
//
//smat:hotpath
//smat:wake-barrier
func (s *poolState[T]) worker(i int) {
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake[i]:
			if job := s.job; job != nil {
				job(i+1, s.bounds[i+1], s.bounds[i+2])
			} else {
				s.fn(s.mat, s.x, s.y, s.k, s.bounds[i+1], s.bounds[i+2])
			}
			if s.pending.Add(-1) == 0 {
				s.done <- struct{}{}
			}
		}
	}
}

// spawnChunks is the pool-less dispatch: one fresh goroutine per chunk
// beyond the caller's, joined on a WaitGroup — the pre-engine execution
// path, kept for Kernel.Run and as the overflow path when the pool is busy.
func spawnChunks[T matrix.Float](bounds []int, fn rangeFn[T], m *Mat[T], x, y []T, k int) {
	nchunks := len(bounds) - 1
	var wg sync.WaitGroup
	wg.Add(nchunks - 1)
	for t := 1; t < nchunks; t++ {
		go func(lo, hi int) {
			defer wg.Done()
			fn(m, x, y, k, lo, hi)
		}(bounds[t], bounds[t+1])
	}
	fn(m, x, y, k, bounds[0], bounds[1])
	wg.Wait()
}
