package kernels

import (
	"runtime"
	"sync"
	"sync/atomic"

	"smat/internal/matrix"
)

// Pool is a persistent set of worker goroutines executing kernel chunks: the
// steady-state replacement for spawning `threads` goroutines on every SpMV
// call. Construct one per Library/Tuner with NewPool and pass it to
// Kernel.RunPooled. Chunk 0 always runs on the dispatching goroutine;
// workers start lazily on the first parallel dispatch and exit when the pool
// is closed or garbage-collected.
//
// A Pool is safe for concurrent use: one dispatch owns the workers at a
// time, and concurrent dispatches overflow to per-call goroutines instead of
// queueing behind each other.
type Pool[T matrix.Float] struct {
	s *poolState[T]
}

// poolState is the worker-visible part of the pool. Workers hold only this
// inner struct, so an abandoned Pool becomes unreachable, its finalizer
// runs, and the workers exit instead of leaking.
type poolState[T matrix.Float] struct {
	threads int

	mu      sync.Mutex // owns the dispatch fields and worker startup
	started bool
	closed  bool

	// Dispatch state, written under mu before the workers are woken:
	// wake[i] hands chunk i+1 to worker i, and the last worker to finish
	// signals done (the barrier the dispatcher blocks on).
	fn      rangeFn[T]
	mat     *Mat[T]
	x, y    []T
	k       int
	bounds  []int
	pending atomic.Int32
	wake    []chan struct{}
	done    chan struct{}
	stop    chan struct{}
}

// NewPool builds a worker pool with the given thread fan-out; threads ≤ 0
// resolves GOMAXPROCS once, here, instead of on every kernel call.
func NewPool[T matrix.Float](threads int) *Pool[T] {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	s := &poolState[T]{
		threads: threads,
		done:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	p := &Pool[T]{s: s}
	runtime.SetFinalizer(p, func(p *Pool[T]) { p.s.shutdown() })
	return p
}

// Threads returns the pool's resolved thread count.
func (p *Pool[T]) Threads() int { return p.s.threads }

// Close stops the workers. Kernels may still be dispatched to a closed pool;
// they fall back to per-call goroutine fan-out.
func (p *Pool[T]) Close() {
	runtime.SetFinalizer(p, nil)
	p.s.shutdown()
}

func (s *poolState[T]) shutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.stop)
	}
}

// tryRun dispatches the bounds chunks across the workers, returning false
// when the pool is busy with another SpMV or closed (the caller then falls
// back to spawning). The dispatching goroutine computes chunk 0 itself and
// blocks on the completion barrier. The whole dispatch allocates nothing.
//
//smat:wake-barrier
func (s *poolState[T]) tryRun(bounds []int, fn rangeFn[T], m *Mat[T], x, y []T, k int) bool {
	if !s.mu.TryLock() {
		return false
	}
	defer s.mu.Unlock()
	nchunks := len(bounds) - 1
	if s.closed || nchunks > s.threads {
		return false
	}
	if !s.started {
		s.start()
	}
	s.fn, s.mat, s.x, s.y, s.k, s.bounds = fn, m, x, y, k, bounds
	s.pending.Store(int32(nchunks - 1))
	for w := 0; w < nchunks-1; w++ {
		s.wake[w] <- struct{}{}
	}
	fn(m, x, y, k, bounds[0], bounds[1])
	<-s.done
	s.fn, s.mat, s.x, s.y, s.bounds = nil, nil, nil, nil, nil
	return true
}

// start launches the workers. It runs under mu on the first parallel
// dispatch, so pools that only ever see serial work cost no goroutines.
func (s *poolState[T]) start() {
	s.started = true
	s.wake = make([]chan struct{}, s.threads-1)
	for i := range s.wake {
		s.wake[i] = make(chan struct{})
		go s.worker(i)
	}
}

// worker executes chunk i+1 of each dispatch it is woken for; the last
// worker to finish releases the dispatcher's barrier. The field reads are
// ordered by the wake send (before) and the pending decrement (after), so
// the dispatcher never reuses the slots while a worker still reads them.
//
//smat:hotpath
//smat:wake-barrier
func (s *poolState[T]) worker(i int) {
	for {
		select {
		case <-s.stop:
			return
		case <-s.wake[i]:
			s.fn(s.mat, s.x, s.y, s.k, s.bounds[i+1], s.bounds[i+2])
			if s.pending.Add(-1) == 0 {
				s.done <- struct{}{}
			}
		}
	}
}

// spawnChunks is the pool-less dispatch: one fresh goroutine per chunk
// beyond the caller's, joined on a WaitGroup — the pre-engine execution
// path, kept for Kernel.Run and as the overflow path when the pool is busy.
func spawnChunks[T matrix.Float](bounds []int, fn rangeFn[T], m *Mat[T], x, y []T, k int) {
	nchunks := len(bounds) - 1
	var wg sync.WaitGroup
	wg.Add(nchunks - 1)
	for t := 1; t < nchunks; t++ {
		go func(lo, hi int) {
			defer wg.Done()
			fn(m, x, y, k, lo, hi)
		}(bounds[t], bounds[t+1])
	}
	fn(m, x, y, k, bounds[0], bounds[1])
	wg.Wait()
}
