package kernels

import "smat/internal/matrix"

// csrBatchRange computes rows [lo, hi) of Y = A·X for k interleaved
// right-hand sides at CSR's default register-tile width of four: full tiles
// keep four independent accumulators per loaded matrix entry; remainder
// columns run the scalar loop in csrRowRange's accumulation order, so k=1 is
// bit-for-bit csr_basic. csrBatchRangeT2/T8 are the other searched tile
// widths (BatchTiles).
//
//smat:hotpath
func csrBatchRange[T matrix.Float](m *matrix.CSR[T], xb, yb []T, k, lo, hi int) {
	rowPtr, colIdx, vals := m.RowPtr, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		yr := yb[i*k : (i+1)*k]
		j := 0
		for ; j+4 <= k; j += 4 {
			var s0, s1, s2, s3 T
			for jj := start; jj < end; jj++ {
				v := vals[jj]
				xc := xb[colIdx[jj]*k+j:]
				s0 += v * xc[0]
				s1 += v * xc[1]
				s2 += v * xc[2]
				s3 += v * xc[3]
			}
			yr[j], yr[j+1], yr[j+2], yr[j+3] = s0, s1, s2, s3
		}
		for ; j < k; j++ {
			var sum T
			for jj := start; jj < end; jj++ {
				sum += xb[colIdx[jj]*k+j] * vals[jj]
			}
			yr[j] = sum
		}
	}
}

// csrBatchRangeUnroll4 is csrBatchRange with the remainder-column inner
// product additionally unrolled by four over the nonzeros (csrRowRangeUnroll4's
// order, so k=1 is bit-for-bit csr_unroll4). Full tiles already carry four
// independent accumulators across the RHS dimension and stay as they are.
//
//smat:hotpath
func csrBatchRangeUnroll4[T matrix.Float](m *matrix.CSR[T], xb, yb []T, k, lo, hi int) {
	rowPtr, colIdx, vals := m.RowPtr, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		yr := yb[i*k : (i+1)*k]
		j := 0
		for ; j+4 <= k; j += 4 {
			var s0, s1, s2, s3 T
			for jj := start; jj < end; jj++ {
				v := vals[jj]
				xc := xb[colIdx[jj]*k+j:]
				s0 += v * xc[0]
				s1 += v * xc[1]
				s2 += v * xc[2]
				s3 += v * xc[3]
			}
			yr[j], yr[j+1], yr[j+2], yr[j+3] = s0, s1, s2, s3
		}
		for ; j < k; j++ {
			var s0, s1, s2, s3 T
			jj := start
			for ; jj+4 <= end; jj += 4 {
				s0 += xb[colIdx[jj]*k+j] * vals[jj]
				s1 += xb[colIdx[jj+1]*k+j] * vals[jj+1]
				s2 += xb[colIdx[jj+2]*k+j] * vals[jj+2]
				s3 += xb[colIdx[jj+3]*k+j] * vals[jj+3]
			}
			for ; jj < end; jj++ {
				s0 += xb[colIdx[jj]*k+j] * vals[jj]
			}
			yr[j] = (s0 + s1) + (s2 + s3)
		}
	}
}

//smat:hotpath
func csrBatchChunk[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	csrBatchRange(m.CSR, xb, yb, k, lo, hi)
}

//smat:hotpath
func csrBatchChunkUnroll4[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	csrBatchRangeUnroll4(m.CSR, xb, yb, k, lo, hi)
}

//smat:hotpath
func runCSRBatch[T matrix.Float](m *Mat[T], xb, yb []T, k int, _ exec[T]) {
	csrBatchRange(m.CSR, xb, yb, k, 0, m.CSR.Rows)
}

//smat:hotpath
func runCSRBatchUnroll4[T matrix.Float](m *Mat[T], xb, yb []T, k int, _ exec[T]) {
	csrBatchRangeUnroll4(m.CSR, xb, yb, k, 0, m.CSR.Rows)
}

//smat:hotpath-factory
func runCSRBatchParallel[T matrix.Float]() batchFn[T] {
	chunk := rangeFn[T](csrBatchChunk[T])
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			csrBatchRange(m.CSR, xb, yb, k, 0, m.CSR.Rows)
			return
		}
		ex.dispatch(ex.plan.NNZBounds, chunk, m, xb, yb, k)
	}
}

//smat:hotpath-factory
func runCSRBatchParallelUnroll4[T matrix.Float]() batchFn[T] {
	chunk := rangeFn[T](csrBatchChunkUnroll4[T])
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			csrBatchRangeUnroll4(m.CSR, xb, yb, k, 0, m.CSR.Rows)
			return
		}
		ex.dispatch(ex.plan.NNZBounds, chunk, m, xb, yb, k)
	}
}

// csrBatchRangeT2 is csrBatchRange at tile width two.
//
//smat:hotpath
func csrBatchRangeT2[T matrix.Float](m *matrix.CSR[T], xb, yb []T, k, lo, hi int) {
	rowPtr, colIdx, vals := m.RowPtr, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		yr := yb[i*k : (i+1)*k]
		j := 0
		for ; j+2 <= k; j += 2 {
			var s0, s1 T
			for jj := start; jj < end; jj++ {
				v := vals[jj]
				xc := xb[colIdx[jj]*k+j:]
				s0 += v * xc[0]
				s1 += v * xc[1]
			}
			yr[j], yr[j+1] = s0, s1
		}
		for ; j < k; j++ {
			var sum T
			for jj := start; jj < end; jj++ {
				sum += xb[colIdx[jj]*k+j] * vals[jj]
			}
			yr[j] = sum
		}
	}
}

// csrBatchRangeT8 is csrBatchRange at tile width eight.
//
//smat:hotpath
func csrBatchRangeT8[T matrix.Float](m *matrix.CSR[T], xb, yb []T, k, lo, hi int) {
	rowPtr, colIdx, vals := m.RowPtr, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		yr := yb[i*k : (i+1)*k]
		j := 0
		for ; j+8 <= k; j += 8 {
			var s0, s1, s2, s3, s4, s5, s6, s7 T
			for jj := start; jj < end; jj++ {
				v := vals[jj]
				xc := xb[colIdx[jj]*k+j : colIdx[jj]*k+j+8]
				s0 += v * xc[0]
				s1 += v * xc[1]
				s2 += v * xc[2]
				s3 += v * xc[3]
				s4 += v * xc[4]
				s5 += v * xc[5]
				s6 += v * xc[6]
				s7 += v * xc[7]
			}
			yr[j], yr[j+1], yr[j+2], yr[j+3] = s0, s1, s2, s3
			yr[j+4], yr[j+5], yr[j+6], yr[j+7] = s4, s5, s6, s7
		}
		for ; j < k; j++ {
			var sum T
			for jj := start; jj < end; jj++ {
				sum += xb[colIdx[jj]*k+j] * vals[jj]
			}
			yr[j] = sum
		}
	}
}

//smat:hotpath
func csrBatchChunkT2[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	csrBatchRangeT2(m.CSR, xb, yb, k, lo, hi)
}

//smat:hotpath
func csrBatchChunkT8[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	csrBatchRangeT8(m.CSR, xb, yb, k, lo, hi)
}

// csrBatchChunkTile resolves the chunk body for a register-tile width —
// called once at registration, never per call.
func csrBatchChunkTile[T matrix.Float](tile int) rangeFn[T] {
	switch tile {
	case 2:
		return rangeFn[T](csrBatchChunkT2[T])
	case 8:
		return rangeFn[T](csrBatchChunkT8[T])
	default:
		return rangeFn[T](csrBatchChunk[T])
	}
}

// runCSRBatchParallelTile instantiates the NNZ-balanced parallel batched CSR
// kernel at a register-tile width, resolved to a chunk funcval at bind time.
//
//smat:hotpath-factory
func runCSRBatchParallelTile[T matrix.Float](tile int) batchFn[T] {
	chunk := csrBatchChunkTile[T](tile)
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			chunk(m, xb, yb, k, 0, m.CSR.Rows)
			return
		}
		ex.dispatch(ex.plan.NNZBounds, chunk, m, xb, yb, k)
	}
}
