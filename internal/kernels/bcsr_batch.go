package kernels

import "smat/internal/matrix"

// bcsrBatchRange computes block rows [lo, hi) of Y = A·X for k interleaved
// right-hand sides with the generic any-block-size body: clear the block
// row's yb segment, then accumulate per block, per local row, with the
// register tile over the RHS dimension. Remainder columns follow
// bcsrGenericRange's accumulation order (sum per local row, then one += into
// yb), so k=1 is bit-for-bit bcsr_basic.
//
//smat:hotpath
func bcsrBatchRange[T matrix.Float](m *matrix.BCSR[T], xb, yb []T, k, lo, hi int) {
	br, bc := m.BR, m.BC
	for bi := lo; bi < hi; bi++ {
		baseRow := bi * br
		height := br
		if baseRow+height > m.Rows {
			height = m.Rows - baseRow
		}
		ySeg := yb[baseRow*k : (baseRow+height)*k]
		clear(ySeg)
		for s := m.RowPtr[bi]; s < m.RowPtr[bi+1]; s++ {
			baseCol := m.ColIdx[s] * bc
			blk := m.Blocks[s*br*bc : (s+1)*br*bc]
			// The last block column may be padded past Cols; padding holds
			// zeros, but xb must not be read out of range.
			width := bc
			if baseCol+width > m.Cols {
				width = m.Cols - baseCol
			}
			for lr := 0; lr < height; lr++ {
				row := blk[lr*bc:]
				yr := ySeg[lr*k : (lr+1)*k]
				j := 0
				for ; j+4 <= k; j += 4 {
					var s0, s1, s2, s3 T
					for lc := 0; lc < width; lc++ {
						v := row[lc]
						xc := xb[(baseCol+lc)*k+j:]
						s0 += v * xc[0]
						s1 += v * xc[1]
						s2 += v * xc[2]
						s3 += v * xc[3]
					}
					yr[j] += s0
					yr[j+1] += s1
					yr[j+2] += s2
					yr[j+3] += s3
				}
				for ; j < k; j++ {
					var sum T
					for lc := 0; lc < width; lc++ {
						sum += row[lc] * xb[(baseCol+lc)*k+j]
					}
					yr[j] += sum
				}
			}
		}
	}
}

//smat:hotpath
func bcsrBatchChunk[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	bcsrBatchRange(m.BCSR, xb, yb, k, lo, hi)
}

//smat:hotpath
func runBCSRBatch[T matrix.Float](m *Mat[T], xb, yb []T, k int, _ exec[T]) {
	bcsrBatchRange(m.BCSR, xb, yb, k, 0, m.BCSR.BlockRows())
}

//smat:hotpath-factory
func runBCSRBatchParallel[T matrix.Float]() batchFn[T] {
	chunk := rangeFn[T](bcsrBatchChunk[T])
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			bcsrBatchRange(m.BCSR, xb, yb, k, 0, m.BCSR.BlockRows())
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, xb, yb, k)
	}
}

// bcsrBatchRangeT2 is the two-accumulator tile of the generic block body.
//
//smat:hotpath
func bcsrBatchRangeT2[T matrix.Float](m *matrix.BCSR[T], xb, yb []T, k, lo, hi int) {
	br, bc := m.BR, m.BC
	for bi := lo; bi < hi; bi++ {
		baseRow := bi * br
		height := br
		if baseRow+height > m.Rows {
			height = m.Rows - baseRow
		}
		ySeg := yb[baseRow*k : (baseRow+height)*k]
		clear(ySeg)
		for s := m.RowPtr[bi]; s < m.RowPtr[bi+1]; s++ {
			baseCol := m.ColIdx[s] * bc
			blk := m.Blocks[s*br*bc : (s+1)*br*bc]
			width := bc
			if baseCol+width > m.Cols {
				width = m.Cols - baseCol
			}
			for lr := 0; lr < height; lr++ {
				row := blk[lr*bc:]
				yr := ySeg[lr*k : (lr+1)*k]
				j := 0
				for ; j+2 <= k; j += 2 {
					var s0, s1 T
					for lc := 0; lc < width; lc++ {
						v := row[lc]
						xc := xb[(baseCol+lc)*k+j:]
						s0 += v * xc[0]
						s1 += v * xc[1]
					}
					yr[j] += s0
					yr[j+1] += s1
				}
				for ; j < k; j++ {
					var sum T
					for lc := 0; lc < width; lc++ {
						sum += row[lc] * xb[(baseCol+lc)*k+j]
					}
					yr[j] += sum
				}
			}
		}
	}
}

// bcsrBatchRangeT8 is the eight-accumulator tile of the generic block body.
//
//smat:hotpath
func bcsrBatchRangeT8[T matrix.Float](m *matrix.BCSR[T], xb, yb []T, k, lo, hi int) {
	br, bc := m.BR, m.BC
	for bi := lo; bi < hi; bi++ {
		baseRow := bi * br
		height := br
		if baseRow+height > m.Rows {
			height = m.Rows - baseRow
		}
		ySeg := yb[baseRow*k : (baseRow+height)*k]
		clear(ySeg)
		for s := m.RowPtr[bi]; s < m.RowPtr[bi+1]; s++ {
			baseCol := m.ColIdx[s] * bc
			blk := m.Blocks[s*br*bc : (s+1)*br*bc]
			width := bc
			if baseCol+width > m.Cols {
				width = m.Cols - baseCol
			}
			for lr := 0; lr < height; lr++ {
				row := blk[lr*bc:]
				yr := ySeg[lr*k : (lr+1)*k]
				j := 0
				for ; j+8 <= k; j += 8 {
					var s0, s1, s2, s3, s4, s5, s6, s7 T
					for lc := 0; lc < width; lc++ {
						v := row[lc]
						xc := xb[(baseCol+lc)*k+j:]
						s0 += v * xc[0]
						s1 += v * xc[1]
						s2 += v * xc[2]
						s3 += v * xc[3]
						s4 += v * xc[4]
						s5 += v * xc[5]
						s6 += v * xc[6]
						s7 += v * xc[7]
					}
					yr[j] += s0
					yr[j+1] += s1
					yr[j+2] += s2
					yr[j+3] += s3
					yr[j+4] += s4
					yr[j+5] += s5
					yr[j+6] += s6
					yr[j+7] += s7
				}
				for ; j < k; j++ {
					var sum T
					for lc := 0; lc < width; lc++ {
						sum += row[lc] * xb[(baseCol+lc)*k+j]
					}
					yr[j] += sum
				}
			}
		}
	}
}

//smat:hotpath
func bcsrBatchChunkT2[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	bcsrBatchRangeT2(m.BCSR, xb, yb, k, lo, hi)
}

//smat:hotpath
func bcsrBatchChunkT8[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	bcsrBatchRangeT8(m.BCSR, xb, yb, k, lo, hi)
}

// bcsrBatchChunkTile resolves the chunk body for a register-tile width at
// registration.
func bcsrBatchChunkTile[T matrix.Float](tile int) rangeFn[T] {
	switch tile {
	case 2:
		return rangeFn[T](bcsrBatchChunkT2[T])
	case 8:
		return rangeFn[T](bcsrBatchChunkT8[T])
	default:
		return rangeFn[T](bcsrBatchChunk[T])
	}
}

// runBCSRBatchParallelTile instantiates the parallel batched BCSR kernel at a
// register-tile width, resolved to a chunk funcval at bind time.
//
//smat:hotpath-factory
func runBCSRBatchParallelTile[T matrix.Float](tile int) batchFn[T] {
	chunk := bcsrBatchChunkTile[T](tile)
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			chunk(m, xb, yb, k, 0, m.BCSR.BlockRows())
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, xb, yb, k)
	}
}
