package kernels

import (
	"fmt"
	"time"

	"smat/internal/matrix"
)

// Params describes one point in the kernel-template parameter space: instead
// of enumerating every implementation by hand, kernels are instantiated from
// these knobs (the AlphaSparse-lite design in DESIGN §12). A zero Params means
// "the fixed menu's defaults" everywhere, so the struct is carried through
// decisions, the cache, and the model without a presence flag.
type Params struct {
	// Unroll is the inner-loop unroll depth (independent partial
	// accumulators) of the row/slot/diagonal product: one of UnrollDepths.
	// Zero means the kernel's own fixed depth.
	Unroll int `json:"unroll,omitempty"`
	// BlockR, BlockC are the BCSR register-block shape used at conversion
	// time; the block-specialised kernels dispatch on the stored shape. Zero
	// means matrix.BestBlockSize picks.
	BlockR int `json:"block_r,omitempty"`
	BlockC int `json:"block_c,omitempty"`
	// BatchTile is the register-tile width of the batched (multi-vector)
	// kernels: how many right-hand sides each loaded matrix entry feeds. One
	// of BatchTiles; zero means DefaultBatchTile(format).
	BatchTile int `json:"batch_tile,omitempty"`
	// HybCut is the ELL→HYB width-cut padding-allowance percentile handed to
	// matrix.HybSplitWidth at conversion time. Zero means the default 0.3.
	HybCut float64 `json:"hyb_cut,omitempty"`
	// DIAMinDensity is the minimum ER_DIA (nnz over stored slots) at which
	// the parameter search considers DIA at all — the hypersparse-diagonal
	// pruning rule. Zero means DefaultDIAMinDensity.
	DIAMinDensity float64 `json:"dia_min_density,omitempty"`
}

// IsZero reports whether every knob is at its default.
func (p Params) IsZero() bool { return p == Params{} }

// Suffix renders the instance-distinguishing name suffix, e.g. "_2x4" for a
// block shape, "_u8" for an unroll depth, "_t2" for a batch tile — empty for
// the zero Params. Conversion-only knobs (HybCut, DIAMinDensity) never name
// kernel instances and contribute nothing.
func (p Params) Suffix() string {
	s := ""
	if p.BlockR > 0 && p.BlockC > 0 {
		s += fmt.Sprintf("_%dx%d", p.BlockR, p.BlockC)
	}
	if p.Unroll > 0 {
		s += fmt.Sprintf("_u%d", p.Unroll)
	}
	if p.BatchTile > 0 {
		s += fmt.Sprintf("_t%d", p.BatchTile)
	}
	return s
}

// String renders the non-default knobs for logs and bench artifacts.
func (p Params) String() string {
	if p.IsZero() {
		return "default"
	}
	s := p.Suffix()
	if p.HybCut > 0 {
		s += fmt.Sprintf("_h%g", p.HybCut)
	}
	if p.DIAMinDensity > 0 {
		s += fmt.Sprintf("_d%g", p.DIAMinDensity)
	}
	if len(s) > 0 && s[0] == '_' {
		s = s[1:]
	}
	return s
}

// ParamName templates a registered instance name from a base kernel family
// name and the instance's Params, e.g. ParamName("bcsr", Params{BlockR: 2,
// BlockC: 4}) == "bcsr_2x4". The kernelreg analyzer recognises this call
// shape in registry providers (the base must stay a string literal there).
func ParamName(base string, p Params) string { return base + p.Suffix() }

// The searched parameter space. The scoreboard walk measures these points per
// training matrix, pruned by the feature-guided rules in
// internal/autotune/scoreboard.go.
var (
	// UnrollDepths is the searched inner-loop unroll space. Depths 1 and 4
	// are covered by the fixed menu (basic and *_unroll4 kernels); 2 and 8
	// are registered as parameter instances.
	UnrollDepths = []int{1, 2, 4, 8}
	// BCSRShapes is the searched register-block shape space (r×c).
	BCSRShapes = [][2]int{{2, 2}, {2, 4}, {4, 2}, {4, 4}, {8, 2}}
	// BatchTiles is the searched batched register-tile width space.
	BatchTiles = []int{2, 4, 8}
	// HybCuts is the searched ELL→HYB width-cut padding-allowance space.
	HybCuts = []float64{0.1, 0.3, 0.5}
)

// DefaultDIAMinDensity is the hypersparse-diagonal pruning floor: when the
// occupied fraction of DIA's stored slots (ER_DIA) falls below it, the
// parameter search skips DIA candidates without measuring them.
const DefaultDIAMinDensity = 0.05

// DefaultBatchTile returns the register-tile width the format's unsuffixed
// batch kernels use: DIA/ELL/HYB amortise their strided per-row walks with a
// double-wide eight-accumulator tile, the indexed formats keep four.
func DefaultBatchTile(f matrix.Format) int {
	switch f {
	case matrix.FormatDIA, matrix.FormatELL, matrix.FormatHYB:
		return 8
	default:
		return 4
	}
}

// ConvertWithParams is Convert with the conversion-time knobs applied: the
// BCSR block shape and the HYB width-cut percentile. Zero-valued knobs fall
// back to Convert's defaults (auto block shape, 0.3 cut).
func ConvertWithParams[T matrix.Float](m *matrix.CSR[T], f matrix.Format, maxFill float64, p Params) (*Mat[T], error) {
	switch f {
	case matrix.FormatBCSR:
		if p.BlockR > 0 && p.BlockC > 0 {
			b, err := m.ToBCSR(p.BlockR, p.BlockC, maxFill)
			if err != nil {
				return nil, err
			}
			return &Mat[T]{Format: f, BCSR: b}, nil
		}
	case matrix.FormatHYB:
		if p.HybCut > 0 {
			return &Mat[T]{Format: f, HYB: m.ToHYB(matrix.HybSplitWidth(m, p.HybCut))}, nil
		}
	}
	return Convert(m, f, maxFill)
}

// ConvertTimedParams is ConvertWithParams with the stopwatch attached (see
// ConvertTimed). Decisions that carry tuned Params must materialise through
// it so cache hits rebuild the exact representation the leader measured.
func ConvertTimedParams[T matrix.Float](m *matrix.CSR[T], f matrix.Format, maxFill float64, p Params) (*Mat[T], ConvertTiming, error) {
	if f == matrix.FormatCSR {
		return &Mat[T]{Format: f, CSR: m}, ConvertTiming{Format: f, Stored: m.Stored()}, nil
	}
	start := time.Now()
	out, err := ConvertWithParams(m, f, maxFill, p)
	sec := time.Since(start).Seconds()
	if err != nil {
		return nil, ConvertTiming{Format: f, Sec: sec}, err
	}
	return out, ConvertTiming{Format: f, Sec: sec, Stored: out.Stored()}, nil
}

// paramKernels returns the stock single-vector parameter instances: the
// unroll depths the fixed menu does not cover, instantiated through the same
// factory-funcval machinery as the hand-enumerated kernels (chunk funcvals
// bound once at registration, so the pooled hot path stays allocation-free).
func paramKernels[T matrix.Float]() []*Kernel[T] {
	var out []*Kernel[T]
	for _, u := range UnrollDepths {
		if u == 1 || u == 4 {
			continue // the fixed menu's basic and *_unroll4 kernels
		}
		p := Params{Unroll: u}
		out = append(out,
			&Kernel[T]{Name: ParamName("csr_parallel_nnz", p), Format: matrix.FormatCSR,
				Strategies: StratParallel | StratNNZBalance | StratUnroll4, Params: p,
				run: runCSRParallelNNZUnroll[T](u)},
			&Kernel[T]{Name: ParamName("dia_parallel", p), Format: matrix.FormatDIA,
				Strategies: StratParallel | StratRowMajor | StratUnroll4, Params: p,
				run: runDIAParallelUnroll[T](u)},
			&Kernel[T]{Name: ParamName("ell_parallel", p), Format: matrix.FormatELL,
				Strategies: StratParallel | StratRowMajor | StratUnroll4, Params: p,
				run: runELLParallelUnroll[T](u)},
		)
	}
	return out
}

// paramBatchKernels returns the stock batched parameter instances: for every
// format, the register-tile widths its unsuffixed kernels do not already use,
// so all of BatchTiles is reachable through BatchForParams.
func paramBatchKernels[T matrix.Float]() []*BatchKernel[T] {
	var out []*BatchKernel[T]
	for _, t := range BatchTiles {
		p := Params{BatchTile: t}
		if t != DefaultBatchTile(matrix.FormatCSR) {
			out = append(out, &BatchKernel[T]{Name: ParamName("csr_batch_parallel", p),
				Format: matrix.FormatCSR, Strategies: StratParallel | StratNNZBalance,
				Params: p, run: runCSRBatchParallelTile[T](t)})
		}
		if t != DefaultBatchTile(matrix.FormatCOO) {
			out = append(out, &BatchKernel[T]{Name: ParamName("coo_batch_parallel", p),
				Format: matrix.FormatCOO, Strategies: StratParallel | StratNNZBalance,
				Params: p, run: runCOOBatchParallelTile[T](t)})
		}
		if t != DefaultBatchTile(matrix.FormatDIA) {
			out = append(out, &BatchKernel[T]{Name: ParamName("dia_batch_parallel", p),
				Format: matrix.FormatDIA, Strategies: StratParallel,
				Params: p, run: runDIABatchParallelTile[T](t)})
		}
		if t != DefaultBatchTile(matrix.FormatELL) {
			out = append(out, &BatchKernel[T]{Name: ParamName("ell_batch_parallel", p),
				Format: matrix.FormatELL, Strategies: StratParallel,
				Params: p, run: runELLBatchParallelTile[T](t)})
		}
	}
	return out
}
