package kernels

import "smat/internal/matrix"

// cooRange accumulates entries [lo, hi) into y: the paper's Figure 2(b) loop.
// Callers must have zeroed the affected rows of y.
//
//smat:hotpath
func cooRange[T matrix.Float](m *matrix.COO[T], x, y []T, lo, hi int) {
	rows, cols, vals := m.RowIdx, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		y[rows[i]] += vals[i] * x[cols[i]]
	}
}

// cooRangeUnroll4 is cooRange unrolled by four. Entries are row-sorted, so
// consecutive entries may hit the same y element; the unrolled body keeps the
// read-modify-write order per element by accumulating through memory exactly
// as the scalar loop does (only the index arithmetic is unrolled).
//
//smat:hotpath
func cooRangeUnroll4[T matrix.Float](m *matrix.COO[T], x, y []T, lo, hi int) {
	rows, cols, vals := m.RowIdx, m.ColIdx, m.Vals
	i := lo
	for ; i+4 <= hi; i += 4 {
		y[rows[i]] += vals[i] * x[cols[i]]
		y[rows[i+1]] += vals[i+1] * x[cols[i+1]]
		y[rows[i+2]] += vals[i+2] * x[cols[i+2]]
		y[rows[i+3]] += vals[i+3] * x[cols[i+3]]
	}
	for ; i < hi; i++ {
		y[rows[i]] += vals[i] * x[cols[i]]
	}
}

//smat:hotpath
func runCOOBasic[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	clear(y)
	cooRange(m.COO, x, y, 0, m.COO.NNZ())
}

//smat:hotpath
func runCOOUnroll4[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	clear(y)
	cooRangeUnroll4(m.COO, x, y, 0, m.COO.NNZ())
}

// cooBounds splits the entry range into roughly nnz-balanced chunks whose
// boundaries fall on row boundaries, so concurrent chunks never write the
// same y element. Computed once per matrix by the execution plan.
func cooBounds[T matrix.Float](m *matrix.COO[T], threads int) []int {
	nnz := m.NNZ()
	if threads < 1 {
		threads = 1
	}
	bounds := []int{0}
	for t := 1; t < threads; t++ {
		b := nnz * t / threads
		if b <= bounds[len(bounds)-1] {
			continue
		}
		// Advance to the next row boundary.
		for b < nnz && m.RowIdx[b] == m.RowIdx[b-1] {
			b++
		}
		if b > bounds[len(bounds)-1] && b < nnz {
			bounds = append(bounds, b)
		}
	}
	bounds = append(bounds, nnz)
	return bounds
}

// cooChunkRows returns the half-open row range owned by the entry chunk
// [lo, hi): from the chunk's first row up to the next chunk's first row.
// Leading empty rows attach to the first chunk and every gap attaches to the
// chunk before it, so chunk-local clears cover each row of y exactly once —
// this replaces the serial O(rows) clear(y) that used to precede every
// parallel COO SpMV.
//
//smat:hotpath
func cooChunkRows[T matrix.Float](c *matrix.COO[T], lo, hi int) (rLo, rHi int) {
	rLo = 0
	if lo > 0 {
		rLo = c.RowIdx[lo]
	}
	rHi = c.Rows
	if hi < len(c.RowIdx) {
		rHi = c.RowIdx[hi]
	}
	return rLo, rHi
}

//smat:hotpath
func cooChunk[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	rLo, rHi := cooChunkRows(m.COO, lo, hi)
	clear(y[rLo:rHi])
	cooRange(m.COO, x, y, lo, hi)
}

//smat:hotpath
func cooChunkUnroll4[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	rLo, rHi := cooChunkRows(m.COO, lo, hi)
	clear(y[rLo:rHi])
	cooRangeUnroll4(m.COO, x, y, lo, hi)
}

//smat:hotpath-factory
func runCOOParallel[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](cooChunk[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			clear(y)
			cooRange(m.COO, x, y, 0, m.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.EntryBounds, chunk, m, x, y, 1)
	}
}

//smat:hotpath-factory
func runCOOParallelUnroll4[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](cooChunkUnroll4[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			clear(y)
			cooRangeUnroll4(m.COO, x, y, 0, m.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.EntryBounds, chunk, m, x, y, 1)
	}
}
