package kernels

import "smat/internal/matrix"

// cooRange accumulates entries [lo, hi) into y: the paper's Figure 2(b) loop.
// Callers must have zeroed the affected rows of y.
func cooRange[T matrix.Float](m *matrix.COO[T], x, y []T, lo, hi int) {
	rows, cols, vals := m.RowIdx, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		y[rows[i]] += vals[i] * x[cols[i]]
	}
}

// cooRangeUnroll4 is cooRange unrolled by four. Entries are row-sorted, so
// consecutive entries may hit the same y element; the unrolled body keeps the
// read-modify-write order per element by accumulating through memory exactly
// as the scalar loop does (only the index arithmetic is unrolled).
func cooRangeUnroll4[T matrix.Float](m *matrix.COO[T], x, y []T, lo, hi int) {
	rows, cols, vals := m.RowIdx, m.ColIdx, m.Vals
	i := lo
	for ; i+4 <= hi; i += 4 {
		y[rows[i]] += vals[i] * x[cols[i]]
		y[rows[i+1]] += vals[i+1] * x[cols[i+1]]
		y[rows[i+2]] += vals[i+2] * x[cols[i+2]]
		y[rows[i+3]] += vals[i+3] * x[cols[i+3]]
	}
	for ; i < hi; i++ {
		y[rows[i]] += vals[i] * x[cols[i]]
	}
}

func runCOOBasic[T matrix.Float](m *Mat[T], x, y []T, _ int) {
	clear(y)
	cooRange(m.COO, x, y, 0, m.COO.NNZ())
}

func runCOOUnroll4[T matrix.Float](m *Mat[T], x, y []T, _ int) {
	clear(y)
	cooRangeUnroll4(m.COO, x, y, 0, m.COO.NNZ())
}

// cooBounds splits the entry range into roughly nnz-balanced chunks whose
// boundaries fall on row boundaries, so concurrent chunks never write the
// same y element.
func cooBounds[T matrix.Float](m *matrix.COO[T], threads int) []int {
	nnz := m.NNZ()
	if threads < 1 {
		threads = 1
	}
	bounds := []int{0}
	for t := 1; t < threads; t++ {
		b := nnz * t / threads
		if b <= bounds[len(bounds)-1] {
			continue
		}
		// Advance to the next row boundary.
		for b < nnz && m.RowIdx[b] == m.RowIdx[b-1] {
			b++
		}
		if b > bounds[len(bounds)-1] && b < nnz {
			bounds = append(bounds, b)
		}
	}
	bounds = append(bounds, nnz)
	return bounds
}

func runCOOParallel[T matrix.Float](m *Mat[T], x, y []T, threads int) {
	clear(y)
	if m.COO.NNZ() < 2048 {
		cooRange(m.COO, x, y, 0, m.COO.NNZ())
		return
	}
	parallelBounds(cooBounds(m.COO, threads), func(lo, hi int) {
		cooRange(m.COO, x, y, lo, hi)
	})
}

func runCOOParallelUnroll4[T matrix.Float](m *Mat[T], x, y []T, threads int) {
	clear(y)
	if m.COO.NNZ() < 2048 {
		cooRangeUnroll4(m.COO, x, y, 0, m.COO.NNZ())
		return
	}
	parallelBounds(cooBounds(m.COO, threads), func(lo, hi int) {
		cooRangeUnroll4(m.COO, x, y, lo, hi)
	})
}
