package kernels

import "smat/internal/matrix"

// HYB kernels: the extension format (see matrix.FormatHYB). The ELL part is
// computed with the existing ELL loops (writing y), then the COO overflow
// accumulates on top. Registered in the library like every other kernel, so
// the scoreboard search tunes HYB without further changes — the paper's
// extensibility claim in action.

//smat:hotpath
func runHYBBasic[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	h := m.HYB
	clear(y)
	e := h.ELL
	for n := 0; n < e.Width; n++ {
		data := e.Data[n*e.Rows : (n+1)*e.Rows]
		idx := e.ColIdx[n*e.Rows : (n+1)*e.Rows]
		for i := 0; i < e.Rows; i++ {
			y[i] += data[i] * x[idx[i]]
		}
	}
	cooRange(h.COO, x, y, 0, h.COO.NNZ())
}

//smat:hotpath
func runHYBWidth[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	h := m.HYB
	ellWidthRange(h.ELL, x, y, 0, h.ELL.Rows)
	cooRange(h.COO, x, y, 0, h.COO.NNZ())
}

//smat:hotpath
func hybELLChunk[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	ellWidthRange(m.HYB.ELL, x, y, lo, hi)
}

//smat:hotpath
func hybCOOChunk[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	cooRange(m.HYB.COO, x, y, lo, hi)
}

//smat:hotpath-factory
func runHYBWidthParallel[T matrix.Float]() runFn[T] {
	ellChunk := rangeFn[T](hybELLChunk[T])
	cooChunk := rangeFn[T](hybCOOChunk[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		h := m.HYB
		if ex.plan.Serial {
			ellWidthRange(h.ELL, x, y, 0, h.ELL.Rows)
			cooRange(h.COO, x, y, 0, h.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.RowBounds, ellChunk, m, x, y, 1)
		// The COO tail accumulates after the ELL phase completes (the ELL pass
		// wrote every y element); tail chunks are row-aligned, so the parallel
		// phase has no write conflicts either.
		if ex.plan.TailSerial {
			cooRange(h.COO, x, y, 0, h.COO.NNZ())
			return
		}
		ex.dispatch(ex.plan.EntryBounds, cooChunk, m, x, y, 1)
	}
}

// hybKernels returns the extension kernels. They are not part of
// allKernels: callers opt in with Library.RegisterHYB (keeping the stock
// four-format system identical to the paper's).
func hybKernels[T matrix.Float]() []*Kernel[T] {
	return []*Kernel[T]{
		{Name: "hyb_basic", Format: matrix.FormatHYB, Strategies: 0, run: runHYBBasic[T]},
		{Name: "hyb_width", Format: matrix.FormatHYB, Strategies: StratWidthSpec, run: runHYBWidth[T]},
		{Name: "hyb_width_parallel", Format: matrix.FormatHYB, Strategies: StratWidthSpec | StratParallel, run: runHYBWidthParallel[T]()},
	}
}

// hybBatchKernels returns the batched extension kernels, registered
// alongside the single-vector ones by RegisterHYB.
func hybBatchKernels[T matrix.Float]() []*BatchKernel[T] {
	return []*BatchKernel[T]{
		{Name: "hyb_batch", Format: matrix.FormatHYB, Strategies: 0, Params: Params{BatchTile: 8}, run: runHYBBatch[T]},
		{Name: "hyb_batch_parallel", Format: matrix.FormatHYB, Strategies: StratParallel, Params: Params{BatchTile: 8}, run: runHYBBatchParallel[T]()},
	}
}

// hybParamBatchKernels returns the register-tile instances of the batched
// HYB kernel (see params.go for the stock-format analogue).
func hybParamBatchKernels[T matrix.Float]() []*BatchKernel[T] {
	var out []*BatchKernel[T]
	for _, t := range BatchTiles {
		if t == DefaultBatchTile(matrix.FormatHYB) {
			continue
		}
		p := Params{BatchTile: t}
		out = append(out, &BatchKernel[T]{Name: ParamName("hyb_batch_parallel", p),
			Format: matrix.FormatHYB, Strategies: StratParallel,
			Params: p, run: runHYBBatchParallelTile[T](t)})
	}
	return out
}

// RegisterHYB adds the hybrid-format kernels to the library.
func (l *Library[T]) RegisterHYB() {
	for _, k := range hybKernels[T]() {
		l.Register(k)
	}
	for _, b := range hybBatchKernels[T]() {
		l.RegisterBatch(b)
	}
	for _, b := range hybParamBatchKernels[T]() {
		l.RegisterBatch(b)
	}
}
