package kernels

import "smat/internal/matrix"

// serialWork is the estimated-work cutoff below which parallel kernels run
// their serial body: under ~8k multiply-adds the fan-out barrier costs more
// than it saves. The estimate counts stored entries (including padding), not
// rows, so a short-and-fat matrix still parallelises while a tall matrix
// with a handful of nonzeros per chunk no longer does.
const serialWork = 8192

// Plan is a matrix's cached execution plan for one thread count: every work
// partition a kernel of its format may need, computed once on first use and
// reused by each subsequent Run/RunPooled. Before plans, the partition was
// recomputed on every call — `threads` binary searches over the CSR row
// pointer, or a rescan of the COO row indices, per SpMV.
type Plan struct {
	// Threads is the effective thread count the partitions target.
	Threads int
	// BatchK is the batch width the serial cutoff was evaluated at: plans
	// built by PlanFor have BatchK 1, batched plans record the width so the
	// cache slot can be keyed on (Threads, BatchK). The partitions
	// themselves are width-independent (bounds stay in row/entry units).
	BatchK int
	// Serial reports that the estimated work is below the parallel cutoff
	// (or Threads is 1): parallel kernels take their serial body and the
	// bounds slices below are nil.
	Serial bool
	// RowBounds splits the row dimension evenly (CSR/ELL/DIA rows, BCSR
	// block rows): chunk t covers rows [RowBounds[t], RowBounds[t+1]).
	RowBounds []int
	// NNZBounds splits CSR rows into chunks of roughly equal nonzero count
	// (the nnz-balanced kernels' partition).
	NNZBounds []int
	// EntryBounds splits COO entries on row boundaries — roughly equal
	// nonzeros per chunk with no cross-chunk y writes. For HYB it covers
	// the COO tail.
	EntryBounds []int
	// TailSerial reports that the HYB COO tail is below the cutoff on its
	// own and accumulates serially after the parallel ELL phase.
	TailSerial bool
}

// PlanFor returns the matrix's execution plan for the given thread count
// (values < 1 are treated as 1), computing and caching it on first use. The
// cache holds one plan — steady state runs one thread count per matrix — and
// is safe for concurrent use: racing computations produce identical plans
// and the last writer simply overwrites.
//
//smat:hotpath
func (m *Mat[T]) PlanFor(threads int) *Plan {
	if threads < 1 {
		threads = 1
	}
	if p := m.plan.Load(); p != nil && p.Threads == threads {
		return p
	}
	p := newPlan(m, threads, 1)
	m.plan.Store(p)
	return p
}

// PlanForBatch returns the execution plan for a batched multiply of width k:
// the same row/entry partitions as PlanFor, but with the serial-cutoff work
// estimate scaled by k — a matrix too small to parallelise one vector may
// well clear the cutoff with eight. Widths ≤ 1 share the single-vector plan;
// wider plans cache in their own slot keyed on (threads, k).
//
//smat:hotpath
func (m *Mat[T]) PlanForBatch(threads, k int) *Plan {
	if k <= 1 {
		return m.PlanFor(threads)
	}
	if threads < 1 {
		threads = 1
	}
	if p := m.bplan.Load(); p != nil && p.Threads == threads && p.BatchK == k {
		return p
	}
	p := newPlan(m, threads, k)
	m.bplan.Store(p)
	return p
}

func newPlan[T matrix.Float](m *Mat[T], threads, batchK int) *Plan {
	p := &Plan{Threads: threads, BatchK: batchK}
	work := 0
	switch m.Format {
	case matrix.FormatCSR:
		work = m.CSR.NNZ()
	case matrix.FormatCOO:
		work = m.COO.NNZ()
	case matrix.FormatDIA:
		work = m.DIA.Rows * len(m.DIA.Offsets)
	case matrix.FormatELL:
		work = m.ELL.Rows * m.ELL.Width
	case matrix.FormatHYB:
		work = m.HYB.ELL.Rows*m.HYB.ELL.Width + m.HYB.COO.NNZ()
	case matrix.FormatBCSR:
		work = len(m.BCSR.Blocks)
	}
	// A batched multiply does k times the work per stored entry, so the
	// cutoff compares against the scaled estimate.
	if threads <= 1 || work*batchK < serialWork {
		p.Serial = true
		return p
	}
	switch m.Format {
	case matrix.FormatCSR:
		p.RowBounds = evenBounds(m.CSR.Rows, threads)
		p.NNZBounds = nnzBalancedRowBounds(m.CSR.RowPtr, threads)
	case matrix.FormatCOO:
		p.EntryBounds = cooBounds(m.COO, threads)
	case matrix.FormatDIA:
		p.RowBounds = evenBounds(m.DIA.Rows, threads)
	case matrix.FormatELL:
		p.RowBounds = evenBounds(m.ELL.Rows, threads)
	case matrix.FormatHYB:
		p.RowBounds = evenBounds(m.HYB.ELL.Rows, threads)
		if m.HYB.COO.NNZ()*batchK < serialWork {
			p.TailSerial = true
		} else {
			p.EntryBounds = cooBounds(m.HYB.COO, threads)
		}
	case matrix.FormatBCSR:
		p.RowBounds = evenBounds(m.BCSR.BlockRows(), threads)
	}
	return p
}

// evenBounds splits [0, n) into min(threads, n) equal chunks.
func evenBounds(n, threads int) []int {
	if threads > n {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	bounds := make([]int, threads+1)
	for t := 1; t <= threads; t++ {
		bounds[t] = t * n / threads
	}
	return bounds
}
