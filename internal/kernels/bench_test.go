package kernels

import (
	"fmt"
	"math/rand"
	"testing"

	"smat/internal/gen"
	"smat/internal/matrix"
)

// benchWorkloads pairs each format with the matrix class it is meant for.
func benchWorkloads() map[matrix.Format]*matrix.CSR[float64] {
	rng := rand.New(rand.NewSource(1))
	return map[matrix.Format]*matrix.CSR[float64]{
		matrix.FormatDIA: gen.Laplacian2D5pt[float64](300, 300),
		matrix.FormatELL: gen.ConstantDegree[float64](50000, 4, rng),
		matrix.FormatCSR: gen.RandomUniform[float64](20000, 20000, 30, rng),
		matrix.FormatCOO: gen.RoadNetwork[float64](80000, rng),
	}
}

// BenchmarkKernels measures every registered kernel on its format's
// characteristic workload (the per-kernel rows behind the scoreboard
// search's performance record table).
func BenchmarkKernels(b *testing.B) {
	lib := NewLibrary[float64]()
	for f, m := range benchWorkloads() {
		mat, err := Convert(m, f, 0)
		if err != nil {
			b.Fatal(err)
		}
		x := make([]float64, m.Cols)
		for i := range x {
			x[i] = 1
		}
		y := make([]float64, m.Rows)
		for _, k := range lib.ForFormat(f) {
			b.Run(k.Name, func(b *testing.B) {
				b.SetBytes(int64(m.NNZ() * 16))
				for i := 0; i < b.N; i++ {
					k.Run(mat, x, y, 0)
				}
				b.ReportMetric(float64(FLOPs(m.NNZ()))/1e9*float64(b.N)/b.Elapsed().Seconds(), "gflops")
			})
		}
	}
}

// BenchmarkConvert measures format conversion cost (part of SMAT's decision
// overhead accounting).
func BenchmarkConvert(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := gen.RandomUniform[float64](20000, 20000, 8, rng)
	banded := gen.Laplacian2D5pt[float64](200, 200)
	cases := []struct {
		name string
		m    *matrix.CSR[float64]
		f    matrix.Format
	}{
		{"to_coo", m, matrix.FormatCOO},
		{"to_ell", m, matrix.FormatELL},
		{"to_dia_banded", banded, matrix.FormatDIA},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Convert(c.m, c.f, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelScaling sweeps thread counts on the CSR workload,
// exposing the architecture configuration the scoreboard search probes.
func BenchmarkParallelScaling(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := gen.RandomUniform[float64](30000, 30000, 30, rng)
	mat, err := Convert(m, matrix.FormatCSR, 0)
	if err != nil {
		b.Fatal(err)
	}
	lib := NewLibrary[float64]()
	k := lib.Lookup("csr_parallel_nnz")
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, m.Rows)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k.Run(mat, x, y, threads)
			}
		})
	}
}
