package kernels

import (
	"fmt"
	"math/rand"
	"testing"

	"smat/internal/gen"
	"smat/internal/matrix"
)

// packInterleaved packs k column vectors into the batched interleaved
// layout: out[c*k+j] = xs[j][c].
func packInterleaved(xs [][]float64, k, n int) []float64 {
	xb := make([]float64, n*k)
	for j := 0; j < k; j++ {
		for c := 0; c < n; c++ {
			xb[c*k+j] = xs[j][c]
		}
	}
	return xb
}

// batchVectors builds k distinct integer-valued input vectors (exact in
// float64, so results compare bit-for-bit across summation orders).
func batchVectors(n, k int) [][]float64 {
	xs := make([][]float64, k)
	for j := range xs {
		xs[j] = make([]float64, n)
		for i := range xs[j] {
			xs[j][i] = float64(1 + (i+3*j)%7)
		}
	}
	return xs
}

// TestEveryBatchKernelMatchesColumnwiseBasic runs every registered batch
// kernel (including the HYB/BCSR extensions) under every plan shape — batch
// widths crossing the tile boundary, thread counts 1/2/3/8, spawned and
// pooled dispatch — and requires column j of the batched product to equal
// csr_basic applied to input column j, bit for bit.
func TestEveryBatchKernelMatchesColumnwiseBasic(t *testing.T) {
	lib := NewLibrary[float64]()
	lib.RegisterHYB()
	lib.RegisterBCSR()
	basic := lib.Basic(matrix.FormatCSR)

	widths := []int{1, 2, 4, 5, 7, 8, 16}
	if testing.Short() {
		widths = []int{1, 4, 5, 8}
	}
	formats := append(append([]matrix.Format{}, matrix.Formats[:]...), matrix.FormatHYB, matrix.FormatBCSR)
	for name, m := range engineCases() {
		for _, k := range widths {
			xs := batchVectors(m.Cols, k)
			want := make([][]float64, k)
			for j := 0; j < k; j++ {
				want[j] = make([]float64, m.Rows)
				basic.Run(&Mat[float64]{Format: matrix.FormatCSR, CSR: m}, xs[j], want[j], 1)
			}
			xb := packInterleaved(xs, k, m.Cols)

			for _, threads := range []int{1, 2, 3, 8} {
				pool := NewPool[float64](threads)
				for _, f := range formats {
					mat, err := Convert(m, f, 0)
					if err != nil {
						continue // fill guard: format unsuitable for this shape
					}
					for _, bk := range lib.ForFormatBatch(f) {
						for _, pooled := range []bool{false, true} {
							yb := make([]float64, m.Rows*k)
							for i := range yb {
								yb[i] = 123 // must be fully overwritten
							}
							if pooled {
								bk.RunPooled(mat, xb, yb, k, pool)
							} else {
								bk.Run(mat, xb, yb, k, threads)
							}
							for j := 0; j < k; j++ {
								for i := 0; i < m.Rows; i++ {
									if got := yb[i*k+j]; got != want[j][i] {
										t.Fatalf("%s: kernel %s k=%d threads=%d pooled=%v: y[%d][col %d] = %g, want %g",
											name, bk.Name, k, threads, pooled, i, j, got, want[j][i])
									}
								}
							}
						}
					}
				}
				pool.Close()
			}
		}
	}
}

// TestBatchKernelWidth1BitForBitWithPairedKernel pins the k=1 contract on a
// matrix with random (non-integer) values, where summation order shows: at
// width 1 each batch kernel's remainder loop must reproduce its paired
// single-vector kernel's accumulation order exactly.
func TestBatchKernelWidth1BitForBitWithPairedKernel(t *testing.T) {
	lib := NewLibrary[float64]()
	lib.RegisterHYB()
	lib.RegisterBCSR()
	pairs := map[string]string{
		"csr_batch":         "csr_basic",
		"csr_batch_unroll4": "csr_unroll4",
		"coo_batch":         "coo_basic",
		"dia_batch":         "dia_rowmajor",
		"ell_batch":         "ell_rowmajor",
		"hyb_batch":         "hyb_basic",
		"bcsr_batch":        "bcsr_basic",
	}

	rng := rand.New(rand.NewSource(21))
	var ts []matrix.Triple[float64]
	for r := 0; r < 200; r++ {
		for n := 0; n < 12; n++ {
			ts = append(ts, matrix.Triple[float64]{Row: r, Col: rng.Intn(200), Val: rng.NormFloat64()})
		}
	}
	m, err := matrix.FromTriples(200, 200, ts)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	for batchName, singleName := range pairs {
		bk := lib.LookupBatch(batchName)
		sk := lib.Lookup(singleName)
		if bk == nil || sk == nil {
			t.Fatalf("pair %s/%s not registered", batchName, singleName)
		}
		mat, err := Convert(m, bk.Format, 0)
		if err != nil {
			t.Fatalf("convert to %s: %v", bk.Format, err)
		}
		want := make([]float64, m.Rows)
		sk.Run(mat, x, want, 1)
		got := make([]float64, m.Rows)
		bk.Run(mat, x, got, 1, 1)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s k=1 vs %s: y[%d] = %v, want %v (order mismatch)",
					batchName, singleName, i, got[i], want[i])
			}
		}
	}
}

// TestBatchWidthZeroIsNoOp: k=0 must return without touching yb.
func TestBatchWidthZeroIsNoOp(t *testing.T) {
	lib := NewLibrary[float64]()
	rng := rand.New(rand.NewSource(22))
	m := intCSR(rng, 50, 50, 4)
	mat := &Mat[float64]{Format: matrix.FormatCSR, CSR: m}
	pool := NewPool[float64](2)
	defer pool.Close()
	for _, name := range []string{"csr_batch", "csr_batch_parallel"} {
		bk := lib.LookupBatch(name)
		yb := []float64{7, 7, 7}
		bk.Run(mat, nil, yb[:0], 0, 2)
		bk.RunPooled(mat, nil, yb[:0], 0, pool)
		bk.Run(mat, nil, yb[:0], -3, 2)
		for i, v := range yb {
			if v != 7 {
				t.Fatalf("%s: k=0 wrote yb[%d] = %g", name, i, v)
			}
		}
	}
}

// TestBatchEmptyAndDegenerateShapes: 0-nonzero, 0×N, and N×0 matrices run
// every CSR batch width without panicking and produce all-zero output.
func TestBatchEmptyAndDegenerateShapes(t *testing.T) {
	lib := NewLibrary[float64]()
	shapes := []struct{ rows, cols int }{{10, 10}, {0, 5}, {5, 0}, {0, 0}}
	for _, sh := range shapes {
		m, err := matrix.FromTriples[float64](sh.rows, sh.cols, nil)
		if err != nil {
			t.Fatalf("%dx%d: %v", sh.rows, sh.cols, err)
		}
		mat := &Mat[float64]{Format: matrix.FormatCSR, CSR: m}
		for _, k := range []int{1, 5, 8} {
			xb := make([]float64, sh.cols*k)
			yb := make([]float64, sh.rows*k)
			for i := range yb {
				yb[i] = 9
			}
			lib.LookupBatch("csr_batch_parallel").Run(mat, xb, yb, k, 4)
			for i, v := range yb {
				if v != 0 {
					t.Fatalf("%dx%d k=%d: yb[%d] = %g, want 0", sh.rows, sh.cols, k, i, v)
				}
			}
		}
	}
}

// TestBatchPooledZeroAlloc is the batched engine's allocation contract: with
// the batch plan cached and the workers up, a pooled batched SpMV of any
// width performs zero heap allocations per call.
func TestBatchPooledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not stable under -race")
	}
	rng := rand.New(rand.NewSource(23))
	m := intCSR(rng, 5000, 5000, 6) // ~30k nonzeros: parallel path
	mat := &Mat[float64]{Format: matrix.FormatCSR, CSR: m}
	lib := NewLibrary[float64]()
	pool := NewPool[float64](4)
	defer pool.Close()
	for _, k := range []int{2, 5, 8} {
		xb := make([]float64, m.Cols*k)
		for i := range xb {
			xb[i] = float64(1 + i%5)
		}
		yb := make([]float64, m.Rows*k)
		for _, name := range []string{"csr_batch_parallel", "csr_batch_parallel_unroll4"} {
			bk := lib.LookupBatch(name)
			bk.RunPooled(mat, xb, yb, k, pool) // warm: plan + workers
			if allocs := testing.AllocsPerRun(50, func() { bk.RunPooled(mat, xb, yb, k, pool) }); allocs != 0 {
				t.Errorf("%s k=%d: %.1f allocs per steady-state call, want 0", name, k, allocs)
			}
		}
	}
}

// TestPlanForBatchScalesCutoff pins the k-scaled serial cutoff: a matrix
// whose single-vector work sits under the cutoff parallelises once the batch
// width multiplies the estimate past it, and batch plans cache per
// (threads, k) without evicting the single-vector plan.
func TestPlanForBatchScalesCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := intCSR(rng, 500, 500, 6) // ~3k nonzeros: serial at k=1, parallel at k=8
	mat := &Mat[float64]{Format: matrix.FormatCSR, CSR: m}

	p1 := mat.PlanFor(4)
	if !p1.Serial {
		t.Fatalf("k=1 plan not serial at %d nnz", m.NNZ())
	}
	if got := mat.PlanForBatch(4, 1); got != p1 {
		t.Error("PlanForBatch(4, 1) did not reuse the single-vector plan")
	}
	p8 := mat.PlanForBatch(4, 8)
	if p8.Serial {
		t.Errorf("k=8 plan serial; %d×8 work should clear the cutoff", m.NNZ())
	}
	if p8.BatchK != 8 {
		t.Errorf("BatchK = %d, want 8", p8.BatchK)
	}
	if mat.PlanForBatch(4, 8) != p8 {
		t.Error("PlanForBatch(4, 8) recomputed a cached plan")
	}
	if mat.PlanFor(4) != p1 {
		t.Error("batch plan evicted the single-vector plan")
	}
	p16 := mat.PlanForBatch(4, 16)
	if p16 == p8 || p16.BatchK != 16 {
		t.Errorf("PlanForBatch(4, 16) returned BatchK=%d plan", p16.BatchK)
	}
}

func BenchmarkSpMMSteadyState(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	m := gen.RandomUniform[float64](20000, 20000, 30, rng)
	mat, err := Convert(m, matrix.FormatCSR, 0)
	if err != nil {
		b.Fatal(err)
	}
	lib := NewLibrary[float64]()
	bk := lib.LookupBatch("csr_batch_parallel")
	pool := NewPool[float64](8)
	defer pool.Close()
	for _, k := range []int{1, 4, 8, 16} {
		xb := make([]float64, m.Cols*k)
		for i := range xb {
			xb[i] = float64(1 + i%5)
		}
		yb := make([]float64, m.Rows*k)
		b.Run(fmt.Sprintf("csr_batch_parallel/k%d", k), func(b *testing.B) {
			bk.RunPooled(mat, xb, yb, k, pool) // warm plan + workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bk.RunPooled(mat, xb, yb, k, pool)
			}
			// Per-vector GFLOPS: the amortisation metric.
			b.ReportMetric(float64(FLOPs(m.NNZ()))*float64(k)/1e9*float64(b.N)/b.Elapsed().Seconds(), "gflops")
		})
	}
}
