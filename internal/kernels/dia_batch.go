package kernels

import "smat/internal/matrix"

// diaBatchRange computes rows [lo, hi) of Y = A·X for k interleaved
// right-hand sides with a row-major traversal: the register tile over the
// RHS dimension lets each row's diagonal walk write its yb tile exactly
// once. Widths of two tiles or more take a double-wide pass (eight
// accumulators), halving how often the strided diagonal data is re-walked —
// DIA's per-nonzero cost is dominated by the offset bounds check and the
// stride-Rows data load, so amortising them further is what pushes the
// per-vector win past the plain tile. The remainder columns use
// diaRowRange's accumulation order, so k=1 is bit-for-bit dia_rowmajor.
//
//smat:hotpath
func diaBatchRange[T matrix.Float](d *matrix.DIA[T], xb, yb []T, k, lo, hi int) {
	for r := lo; r < hi; r++ {
		yr := yb[r*k : (r+1)*k]
		j := 0
		for ; j+2*batchTile <= k; j += 2 * batchTile {
			var s0, s1, s2, s3, s4, s5, s6, s7 T
			for i, off := range d.Offsets {
				c := r + off
				if c >= 0 && c < d.Cols {
					v := d.Data[i*d.Rows+r]
					xc := xb[c*k+j : c*k+j+8]
					s0 += v * xc[0]
					s1 += v * xc[1]
					s2 += v * xc[2]
					s3 += v * xc[3]
					s4 += v * xc[4]
					s5 += v * xc[5]
					s6 += v * xc[6]
					s7 += v * xc[7]
				}
			}
			yr[j], yr[j+1], yr[j+2], yr[j+3] = s0, s1, s2, s3
			yr[j+4], yr[j+5], yr[j+6], yr[j+7] = s4, s5, s6, s7
		}
		for ; j+batchTile <= k; j += batchTile {
			var s0, s1, s2, s3 T
			for i, off := range d.Offsets {
				c := r + off
				if c >= 0 && c < d.Cols {
					v := d.Data[i*d.Rows+r]
					xc := xb[c*k+j : c*k+j+4]
					s0 += v * xc[0]
					s1 += v * xc[1]
					s2 += v * xc[2]
					s3 += v * xc[3]
				}
			}
			yr[j], yr[j+1], yr[j+2], yr[j+3] = s0, s1, s2, s3
		}
		for ; j < k; j++ {
			var sum T
			for i, off := range d.Offsets {
				c := r + off
				if c >= 0 && c < d.Cols {
					sum += d.Data[i*d.Rows+r] * xb[c*k+j]
				}
			}
			yr[j] = sum
		}
	}
}

//smat:hotpath
func diaBatchChunk[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	diaBatchRange(m.DIA, xb, yb, k, lo, hi)
}

//smat:hotpath
func runDIABatch[T matrix.Float](m *Mat[T], xb, yb []T, k int, _ exec[T]) {
	diaBatchRange(m.DIA, xb, yb, k, 0, m.DIA.Rows)
}

//smat:hotpath-factory
func runDIABatchParallel[T matrix.Float]() batchFn[T] {
	chunk := rangeFn[T](diaBatchChunk[T])
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			diaBatchRange(m.DIA, xb, yb, k, 0, m.DIA.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, xb, yb, k)
	}
}
