package kernels

import "smat/internal/matrix"

// diaBatchRange computes rows [lo, hi) of Y = A·X for k interleaved
// right-hand sides with a row-major traversal at DIA's default register-tile
// width of eight: the register tile over the RHS dimension lets each row's
// diagonal walk write its yb tile exactly once. The eight-accumulator pass
// halves how often the strided diagonal data is re-walked — DIA's
// per-nonzero cost is dominated by the offset bounds check and the
// stride-Rows data load, so amortising them is what pushes the per-vector
// win past a narrower tile — with a four-wide middle pass before the scalar
// remainder. The remainder columns use diaRowRange's accumulation order, so
// k=1 is bit-for-bit dia_rowmajor. diaBatchRangeT2/T4 are the narrower
// searched tile widths (BatchTiles).
//
//smat:hotpath
func diaBatchRange[T matrix.Float](d *matrix.DIA[T], xb, yb []T, k, lo, hi int) {
	for r := lo; r < hi; r++ {
		yr := yb[r*k : (r+1)*k]
		j := 0
		for ; j+8 <= k; j += 8 {
			var s0, s1, s2, s3, s4, s5, s6, s7 T
			for i, off := range d.Offsets {
				c := r + off
				if c >= 0 && c < d.Cols {
					v := d.Data[i*d.Rows+r]
					xc := xb[c*k+j : c*k+j+8]
					s0 += v * xc[0]
					s1 += v * xc[1]
					s2 += v * xc[2]
					s3 += v * xc[3]
					s4 += v * xc[4]
					s5 += v * xc[5]
					s6 += v * xc[6]
					s7 += v * xc[7]
				}
			}
			yr[j], yr[j+1], yr[j+2], yr[j+3] = s0, s1, s2, s3
			yr[j+4], yr[j+5], yr[j+6], yr[j+7] = s4, s5, s6, s7
		}
		for ; j+4 <= k; j += 4 {
			var s0, s1, s2, s3 T
			for i, off := range d.Offsets {
				c := r + off
				if c >= 0 && c < d.Cols {
					v := d.Data[i*d.Rows+r]
					xc := xb[c*k+j : c*k+j+4]
					s0 += v * xc[0]
					s1 += v * xc[1]
					s2 += v * xc[2]
					s3 += v * xc[3]
				}
			}
			yr[j], yr[j+1], yr[j+2], yr[j+3] = s0, s1, s2, s3
		}
		for ; j < k; j++ {
			var sum T
			for i, off := range d.Offsets {
				c := r + off
				if c >= 0 && c < d.Cols {
					sum += d.Data[i*d.Rows+r] * xb[c*k+j]
				}
			}
			yr[j] = sum
		}
	}
}

//smat:hotpath
func diaBatchChunk[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	diaBatchRange(m.DIA, xb, yb, k, lo, hi)
}

//smat:hotpath
func runDIABatch[T matrix.Float](m *Mat[T], xb, yb []T, k int, _ exec[T]) {
	diaBatchRange(m.DIA, xb, yb, k, 0, m.DIA.Rows)
}

//smat:hotpath-factory
func runDIABatchParallel[T matrix.Float]() batchFn[T] {
	chunk := rangeFn[T](diaBatchChunk[T])
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			diaBatchRange(m.DIA, xb, yb, k, 0, m.DIA.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, xb, yb, k)
	}
}

// diaBatchRangeT2 is the two-accumulator tile.
//
//smat:hotpath
func diaBatchRangeT2[T matrix.Float](d *matrix.DIA[T], xb, yb []T, k, lo, hi int) {
	for r := lo; r < hi; r++ {
		yr := yb[r*k : (r+1)*k]
		j := 0
		for ; j+2 <= k; j += 2 {
			var s0, s1 T
			for i, off := range d.Offsets {
				c := r + off
				if c >= 0 && c < d.Cols {
					v := d.Data[i*d.Rows+r]
					xc := xb[c*k+j : c*k+j+2]
					s0 += v * xc[0]
					s1 += v * xc[1]
				}
			}
			yr[j], yr[j+1] = s0, s1
		}
		for ; j < k; j++ {
			var sum T
			for i, off := range d.Offsets {
				c := r + off
				if c >= 0 && c < d.Cols {
					sum += d.Data[i*d.Rows+r] * xb[c*k+j]
				}
			}
			yr[j] = sum
		}
	}
}

// diaBatchRangeT4 is the four-accumulator tile without the double-wide pass.
//
//smat:hotpath
func diaBatchRangeT4[T matrix.Float](d *matrix.DIA[T], xb, yb []T, k, lo, hi int) {
	for r := lo; r < hi; r++ {
		yr := yb[r*k : (r+1)*k]
		j := 0
		for ; j+4 <= k; j += 4 {
			var s0, s1, s2, s3 T
			for i, off := range d.Offsets {
				c := r + off
				if c >= 0 && c < d.Cols {
					v := d.Data[i*d.Rows+r]
					xc := xb[c*k+j : c*k+j+4]
					s0 += v * xc[0]
					s1 += v * xc[1]
					s2 += v * xc[2]
					s3 += v * xc[3]
				}
			}
			yr[j], yr[j+1], yr[j+2], yr[j+3] = s0, s1, s2, s3
		}
		for ; j < k; j++ {
			var sum T
			for i, off := range d.Offsets {
				c := r + off
				if c >= 0 && c < d.Cols {
					sum += d.Data[i*d.Rows+r] * xb[c*k+j]
				}
			}
			yr[j] = sum
		}
	}
}

//smat:hotpath
func diaBatchChunkT2[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	diaBatchRangeT2(m.DIA, xb, yb, k, lo, hi)
}

//smat:hotpath
func diaBatchChunkT4[T matrix.Float](m *Mat[T], xb, yb []T, k, lo, hi int) {
	diaBatchRangeT4(m.DIA, xb, yb, k, lo, hi)
}

// diaBatchChunkTile resolves the chunk body for a register-tile width at
// registration.
func diaBatchChunkTile[T matrix.Float](tile int) rangeFn[T] {
	switch tile {
	case 2:
		return rangeFn[T](diaBatchChunkT2[T])
	case 4:
		return rangeFn[T](diaBatchChunkT4[T])
	default:
		return rangeFn[T](diaBatchChunk[T])
	}
}

// runDIABatchParallelTile instantiates the parallel batched DIA kernel at a
// register-tile width, resolved to a chunk funcval at bind time.
//
//smat:hotpath-factory
func runDIABatchParallelTile[T matrix.Float](tile int) batchFn[T] {
	chunk := diaBatchChunkTile[T](tile)
	return func(m *Mat[T], xb, yb []T, k int, ex exec[T]) {
		if ex.plan.Serial {
			chunk(m, xb, yb, k, 0, m.DIA.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, xb, yb, k)
	}
}
