package kernels

import "smat/internal/matrix"

// runELLBasic is the paper's Figure 2(d) loop: column(slot)-major traversal
// of the packed dense matrix. Padding slots carry value 0 and contribute
// nothing.
//
//smat:hotpath
func runELLBasic[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	e := m.ELL
	clear(y)
	for n := 0; n < e.Width; n++ {
		data := e.Data[n*e.Rows : (n+1)*e.Rows]
		idx := e.ColIdx[n*e.Rows : (n+1)*e.Rows]
		for i := 0; i < e.Rows; i++ {
			y[i] += data[i] * x[idx[i]]
		}
	}
}

// runELLUnroll4 unrolls the slot-major row loop by four.
//
//smat:hotpath
func runELLUnroll4[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	e := m.ELL
	clear(y)
	for n := 0; n < e.Width; n++ {
		data := e.Data[n*e.Rows : (n+1)*e.Rows]
		idx := e.ColIdx[n*e.Rows : (n+1)*e.Rows]
		i := 0
		for ; i+4 <= e.Rows; i += 4 {
			y[i] += data[i] * x[idx[i]]
			y[i+1] += data[i+1] * x[idx[i+1]]
			y[i+2] += data[i+2] * x[idx[i+2]]
			y[i+3] += data[i+3] * x[idx[i+3]]
		}
		for ; i < e.Rows; i++ {
			y[i] += data[i] * x[idx[i]]
		}
	}
}

// ellRowRange computes rows [lo, hi) row-major: one pass over each row's
// slots, writing y once per row.
//
//smat:hotpath
func ellRowRange[T matrix.Float](e *matrix.ELL[T], x, y []T, lo, hi int) {
	for r := lo; r < hi; r++ {
		var sum T
		for n := 0; n < e.Width; n++ {
			sum += e.Data[n*e.Rows+r] * x[e.ColIdx[n*e.Rows+r]]
		}
		y[r] = sum
	}
}

// ellRowRangeUnroll4 unrolls the slot loop by four within each row.
//
//smat:hotpath
func ellRowRangeUnroll4[T matrix.Float](e *matrix.ELL[T], x, y []T, lo, hi int) {
	w, rows := e.Width, e.Rows
	for r := lo; r < hi; r++ {
		var s0, s1, s2, s3 T
		n := 0
		for ; n+4 <= w; n += 4 {
			s0 += e.Data[n*rows+r] * x[e.ColIdx[n*rows+r]]
			s1 += e.Data[(n+1)*rows+r] * x[e.ColIdx[(n+1)*rows+r]]
			s2 += e.Data[(n+2)*rows+r] * x[e.ColIdx[(n+2)*rows+r]]
			s3 += e.Data[(n+3)*rows+r] * x[e.ColIdx[(n+3)*rows+r]]
		}
		for ; n < w; n++ {
			s0 += e.Data[n*rows+r] * x[e.ColIdx[n*rows+r]]
		}
		y[r] = (s0 + s1) + (s2 + s3)
	}
}

//smat:hotpath
func runELLRowMajor[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	ellRowRange(m.ELL, x, y, 0, m.ELL.Rows)
}

//smat:hotpath
func ellChunk[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	ellRowRange(m.ELL, x, y, lo, hi)
}

//smat:hotpath
func ellChunkUnroll4[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	ellRowRangeUnroll4(m.ELL, x, y, lo, hi)
}

//smat:hotpath-factory
func runELLParallel[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](ellChunk[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			ellRowRange(m.ELL, x, y, 0, m.ELL.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, x, y, 1)
	}
}

//smat:hotpath-factory
func runELLParallelUnroll4[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](ellChunkUnroll4[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			ellRowRangeUnroll4(m.ELL, x, y, 0, m.ELL.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, x, y, 1)
	}
}

// ellRowRangeUnroll2 / ellRowRangeUnroll8 extend the slot-loop unrolling to
// the remaining searched depths (UnrollDepths).
//
//smat:hotpath
func ellRowRangeUnroll2[T matrix.Float](e *matrix.ELL[T], x, y []T, lo, hi int) {
	w, rows := e.Width, e.Rows
	for r := lo; r < hi; r++ {
		var s0, s1 T
		n := 0
		for ; n+2 <= w; n += 2 {
			s0 += e.Data[n*rows+r] * x[e.ColIdx[n*rows+r]]
			s1 += e.Data[(n+1)*rows+r] * x[e.ColIdx[(n+1)*rows+r]]
		}
		for ; n < w; n++ {
			s0 += e.Data[n*rows+r] * x[e.ColIdx[n*rows+r]]
		}
		y[r] = s0 + s1
	}
}

//smat:hotpath
func ellRowRangeUnroll8[T matrix.Float](e *matrix.ELL[T], x, y []T, lo, hi int) {
	w, rows := e.Width, e.Rows
	for r := lo; r < hi; r++ {
		var s0, s1, s2, s3, s4, s5, s6, s7 T
		n := 0
		for ; n+8 <= w; n += 8 {
			s0 += e.Data[n*rows+r] * x[e.ColIdx[n*rows+r]]
			s1 += e.Data[(n+1)*rows+r] * x[e.ColIdx[(n+1)*rows+r]]
			s2 += e.Data[(n+2)*rows+r] * x[e.ColIdx[(n+2)*rows+r]]
			s3 += e.Data[(n+3)*rows+r] * x[e.ColIdx[(n+3)*rows+r]]
			s4 += e.Data[(n+4)*rows+r] * x[e.ColIdx[(n+4)*rows+r]]
			s5 += e.Data[(n+5)*rows+r] * x[e.ColIdx[(n+5)*rows+r]]
			s6 += e.Data[(n+6)*rows+r] * x[e.ColIdx[(n+6)*rows+r]]
			s7 += e.Data[(n+7)*rows+r] * x[e.ColIdx[(n+7)*rows+r]]
		}
		for ; n < w; n++ {
			s0 += e.Data[n*rows+r] * x[e.ColIdx[n*rows+r]]
		}
		y[r] = ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	}
}

//smat:hotpath
func ellChunkUnroll2[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	ellRowRangeUnroll2(m.ELL, x, y, lo, hi)
}

//smat:hotpath
func ellChunkUnroll8[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	ellRowRangeUnroll8(m.ELL, x, y, lo, hi)
}

// ellChunkUnroll resolves the chunk body for an unroll depth at registration.
func ellChunkUnroll[T matrix.Float](u int) rangeFn[T] {
	switch u {
	case 2:
		return rangeFn[T](ellChunkUnroll2[T])
	case 8:
		return rangeFn[T](ellChunkUnroll8[T])
	case 4:
		return rangeFn[T](ellChunkUnroll4[T])
	default:
		return rangeFn[T](ellChunk[T])
	}
}

// runELLParallelUnroll instantiates the row-major parallel ELL kernel at an
// unroll depth, resolved to a chunk funcval at bind time.
//
//smat:hotpath-factory
func runELLParallelUnroll[T matrix.Float](u int) runFn[T] {
	chunk := ellChunkUnroll[T](u)
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			chunk(m, x, y, 1, 0, m.ELL.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, x, y, 1)
	}
}
