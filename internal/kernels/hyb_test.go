package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smat/internal/matrix"
)

func TestHYBKernelsMatchDenseReferenceProperty(t *testing.T) {
	lib := NewLibrary[float64]()
	lib.RegisterHYB()
	hybs := lib.ForFormat(matrix.FormatHYB)
	if len(hybs) != 3 {
		t.Fatalf("%d HYB kernels, want 3", len(hybs))
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		m := randCSR(rng, rows, cols, 0.05+rng.Float64()*0.4)
		mat, err := Convert(m, matrix.FormatHYB, 0)
		if err != nil {
			return false
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		m.ToDense().MulVec(x, want)
		for _, k := range hybs {
			y := make([]float64, rows)
			k.Run(mat, x, y, 3)
			if !matrix.VecApproxEqual(y, want, 1e-9) {
				t.Logf("kernel %s mismatch (seed %d)", k.Name, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHYBKernelsLargeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Skewed: many short rows plus a handful of heavy ones, HYB's home turf.
	var ts []matrix.Triple[float64]
	n := 5000
	for r := 0; r < n; r++ {
		deg := 2
		if r%500 == 0 {
			deg = 300
		}
		seen := map[int]bool{}
		for len(seen) < deg {
			c := rng.Intn(n)
			if !seen[c] {
				seen[c] = true
				ts = append(ts, matrix.Triple[float64]{Row: r, Col: c, Val: rng.NormFloat64()})
			}
		}
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := Convert(m, matrix.FormatHYB, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mat.HYB.COO.NNZ() == 0 {
		t.Fatal("skewed matrix produced empty COO tail")
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	m.ToDense().MulVec(x, want)
	lib := NewLibrary[float64]()
	lib.RegisterHYB()
	for _, threads := range []int{1, 4} {
		for _, k := range lib.ForFormat(matrix.FormatHYB) {
			y := make([]float64, n)
			k.Run(mat, x, y, threads)
			if !matrix.VecApproxEqual(y, want, 1e-9) {
				t.Errorf("kernel %s (threads=%d) wrong result", k.Name, threads)
			}
		}
	}
	r, c := mat.Dims()
	if r != n || c != n {
		t.Errorf("Dims = %dx%d", r, c)
	}
}

func TestStockLibraryHasNoHYB(t *testing.T) {
	lib := NewLibrary[float64]()
	if len(lib.ForFormat(matrix.FormatHYB)) != 0 {
		t.Error("HYB kernels registered without opt-in")
	}
	if lib.Lookup("hyb_basic") != nil {
		t.Error("hyb_basic present without opt-in")
	}
}
