package kernels

import "smat/internal/matrix"

// Batched (multi-vector) SpMV: Y = A·X for k right-hand sides held in the
// interleaved layout xb[col*k+j] / yb[row*k+j]. Interleaving makes the k
// values per matrix column contiguous, so each loaded vals[jj]/colIdx[jj]
// pair is amortised over a unit-stride streak of k multiply-adds — the
// arithmetic-intensity lever single-vector SpMV lacks (every A element read
// from memory buys exactly one FLOP pair there).
//
// All batch kernels tile the RHS dimension with a register tile whose width
// is a template parameter (Params.BatchTile, one of BatchTiles): full tiles
// keep that many independent accumulators live per matrix entry, and the
// remainder columns fall back to a scalar column loop whose accumulation
// order matches the format's single-vector kernel — at k=1 only the
// remainder loop runs regardless of tile width, so csr_batch is bit-for-bit
// csr_basic, dia_batch is bit-for-bit dia_rowmajor, and so on (pinned by the
// batched oracle). The unsuffixed kernels use DefaultBatchTile(format); the
// other widths are registered as parameter instances (see params.go).

// allBatchKernels returns the stock batched kernels. Like allKernels, the
// parallel variants bind their chunk functions at registration; every
// parallel body degrades to its serial body below the plan's (k-scaled)
// cutoff. HYB/BCSR batch kernels are opt-in via RegisterHYB/RegisterBCSR.
func allBatchKernels[T matrix.Float]() []*BatchKernel[T] {
	return []*BatchKernel[T]{
		// CSR family.
		{Name: "csr_batch", Format: matrix.FormatCSR, Strategies: 0, Params: Params{BatchTile: 4}, run: runCSRBatch[T]},
		{Name: "csr_batch_unroll4", Format: matrix.FormatCSR, Strategies: StratUnroll4, Params: Params{BatchTile: 4}, run: runCSRBatchUnroll4[T]},
		{Name: "csr_batch_parallel", Format: matrix.FormatCSR, Strategies: StratParallel | StratNNZBalance, Params: Params{BatchTile: 4}, run: runCSRBatchParallel[T]()},
		{Name: "csr_batch_parallel_unroll4", Format: matrix.FormatCSR, Strategies: StratParallel | StratNNZBalance | StratUnroll4, Params: Params{BatchTile: 4}, run: runCSRBatchParallelUnroll4[T]()},
		// COO family.
		{Name: "coo_batch", Format: matrix.FormatCOO, Strategies: 0, Params: Params{BatchTile: 4}, run: runCOOBatch[T]},
		{Name: "coo_batch_parallel", Format: matrix.FormatCOO, Strategies: StratParallel | StratNNZBalance, Params: Params{BatchTile: 4}, run: runCOOBatchParallel[T]()},
		// DIA family (row-major by construction: the interleaved Y tile makes
		// write-once row traversal the natural batched order; the default
		// double-wide tile amortises the strided diagonal walk).
		{Name: "dia_batch", Format: matrix.FormatDIA, Strategies: 0, Params: Params{BatchTile: 8}, run: runDIABatch[T]},
		{Name: "dia_batch_parallel", Format: matrix.FormatDIA, Strategies: StratParallel, Params: Params{BatchTile: 8}, run: runDIABatchParallel[T]()},
		// ELL family (row-major, same reasoning as DIA).
		{Name: "ell_batch", Format: matrix.FormatELL, Strategies: 0, Params: Params{BatchTile: 8}, run: runELLBatch[T]},
		{Name: "ell_batch_parallel", Format: matrix.FormatELL, Strategies: StratParallel, Params: Params{BatchTile: 8}, run: runELLBatchParallel[T]()},
	}
}
