package kernels

import (
	"math/rand"
	"sync"
	"testing"

	"smat/internal/matrix"
)

func TestSpGEMMMatchesMulBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct{ m, k, n int }{
		{1, 1, 1}, {7, 5, 9}, {40, 60, 30}, {128, 64, 128},
	}
	for _, tc := range cases {
		a := randCSR(rng, tc.m, tc.k, 0.15)
		b := randCSR(rng, tc.k, tc.n, 0.15)
		want := a.Mul(b)
		for _, threads := range []int{1, 2, 3, 8} {
			got := SpGEMM(a, b, nil, threads)
			if !want.Equal(got) {
				t.Fatalf("%dx%dx%d threads=%d: SpGEMM differs from matrix.Mul", tc.m, tc.k, tc.n, threads)
			}
		}
	}
}

func TestSpGEMMPooledBitForBitWithSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randCSR(rng, 200, 150, 0.08)
	b := randCSR(rng, 150, 180, 0.08)
	serial := SpGEMM(a, b, nil, 1)
	for _, threads := range []int{2, 4, 8} {
		pool := NewPool[float64](threads)
		got := SpGEMM(a, b, pool, threads)
		pool.Close()
		if !serial.Equal(got) {
			t.Fatalf("threads=%d: pooled SpGEMM differs from serial", threads)
		}
	}
}

func TestSpGEMMEmptyAndZeroRows(t *testing.T) {
	empty, err := matrix.FromTriples[float64](10, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b := randCSR(rng, 10, 10, 0.3)
	got := SpGEMM[float64](empty, b, nil, 4)
	if got.NNZ() != 0 || got.Rows != 10 || got.Cols != 10 {
		t.Fatalf("empty·B: got %d nnz, %dx%d", got.NNZ(), got.Rows, got.Cols)
	}
	if want := b.Mul(empty); !want.Equal(SpGEMM(b, empty, nil, 4)) {
		t.Fatal("B·empty differs from matrix.Mul")
	}
}

func TestSpGEMMDimensionMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randCSR(rng, 4, 5, 0.5)
	b := randCSR(rng, 6, 4, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	SpGEMM(a, b, nil, 1)
}

func TestGalerkinRAPMatchesTripleProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Galerkin shapes: P is tall (fine×coarse), R = Pᵀ.
	a := randCSR(rng, 120, 120, 0.06)
	p := randCSR(rng, 120, 40, 0.1)
	r := p.Transpose()
	want := matrix.TripleProduct(r, a, p)
	got := GalerkinRAP(r, a, p, nil, 1)
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape mismatch: got %dx%d want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	// Fused association differs from the two-pass product, so compare to a
	// rounding tolerance, not bit-for-bit. Entries that cancel to an exact
	// zero on one path but not the other differ structurally, so compare
	// through At over the union pattern.
	for i := 0; i < want.Rows; i++ {
		for jj := want.RowPtr[i]; jj < want.RowPtr[i+1]; jj++ {
			c := want.ColIdx[jj]
			w, g := want.Vals[jj], got.At(i, c)
			if d := w - g; d > 1e-9 || d < -1e-9 {
				t.Fatalf("entry (%d,%d): fused %g vs two-pass %g", i, c, g, w)
			}
		}
	}
}

func TestGalerkinRAPPooledBitForBitWithSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randCSR(rng, 300, 300, 0.03)
	p := randCSR(rng, 300, 90, 0.05)
	r := p.Transpose()
	serial := GalerkinRAP(r, a, p, nil, 1)
	for _, threads := range []int{2, 3, 8} {
		pool := NewPool[float64](threads)
		got := GalerkinRAP(r, a, p, pool, threads)
		pool.Close()
		if !serial.Equal(got) {
			t.Fatalf("threads=%d: pooled GalerkinRAP differs from serial", threads)
		}
	}
}

// TestRunChunksConcurrentWithSpMV hammers the pool with SpGEMM jobs and SpMV
// dispatches at once: the busy pool must overflow to spawned goroutines, and
// every result must stay exact. Run under -race this pins the wake-barrier
// protocol for the generic-job path.
func TestRunChunksConcurrentWithSpMV(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randCSR(rng, 150, 150, 0.05)
	b := randCSR(rng, 150, 150, 0.05)
	want := a.Mul(b)
	pool := NewPool[float64](4)
	defer pool.Close()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if got := SpGEMM(a, b, pool, 4); !want.Equal(got) {
					t.Error("concurrent SpGEMM result differs")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPoolRunChunksCoversAllChunks(t *testing.T) {
	pool := NewPool[float64](4)
	defer pool.Close()
	bounds := []int{0, 3, 7, 12, 20}
	hit := make([]int, 20)
	var mu sync.Mutex
	pool.RunChunks(bounds, func(chunk, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			hit[i]++
		}
	})
	for i, n := range hit {
		if n != 1 {
			t.Fatalf("index %d covered %d times", i, n)
		}
	}
	// More chunks than workers: must fall back and still cover everything.
	wide := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	hit2 := make([]int, 8)
	pool.RunChunks(wide, func(chunk, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for i := lo; i < hi; i++ {
			hit2[i]++
		}
	})
	for i, n := range hit2 {
		if n != 1 {
			t.Fatalf("fallback: index %d covered %d times", i, n)
		}
	}
}
