package kernels

import "smat/internal/matrix"

// runDIABasic is the paper's Figure 2(c) loop: diagonal-major traversal with
// contiguous x reads, accumulating into y once per diagonal.
//
//smat:hotpath
func runDIABasic[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	d := m.DIA
	clear(y)
	for i, k := range d.Offsets {
		iStart := max(0, -k)
		jStart := max(0, k)
		n := min(d.Rows-iStart, d.Cols-jStart)
		diag := d.Data[i*d.Rows:]
		for t := 0; t < n; t++ {
			y[iStart+t] += diag[iStart+t] * x[jStart+t]
		}
	}
}

// runDIAUnroll4 unrolls the per-diagonal loop by four.
//
//smat:hotpath
func runDIAUnroll4[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	d := m.DIA
	clear(y)
	for i, k := range d.Offsets {
		iStart := max(0, -k)
		jStart := max(0, k)
		n := min(d.Rows-iStart, d.Cols-jStart)
		diag := d.Data[i*d.Rows:]
		t := 0
		for ; t+4 <= n; t += 4 {
			y[iStart+t] += diag[iStart+t] * x[jStart+t]
			y[iStart+t+1] += diag[iStart+t+1] * x[jStart+t+1]
			y[iStart+t+2] += diag[iStart+t+2] * x[jStart+t+2]
			y[iStart+t+3] += diag[iStart+t+3] * x[jStart+t+3]
		}
		for ; t < n; t++ {
			y[iStart+t] += diag[iStart+t] * x[jStart+t]
		}
	}
}

// diaRowRange computes rows [lo, hi) with a row-major traversal: each y
// element is written exactly once (the paper's note that diagonal-order loops
// re-write Y per diagonal motivates this variant).
//
//smat:hotpath
func diaRowRange[T matrix.Float](d *matrix.DIA[T], x, y []T, lo, hi int) {
	for r := lo; r < hi; r++ {
		var sum T
		for i, k := range d.Offsets {
			c := r + k
			if c >= 0 && c < d.Cols {
				sum += d.Data[i*d.Rows+r] * x[c]
			}
		}
		y[r] = sum
	}
}

// diaRowRangeUnroll4 unrolls the diagonal loop by four within each row.
//
//smat:hotpath
func diaRowRangeUnroll4[T matrix.Float](d *matrix.DIA[T], x, y []T, lo, hi int) {
	nd := len(d.Offsets)
	for r := lo; r < hi; r++ {
		var s0, s1, s2, s3 T
		i := 0
		for ; i+4 <= nd; i += 4 {
			if c := r + d.Offsets[i]; c >= 0 && c < d.Cols {
				s0 += d.Data[i*d.Rows+r] * x[c]
			}
			if c := r + d.Offsets[i+1]; c >= 0 && c < d.Cols {
				s1 += d.Data[(i+1)*d.Rows+r] * x[c]
			}
			if c := r + d.Offsets[i+2]; c >= 0 && c < d.Cols {
				s2 += d.Data[(i+2)*d.Rows+r] * x[c]
			}
			if c := r + d.Offsets[i+3]; c >= 0 && c < d.Cols {
				s3 += d.Data[(i+3)*d.Rows+r] * x[c]
			}
		}
		for ; i < nd; i++ {
			if c := r + d.Offsets[i]; c >= 0 && c < d.Cols {
				s0 += d.Data[i*d.Rows+r] * x[c]
			}
		}
		y[r] = (s0 + s1) + (s2 + s3)
	}
}

//smat:hotpath
func runDIARowMajor[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	diaRowRange(m.DIA, x, y, 0, m.DIA.Rows)
}

//smat:hotpath
func diaChunk[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	diaRowRange(m.DIA, x, y, lo, hi)
}

//smat:hotpath
func diaChunkUnroll4[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	diaRowRangeUnroll4(m.DIA, x, y, lo, hi)
}

//smat:hotpath-factory
func runDIAParallel[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](diaChunk[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			diaRowRange(m.DIA, x, y, 0, m.DIA.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, x, y, 1)
	}
}

//smat:hotpath-factory
func runDIAParallelUnroll4[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](diaChunkUnroll4[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			diaRowRangeUnroll4(m.DIA, x, y, 0, m.DIA.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, x, y, 1)
	}
}

// diaRowRangeUnroll2 / diaRowRangeUnroll8 extend the diagonal-loop unrolling
// to the remaining searched depths (UnrollDepths).
//
//smat:hotpath
func diaRowRangeUnroll2[T matrix.Float](d *matrix.DIA[T], x, y []T, lo, hi int) {
	nd := len(d.Offsets)
	for r := lo; r < hi; r++ {
		var s0, s1 T
		i := 0
		for ; i+2 <= nd; i += 2 {
			if c := r + d.Offsets[i]; c >= 0 && c < d.Cols {
				s0 += d.Data[i*d.Rows+r] * x[c]
			}
			if c := r + d.Offsets[i+1]; c >= 0 && c < d.Cols {
				s1 += d.Data[(i+1)*d.Rows+r] * x[c]
			}
		}
		for ; i < nd; i++ {
			if c := r + d.Offsets[i]; c >= 0 && c < d.Cols {
				s0 += d.Data[i*d.Rows+r] * x[c]
			}
		}
		y[r] = s0 + s1
	}
}

//smat:hotpath
func diaRowRangeUnroll8[T matrix.Float](d *matrix.DIA[T], x, y []T, lo, hi int) {
	nd := len(d.Offsets)
	for r := lo; r < hi; r++ {
		var s0, s1, s2, s3, s4, s5, s6, s7 T
		i := 0
		for ; i+8 <= nd; i += 8 {
			if c := r + d.Offsets[i]; c >= 0 && c < d.Cols {
				s0 += d.Data[i*d.Rows+r] * x[c]
			}
			if c := r + d.Offsets[i+1]; c >= 0 && c < d.Cols {
				s1 += d.Data[(i+1)*d.Rows+r] * x[c]
			}
			if c := r + d.Offsets[i+2]; c >= 0 && c < d.Cols {
				s2 += d.Data[(i+2)*d.Rows+r] * x[c]
			}
			if c := r + d.Offsets[i+3]; c >= 0 && c < d.Cols {
				s3 += d.Data[(i+3)*d.Rows+r] * x[c]
			}
			if c := r + d.Offsets[i+4]; c >= 0 && c < d.Cols {
				s4 += d.Data[(i+4)*d.Rows+r] * x[c]
			}
			if c := r + d.Offsets[i+5]; c >= 0 && c < d.Cols {
				s5 += d.Data[(i+5)*d.Rows+r] * x[c]
			}
			if c := r + d.Offsets[i+6]; c >= 0 && c < d.Cols {
				s6 += d.Data[(i+6)*d.Rows+r] * x[c]
			}
			if c := r + d.Offsets[i+7]; c >= 0 && c < d.Cols {
				s7 += d.Data[(i+7)*d.Rows+r] * x[c]
			}
		}
		for ; i < nd; i++ {
			if c := r + d.Offsets[i]; c >= 0 && c < d.Cols {
				s0 += d.Data[i*d.Rows+r] * x[c]
			}
		}
		y[r] = ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	}
}

//smat:hotpath
func diaChunkUnroll2[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	diaRowRangeUnroll2(m.DIA, x, y, lo, hi)
}

//smat:hotpath
func diaChunkUnroll8[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	diaRowRangeUnroll8(m.DIA, x, y, lo, hi)
}

// diaChunkUnroll resolves the chunk body for an unroll depth at registration.
func diaChunkUnroll[T matrix.Float](u int) rangeFn[T] {
	switch u {
	case 2:
		return rangeFn[T](diaChunkUnroll2[T])
	case 8:
		return rangeFn[T](diaChunkUnroll8[T])
	case 4:
		return rangeFn[T](diaChunkUnroll4[T])
	default:
		return rangeFn[T](diaChunk[T])
	}
}

// runDIAParallelUnroll instantiates the row-major parallel DIA kernel at an
// unroll depth, resolved to a chunk funcval at bind time.
//
//smat:hotpath-factory
func runDIAParallelUnroll[T matrix.Float](u int) runFn[T] {
	chunk := diaChunkUnroll[T](u)
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			chunk(m, x, y, 1, 0, m.DIA.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, x, y, 1)
	}
}
