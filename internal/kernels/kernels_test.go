package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smat/internal/matrix"
)

func randCSR(rng *rand.Rand, rows, cols int, density float64) *matrix.CSR[float64] {
	var ts []matrix.Triple[float64]
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rng.Float64() < density {
				ts = append(ts, matrix.Triple[float64]{Row: r, Col: c, Val: rng.NormFloat64()})
			}
		}
	}
	m, err := matrix.FromTriples(rows, cols, ts)
	if err != nil {
		panic(err)
	}
	return m
}

// runAll runs every registered kernel on m and checks it against the dense
// reference result.
func runAll(t *testing.T, m *matrix.CSR[float64], x []float64, threads int) {
	t.Helper()
	lib := NewLibrary[float64]()
	want := make([]float64, m.Rows)
	m.ToDense().MulVec(x, want)
	for _, f := range matrix.Formats {
		mat, err := Convert(m, f, 0)
		if err != nil {
			t.Fatalf("Convert to %v: %v", f, err)
		}
		for _, k := range lib.ForFormat(f) {
			y := make([]float64, m.Rows)
			for i := range y {
				y[i] = 999 // verify kernels fully overwrite y
			}
			k.Run(mat, x, y, threads)
			if !matrix.VecApproxEqual(y, want, 1e-9) {
				t.Errorf("kernel %s (threads=%d) wrong result on %dx%d nnz=%d",
					k.Name, threads, m.Rows, m.Cols, m.NNZ())
			}
		}
	}
}

func TestAllKernelsMatchDenseReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		m := randCSR(rng, rows, cols, 0.05+rng.Float64()*0.4)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		m.ToDense().MulVec(x, want)
		lib := NewLibrary[float64]()
		for _, fm := range matrix.Formats {
			mat, err := Convert(m, fm, 0)
			if err != nil {
				return false
			}
			for _, k := range lib.ForFormat(fm) {
				y := make([]float64, rows)
				k.Run(mat, x, y, 3)
				if !matrix.VecApproxEqual(y, want, 1e-9) {
					t.Logf("kernel %s mismatch (seed %d)", k.Name, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelsOnLargeMatrixParallelPaths(t *testing.T) {
	// Big enough (≥2048 rows) to exercise the goroutine fan-out paths.
	rng := rand.New(rand.NewSource(42))
	m := randCSR(rng, 3000, 3000, 0.002)
	x := make([]float64, 3000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	counts := []int{1, 2, 7, 16}
	if testing.Short() {
		counts = []int{7} // -race -short in CI: one fan-out shape is enough
	}
	for _, threads := range counts {
		runAll(t, m, x, threads)
	}
}

func TestKernelsFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var ts []matrix.Triple[float32]
	for r := 0; r < 50; r++ {
		for c := 0; c < 50; c++ {
			if rng.Float64() < 0.2 {
				ts = append(ts, matrix.Triple[float32]{Row: r, Col: c, Val: float32(rng.NormFloat64())})
			}
		}
	}
	m, err := matrix.FromTriples(50, 50, ts)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 50)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	want := make([]float32, 50)
	m.ToDense().MulVec(x, want)
	lib := NewLibrary[float32]()
	for _, f := range matrix.Formats {
		mat, err := Convert(m, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range lib.ForFormat(f) {
			y := make([]float32, 50)
			k.Run(mat, x, y, 2)
			if !matrix.VecApproxEqual(y, want, 1e-4) {
				t.Errorf("float32 kernel %s mismatch", k.Name)
			}
		}
	}
}

func TestEmptyMatrixAllKernels(t *testing.T) {
	m, err := matrix.FromTriples[float64](10, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 10)
	lib := NewLibrary[float64]()
	for _, f := range matrix.Formats {
		mat, err := Convert(m, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range lib.ForFormat(f) {
			y := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
			k.Run(mat, x, y, 2)
			for i, v := range y {
				if v != 0 {
					t.Errorf("kernel %s: y[%d] = %g on empty matrix, want 0", k.Name, i, v)
				}
			}
		}
	}
}

func TestLibraryRegistry(t *testing.T) {
	lib := NewLibrary[float64]()
	names := lib.Names()
	if len(names) < 18 {
		t.Errorf("library has %d kernels, want at least 18", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate kernel name %q", n)
		}
		seen[n] = true
		if lib.Lookup(n) == nil {
			t.Errorf("Lookup(%q) = nil", n)
		}
	}
	if lib.Lookup("no_such_kernel") != nil {
		t.Error("Lookup of unknown kernel returned non-nil")
	}
	for _, f := range matrix.Formats {
		b := lib.Basic(f)
		if b == nil {
			t.Fatalf("no basic kernel for %v", f)
		}
		if b.Strategies != 0 {
			t.Errorf("basic kernel for %v has strategies %v", f, b.Strategies)
		}
		if len(lib.ForFormat(f)) < 4 {
			t.Errorf("format %v has %d kernels, want ≥4", f, len(lib.ForFormat(f)))
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	lib := NewLibrary[float64]()
	lib.Register(&Kernel[float64]{Name: "csr_basic", Format: matrix.FormatCSR})
}

func TestRunFormatMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("format mismatch did not panic")
		}
	}()
	lib := NewLibrary[float64]()
	m, _ := matrix.FromTriples(2, 2, []matrix.Triple[float64]{{Row: 0, Col: 0, Val: 1}})
	mat, _ := Convert(m, matrix.FormatCOO, 0)
	lib.Basic(matrix.FormatCSR).Run(mat, []float64{1, 1}, make([]float64, 2), 1)
}

func TestConvertFillGuardPropagates(t *testing.T) {
	var ts []matrix.Triple[float64]
	n := 100
	for i := 0; i < n; i++ {
		ts = append(ts, matrix.Triple[float64]{Row: i, Col: n - 1 - i, Val: 1})
	}
	m, err := matrix.FromTriples(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Convert(m, matrix.FormatDIA, 8); err == nil {
		t.Error("Convert to DIA ignored fill guard")
	}
	if _, err := Convert(m, matrix.FormatELL, 8); err != nil {
		t.Errorf("Convert to ELL should succeed (width 1): %v", err)
	}
}

func TestStrategyStringAndCount(t *testing.T) {
	cases := []struct {
		s     Strategy
		str   string
		count int
	}{
		{0, "basic", 0},
		{StratParallel, "parallel", 1},
		{StratParallel | StratUnroll4, "parallel+unroll4", 2},
		{StratParallel | StratNNZBalance | StratUnroll4, "parallel+unroll4+nnzbalance", 3},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.str {
			t.Errorf("String(%d) = %q, want %q", c.s, got, c.str)
		}
		if got := c.s.Count(); got != c.count {
			t.Errorf("Count(%d) = %d, want %d", c.s, got, c.count)
		}
	}
}

func TestNNZBalancedRowBounds(t *testing.T) {
	// Row degrees: skewed so nnz balancing differs from row balancing.
	rng := rand.New(rand.NewSource(5))
	rowPtr := make([]int, 5001)
	for i := 1; i <= 5000; i++ {
		deg := 1
		if i < 100 {
			deg = 200 // a few heavy rows at the top
		}
		_ = rng
		rowPtr[i] = rowPtr[i-1] + deg
	}
	bounds := nnzBalancedRowBounds(rowPtr, 4)
	if bounds[0] != 0 || bounds[len(bounds)-1] != 5000 {
		t.Fatalf("bounds do not cover all rows: %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			t.Fatalf("bounds not monotone: %v", bounds)
		}
	}
	// The first chunk should be much shorter in rows than the last.
	first := bounds[1] - bounds[0]
	last := bounds[len(bounds)-1] - bounds[len(bounds)-2]
	if first >= last {
		t.Errorf("nnz balancing had no effect: first chunk %d rows, last %d", first, last)
	}
}

func TestCOOBoundsRowAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randCSR(rng, 500, 500, 0.05).ToCOO()
	bounds := cooBounds(m, 7)
	if bounds[0] != 0 || bounds[len(bounds)-1] != m.NNZ() {
		t.Fatalf("bounds do not cover all entries: %v", bounds)
	}
	for i := 1; i < len(bounds)-1; i++ {
		b := bounds[i]
		if b <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", bounds)
		}
		if m.RowIdx[b] == m.RowIdx[b-1] {
			t.Fatalf("boundary %d splits row %d", b, m.RowIdx[b])
		}
	}
}

func TestFLOPs(t *testing.T) {
	if FLOPs(1000) != 2000 {
		t.Errorf("FLOPs(1000) = %d, want 2000", FLOPs(1000))
	}
}

func TestMatDims(t *testing.T) {
	m, _ := matrix.FromTriples(3, 7, []matrix.Triple[float64]{{Row: 0, Col: 0, Val: 1}})
	for _, f := range matrix.Formats {
		mat, err := Convert(m, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		r, c := mat.Dims()
		if r != 3 || c != 7 {
			t.Errorf("%v Dims = %dx%d, want 3x7", f, r, c)
		}
	}
}
