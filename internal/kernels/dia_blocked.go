package kernels

import "smat/internal/matrix"

// diaBlockSize is the row-tile size of the cache-blocked DIA traversal: 2048
// float64 elements of y (16KiB) stay resident in L1 while every diagonal
// crosses the tile.
const diaBlockSize = 2048

// diaBlockedRange computes rows [lo, hi) with the diagonal-major traversal
// tiled over rows: within a tile, y is re-read from cache instead of memory,
// removing the paper's "Y written once per diagonal" penalty while keeping
// DIA's contiguous x access.
//
//smat:hotpath
func diaBlockedRange[T matrix.Float](d *matrix.DIA[T], x, y []T, lo, hi int) {
	for rb := lo; rb < hi; rb += diaBlockSize {
		re := rb + diaBlockSize
		if re > hi {
			re = hi
		}
		clear(y[rb:re])
		for i, k := range d.Offsets {
			iStart := rb
			if s := -k; s > iStart {
				iStart = s
			}
			iEnd := re
			if e := d.Cols - k; e < iEnd {
				iEnd = e
			}
			if iStart >= iEnd {
				continue
			}
			diag := d.Data[i*d.Rows:]
			for r := iStart; r < iEnd; r++ {
				y[r] += diag[r] * x[r+k]
			}
		}
	}
}

//smat:hotpath
func runDIABlocked[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	diaBlockedRange(m.DIA, x, y, 0, m.DIA.Rows)
}

//smat:hotpath
func diaBlockedChunk[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	diaBlockedRange(m.DIA, x, y, lo, hi)
}

//smat:hotpath-factory
func runDIABlockedParallel[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](diaBlockedChunk[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			diaBlockedRange(m.DIA, x, y, 0, m.DIA.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, x, y, 1)
	}
}
