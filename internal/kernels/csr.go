package kernels

import "smat/internal/matrix"

// csrRowRange computes y for rows [lo, hi): the paper's Figure 2(a) loop.
//
//smat:hotpath
func csrRowRange[T matrix.Float](m *matrix.CSR[T], x, y []T, lo, hi int) {
	rowPtr, colIdx, vals := m.RowPtr, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		var sum T
		for jj := rowPtr[i]; jj < rowPtr[i+1]; jj++ {
			sum += x[colIdx[jj]] * vals[jj]
		}
		y[i] = sum
	}
}

// csrRowRangeUnroll4 is csrRowRange with the inner product unrolled by four,
// accumulating into independent partial sums to break the dependence chain.
//
//smat:hotpath
func csrRowRangeUnroll4[T matrix.Float](m *matrix.CSR[T], x, y []T, lo, hi int) {
	rowPtr, colIdx, vals := m.RowPtr, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		var s0, s1, s2, s3 T
		jj := start
		for ; jj+4 <= end; jj += 4 {
			s0 += x[colIdx[jj]] * vals[jj]
			s1 += x[colIdx[jj+1]] * vals[jj+1]
			s2 += x[colIdx[jj+2]] * vals[jj+2]
			s3 += x[colIdx[jj+3]] * vals[jj+3]
		}
		for ; jj < end; jj++ {
			s0 += x[colIdx[jj]] * vals[jj]
		}
		y[i] = (s0 + s1) + (s2 + s3)
	}
}

// csrChunk / csrChunkUnroll4 adapt the row loops to the engine's chunk
// signature (top-level functions so pool dispatch never allocates).
//
//smat:hotpath
func csrChunk[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	csrRowRange(m.CSR, x, y, lo, hi)
}

//smat:hotpath
func csrChunkUnroll4[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	csrRowRangeUnroll4(m.CSR, x, y, lo, hi)
}

//smat:hotpath
func runCSRBasic[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	csrRowRange(m.CSR, x, y, 0, m.CSR.Rows)
}

//smat:hotpath
func runCSRUnroll4[T matrix.Float](m *Mat[T], x, y []T, _ exec[T]) {
	csrRowRangeUnroll4(m.CSR, x, y, 0, m.CSR.Rows)
}

//smat:hotpath-factory
func runCSRParallel[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](csrChunk[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			csrRowRange(m.CSR, x, y, 0, m.CSR.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, x, y, 1)
	}
}

//smat:hotpath-factory
func runCSRParallelUnroll4[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](csrChunkUnroll4[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			csrRowRangeUnroll4(m.CSR, x, y, 0, m.CSR.Rows)
			return
		}
		ex.dispatch(ex.plan.RowBounds, chunk, m, x, y, 1)
	}
}

//smat:hotpath-factory
func runCSRParallelNNZ[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](csrChunk[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			csrRowRange(m.CSR, x, y, 0, m.CSR.Rows)
			return
		}
		ex.dispatch(ex.plan.NNZBounds, chunk, m, x, y, 1)
	}
}

//smat:hotpath-factory
func runCSRParallelNNZUnroll4[T matrix.Float]() runFn[T] {
	chunk := rangeFn[T](csrChunkUnroll4[T])
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			csrRowRangeUnroll4(m.CSR, x, y, 0, m.CSR.Rows)
			return
		}
		ex.dispatch(ex.plan.NNZBounds, chunk, m, x, y, 1)
	}
}

// csrRowRangeUnroll2 / csrRowRangeUnroll8 are the remaining points of the
// searched unroll space (UnrollDepths): the same independent-partial-sum
// shape as csrRowRangeUnroll4 at depth two and eight.
//
//smat:hotpath
func csrRowRangeUnroll2[T matrix.Float](m *matrix.CSR[T], x, y []T, lo, hi int) {
	rowPtr, colIdx, vals := m.RowPtr, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		var s0, s1 T
		jj := start
		for ; jj+2 <= end; jj += 2 {
			s0 += x[colIdx[jj]] * vals[jj]
			s1 += x[colIdx[jj+1]] * vals[jj+1]
		}
		for ; jj < end; jj++ {
			s0 += x[colIdx[jj]] * vals[jj]
		}
		y[i] = s0 + s1
	}
}

//smat:hotpath
func csrRowRangeUnroll8[T matrix.Float](m *matrix.CSR[T], x, y []T, lo, hi int) {
	rowPtr, colIdx, vals := m.RowPtr, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		var s0, s1, s2, s3, s4, s5, s6, s7 T
		jj := start
		for ; jj+8 <= end; jj += 8 {
			s0 += x[colIdx[jj]] * vals[jj]
			s1 += x[colIdx[jj+1]] * vals[jj+1]
			s2 += x[colIdx[jj+2]] * vals[jj+2]
			s3 += x[colIdx[jj+3]] * vals[jj+3]
			s4 += x[colIdx[jj+4]] * vals[jj+4]
			s5 += x[colIdx[jj+5]] * vals[jj+5]
			s6 += x[colIdx[jj+6]] * vals[jj+6]
			s7 += x[colIdx[jj+7]] * vals[jj+7]
		}
		for ; jj < end; jj++ {
			s0 += x[colIdx[jj]] * vals[jj]
		}
		y[i] = ((s0 + s1) + (s2 + s3)) + ((s4 + s5) + (s6 + s7))
	}
}

//smat:hotpath
func csrChunkUnroll2[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	csrRowRangeUnroll2(m.CSR, x, y, lo, hi)
}

//smat:hotpath
func csrChunkUnroll8[T matrix.Float](m *Mat[T], x, y []T, _, lo, hi int) {
	csrRowRangeUnroll8(m.CSR, x, y, lo, hi)
}

// csrChunkUnroll resolves the chunk body for an unroll depth — called once at
// registration by the parameterized factory, never per SpMV.
func csrChunkUnroll[T matrix.Float](u int) rangeFn[T] {
	switch u {
	case 2:
		return rangeFn[T](csrChunkUnroll2[T])
	case 8:
		return rangeFn[T](csrChunkUnroll8[T])
	case 4:
		return rangeFn[T](csrChunkUnroll4[T])
	default:
		return rangeFn[T](csrChunk[T])
	}
}

// runCSRParallelNNZUnroll instantiates the NNZ-balanced parallel CSR kernel
// at an unroll depth: the depth is resolved to a chunk funcval here, at bind
// time, so the returned closure carries no per-call parameter dispatch.
//
//smat:hotpath-factory
func runCSRParallelNNZUnroll[T matrix.Float](u int) runFn[T] {
	chunk := csrChunkUnroll[T](u)
	return func(m *Mat[T], x, y []T, ex exec[T]) {
		if ex.plan.Serial {
			chunk(m, x, y, 1, 0, m.CSR.Rows)
			return
		}
		ex.dispatch(ex.plan.NNZBounds, chunk, m, x, y, 1)
	}
}
