package kernels

import "smat/internal/matrix"

// csrRowRange computes y for rows [lo, hi): the paper's Figure 2(a) loop.
func csrRowRange[T matrix.Float](m *matrix.CSR[T], x, y []T, lo, hi int) {
	rowPtr, colIdx, vals := m.RowPtr, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		var sum T
		for jj := rowPtr[i]; jj < rowPtr[i+1]; jj++ {
			sum += x[colIdx[jj]] * vals[jj]
		}
		y[i] = sum
	}
}

// csrRowRangeUnroll4 is csrRowRange with the inner product unrolled by four,
// accumulating into independent partial sums to break the dependence chain.
func csrRowRangeUnroll4[T matrix.Float](m *matrix.CSR[T], x, y []T, lo, hi int) {
	rowPtr, colIdx, vals := m.RowPtr, m.ColIdx, m.Vals
	for i := lo; i < hi; i++ {
		start, end := rowPtr[i], rowPtr[i+1]
		var s0, s1, s2, s3 T
		jj := start
		for ; jj+4 <= end; jj += 4 {
			s0 += x[colIdx[jj]] * vals[jj]
			s1 += x[colIdx[jj+1]] * vals[jj+1]
			s2 += x[colIdx[jj+2]] * vals[jj+2]
			s3 += x[colIdx[jj+3]] * vals[jj+3]
		}
		for ; jj < end; jj++ {
			s0 += x[colIdx[jj]] * vals[jj]
		}
		y[i] = (s0 + s1) + (s2 + s3)
	}
}

func runCSRBasic[T matrix.Float](m *Mat[T], x, y []T, _ int) {
	csrRowRange(m.CSR, x, y, 0, m.CSR.Rows)
}

func runCSRUnroll4[T matrix.Float](m *Mat[T], x, y []T, _ int) {
	csrRowRangeUnroll4(m.CSR, x, y, 0, m.CSR.Rows)
}

func runCSRParallel[T matrix.Float](m *Mat[T], x, y []T, threads int) {
	parallelRanges(threads, m.CSR.Rows, func(lo, hi int) {
		csrRowRange(m.CSR, x, y, lo, hi)
	})
}

func runCSRParallelUnroll4[T matrix.Float](m *Mat[T], x, y []T, threads int) {
	parallelRanges(threads, m.CSR.Rows, func(lo, hi int) {
		csrRowRangeUnroll4(m.CSR, x, y, lo, hi)
	})
}

func runCSRParallelNNZ[T matrix.Float](m *Mat[T], x, y []T, threads int) {
	if m.CSR.Rows < 2048 {
		csrRowRange(m.CSR, x, y, 0, m.CSR.Rows)
		return
	}
	bounds := nnzBalancedRowBounds(m.CSR.RowPtr, threads)
	parallelBounds(bounds, func(lo, hi int) {
		csrRowRange(m.CSR, x, y, lo, hi)
	})
}

func runCSRParallelNNZUnroll4[T matrix.Float](m *Mat[T], x, y []T, threads int) {
	if m.CSR.Rows < 2048 {
		csrRowRangeUnroll4(m.CSR, x, y, 0, m.CSR.Rows)
		return
	}
	bounds := nnzBalancedRowBounds(m.CSR.RowPtr, threads)
	parallelBounds(bounds, func(lo, hi int) {
		csrRowRangeUnroll4(m.CSR, x, y, lo, hi)
	})
}
