// Package kernels implements SMAT's kernel library: for each storage format,
// a family of SpMV implementations assembled from optimization strategies
// (loop unrolling, row-parallel execution, nonzero-balanced partitioning,
// traversal order). The scoreboard search in internal/autotune picks the best
// member per format for the host "architecture configuration" (thread count),
// mirroring the paper's Section 5.2.
package kernels

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"smat/internal/matrix"
)

// Strategy is a bitmask of the optimization strategies a kernel uses. The
// scoreboard algorithm scores strategies individually by comparing kernels
// that differ in exactly one bit.
type Strategy uint32

const (
	// StratParallel fans the computation out over OS threads.
	StratParallel Strategy = 1 << iota
	// StratUnroll4 unrolls the innermost loop by four.
	StratUnroll4
	// StratNNZBalance partitions work by equal nonzero count instead of
	// equal row count (only meaningful together with StratParallel).
	StratNNZBalance
	// StratRowMajor traverses DIA/ELL storage row-by-row instead of the
	// paper's default diagonal-/column-major order, writing each y element
	// once.
	StratRowMajor
	// StratCacheBlock tiles the row dimension so the diagonal-major DIA
	// traversal re-reads y from L1 instead of memory.
	StratCacheBlock
	// StratWidthSpec dispatches ELL to fully-unrolled kernels specialised
	// for small fixed widths (no inner loop at all).
	StratWidthSpec
)

// StrategyNames lists each individual strategy with its display name.
var StrategyNames = []struct {
	S    Strategy
	Name string
}{
	{StratParallel, "parallel"},
	{StratUnroll4, "unroll4"},
	{StratNNZBalance, "nnzbalance"},
	{StratRowMajor, "rowmajor"},
	{StratCacheBlock, "cacheblock"},
	{StratWidthSpec, "widthspec"},
}

// String renders the strategy set, e.g. "parallel+unroll4".
func (s Strategy) String() string {
	if s == 0 {
		return "basic"
	}
	out := ""
	for _, sn := range StrategyNames {
		if s&sn.S != 0 {
			if out != "" {
				out += "+"
			}
			out += sn.Name
		}
	}
	return out
}

// Count returns the number of strategies in the set.
func (s Strategy) Count() int {
	n := 0
	for _, sn := range StrategyNames {
		if s&sn.S != 0 {
			n++
		}
	}
	return n
}

// Mat is a matrix held in one concrete storage format, ready for a kernel.
// Exactly the field named by Format is non-nil.
type Mat[T matrix.Float] struct {
	Format matrix.Format
	CSR    *matrix.CSR[T]
	COO    *matrix.COO[T]
	DIA    *matrix.DIA[T]
	ELL    *matrix.ELL[T]
	HYB    *matrix.HYB[T]  // extension format, see matrix.FormatHYB
	BCSR   *matrix.BCSR[T] // extension format, see matrix.FormatBCSR

	// plan caches the execution plan (work partition) for the most recent
	// thread count; see PlanFor.
	plan atomic.Pointer[Plan]
	// bplan caches the batched execution plan for the most recent
	// (threads, batch width) pair; see PlanForBatch. A separate slot keeps
	// alternating MulVec / MulVecBatch traffic from thrashing one cache.
	bplan atomic.Pointer[Plan]
}

// Dims returns the matrix dimensions.
func (m *Mat[T]) Dims() (rows, cols int) {
	switch m.Format {
	case matrix.FormatCSR:
		return m.CSR.Rows, m.CSR.Cols
	case matrix.FormatCOO:
		return m.COO.Rows, m.COO.Cols
	case matrix.FormatDIA:
		return m.DIA.Rows, m.DIA.Cols
	case matrix.FormatELL:
		return m.ELL.Rows, m.ELL.Cols
	case matrix.FormatHYB:
		return m.HYB.Rows(), m.HYB.Cols()
	case matrix.FormatBCSR:
		return m.BCSR.Rows, m.BCSR.Cols
	}
	panic("kernels: invalid format")
}

// Validate checks the structural invariants of the representation named by
// Format, delegating to the format's own Validate. It is the hook the
// differential oracle (internal/oracle) uses to check every conversion it
// exercises.
func (m *Mat[T]) Validate() error {
	switch m.Format {
	case matrix.FormatCSR:
		return m.CSR.Validate()
	case matrix.FormatCOO:
		return m.COO.Validate()
	case matrix.FormatDIA:
		return m.DIA.Validate()
	case matrix.FormatELL:
		return m.ELL.Validate()
	case matrix.FormatHYB:
		return m.HYB.Validate()
	case matrix.FormatBCSR:
		return m.BCSR.Validate()
	}
	return fmt.Errorf("kernels: invalid format %v", m.Format)
}

// ToCSR converts the held representation back to CSR, the round-trip leg of
// the oracle's conversion checks. The CSR case returns the receiver's matrix
// unchanged.
func (m *Mat[T]) ToCSR() *matrix.CSR[T] {
	switch m.Format {
	case matrix.FormatCSR:
		return m.CSR
	case matrix.FormatCOO:
		return m.COO.ToCSR()
	case matrix.FormatDIA:
		return m.DIA.ToCSR()
	case matrix.FormatELL:
		return m.ELL.ToCSR()
	case matrix.FormatHYB:
		return m.HYB.ToCSR()
	case matrix.FormatBCSR:
		return m.BCSR.ToCSR()
	}
	panic("kernels: invalid format")
}

// Stored returns the number of element slots the held representation stores,
// padding included — the work term of the conversion payoff model (see
// matrix.CSR.Stored).
func (m *Mat[T]) Stored() int {
	switch m.Format {
	case matrix.FormatCSR:
		return m.CSR.Stored()
	case matrix.FormatCOO:
		return m.COO.Stored()
	case matrix.FormatDIA:
		return m.DIA.Stored()
	case matrix.FormatELL:
		return m.ELL.Stored()
	case matrix.FormatHYB:
		return m.HYB.Stored()
	case matrix.FormatBCSR:
		return m.BCSR.Stored()
	}
	panic("kernels: invalid format")
}

// ConvertTiming records the measured cost of one format conversion: the
// wall-clock seconds the conversion took and the number of element slots the
// target representation stores (its linear work term). It is the measurement
// hook the amortisation-aware tuner records in Decision.ConvertSec and the
// decision cache, so "is k SpMVs enough to pay for this conversion?" can be
// answered without converting again.
type ConvertTiming struct {
	Format matrix.Format
	Sec    float64
	Stored int
}

// ConvertTimed is Convert with the stopwatch attached: it materialises the
// matrix in the requested format and reports how long the conversion took and
// how many slots it wrote. CSR "conversion" wraps the input in place and
// reports zero seconds — CSR is the zero-cost incumbent of the amortisation
// model.
func ConvertTimed[T matrix.Float](m *matrix.CSR[T], f matrix.Format, maxFill float64) (*Mat[T], ConvertTiming, error) {
	if f == matrix.FormatCSR {
		return &Mat[T]{Format: f, CSR: m}, ConvertTiming{Format: f, Stored: m.Stored()}, nil
	}
	start := time.Now()
	out, err := Convert(m, f, maxFill)
	sec := time.Since(start).Seconds()
	if err != nil {
		return nil, ConvertTiming{Format: f, Sec: sec}, err
	}
	return out, ConvertTiming{Format: f, Sec: sec, Stored: out.Stored()}, nil
}

// Convert materialises a CSR matrix in the requested format. maxFill bounds
// DIA/ELL zero-fill as a multiple of NNZ (≤0: unlimited); conversion to an
// unsuitable format returns matrix.ErrFillExplosion.
func Convert[T matrix.Float](m *matrix.CSR[T], f matrix.Format, maxFill float64) (*Mat[T], error) {
	switch f {
	case matrix.FormatCSR:
		return &Mat[T]{Format: f, CSR: m}, nil
	case matrix.FormatCOO:
		return &Mat[T]{Format: f, COO: m.ToCOO()}, nil
	case matrix.FormatDIA:
		d, err := m.ToDIA(maxFill)
		if err != nil {
			return nil, err
		}
		return &Mat[T]{Format: f, DIA: d}, nil
	case matrix.FormatELL:
		e, err := m.ToELL(maxFill)
		if err != nil {
			return nil, err
		}
		return &Mat[T]{Format: f, ELL: e}, nil
	case matrix.FormatHYB:
		return &Mat[T]{Format: f, HYB: m.ToHYB(-1)}, nil
	case matrix.FormatBCSR:
		b, err := m.ToBCSR(0, 0, maxFill)
		if err != nil {
			return nil, err
		}
		return &Mat[T]{Format: f, BCSR: b}, nil
	}
	return nil, fmt.Errorf("kernels: unknown format %v", f)
}

// Kernel is one SpMV implementation for one format. Params identifies the
// template-parameter point the kernel was instantiated from; the zero Params
// marks the hand-enumerated fixed menu (see params.go).
type Kernel[T matrix.Float] struct {
	Name       string
	Format     matrix.Format
	Strategies Strategy
	Params     Params
	run        runFn[T]
}

// runFn is a kernel body. Parallel kernels are built by factories that bind
// their chunk function values once at registration: materialising a generic
// function value inside generic code allocates (it captures the type
// dictionary), and doing that per call would break the steady-state
// zero-allocation contract.
type runFn[T matrix.Float] func(m *Mat[T], x, y []T, ex exec[T])

// exec carries the execution engine through one kernel invocation: the
// matrix's cached plan plus (optionally) the persistent worker pool. It is a
// small value type — threading it through kernel calls allocates nothing.
type exec[T matrix.Float] struct {
	plan *Plan
	pool *Pool[T]
}

// rangeFn is a chunk body: compute the piece of Y = A·X covered by work
// items [lo, hi). k is the batch width (the number of interleaved right-hand
// sides in x and y); single-vector chunks ignore it. Implementations are
// top-level functions, never closures, so dispatching them through the pool
// allocates nothing.
type rangeFn[T matrix.Float] func(m *Mat[T], x, y []T, k, lo, hi int)

// dispatch runs fn over the plan's chunk bounds: chunk t is
// [bounds[t], bounds[t+1]). A single chunk runs inline; more fan out through
// the persistent pool when one is attached and free, or per-call goroutines
// otherwise.
//
//smat:hotpath
func (ex exec[T]) dispatch(bounds []int, fn rangeFn[T], m *Mat[T], x, y []T, k int) {
	nchunks := len(bounds) - 1
	if nchunks < 1 {
		return
	}
	if nchunks == 1 {
		fn(m, x, y, k, bounds[0], bounds[1])
		return
	}
	if ex.pool != nil && ex.pool.s.tryRun(bounds, fn, m, x, y, k) {
		return
	}
	spawnChunks(bounds, fn, m, x, y, k)
}

// formatMismatch reports a kernel applied to the wrong format. The message
// formatting lives out of line — and is kept there with go:noinline — so the
// hot Run/RunPooled bodies stay allocation-free on the match path and the
// escape-analysis gate doesn't see the panic path's Sprintf inlined into
// them.
//
//go:noinline
func formatMismatch[T matrix.Float](k *Kernel[T], m *Mat[T]) {
	panic(fmt.Sprintf("kernels: %s kernel %q applied to %s matrix", k.Format, k.Name, m.Format))
}

// Run computes y = A·x (y is fully overwritten). threads ≤ 0 selects
// GOMAXPROCS. Partitioning comes from the matrix's cached plan; parallel
// chunks execute on freshly spawned goroutines. Steady-state callers should
// prefer RunPooled, which reuses long-lived workers.
//
//smat:hotpath
func (k *Kernel[T]) Run(m *Mat[T], x, y []T, threads int) {
	if m.Format != k.Format {
		formatMismatch(k, m)
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	k.run(m, x, y, exec[T]{plan: m.PlanFor(threads)})
}

// RunPooled computes y = A·x on a persistent worker pool: the thread count
// was resolved once when the pool was built, the partition comes from the
// matrix's cached plan, and the dispatch allocates nothing — the steady-
// state SpMV path. A nil pool degrades to Run with default threads.
//
//smat:hotpath
func (k *Kernel[T]) RunPooled(m *Mat[T], x, y []T, p *Pool[T]) {
	if p == nil {
		k.Run(m, x, y, 0)
		return
	}
	if m.Format != k.Format {
		formatMismatch(k, m)
	}
	k.run(m, x, y, exec[T]{plan: m.PlanFor(p.s.threads), pool: p})
}

// BatchKernel is one SpMM (multi-vector SpMV) implementation for one format:
// it computes Y = A·X for k right-hand sides held in the interleaved layout
// xb[col*k+j] / yb[row*k+j], so the k values per matrix column are contiguous
// and the inner loop over the RHS tile is a unit-stride streak.
type BatchKernel[T matrix.Float] struct {
	Name       string
	Format     matrix.Format
	Strategies Strategy
	// Params.BatchTile records the instance's register-tile width (every
	// batch kernel has one; see DefaultBatchTile); the remaining knobs are
	// zero for the fixed menu.
	Params Params
	run    batchFn[T]
}

// batchFn is a batched kernel body; like runFn, parallel bodies are built by
// factories that bind their chunk function values once at registration.
type batchFn[T matrix.Float] func(m *Mat[T], xb, yb []T, k int, ex exec[T])

// batchFormatMismatch mirrors formatMismatch for batched kernels; kept out of
// line so the hot Run/RunPooled bodies stay allocation-free.
//
//go:noinline
func batchFormatMismatch[T matrix.Float](b *BatchKernel[T], m *Mat[T]) {
	panic(fmt.Sprintf("kernels: %s batch kernel %q applied to %s matrix", b.Format, b.Name, m.Format))
}

// Run computes Y = A·X for k interleaved right-hand sides (yb is fully
// overwritten). k ≤ 0 is a no-op; threads ≤ 0 selects GOMAXPROCS. The
// partition comes from the matrix's cached batch plan, whose serial cutoff
// scales the work estimate by k.
//
//smat:hotpath
func (b *BatchKernel[T]) Run(m *Mat[T], xb, yb []T, k, threads int) {
	if m.Format != b.Format {
		batchFormatMismatch(b, m)
	}
	if k <= 0 {
		return
	}
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	b.run(m, xb, yb, k, exec[T]{plan: m.PlanForBatch(threads, k)})
}

// RunPooled computes Y = A·X for k interleaved right-hand sides on a
// persistent worker pool — the steady-state batched serving path; the whole
// dispatch allocates nothing. A nil pool degrades to Run with default
// threads.
//
//smat:hotpath
func (b *BatchKernel[T]) RunPooled(m *Mat[T], xb, yb []T, k int, p *Pool[T]) {
	if p == nil {
		b.Run(m, xb, yb, k, 0)
		return
	}
	if m.Format != b.Format {
		batchFormatMismatch(b, m)
	}
	if k <= 0 {
		return
	}
	b.run(m, xb, yb, k, exec[T]{plan: m.PlanForBatch(p.s.threads, k), pool: p})
}

// Library is the full kernel collection for one element type.
type Library[T matrix.Float] struct {
	byFormat map[matrix.Format][]*Kernel[T]
	byName   map[string]*Kernel[T]

	batchByFormat map[matrix.Format][]*BatchKernel[T]
	batchByName   map[string]*BatchKernel[T]
}

// NewLibrary builds the registry of all kernel implementations.
func NewLibrary[T matrix.Float]() *Library[T] {
	l := &Library[T]{
		byFormat:      make(map[matrix.Format][]*Kernel[T]),
		byName:        make(map[string]*Kernel[T]),
		batchByFormat: make(map[matrix.Format][]*BatchKernel[T]),
		batchByName:   make(map[string]*BatchKernel[T]),
	}
	for _, k := range allKernels[T]() {
		l.Register(k)
	}
	for _, k := range paramKernels[T]() {
		l.Register(k)
	}
	for _, b := range allBatchKernels[T]() {
		l.RegisterBatch(b)
	}
	for _, b := range paramBatchKernels[T]() {
		l.RegisterBatch(b)
	}
	return l
}

// Register adds a kernel to the library (the paper's extensibility hook: new
// implementations join the scoreboard search without further changes).
func (l *Library[T]) Register(k *Kernel[T]) {
	if _, dup := l.byName[k.Name]; dup {
		panic(fmt.Sprintf("kernels: duplicate kernel %q", k.Name))
	}
	l.byFormat[k.Format] = append(l.byFormat[k.Format], k)
	l.byName[k.Name] = k
}

// RegisterBatch adds a batched kernel to the library. Batch kernels share
// the registry's extensibility contract but live in their own namespace
// (batched selection happens per format, after the single-vector scoreboard
// has chosen one).
func (l *Library[T]) RegisterBatch(b *BatchKernel[T]) {
	if _, dup := l.batchByName[b.Name]; dup {
		panic(fmt.Sprintf("kernels: duplicate batch kernel %q", b.Name))
	}
	l.batchByFormat[b.Format] = append(l.batchByFormat[b.Format], b)
	l.batchByName[b.Name] = b
}

// ForFormat returns all kernels registered for a format.
func (l *Library[T]) ForFormat(f matrix.Format) []*Kernel[T] { return l.byFormat[f] }

// Lookup returns the kernel with the given name, or nil.
func (l *Library[T]) Lookup(name string) *Kernel[T] { return l.byName[name] }

// ForFormatBatch returns all batched kernels registered for a format.
func (l *Library[T]) ForFormatBatch(f matrix.Format) []*BatchKernel[T] { return l.batchByFormat[f] }

// LookupBatch returns the batched kernel with the given name, or nil.
func (l *Library[T]) LookupBatch(name string) *BatchKernel[T] { return l.batchByName[name] }

// BatchFor returns the batched kernel the serving path should use for a
// format: the variant carrying StratParallel (every one degrades to its
// serial body below the plan cutoff), falling back to the format's basic
// batch kernel, or nil when the format has none registered.
func (l *Library[T]) BatchFor(f matrix.Format) *BatchKernel[T] {
	var basic *BatchKernel[T]
	for _, b := range l.batchByFormat[f] {
		if b.Strategies&StratParallel != 0 {
			return b
		}
		if b.Strategies == 0 {
			basic = b
		}
	}
	return basic
}

// BatchForParams returns the batched kernel for a format at the requested
// register-tile width (Params.BatchTile), falling back to BatchFor's default
// when the width is zero or no instance at that width is registered. Like
// BatchFor it prefers the parallel variant; every one degrades to its serial
// body below the plan cutoff.
func (l *Library[T]) BatchForParams(f matrix.Format, p Params) *BatchKernel[T] {
	if p.BatchTile != 0 {
		for _, b := range l.batchByFormat[f] {
			if b.Strategies&StratParallel != 0 && b.Params.BatchTile == p.BatchTile {
				return b
			}
		}
	}
	return l.BatchFor(f)
}

// BatchNames returns all registered batch kernel names grouped by format
// order.
func (l *Library[T]) BatchNames() []string {
	var names []string
	for _, f := range matrix.Formats {
		for _, b := range l.batchByFormat[f] {
			names = append(names, b.Name)
		}
	}
	return names
}

// Names returns all registered kernel names grouped by format order.
func (l *Library[T]) Names() []string {
	var names []string
	for _, f := range matrix.Formats {
		for _, k := range l.byFormat[f] {
			names = append(names, k.Name)
		}
	}
	return names
}

// Basic returns the format's reference implementation (no strategies and no
// template parameters), which anchors the scoreboard search and the paper's
// overhead unit (CSR-SpMV).
func (l *Library[T]) Basic(f matrix.Format) *Kernel[T] {
	for _, k := range l.byFormat[f] {
		if k.Strategies == 0 && k.Params.IsZero() {
			return k
		}
	}
	return nil
}

func allKernels[T matrix.Float]() []*Kernel[T] {
	return []*Kernel[T]{
		// CSR family.
		{Name: "csr_basic", Format: matrix.FormatCSR, Strategies: 0, run: runCSRBasic[T]},
		{Name: "csr_unroll4", Format: matrix.FormatCSR, Strategies: StratUnroll4, run: runCSRUnroll4[T]},
		{Name: "csr_parallel", Format: matrix.FormatCSR, Strategies: StratParallel, run: runCSRParallel[T]()},
		{Name: "csr_parallel_unroll4", Format: matrix.FormatCSR, Strategies: StratParallel | StratUnroll4, run: runCSRParallelUnroll4[T]()},
		{Name: "csr_parallel_nnz", Format: matrix.FormatCSR, Strategies: StratParallel | StratNNZBalance, run: runCSRParallelNNZ[T]()},
		{Name: "csr_parallel_nnz_unroll4", Format: matrix.FormatCSR, Strategies: StratParallel | StratNNZBalance | StratUnroll4, run: runCSRParallelNNZUnroll4[T]()},
		// COO family.
		{Name: "coo_basic", Format: matrix.FormatCOO, Strategies: 0, run: runCOOBasic[T]},
		{Name: "coo_unroll4", Format: matrix.FormatCOO, Strategies: StratUnroll4, run: runCOOUnroll4[T]},
		{Name: "coo_parallel", Format: matrix.FormatCOO, Strategies: StratParallel | StratNNZBalance, run: runCOOParallel[T]()},
		{Name: "coo_parallel_unroll4", Format: matrix.FormatCOO, Strategies: StratParallel | StratNNZBalance | StratUnroll4, run: runCOOParallelUnroll4[T]()},
		// DIA family.
		{Name: "dia_basic", Format: matrix.FormatDIA, Strategies: 0, run: runDIABasic[T]},
		{Name: "dia_unroll4", Format: matrix.FormatDIA, Strategies: StratUnroll4, run: runDIAUnroll4[T]},
		{Name: "dia_rowmajor", Format: matrix.FormatDIA, Strategies: StratRowMajor, run: runDIARowMajor[T]},
		{Name: "dia_parallel", Format: matrix.FormatDIA, Strategies: StratParallel | StratRowMajor, run: runDIAParallel[T]()},
		{Name: "dia_parallel_unroll4", Format: matrix.FormatDIA, Strategies: StratParallel | StratRowMajor | StratUnroll4, run: runDIAParallelUnroll4[T]()},
		{Name: "dia_blocked", Format: matrix.FormatDIA, Strategies: StratCacheBlock, run: runDIABlocked[T]},
		{Name: "dia_blocked_parallel", Format: matrix.FormatDIA, Strategies: StratCacheBlock | StratParallel, run: runDIABlockedParallel[T]()},
		// ELL family.
		{Name: "ell_basic", Format: matrix.FormatELL, Strategies: 0, run: runELLBasic[T]},
		{Name: "ell_unroll4", Format: matrix.FormatELL, Strategies: StratUnroll4, run: runELLUnroll4[T]},
		{Name: "ell_rowmajor", Format: matrix.FormatELL, Strategies: StratRowMajor, run: runELLRowMajor[T]},
		{Name: "ell_parallel", Format: matrix.FormatELL, Strategies: StratParallel | StratRowMajor, run: runELLParallel[T]()},
		{Name: "ell_parallel_unroll4", Format: matrix.FormatELL, Strategies: StratParallel | StratRowMajor | StratUnroll4, run: runELLParallelUnroll4[T]()},
		{Name: "ell_width", Format: matrix.FormatELL, Strategies: StratWidthSpec, run: runELLWidth[T]},
		{Name: "ell_width_parallel", Format: matrix.FormatELL, Strategies: StratWidthSpec | StratParallel, run: runELLWidthParallel[T]()},
	}
}

// FLOPs returns the floating-point operation count of one SpMV on a matrix
// with the given number of nonzeros (one multiply and one add per entry),
// the paper's GFLOPS denominator.
func FLOPs(nnz int) int64 { return 2 * int64(nnz) }

// nnzBalancedRowBounds partitions rows into at most `threads` chunks of
// roughly equal nonzero count using the CSR row pointer.
func nnzBalancedRowBounds(rowPtr []int, threads int) []int {
	rows := len(rowPtr) - 1
	nnz := rowPtr[rows]
	if threads > rows {
		threads = rows
	}
	if threads < 1 {
		threads = 1
	}
	bounds := make([]int, 0, threads+1)
	bounds = append(bounds, 0)
	for t := 1; t < threads; t++ {
		target := nnz * t / threads
		// Binary search the first row whose prefix exceeds the target.
		lo, hi := bounds[len(bounds)-1], rows
		for lo < hi {
			mid := (lo + hi) / 2
			if rowPtr[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		bounds = append(bounds, lo)
	}
	bounds = append(bounds, rows)
	return bounds
}
